#!/usr/bin/env bash
# End-to-end smoke test of the sweep daemon (also run by the CI
# server-smoke job): build recnserved and recnsweep, start the daemon,
# submit a small figure sweep over HTTP, poll to completion, require the
# fetched results to be byte-identical to the recnsweep stream, exercise
# the too_many_runs admission rejection, resubmit the same spec and
# require every run to come from the cache, then SIGTERM-drain.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:8321}"
WORK="$(mktemp -d)"
SRV=
cleanup() {
  [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "server-smoke: $*"; }

# jsonfield FILE KEY -> first top-level-ish string/number value of KEY.
jsonfield() {
  sed -n "s/^  \"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" | head -1
}

go build -o "$WORK/recnserved" ./cmd/recnserved
go build -o "$WORK/recnsweep" ./cmd/recnsweep

say "starting daemon on $ADDR"
"$WORK/recnserved" -addr "$ADDR" -cache "$WORK/cache" -queue-cap 4 -max-runs 8 &
SRV=$!
for _ in $(seq 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null

say "oversized request is rejected with the typed error"
code=$(curl -s -o "$WORK/reject.json" -w '%{http_code}' \
  -X POST "http://$ADDR/v1/sweeps" -d '{"figures":["2a","2b"]}')
[ "$code" = 413 ] || { say "want 413, got $code"; cat "$WORK/reject.json"; exit 1; }
grep -q too_many_runs "$WORK/reject.json"

submit_and_wait() {
  curl -fsS -X POST "http://$ADDR/v1/sweeps" -d '{"figures":["2a"],"scale":0.05}' > "$WORK/job.json"
  id=$(jsonfield "$WORK/job.json" id)
  [ -n "$id" ] || { say "no job id in response"; cat "$WORK/job.json"; exit 1; }
  say "job $id submitted; polling"
  state=
  for _ in $(seq 300); do
    curl -fsS "http://$ADDR/v1/sweeps/$id" > "$WORK/status.json"
    state=$(jsonfield "$WORK/status.json" state)
    case "$state" in
      done) break ;;
      failed|canceled) say "job $id $state"; cat "$WORK/status.json"; exit 1 ;;
    esac
    sleep 1
  done
  [ "$state" = done ] || { say "job $id never finished"; exit 1; }
}

say "submit a small fig2 sweep and fetch results"
submit_and_wait
curl -fsS "http://$ADDR/v1/sweeps/$id/results" > "$WORK/api.txt"

say "API results must be byte-identical to recnsweep"
"$WORK/recnsweep" -sweep 2a -scale 0.05 > "$WORK/cli.txt"
cmp "$WORK/api.txt" "$WORK/cli.txt"

say "resubmitting the same spec: every run must be a cache hit"
submit_and_wait
done_runs=$(jsonfield "$WORK/status.json" runs_done)
cached_runs=$(jsonfield "$WORK/status.json" runs_cached)
[ "$done_runs" = "$cached_runs" ] && [ "$done_runs" != 0 ] || {
  say "want all runs cached, got $cached_runs/$done_runs"; exit 1; }
curl -fsS "http://$ADDR/v1/sweeps/$id/results" > "$WORK/api2.txt"
cmp "$WORK/api.txt" "$WORK/api2.txt"

say "metrics report the cache hits"
curl -fsS "http://$ADDR/metrics" > "$WORK/metrics.txt"
grep -q '^recnserved_runs_cached_total [1-9]' "$WORK/metrics.txt"
grep -q '^recnserved_rejected_too_many_runs_total 1' "$WORK/metrics.txt"

say "SIGTERM drains and exits cleanly"
kill -TERM "$SRV"
wait "$SRV"
SRV=
say "ok"
