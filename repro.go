// Package repro is a library-level reproduction of "A New Scalable and
// Cost-Effective Congestion Management Strategy for Lossless Multistage
// Interconnection Networks" (Duato, Johnson, Flich, Naven, García,
// Nachiondo — HPCA 2005), the paper that introduced RECN.
//
// It bundles a picosecond-resolution discrete-event simulator of
// perfect-shuffle bidirectional MINs (64–512 hosts of 8-port switches),
// five queuing mechanisms (1Q, 4Q, VOQsw, VOQnet and RECN with
// dynamically allocated set-aside queues), the paper's workloads, and
// runners that regenerate every table and figure of the evaluation.
//
// Quick start:
//
//	net, _ := repro.NewNetwork(64, repro.PolicyRECN)
//	net.InjectMessage(3, 60, 64)
//	net.Engine.Drain()
//
// Reproducing a figure:
//
//	tables, _ := repro.Reproduce("2a", repro.Options{Scale: 0.5})
//	for _, t := range tables {
//		fmt.Print(t)
//	}
package repro

import (
	"context"
	"io"

	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Re-exported core types. The implementation lives in internal
// packages; these aliases are the public surface.
type (
	// Network is a fully wired simulation instance.
	Network = fabric.Network
	// Config configures a Network.
	Config = fabric.Config
	// Policy selects the queuing mechanism.
	Policy = fabric.Policy
	// RECNConfig holds the RECN thresholds and SAQ limits.
	RECNConfig = recn.Config
	// Topology describes a multistage network.
	Topology = topology.Topology
	// Mesh is a 2D direct network (one host per switch, XY routing).
	Mesh = topology.Mesh
	// FatTree is the k-ary n-tree with deterministic adaptive
	// up-routing (the scaling figures' topology).
	FatTree = topology.FatTree
	// Time is simulation time in picoseconds.
	Time = sim.Time
	// Options tune figure reproduction runs.
	Options = experiments.Options
	// Table is an aligned text table of reproduced series.
	Table = experiments.Table
	// Result carries the measurements of a single run.
	Result = experiments.Result
	// Run describes one simulation of one mechanism.
	Run = experiments.Run
	// RunCache is the on-disk run-result cache used by Sweep, keyed by
	// Run.SpecHash (enable it with Options.CacheDir).
	RunCache = experiments.RunCache
	// CacheSummary is one sweep's run-cache accounting (hits, misses and
	// the store failures a sweep does not fail on), delivered through
	// Options.OnCacheSummary.
	CacheSummary = experiments.CacheSummary
	// RunReport is the serializable, mergeable form of a Result
	// (Result.Report / ResultFromReport convert between the two).
	RunReport = stats.Report
	// CornerCase is a Table 1 workload.
	CornerCase = traffic.CornerCase
	// Trace is a replayable message trace.
	Trace = traffic.Trace
	// Packet is a network packet (as seen by Network.OnDeliver).
	Packet = pkt.Packet
	// FaultPlan is a deterministic, seeded fault schedule (single-use).
	FaultPlan = fault.Plan
	// FaultRule is a per-message-kind probabilistic fault rule.
	FaultRule = fault.Rule
	// FaultKind identifies the traffic class a fault targets.
	FaultKind = fault.Kind
	// LinkFlap is one scheduled link-failure window.
	LinkFlap = fault.LinkFlap
	// FaultRecovery configures the watchdog/recovery layer.
	FaultRecovery = fault.Recovery
	// FaultReport accounts injected faults and recovery actions.
	FaultReport = stats.FaultReport
	// TraceConfig configures the flight recorder (ring size, event
	// mask, metrics sampling period).
	TraceConfig = trace.Config
	// TraceRecorder is a bound flight recorder; export its contents
	// with WriteChromeTrace, WriteText or WriteTrees after the run.
	TraceRecorder = trace.Recorder
	// TraceMask selects which event kinds are recorded.
	TraceMask = trace.Mask
	// TraceEvent is one recorded flight-recorder event.
	TraceEvent = trace.Event
	// TraceTree is one reconstructed congestion-tree lifecycle
	// (as returned by TraceRecorder.Trees).
	TraceTree = trace.Tree
	// TraceMetrics is the flight recorder's time-series registry
	// (TraceRecorder.Metrics; non-nil when TraceConfig.MetricsBin > 0).
	TraceMetrics = trace.Metrics
	// TraceSeries is one sampled metric series; it implements Series.
	TraceSeries = trace.TimeSeries
	// Series is any fixed-bin time series (Throughput's rate view,
	// TraceSeries, ...).
	Series = stats.Series
	// SeriesSummary condenses a Series (see SummarizeSeries).
	SeriesSummary = stats.SeriesSummary
	// Checker is the runtime invariant checker; build one with
	// NewChecker, pass it via Config.Checker (checkers are single-use),
	// and call Network.FinalCheck after the run. Figure runs enable it
	// with Options.Check / Run.Check instead.
	Checker = check.Checker
	// CheckConfig tunes the checker (audit period, trace-tail length,
	// livelock window, collect-vs-panic mode).
	CheckConfig = check.Config
	// CheckViolation is one detected invariant violation: the rule, the
	// simulation time and location, and a diagnostics snapshot
	// (Detail() renders everything).
	CheckViolation = check.Violation
	// CheckRule identifies which invariant a violation broke.
	CheckRule = check.Rule
)

// NewChecker builds a runtime invariant checker from a config (zero
// value = defaults: panic on first violation, 10µs audit period).
func NewChecker(cfg CheckConfig) *Checker { return check.New(cfg) }

// SummarizeSeries scans a Series once and returns bins/mean/max/peak.
func SummarizeSeries(s Series) SeriesSummary { return stats.Summarize(s) }

// Sweep executes independent runs across a worker pool
// (Options.Parallelism workers; 0 = GOMAXPROCS) and returns their
// results in submission order, byte-identical to running them
// serially. With Options.CacheDir set, results are served from and
// stored to the on-disk run cache.
func Sweep(runs []Run, o Options) ([]*Result, error) { return experiments.Sweep(runs, o) }

// SweepContext is Sweep under a context: when ctx is canceled or times
// out, the sweep stops scheduling new runs, interrupts in-flight serial
// runs, and returns the completed results alongside an error matching
// errors.Is(err, ErrCanceled).
func SweepContext(ctx context.Context, runs []Run, o Options) ([]*Result, error) {
	return experiments.SweepContext(ctx, runs, o)
}

// ErrCanceled is the typed error a canceled or timed-out sweep (or
// run) returns; detect it with errors.Is.
var ErrCanceled = experiments.ErrCanceled

// FprintTables writes tables back-to-back with no separator — the
// exact byte stream recnsweep prints and the daemon's text results
// endpoint serves.
func FprintTables(w io.Writer, tables []*Table) { experiments.FprintTables(w, tables) }

// OpenRunCache opens (creating if necessary) a run-result cache
// directory and verifies it is writable.
func OpenRunCache(dir string) (*RunCache, error) { return experiments.OpenRunCache(dir) }

// ServerConfig configures the sweep-as-a-service daemon (recnserved):
// listen address, run-cache directory, queue capacity and per-request
// admission limits, worker count, and queue-state persistence.
type ServerConfig = server.Config

// SweepServer is the daemon: an HTTP/JSON API over a bounded,
// admission-controlled job queue draining into the sweep engine, with
// live SSE result/trace streaming and a /metrics endpoint. Build one
// with NewSweepServer (tests drive Handler() directly) or run the whole
// lifecycle with Serve.
type SweepServer = server.Server

// NewSweepServer builds a daemon instance and starts its workers.
func NewSweepServer(cfg ServerConfig) (*SweepServer, error) { return server.New(cfg) }

// Serve builds the daemon and serves its API until ctx is canceled
// (recnserved wires SIGTERM/SIGINT here), then drains in-flight jobs,
// persists still-queued jobs, and returns.
func Serve(ctx context.Context, cfg ServerConfig) error { return server.Run(ctx, cfg) }

// ResultFromReport rebuilds a live Result from its serialized report.
func ResultFromReport(policy Policy, rep RunReport) (*Result, error) {
	return experiments.ResultFromReport(policy, rep)
}

// FaultConfig bundles a fault plan with the recovery layer that
// counters it; pass it to NewNetworkFaults or set the corresponding
// Config fields directly.
type FaultConfig struct {
	// Plan injects faults (nil = none). Plans are single-use.
	Plan *FaultPlan
	// Recovery configures the watchdog layer; the zero value disables
	// it, DefaultFaultRecovery() enables it with default timers.
	Recovery FaultRecovery
}

// Fault targets for FaultPlan rules and scripted drops.
const (
	FaultCredit = fault.Credit
	FaultToken  = fault.Token
	FaultXon    = fault.Xon
	FaultXoff   = fault.Xoff
	FaultNotify = fault.Notify
	FaultData   = fault.Data
)

// NewFaultPlan returns an empty fault plan with the given RNG seed.
func NewFaultPlan(seed int64) *FaultPlan { return fault.NewPlan(seed) }

// ParseFaultPlan builds a plan from the compact spec format used by
// `recnsim -faults` (e.g. "seed=7,drop=token:3,flap=0:2:100us:400us").
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.ParsePlan(spec) }

// DefaultFaultRecovery returns the recovery layer with default timers.
func DefaultFaultRecovery() FaultRecovery { return fault.DefaultRecovery() }

// AllTraceEvents enables every flight-recorder event kind.
const AllTraceEvents = trace.AllEvents

// NewTraceRecorder builds a flight recorder from a config. Pass it via
// Config.Tracer (or Run.Trace / Options.Trace as a TraceConfig) before
// building the network; recorders are single-use.
func NewTraceRecorder(cfg TraceConfig) *TraceRecorder { return trace.New(cfg) }

// ParseTraceEvents parses a comma-separated event spec ("saq,token",
// "packet", "tree", "all", …) into a TraceMask, as accepted by
// `recnsim -trace-events`.
func ParseTraceEvents(spec string) (TraceMask, error) { return trace.ParseEvents(spec) }

// ParseTime parses a duration with a unit suffix ("250ns", "1.5us",
// "2ms", "800ps") into a Time.
func ParseTime(s string) (Time, error) { return sim.ParseTime(s) }

// NewNetworkFaults builds a simulation of the paper's network with the
// given mechanism, fault plan and recovery layer. Read the outcome from
// Network.FaultReport after the run.
func NewNetworkFaults(hosts int, policy Policy, fc FaultConfig) (*Network, error) {
	topo, err := topology.ForHosts(hosts)
	if err != nil {
		return nil, err
	}
	cfg := fabric.DefaultConfig(topo)
	cfg.Policy = policy
	cfg.Faults = fc.Plan
	cfg.Recovery = fc.Recovery
	return fabric.New(cfg)
}

// Queuing mechanisms (paper §4.3).
const (
	Policy1Q     = fabric.Policy1Q
	Policy4Q     = fabric.Policy4Q
	PolicyVOQsw  = fabric.PolicyVOQsw
	PolicyVOQnet = fabric.PolicyVOQnet
	PolicyRECN   = fabric.PolicyRECN
	// Extensions beyond the paper: ECN-style source throttling and
	// hint-driven adaptive routing (the shoot-out challengers).
	PolicyThrottle = fabric.PolicyThrottle
	PolicyARN      = fabric.PolicyARN
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// Policies lists all mechanisms in the paper's presentation order.
var Policies = fabric.Policies

// ParsePolicy converts a mechanism name ("RECN", "1Q", …) to a Policy.
func ParsePolicy(s string) (Policy, error) { return fabric.ParsePolicy(s) }

// ValidatePolicyOptions resolves policy names and validates the
// throttle / arn tunable specs up front, so callers fail fast on a bad
// request instead of partway through a sweep.
func ValidatePolicyOptions(names []string, throttleSpec, arnSpec string) ([]Policy, error) {
	return experiments.ValidatePolicyOptions(names, throttleSpec, arnSpec)
}

// NewTopology builds the paper's network for 64, 256 or 512 hosts (or
// any power of 4).
func NewTopology(hosts int) (*Topology, error) { return topology.ForHosts(hosts) }

// NewFatTree builds the k-ary n-tree with deterministic adaptive
// up-routing for any host count NewTopology accepts (the scaling
// figures use 1024 and 4096).
func NewFatTree(hosts int) (*FatTree, error) { return topology.NewFatTree(hosts) }

// BuildTopology resolves a topology name ("min", "fattree", "mesh")
// and host count — the CLIs' -topo flag surface.
func BuildTopology(name string, hosts int) (fabric.Topology, error) {
	return experiments.BuildTopology(name, hosts)
}

// TopologyNames lists every name BuildTopology accepts.
func TopologyNames() string { return experiments.TopologyNames() }

// ValidTopology reports whether BuildTopology accepts the name (host
// count constraints aside); CLIs use it to reject -topo up front.
func ValidTopology(name string) bool { return experiments.ValidTopology(name) }

// NewMesh builds a cols×rows 2D mesh (one host per switch, XY routing).
// The paper notes RECN works on direct networks too; the same fabric
// and controllers run unchanged on a mesh.
func NewMesh(cols, rows int) (*Mesh, error) { return topology.NewMesh(cols, rows) }

// NewMeshNetwork builds a mesh simulation with default parameters.
func NewMeshNetwork(cols, rows int, policy Policy) (*Network, error) {
	m, err := topology.NewMesh(cols, rows)
	if err != nil {
		return nil, err
	}
	cfg := fabric.DefaultConfig(m)
	cfg.Policy = policy
	return fabric.New(cfg)
}

// DefaultConfig returns the evaluation defaults for a topology.
func DefaultConfig(t *Topology) Config { return fabric.DefaultConfig(t) }

// NewNetwork builds a simulation of the paper's network with default
// parameters and the given mechanism.
func NewNetwork(hosts int, policy Policy) (*Network, error) {
	topo, err := topology.ForHosts(hosts)
	if err != nil {
		return nil, err
	}
	cfg := fabric.DefaultConfig(topo)
	cfg.Policy = policy
	return fabric.New(cfg)
}

// NewNetworkConfig builds a simulation from an explicit configuration.
func NewNetworkConfig(cfg Config) (*Network, error) { return fabric.New(cfg) }

// Corner returns the paper's corner-case workload (Table 1 for 64
// hosts, the Figure 6 variants for 256/512).
func Corner(number, hosts, msgSize int, scale float64) (CornerCase, error) {
	return traffic.Corner(number, hosts, msgSize, scale)
}

// InstallCorner installs a corner-case workload on a network.
func InstallCorner(net *Network, c CornerCase) error {
	return c.Install(adapter{net})
}

// InstallCello installs the SAN (cello model) workload on a network
// with the given trace time-compression factor.
func InstallCello(net *Network, compression float64) error {
	return traffic.DefaultCello(compression).Install(adapter{net})
}

// adapter exposes a Network to the traffic generators. It implements
// traffic.HostNetwork so workloads installed on a sharded network run
// each source on its host's shard engine; on a serial network both
// extra methods collapse to the plain adapter.
type adapter struct{ n *Network }

func (a adapter) Hosts() int                  { return a.n.Topology().NumHosts() }
func (a adapter) Now() Time                   { return a.n.Engine.Now() }
func (a adapter) Schedule(at Time, fn func()) { a.n.Engine.Schedule(at, fn) }
func (a adapter) Inject(src, dst, size int) {
	if err := a.n.InjectMessage(src, dst, size); err != nil {
		panic(err)
	}
}

func (a adapter) HostView(host int) traffic.Network {
	if a.n.ShardCount() == 0 {
		return a
	}
	return shardHostAdapter{adapter: a, eng: a.n.ShardEngine(a.n.HostShard(host))}
}

func (a adapter) ScheduleOn(caller, host int, at Time, fn func()) {
	a.n.ScheduleRemote(caller, host, at, fn)
}

// shardHostAdapter is one host's view of a sharded network: time and
// scheduling come from the host's shard engine.
type shardHostAdapter struct {
	adapter
	eng *sim.Engine
}

func (a shardHostAdapter) Now() Time                   { return a.eng.Now() }
func (a shardHostAdapter) Schedule(at Time, fn func()) { a.eng.Schedule(at, fn) }

// GenerateCelloTrace synthesizes the cello-model SAN workload as a
// replayable trace at time compression `compression`: message
// generation is captured without simulating the fabric. A timesharing
// system's I/O is sparse in real time, so at compression 1 a sub-ms
// window records almost nothing — the paper (and this library) works
// at compression 20–40. hosts selects the network size; seed makes it
// reproducible. See DESIGN.md §5 for the model.
func GenerateCelloTrace(hosts int, duration Time, compression float64, seed int64) (Trace, error) {
	eng := sim.NewEngine()
	rec := &traceRecorder{eng: eng, hosts: hosts}
	c := traffic.DefaultCello(compression)
	c.Duration = duration
	c.Seed = seed
	if err := c.Install(rec); err != nil {
		return nil, err
	}
	eng.Drain()
	rec.out.Sort()
	return rec.out, nil
}

// traceRecorder is a traffic.Network that only records injections.
type traceRecorder struct {
	eng   *sim.Engine
	hosts int
	out   traffic.Trace
}

func (r *traceRecorder) Hosts() int                  { return r.hosts }
func (r *traceRecorder) Now() Time                   { return r.eng.Now() }
func (r *traceRecorder) Schedule(at Time, fn func()) { r.eng.Schedule(at, fn) }
func (r *traceRecorder) Inject(src, dst, size int) {
	r.out = append(r.out, traffic.Record{T: r.eng.Now(), Src: src, Dst: dst, Size: size})
}

// WriteTrace writes a trace in the recn-trace text format.
func WriteTrace(w io.Writer, tr Trace) error { return traffic.WriteTrace(w, tr) }

// ReadTrace parses the recn-trace text format.
func ReadTrace(r io.Reader) (Trace, error) { return traffic.ReadTrace(r) }

// ReplayTrace installs a trace on a network with the paper's time
// compression factor.
func ReplayTrace(net *Network, tr Trace, compression float64) error {
	return traffic.Replay{Trace: tr, Compression: compression}.Install(adapter{net})
}

// Table1 reproduces the paper's Table 1.
func Table1() (*Table, error) { return experiments.Table1() }

// FigureIDs lists every reproducible experiment, in paper order. (The
// registry itself lives in internal/experiments so the sweep daemon
// can run figures by ID; this facade delegates.)
func FigureIDs() []string { return experiments.FigureIDs() }

// KnownFigure reports whether an ID names a reproducible experiment.
func KnownFigure(id string) bool { return experiments.KnownFigure(id) }

// SweepSAQs runs the SAQ-count ablation over an explicit list of
// per-port SAQ counts.
func SweepSAQs(o Options, counts []int) ([]*Table, error) {
	t, err := experiments.AblationSAQCount(o, counts)
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// SweepThresholds runs the detection-threshold ablation over an
// explicit list of byte thresholds.
func SweepThresholds(o Options, detectBytes []int) ([]*Table, error) {
	t, err := experiments.AblationThreshold(o, detectBytes)
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// Reproduce regenerates one of the paper's tables or figures by ID
// ("table1", "2a"–"2d", "3a"/"3b", "4a"/"4b", "5a"/"5b", "6a"/"6b",
// "pkt512a"/"pkt512b", ablations "a1"–"a4", and the latency extension
// "lat1"/"lat2"). Options.Scale trades fidelity for speed; 1.0
// reproduces the paper's durations.
func Reproduce(id string, o Options) ([]*Table, error) { return experiments.Reproduce(id, o) }
