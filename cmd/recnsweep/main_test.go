package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Flag validation must fail before any simulation starts, naming the
// offending flag (the style of recnsim's -policies check).
func TestValidateFlagsRejectsBadWorkerCounts(t *testing.T) {
	for _, j := range []int{0, -1, -8} {
		err := validateFlags(j, 0, "")
		if err == nil {
			t.Errorf("validateFlags(j=%d) accepted", j)
			continue
		}
		if !strings.Contains(err.Error(), "-j") {
			t.Errorf("validateFlags(j=%d) error %q does not name -j", j, err)
		}
	}
}

func TestValidateFlagsRejectsNegativeShards(t *testing.T) {
	err := validateFlags(1, -2, "")
	if err == nil {
		t.Fatal("validateFlags accepted a negative shard count")
	}
	if !strings.Contains(err.Error(), "-shards") {
		t.Errorf("error %q does not name -shards", err)
	}
}

func TestValidateFlagsRejectsUnwritableCacheDir(t *testing.T) {
	// A path under a regular file can never become a directory, so this
	// fails even when the tests run as root (unlike permission bits).
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := validateFlags(1, 0, filepath.Join(file, "sub"))
	if err == nil {
		t.Fatal("validateFlags accepted a cache dir under a regular file")
	}
	if !strings.Contains(err.Error(), "-cache") {
		t.Errorf("error %q does not name -cache", err)
	}
}

func TestValidateFlagsAccepts(t *testing.T) {
	if err := validateFlags(1, 0, ""); err != nil {
		t.Errorf("validateFlags(1, 0, \"\") = %v", err)
	}
	dir := filepath.Join(t.TempDir(), "cache")
	if err := validateFlags(8, 4, dir); err != nil {
		t.Errorf("validateFlags(8, 4, %q) = %v", dir, err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Errorf("cache dir not created: %v, %v", fi, err)
	}
}
