package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Flag validation must fail before any simulation starts, naming the
// offending flag (the style of recnsim's -policies check).
func TestValidateFlagsRejectsBadWorkerCounts(t *testing.T) {
	for _, j := range []int{0, -1, -8} {
		err := validateFlags("saqs", j, 0, "", "")
		if err == nil {
			t.Errorf("validateFlags(j=%d) accepted", j)
			continue
		}
		if !strings.Contains(err.Error(), "-j") {
			t.Errorf("validateFlags(j=%d) error %q does not name -j", j, err)
		}
	}
}

func TestValidateFlagsRejectsNegativeShards(t *testing.T) {
	err := validateFlags("saqs", 1, -2, "", "")
	if err == nil {
		t.Fatal("validateFlags accepted a negative shard count")
	}
	if !strings.Contains(err.Error(), "-shards") {
		t.Errorf("error %q does not name -shards", err)
	}
}

// Latency figures need the serial per-packet Observe path, so a sweep
// that includes them must reject -shards before anything simulates —
// not four figures into an `all` sweep.
func TestValidateFlagsRejectsShardsWithLatencyFigures(t *testing.T) {
	for _, sweep := range []string{"lat1", "lat2", "all", "figures", "LAT1"} {
		err := validateFlags(sweep, 1, 2, "", "")
		if err == nil {
			t.Errorf("validateFlags(sweep=%q, shards=2) accepted", sweep)
			continue
		}
		if !strings.Contains(err.Error(), "-shards") || !strings.Contains(err.Error(), "lat") {
			t.Errorf("validateFlags(sweep=%q) error %q does not explain the shards/latency conflict", sweep, err)
		}
	}
	// Non-latency sweeps keep working with shards.
	for _, sweep := range []string{"saqs", "2a", "6b"} {
		if err := validateFlags(sweep, 1, 2, "", ""); err != nil {
			t.Errorf("validateFlags(sweep=%q, shards=2) = %v", sweep, err)
		}
	}
}

// A bad topology name must be rejected before anything simulates, and
// every accepted name (plus the empty per-figure default) must pass.
func TestValidateFlagsTopology(t *testing.T) {
	err := validateFlags("saqs", 1, 0, "", "hypercube")
	if err == nil {
		t.Fatal("validateFlags accepted topology \"hypercube\"")
	}
	if !strings.Contains(err.Error(), "-topo") || !strings.Contains(err.Error(), "fattree") {
		t.Errorf("error %q does not name -topo and the valid names", err)
	}
	for _, topo := range []string{"", "min", "fattree", "fat-tree", "mesh", "FatTree"} {
		if err := validateFlags("saqs", 1, 0, "", topo); err != nil {
			t.Errorf("validateFlags(topo=%q) = %v", topo, err)
		}
	}
}

func TestValidateFlagsRejectsUnwritableCacheDir(t *testing.T) {
	// A path under a regular file can never become a directory, so this
	// fails even when the tests run as root (unlike permission bits).
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := validateFlags("saqs", 1, 0, filepath.Join(file, "sub"), "")
	if err == nil {
		t.Fatal("validateFlags accepted a cache dir under a regular file")
	}
	if !strings.Contains(err.Error(), "-cache") {
		t.Errorf("error %q does not name -cache", err)
	}
}

func TestValidateFlagsAccepts(t *testing.T) {
	if err := validateFlags("saqs", 1, 0, "", ""); err != nil {
		t.Errorf("validateFlags(saqs, 1, 0, \"\") = %v", err)
	}
	dir := filepath.Join(t.TempDir(), "cache")
	if err := validateFlags("boost", 8, 4, dir, ""); err != nil {
		t.Errorf("validateFlags(boost, 8, 4, %q) = %v", dir, err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Errorf("cache dir not created: %v, %v", fi, err)
	}
}
