// Command recnsweep runs parameter sweeps over the RECN design knobs:
// SAQ count per port, congestion-detection threshold, token priority
// boost and in-order markers (the ablations A1–A4 in DESIGN.md).
//
// Usage:
//
//	recnsweep -sweep saqs [-counts 1,2,4,8,16] [-scale 0.25]
//	recnsweep -sweep threshold [-kb 4,8,16,32,64]
//	recnsweep -sweep boost
//	recnsweep -sweep markers
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		sweep  = flag.String("sweep", "saqs", "sweep to run: saqs, threshold, boost, markers")
		counts = flag.String("counts", "", "comma-separated SAQ counts (saqs sweep)")
		kb     = flag.String("kb", "", "comma-separated detection thresholds in KB (threshold sweep)")
		scale  = flag.Float64("scale", 0.25, "time scale (1.0 = paper durations)")
	)
	flag.Parse()
	o := repro.Options{Scale: *scale}

	var id string
	switch *sweep {
	case "saqs":
		id = "a1"
	case "threshold":
		id = "a2"
	case "boost":
		id = "a3"
	case "markers":
		id = "a4"
	default:
		fmt.Fprintf(os.Stderr, "recnsweep: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}

	// Custom sweep values go through the experiment package's
	// list-taking entry points.
	var tables []*repro.Table
	var err error
	switch {
	case id == "a1" && *counts != "":
		tables, err = repro.SweepSAQs(o, parseInts(*counts, 1))
	case id == "a2" && *kb != "":
		tables, err = repro.SweepThresholds(o, parseInts(*kb, 1024))
	default:
		tables, err = repro.Reproduce(id, o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "recnsweep: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
}

func parseInts(s string, mult int) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "recnsweep: bad value %q\n", part)
			os.Exit(2)
		}
		out = append(out, v*mult)
	}
	return out
}
