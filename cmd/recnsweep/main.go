// Command recnsweep runs parameter sweeps over the RECN design knobs —
// SAQ count per port, congestion-detection threshold, token priority
// boost and in-order markers (the ablations A1–A4 in DESIGN.md) — and
// full-evaluation sweeps over every figure and table. Independent runs
// fan across -j workers and results are reassembled in spec order, so
// output is byte-identical at any parallelism.
//
// Usage:
//
//	recnsweep -sweep saqs [-counts 1,2,4,8,16] [-scale 0.25] [-j 8]
//	recnsweep -sweep threshold [-kb 4,8,16,32,64]
//	recnsweep -sweep boost
//	recnsweep -sweep markers
//	recnsweep -sweep 2a                  # any figure ID (see -sweep list)
//	recnsweep -sweep all -j $(nproc) [-cache ~/.cache/recn]
//
// With -cache DIR, run results are cached by a stable hash of each
// run's spec: re-rendering after changing one knob re-simulates only
// the runs whose spec changed. -no-cache bypasses the cache.
//
// Ctrl-C (or SIGTERM) interrupts a sweep cleanly: in-flight runs stop
// at the next cancellation point and recnsweep exits 130 without
// printing partial tables.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"repro"
	"repro/internal/prof"
)

func main() {
	var (
		sweep   = flag.String("sweep", "saqs", "sweep to run: saqs, threshold, boost, markers, all, list, or any figure ID (2a, lat1, ...)")
		counts  = flag.String("counts", "", "comma-separated SAQ counts (saqs sweep)")
		kb      = flag.String("kb", "", "comma-separated detection thresholds in KB (threshold sweep)")
		scale   = flag.Float64("scale", 0.25, "time scale (1.0 = paper durations)")
		j       = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers (≥ 1)")
		shards  = flag.Int("shards", 0, "shard each simulation across this many cores (windowed runtime; sharded runs bypass the cache; 0 = serial)")
		cache   = flag.String("cache", "", "run-result cache directory (created if missing)")
		noCache = flag.Bool("no-cache", false, "bypass the run-result cache")
		chk     = flag.Bool("check", false, "enable the runtime invariant checker on every run (checked runs bypass the cache)")
		thrSpec = flag.String("throttle", "", "throttle policy tunables, e.g. 'mark=16384,min=100' (defaults apply to omitted keys)")
		arnSpec = flag.String("arn", "", "arn policy tunables, e.g. 'on=16384,off=4096'")
		topo    = flag.String("topo", "", "network topology where the figure allows it: min, fattree, mesh (default per figure; 'list' prints the names and exits)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit (pprof format)")
	)
	flag.Parse()
	if *sweep == "list" {
		fmt.Println(strings.Join(repro.FigureIDs(), "\n"))
		return
	}
	if *topo == "list" {
		fmt.Println(strings.ReplaceAll(repro.TopologyNames(), ", ", "\n"))
		return
	}
	// All flag validation happens before any simulation starts.
	if err := validateFlags(*sweep, *j, *shards, *cache, *topo); err != nil {
		fmt.Fprintf(os.Stderr, "recnsweep: %v\n", err)
		os.Exit(2)
	}
	if _, err := repro.ValidatePolicyOptions(nil, *thrSpec, *arnSpec); err != nil {
		fmt.Fprintf(os.Stderr, "recnsweep: %v\n", err)
		os.Exit(2)
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recnsweep: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "recnsweep: %v\n", err)
			os.Exit(1)
		}
	}()
	// Ctrl-C/SIGTERM cancels the sweep context: workers stop picking up
	// runs, in-flight serial runs stop at the next engine chunk, and the
	// sweep returns ErrCanceled (handled by fail below).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	o := repro.Options{Scale: *scale, Parallelism: *j, Shards: *shards, CacheDir: *cache, NoCache: *noCache, Check: *chk, Context: ctx, ThrottleSpec: *thrSpec, ARNSpec: *arnSpec, Topo: *topo}
	// A failed cache write does not fail a sweep (the result is fresh
	// and correct), but it must not pass silently either: without the
	// warning a full disk or revoked permission would quietly
	// re-simulate everything on every future sweep.
	o.OnCacheSummary = func(s repro.CacheSummary) {
		if s.StoreFailures > 0 {
			fmt.Fprintf(os.Stderr, "recnsweep: warning: %d cache write(s) failed (first: %v); results are correct but will re-simulate next sweep\n",
				s.StoreFailures, s.FirstStoreErr)
		}
	}

	var id string
	switch *sweep {
	case "saqs":
		id = "a1"
	case "threshold":
		id = "a2"
	case "boost":
		id = "a3"
	case "markers":
		id = "a4"
	case "all", "figures":
		for _, fid := range repro.FigureIDs() {
			tables, err := repro.Reproduce(fid, o)
			if err != nil {
				fail(fmt.Sprintf("%s: ", fid), err)
			}
			printTables(tables)
		}
		return
	default:
		// Any figure ID runs directly: `recnsweep -sweep 2a` produces
		// the same bytes the daemon's results endpoint serves for a
		// {"figures":["2a"]} submission.
		if !repro.KnownFigure(*sweep) {
			fmt.Fprintf(os.Stderr, "recnsweep: unknown sweep %q (want saqs, threshold, boost, markers, all, list, or a figure ID: %s)\n",
				*sweep, strings.Join(repro.FigureIDs(), ", "))
			os.Exit(2)
		}
		id = *sweep
	}

	// Custom sweep values go through the experiment package's
	// list-taking entry points.
	var tables []*repro.Table
	switch {
	case id == "a1" && *counts != "":
		tables, err = repro.SweepSAQs(o, parseInts(*counts, 1))
	case id == "a2" && *kb != "":
		tables, err = repro.SweepThresholds(o, parseInts(*kb, 1024))
	default:
		tables, err = repro.Reproduce(id, o)
	}
	if err != nil {
		fail("", err)
	}
	printTables(tables)
}

// fail reports a sweep error and exits: 130 (the conventional
// 128+SIGINT code) when the sweep was interrupted, 1 otherwise.
func fail(prefix string, err error) {
	fmt.Fprintf(os.Stderr, "recnsweep: %s%v\n", prefix, err)
	if errors.Is(err, repro.ErrCanceled) {
		os.Exit(130)
	}
	os.Exit(1)
}

// validateFlags rejects a bad worker count, shard count, topology
// name, an unusable cache directory, or a shards/latency-figure
// combination up front, naming the offending flag; nothing simulates
// until all pass.
func validateFlags(sweep string, j, shards int, cacheDir, topo string) error {
	if j < 1 {
		return fmt.Errorf("-j %d: want at least 1 worker", j)
	}
	if !repro.ValidTopology(topo) {
		return fmt.Errorf("-topo %q: unknown topology (valid: %s; -topo list prints them)", topo, repro.TopologyNames())
	}
	if shards < 0 {
		return fmt.Errorf("-shards %d: want 0 (serial) or a positive shard count", shards)
	}
	if shards > 0 && sweepHasLatency(sweep) {
		return fmt.Errorf("-shards %d: latency figures (lat1/lat2) need the serial per-packet Observe path; drop -shards or pick a non-latency sweep", shards)
	}
	if cacheDir != "" {
		if _, err := repro.OpenRunCache(cacheDir); err != nil {
			return fmt.Errorf("-cache: %w", err)
		}
	}
	return nil
}

// sweepHasLatency reports whether a sweep selection includes the
// latency figures, which cannot run on the sharded runtime.
func sweepHasLatency(sweep string) bool {
	switch strings.ToLower(sweep) {
	case "all", "figures", "lat1", "lat2":
		return true
	}
	return false
}

func printTables(tables []*repro.Table) {
	repro.FprintTables(os.Stdout, tables)
}

func parseInts(s string, mult int) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "recnsweep: bad value %q\n", part)
			os.Exit(2)
		}
		out = append(out, v*mult)
	}
	return out
}
