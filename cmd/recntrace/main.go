// Command recntrace generates, inspects and replays SAN I/O traces in
// the recn-trace text format (the substitute for the paper's HP cello
// traces — see DESIGN.md §5).
//
// Usage:
//
//	recntrace -gen -out cello.trace [-hosts 64] [-duration-us 800] [-seed 7]
//	recntrace -stats cello.trace
//	recntrace -replay cello.trace [-cf 20] [-policy RECN] [-shards 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
)

func main() {
	var (
		gen      = flag.Bool("gen", false, "generate a synthetic cello-model trace")
		out      = flag.String("out", "cello.trace", "output file for -gen")
		hosts    = flag.Int("hosts", 64, "network size")
		duration = flag.Float64("duration-us", 800, "generated trace length in µs")
		seed     = flag.Int64("seed", 7, "generator seed")
		genCF    = flag.Float64("gen-cf", 20, "time compression applied while generating")
		stats    = flag.String("stats", "", "print statistics of a trace file")
		replay   = flag.String("replay", "", "replay a trace file through the simulator")
		cf       = flag.Float64("cf", 20, "time compression factor for -replay")
		shards   = flag.Int("shards", 0, "shard the replay across this many cores (windowed runtime; results are identical at any value ≥ 1 but differ deterministically from the serial engine; 0 = serial)")
		policy   = flag.String("policy", "RECN", "queuing mechanism for -replay")
		chk      = flag.Bool("check", false, "run the replay under the runtime invariant checker and verify the end-of-run accounting")
	)
	flag.Parse()

	switch {
	case *gen:
		tr, err := repro.GenerateCelloTrace(*hosts, repro.Time(*duration*float64(repro.Microsecond)), *genCF, *seed)
		check(err)
		f, err := os.Create(*out)
		check(err)
		check(repro.WriteTrace(f, tr))
		check(f.Close())
		fmt.Printf("wrote %d records to %s\n", len(tr), *out)
	case *stats != "":
		tr := load(*stats)
		printStats(tr)
	case *replay != "":
		// Validate the mechanism name before touching the (possibly
		// large) trace file or building the fabric.
		pol, err := repro.ParsePolicy(*policy)
		check(err)
		tr := load(*replay)
		net, err := newReplayNet(*hosts, pol, *chk)
		check(err)
		if *shards > 0 {
			// Shard before installing the trace so every record schedules
			// on its source host's shard engine.
			_, err := net.Shard(*shards)
			check(err)
			check(repro.ReplayTrace(net, tr, *cf))
			net.DrainWindowed()
		} else {
			check(repro.ReplayTrace(net, tr, *cf))
			net.Engine.Drain()
		}
		if *chk {
			check(net.FinalCheck())
			fmt.Println("invariant checks passed")
		}
		fmt.Printf("policy %s, compression %.0f:\n", pol, *cf)
		fmt.Printf("  delivered %d packets (%d bytes) in %v simulated\n",
			net.DeliveredPackets, net.DeliveredBytes, net.Engine.Now())
		fmt.Printf("  order violations: %d, host-side drops: %d\n", net.OrderViolations, net.DroppedMessages)
		if pol == repro.PolicyRECN {
			st := net.RECNStats()
			fmt.Printf("  SAQ allocations: %d, deallocations: %d, refusals: %d\n",
				st.Allocs, st.Deallocs, st.Refusals)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// newReplayNet builds the replay network, optionally under the
// invariant checker (a violation mid-replay panics with the
// diagnostics snapshot; FinalCheck covers the end-of-run accounting).
func newReplayNet(hosts int, pol repro.Policy, chk bool) (*repro.Network, error) {
	topo, err := repro.NewTopology(hosts)
	if err != nil {
		return nil, err
	}
	cfg := repro.DefaultConfig(topo)
	cfg.Policy = pol
	if chk {
		cfg.Checker = repro.NewChecker(repro.CheckConfig{})
	}
	return repro.NewNetworkConfig(cfg)
}

func load(path string) repro.Trace {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	tr, err := repro.ReadTrace(f)
	check(err)
	return tr
}

func printStats(tr repro.Trace) {
	if len(tr) == 0 {
		fmt.Println("empty trace")
		return
	}
	var bytes int64
	sizes := make([]int, len(tr))
	perDst := map[int]int64{}
	for i, r := range tr {
		bytes += int64(r.Size)
		sizes[i] = r.Size
		perDst[r.Dst] += int64(r.Size)
	}
	sort.Ints(sizes)
	span := tr[len(tr)-1].T - tr[0].T
	fmt.Printf("records:     %d\n", len(tr))
	fmt.Printf("span:        %v\n", span)
	fmt.Printf("total bytes: %d (offered %.3f B/ns)\n", bytes, float64(bytes)/span.Nanos())
	fmt.Printf("sizes:       min %d  p50 %d  p99 %d  max %d\n",
		sizes[0], sizes[len(sizes)/2], sizes[len(sizes)*99/100], sizes[len(sizes)-1])
	type kv struct {
		dst int
		b   int64
	}
	var tops []kv
	for d, b := range perDst {
		tops = append(tops, kv{d, b})
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].b > tops[j].b })
	fmt.Printf("hottest destinations:")
	for i := 0; i < 5 && i < len(tops); i++ {
		fmt.Printf(" %d(%.0f%%)", tops[i].dst, 100*float64(tops[i].b)/float64(bytes))
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "recntrace:", err)
		os.Exit(1)
	}
}
