// Command recnsim reproduces the paper's tables and figures.
//
// Usage:
//
//	recnsim -fig 2a [-scale 0.5] [-pkt 64] [-rows 40]
//	recnsim -list
//	recnsim -all [-scale 0.25]
//
// Figure IDs: table1, 2a–2d, 3a/3b, 4a/4b, 5a/5b, 6a/6b,
// pkt512a/pkt512b, a1–a4. Scale 1.0 runs the paper's full durations
// (slow); smaller scales compress simulated time proportionally.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		fig    = flag.String("fig", "", "figure/table ID to reproduce (see -list)")
		all    = flag.Bool("all", false, "reproduce everything")
		list   = flag.Bool("list", false, "list figure IDs")
		scale  = flag.Float64("scale", 0.25, "time scale (1.0 = paper durations)")
		pkt    = flag.Int("pkt", 0, "packet size in bytes (default per figure)")
		rows   = flag.Int("rows", 40, "max table rows")
		quiet  = flag.Bool("q", false, "suppress timing output")
		format = flag.String("format", "text", "output format: text or csv")
		faults = flag.String("faults", "", "fault-injection spec, e.g. 'seed=1,drop=token:2,droprate=credit:0.01,flap=0:4:100us:140us' (recovery watchdogs enabled; accounting printed in table notes)")
	)
	flag.Parse()

	opts := repro.Options{
		Scale:      *scale,
		PacketSize: *pkt,
		MaxRows:    *rows,
		FaultSpec:  *faults,
	}
	switch {
	case *list:
		fmt.Println(strings.Join(repro.FigureIDs(), "\n"))
		return
	case *all:
		for _, id := range repro.FigureIDs() {
			runOne(id, opts, *quiet, *format)
		}
		return
	case *fig != "":
		runOne(*fig, opts, *quiet, *format)
		return
	}
	flag.Usage()
	os.Exit(2)
}

func runOne(id string, opts repro.Options, quiet bool, format string) {
	start := time.Now()
	tables, err := repro.Reproduce(id, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recnsim: %s: %v\n", id, err)
		os.Exit(1)
	}
	for _, t := range tables {
		if format == "csv" {
			if err := t.FprintCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "recnsim: %v\n", err)
				os.Exit(1)
			}
		} else {
			t.Fprint(os.Stdout)
		}
		fmt.Println()
	}
	if !quiet {
		fmt.Printf("# %s done in %v (scale %.2f)\n\n", id, time.Since(start).Round(time.Millisecond), opts.Scale)
	}
}
