// Command recnsim reproduces the paper's tables and figures.
//
// Usage:
//
//	recnsim -fig 2a [-scale 0.5] [-pkt 64] [-rows 40] [-j 8] [-shards 4]
//	recnsim -fig 2a -trace out.json [-trace-events tree] [-trace-bin 500ns]
//	recnsim -list
//	recnsim -all [-scale 0.25]
//
// Figure IDs: table1, 2a–2d, 3a/3b, 4a/4b, 5a/5b, 6a/6b,
// pkt512a/pkt512b, a1–a4, and the extensions (lat1/lat2, shootout,
// scaling/scaling1k — the memory-scaling figures on the fat tree).
// Scale 1.0 runs the paper's full durations (slow); smaller scales
// compress simulated time proportionally.
//
// With -trace, the figure's RECN run carries a flight recorder and its
// contents are exported as Chrome trace_event JSON — open the file at
// https://ui.perfetto.dev (or chrome://tracing). -trace-log and
// -trace-trees export the same recording as a plain-text event log and
// a congestion-tree lifecycle timeline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/prof"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure/table ID to reproduce (see -list)")
		all      = flag.Bool("all", false, "reproduce everything")
		list     = flag.Bool("list", false, "list figure IDs")
		scale    = flag.Float64("scale", 0.25, "time scale (1.0 = paper durations)")
		j        = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers for multi-policy figures (≥ 1; output is identical at any setting)")
		shards   = flag.Int("shards", 0, "shard each simulation across this many cores (windowed runtime; output is identical at any value ≥ 1 but differs deterministically from the default serial engine; 0 = serial; the latency figures lat1/lat2 always run serial)")
		pkt      = flag.Int("pkt", 0, "packet size in bytes (default per figure)")
		rows     = flag.Int("rows", 40, "max table rows")
		quiet    = flag.Bool("q", false, "suppress timing output")
		format   = flag.String("format", "text", "output format: text or csv")
		policies = flag.String("policies", "", "comma-separated mechanisms to run where the figure allows it, e.g. 'RECN,VOQnet' (default per figure)")
		topo     = flag.String("topo", "", "network topology where the figure allows it: min, fattree, mesh (default per figure; 'list' prints the names and exits)")
		eager    = flag.Bool("eager", false, "fully preallocate per-port state instead of lazy materialization (identical output; only the memory columns and the process footprint move)")
		faults   = flag.String("faults", "", "fault-injection spec, e.g. 'seed=1,drop=token:2,droprate=credit:0.01,flap=0:4:100us:140us' (recovery watchdogs enabled; accounting printed in table notes)")
		thrSpec  = flag.String("throttle", "", "throttle policy tunables, e.g. 'mark=16384,min=100,dec=500,inc=50,period=5us,delay=500ns,cnp=1us' (defaults apply to omitted keys)")
		arnSpec  = flag.String("arn", "", "arn policy tunables, e.g. 'on=16384,off=4096' (hint hysteresis thresholds in bytes)")
		chk      = flag.Bool("check", false, "enable the runtime invariant checker on every run (packet/credit conservation, SAQ lifecycle, deadlock/livelock); a violation aborts with a diagnostics snapshot")

		traceOut    = flag.String("trace", "", "write the figure's flight recording as Chrome trace_event JSON (open in Perfetto)")
		traceLog    = flag.String("trace-log", "", "write the flight recording as a plain-text event log")
		traceTrees  = flag.String("trace-trees", "", "write the congestion-tree lifecycle timeline")
		traceEvents = flag.String("trace-events", "", "comma-separated event kinds to record, e.g. 'saq,token', 'tree', 'packet', 'all' (default all)")
		traceBuf    = flag.Int("trace-buf", 0, "flight-recorder ring capacity in events (default 65536)")
		traceBin    = flag.String("trace-bin", "", "metrics sampling period for counter tracks, e.g. '500ns' (default off)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit (pprof format)")
	)
	flag.Parse()

	// -topo list is an escape hatch: print the accepted names and exit
	// before anything else (profiling included) starts.
	if *topo == "list" {
		fmt.Println(strings.ReplaceAll(repro.TopologyNames(), ", ", "\n"))
		return
	}
	if !repro.ValidTopology(*topo) {
		fatal(fmt.Errorf("-topo %q: unknown topology (valid: %s; -topo list prints them)", *topo, repro.TopologyNames()))
	}
	if *fig != "" && !repro.KnownFigure(*fig) {
		fatal(fmt.Errorf("-fig %q: unknown figure (valid: %s)", *fig, strings.Join(repro.FigureIDs(), ", ")))
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	if *j < 1 {
		fatal(fmt.Errorf("-j %d: want at least 1 worker", *j))
	}
	if *shards < 0 {
		fatal(fmt.Errorf("-shards %d: want 0 (serial) or a positive shard count", *shards))
	}
	opts := repro.Options{
		Scale:        *scale,
		PacketSize:   *pkt,
		MaxRows:      *rows,
		FaultSpec:    *faults,
		ThrottleSpec: *thrSpec,
		ARNSpec:      *arnSpec,
		Parallelism:  *j,
		Shards:       *shards,
		Check:        *chk,
		Topo:         *topo,
		EagerState:   *eager,
	}
	// Validate mechanism names and policy tunables up front, before any
	// (possibly long) simulation starts.
	opts.Policies, err = repro.ValidatePolicyOptions(splitList(*policies), *thrSpec, *arnSpec)
	if err != nil {
		fatal(err)
	}

	tracing := *traceOut != "" || *traceLog != "" || *traceTrees != ""
	var recorder *repro.TraceRecorder
	if tracing {
		cfg := repro.TraceConfig{BufferEvents: *traceBuf}
		if *traceEvents != "" {
			mask, err := repro.ParseTraceEvents(*traceEvents)
			if err != nil {
				fatal(err)
			}
			cfg.Events = mask
		}
		if *traceBin != "" {
			bin, err := repro.ParseTime(*traceBin)
			if err != nil {
				fatal(fmt.Errorf("-trace-bin: %w", err))
			}
			cfg.MetricsBin = bin
		}
		opts.Trace = &cfg
		// Keep the RECN run's recorder (the mechanism the trace
		// subsystem is about); fall back to whichever run came last.
		opts.OnTrace = func(label string, rec *repro.TraceRecorder) {
			if recorder == nil || label == repro.PolicyRECN.String() {
				recorder = rec
			}
		}
	} else if *traceEvents != "" || *traceBin != "" || *traceBuf != 0 {
		fatal(fmt.Errorf("-trace-events/-trace-bin/-trace-buf need an output: set -trace, -trace-log or -trace-trees"))
	}

	switch {
	case *list:
		fmt.Println(strings.Join(repro.FigureIDs(), "\n"))
		return
	case *all:
		if tracing {
			fatal(fmt.Errorf("-trace needs a single figure: use -fig, not -all"))
		}
		for _, id := range repro.FigureIDs() {
			runOne(id, opts, *quiet, *format)
		}
		return
	case *fig != "":
		runOne(*fig, opts, *quiet, *format)
		if tracing {
			if recorder == nil {
				fatal(fmt.Errorf("figure %s has no traceable simulation runs", *fig))
			}
			writeTrace(recorder, *traceOut, *traceLog, *traceTrees, *quiet)
		}
		return
	}
	flag.Usage()
	os.Exit(2)
}

func runOne(id string, opts repro.Options, quiet bool, format string) {
	start := time.Now()
	tables, err := repro.Reproduce(id, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recnsim: %s: %v\n", id, err)
		os.Exit(1)
	}
	for _, t := range tables {
		if format == "csv" {
			if err := t.FprintCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			t.Fprint(os.Stdout)
		}
		fmt.Println()
	}
	if !quiet {
		fmt.Printf("# %s done in %v (scale %.2f)\n\n", id, time.Since(start).Round(time.Millisecond), opts.Scale)
	}
}

// writeTrace exports the captured flight recording in every requested
// format.
func writeTrace(rec *repro.TraceRecorder, chrome, log, trees string, quiet bool) {
	type export struct {
		path  string
		write func(w io.Writer) error
		what  string
	}
	for _, e := range []export{
		{chrome, rec.WriteChromeTrace, "Chrome trace (open in Perfetto)"},
		{log, rec.WriteText, "event log"},
		{trees, rec.WriteTrees, "congestion-tree timeline"},
	} {
		if e.path == "" {
			continue
		}
		f, err := os.Create(e.path)
		if err != nil {
			fatal(err)
		}
		if err := e.write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !quiet {
			fmt.Printf("# wrote %s to %s\n", e.what, e.path)
		}
	}
	if !quiet {
		fmt.Printf("# trace: %d events recorded, %d overwritten, %d congestion trees\n",
			rec.Total(), rec.Overwritten(), len(rec.Trees()))
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recnsim:", err)
	os.Exit(1)
}
