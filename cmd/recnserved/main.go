// Command recnserved is the sweep-as-a-service daemon: it serves an
// HTTP/JSON API over a bounded, admission-controlled job queue that
// drains into the parallel sweep engine, backed by the content-
// addressed run cache so repeat submissions are cache hits.
//
// Usage:
//
//	recnserved -addr :8080 -cache ~/.cache/recn -queue-cap 64 -max-runs 64
//
// Submit, poll, fetch and stream:
//
//	curl -X POST localhost:8080/v1/sweeps -d '{"figures":["2a"],"scale":0.05}'
//	curl -X POST localhost:8080/v1/sweeps -d '{"figures":["scaling1k"],"topo":"fattree","scale":0.05}'
//	curl localhost:8080/v1/sweeps/s000001
//	curl localhost:8080/v1/sweeps/s000001/results
//	curl -N localhost:8080/v1/sweeps/s000001/events
//	curl localhost:8080/metrics
//
// SIGTERM/SIGINT drains in-flight jobs, persists still-queued jobs to
// the state file (default <cache>/queue.json), and exits; a restart
// re-enqueues them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		cache    = flag.String("cache", "", "run-result cache directory (created if missing); also enables GET /v1/runs/{key} and default queue-state persistence")
		queueCap = flag.Int("queue-cap", 64, "bounded job-queue capacity; submissions beyond it are rejected with 429 queue_full")
		workers  = flag.Int("workers", 1, "concurrent jobs (jobs start in FIFO order regardless)")
		maxRuns  = flag.Int("max-runs", 64, "per-request admission limit on estimated simulation count (413 too_many_runs)")
		j        = flag.Int("j", runtime.GOMAXPROCS(0), "per-job sweep parallelism")
		state    = flag.String("state", "", "queue-state persistence file (default <cache>/queue.json; empty without -cache = no persistence)")
		drain    = flag.Duration("drain-timeout", 10*time.Minute, "how long shutdown waits for in-flight jobs before canceling them")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "recnserved: ", log.LstdFlags)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := repro.Serve(ctx, repro.ServerConfig{
		Addr:          *addr,
		CacheDir:      *cache,
		QueueCap:      *queueCap,
		Workers:       *workers,
		MaxRunsPerJob: *maxRuns,
		Parallelism:   *j,
		StateFile:     *state,
		DrainTimeout:  *drain,
		Logf:          logger.Printf,
	})
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "recnserved: %v\n", err)
		os.Exit(1)
	}
}
