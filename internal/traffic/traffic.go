// Package traffic generates the workloads of the paper's evaluation
// (Section 4.2): the two synthetic corner cases of Table 1 (uniform
// random background plus a transient hotspot) and a SAN I/O trace
// workload. The HP Labs cello traces the paper used are not publicly
// available; cello.go implements a statistically similar storage-
// system model, and trace.go defines a text trace format so real traces
// can be replayed instead (see DESIGN.md §5).
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Network is the injection surface a generator drives. fabric.Network
// is adapted to it by the experiments package; tests can use fakes.
type Network interface {
	// Hosts returns the number of endpoints.
	Hosts() int
	// Now returns the current simulation time.
	Now() sim.Time
	// Schedule runs fn at an absolute simulation time.
	Schedule(at sim.Time, fn func())
	// Inject generates a message at src for dst.
	Inject(src, dst, size int)
}

// HostNetwork is an optional Network extension the sharded runtime
// implements: HostView returns a per-host injection surface whose Now,
// Schedule and Inject run on the engine that simulates the host, and
// ScheduleOn schedules fn on another host's engine (mailboxed at a
// window boundary — for deferred replies like Cello's disk responses).
// Generators resolve the extension through hostView/scheduleOn, which
// fall back to the plain Network, so serial runs are untouched.
type HostNetwork interface {
	Network
	HostView(host int) Network
	ScheduleOn(caller, host int, at sim.Time, fn func())
}

// hostView returns the injection surface for one host's stream.
func hostView(net Network, host int) Network {
	if hn, ok := net.(HostNetwork); ok {
		return hn.HostView(host)
	}
	return net
}

// scheduleOn schedules fn on host's engine from caller's stream.
func scheduleOn(net Network, caller, host int, at sim.Time, fn func()) {
	if hn, ok := net.(HostNetwork); ok {
		hn.ScheduleOn(caller, host, at, fn)
		return
	}
	net.Schedule(at, fn)
}

// Uniform injects fixed-size messages from each source to uniformly
// random destinations at a fraction of the link rate. Injection is
// deterministic-rate (back-to-back at Rate 1.0) with a random initial
// phase, matching the paper's "inject at the full link rate".
type Uniform struct {
	// Sources inject; destinations are drawn uniformly from all hosts
	// except the source itself.
	Sources []int
	// Rate is the fraction of the 1 byte/ns link bandwidth.
	Rate float64
	// MsgSize is the message size in bytes (= packet size in the
	// paper's corner cases).
	MsgSize int
	// Start and End bound the injection interval (End 0 = forever).
	Start, End sim.Time
	// Seed makes the run reproducible.
	Seed int64
}

// Install schedules the generator's events on the network.
func (u Uniform) Install(net Network) error {
	if err := validateRate(u.Rate); err != nil {
		return err
	}
	if u.MsgSize <= 0 {
		return fmt.Errorf("traffic: message size %d", u.MsgSize)
	}
	gap := interMessageGap(u.MsgSize, u.Rate)
	for i, src := range u.Sources {
		src := src
		hv := hostView(net, src)
		rng := rand.New(rand.NewSource(u.Seed + int64(i)*7919))
		var gen func()
		gen = func() {
			if u.End != 0 && hv.Now() >= u.End {
				return
			}
			dst := rng.Intn(hv.Hosts() - 1)
			if dst >= src {
				dst++
			}
			hv.Inject(src, dst, u.MsgSize)
			hv.Schedule(hv.Now()+gap, gen)
		}
		phase := sim.Time(rng.Int63n(int64(gap) + 1))
		hv.Schedule(u.Start+phase, gen)
	}
	return nil
}

// Hotspot injects fixed-size messages from each source to a single
// destination at a fraction of link rate during [Start, End).
type Hotspot struct {
	Sources    []int
	Dest       int
	Rate       float64
	MsgSize    int
	Start, End sim.Time
	Seed       int64
}

// Install schedules the generator's events on the network.
func (h Hotspot) Install(net Network) error {
	if err := validateRate(h.Rate); err != nil {
		return err
	}
	if h.MsgSize <= 0 {
		return fmt.Errorf("traffic: message size %d", h.MsgSize)
	}
	gap := interMessageGap(h.MsgSize, h.Rate)
	for i, src := range h.Sources {
		src := src
		if src == h.Dest {
			return fmt.Errorf("traffic: hotspot source %d equals destination", src)
		}
		hv := hostView(net, src)
		rng := rand.New(rand.NewSource(h.Seed + int64(i)*104729))
		var gen func()
		gen = func() {
			if h.End != 0 && hv.Now() >= h.End {
				return
			}
			hv.Inject(src, h.Dest, h.MsgSize)
			hv.Schedule(hv.Now()+gap, gen)
		}
		phase := sim.Time(rng.Int63n(int64(gap) + 1))
		hv.Schedule(h.Start+phase, gen)
	}
	return nil
}

func validateRate(r float64) error {
	if r <= 0 || r > 1 {
		return fmt.Errorf("traffic: rate %v outside (0, 1]", r)
	}
	return nil
}

// interMessageGap returns the message period for a size and a fraction
// of the 1 byte/ns link rate.
func interMessageGap(size int, rate float64) sim.Time {
	return sim.Time(float64(size) / rate * float64(sim.Nanosecond))
}

// CornerCase describes one of the paper's Table 1 scenarios plus the
// Figure 6 variants for larger networks: random background traffic for
// the whole run and a hotspot during a window.
type CornerCase struct {
	Name          string
	Hosts         int
	RandomSources []int
	RandomRate    float64
	HotSources    []int
	HotDest       int
	HotStart      sim.Time
	HotEnd        sim.Time
	SimEnd        sim.Time
	MsgSize       int
	Seed          int64
}

// hostRange returns [lo, hi).
func hostRange(lo, hi int) []int {
	r := make([]int, hi-lo)
	for i := range r {
		r[i] = lo + i
	}
	return r
}

// Corner returns the paper's corner case 1 or 2 for a 64-host network
// (Table 1), or the Figure 6 hotspot scenario for 256/512 hosts (which
// follows corner case 2: all background sources at full rate). scale
// compresses all times; 1.0 reproduces the paper's 800 µs onset and
// 170 µs congestion-tree lifetime, with the run ending at 1600 µs.
func Corner(number, hosts, msgSize int, scale float64) (CornerCase, error) {
	if number != 1 && number != 2 {
		return CornerCase{}, fmt.Errorf("traffic: corner case %d (want 1 or 2)", number)
	}
	if scale <= 0 {
		return CornerCase{}, fmt.Errorf("traffic: scale %v", scale)
	}
	rate := 1.0
	if number == 1 && hosts == 64 {
		rate = 0.5 // Figure 6 uses full-rate background
	}
	var dest, hotCount int
	switch hosts {
	case 64:
		// 48 random sources + 16 hotspot sources to destination 32
		// (Table 1).
		hotCount, dest = 16, 32
	case 256:
		// Fig 6.a: 192 random at full rate, 64 hotspot sources.
		hotCount, dest = 64, 128
	case 512:
		// Fig 6.b: 384 random at full rate, 128 hotspot sources.
		hotCount, dest = 128, 256
	default:
		return CornerCase{}, fmt.Errorf("traffic: no corner case defined for %d hosts", hosts)
	}
	// The paper does not say which hosts form the hotspot group. The
	// sources must be scattered across leaf switches — if they were
	// contiguous, destination-based deterministic routing would give
	// the congestion tree a subtree fully disjoint from the background
	// traffic and no HOL blocking could occur. One hotspot source per
	// leaf switch (hosts 3, 7, 11, …) makes every leaf up-link carry
	// both hot and background flows, which is the scenario Figure 2
	// shows.
	var random, hot []int
	stridePick := hosts / hotCount
	for h := 0; h < hosts; h++ {
		if h%stridePick == stridePick-1 {
			hot = append(hot, h)
		} else {
			random = append(random, h)
		}
	}
	t := func(us float64) sim.Time { return sim.Time(us * scale * float64(sim.Microsecond)) }
	return CornerCase{
		Name:          fmt.Sprintf("corner case %d (%d hosts)", number, hosts),
		Hosts:         hosts,
		RandomSources: random,
		RandomRate:    rate,
		HotSources:    hot,
		HotDest:       dest,
		HotStart:      t(800),
		HotEnd:        t(970),
		SimEnd:        t(1600),
		MsgSize:       msgSize,
		Seed:          1,
	}, nil
}

// Install schedules both traffic components.
func (c CornerCase) Install(net Network) error {
	if net.Hosts() != c.Hosts {
		return fmt.Errorf("traffic: corner case for %d hosts on a %d-host network", c.Hosts, net.Hosts())
	}
	if err := (Uniform{
		Sources: c.RandomSources,
		Rate:    c.RandomRate,
		MsgSize: c.MsgSize,
		End:     c.SimEnd,
		Seed:    c.Seed,
	}).Install(net); err != nil {
		return err
	}
	return Hotspot{
		Sources: c.HotSources,
		Dest:    c.HotDest,
		Rate:    1.0,
		MsgSize: c.MsgSize,
		Start:   c.HotStart,
		End:     c.HotEnd,
		Seed:    c.Seed + 1,
	}.Install(net)
}
