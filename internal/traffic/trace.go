package traffic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Record is one message of a trace file.
type Record struct {
	T    sim.Time // generation time
	Src  int
	Dst  int
	Size int // bytes
}

// Trace is a time-ordered message list. Real I/O traces (such as the
// HP cello traces the paper used) can be converted to this format and
// replayed with a compression factor.
type Trace []Record

// The text format: one record per line, `<time_ns> <src> <dst> <bytes>`,
// '#' comments and blank lines ignored.
const traceHeader = "# recn-trace v1"

// WriteTrace writes the trace in the text format.
func WriteTrace(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, traceHeader); err != nil {
		return err
	}
	for _, r := range tr {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", int64(r.T)/int64(sim.Nanosecond), r.Src, r.Dst, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses the text format.
func ReadTrace(r io.Reader) (Trace, error) {
	var tr Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var tNanos int64
		var rec Record
		if _, err := fmt.Sscanf(text, "%d %d %d %d", &tNanos, &rec.Src, &rec.Dst, &rec.Size); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %w", line, err)
		}
		if tNanos < 0 || rec.Size <= 0 {
			return nil, fmt.Errorf("traffic: trace line %d: invalid record %q", line, text)
		}
		rec.T = sim.Time(tNanos) * sim.Nanosecond
		tr = append(tr, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Sorted reports whether the trace is in nondecreasing time order.
func (tr Trace) Sorted() bool {
	return sort.SliceIsSorted(tr, func(i, j int) bool { return tr[i].T < tr[j].T })
}

// Sort orders the trace by time (stable, preserving same-time order).
func (tr Trace) Sort() {
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].T < tr[j].T })
}

// Replay installs the trace on a network, dividing timestamps by the
// compression factor (the paper's mechanism for modeling faster
// devices).
type Replay struct {
	Trace       Trace
	Compression float64
}

// Install schedules every record.
func (rp Replay) Install(net Network) error {
	if rp.Compression <= 0 {
		return fmt.Errorf("traffic: compression factor %v", rp.Compression)
	}
	if !rp.Trace.Sorted() {
		return fmt.Errorf("traffic: trace not time-ordered (call Sort first)")
	}
	hosts := net.Hosts()
	for _, r := range rp.Trace {
		if r.Src < 0 || r.Src >= hosts || r.Dst < 0 || r.Dst >= hosts || r.Src == r.Dst {
			return fmt.Errorf("traffic: record %+v invalid for %d hosts", r, hosts)
		}
	}
	for _, r := range rp.Trace {
		r := r
		hv := hostView(net, r.Src)
		hv.Schedule(sim.Time(float64(r.T)/rp.Compression), func() {
			hv.Inject(r.Src, r.Dst, r.Size)
		})
	}
	return nil
}

// Capture builds a Trace by recording every Inject call, for writing
// synthetic workloads (e.g. the Cello model) to files.
type Capture struct {
	inner Network
	Out   Trace
}

// NewCapture wraps a network so injections are recorded as they are
// forwarded.
func NewCapture(inner Network) *Capture { return &Capture{inner: inner} }

// Hosts returns the wrapped network's endpoint count.
func (c *Capture) Hosts() int { return c.inner.Hosts() }

// Now returns the wrapped network's clock.
func (c *Capture) Now() sim.Time { return c.inner.Now() }

// Schedule forwards to the wrapped network.
func (c *Capture) Schedule(at sim.Time, fn func()) { c.inner.Schedule(at, fn) }

// Inject records the message and forwards it.
func (c *Capture) Inject(src, dst, size int) {
	c.Out = append(c.Out, Record{T: c.inner.Now(), Src: src, Dst: dst, Size: size})
	c.inner.Inject(src, dst, size)
}
