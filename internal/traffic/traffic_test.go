package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// fakeNet records injections against a real event engine.
type fakeNet struct {
	eng   *sim.Engine
	hosts int
	msgs  []Record
}

func newFakeNet(hosts int) *fakeNet {
	return &fakeNet{eng: sim.NewEngine(), hosts: hosts}
}

func (f *fakeNet) Hosts() int                      { return f.hosts }
func (f *fakeNet) Now() sim.Time                   { return f.eng.Now() }
func (f *fakeNet) Schedule(at sim.Time, fn func()) { f.eng.Schedule(at, fn) }
func (f *fakeNet) Inject(src, dst, size int) {
	f.msgs = append(f.msgs, Record{T: f.eng.Now(), Src: src, Dst: dst, Size: size})
}

func TestUniformRateAndDestinations(t *testing.T) {
	net := newFakeNet(64)
	u := Uniform{
		Sources: hostRange(0, 8),
		Rate:    0.5,
		MsgSize: 64,
		End:     100 * sim.Microsecond,
		Seed:    3,
	}
	if err := u.Install(net); err != nil {
		t.Fatal(err)
	}
	net.eng.Drain()
	// 8 sources × 0.5 B/ns × 100 µs = 400 KB total, i.e. 6250 packets;
	// allow a small tolerance for start phases.
	want := 8 * 0.5 * 100_000 / 64.0
	got := float64(len(net.msgs))
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("injected %v messages, want ≈%v", got, want)
	}
	for _, m := range net.msgs {
		if m.Dst == m.Src || m.Dst < 0 || m.Dst >= 64 {
			t.Fatalf("bad destination: %+v", m)
		}
		if m.Size != 64 {
			t.Fatalf("bad size: %+v", m)
		}
	}
	// Destinations cover a broad range.
	seen := map[int]bool{}
	for _, m := range net.msgs {
		seen[m.Dst] = true
	}
	if len(seen) < 50 {
		t.Fatalf("only %d distinct destinations", len(seen))
	}
}

func TestUniformValidation(t *testing.T) {
	net := newFakeNet(8)
	if err := (Uniform{Sources: []int{0}, Rate: 0, MsgSize: 64}).Install(net); err == nil {
		t.Error("rate 0 accepted")
	}
	if err := (Uniform{Sources: []int{0}, Rate: 1.5, MsgSize: 64}).Install(net); err == nil {
		t.Error("rate 1.5 accepted")
	}
	if err := (Uniform{Sources: []int{0}, Rate: 1, MsgSize: 0}).Install(net); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestHotspotWindow(t *testing.T) {
	net := newFakeNet(64)
	h := Hotspot{
		Sources: hostRange(48, 64),
		Dest:    32,
		Rate:    1.0,
		MsgSize: 64,
		Start:   800 * sim.Microsecond,
		End:     970 * sim.Microsecond,
		Seed:    1,
	}
	if err := h.Install(net); err != nil {
		t.Fatal(err)
	}
	net.eng.Drain()
	if len(net.msgs) == 0 {
		t.Fatal("no hotspot messages")
	}
	for _, m := range net.msgs {
		if m.Dst != 32 {
			t.Fatalf("hotspot message to %d", m.Dst)
		}
		if m.T < 800*sim.Microsecond || m.T >= 970*sim.Microsecond+64*sim.Nanosecond {
			t.Fatalf("message outside window: %v", m.T)
		}
	}
	// 16 sources × 1 B/ns × 170 µs / 64 B ≈ 42500 messages.
	want := 16.0 * 170_000 / 64
	got := float64(len(net.msgs))
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("injected %v, want ≈%v", got, want)
	}
	// Source equal to destination is rejected.
	bad := Hotspot{Sources: []int{32}, Dest: 32, Rate: 1, MsgSize: 64}
	if err := bad.Install(newFakeNet(64)); err == nil {
		t.Error("hotspot with source == dest accepted")
	}
}

func TestCornerConfigs(t *testing.T) {
	for _, tc := range []struct {
		number, hosts    int
		wantRate         float64
		wantRnd, wantHot int
	}{
		{1, 64, 0.5, 48, 16},
		{2, 64, 1.0, 48, 16},
		{2, 256, 1.0, 192, 64},
		{2, 512, 1.0, 384, 128},
	} {
		c, err := Corner(tc.number, tc.hosts, 64, 1.0)
		if err != nil {
			t.Fatalf("Corner(%d,%d): %v", tc.number, tc.hosts, err)
		}
		if c.RandomRate != tc.wantRate {
			t.Errorf("case %d/%d: rate %v", tc.number, tc.hosts, c.RandomRate)
		}
		if len(c.RandomSources) != tc.wantRnd || len(c.HotSources) != tc.wantHot {
			t.Errorf("case %d/%d: %d random, %d hot", tc.number, tc.hosts, len(c.RandomSources), len(c.HotSources))
		}
		if c.HotStart != 800*sim.Microsecond || c.HotEnd != 970*sim.Microsecond {
			t.Errorf("case %d/%d: window %v–%v", tc.number, tc.hosts, c.HotStart, c.HotEnd)
		}
		for _, s := range c.HotSources {
			if s == c.HotDest {
				t.Errorf("hot dest among sources")
			}
		}
	}
	if _, err := Corner(3, 64, 64, 1); err == nil {
		t.Error("corner case 3 accepted")
	}
	if _, err := Corner(1, 100, 64, 1); err == nil {
		t.Error("100-host corner accepted")
	}
	if _, err := Corner(1, 64, 64, 0); err == nil {
		t.Error("zero scale accepted")
	}
	// Scaling compresses times.
	c, _ := Corner(1, 64, 64, 0.1)
	if c.HotStart != 80*sim.Microsecond {
		t.Errorf("scaled start %v", c.HotStart)
	}
}

func TestCornerInstall(t *testing.T) {
	net := newFakeNet(64)
	c, _ := Corner(1, 64, 64, 0.05) // 80 µs run
	if err := c.Install(net); err != nil {
		t.Fatal(err)
	}
	net.eng.Drain()
	hot, rnd := 0, 0
	for _, m := range net.msgs {
		if m.Src%4 == 3 { // hot sources are scattered, one per leaf switch
			hot++
			if m.Dst != 32 {
				t.Fatalf("hot source sent to %d", m.Dst)
			}
		} else {
			rnd++
		}
	}
	if hot == 0 || rnd == 0 {
		t.Fatalf("hot=%d rnd=%d", hot, rnd)
	}
	// Host-count mismatch is rejected.
	if err := c.Install(newFakeNet(256)); err == nil {
		t.Error("mismatched host count accepted")
	}
}

func TestCelloWorkloadShape(t *testing.T) {
	net := newFakeNet(64)
	c := DefaultCello(20)
	c.Duration = 100 * sim.Microsecond
	if err := c.Install(net); err != nil {
		t.Fatal(err)
	}
	net.eng.Drain()
	if len(net.msgs) == 0 {
		t.Fatal("cello generated nothing")
	}
	hosts := 64 - c.Disks
	toDisk, fromDisk := 0, 0
	var bulkToDisk, bulkFromDisk int
	for _, m := range net.msgs {
		switch {
		case m.Src < hosts && m.Dst >= hosts:
			toDisk++
			if m.Size > 512 {
				bulkToDisk++
			}
		case m.Src >= hosts && m.Dst < hosts:
			fromDisk++
			if m.Size > 64 {
				bulkFromDisk++
			}
		default:
			t.Fatalf("host-to-host message: %+v", m)
		}
		if m.Size <= 0 || m.Size > 64*1024 {
			t.Fatalf("bad size %d", m.Size)
		}
	}
	if toDisk == 0 || fromDisk == 0 || bulkToDisk == 0 || bulkFromDisk == 0 {
		t.Fatalf("missing traffic classes: toDisk=%d fromDisk=%d bulkTo=%d bulkFrom=%d",
			toDisk, fromDisk, bulkToDisk, bulkFromDisk)
	}
	// Disk popularity is skewed: the busiest disk sees far more than
	// the average.
	perDisk := make([]int, c.Disks)
	for _, m := range net.msgs {
		if m.Dst >= hosts {
			perDisk[m.Dst-hosts]++
		}
	}
	max, sum := 0, 0
	for _, v := range perDisk {
		sum += v
		if v > max {
			max = v
		}
	}
	if float64(max) < 2*float64(sum)/float64(c.Disks) {
		t.Errorf("disk popularity not skewed: max=%d avg=%v", max, float64(sum)/float64(c.Disks))
	}
}

func TestCelloCompressionScalesLoad(t *testing.T) {
	load := func(cf float64) int {
		net := newFakeNet(64)
		c := DefaultCello(cf)
		c.Duration = 150 * sim.Microsecond
		if err := c.Install(net); err != nil {
			t.Fatal(err)
		}
		net.eng.Drain()
		total := 0
		for _, m := range net.msgs {
			total += m.Size
		}
		return total
	}
	l20, l40 := load(20), load(40)
	if float64(l40) < 1.4*float64(l20) {
		t.Errorf("compression 40 load %d not ≫ compression 20 load %d", l40, l20)
	}
}

func TestCelloValidation(t *testing.T) {
	net := newFakeNet(16)
	c := DefaultCello(20)
	c.Disks = 16
	if err := c.Install(net); err == nil {
		t.Error("disks == hosts accepted")
	}
	c = DefaultCello(0)
	if err := c.Install(net); err == nil {
		t.Error("compression 0 accepted")
	}
	c = DefaultCello(20)
	c.Duration = 0
	if err := c.Install(net); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := Trace{
		{T: 0, Src: 1, Dst: 2, Size: 64},
		{T: 1500 * sim.Nanosecond, Src: 2, Dst: 3, Size: 4096},
		{T: 2 * sim.Microsecond, Src: 0, Dst: 1, Size: 512},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("round trip %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], tr[i])
		}
	}
}

func TestTraceParseErrors(t *testing.T) {
	for _, text := range []string{
		"1 2 3",     // missing field
		"x 1 2 64",  // non-numeric
		"-5 1 2 64", // negative time
		"5 1 2 0",   // zero size
	} {
		if _, err := ReadTrace(strings.NewReader(traceHeader + "\n" + text + "\n")); err == nil {
			t.Errorf("parse accepted %q", text)
		}
	}
	// Comments and blanks are fine.
	tr, err := ReadTrace(strings.NewReader("# hi\n\n10 1 2 64\n"))
	if err != nil || len(tr) != 1 {
		t.Fatalf("comment handling: %v %v", tr, err)
	}
}

func TestReplay(t *testing.T) {
	tr := Trace{
		{T: 100 * sim.Nanosecond, Src: 0, Dst: 1, Size: 64},
		{T: 200 * sim.Nanosecond, Src: 1, Dst: 0, Size: 64},
	}
	net := newFakeNet(4)
	if err := (Replay{Trace: tr, Compression: 2}).Install(net); err != nil {
		t.Fatal(err)
	}
	net.eng.Drain()
	if len(net.msgs) != 2 {
		t.Fatalf("replayed %d", len(net.msgs))
	}
	if net.msgs[0].T != 50*sim.Nanosecond || net.msgs[1].T != 100*sim.Nanosecond {
		t.Fatalf("compression not applied: %+v", net.msgs)
	}
	// Unsorted traces are rejected; Sort fixes them.
	bad := Trace{{T: 10, Src: 0, Dst: 1, Size: 1}, {T: 5, Src: 0, Dst: 1, Size: 1}}
	if err := (Replay{Trace: bad, Compression: 1}).Install(newFakeNet(4)); err == nil {
		t.Error("unsorted trace accepted")
	}
	bad.Sort()
	if !bad.Sorted() {
		t.Error("Sort did not sort")
	}
	// Invalid records rejected.
	oob := Trace{{T: 1, Src: 0, Dst: 9, Size: 1}}
	if err := (Replay{Trace: oob, Compression: 1}).Install(newFakeNet(4)); err == nil {
		t.Error("out-of-range record accepted")
	}
	if err := (Replay{Trace: tr, Compression: 0}).Install(newFakeNet(4)); err == nil {
		t.Error("zero compression accepted")
	}
}

func TestCapture(t *testing.T) {
	inner := newFakeNet(8)
	cap := NewCapture(inner)
	cap.Schedule(10, func() { cap.Inject(1, 2, 64) })
	inner.eng.Drain()
	if len(cap.Out) != 1 || cap.Out[0].T != 10 || cap.Out[0].Src != 1 {
		t.Fatalf("capture: %+v", cap.Out)
	}
	if len(inner.msgs) != 1 {
		t.Fatal("capture did not forward")
	}
	if cap.Hosts() != 8 || cap.Now() != inner.eng.Now() {
		t.Error("capture wrappers broken")
	}
}
