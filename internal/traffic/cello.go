package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Cello models the I/O workload of the HP Labs cello system the paper
// replayed (Section 4.2): a timesharing machine whose hosts issue
// read/write requests against 23 disks. The original 1999 traces are
// not distributable, so this generator synthesizes a statistically
// similar load (see DESIGN.md §5):
//
//   - a fixed set of disk endpoints (the last Disks host IDs);
//   - Zipf-distributed disk popularity (storage access is skewed, so
//     transient congestion trees form at popular disks);
//   - ON/OFF bursty arrivals per host (I/O comes in bursts separated
//     by think time, which is what makes time compression interesting);
//   - writes (2/3 of requests, cello being write-heavy) send bulk data
//     and get a small acknowledgment; reads send a small command and
//     get a bulk reply; transfer sizes are log-normal around 8 KB,
//     capped at 64 KB.
//
// The paper applies a time compression factor to model faster devices;
// Compression divides every generated gap.
type Cello struct {
	// Disks is the number of storage endpoints (23 in cello).
	Disks int
	// Compression is the paper's trace time-compression factor.
	Compression float64
	// Duration bounds request generation.
	Duration sim.Time
	// Seed makes the run reproducible.
	Seed int64

	// BurstMean is the mean number of requests per ON burst.
	BurstMean float64
	// ThinkTime is the mean OFF gap between bursts before compression.
	ThinkTime sim.Time
	// ServiceTime is the mean disk service latency per request.
	ServiceTime sim.Time
}

// DefaultCello returns the model parameters used by the experiments,
// calibrated so the offered load matches the paper's Figure 3 range:
// roughly 8 bytes/ns aggregate at compression 20 and 16 bytes/ns at
// compression 40 (a timesharing system's I/O is sparse in real time —
// that is why the paper compresses it at all; at compression 1 a
// 800 µs window sees almost no traffic).
func DefaultCello(compression float64) Cello {
	return Cello{
		Disks:       23,
		Compression: compression,
		Duration:    800 * sim.Microsecond,
		Seed:        7,
		BurstMean:   10,
		ThinkTime:   8 * sim.Millisecond,
		ServiceTime: 2 * sim.Microsecond,
	}
}

// Install schedules the workload.
func (c Cello) Install(net Network) error {
	if c.Disks <= 0 || c.Disks >= net.Hosts() {
		return fmt.Errorf("traffic: %d disks on a %d-host network", c.Disks, net.Hosts())
	}
	if c.Compression <= 0 {
		return fmt.Errorf("traffic: compression factor %v", c.Compression)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("traffic: duration %v", c.Duration)
	}
	hosts := net.Hosts() - c.Disks
	diskID := func(i int) int { return hosts + i }
	// The popularity ranking is global: hot disks are hot for every
	// host, which is what lets congestion trees form at their ports.
	perm := rand.New(rand.NewSource(c.Seed)).Perm(c.Disks)

	for h := 0; h < hosts; h++ {
		h := h
		hv := hostView(net, h)
		rng := rand.New(rand.NewSource(c.Seed + int64(h)*6151))
		zipf := newZipf(rng, perm, 1.6)
		compress := func(t sim.Time) sim.Time {
			return sim.Time(float64(t) / c.Compression)
		}
		var burst func(left int)
		var think func()
		burst = func(left int) {
			if hv.Now() >= c.Duration {
				return
			}
			disk := diskID(zipf())
			// cello was a write-heavy timesharing system (news/logging
			// partitions); bulk writes are what converge into hot disks
			// and form congestion trees inside the fabric.
			read := rng.Float64() < 1.0/3.0
			size := transferSize(rng)
			// The disk's response runs on the disk's own engine
			// (scheduleOn mailboxes it in sharded runs); the reply
			// injection itself must use the disk's view, resolved here
			// once rather than per reply.
			dv := hostView(net, disk)
			if read {
				// Small command to the disk; bulk reply later.
				hv.Inject(h, disk, 512)
				svc := c.ServiceTime/2 + sim.Time(rng.Int63n(int64(c.ServiceTime)))
				scheduleOn(net, h, disk, hv.Now()+compress(svc), func() {
					dv.Inject(disk, h, size)
				})
			} else {
				// Bulk write; small acknowledgment later.
				hv.Inject(h, disk, size)
				svc := c.ServiceTime/2 + sim.Time(rng.Int63n(int64(c.ServiceTime)))
				scheduleOn(net, h, disk, hv.Now()+compress(svc), func() {
					dv.Inject(disk, h, 64)
				})
			}
			if left > 1 {
				// Requests within a burst are closely spaced.
				gap := sim.Time(rng.ExpFloat64() * 1.5 * float64(sim.Microsecond))
				hv.Schedule(hv.Now()+compress(gap), func() { burst(left - 1) })
			} else {
				think()
			}
		}
		think = func() {
			if hv.Now() >= c.Duration {
				return
			}
			off := sim.Time(rng.ExpFloat64() * float64(c.ThinkTime))
			n := 1 + int(rng.ExpFloat64()*c.BurstMean)
			hv.Schedule(hv.Now()+compress(off), func() { burst(n) })
		}
		// Random initial phase so hosts do not synchronize.
		hv.Schedule(compress(sim.Time(rng.Int63n(int64(c.ThinkTime)))), think)
	}
	return nil
}

// transferSize draws a log-normal bulk transfer size around 8 KB,
// rounded to 512-byte sectors and capped at 64 KB.
func transferSize(rng *rand.Rand) int {
	v := math.Exp(rng.NormFloat64()*0.9 + math.Log(8192))
	size := int(v/512) * 512
	if size < 512 {
		size = 512
	}
	if size > 64*1024 {
		size = 64 * 1024
	}
	return size
}

// newZipf returns a sampler with Zipf(s) popularity over the given rank
// order (perm[0] is the most popular item).
func newZipf(rng *rand.Rand, perm []int, s float64) func() int {
	n := len(perm)
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		total += 1 / math.Pow(float64(i+1), s)
		weights[i] = total
	}
	return func() int {
		x := rng.Float64() * total
		i := sort.SearchFloat64s(weights, x)
		if i >= n {
			i = n - 1
		}
		return perm[i]
	}
}
