package check

import "strings"

// WaitGraph is a deterministic wait-for graph used by the deadlock
// detector: nodes are resources (ports, queues, SAQs — any string the
// fabric chooses), an edge A→B means "A cannot make progress until B
// does" (a blocked queue waits on the credit/Xon of its downstream
// port, a gated SAQ waits on its token, …). Nodes are interned in
// insertion order and edges kept in insertion order, so FindCycle is
// reproducible run to run — a deadlock report names the same cycle
// every time.
type WaitGraph struct {
	ids   map[string]int
	names []string
	edges [][]int
}

// NewWaitGraph returns an empty graph.
func NewWaitGraph() *WaitGraph {
	return &WaitGraph{ids: make(map[string]int)}
}

// Node interns a node name and returns its id.
func (g *WaitGraph) Node(name string) int {
	if id, ok := g.ids[name]; ok {
		return id
	}
	id := len(g.names)
	g.ids[name] = id
	g.names = append(g.names, name)
	g.edges = append(g.edges, nil)
	return id
}

// Edge adds a waits-on edge from a to b (duplicates are fine).
func (g *WaitGraph) Edge(a, b string) {
	ia, ib := g.Node(a), g.Node(b)
	g.edges[ia] = append(g.edges[ia], ib)
}

// Len returns the number of nodes.
func (g *WaitGraph) Len() int { return len(g.names) }

// FindCycle returns the first cycle found by a depth-first search in
// insertion order, as the node names along the cycle (the first name
// repeats at the end), or nil when the graph is acyclic.
func (g *WaitGraph) FindCycle() []string {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS stack
		black = 2 // fully explored
	)
	color := make([]uint8, len(g.names))
	// stack holds the DFS path; iterative to survive graphs of any
	// depth (a fully wired network can chain thousands of queues).
	type frame struct {
		node int
		next int // index into edges[node] of the next edge to explore
	}
	for start := range g.names {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.edges[f.node]) {
				to := g.edges[f.node][f.next]
				f.next++
				switch color[to] {
				case white:
					color[to] = gray
					stack = append(stack, frame{node: to})
				case gray:
					// Found a back edge: the cycle is the stack
					// suffix starting at `to`.
					var cyc []string
					found := false
					for _, fr := range stack {
						if fr.node == to {
							found = true
						}
						if found {
							cyc = append(cyc, g.names[fr.node])
						}
					}
					cyc = append(cyc, g.names[to])
					return cyc
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// CycleString renders a cycle as "a -> b -> a", or "" for nil.
func CycleString(cyc []string) string {
	if len(cyc) == 0 {
		return ""
	}
	return strings.Join(cyc, " -> ")
}
