// Package check is the simulator's runtime invariant checker: a
// pluggable subsystem that audits the conservation laws a lossless
// fabric must obey — packet conservation (every injected packet is
// delivered or still in flight), flow-control conservation (credit
// counters stay within the windows that protect receiver RAM, Xoff'd
// SAQs never transmit), CAM/SAQ lifecycle (allocations and releases in
// lockstep with congestion-tree birth and death), and progress (no
// deadlock, no livelock).
//
// The design contract mirrors internal/trace: with no Checker attached
// the fabric's hot paths pay a single nil comparison per hook point and
// nothing here runs. With one attached, periodic audit events walk the
// network state; audits are pure observers — they never mutate fabric
// state, so enabling checks cannot change simulation results.
//
// On violation the checker does not die in a bare panic: it builds a
// structured *Violation carrying the rule, the deterministic
// (time, dispatch-seq) stamp, the offending location, a state snapshot
// and the tail of the flight-recorder ring when tracing is on — enough
// to debug a failure from a CI log. By default a violation panics with
// the *Violation value (run boundaries recover it into an error);
// Config.Collect records violations instead, for soak tests that want
// to keep going.
package check

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Rule identifies the invariant a violation broke.
type Rule uint8

const (
	// RulePacketConservation: the per-stage census (host backlog +
	// queued + crossbar + link flight) must equal injected − delivered.
	RulePacketConservation Rule = iota
	// RuleCreditBounds: a credit counter left [0, initial] — a forged
	// credit would overflow the receiver RAM the counters protect.
	RuleCreditBounds
	// RuleXoffTransmit: a SAQ transmitted while stopped (remote Xoff or
	// in-order block) — per-SAQ flow control was bypassed.
	RuleXoffTransmit
	// RuleSAQLifecycle: controller accounting diverged — allocations
	// minus deallocations must equal live SAQs must equal used CAM
	// lines.
	RuleSAQLifecycle
	// RuleDeadlock: the event queue drained with packets still pending.
	RuleDeadlock
	// RuleLivelock: simulation time keeps advancing with packets
	// pending but nothing has been delivered for a full window.
	RuleLivelock
	// RuleRouting: a packet's route addressed a port that does not
	// exist (hot-path invariant, formerly a bare panic).
	RuleRouting
	// RuleQuiesce: end-of-run accounting did not balance (RAM, SAQs,
	// roots, credits or host backlog left over).
	RuleQuiesce
	// RuleInternal: an impossible state was reached (defensive checks
	// that validation should have made unreachable).
	RuleInternal
	// RuleThrottle: a throttled source's AIMD state left its contract —
	// the injection rate escaped [MinRateMilli, line rate], or a
	// below-full rate had no additive-increase timer armed (which would
	// strand the source below full injection forever).
	RuleThrottle
	// RuleSteering: an adaptive-routing override (arn policy) pointed a
	// packet at a port outside the switch's interchangeable up-port
	// range — the structural guarantee that notifications never create
	// routing loops (the override only reselects the ancestor; Hop
	// still advances every forward).
	RuleSteering

	numRules
)

var ruleNames = [numRules]string{
	"packet-conservation", "credit-bounds", "xoff-transmit", "saq-lifecycle",
	"deadlock", "livelock", "routing", "quiesce", "internal",
	"throttle", "steering",
}

func (r Rule) String() string {
	if int(r) < len(ruleNames) {
		return ruleNames[r]
	}
	return fmt.Sprintf("rule(%d)", int(r))
}

// Violation is one detected invariant breach. It implements error; the
// Snapshot carries the diagnostics captured at detection time.
type Violation struct {
	Rule Rule
	// At and Exec are the engine's deterministic (time, dispatch-seq)
	// stamp at detection (zero when no checker was bound).
	At   sim.Time
	Exec uint64
	// Loc is the offending port (trace.NetLoc for network-wide rules).
	Loc trace.Loc
	// Msg states what did not balance, with the numbers.
	Msg string
	// Snapshot is the multi-line diagnostics block: offending
	// port/switch/SAQ state and the last N flight-recorder events.
	Snapshot string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("check: %s at %v (dispatch %d) %s: %s", v.Rule, v.At, v.Exec, v.Loc, v.Msg)
}

// Detail renders the violation with its full snapshot, for logs.
func (v *Violation) Detail() string {
	if v.Snapshot == "" {
		return v.Error()
	}
	return v.Error() + "\n" + v.Snapshot
}

// NewViolation builds an unstamped violation (no checker bound): the
// typed replacement for a bare panic at hot-path invariant sites.
func NewViolation(rule Rule, loc trace.Loc, msg string) *Violation {
	return &Violation{Rule: rule, Loc: loc, Msg: msg}
}

// Config configures a Checker. The zero value audits every 10 µs of
// simulated time, keeps 32 trace events per snapshot, declares livelock
// after 1 ms without a delivery, and panics on violation.
type Config struct {
	// Period is the audit cadence in simulated time (default 10 µs).
	Period sim.Time
	// TraceTail is how many flight-recorder events a snapshot includes
	// when a recorder is attached (default 32).
	TraceTail int
	// LivelockWindow is the no-delivery window with packets in flight
	// that counts as livelock (default 1 ms). It must comfortably
	// exceed the recovery layer's StallTimeout: the watchdog repairs,
	// the checker only declares failure when repair did not help.
	LivelockWindow sim.Time
	// Collect records violations (capped) instead of panicking,
	// letting soak runs keep going and report everything at the end.
	// Hot-path fatal sites (routing) still panic: past them the
	// simulation state is corrupt.
	Collect bool
}

const (
	defaultPeriod         = 10 * sim.Microsecond
	defaultTraceTail      = 32
	defaultLivelockWindow = sim.Millisecond
	maxCollected          = 64
)

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = defaultPeriod
	}
	if c.TraceTail <= 0 {
		c.TraceTail = defaultTraceTail
	}
	if c.LivelockWindow <= 0 {
		c.LivelockWindow = defaultLivelockWindow
	}
	return c
}

// Checker is a bound invariant checker. Create one with New, pass it to
// the fabric (fabric.Config.Checker), and read Violations/Err after the
// run. Checkers are single-use: they bind to exactly one engine.
type Checker struct {
	cfg Config

	eng  *sim.Engine
	rec  *trace.Recorder
	snap func(io.Writer)

	violations []*Violation
	// DroppedViolations counts violations past the Collect cap (their
	// snapshots are not retained).
	DroppedViolations uint64
	// Audits counts completed audit passes (test hook: proves the
	// checker actually ran).
	Audits uint64
}

// New builds a checker from a config (see Config for defaults).
func New(cfg Config) *Checker {
	return &Checker{cfg: cfg.withDefaults()}
}

// Bind attaches the checker to the engine whose clock stamps every
// violation, plus an optional flight recorder (snapshots then include
// the last TraceTail events) and an optional state-snapshot writer
// (installed by the fabric). Checkers are single-use; binding twice is
// an error (mirroring fault.Plan and trace.Recorder).
func (c *Checker) Bind(eng *sim.Engine, rec *trace.Recorder, snap func(io.Writer)) error {
	if c.eng != nil {
		return fmt.Errorf("check: checker already bound (checkers are single-use; create one per network)")
	}
	if eng == nil {
		return fmt.Errorf("check: Bind with nil engine")
	}
	c.eng = eng
	c.rec = rec
	c.snap = snap
	return nil
}

// Period returns the audit cadence.
func (c *Checker) Period() sim.Time { return c.cfg.Period }

// LivelockWindow returns the configured no-delivery window.
func (c *Checker) LivelockWindow() sim.Time { return c.cfg.LivelockWindow }

// Collecting reports whether violations are recorded instead of
// panicking.
func (c *Checker) Collecting() bool { return c.cfg.Collect }

// Violations returns the recorded violations (Collect mode, plus any
// built by Violationf before a panic unwound).
func (c *Checker) Violations() []*Violation { return c.violations }

// Err returns the first recorded violation, or nil.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return c.violations[0]
}

// CountAudit records one completed audit pass.
func (c *Checker) CountAudit() { c.Audits++ }

// Violationf builds a stamped violation with a full diagnostics
// snapshot, records it, and returns it without panicking (run
// boundaries use it for end-of-run checks that report via error).
func (c *Checker) Violationf(rule Rule, loc trace.Loc, format string, args ...any) *Violation {
	v := &Violation{Rule: rule, Loc: loc, Msg: fmt.Sprintf(format, args...)}
	if c.eng != nil {
		v.At, v.Exec = c.eng.Stamp()
	}
	if len(c.violations) < maxCollected {
		v.Snapshot = c.buildSnapshot()
		c.violations = append(c.violations, v)
	} else {
		c.DroppedViolations++
	}
	return v
}

// Failf reports an audit violation: in Collect mode it records and
// returns, otherwise it panics with the *Violation (recover it at the
// run boundary).
func (c *Checker) Failf(rule Rule, loc trace.Loc, format string, args ...any) {
	v := c.Violationf(rule, loc, format, args...)
	if !c.cfg.Collect {
		panic(v)
	}
}

// Fatalf reports a hot-path invariant violation and always panics:
// past the violating instruction the simulation state is corrupt, so
// even soak runs must stop this run.
func (c *Checker) Fatalf(rule Rule, loc trace.Loc, format string, args ...any) {
	panic(c.Violationf(rule, loc, format, args...))
}

// buildSnapshot captures the diagnostics block: the fabric state dump
// followed by the tail of the flight-recorder ring.
func (c *Checker) buildSnapshot() string {
	var sb strings.Builder
	if c.snap != nil {
		sb.WriteString("--- state ---\n")
		c.snap(&sb)
	}
	if c.rec != nil {
		evs := c.rec.Events()
		if tail := c.cfg.TraceTail; len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		fmt.Fprintf(&sb, "--- last %d trace events ---\n", len(evs))
		for _, e := range evs {
			fmt.Fprintf(&sb, "%12v #%-8d %-11s %-10s %s\n", e.At, e.Exec, e.Kind, e.Loc, e.Detail())
		}
	}
	return sb.String()
}
