package check

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestViolationError(t *testing.T) {
	v := &Violation{
		Rule: RuleCreditBounds,
		At:   3 * sim.Microsecond,
		Exec: 42,
		Loc:  trace.Loc{Node: 5, Port: 2, Dir: trace.DirOut},
		Msg:  "portCredits 9 > init 8",
	}
	s := v.Error()
	for _, want := range []string{"credit-bounds", "dispatch 42", "portCredits 9 > init 8"} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q, missing %q", s, want)
		}
	}
	if v.Detail() != s {
		t.Errorf("Detail without snapshot should equal Error")
	}
	v.Snapshot = "--- state ---\nx"
	if d := v.Detail(); !strings.Contains(d, "--- state ---") {
		t.Errorf("Detail() = %q, missing snapshot", d)
	}
}

func TestRuleString(t *testing.T) {
	seen := map[string]bool{}
	for r := Rule(0); r < numRules; r++ {
		s := r.String()
		if s == "" || strings.HasPrefix(s, "rule(") {
			t.Errorf("rule %d has no name", r)
		}
		if seen[s] {
			t.Errorf("duplicate rule name %q", s)
		}
		seen[s] = true
	}
	if got := Rule(200).String(); got != "rule(200)" {
		t.Errorf("out-of-range rule String = %q", got)
	}
}

func TestCheckerBindSingleUse(t *testing.T) {
	c := New(Config{})
	eng := sim.NewEngine()
	if err := c.Bind(eng, nil, nil); err != nil {
		t.Fatalf("first Bind: %v", err)
	}
	if err := c.Bind(eng, nil, nil); err == nil {
		t.Fatalf("second Bind should fail")
	}
	if err := New(Config{}).Bind(nil, nil, nil); err == nil {
		t.Fatalf("Bind(nil engine) should fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{})
	if c.Period() != defaultPeriod {
		t.Errorf("Period = %v, want %v", c.Period(), defaultPeriod)
	}
	if c.LivelockWindow() != defaultLivelockWindow {
		t.Errorf("LivelockWindow = %v, want %v", c.LivelockWindow(), defaultLivelockWindow)
	}
	if c.Collecting() {
		t.Errorf("zero config should panic on violation, not collect")
	}
}

func TestFailfCollects(t *testing.T) {
	c := New(Config{Collect: true})
	eng := sim.NewEngine()
	var snapped bool
	if err := c.Bind(eng, nil, func(w io.Writer) { snapped = true; fmt.Fprintln(w, "pending=7") }); err != nil {
		t.Fatal(err)
	}
	eng.After(5*sim.Microsecond, func() {
		c.Failf(RulePacketConservation, trace.NetLoc, "census %d != pending %d", 6, 7)
	})
	eng.Drain()
	if err := c.Err(); err == nil {
		t.Fatalf("expected recorded violation")
	}
	v := c.Violations()[0]
	if v.Rule != RulePacketConservation {
		t.Errorf("Rule = %v", v.Rule)
	}
	if v.At != 5*sim.Microsecond {
		t.Errorf("At = %v, want 5µs", v.At)
	}
	if !snapped || !strings.Contains(v.Snapshot, "pending=7") {
		t.Errorf("snapshot not captured: %q", v.Snapshot)
	}
}

func TestFailfPanicsWhenNotCollecting(t *testing.T) {
	c := New(Config{})
	if err := c.Bind(sim.NewEngine(), nil, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		v, ok := r.(*Violation)
		if !ok {
			t.Fatalf("recovered %T, want *Violation", r)
		}
		if v.Rule != RuleSAQLifecycle {
			t.Errorf("Rule = %v", v.Rule)
		}
	}()
	c.Failf(RuleSAQLifecycle, trace.NetLoc, "leak")
}

func TestFatalfPanicsEvenWhenCollecting(t *testing.T) {
	c := New(Config{Collect: true})
	defer func() {
		if _, ok := recover().(*Violation); !ok {
			t.Fatalf("Fatalf must panic even in Collect mode")
		}
		// The violation is also recorded for post-mortem reads.
		if c.Err() == nil {
			t.Errorf("Fatalf should record the violation too")
		}
	}()
	c.Fatalf(RuleRouting, trace.Loc{Node: 1}, "route uses unused port")
}

func TestCollectCap(t *testing.T) {
	c := New(Config{Collect: true})
	for i := 0; i < maxCollected+10; i++ {
		c.Failf(RuleCreditBounds, trace.NetLoc, "v%d", i)
	}
	if len(c.Violations()) != maxCollected {
		t.Errorf("retained %d violations, want cap %d", len(c.Violations()), maxCollected)
	}
	if c.DroppedViolations != 10 {
		t.Errorf("DroppedViolations = %d, want 10", c.DroppedViolations)
	}
}

func TestSnapshotIncludesTraceTail(t *testing.T) {
	eng := sim.NewEngine()
	rec := trace.New(trace.Config{BufferEvents: 16, Events: trace.AllEvents})
	if err := rec.Bind(eng, nil); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Collect: true, TraceTail: 4})
	if err := c.Bind(eng, rec, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		rec.Record(trace.EvSend, trace.Loc{Node: 1, Port: int32(i)}, "", int64(i), 0, 0)
	}
	c.Failf(RuleLivelock, trace.NetLoc, "no deliveries")
	snap := c.Violations()[0].Snapshot
	if !strings.Contains(snap, "last 4 trace events") {
		t.Fatalf("snapshot missing trace tail header:\n%s", snap)
	}
	if strings.Count(snap, trace.EvSend.String()) != 4 {
		t.Errorf("want exactly the last 4 events in snapshot:\n%s", snap)
	}
}

func TestWaitGraphAcyclic(t *testing.T) {
	g := NewWaitGraph()
	g.Edge("a", "b")
	g.Edge("b", "c")
	g.Edge("a", "c")
	if cyc := g.FindCycle(); cyc != nil {
		t.Fatalf("acyclic graph reported cycle %v", cyc)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestWaitGraphCycle(t *testing.T) {
	g := NewWaitGraph()
	g.Edge("sw0.out2", "sw1.in0")
	g.Edge("sw1.in0", "sw1.out3")
	g.Edge("sw1.out3", "sw0.in1")
	g.Edge("sw0.in1", "sw0.out2")
	g.Edge("sw0.out2", "host5") // dead end, not part of the cycle
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatalf("cycle not found")
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Errorf("cycle should close on itself: %v", cyc)
	}
	if len(cyc) != 5 {
		t.Errorf("cycle %v, want the 4-node loop", cyc)
	}
	if s := CycleString(cyc); !strings.Contains(s, " -> ") {
		t.Errorf("CycleString = %q", s)
	}
	if CycleString(nil) != "" {
		t.Errorf("CycleString(nil) should be empty")
	}
}

func TestWaitGraphSelfLoop(t *testing.T) {
	g := NewWaitGraph()
	g.Edge("x", "x")
	cyc := g.FindCycle()
	if len(cyc) != 2 || cyc[0] != "x" || cyc[1] != "x" {
		t.Fatalf("self-loop cycle = %v", cyc)
	}
}

// TestWaitGraphDeterministic: same edges, same reported cycle.
func TestWaitGraphDeterministic(t *testing.T) {
	build := func() *WaitGraph {
		g := NewWaitGraph()
		for i := 0; i < 20; i++ {
			g.Edge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", (i+1)%20))
			g.Edge(fmt.Sprintf("n%d", i), fmt.Sprintf("m%d", i))
		}
		return g
	}
	a := CycleString(build().FindCycle())
	for i := 0; i < 5; i++ {
		if b := CycleString(build().FindCycle()); b != a {
			t.Fatalf("nondeterministic cycle: %q vs %q", a, b)
		}
	}
	if a == "" {
		t.Fatalf("expected a cycle")
	}
}
