package chaos

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// -chaos.seeds widens the soak matrix (CI's scheduled job passes a
// larger value; the per-PR short matrix uses the default).
var soakSeeds = flag.Int("chaos.seeds", 8, "number of seeded chaos scenarios to soak")

// TestGenerateDeterministic: the same seed yields the same scenario,
// every generated plan parses, and the policy sampling actually covers
// all three mechanisms across the soak's seed range (a generator that
// silently collapsed to one policy would hollow out the soak).
func TestGenerateDeterministic(t *testing.T) {
	policies := map[string]int{}
	for seed := int64(1); seed <= 20; seed++ {
		a, err := Generate(seed, 64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, 64)
		if err != nil {
			t.Fatal(err)
		}
		if a.Spec() != b.Spec() || a.Policy != b.Policy {
			t.Fatalf("seed %d: %v vs %v", seed, a, b)
		}
		if len(a.Fragments) < 3 || len(a.Fragments) > 6 {
			t.Fatalf("seed %d: %d fragments", seed, len(a.Fragments))
		}
		if _, err := a.policy(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		policies[a.Policy]++
	}
	for _, want := range []string{"RECN", "throttle", "arn"} {
		if policies[want] == 0 {
			t.Fatalf("policy %s never sampled across 20 seeds: %v", want, policies)
		}
	}
}

// TestChaosSoak is the soak harness: seeded randomized compound fault
// plans under full invariant checking. A failing seed is minimized to
// the smallest still-failing fragment set before reporting, so the
// log carries a directly reproducible minimal spec.
func TestChaosSoak(t *testing.T) {
	seeds := *soakSeeds
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sc, err := Generate(seed, 64)
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.Run(); err != nil {
				min, merr := Minimize(sc)
				t.Fatalf("scenario failed: %v\nminimized to %v: %v", err, min, merr)
			}
		})
	}
}

// TestChaosSoakSharded runs a subset of the soak seeds on the windowed
// runtime with 4 shard engines (CI adds -race, which is the point: the
// window barriers are the only synchronization, so any missing
// happens-before edge surfaces here). Scenarios whose plans script
// exact drops are skipped — those are serial-only by design.
func TestChaosSoakSharded(t *testing.T) {
	seeds := *soakSeeds
	if seeds > 6 {
		seeds = 6
	}
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sc, err := Generate(seed, 64)
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.RunSharded(4); err != nil {
				if errors.Is(err, ErrSerialOnly) {
					t.Skipf("%v", err)
				}
				t.Fatalf("sharded scenario failed: %v", err)
			}
		})
	}
}

// TestMinimizeShrinksFailure: Minimize on a scenario made to fail by a
// single poisoned fragment strips the benign fragments around it. The
// poison is a flap whose link never comes back inside the horizon —
// the link-up lands after every queued event, so the run wedges and
// the checker reports it.
func TestMinimizeShrinksFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several soak iterations")
	}
	// Poison the link of a host that is guaranteed to inject: the
	// workload derives its hotspot from Seed^0x5eed, and (hot+1)%hosts
	// is always a hotspot source.
	hot := rand.New(rand.NewSource(99 ^ 0x5eed)).Intn(64)
	sc := Scenario{
		Seed:  99,
		Hosts: 64,
		Until: 30000, // 30 ns: injection stops almost immediately
		Fragments: []string{
			"droprate=credit:0.001",
			"corrupt=1000000",
			// Down for far longer than the settle window: that host's
			// traffic wedges and the run must fail.
			fmt.Sprintf("flaphost=%d:1ns:1000ms", (hot+1)%64),
		},
	}
	err := sc.Run()
	if err == nil {
		t.Skip("poison scenario unexpectedly passed; harness semantics changed")
	}
	min, merr := Minimize(sc)
	if merr == nil {
		t.Fatal("minimized scenario passes")
	}
	if len(min.Fragments) != 1 || !strings.HasPrefix(min.Fragments[0], "flaphost=") {
		t.Fatalf("minimization kept %v, want just the flaphost poison", min.Fragments)
	}
}
