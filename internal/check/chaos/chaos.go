// Package chaos is the chaos-soak harness: it generates randomized
// compound fault plans (drops + flaps + corruption + delays from one
// seed), runs them against the RECN fabric under the full runtime
// invariant checker, and minimizes any failing plan to the smallest
// fragment set that still fails.
//
// Each scenario is a list of fault-spec fragments in the syntax of
// fault.ParsePlan, so a failure report is directly reproducible with
// `recnsim -faults "<spec>" -check`. The soak entry point is
// TestChaosSoak (chaos_test.go); CI runs a short seeded matrix per PR
// under -race and a longer sweep on the scheduled job.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/check"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Scenario is one reproducible chaos run: a seed (driving both the
// fault plan's RNG and the background workload), a network size, an
// injection horizon and the fault-plan fragments.
type Scenario struct {
	Seed      int64
	Hosts     int
	Until     sim.Time
	Fragments []string
	// Policy names the queuing mechanism under test ("RECN",
	// "throttle", "arn", ...); empty means RECN, so pre-existing
	// hand-written scenarios keep their meaning.
	Policy string
	// Topo selects the routing function: "" or "min" is the paper's
	// deterministic MIN, "fattree" the adaptive-ascent k-ary n-tree.
	// Both share the same physical wiring (the fat tree only overrides
	// Route), so fault fragments are valid under either.
	Topo string
}

// settle is how long past the injection horizon a run may take to
// drain before it is declared wedged. It is far beyond any healthy
// drain at these scales but bounded, so a deadlocked network fails
// the run instead of hanging the harness (the checker's livelock
// detector usually fires first).
const settle = 2 * sim.Millisecond

// Spec renders the scenario's fault plan in fault.ParsePlan syntax.
func (s Scenario) Spec() string {
	frags := append([]string{fmt.Sprintf("seed=%d", s.Seed)}, s.Fragments...)
	return strings.Join(frags, ",")
}

func (s Scenario) String() string {
	return fmt.Sprintf("chaos{seed=%d hosts=%d policy=%s topo=%s until=%v spec=%q}", s.Seed, s.Hosts, s.policyName(), s.topoName(), s.Until, s.Spec())
}

func (s Scenario) topoName() string {
	if s.Topo == "" {
		return "min"
	}
	return s.Topo
}

// buildTopo resolves the scenario's topology.
func (s Scenario) buildTopo() (fabric.Topology, error) {
	if s.topoName() == "fattree" {
		return topology.NewFatTree(s.Hosts)
	}
	return topology.ForHosts(s.Hosts)
}

func (s Scenario) policyName() string {
	if s.Policy == "" {
		return "RECN"
	}
	return s.Policy
}

// policy resolves the scenario's mechanism.
func (s Scenario) policy() (fabric.Policy, error) {
	return fabric.ParsePolicy(s.policyName())
}

// Generate builds a randomized compound scenario from a seed: 3–6
// fragments drawn from scripted drops, probabilistic drop/dup/delay
// rules on random control kinds, payload corruption, and 1–2 link
// flaps on links that are guaranteed wired (host attachment points).
// The same seed always yields the same scenario.
func Generate(seed int64, hosts int) (Scenario, error) {
	topo, err := topology.ForHosts(hosts)
	if err != nil {
		return Scenario{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	s := Scenario{Seed: seed, Hosts: hosts, Until: 40 * sim.Microsecond}
	kinds := []string{"token", "xoff", "xon", "notify", "credit"}
	kind := func() string { return kinds[rng.Intn(len(kinds))] }
	// fault.Plan.Validate rejects credit duplication (a forged credit
	// breaks the losslessness invariant by construction), so
	// duplication sticks to the RECN control kinds.
	dupKind := func() string { return kinds[rng.Intn(len(kinds)-1)] }
	// Flap windows stay well inside the injection horizon so every
	// scheduled link-down has its link-up executed by the drain.
	window := func() (sim.Time, sim.Time) {
		down := s.Until/8 + sim.Time(rng.Int63n(int64(s.Until/2)))
		up := down + 2*sim.Microsecond + sim.Time(rng.Int63n(int64(s.Until/4)))
		return down, up
	}
	gens := []func() string{
		func() string { return fmt.Sprintf("drop=%s:%d", kind(), 1+rng.Intn(3)) },
		func() string { return fmt.Sprintf("droprate=%s:%.3f", kind(), 0.005+0.045*rng.Float64()) },
		func() string { return fmt.Sprintf("duprate=%s:%.3f", dupKind(), 0.005+0.045*rng.Float64()) },
		func() string {
			return fmt.Sprintf("delayrate=%s:%.3f:%dns", kind(), 0.01+0.09*rng.Float64(), 200+rng.Intn(4000))
		},
		func() string { return fmt.Sprintf("corrupt=%d", 20+rng.Intn(80)) },
		func() string {
			sw, port := topo.HostAttach(rng.Intn(hosts))
			down, up := window()
			return fmt.Sprintf("flap=%d:%d:%dns:%dns", sw, port, int64(down/sim.Nanosecond), int64(up/sim.Nanosecond))
		},
		func() string {
			down, up := window()
			return fmt.Sprintf("flaphost=%d:%dns:%dns", rng.Intn(hosts), int64(down/sim.Nanosecond), int64(up/sim.Nanosecond))
		},
	}
	n := 3 + rng.Intn(4)
	flaps := 0
	for len(s.Fragments) < n {
		g := rng.Intn(len(gens))
		if g >= 5 { // at most two flap fragments per scenario
			if flaps >= 2 {
				continue
			}
			flaps++
		}
		s.Fragments = append(s.Fragments, gens[g]())
	}
	// Drawn after the fragments so per-seed fault plans are unchanged
	// from the RECN-only soaks; the soak now also samples the
	// congestion-management challengers.
	s.Policy = []string{"RECN", "throttle", "arn"}[rng.Intn(3)]
	// Drawn last for the same reason: a quarter of the scenarios run on
	// the adaptive fat tree (same wiring, different routing), so the
	// soak covers the scaling figures' topology without perturbing any
	// earlier per-seed draw.
	if rng.Intn(4) == 0 {
		s.Topo = "fattree"
	}
	return s, nil
}

// aggressiveRecovery mirrors the fabric test battery's timers: every
// watchdog fires well within the soak horizon.
func aggressiveRecovery() fault.Recovery {
	return fault.Recovery{
		Enabled:      true,
		Period:       2 * sim.Microsecond,
		TokenTimeout: 20 * sim.Microsecond,
		XoffResend:   30 * sim.Microsecond,
		XonTimeout:   20 * sim.Microsecond,
		CreditQuiet:  10 * sim.Microsecond,
		StallTimeout: 50 * sim.Microsecond,
	}
}

// Run executes the scenario once under the full invariant checker and
// returns the first failure: an invariant violation (with diagnostics
// snapshot), a wedged network, unbalanced fault accounting, or lost
// packets. nil means the fabric absorbed the whole plan cleanly.
func (s Scenario) Run() error {
	if err := s.run(); err != nil {
		return fmt.Errorf("chaos: %v: %w", s, err)
	}
	return nil
}

func (s Scenario) run() (err error) {
	topo, err := s.buildTopo()
	if err != nil {
		return err
	}
	plan, err := fault.ParsePlan(s.Spec())
	if err != nil {
		return err
	}
	policy, err := s.policy()
	if err != nil {
		return err
	}
	cfg := fabric.DefaultConfig(topo)
	cfg.Policy = policy
	cfg.Faults = plan
	cfg.Recovery = aggressiveRecovery()
	// A small flight-recorder ring so violation snapshots carry the
	// event tail; the livelock window is tightened to fail wedged runs
	// well inside the settle budget.
	cfg.Tracer = trace.New(trace.Config{BufferEvents: 512})
	cfg.Checker = check.New(check.Config{LivelockWindow: 500 * sim.Microsecond})
	net, err := fabric.New(cfg)
	if err != nil {
		return err
	}
	// The checker panics on the first violation (mid-event, where the
	// diagnostics are freshest); the boundary turns that into this
	// run's error. Anything else keeps crashing — it is a harness bug.
	defer func() {
		if r := recover(); r != nil {
			v, ok := r.(*check.Violation)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("invariant violation:\n%s", v.Detail())
		}
	}()
	if err := s.installWorkload(net); err != nil {
		return err
	}
	net.Engine.Run(s.Until)
	// Bounded settle instead of an unbounded Drain: a network that
	// cannot finish by the horizon is wedged and must fail the run.
	net.Engine.Run(s.Until + settle)
	if err := net.FinalCheck(); err != nil {
		return err
	}
	if pending := net.PendingPackets(); pending != 0 {
		return fmt.Errorf("%d packets still pending after %v settle", pending, settle)
	}
	return s.checkReport(net)
}

// ErrSerialOnly marks a scenario the sharded runtime cannot execute:
// scripted drops (drop=kind:n fragments) consume the serial engine's
// global transmission order. Callers skip such scenarios in sharded
// soaks rather than failing them.
var ErrSerialOnly = errors.New("scenario scripts exact drops; serial engine only")

// RunSharded executes the scenario on the windowed runtime with k
// shard engines, under the same invariant checker, settle budget and
// accounting audits as Run. The workload is an equivalent per-host
// deterministic stream (the serial soak workload shares one RNG across
// sources, which a concurrent run cannot reproduce), so sharded soaks
// exercise the same fault plans but not the same event schedule.
func (s Scenario) RunSharded(k int) error {
	if err := s.runSharded(k); err != nil {
		if errors.Is(err, ErrSerialOnly) {
			return err
		}
		return fmt.Errorf("chaos: %v [shards=%d]: %w", s, k, err)
	}
	return nil
}

func (s Scenario) runSharded(k int) (err error) {
	topo, err := s.buildTopo()
	if err != nil {
		return err
	}
	plan, err := fault.ParsePlan(s.Spec())
	if err != nil {
		return err
	}
	if plan.HasScriptedDrops() {
		return ErrSerialOnly
	}
	policy, err := s.policy()
	if err != nil {
		return err
	}
	cfg := fabric.DefaultConfig(topo)
	cfg.Policy = policy
	cfg.Faults = plan
	cfg.Recovery = aggressiveRecovery()
	cfg.Tracer = trace.New(trace.Config{BufferEvents: 512})
	cfg.Checker = check.New(check.Config{LivelockWindow: 500 * sim.Microsecond})
	net, err := fabric.New(cfg)
	if err != nil {
		return err
	}
	if _, err := net.Shard(k); err != nil {
		return err
	}
	// Violations on shard goroutines re-raise on this goroutine at the
	// window barrier (sim.ShardGroup re-panics the lowest-index worker
	// failure), so one recover boundary still catches everything.
	defer func() {
		if r := recover(); r != nil {
			v, ok := r.(*check.Violation)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("invariant violation:\n%s", v.Detail())
		}
	}()
	if err := s.installWorkloadSharded(net); err != nil {
		return err
	}
	net.RunWindowed(s.Until)
	net.RunWindowed(s.Until + settle)
	net.FinishWindowed()
	if err := net.FinalCheck(); err != nil {
		return err
	}
	if pending := net.PendingPackets(); pending != 0 {
		return fmt.Errorf("%d packets still pending after %v settle", pending, settle)
	}
	return s.checkReport(net)
}

// installWorkloadSharded mirrors installWorkload with each source's
// stream on its host's shard engine and a private per-source RNG (the
// serial workload's shared RNG draws in event order, which concurrent
// streams cannot reproduce deterministically).
func (s Scenario) installWorkloadSharded(net *fabric.Network) error {
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
	hosts := s.Hosts
	hot := rng.Intn(hosts)
	inject := func(src, dst, size int) {
		if err := net.InjectMessage(src, dst, size); err != nil {
			panic(check.NewViolation(check.RuleInternal, trace.NetLoc,
				fmt.Sprintf("chaos workload: %v", err)))
		}
	}
	for i := 0; i < 16; i++ {
		src := (hot + 1 + i) % hosts
		eng := net.ShardEngine(net.HostShard(src))
		var gen func()
		gen = func() {
			if eng.Now() > s.Until {
				return
			}
			inject(src, hot, 64)
			eng.After(64*sim.Nanosecond, gen)
		}
		eng.Schedule(0, gen)
	}
	for i := 0; i < 16; i++ {
		src := (hot + 20 + i) % hosts
		eng := net.ShardEngine(net.HostShard(src))
		srng := rand.New(rand.NewSource(s.Seed ^ 0x5eed ^ int64(src)*2053))
		var gen func()
		gen = func() {
			if eng.Now() > s.Until {
				return
			}
			dst := srng.Intn(hosts)
			if dst == src || dst == hot {
				dst = (hot + 17) % hosts
			}
			inject(src, dst, 64+64*srng.Intn(4))
			eng.After(sim.Time(128+srng.Intn(256))*sim.Nanosecond, gen)
		}
		eng.Schedule(0, gen)
	}
	return nil
}

// checkReport verifies the fault/recovery accounting balances after a
// drained run: every flap came back up, corruption never lost a packet
// (lossless fabric), and delivery matches injection.
func (s Scenario) checkReport(net *fabric.Network) error {
	r := net.FaultReport()
	if r == nil {
		return fmt.Errorf("no fault report on a faulted run")
	}
	if r.LinkDowns != r.LinkUps {
		return fmt.Errorf("flap accounting unbalanced: downs=%d ups=%d", r.LinkDowns, r.LinkUps)
	}
	if r.CorruptedDelivered > r.Corrupted {
		return fmt.Errorf("delivered-corrupt %d exceeds corruption events %d", r.CorruptedDelivered, r.Corrupted)
	}
	if r.Corrupted > 0 && r.CorruptedDelivered == 0 {
		return fmt.Errorf("%d corruption events but no corrupt delivery", r.Corrupted)
	}
	if net.InjectedPackets == 0 {
		return fmt.Errorf("workload injected nothing")
	}
	if net.InjectedPackets != net.DeliveredPackets {
		return fmt.Errorf("injected %d, delivered %d", net.InjectedPackets, net.DeliveredPackets)
	}
	return nil
}

// installWorkload drives a hotspot (the congestion-tree trigger RECN
// exists for) plus seeded random background traffic until s.Until.
// Injection errors surface as the run's failure via the panic boundary
// in run (InjectMessage only fails on spec-level errors here).
func (s Scenario) installWorkload(net *fabric.Network) error {
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
	hosts := s.Hosts
	hot := rng.Intn(hosts)
	inject := func(src, dst, size int) {
		if err := net.InjectMessage(src, dst, size); err != nil {
			panic(check.NewViolation(check.RuleInternal, trace.NetLoc,
				fmt.Sprintf("chaos workload: %v", err)))
		}
	}
	for i := 0; i < 16; i++ {
		src := (hot + 1 + i) % hosts
		var gen func()
		gen = func() {
			if net.Engine.Now() > s.Until {
				return
			}
			inject(src, hot, 64)
			net.Engine.After(64*sim.Nanosecond, gen)
		}
		net.Engine.Schedule(0, gen)
	}
	for i := 0; i < 16; i++ {
		src := (hot + 20 + i) % hosts
		var gen func()
		gen = func() {
			if net.Engine.Now() > s.Until {
				return
			}
			dst := rng.Intn(hosts)
			if dst == src || dst == hot {
				dst = (hot + 17) % hosts
			}
			inject(src, dst, 64+64*rng.Intn(4))
			net.Engine.After(sim.Time(128+rng.Intn(256))*sim.Nanosecond, gen)
		}
		net.Engine.Schedule(0, gen)
	}
	return nil
}

// Minimize shrinks a failing scenario to a locally minimal fragment
// set: it repeatedly removes any single fragment whose absence keeps
// the scenario failing (ddmin with subset size 1 — plans here are
// ≤ 6 fragments, so the quadratic loop is cheap). It returns the
// minimized scenario and its failure; a scenario that stopped failing
// (flaky under removal ordering is impossible — runs are
// deterministic) is returned unchanged with the original error.
func Minimize(s Scenario) (Scenario, error) {
	err := s.Run()
	if err == nil {
		return s, nil
	}
	for {
		shrunk := false
		for i := 0; i < len(s.Fragments); i++ {
			trial := s
			trial.Fragments = append(append([]string{}, s.Fragments[:i]...), s.Fragments[i+1:]...)
			if len(trial.Fragments) == 0 {
				continue
			}
			if terr := trial.Run(); terr != nil {
				s, err = trial, terr
				shrunk = true
				break
			}
		}
		if !shrunk {
			return s, err
		}
	}
}
