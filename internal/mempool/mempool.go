// Package mempool models the data RAM attached to every switch port and
// the dynamically allocated, variable-size queues that live in it
// (paper §3.2): a high-speed data RAM shared by all queues of a port,
// with a control RAM holding the pointers. Queues can hold in-order
// markers (paper §3.8) in addition to packets.
//
// Two byte counters are kept per queue:
//
//   - queued bytes: packets currently waiting in the queue. Thresholds
//     (congestion detection, Xon/Xoff) look at this.
//   - resident bytes: packets whose data still occupies the RAM — the
//     queued ones plus packets currently being read out through the
//     crossbar or the link. Flow-control credits protect residency, so
//     the RAM can never overflow.
package mempool

import "fmt"

// Pool is the data RAM of one port, shared by all of the port's queues.
type Pool struct {
	capacity int
	used     int
	peak     int
}

// NewPool returns a pool of the given capacity in bytes.
func NewPool(capacity int) *Pool {
	p := &Pool{}
	if err := p.Init(capacity); err != nil {
		panic(err.Error())
	}
	return p
}

// Init (re)initializes a pool in place with the given capacity,
// returning an error on invalid sizes. Arena-allocated pools use this
// instead of NewPool so construction failures surface as errors rather
// than panics.
func (p *Pool) Init(capacity int) error {
	if capacity <= 0 {
		return fmt.Errorf("mempool: invalid pool capacity %d", capacity)
	}
	*p = Pool{capacity: capacity}
	return nil
}

// Capacity returns the total RAM size in bytes.
func (p *Pool) Capacity() int { return p.capacity }

// Used returns the bytes currently allocated.
func (p *Pool) Used() int { return p.used }

// Peak returns the high-water mark of allocated bytes over the pool's
// lifetime (memory accounting for the scaling figures).
func (p *Pool) Peak() int { return p.peak }

// Free returns the bytes currently available.
func (p *Pool) Free() int { return p.capacity - p.used }

func (p *Pool) reserve(n int) {
	if n < 0 {
		panic(fmt.Sprintf("mempool: reserve %d", n))
	}
	if p.used+n > p.capacity {
		panic(fmt.Sprintf("mempool: overflow: used %d + %d > capacity %d (flow control bug)",
			p.used, n, p.capacity))
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
}

func (p *Pool) release(n int) {
	if n < 0 || n > p.used {
		panic(fmt.Sprintf("mempool: release %d with %d used", n, p.used))
	}
	p.used -= n
}

// Entry is one queue element: either a packet or an in-order marker
// (paper §3.8 — when a marker reaches the head, the SAQ it names may
// start transmitting). Size is the packet size in bytes (markers are
// zero-size control-RAM entries). The marker is held inline so pushing
// one costs no allocation.
type Entry struct {
	Size   int
	Data   interface{} // the packet payload (opaque to this package)
	saq    int
	marker bool
}

// IsMarker reports whether the entry is an in-order marker.
func (e Entry) IsMarker() bool { return e.marker }

// MarkerSAQ returns the identifier of the SAQ a marker entry unblocks.
func (e Entry) MarkerSAQ() int { return e.saq }

// Queue is a FIFO of packets (and markers) backed by a Pool. A Queue
// may additionally have a private byte cap (VOQ policies divide the
// port memory equally among queues); cap 0 means "bounded only by the
// pool" (RECN's dynamically allocated queues).
type Queue struct {
	pool *Pool
	cap  int

	queued   int // bytes waiting in the queue
	resident int // bytes occupying RAM (queued + in flight out)
	packets  int // number of packets queued (markers excluded)

	ring  []Entry
	head  int
	count int
}

// NewQueue returns a queue on pool with an optional private byte cap
// (0 = share the whole pool).
func NewQueue(pool *Pool, cap int) *Queue {
	if pool == nil {
		panic("mempool: NewQueue with nil pool")
	}
	if cap < 0 {
		panic(fmt.Sprintf("mempool: negative queue cap %d", cap))
	}
	return &Queue{pool: pool, cap: cap}
}

// CanAccept reports whether a packet of n bytes fits: both in the pool
// and under the queue's private cap.
func (q *Queue) CanAccept(n int) bool {
	if q.pool.Free() < n {
		return false
	}
	return q.cap == 0 || q.resident+n <= q.cap
}

// Push appends a packet of n bytes carrying the given payload. The
// caller must have verified CanAccept (flow control guarantees it); a
// violation panics because it means credits were corrupted.
func (q *Queue) Push(n int, data interface{}) {
	if n <= 0 {
		panic(fmt.Sprintf("mempool: push size %d", n))
	}
	if q.cap != 0 && q.resident+n > q.cap {
		panic(fmt.Sprintf("mempool: queue cap overflow: %d+%d > %d (flow control bug)",
			q.resident, n, q.cap))
	}
	q.pool.reserve(n)
	q.queued += n
	q.resident += n
	q.packets++
	q.push(Entry{Size: n, Data: data})
}

// PushMarker appends an in-order marker naming a SAQ.
func (q *Queue) PushMarker(saq int) {
	q.push(Entry{saq: saq, marker: true})
}

func (q *Queue) push(e Entry) {
	if q.count == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.count)%len(q.ring)] = e
	q.count++
}

func (q *Queue) grow() {
	n := len(q.ring) * 2
	if n == 0 {
		n = 8
	}
	next := make([]Entry, n)
	for i := 0; i < q.count; i++ {
		next[i] = q.ring[(q.head+i)%len(q.ring)]
	}
	q.ring = next
	q.head = 0
}

// Head returns the first entry without removing it.
func (q *Queue) Head() (Entry, bool) {
	if q.count == 0 {
		return Entry{}, false
	}
	return q.ring[q.head], true
}

// Pop removes and returns the head entry. Popping a packet moves its
// bytes from "queued" to in-flight; they remain resident until
// ReleaseResident is called (when the packet has fully left the RAM).
func (q *Queue) Pop() Entry {
	if q.count == 0 {
		panic("mempool: Pop on empty queue")
	}
	e := q.ring[q.head]
	q.ring[q.head] = Entry{}
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	if !e.IsMarker() {
		q.queued -= e.Size
		q.packets--
	}
	return e
}

// ReleaseResident frees n bytes of RAM once a previously popped packet
// has completely left the port.
func (q *Queue) ReleaseResident(n int) {
	if n < 0 || n > q.resident {
		panic(fmt.Sprintf("mempool: release %d resident with %d", n, q.resident))
	}
	q.resident -= n
	q.pool.release(n)
}

// QueuedBytes returns the bytes waiting in the queue (threshold input).
func (q *Queue) QueuedBytes() int { return q.queued }

// ResidentBytes returns the RAM bytes attributed to this queue.
func (q *Queue) ResidentBytes() int { return q.resident }

// Packets returns the number of packets queued (markers not counted).
func (q *Queue) Packets() int { return q.packets }

// Entries returns the number of queue entries including markers.
func (q *Queue) Entries() int { return q.count }

// Empty reports whether the queue holds no packets and no markers.
func (q *Queue) Empty() bool { return q.count == 0 }

// Idle reports whether the queue is empty and all its resident bytes
// have drained — the deallocation condition for SAQs.
func (q *Queue) Idle() bool { return q.count == 0 && q.resident == 0 }

// Cap returns the private byte cap (0 = pool-bounded).
func (q *Queue) Cap() int { return q.cap }

// RingCap returns the allocated capacity of the backing ring in entries
// (memory accounting for the scaling figures).
func (q *Queue) RingCap() int { return len(q.ring) }
