package mempool

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoolAccounting(t *testing.T) {
	p := NewPool(1000)
	if p.Capacity() != 1000 || p.Free() != 1000 || p.Used() != 0 {
		t.Fatalf("fresh pool: cap=%d free=%d used=%d", p.Capacity(), p.Free(), p.Used())
	}
	q := NewQueue(p, 0)
	q.Push(300, "a")
	if p.Used() != 300 || p.Free() != 700 {
		t.Fatalf("after push: used=%d free=%d", p.Used(), p.Free())
	}
	e := q.Pop()
	if e.Size != 300 || e.Data != "a" {
		t.Fatalf("popped %+v", e)
	}
	// Pop keeps residency; pool still charged.
	if p.Used() != 300 {
		t.Fatalf("after pop: used=%d, want 300 (still resident)", p.Used())
	}
	q.ReleaseResident(300)
	if p.Used() != 0 {
		t.Fatalf("after release: used=%d", p.Used())
	}
}

func TestPoolOverflowPanics(t *testing.T) {
	p := NewPool(100)
	q := NewQueue(p, 0)
	q.Push(80, nil)
	defer func() {
		if recover() == nil {
			t.Error("pool overflow did not panic")
		}
	}()
	q.Push(30, nil)
}

func TestNewPoolInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}

func TestQueueCap(t *testing.T) {
	p := NewPool(1000)
	q := NewQueue(p, 100)
	if !q.CanAccept(100) {
		t.Fatal("CanAccept(100) = false with empty capped queue")
	}
	q.Push(100, nil)
	if q.CanAccept(1) {
		t.Fatal("CanAccept(1) = true on full capped queue")
	}
	// Another queue on the same pool is unaffected by q's cap.
	q2 := NewQueue(p, 0)
	if !q2.CanAccept(900) {
		t.Fatal("pool space wrongly blocked")
	}
	// Pop alone does not free cap space (still resident).
	q.Pop()
	if q.CanAccept(1) {
		t.Fatal("capped queue freed space before ReleaseResident")
	}
	q.ReleaseResident(100)
	if !q.CanAccept(100) {
		t.Fatal("capped queue did not free space after ReleaseResident")
	}
}

func TestQueueCapOverflowPanics(t *testing.T) {
	p := NewPool(1000)
	q := NewQueue(p, 64)
	q.Push(64, nil)
	defer func() {
		if recover() == nil {
			t.Error("queue cap overflow did not panic")
		}
	}()
	q.Push(1, nil)
}

func TestFIFOOrder(t *testing.T) {
	p := NewPool(1 << 20)
	q := NewQueue(p, 0)
	for i := 0; i < 100; i++ {
		q.Push(64, i)
	}
	for i := 0; i < 100; i++ {
		e := q.Pop()
		if e.Data.(int) != i {
			t.Fatalf("pop %d returned %v", i, e.Data)
		}
		q.ReleaseResident(64)
	}
	if !q.Idle() {
		t.Fatal("queue not idle after draining")
	}
}

func TestMarkers(t *testing.T) {
	p := NewPool(1000)
	q := NewQueue(p, 0)
	q.Push(64, "pkt1")
	q.PushMarker(3)
	q.Push(64, "pkt2")
	if q.Packets() != 2 {
		t.Fatalf("Packets() = %d, want 2 (markers excluded)", q.Packets())
	}
	if q.Entries() != 3 {
		t.Fatalf("Entries() = %d, want 3", q.Entries())
	}
	if q.QueuedBytes() != 128 {
		t.Fatalf("QueuedBytes() = %d, markers must be zero-size", q.QueuedBytes())
	}
	q.Pop()
	e, ok := q.Head()
	if !ok || !e.IsMarker() || e.MarkerSAQ() != 3 {
		t.Fatalf("head after pop: %+v", e)
	}
	m := q.Pop()
	if !m.IsMarker() {
		t.Fatal("marker pop failed")
	}
	// Popping a marker releases nothing.
	if p.Used() != 128 {
		t.Fatalf("pool used %d after marker pop", p.Used())
	}
}

func TestHeadEmpty(t *testing.T) {
	q := NewQueue(NewPool(100), 0)
	if _, ok := q.Head(); ok {
		t.Error("Head on empty queue returned ok")
	}
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty queue did not panic")
		}
	}()
	q.Pop()
}

func TestRingGrowth(t *testing.T) {
	p := NewPool(1 << 24)
	q := NewQueue(p, 0)
	// Interleave pushes and pops to exercise wraparound.
	next := 0
	popped := 0
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if rng.Intn(3) != 0 {
			q.Push(1, next)
			next++
		} else if q.Packets() > 0 {
			e := q.Pop()
			if e.Data.(int) != popped {
				t.Fatalf("out of order: got %v, want %d", e.Data, popped)
			}
			popped++
			q.ReleaseResident(1)
		}
	}
	for q.Packets() > 0 {
		e := q.Pop()
		if e.Data.(int) != popped {
			t.Fatalf("drain out of order: got %v, want %d", e.Data, popped)
		}
		popped++
		q.ReleaseResident(1)
	}
	if popped != next {
		t.Fatalf("popped %d of %d", popped, next)
	}
	if !q.Idle() || p.Used() != 0 {
		t.Fatal("leak after drain")
	}
}

// Property: pool usage always equals the sum of resident bytes across
// queues, and never exceeds capacity.
func TestQuickAccountingInvariant(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		p := NewPool(4096)
		qs := []*Queue{NewQueue(p, 0), NewQueue(p, 1024), NewQueue(p, 0)}
		type inflight struct {
			q *Queue
			n int
		}
		var fly []inflight
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			q := qs[int(op)%len(qs)]
			switch (op / 4) % 3 {
			case 0: // push
				n := rng.Intn(256) + 1
				if q.CanAccept(n) {
					q.Push(n, nil)
				}
			case 1: // pop
				if e, ok := q.Head(); ok {
					q.Pop()
					if !e.IsMarker() {
						fly = append(fly, inflight{q, e.Size})
					}
				}
			case 2: // complete a transfer
				if len(fly) > 0 {
					i := rng.Intn(len(fly))
					fly[i].q.ReleaseResident(fly[i].n)
					fly[i] = fly[len(fly)-1]
					fly = fly[:len(fly)-1]
				}
			}
			sum := 0
			for _, q := range qs {
				sum += q.ResidentBytes()
			}
			if sum != p.Used() || p.Used() > p.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: QueuedBytes equals the byte sum of packets in the queue.
func TestQuickQueuedBytes(t *testing.T) {
	f := func(sizes []uint8, popsU uint8) bool {
		p := NewPool(1 << 20)
		q := NewQueue(p, 0)
		want := 0
		var queued []int
		for _, s := range sizes {
			n := int(s) + 1
			q.Push(n, nil)
			queued = append(queued, n)
			want += n
		}
		pops := int(popsU) % (len(queued) + 1)
		for i := 0; i < pops; i++ {
			e := q.Pop()
			want -= e.Size
			q.ReleaseResident(e.Size)
		}
		return q.QueuedBytes() == want && q.Packets() == len(queued)-pops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	p := NewPool(1 << 30)
	q := NewQueue(p, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(64, nil)
		e := q.Pop()
		q.ReleaseResident(e.Size)
	}
}
