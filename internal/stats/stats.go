// Package stats collects the measurements the paper reports: network
// throughput over time (bytes/ns), SAQ utilization over time (total,
// max per ingress port, max per egress port) and packet latency
// summaries.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Series is any fixed-bin time series (implemented by Throughput's
// rate view, trace.TimeSeries, ...). It lets Summarize and plotting
// code consume metrics from any producer.
type Series interface {
	// Bin returns the bin width.
	Bin() sim.Time
	// Bins returns the number of bins recorded.
	Bins() int
	// At returns bin i's value (0 outside the recorded range).
	At(i int) float64
}

// SeriesSummary condenses a Series for reports.
type SeriesSummary struct {
	Bins      int
	Mean, Max float64
	// PeakAt is the start time of the bin holding the maximum.
	PeakAt sim.Time
}

// Summarize scans a Series once and returns its summary.
func Summarize(s Series) SeriesSummary {
	out := SeriesSummary{Bins: s.Bins()}
	if out.Bins == 0 {
		return out
	}
	sum := 0.0
	for i := 0; i < out.Bins; i++ {
		v := s.At(i)
		sum += v
		if v > out.Max {
			out.Max = v
			out.PeakAt = s.Bin() * sim.Time(i)
		}
	}
	out.Mean = sum / float64(out.Bins)
	return out
}

// Throughput bins delivered bytes over time. Rates are reported in
// bytes per nanosecond, the paper's unit.
type Throughput struct {
	bin   sim.Time
	bytes []uint64
	// negDropped counts observations rejected for negative timestamps
	// (a caller bug — but one the meter must survive, not panic on).
	negDropped uint64
}

// NewThroughput creates a meter with the given bin width. A
// non-positive width is a caller error, reported rather than panicking
// (library code must not crash on bad input).
func NewThroughput(bin sim.Time) (*Throughput, error) {
	if bin <= 0 {
		return nil, fmt.Errorf("stats: bin width %v (must be positive)", bin)
	}
	return &Throughput{bin: bin}, nil
}

// Add records size bytes delivered at time t. Negative times would
// index out of bounds; they are counted in Dropped and ignored.
func (m *Throughput) Add(t sim.Time, size int) {
	if t < 0 {
		m.negDropped++
		return
	}
	idx := int(t / m.bin)
	for len(m.bytes) <= idx {
		m.bytes = append(m.bytes, 0)
	}
	m.bytes[idx] += uint64(size)
}

// Dropped returns how many observations were rejected for negative
// timestamps.
func (m *Throughput) Dropped() uint64 { return m.negDropped }

// Bin returns the bin width.
func (m *Throughput) Bin() sim.Time { return m.bin }

// Bins returns the number of bins recorded.
func (m *Throughput) Bins() int { return len(m.bytes) }

// Rate returns the throughput of bin i in bytes/ns.
func (m *Throughput) Rate(i int) float64 {
	if i < 0 || i >= len(m.bytes) {
		return 0
	}
	return float64(m.bytes[i]) / m.bin.Nanos()
}

// At returns the throughput of bin i in bytes/ns; with Bin and Bins it
// makes *Throughput satisfy Series.
func (m *Throughput) At(i int) float64 { return m.Rate(i) }

// Rates returns the whole series in bytes/ns.
func (m *Throughput) Rates() []float64 {
	out := make([]float64, len(m.bytes))
	for i := range out {
		out[i] = m.Rate(i)
	}
	return out
}

// Total returns all delivered bytes.
func (m *Throughput) Total() uint64 {
	var sum uint64
	for _, b := range m.bytes {
		sum += b
	}
	return sum
}

// MeanRate returns the average rate over [from, to) bins in bytes/ns.
func (m *Throughput) MeanRate(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(m.bytes) {
		to = len(m.bytes)
	}
	if to <= from {
		return 0
	}
	var sum uint64
	for _, b := range m.bytes[from:to] {
		sum += b
	}
	return float64(sum) / (float64(to-from) * m.bin.Nanos())
}

// SAQSample is one observation of network-wide SAQ usage.
type SAQSample struct {
	Total      int
	MaxIngress int
	MaxEgress  int
}

// SAQSeries records the maximum SAQ usage observed within each time
// bin (the paper's Figures 4–6 plot these maxima over time).
type SAQSeries struct {
	bin        sim.Time
	maxs       []SAQSample
	negDropped uint64
}

// NewSAQSeries creates a series with the given bin width. A
// non-positive width is a caller error, reported rather than panicking.
func NewSAQSeries(bin sim.Time) (*SAQSeries, error) {
	if bin <= 0 {
		return nil, fmt.Errorf("stats: bin width %v (must be positive)", bin)
	}
	return &SAQSeries{bin: bin}, nil
}

// Observe folds a sample taken at time t into its bin (keeping maxima).
// Negative times would index out of bounds; they are counted in
// Dropped and ignored.
func (s *SAQSeries) Observe(t sim.Time, sample SAQSample) {
	if t < 0 {
		s.negDropped++
		return
	}
	idx := int(t / s.bin)
	for len(s.maxs) <= idx {
		s.maxs = append(s.maxs, SAQSample{})
	}
	m := &s.maxs[idx]
	if sample.Total > m.Total {
		m.Total = sample.Total
	}
	if sample.MaxIngress > m.MaxIngress {
		m.MaxIngress = sample.MaxIngress
	}
	if sample.MaxEgress > m.MaxEgress {
		m.MaxEgress = sample.MaxEgress
	}
}

// Dropped returns how many samples were rejected for negative
// timestamps.
func (s *SAQSeries) Dropped() uint64 { return s.negDropped }

// Bins returns the number of bins recorded.
func (s *SAQSeries) Bins() int { return len(s.maxs) }

// At returns the bin-i maxima.
func (s *SAQSeries) At(i int) SAQSample {
	if i < 0 || i >= len(s.maxs) {
		return SAQSample{}
	}
	return s.maxs[i]
}

// Peak returns the maxima over the whole run.
func (s *SAQSeries) Peak() SAQSample {
	var p SAQSample
	for _, m := range s.maxs {
		if m.Total > p.Total {
			p.Total = m.Total
		}
		if m.MaxIngress > p.MaxIngress {
			p.MaxIngress = m.MaxIngress
		}
		if m.MaxEgress > p.MaxEgress {
			p.MaxEgress = m.MaxEgress
		}
	}
	return p
}

// Latency summarizes packet latencies with logarithmic buckets: exact
// count/mean/max plus approximate quantiles (16 sub-buckets per octave
// keeps the relative quantile error under ~5%).
type Latency struct {
	count   uint64
	sum     float64
	max     sim.Time
	buckets map[int]uint64
}

// NewLatency creates an empty summary.
func NewLatency() *Latency {
	return &Latency{buckets: make(map[int]uint64)}
}

const latencySubBuckets = 16

// bucketOf maps a latency to a log-scale bucket index.
func bucketOf(d sim.Time) int {
	if d <= 0 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(d)) * latencySubBuckets))
}

// bucketValue returns a representative latency for a bucket.
func bucketValue(b int) sim.Time {
	return sim.Time(math.Exp2(float64(b)/latencySubBuckets) * 1.022) // mid-bucket
}

// Add records one latency observation.
func (l *Latency) Add(d sim.Time) {
	l.count++
	l.sum += float64(d)
	if d > l.max {
		l.max = d
	}
	l.buckets[bucketOf(d)]++
}

// Count returns the number of observations.
func (l *Latency) Count() uint64 { return l.count }

// Mean returns the exact mean latency.
func (l *Latency) Mean() sim.Time {
	if l.count == 0 {
		return 0
	}
	return sim.Time(l.sum / float64(l.count))
}

// Max returns the exact maximum latency.
func (l *Latency) Max() sim.Time { return l.max }

// Quantile returns the approximate q-quantile (0 < q ≤ 1).
func (l *Latency) Quantile(q float64) sim.Time {
	if l.count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	keys := make([]int, 0, len(l.buckets))
	for k := range l.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	target := uint64(math.Ceil(q * float64(l.count)))
	var seen uint64
	for _, k := range keys {
		seen += l.buckets[k]
		if seen >= target {
			v := bucketValue(k)
			if v > l.max {
				v = l.max
			}
			return v
		}
	}
	return l.max
}
