package stats

// MemReport tallies the per-port control state a fabric instance has
// actually materialized: queue descriptors, ring slots, page-table and
// queue pointers, credit counters, NIC destination slots and RECN
// CAM/SAQ tables. Counts are exact (walked from the live structures);
// StateBytes converts them through the fabric's modeled per-record
// sizes, so the figure output is deterministic across platforms and
// shard counts — unlike process RSS, which the benchmark harness
// reports separately.
type MemReport struct {
	// Ports is the number of port-state units walked (switch ingress +
	// switch egress + NIC injection ports; the NIC admittance state is
	// attributed to its injection port).
	Ports int

	// Queues is the number of materialized policy queues and RingSlots
	// the total capacity of their entry rings.
	Queues    int
	RingSlots int
	// PtrSlots counts queue-pointer and page-table slots.
	PtrSlots int
	// CreditSlots counts materialized credit counters plus other
	// per-host scalar slots (the throttle policy's CNP clocks).
	CreditSlots int
	// ActiveSlots counts active-list membership and stack slots.
	ActiveSlots int
	// DestSlots counts materialized NIC admittance destination records.
	DestSlots int
	// CAMLines and SAQSlots count RECN controller state (zero until a
	// controller sees its first congestion event).
	CAMLines int
	SAQSlots int

	// StateBytes is the modeled control-state total over the counts
	// above.
	StateBytes int64
	// PoolPeakBytes sums the data-RAM high-water marks over all port
	// pools (bounded by ports × PortMemory; reported to show how little
	// of the nominal RAM a run actually touched).
	PoolPeakBytes int64
}

// Add folds another report into r.
func (r *MemReport) Add(o MemReport) {
	r.Ports += o.Ports
	r.Queues += o.Queues
	r.RingSlots += o.RingSlots
	r.PtrSlots += o.PtrSlots
	r.CreditSlots += o.CreditSlots
	r.ActiveSlots += o.ActiveSlots
	r.DestSlots += o.DestSlots
	r.CAMLines += o.CAMLines
	r.SAQSlots += o.SAQSlots
	r.StateBytes += o.StateBytes
	r.PoolPeakBytes += o.PoolPeakBytes
}

// BytesPerPort returns the modeled control-state bytes per port unit.
func (r MemReport) BytesPerPort() float64 {
	if r.Ports == 0 {
		return 0
	}
	return float64(r.StateBytes) / float64(r.Ports)
}
