package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestThroughputBinning(t *testing.T) {
	m, err := NewThroughput(10 * sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(0, 1000)
	m.Add(9*sim.Microsecond, 2000)
	m.Add(10*sim.Microsecond, 500)
	m.Add(35*sim.Microsecond, 4000)
	if m.Bins() != 4 {
		t.Fatalf("Bins() = %d, want 4", m.Bins())
	}
	// Bin 0: 3000 bytes over 10000 ns = 0.3 B/ns.
	if got := m.Rate(0); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Rate(0) = %v", got)
	}
	if got := m.Rate(1); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("Rate(1) = %v", got)
	}
	if got := m.Rate(2); got != 0 {
		t.Errorf("Rate(2) = %v", got)
	}
	if got := m.Rate(99); got != 0 {
		t.Errorf("out-of-range Rate = %v", got)
	}
	if m.Total() != 7500 {
		t.Errorf("Total() = %d", m.Total())
	}
	rates := m.Rates()
	if len(rates) != 4 || rates[3] != 0.4 {
		t.Errorf("Rates() = %v", rates)
	}
	// Mean over bins 0..3: 7500 bytes / 40000 ns.
	if got := m.MeanRate(0, 4); math.Abs(got-0.1875) > 1e-12 {
		t.Errorf("MeanRate = %v", got)
	}
	if got := m.MeanRate(2, 2); got != 0 {
		t.Errorf("empty MeanRate = %v", got)
	}
	if got := m.MeanRate(-5, 100); math.Abs(got-0.1875) > 1e-12 {
		t.Errorf("clamped MeanRate = %v", got)
	}
	if m.Bin() != 10*sim.Microsecond {
		t.Errorf("Bin() = %v", m.Bin())
	}
}

func TestThroughputBadBin(t *testing.T) {
	if _, err := NewThroughput(0); err == nil {
		t.Error("NewThroughput(0) did not error")
	}
	if _, err := NewThroughput(-sim.Microsecond); err == nil {
		t.Error("NewThroughput(-1us) did not error")
	}
}

// Property: Total equals the sum of all added sizes regardless of
// times.
func TestQuickThroughputTotal(t *testing.T) {
	f := func(sizes []uint16, times []uint32) bool {
		m, err := NewThroughput(sim.Microsecond)
		if err != nil {
			return false
		}
		var want uint64
		for i, s := range sizes {
			tm := sim.Time(0)
			if len(times) > 0 {
				tm = sim.Time(times[i%len(times)])
			}
			m.Add(tm, int(s))
			want += uint64(s)
		}
		return m.Total() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSAQSeriesMaxima(t *testing.T) {
	s, err := NewSAQSeries(10 * sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(sim.Microsecond, SAQSample{Total: 5, MaxIngress: 2, MaxEgress: 1})
	s.Observe(2*sim.Microsecond, SAQSample{Total: 3, MaxIngress: 4, MaxEgress: 0})
	s.Observe(15*sim.Microsecond, SAQSample{Total: 7, MaxIngress: 1, MaxEgress: 6})
	if s.Bins() != 2 {
		t.Fatalf("Bins() = %d", s.Bins())
	}
	b0 := s.At(0)
	if b0.Total != 5 || b0.MaxIngress != 4 || b0.MaxEgress != 1 {
		t.Errorf("bin 0 = %+v (component-wise maxima expected)", b0)
	}
	if got := s.At(9); got != (SAQSample{}) {
		t.Errorf("out-of-range At = %+v", got)
	}
	p := s.Peak()
	if p.Total != 7 || p.MaxIngress != 4 || p.MaxEgress != 6 {
		t.Errorf("Peak = %+v", p)
	}
}

func TestSAQSeriesBadBin(t *testing.T) {
	if _, err := NewSAQSeries(0); err == nil {
		t.Error("NewSAQSeries(0) did not error")
	}
}

func TestLatencyExactStats(t *testing.T) {
	l := NewLatency()
	if l.Mean() != 0 || l.Max() != 0 || l.Quantile(0.5) != 0 {
		t.Error("empty latency summary not zero")
	}
	for _, d := range []sim.Time{100, 200, 300, 400} {
		l.Add(d * sim.Nanosecond)
	}
	if l.Count() != 4 {
		t.Errorf("Count = %d", l.Count())
	}
	if l.Mean() != 250*sim.Nanosecond {
		t.Errorf("Mean = %v", l.Mean())
	}
	if l.Max() != 400*sim.Nanosecond {
		t.Errorf("Max = %v", l.Max())
	}
}

// Quantiles are approximate but must stay within the bucket resolution
// of the exact value.
func TestLatencyQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLatency()
	var all []float64
	for i := 0; i < 20000; i++ {
		d := sim.Time(math.Exp(rng.NormFloat64()*1.5+10)) + 1
		l.Add(d)
		all = append(all, float64(d))
	}
	sort.Float64s(all)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := all[int(q*float64(len(all)))-1]
		got := float64(l.Quantile(q))
		if math.Abs(got-exact)/exact > 0.10 {
			t.Errorf("q%.2f: got %v, exact %v", q, got, exact)
		}
	}
	// Quantile(1) never exceeds the exact max.
	if l.Quantile(1) > l.Max() {
		t.Error("Quantile(1) above Max")
	}
	if l.Quantile(-1) <= 0 {
		t.Error("clamped low quantile")
	}
	if l.Quantile(2) != l.Quantile(1) {
		t.Error("clamped high quantile")
	}
}

func TestLatencyZeroDuration(t *testing.T) {
	l := NewLatency()
	l.Add(0)
	if l.Count() != 1 || l.Max() != 0 {
		t.Error("zero-duration observation mishandled")
	}
}

// TestNegativeTimeRejected checks that the meters survive observations
// with negative timestamps (a caller bug that used to index-panic):
// the sample is counted in Dropped and the series is unaffected.
func TestNegativeTimeRejected(t *testing.T) {
	m, err := NewThroughput(100)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(-1, 64)
	m.Add(50, 64)
	if m.Dropped() != 1 {
		t.Fatalf("Throughput.Dropped = %d, want 1", m.Dropped())
	}
	if m.Total() != 64 || m.Bins() != 1 {
		t.Fatalf("negative Add leaked into the series: total %d, bins %d", m.Total(), m.Bins())
	}

	s, err := NewSAQSeries(100)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(-5, SAQSample{Total: 9})
	s.Observe(50, SAQSample{Total: 2})
	if s.Dropped() != 1 {
		t.Fatalf("SAQSeries.Dropped = %d, want 1", s.Dropped())
	}
	if p := s.Peak(); p.Total != 2 {
		t.Fatalf("negative Observe leaked into the series: peak %+v", p)
	}
}

// TestThroughputSeries checks *Throughput satisfies Series and that
// Summarize matches its own accounting.
func TestThroughputSeries(t *testing.T) {
	var _ Series = (*Throughput)(nil)
	m, err := NewThroughput(1000)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(0, 500)
	m.Add(1500, 1500)
	sum := Summarize(m)
	if sum.Bins != 2 || sum.Max != 1500 || sum.PeakAt != 1000 || sum.Mean != 1000 {
		t.Fatalf("summary %+v, want 2 bins, mean 1000, max 1500 B/ns at bin 1", sum)
	}
}
