package stats

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// FaultKind identifies a class of link traffic a fault can target. The
// first five are the control messages RECN and the flow control depend
// on; FaultData covers payload packets (which a lossless fabric never
// drops — data faults are corruption and link flaps only).
type FaultKind int

const (
	FaultCredit FaultKind = iota
	FaultToken
	FaultXon
	FaultXoff
	FaultNotify
	FaultData
	// NumFaultKinds bounds the kind space (array sizing).
	NumFaultKinds
)

func (k FaultKind) String() string {
	switch k {
	case FaultCredit:
		return "credit"
	case FaultToken:
		return "token"
	case FaultXon:
		return "xon"
	case FaultXoff:
		return "xoff"
	case FaultNotify:
		return "notify"
	case FaultData:
		return "data"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// FaultReport accounts for every fault injected into a network and
// every action the watchdog/recovery layer took in response. It is the
// "report, don't panic" counterpart of the fabric's quiesce invariants:
// conservation violations and stalls are recorded here instead of
// crashing the run.
type FaultReport struct {
	// Injected faults, by message kind.
	Dropped    [NumFaultKinds]uint64
	Duplicated [NumFaultKinds]uint64
	Delayed    [NumFaultKinds]uint64
	// Corrupted counts payload packets whose contents were damaged on a
	// link; CorruptedDelivered counts those that reached their host (the
	// fabric is lossless, so the two converge once the network drains).
	Corrupted          uint64
	CorruptedDelivered uint64
	// LinkDowns/LinkUps count executed link-flap schedule entries.
	LinkDowns uint64
	LinkUps   uint64

	// Watchdog observations.
	StallEvents uint64   // no-delivery windows with packets in flight
	LastStallAt sim.Time // when the most recent stall was detected

	// Recovery actions.
	SAQsReclaimed    uint64 // idle SAQs whose token never arrived
	XoffResent       uint64 // Xoff retransmissions for still-full SAQs
	XonOverridden    uint64 // remote stops cleared after silence
	CreditViolations uint64 // credit-conservation mismatches detected
	CreditResyncs    uint64 // ports whose credit counts were restored
	CreditsRestored  uint64 // bytes of credit restored by resyncs
}

// InjectedFaults returns the total number of faults the plan injected
// (drops, duplicates, delays, corruptions and link-down events).
func (r *FaultReport) InjectedFaults() uint64 {
	var sum uint64
	for k := 0; k < int(NumFaultKinds); k++ {
		sum += r.Dropped[k] + r.Duplicated[k] + r.Delayed[k]
	}
	return sum + r.Corrupted + r.LinkDowns
}

// RecoveryActions returns the total number of repair actions taken.
func (r *FaultReport) RecoveryActions() uint64 {
	return r.SAQsReclaimed + r.XoffResent + r.XonOverridden + r.CreditResyncs
}

func (r *FaultReport) String() string {
	var sb strings.Builder
	sb.WriteString("faults{")
	sep := ""
	field := func(name string, v uint64) {
		if v == 0 {
			return
		}
		fmt.Fprintf(&sb, "%s%s=%d", sep, name, v)
		sep = " "
	}
	for k := FaultKind(0); k < NumFaultKinds; k++ {
		field("drop_"+k.String(), r.Dropped[k])
		field("dup_"+k.String(), r.Duplicated[k])
		field("delay_"+k.String(), r.Delayed[k])
	}
	field("corrupted", r.Corrupted)
	field("corrupted_delivered", r.CorruptedDelivered)
	field("link_downs", r.LinkDowns)
	field("link_ups", r.LinkUps)
	field("stalls", r.StallEvents)
	field("saqs_reclaimed", r.SAQsReclaimed)
	field("xoff_resent", r.XoffResent)
	field("xon_overridden", r.XonOverridden)
	field("credit_violations", r.CreditViolations)
	field("credit_resyncs", r.CreditResyncs)
	field("credits_restored", r.CreditsRestored)
	if sep == "" {
		sb.WriteString("none")
	}
	sb.WriteString("}")
	return sb.String()
}
