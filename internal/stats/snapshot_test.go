package stats

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestThroughputDumpRestoreRoundTrip(t *testing.T) {
	m, err := NewThroughput(sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(0, 64)
	m.Add(2500*sim.Nanosecond, 128)
	m.Add(-1, 10) // counted in Dropped
	d := m.Dump()
	back, err := d.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != m.Total() || back.Bins() != m.Bins() || back.Dropped() != m.Dropped() {
		t.Fatalf("restore: total %d/%d bins %d/%d dropped %d/%d",
			back.Total(), m.Total(), back.Bins(), m.Bins(), back.Dropped(), m.Dropped())
	}
	if _, err := (ThroughputDump{Bin: 0}).Restore(); err == nil {
		t.Error("zero-bin dump restored")
	}
}

func TestThroughputMerge(t *testing.T) {
	a, _ := NewThroughput(sim.Microsecond)
	b, _ := NewThroughput(sim.Microsecond)
	a.Add(0, 10)
	b.Add(0, 5)
	b.Add(3*sim.Microsecond, 7) // longer series extends the target
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 22 || a.Bins() != 4 {
		t.Fatalf("merged total %d bins %d", a.Total(), a.Bins())
	}
	c, _ := NewThroughput(2 * sim.Microsecond)
	if err := a.Merge(c); err == nil {
		t.Error("bin-width mismatch merged")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

func TestSAQSeriesDumpMerge(t *testing.T) {
	a, _ := NewSAQSeries(sim.Microsecond)
	b, _ := NewSAQSeries(sim.Microsecond)
	a.Observe(0, SAQSample{Total: 3, MaxIngress: 2, MaxEgress: 1})
	b.Observe(0, SAQSample{Total: 1, MaxIngress: 4, MaxEgress: 0})
	b.Observe(sim.Microsecond, SAQSample{Total: 7, MaxIngress: 1, MaxEgress: 5})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Merging keeps bin-wise maxima, exactly like Observe.
	if got := a.At(0); got != (SAQSample{Total: 3, MaxIngress: 4, MaxEgress: 1}) {
		t.Fatalf("bin 0 = %+v", got)
	}
	if p := a.Peak(); p != (SAQSample{Total: 7, MaxIngress: 4, MaxEgress: 5}) {
		t.Fatalf("peak = %+v", p)
	}
	back, err := a.Dump().Restore()
	if err != nil {
		t.Fatal(err)
	}
	if back.Peak() != a.Peak() || back.Bins() != a.Bins() {
		t.Fatal("SAQ dump round trip")
	}
	c, _ := NewSAQSeries(2 * sim.Microsecond)
	if err := a.Merge(c); err == nil {
		t.Error("bin-width mismatch merged")
	}
}

// Merged latency summaries answer exactly what one summary fed both
// streams would: the bucket histograms add.
func TestLatencyMergeMatchesSingleStream(t *testing.T) {
	all := NewLatency()
	a, b := NewLatency(), NewLatency()
	for i, d := range []sim.Time{10, 100, 1000, 10000, 55, 320, 9999, 1} {
		all.Add(d)
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Mean() != all.Mean() || a.Max() != all.Max() {
		t.Fatalf("merge: count %d/%d mean %v/%v max %v/%v",
			a.Count(), all.Count(), a.Mean(), all.Mean(), a.Max(), all.Max())
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q%.2f: merged %v, single %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
	back := a.Dump().Restore()
	if back.Quantile(0.5) != a.Quantile(0.5) || back.Mean() != a.Mean() {
		t.Error("latency dump round trip")
	}
}

// A Report survives a JSON round trip bit-exactly — the property the
// on-disk run cache depends on (float64 values included).
func TestReportJSONRoundTrip(t *testing.T) {
	tp, _ := NewThroughput(500 * sim.Nanosecond)
	tp.Add(0, 64)
	tp.Add(1700*sim.Nanosecond, 192)
	saq, _ := NewSAQSeries(500 * sim.Nanosecond)
	saq.Observe(0, SAQSample{Total: 5, MaxIngress: 3, MaxEgress: 2})
	lat := NewLatency()
	lat.Add(123 * sim.Nanosecond)
	lat.Add(7 * sim.Microsecond)
	rep := Report{
		Throughput:      tp.Dump(),
		SAQ:             saq.Dump(),
		Latency:         lat.Dump(),
		Injected:        10,
		Delivered:       9,
		OrderViolations: 1,
		Events:          12345,
		Faults:          &FaultReport{Corrupted: 2, LastStallAt: 3 * sim.Microsecond},
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip:\nin:  %+v\nout: %+v", rep, back)
	}
}

func TestReportMerge(t *testing.T) {
	mk := func(bytes uint64, injected uint64) Report {
		tp, _ := NewThroughput(sim.Microsecond)
		tp.Add(0, int(bytes))
		saq, _ := NewSAQSeries(sim.Microsecond)
		saq.Observe(0, SAQSample{Total: int(injected)})
		lat := NewLatency()
		lat.Add(sim.Time(bytes))
		return Report{
			Throughput: tp.Dump(),
			SAQ:        saq.Dump(),
			Latency:    lat.Dump(),
			Injected:   injected,
			Delivered:  injected,
			Events:     injected * 3,
		}
	}
	a, b := mk(100, 4), mk(50, 9)
	b.Faults = &FaultReport{LinkDowns: 1}
	if err := a.Merge(&b); err != nil {
		t.Fatal(err)
	}
	if a.Injected != 13 || a.Events != 39 {
		t.Fatalf("merged counters: %+v", a)
	}
	tp, err := a.Throughput.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if tp.Total() != 150 {
		t.Fatalf("merged throughput %d", tp.Total())
	}
	saq, err := a.SAQ.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if saq.Peak().Total != 9 {
		t.Fatalf("merged SAQ peak %+v", saq.Peak())
	}
	if a.Latency.Restore().Count() != 2 {
		t.Fatal("merged latency count")
	}
	if a.Faults == nil || a.Faults.LinkDowns != 1 {
		t.Fatalf("merged faults: %+v", a.Faults)
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

func TestFaultReportMerge(t *testing.T) {
	a := &FaultReport{StallEvents: 1, LastStallAt: 5}
	a.Dropped[FaultToken] = 2
	b := &FaultReport{StallEvents: 2, LastStallAt: 3, CreditResyncs: 4}
	b.Dropped[FaultToken] = 1
	a.Merge(b)
	if a.Dropped[FaultToken] != 3 || a.StallEvents != 3 || a.CreditResyncs != 4 {
		t.Fatalf("merged: %+v", a)
	}
	if a.LastStallAt != 5 {
		t.Fatalf("LastStallAt = %v, want the later stall (5)", a.LastStallAt)
	}
	a.Merge(nil)
}
