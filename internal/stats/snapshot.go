package stats

import (
	"fmt"

	"repro/internal/sim"
)

// This file makes every meter serializable (Dump/Restore) and
// mergeable (Merge), so run results can be cached on disk and sharded
// runs can be combined into one report. Dumps use only exported scalar
// fields and encode/decode losslessly through encoding/json (float64
// values round-trip exactly).

// ThroughputDump is the serializable form of a Throughput meter.
type ThroughputDump struct {
	Bin     sim.Time
	Bytes   []uint64
	Dropped uint64
}

// Dump snapshots the meter.
func (m *Throughput) Dump() ThroughputDump {
	return ThroughputDump{
		Bin:     m.bin,
		Bytes:   append([]uint64(nil), m.bytes...),
		Dropped: m.negDropped,
	}
}

// Restore rebuilds a meter from a dump.
func (d ThroughputDump) Restore() (*Throughput, error) {
	m, err := NewThroughput(d.Bin)
	if err != nil {
		return nil, err
	}
	m.bytes = append([]uint64(nil), d.Bytes...)
	m.negDropped = d.Dropped
	return m, nil
}

// Merge folds another meter with the same bin width into this one
// (bin-wise byte sums), so shards of a partitioned workload combine
// into one throughput series.
func (m *Throughput) Merge(o *Throughput) error {
	if o == nil {
		return nil
	}
	if m.bin != o.bin {
		return fmt.Errorf("stats: merging throughput bins %v and %v", m.bin, o.bin)
	}
	for len(m.bytes) < len(o.bytes) {
		m.bytes = append(m.bytes, 0)
	}
	for i, b := range o.bytes {
		m.bytes[i] += b
	}
	m.negDropped += o.negDropped
	return nil
}

// SAQDump is the serializable form of a SAQSeries.
type SAQDump struct {
	Bin     sim.Time
	Maxs    []SAQSample
	Dropped uint64
}

// Dump snapshots the series.
func (s *SAQSeries) Dump() SAQDump {
	return SAQDump{
		Bin:     s.bin,
		Maxs:    append([]SAQSample(nil), s.maxs...),
		Dropped: s.negDropped,
	}
}

// Restore rebuilds a series from a dump.
func (d SAQDump) Restore() (*SAQSeries, error) {
	s, err := NewSAQSeries(d.Bin)
	if err != nil {
		return nil, err
	}
	s.maxs = append([]SAQSample(nil), d.Maxs...)
	s.negDropped = d.Dropped
	return s, nil
}

// Bin returns the bin width.
func (s *SAQSeries) Bin() sim.Time { return s.bin }

// Merge folds another series with the same bin width into this one
// (bin-wise maxima, matching what Observe keeps).
func (s *SAQSeries) Merge(o *SAQSeries) error {
	if o == nil {
		return nil
	}
	if s.bin != o.bin {
		return fmt.Errorf("stats: merging SAQ series bins %v and %v", s.bin, o.bin)
	}
	for len(s.maxs) < len(o.maxs) {
		s.maxs = append(s.maxs, SAQSample{})
	}
	for i, m := range o.maxs {
		dst := &s.maxs[i]
		if m.Total > dst.Total {
			dst.Total = m.Total
		}
		if m.MaxIngress > dst.MaxIngress {
			dst.MaxIngress = m.MaxIngress
		}
		if m.MaxEgress > dst.MaxEgress {
			dst.MaxEgress = m.MaxEgress
		}
	}
	s.negDropped += o.negDropped
	return nil
}

// LatencyDump is the serializable form of a Latency summary.
type LatencyDump struct {
	Count   uint64
	Sum     float64
	Max     sim.Time
	Buckets map[int]uint64
}

// Dump snapshots the summary.
func (l *Latency) Dump() LatencyDump {
	buckets := make(map[int]uint64, len(l.buckets))
	for k, v := range l.buckets {
		buckets[k] = v
	}
	return LatencyDump{Count: l.count, Sum: l.sum, Max: l.max, Buckets: buckets}
}

// Restore rebuilds a summary from a dump.
func (d LatencyDump) Restore() *Latency {
	l := NewLatency()
	l.count = d.Count
	l.sum = d.Sum
	l.max = d.Max
	for k, v := range d.Buckets {
		l.buckets[k] = v
	}
	return l
}

// Merge folds another summary into this one. Quantiles of the merged
// summary are exactly what a single summary fed both observation
// streams would report (the bucket histograms add).
func (l *Latency) Merge(o *Latency) {
	if o == nil {
		return
	}
	l.count += o.count
	l.sum += o.sum
	if o.max > l.max {
		l.max = o.max
	}
	for k, v := range o.buckets {
		l.buckets[k] += v
	}
}

// Report bundles every measurement of one simulation run in a
// serializable, mergeable form. The experiments package converts its
// live Result to and from a Report for the on-disk run cache; sharded
// workloads combine shard Reports with Merge.
type Report struct {
	Throughput ThroughputDump
	SAQ        SAQDump
	Latency    LatencyDump

	Injected        uint64
	Delivered       uint64
	OrderViolations uint64
	Events          uint64

	// Faults is nil when the run had no fault injection or recovery.
	Faults *FaultReport `json:",omitempty"`

	// Mem is the end-of-run materialized-state accounting (nil on
	// reports from before the memory model existed — old cache entries
	// load unchanged).
	Mem *MemReport `json:",omitempty"`
}

// Merge folds another report into this one: series merge bin-wise,
// counters add, fault accounting adds field-wise.
func (r *Report) Merge(o *Report) error {
	if o == nil {
		return nil
	}
	tp, err := r.Throughput.Restore()
	if err != nil {
		return err
	}
	otp, err := o.Throughput.Restore()
	if err != nil {
		return err
	}
	if err := tp.Merge(otp); err != nil {
		return err
	}
	r.Throughput = tp.Dump()

	saq, err := r.SAQ.Restore()
	if err != nil {
		return err
	}
	osaq, err := o.SAQ.Restore()
	if err != nil {
		return err
	}
	if err := saq.Merge(osaq); err != nil {
		return err
	}
	r.SAQ = saq.Dump()

	lat := r.Latency.Restore()
	lat.Merge(o.Latency.Restore())
	r.Latency = lat.Dump()

	r.Injected += o.Injected
	r.Delivered += o.Delivered
	r.OrderViolations += o.OrderViolations
	r.Events += o.Events
	if o.Faults != nil {
		if r.Faults == nil {
			r.Faults = &FaultReport{}
		}
		r.Faults.Merge(o.Faults)
	}
	if o.Mem != nil {
		if r.Mem == nil {
			r.Mem = &MemReport{}
		}
		r.Mem.Add(*o.Mem)
	}
	return nil
}

// Merge adds another report's accounting field-wise. LastStallAt keeps
// the later of the two stall timestamps.
func (r *FaultReport) Merge(o *FaultReport) {
	if o == nil {
		return
	}
	for k := 0; k < int(NumFaultKinds); k++ {
		r.Dropped[k] += o.Dropped[k]
		r.Duplicated[k] += o.Duplicated[k]
		r.Delayed[k] += o.Delayed[k]
	}
	r.Corrupted += o.Corrupted
	r.CorruptedDelivered += o.CorruptedDelivered
	r.LinkDowns += o.LinkDowns
	r.LinkUps += o.LinkUps
	r.StallEvents += o.StallEvents
	if o.LastStallAt > r.LastStallAt {
		r.LastStallAt = o.LastStallAt
	}
	r.SAQsReclaimed += o.SAQsReclaimed
	r.XoffResent += o.XoffResent
	r.XonOverridden += o.XonOverridden
	r.CreditViolations += o.CreditViolations
	r.CreditResyncs += o.CreditResyncs
	r.CreditsRestored += o.CreditsRestored
}
