// Package prof wires the standard runtime/pprof profiles into the
// command-line tools (-cpuprofile / -memprofile). It exists so the
// commands share one tested implementation of the start/stop dance:
// CPU profiling must stop before the heap is written, and the heap
// profile wants a GC first so it reflects live objects, not garbage.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the flag values. Either path may
// be empty. The returned stop function must run at process exit (after
// the workload) and is never nil.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // heap profile of live objects only
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
