package sim

// ShardGroup drives one worker goroutine per shard engine for
// window-synchronized parallel simulation. The caller (the fabric's
// window runner) alternates between Step — which runs every engine up
// to a common horizon concurrently and blocks until all of them reach
// it — and single-threaded barrier work (mailbox delivery, global
// events, counter aggregation) done between steps.
//
// Channel sends establish the happens-before edges: everything the
// caller wrote before Step (mailbox deliveries scheduled into a shard's
// heap, state mutated by barrier-time global events) is visible to the
// worker, and everything a worker wrote during its window is visible to
// the caller when Step returns. No other synchronization exists, which
// is exactly why the model may only share state across shards at
// barriers.
type ShardGroup struct {
	engines []*Engine
	cmd     []chan Time
	done    chan shardDone
	closed  bool
}

type shardDone struct {
	idx      int
	panicked any
}

// NewShardGroup starts one worker per engine. Close must be called to
// release the workers.
func NewShardGroup(engines []*Engine) *ShardGroup {
	g := &ShardGroup{
		engines: engines,
		cmd:     make([]chan Time, len(engines)),
		done:    make(chan shardDone, len(engines)),
	}
	for i := range engines {
		g.cmd[i] = make(chan Time)
		go g.worker(i)
	}
	return g
}

func (g *ShardGroup) worker(i int) {
	eng := g.engines[i]
	for until := range g.cmd[i] {
		func() {
			defer func() {
				g.done <- shardDone{idx: i, panicked: recover()}
			}()
			eng.Run(until)
		}()
	}
}

// Step runs every engine to the horizon concurrently and returns when
// all have reached it. A panic on any worker (for example an invariant
// Violation thrown by the runtime checker) is re-raised on the calling
// goroutine; when several shards panic in one window, the lowest shard
// index wins so the surfaced failure is deterministic.
func (g *ShardGroup) Step(until Time) {
	if g.closed {
		panic("sim: Step on a closed ShardGroup")
	}
	for _, c := range g.cmd {
		c <- until
	}
	var panicked any
	panicIdx := len(g.engines)
	for range g.engines {
		d := <-g.done
		if d.panicked != nil && d.idx < panicIdx {
			panicked, panicIdx = d.panicked, d.idx
		}
	}
	if panicked != nil {
		g.Close()
		panic(panicked)
	}
}

// Close stops the workers. The group cannot be reused.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, c := range g.cmd {
		close(c)
	}
}
