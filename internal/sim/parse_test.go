package sim

import "testing"

// TestParseTimeRoundTrip checks ParseTime against explicit values and
// then verifies it inverts String for values String renders losslessly
// (String keeps three decimals, so anything on a fs-free picosecond
// grid per unit survives).
func TestParseTimeRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Time
	}{
		{"0ps", 0},
		{"800ps", 800 * Picosecond},
		{"1ns", Nanosecond},
		{"250ns", 250 * Nanosecond},
		{"0.5ns", 500 * Picosecond},
		{"1.5us", 1500 * Nanosecond},
		{"1.5µs", 1500 * Nanosecond},
		{"2ms", 2 * Millisecond},
		{"  40us ", 40 * Microsecond},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTime(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		back, err := ParseTime(got.String())
		if err != nil {
			t.Errorf("ParseTime(%v.String()): %v", got, err)
			continue
		}
		if back != got {
			t.Errorf("round trip %q -> %v -> %q -> %v", c.in, got, got.String(), back)
		}
	}
}

func TestParseTimeErrors(t *testing.T) {
	for _, in := range []string{
		"",      // empty
		"5",     // no unit
		"5sec",  // unknown unit
		"abcns", // non-numeric value
		"1.2.3us",
		"-5ns",  // negative duration
		"NaNms", // non-finite
		"ns",    // unit without value
	} {
		if got, err := ParseTime(in); err == nil {
			t.Errorf("ParseTime(%q) = %v, want error", in, got)
		}
	}
}
