package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{Nanosecond, "1.000ns"},
		{64 * Nanosecond, "64.000ns"},
		{Microsecond, "1.000us"},
		{1500 * Microsecond, "1.500ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2500 * Nanosecond).Micros(); got != 2.5 {
		t.Errorf("Micros() = %v, want 2.5", got)
	}
	if got := (1500 * Picosecond).Nanos(); got != 1.5 {
		t.Errorf("Nanos() = %v, want 1.5", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v after Run(100), want 100", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(50, func() { order = append(order, i) })
	}
	e.Run(50)
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events not FIFO: %v", order)
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run(1000)
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(100, func() { fired++ })
	e.Schedule(101, func() { fired++ })
	n := e.Run(100)
	if n != 2 || fired != 2 {
		t.Fatalf("Run(100) dispatched %d events (fired=%d), want 2", n, fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Continue past the horizon.
	n = e.Run(200)
	if n != 1 || fired != 3 {
		t.Fatalf("second Run dispatched %d (fired=%d), want 1", n, fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++; e.Stop() })
	e.Schedule(20, func() { fired++ })
	e.Run(100)
	if fired != 1 {
		t.Fatalf("Stop did not halt dispatch: fired=%d", fired)
	}
	// Run resumes after Stop.
	e.Run(100)
	if fired != 2 {
		t.Fatalf("Run after Stop did not resume: fired=%d", fired)
	}
}

func TestDrain(t *testing.T) {
	e := NewEngine()
	var last Time
	e.Schedule(10, func() {
		e.After(1_000_000, func() { last = e.Now() })
	})
	n := e.Drain()
	if n != 2 {
		t.Fatalf("Drain dispatched %d, want 2", n)
	}
	if last != 1_000_010 {
		t.Fatalf("last event at %v, want 1000010", last)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.Run(200)
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewEngine().After(-1, func() {})
}

// Property: for any random schedule, events dispatch in nondecreasing
// time order and every event scheduled at or before the horizon fires.
func TestQuickRandomScheduleOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n)%64 + 1
		var fireTimes []Time
		expected := 0
		for i := 0; i < count; i++ {
			at := Time(rng.Int63n(1000))
			if at <= 500 {
				expected++
			}
			e.Schedule(at, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run(500)
		if len(fireTimes) != expected {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: nested scheduling from within events preserves causal order.
func TestQuickNestedScheduling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var times []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			times = append(times, e.Now())
			if depth < 4 {
				for i := 0; i < 2; i++ {
					e.After(Time(rng.Int63n(100)), func() { spawn(depth + 1) })
				}
			}
		}
		e.Schedule(0, func() { spawn(0) })
		e.Drain()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == 1+2+4+8+16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: for random batches of Schedule calls with heavy timestamp
// collisions — including events scheduled mid-dispatch at the current
// instant — events with equal timestamps fire in dispatch-sequence
// (FIFO) order and Now() never moves backwards. This is the invariant
// the per-run (sim-time, dispatch-seq) stamps and trace exports depend
// on: parallel sweep replay is only byte-identical because every
// engine orders same-instant events exactly the same way.
func TestQuickEqualTimeFIFO(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		type firing struct {
			at  Time
			seq int // scheduling order, globally increasing
		}
		var fired []firing
		nextSeq := 0
		last := Time(0)
		monotone := true
		budget := 400 // bounds nested fan-out
		var schedule func(at Time)
		schedule = func(at Time) {
			seq := nextSeq
			nextSeq++
			e.Schedule(at, func() {
				if e.Now() < last {
					monotone = false
				}
				last = e.Now()
				fired = append(fired, firing{e.Now(), seq})
				if budget > 0 {
					budget--
					switch rng.Intn(3) {
					case 0:
						// Same instant: must fire after everything
						// already queued for this instant.
						schedule(e.Now())
					case 1:
						schedule(e.Now() + Time(rng.Int63n(40)))
					}
				}
			})
		}
		count := int(n)%80 + 20
		for i := 0; i < count; i++ {
			// Few distinct timestamps → many collisions.
			schedule(Time(rng.Int63n(6)) * 10)
		}
		// Cross a Run horizon mid-stream, then drain, to cover the
		// clock hand-off between the two dispatch loops.
		e.Run(25)
		e.Drain()
		if !monotone {
			return false
		}
		if len(fired) != nextSeq {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at == fired[i-1].at && fired[i].seq <= fired[i-1].seq {
				return false // same-instant events out of FIFO order
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Time(i%97), func() {})
		if i%64 == 63 {
			e.Run(e.Now() + 100)
		}
	}
	e.Drain()
}

// Run's horizon must advance the clock even when the queue drains
// before reaching it, so relative delays in a later Run are anchored at
// the horizon, not at the last dispatched event.
func TestRunHorizonAdvanceAfterEarlyDrain(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	if n := e.Run(1000); n != 1 {
		t.Fatalf("Run dispatched %d, want 1", n)
	}
	if e.Now() != 1000 {
		t.Fatalf("Now() = %v after early drain, want horizon 1000", e.Now())
	}
	// A relative delay is now anchored at the horizon.
	var at Time
	e.After(5, func() { at = e.Now() })
	e.Drain()
	if at != 1005 {
		t.Fatalf("After(5) fired at %v, want 1005", at)
	}
}

// Stop must suppress the horizon advance: the clock stays at the event
// that stopped the run, and a later Run resumes from there.
func TestStopFreezesClockAndResumes(t *testing.T) {
	e := NewEngine()
	order := []Time{}
	e.Schedule(10, func() { order = append(order, e.Now()); e.Stop() })
	e.Schedule(20, func() { order = append(order, e.Now()) })
	if n := e.Run(1000); n != 1 {
		t.Fatalf("first Run dispatched %d, want 1", n)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v after Stop, want 10 (no horizon advance)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Re-Run resumes dispatching and then advances to the new horizon.
	if n := e.Run(1000); n != 1 {
		t.Fatalf("second Run dispatched %d, want 1", n)
	}
	if len(order) != 2 || order[0] != 10 || order[1] != 20 {
		t.Fatalf("dispatch order %v, want [10 20]", order)
	}
	if e.Now() != 1000 {
		t.Fatalf("Now() = %v after resume, want 1000", e.Now())
	}
}

// Stop from inside a dispatched event must also halt Drain, and a
// subsequent Drain clears its sticky effect.
func TestStopDuringDrain(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++; e.Stop() })
	e.Schedule(20, func() { fired++ })
	if n := e.Drain(); n != 1 || fired != 1 {
		t.Fatalf("Drain dispatched %d (fired=%d), want 1", n, fired)
	}
	if n := e.Drain(); n != 1 || fired != 2 {
		t.Fatalf("second Drain dispatched %d (fired=%d), want 1", n, fired)
	}
}

// Events at the same instant fire in scheduling order regardless of
// which entry point (Schedule, After, ScheduleArg, AfterArg) enqueued
// them: all four draw from the same sequence counter.
func TestSameInstantFIFOAcrossEntryPoints(t *testing.T) {
	e := NewEngine()
	var order []int
	note := func(arg any) { order = append(order, arg.(int)) }
	e.Schedule(50, func() { order = append(order, 0) })
	e.ScheduleArg(50, note, 1)
	e.After(50, func() { order = append(order, 2) })
	e.AfterArg(50, note, 3)
	e.ScheduleArg(50, note, 4)
	e.Schedule(50, func() { order = append(order, 5) })
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("dispatch order %v, want [0 1 2 3 4 5]", order)
		}
	}
	if len(order) != 6 {
		t.Fatalf("dispatched %d events, want 6", len(order))
	}
}

// ScheduleArg delivers the exact argument value, including nil-valued
// pointers inside the any.
func TestScheduleArgDeliversArg(t *testing.T) {
	e := NewEngine()
	type state struct{ hits int }
	s := &state{}
	bump := func(arg any) { arg.(*state).hits++ }
	e.ScheduleArg(1, bump, s)
	e.AfterArg(2, bump, s)
	e.Drain()
	if s.hits != 2 {
		t.Fatalf("hits = %d, want 2", s.hits)
	}
}

func TestScheduleArgNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	NewEngine().ScheduleArg(0, nil, 1)
}

func TestNegativeAfterArgPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewEngine().AfterArg(-1, func(any) {}, nil)
}

// Records freed by dispatch are reused by events scheduled from inside
// the running callback; interleaving nested scheduling with pool reuse
// must preserve time-then-FIFO order.
func TestRecordReuseKeepsOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	var chain func()
	depth := 0
	chain = func() {
		order = append(order, e.Now())
		if depth++; depth < 100 {
			e.After(Time(depth%3), chain) // mixes same-instant and future
		}
	}
	e.Schedule(0, chain)
	e.Drain()
	if len(order) != 100 {
		t.Fatalf("dispatched %d, want 100", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("time went backwards at %d: %v", i, order[:i+1])
		}
	}
}

// BenchmarkEngineScheduleArgRun is the boxing-free variant of the
// schedule/run microbenchmark: the callback is a package-level func
// value and the argument a reused pointer, so an iteration performs
// zero allocations.
func BenchmarkEngineScheduleArgRun(b *testing.B) {
	e := NewEngine()
	noop := func(any) {}
	arg := new(int)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(e.Now()+Time(i%97), noop, arg)
		if i%64 == 63 {
			e.Run(e.Now() + 100)
		}
	}
	e.Drain()
}
