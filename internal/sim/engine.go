// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer picoseconds (Time). Events are callbacks
// scheduled at absolute times; events scheduled for the same instant fire
// in FIFO order of scheduling, which makes runs fully deterministic for a
// fixed program order and RNG seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is an absolute simulation time in picoseconds.
type Time int64

// Common durations expressed in Time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// String formats the time with the most natural unit for logs.
func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// ParseTime parses a duration like "250ns", "1.5us", "2ms" or "800ps"
// into a Time. It is the inverse of String for whole-unit values and is
// used by command-line flags (e.g. recnsim -faults).
func ParseTime(s string) (Time, error) {
	s = strings.TrimSpace(s)
	unit := Picosecond
	switch {
	case strings.HasSuffix(s, "ms"):
		unit, s = Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "us"), strings.HasSuffix(s, "µs"):
		unit, s = Microsecond, strings.TrimSuffix(strings.TrimSuffix(s, "us"), "µs")
	case strings.HasSuffix(s, "ns"):
		unit, s = Nanosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ps"):
		unit, s = Picosecond, s[:len(s)-2]
	default:
		return 0, fmt.Errorf("sim: duration %q needs a unit (ps, ns, us, ms)", s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("sim: duration %q: %v", s, err)
	}
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("sim: duration %q must be a finite, non-negative value", s)
	}
	return Time(v * float64(unit)), nil
}

// Micros returns the time converted to microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos returns the time converted to nanoseconds as a float.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1].fn = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// the whole simulation runs on one goroutine (the model is intentionally
// sequential so that results are reproducible).
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// Executed counts events dispatched since construction; useful for
	// progress reporting and performance accounting.
	Executed uint64
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Stamp returns the current time together with the dispatch count — a
// pair that totally orders observations made by the running simulation
// (events at the same instant are distinguished by their dispatch
// sequence). Tracing uses it so exports never depend on wall clock.
func (e *Engine) Stamp() (Time, uint64) { return e.now, e.Executed }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// it always indicates a model bug (causality violation).
func (e *Engine) Schedule(at Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil fn")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v, at=%v)", e.now, at))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// Stop makes Run return after the currently dispatching event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.events) }

// Run dispatches events in time order until the queue is empty, the
// clock would pass until, or Stop is called. Events scheduled exactly at
// until still run. It returns the number of events dispatched.
func (e *Engine) Run(until Time) uint64 {
	start := e.Executed
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > until {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	// Advance the clock to the horizon so a subsequent Run continues
	// from there even if the queue drained early.
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.Executed - start
}

// Drain dispatches every remaining event regardless of time. It is
// intended for quiescence checks at the end of an experiment.
func (e *Engine) Drain() uint64 {
	start := e.Executed
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	return e.Executed - start
}
