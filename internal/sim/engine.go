// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer picoseconds (Time). Events are callbacks
// scheduled at absolute times; events scheduled for the same instant fire
// in FIFO order of scheduling, which makes runs fully deterministic for a
// fixed program order and RNG seed.
package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is an absolute simulation time in picoseconds.
type Time int64

// Common durations expressed in Time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// String formats the time with the most natural unit for logs.
func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// ParseTime parses a duration like "250ns", "1.5us", "2ms" or "800ps"
// into a Time. It is the inverse of String for whole-unit values and is
// used by command-line flags (e.g. recnsim -faults).
func ParseTime(s string) (Time, error) {
	s = strings.TrimSpace(s)
	unit := Picosecond
	switch {
	case strings.HasSuffix(s, "ms"):
		unit, s = Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "us"), strings.HasSuffix(s, "µs"):
		unit, s = Microsecond, strings.TrimSuffix(strings.TrimSuffix(s, "us"), "µs")
	case strings.HasSuffix(s, "ns"):
		unit, s = Nanosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ps"):
		unit, s = Picosecond, s[:len(s)-2]
	default:
		return 0, fmt.Errorf("sim: duration %q needs a unit (ps, ns, us, ms)", s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("sim: duration %q: %v", s, err)
	}
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("sim: duration %q must be a finite, non-negative value", s)
	}
	return Time(v * float64(unit)), nil
}

// Micros returns the time converted to microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos returns the time converted to nanoseconds as a float.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// evNode is one entry of the event priority queue. It holds only the
// ordering key (at, seq) plus an index into the pooled callback records,
// so the heap slice is small (24 bytes/node), pointer-free (the GC never
// scans it) and cheap to sift. seq values are unique, so (at, seq) is a
// total order and any correct heap pops events in the same sequence —
// the dispatch order is independent of the heap implementation.
type evNode struct {
	at  Time
	seq uint64
	rec int32
}

func evLess(a, b evNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// evRec is a pooled callback record. Exactly one of fn / afn is set:
// Schedule stores a plain func(), ScheduleArg stores a pre-bound
// callback plus its argument (a pointer stored in an any does not
// allocate, so call sites can pass event state without a closure).
type evRec struct {
	fn  func()
	afn func(any)
	arg any
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// the whole simulation runs on one goroutine (the model is intentionally
// sequential so that results are reproducible).
//
// The event queue is an implicit 4-ary min-heap over (time, sequence)
// keys; callbacks live in a free-listed record pool, so steady-state
// scheduling performs no heap allocations (the old container/heap
// implementation boxed every event into an interface{} on push).
type Engine struct {
	now     Time
	seq     uint64
	events  []evNode
	recs    []evRec
	free    []int32 // free-list of recs indices
	stopped bool

	// encode switches the engine into shard-sequence mode (see
	// NewShardEngine): instead of a run-long counter, every scheduled
	// event gets the composite sequence (scheduling-time << seqTimeShift)
	// | per-instant counter, so the dispatch order of same-time events
	// reflects *when* they were scheduled — a quantity that does not
	// depend on how the simulation is partitioned across engines.
	encode bool
	encNow Time
	encCnt uint64

	// probe, when set, observes every dispatch as (time, scheduling
	// sequence) before the callback runs. Test-only: the determinism
	// regression suite uses it to pin the dispatch order.
	probe func(at Time, seq uint64)

	// Executed counts events dispatched since construction; useful for
	// progress reporting and performance accounting.
	Executed uint64
}

// SetDispatchProbe installs a hook observing every dispatched event as
// its (time, scheduling-sequence) pair, called just before the event's
// callback. Passing nil removes the hook. Intended for determinism
// regression tests; the hook must not schedule events itself.
func (e *Engine) SetDispatchProbe(fn func(at Time, seq uint64)) { e.probe = fn }

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Shard-sequence encoding: the low seqCntBits bits are a per-instant
// counter, the bit above them separates locally scheduled events (0)
// from boundary-mailbox deliveries (1), and everything above is the
// scheduling time in picoseconds. Same-instant events therefore
// dispatch ordered by when they were scheduled, with mailbox arrivals
// slotted after the local events of the same scheduling instant.
const (
	seqCntBits   = 27
	seqTimeShift = seqCntBits + 1
	// SeqMailboxBit marks a composite sequence as a boundary-mailbox
	// delivery (see ScheduleExt callers in internal/fabric).
	SeqMailboxBit = uint64(1) << seqCntBits
	// MaxShardTime bounds the simulation horizon of a shard engine: the
	// scheduling time must fit the bits above the counter field.
	MaxShardTime = Time(1)<<(63-seqTimeShift) - 1
)

// NewShardEngine returns an engine for one shard of a partitioned
// simulation. It differs from NewEngine only in sequence assignment
// (composite scheduling-time sequences, see above); scheduling API,
// dispatch loop and determinism guarantees are identical.
func NewShardEngine() *Engine { return &Engine{encode: true} }

// ComposeSeq builds the composite sequence for a boundary-mailbox
// delivery scheduled by the window runner: sendAt is the instant the
// message was transmitted (its scheduling time), idx the delivery's
// rank among same-(arrival, sendAt) mailbox messages.
func ComposeSeq(sendAt Time, idx uint64) uint64 {
	return uint64(sendAt)<<seqTimeShift | SeqMailboxBit | idx
}

// NextAt returns the time of the earliest pending event.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// The window runner uses it so coordinator-driven work scheduled "now"
// carries the barrier's timestamp; t must not rewind the clock or skip
// pending events.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo rewinds the clock (now=%v, t=%v)", e.now, t))
	}
	if len(e.events) > 0 && e.events[0].at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip a pending event at %v", t, e.events[0].at))
	}
	e.now = t
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Stamp returns the current time together with the dispatch count — a
// pair that totally orders observations made by the running simulation
// (events at the same instant are distinguished by their dispatch
// sequence). Tracing uses it so exports never depend on wall clock.
func (e *Engine) Stamp() (Time, uint64) { return e.now, e.Executed }

// allocRec takes a callback record from the free-list (or grows the
// pool) and returns its index.
func (e *Engine) allocRec() int32 {
	if n := len(e.free); n > 0 {
		r := e.free[n-1]
		e.free = e.free[:n-1]
		return r
	}
	e.recs = append(e.recs, evRec{})
	return int32(len(e.recs) - 1)
}

// push inserts a node into the 4-ary heap (sift-up by hole movement).
func (e *Engine) push(n evNode) {
	h := append(e.events, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(n, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
	e.events = h
}

// pop removes and returns the minimum node.
func (e *Engine) pop() evNode {
	h := e.events
	root := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	e.events = h
	if n := len(h); n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if evLess(h[j], h[m]) {
					m = j
				}
			}
			if !evLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return root
}

// schedule enqueues an already-populated record at (at, next seq).
func (e *Engine) schedule(at Time, rec int32) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (now=%v, at=%v)", e.now, at))
	}
	var seq uint64
	if e.encode {
		if e.now != e.encNow {
			e.encNow, e.encCnt = e.now, 0
		}
		if e.now > MaxShardTime {
			panic(fmt.Sprintf("sim: shard engine past the encodable horizon (now=%v, max %v)", e.now, MaxShardTime))
		}
		if e.encCnt >= SeqMailboxBit {
			panic(fmt.Sprintf("sim: over %d events scheduled at %v on one shard", SeqMailboxBit, e.now))
		}
		seq = uint64(e.now)<<seqTimeShift | e.encCnt
		e.encCnt++
	} else {
		e.seq++
		seq = e.seq
	}
	e.push(evNode{at: at, seq: seq, rec: rec})
}

// ScheduleExt runs fn(arg) at time at with an explicit, caller-built
// sequence. Only meaningful on shard engines: the window runner uses it
// to deliver boundary-mailbox messages with ComposeSeq sequences so
// they interleave deterministically with locally scheduled events.
func (e *Engine) ScheduleExt(at Time, seq uint64, fn func(any), arg any) {
	if fn == nil {
		panic("sim: ScheduleExt called with nil fn")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: ScheduleExt into the past (now=%v, at=%v)", e.now, at))
	}
	r := e.allocRec()
	e.recs[r].afn = fn
	e.recs[r].arg = arg
	e.push(evNode{at: at, seq: seq, rec: r})
}

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// it always indicates a model bug (causality violation).
func (e *Engine) Schedule(at Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil fn")
	}
	r := e.allocRec()
	e.recs[r].fn = fn
	e.schedule(at, r)
}

// ScheduleArg runs fn(arg) at absolute time at. It is the pre-bound
// form of Schedule for hot call sites: fn is typically a func stored
// once per object and arg a pointer to the event's state, so scheduling
// allocates nothing (closure captures are what made Schedule call sites
// allocate). Ordering is identical to Schedule — both draw from the
// same sequence counter.
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) {
	if fn == nil {
		panic("sim: ScheduleArg called with nil fn")
	}
	r := e.allocRec()
	e.recs[r].afn = fn
	e.recs[r].arg = arg
	e.schedule(at, r)
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// AfterArg runs fn(arg) after delay d from the current time.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.ScheduleArg(e.now+d, fn, arg)
}

// Stop makes Run return after the currently dispatching event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.events) }

// dispatch pops the minimum event, releases its record back to the
// free-list, and invokes the callback. The callback fields are copied
// out before the record is freed, so callbacks may immediately reuse
// the slot by scheduling new events.
func (e *Engine) dispatch() {
	ev := e.pop()
	r := &e.recs[ev.rec]
	fn, afn, arg := r.fn, r.afn, r.arg
	r.fn, r.afn, r.arg = nil, nil, nil
	e.free = append(e.free, ev.rec)
	e.now = ev.at
	e.Executed++
	if e.probe != nil {
		e.probe(ev.at, ev.seq)
	}
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
}

// Run dispatches events in time order until the queue is empty, the
// clock would pass until, or Stop is called. Events scheduled exactly at
// until still run. It returns the number of events dispatched.
func (e *Engine) Run(until Time) uint64 {
	start := e.Executed
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > until {
			break
		}
		e.dispatch()
	}
	// Advance the clock to the horizon so a subsequent Run continues
	// from there even if the queue drained early.
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.Executed - start
}

// Drain dispatches every remaining event regardless of time. It is
// intended for quiescence checks at the end of an experiment.
func (e *Engine) Drain() uint64 {
	start := e.Executed
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		e.dispatch()
	}
	return e.Executed - start
}
