package units

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSerializeExactRates(t *testing.T) {
	cases := []struct {
		rate Rate
		size int
		want sim.Time
	}{
		{LinkRate, 64, 64 * sim.Nanosecond}, // 8 Gbps = 1 B/ns
		{LinkRate, 512, 512 * sim.Nanosecond},
		{LinkRate, 1, sim.Nanosecond},
		{LinkRate, 0, 0},
		{CrossbarRate, 64, sim.Time(64000 * 2 / 3)}, // 1.5 B/ns → 42666.67 rounded up
		{CrossbarRate, 3, 2 * sim.Nanosecond},       // exactly 2 ns
		{Gbps, 1, 8 * sim.Nanosecond},
	}
	for _, c := range cases {
		got := c.rate.Serialize(c.size)
		if c.rate == CrossbarRate && c.size == 64 {
			// 64 B at 1.5 B/ns = 42666.66… ps, rounded up to 42667.
			if got != 42667 {
				t.Errorf("CrossbarRate.Serialize(64) = %d, want 42667", int64(got))
			}
			continue
		}
		if got != c.want {
			t.Errorf("%v.Serialize(%d) = %v, want %v", c.rate, c.size, got, c.want)
		}
	}
}

func TestSerializeNeverFasterThanRate(t *testing.T) {
	f := func(sz uint16) bool {
		size := int(sz)
		got := CrossbarRate.Serialize(size)
		// Exact time is size*8e12/12e9 ps = size*2000/3.
		exact := float64(size) * 2000.0 / 3.0
		return float64(got) >= exact && float64(got) < exact+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSerializeMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return LinkRate.Serialize(x) <= LinkRate.Serialize(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSerializePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative size":    func() { LinkRate.Serialize(-1) },
		"nonpositive rate": func() { Rate(0).Serialize(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBytesPerNano(t *testing.T) {
	if got := LinkRate.BytesPerNano(); got != 1.0 {
		t.Errorf("LinkRate.BytesPerNano() = %v, want 1.0", got)
	}
	if got := CrossbarRate.BytesPerNano(); got != 1.5 {
		t.Errorf("CrossbarRate.BytesPerNano() = %v, want 1.5", got)
	}
}

func TestRateString(t *testing.T) {
	if got := LinkRate.String(); got != "8Gbps" {
		t.Errorf("String() = %q", got)
	}
	if got := Rate(1500).String(); got != "1500bps" {
		t.Errorf("String() = %q", got)
	}
}
