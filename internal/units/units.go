// Package units centralizes bandwidth and size conversions used across
// the simulator so that every component serializes bytes at consistent,
// integer-exact rates.
package units

import (
	"fmt"

	"repro/internal/sim"
)

// Rate is a link or crossbar bandwidth in bits per second.
type Rate int64

// Rates used by the paper's evaluation (Section 4.1).
const (
	Gbps Rate = 1_000_000_000

	// LinkRate is the serial full-duplex link bandwidth (8 Gbps,
	// i.e. exactly 1 byte per nanosecond).
	LinkRate = 8 * Gbps

	// CrossbarRate is the internal multiplexed crossbar bandwidth
	// (12 Gbps, i.e. 1.5 bytes per nanosecond).
	CrossbarRate = 12 * Gbps
)

// Sizes in bytes.
const (
	KiB = 1024

	// PortMemory is the default data RAM per switch port (128 KB).
	PortMemory = 128 * KiB

	// PortMemoryLarge is used for the 512-host network under VOQnet,
	// which needs 192 KB to hold one queue per destination.
	PortMemoryLarge = 192 * KiB
)

func (r Rate) String() string {
	if r%Gbps == 0 {
		return fmt.Sprintf("%dGbps", int64(r/Gbps))
	}
	return fmt.Sprintf("%dbps", int64(r))
}

// Serialize returns the time to push size bytes through a channel of
// this rate. The result is exact when the rate divides 8·10¹² evenly
// (true for 8 and 12 Gbps) and rounded up otherwise so that modeled
// components never transmit faster than their rate.
func (r Rate) Serialize(size int) sim.Time {
	if size < 0 {
		panic(fmt.Sprintf("units: negative size %d", size))
	}
	if r <= 0 {
		panic(fmt.Sprintf("units: nonpositive rate %d", int64(r)))
	}
	// ps = bytes * 8 bits/byte * 1e12 ps/s / rate bits/s.
	const psPerSec = 1_000_000_000_000
	num := int64(size) * 8 * psPerSec
	t := num / int64(r)
	if num%int64(r) != 0 {
		t++
	}
	return sim.Time(t)
}

// BytesPerNano returns the rate expressed in bytes per nanosecond,
// useful for reporting throughput in the paper's units (bytes/ns).
func (r Rate) BytesPerNano() float64 {
	return float64(r) / 8 / 1e9
}
