package fault

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestScriptedDropsConsumeFirst(t *testing.T) {
	p := NewPlan(1).Drop(Token, 2)
	var rep stats.FaultReport
	if err := p.Bind(&rep); err != nil {
		t.Fatal(err)
	}
	if v := p.CtlVerdict(Token); !v.Drop {
		t.Fatal("first token not dropped")
	}
	if v := p.CtlVerdict(Token); !v.Drop {
		t.Fatal("second token not dropped")
	}
	if v := p.CtlVerdict(Token); v.Drop {
		t.Fatal("third token dropped (script exhausted)")
	}
	if v := p.CtlVerdict(Credit); v.Drop || v.Dup || v.Delay != 0 {
		t.Fatal("credit affected by token script")
	}
	if rep.Dropped[Token] != 2 {
		t.Fatalf("Dropped[Token] = %d, want 2", rep.Dropped[Token])
	}
}

func TestDeterministicVerdicts(t *testing.T) {
	run := func() []Verdict {
		p := NewPlan(42).
			Rule(Xoff, Rule{DropProb: 0.3}).
			Rule(Credit, Rule{DropProb: 0.1, DelayProb: 0.2, Delay: sim.Microsecond})
		var rep stats.FaultReport
		if err := p.Bind(&rep); err != nil {
			t.Fatal(err)
		}
		var out []Verdict
		for i := 0; i < 200; i++ {
			out = append(out, p.CtlVerdict(Xoff), p.CtlVerdict(Credit))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestValidateRejectsUnsafeFaults(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"data drop", NewPlan(1).Rule(Data, Rule{DropProb: 0.1}), "lossless"},
		{"data dup", NewPlan(1).Rule(Data, Rule{DupProb: 0.1}), "lossless"},
		{"credit dup", NewPlan(1).Rule(Credit, Rule{DupProb: 0.1}), "credits cannot be duplicated"},
		{"bad prob", NewPlan(1).Rule(Token, Rule{DropProb: 1.5}), "outside [0, 1]"},
		{"bad flap", NewPlan(1).Flap(LinkFlap{Down: 5, Up: 5}), "not ordered"},
		{"neg corrupt", NewPlan(1).Corrupt(-1), "CorruptEvery"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateFirstErrorDeterministic: a plan with several invalid
// entries spread across both kind maps must report the same error on
// every call. Validate used to iterate the maps directly, so the first
// error depended on Go's randomized map order and the same broken
// config produced different messages run to run — useless for error
// goldens and confusing in CI logs. Rules are checked before scripted
// drops, each map in ascending kind order, so the lowest-kind rule
// error always wins.
func TestValidateFirstErrorDeterministic(t *testing.T) {
	build := func() *Plan {
		return NewPlan(1).
			Rule(Token, Rule{DropProb: 1.5}).
			Rule(Xoff, Rule{DelayProb: -2}).
			Rule(Notify, Rule{Delay: -1}).
			Drop(Xon, -4).
			Drop(Credit, -1)
	}
	first := build().Validate()
	if first == nil {
		t.Fatal("plan should be invalid")
	}
	// Token is the lowest kind with a broken rule, and rules outrank
	// scripted drops.
	if !strings.Contains(first.Error(), "token") || !strings.Contains(first.Error(), "outside [0, 1]") {
		t.Fatalf("first error should be the token rule's probability, got %v", first)
	}
	for i := 0; i < 50; i++ {
		if err := build().Validate(); err == nil || err.Error() != first.Error() {
			t.Fatalf("call %d: Validate() = %v, want stable %v", i, err, first)
		}
	}
}

func TestBindIsSingleUse(t *testing.T) {
	p := NewPlan(1)
	var rep stats.FaultReport
	if err := p.Bind(&rep); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(&rep); err == nil {
		t.Fatal("second Bind succeeded; plans must be single-use")
	}
}

func TestCorruptEvery(t *testing.T) {
	p := NewPlan(1).Corrupt(3)
	var rep stats.FaultReport
	if err := p.Bind(&rep); err != nil {
		t.Fatal(err)
	}
	var hits int
	for i := 0; i < 9; i++ {
		if p.CorruptData() {
			hits++
		}
	}
	if hits != 3 || rep.Corrupted != 3 {
		t.Fatalf("hits = %d, report = %d, want 3", hits, rep.Corrupted)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7, drop=token:3, droprate=xoff:0.25, delayrate=credit:0.5:2us, corrupt=100, flap=1:2:100us:400us, flaphost=5:10us:20us")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Errorf("Seed = %d", p.Seed)
	}
	if p.DropNext[Token] != 3 {
		t.Errorf("DropNext[Token] = %d", p.DropNext[Token])
	}
	if r := p.Rules[Xoff]; r.DropProb != 0.25 {
		t.Errorf("Xoff rule = %+v", r)
	}
	if r := p.Rules[Credit]; r.DelayProb != 0.5 || r.Delay != 2*sim.Microsecond {
		t.Errorf("Credit rule = %+v", r)
	}
	if p.CorruptEvery != 100 {
		t.Errorf("CorruptEvery = %d", p.CorruptEvery)
	}
	if len(p.Flaps) != 2 {
		t.Fatalf("Flaps = %+v", p.Flaps)
	}
	if f := p.Flaps[0]; f.Switch != 1 || f.Port != 2 || f.Host != -1 || f.Down != 100*sim.Microsecond || f.Up != 400*sim.Microsecond {
		t.Errorf("flap = %+v", f)
	}
	if f := p.Flaps[1]; f.Host != 5 || f.Down != 10*sim.Microsecond || f.Up != 20*sim.Microsecond {
		t.Errorf("flaphost = %+v", f)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",
		"drop=token",
		"drop=frob:3",
		"droprate=data:0.5",
		"flap=1:2:400us:100us",
		"delayrate=credit:0.5",
		"seed",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", spec)
		}
	}
}

func TestRecoveryDefaults(t *testing.T) {
	r := Recovery{Enabled: true, Period: 5 * sim.Microsecond}.WithDefaults()
	if r.Period != 5*sim.Microsecond {
		t.Errorf("Period overwritten: %v", r.Period)
	}
	if r.TokenTimeout != DefaultRecovery().TokenTimeout {
		t.Errorf("TokenTimeout not defaulted: %v", r.TokenTimeout)
	}
	if got := r.Ticks(12 * sim.Microsecond); got != 3 {
		t.Errorf("Ticks(12us) with 5us period = %d, want 3", got)
	}
	if got := r.Ticks(sim.Microsecond); got != 1 {
		t.Errorf("Ticks(1us) = %d, want 1", got)
	}
}

func TestParseTime(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want sim.Time
	}{
		{"250ns", 250 * sim.Nanosecond},
		{"1.5us", 1500 * sim.Nanosecond},
		{"2ms", 2 * sim.Millisecond},
		{"800ps", 800 * sim.Picosecond},
	} {
		got, err := sim.ParseTime(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseTime(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "5", "5s", "abcus"} {
		if _, err := sim.ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q) succeeded, want error", bad)
		}
	}
}
