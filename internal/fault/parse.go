package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ParsePlan builds a Plan from a compact comma-separated spec, the
// format behind the `recnsim -faults` flag. Items:
//
//	seed=N                     RNG seed for probabilistic rules
//	drop=KIND:N                drop the next N messages of KIND
//	droprate=KIND:P            drop each KIND message with probability P
//	duprate=KIND:P             duplicate with probability P
//	delayrate=KIND:P:DUR       delay by DUR with probability P
//	corrupt=N                  corrupt every Nth data packet
//	flap=SW:PORT:DOWN:UP       fail switch SW's output PORT in [DOWN, UP)
//	flaphost=H:DOWN:UP         fail host H's injection link in [DOWN, UP)
//
// KIND is one of credit, token, xon, xoff, notify, data. Durations use
// Go syntax ("5us", "1ms"). Example:
//
//	-faults "seed=7,drop=token:3,droprate=xoff:0.01,flap=0:2:100us:400us"
func ParsePlan(spec string) (*Plan, error) {
	p := NewPlan(1)
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("fault: item %q is not key=value", item)
		}
		if err := p.parseItem(key, val); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Plan) parseItem(key, val string) error {
	switch key {
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("fault: seed %q: %v", val, err)
		}
		p.Seed = n
	case "drop":
		k, rest, err := parseKindPrefix(val)
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return fmt.Errorf("fault: drop count %q", rest)
		}
		p.Drop(k, n)
	case "droprate", "duprate":
		k, rest, err := parseKindPrefix(val)
		if err != nil {
			return err
		}
		prob, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return fmt.Errorf("fault: probability %q: %v", rest, err)
		}
		r := p.Rules[k]
		if key == "droprate" {
			r.DropProb = prob
		} else {
			r.DupProb = prob
		}
		p.Rule(k, r)
	case "delayrate":
		k, rest, err := parseKindPrefix(val)
		if err != nil {
			return err
		}
		probStr, durStr, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("fault: delayrate %q needs KIND:P:DUR", val)
		}
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil {
			return fmt.Errorf("fault: probability %q: %v", probStr, err)
		}
		d, err := sim.ParseTime(durStr)
		if err != nil {
			return fmt.Errorf("fault: delay %q: %v", durStr, err)
		}
		r := p.Rules[k]
		r.DelayProb = prob
		r.Delay = d
		p.Rule(k, r)
	case "corrupt":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("fault: corrupt period %q", val)
		}
		p.CorruptEvery = n
	case "flap":
		parts := strings.Split(val, ":")
		if len(parts) != 4 {
			return fmt.Errorf("fault: flap %q needs SW:PORT:DOWN:UP", val)
		}
		swID, err1 := strconv.Atoi(parts[0])
		port, err2 := strconv.Atoi(parts[1])
		down, err3 := sim.ParseTime(parts[2])
		up, err4 := sim.ParseTime(parts[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return fmt.Errorf("fault: flap %q: bad field", val)
		}
		p.Flap(LinkFlap{Switch: swID, Port: port, Host: -1, Down: down, Up: up})
	case "flaphost":
		parts := strings.Split(val, ":")
		if len(parts) != 3 {
			return fmt.Errorf("fault: flaphost %q needs HOST:DOWN:UP", val)
		}
		host, err1 := strconv.Atoi(parts[0])
		down, err2 := sim.ParseTime(parts[1])
		up, err3 := sim.ParseTime(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("fault: flaphost %q: bad field", val)
		}
		p.Flap(LinkFlap{Host: host, Down: down, Up: up})
	default:
		return fmt.Errorf("fault: unknown item %q", key)
	}
	return nil
}

func parseKindPrefix(s string) (Kind, string, error) {
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		return 0, "", fmt.Errorf("fault: %q needs KIND:...", s)
	}
	k, err := ParseKind(name)
	if err != nil {
		return 0, "", err
	}
	return k, rest, nil
}

// ParseKind maps a kind name to its Kind value.
func ParseKind(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "credit":
		return Credit, nil
	case "token":
		return Token, nil
	case "xon":
		return Xon, nil
	case "xoff":
		return Xoff, nil
	case "notify", "notification":
		return Notify, nil
	case "data":
		return Data, nil
	}
	return 0, fmt.Errorf("fault: unknown message kind %q", name)
}
