// Package fault injects deterministic, seeded faults into a simulated
// network and configures the recovery layer that survives them.
//
// The paper assumes perfect signaling: tokens always return (§3.8),
// Xon/Xoff always arrive (§3.7) and credits are never lost. Real
// interconnects drop and delay control symbols, and links flap. A Plan
// describes which of those imperfections to inject — per-kind
// probabilistic rules, scripted "drop the next N" counters, payload
// corruption and a link-flap schedule — all driven by one seeded RNG so
// every run is reproducible. A Recovery describes the watchdog layer
// (implemented in internal/fabric) that detects the resulting stalls
// and leaks and repairs them: SAQ token-timeout reclaim, credit resync,
// Xoff retransmit and remote-stop override.
//
// Data packets are never dropped: the fabric is lossless by
// construction, and link-level CRC/retry (standard in lossless
// hardware) is assumed to recover payload transfers. Payload faults are
// therefore corruption (detected and counted at delivery) and link
// flaps (the link stops transmitting for a window); everything queued
// behind a failed link waits and is delivered after restoration.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Kind identifies the class of link traffic a fault targets.
type Kind = stats.FaultKind

// Fault targets, aliasing the stats kinds so FaultReport indices line
// up with Plan rules.
const (
	Credit = stats.FaultCredit
	Token  = stats.FaultToken
	Xon    = stats.FaultXon
	Xoff   = stats.FaultXoff
	Notify = stats.FaultNotify
	Data   = stats.FaultData
)

// Rule is a probabilistic fault rule for one message kind: each message
// of the kind is independently dropped, duplicated or delayed with the
// given probabilities (drop wins over duplicate wins over delay).
type Rule struct {
	DropProb  float64
	DupProb   float64
	DelayProb float64
	// Delay is the extra latency added when DelayProb fires.
	Delay sim.Time
}

func (r Rule) zero() bool {
	return r.DropProb == 0 && r.DupProb == 0 && r.DelayProb == 0
}

// LinkFlap takes one link direction down for a time window: the channel
// stops transmitting at Down and resumes at Up. Host ≥ 0 selects host
// Host's injection link (host → first switch); otherwise Switch/Port
// select a switch output link (toward its wired peer, which may be a
// host). Traffic queued behind the link waits; nothing in the window is
// transmitted, so nothing is lost to the flap itself.
type LinkFlap struct {
	Switch, Port int
	Host         int
	Down, Up     sim.Time
}

// Verdict is the fate of one message as decided by the plan.
type Verdict struct {
	Drop  bool
	Dup   bool
	Delay sim.Time
}

// Plan is a deterministic fault schedule for one network run. Configure
// it with the chainable setters (or struct literals), hand it to
// fabric.Config.Faults, and read the outcome from the network's
// FaultReport. A Plan is single-use: binding it to a second network is
// an error (its RNG and script counters advance during the run).
type Plan struct {
	// Seed drives every probabilistic rule.
	Seed int64
	// Rules holds the per-kind probabilistic fault rules.
	Rules map[Kind]Rule
	// DropNext scripts exact losses: the next N messages of a kind
	// (network-wide, in transmission order) are dropped.
	DropNext map[Kind]int
	// CorruptEvery corrupts the payload of every Nth data packet
	// transmitted on any link (0 = never).
	CorruptEvery int
	// Flaps is the link-failure schedule.
	Flaps []LinkFlap

	// Run state, initialized by Bind.
	rng      *rand.Rand
	report   *stats.FaultReport
	dropLeft [stats.NumFaultKinds]int
	dataSeen int
	bound    bool
}

// NewPlan returns an empty plan with the given RNG seed.
func NewPlan(seed int64) *Plan {
	return &Plan{
		Seed:     seed,
		Rules:    make(map[Kind]Rule),
		DropNext: make(map[Kind]int),
	}
}

// Drop scripts the loss of the next n messages of kind k.
func (p *Plan) Drop(k Kind, n int) *Plan {
	if p.DropNext == nil {
		p.DropNext = make(map[Kind]int)
	}
	p.DropNext[k] += n
	return p
}

// Rule installs a probabilistic fault rule for kind k.
func (p *Plan) Rule(k Kind, r Rule) *Plan {
	if p.Rules == nil {
		p.Rules = make(map[Kind]Rule)
	}
	p.Rules[k] = r
	return p
}

// Flap appends a link-failure window to the schedule.
func (p *Plan) Flap(f LinkFlap) *Plan {
	p.Flaps = append(p.Flaps, f)
	return p
}

// Corrupt corrupts every nth data packet.
func (p *Plan) Corrupt(every int) *Plan {
	p.CorruptEvery = every
	return p
}

// sortedKinds returns a fault-kind map's keys in ascending order, so
// callers iterating a plan report the same first error on every run
// (Go's map iteration order is deliberately randomized).
func sortedKinds[V any](m map[Kind]V) []Kind {
	kinds := make([]Kind, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// Validate reports configuration errors. With several errors present
// the one reported is deterministic: rules are checked before scripted
// drops, and each map is checked in ascending kind order.
func (p *Plan) Validate() error {
	for _, k := range sortedKinds(p.Rules) {
		r := p.Rules[k]
		if k < 0 || k >= stats.NumFaultKinds {
			return fmt.Errorf("fault: rule for unknown kind %d", int(k))
		}
		for _, prob := range []float64{r.DropProb, r.DupProb, r.DelayProb} {
			if prob < 0 || prob > 1 {
				return fmt.Errorf("fault: %v probability %v outside [0, 1]", k, prob)
			}
		}
		if r.Delay < 0 {
			return fmt.Errorf("fault: %v negative delay %v", k, r.Delay)
		}
		if k == Data && !r.zero() {
			return fmt.Errorf("fault: data packets cannot be dropped, duplicated or delayed (the fabric is lossless; use CorruptEvery or a LinkFlap)")
		}
		if k == Credit && r.DupProb > 0 {
			return fmt.Errorf("fault: credits cannot be duplicated (a forged credit would overflow the receiver RAM the losslessness invariant protects; model it as loss)")
		}
	}
	for _, k := range sortedKinds(p.DropNext) {
		n := p.DropNext[k]
		if k < 0 || k >= stats.NumFaultKinds || k == Data {
			return fmt.Errorf("fault: scripted drop for invalid kind %v", k)
		}
		if n < 0 {
			return fmt.Errorf("fault: scripted drop count %d for %v", n, k)
		}
	}
	if p.CorruptEvery < 0 {
		return fmt.Errorf("fault: CorruptEvery %d", p.CorruptEvery)
	}
	for i, f := range p.Flaps {
		if f.Down < 0 || f.Up <= f.Down {
			return fmt.Errorf("fault: flap %d window [%v, %v] not ordered", i, f.Down, f.Up)
		}
	}
	return nil
}

// Bind attaches the plan to a network run: the report receives the
// injected-fault counters. Called by the fabric; binding twice is an
// error because run state (RNG, script counters) is consumed.
func (p *Plan) Bind(report *stats.FaultReport) error {
	if p.bound {
		return fmt.Errorf("fault: plan already bound to a network (plans are single-use)")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	p.bound = true
	p.rng = rand.New(rand.NewSource(p.Seed))
	p.report = report
	for k, n := range p.DropNext {
		p.dropLeft[k] = n
	}
	return nil
}

// Report returns the bound report (nil before Bind).
func (p *Plan) Report() *stats.FaultReport { return p.report }

// CtlVerdict decides the fate of one control message of kind k, in
// network-wide transmission order. Scripted drops are consumed first;
// then the probabilistic rule applies.
func (p *Plan) CtlVerdict(k Kind) Verdict {
	if p.dropLeft[k] > 0 {
		p.dropLeft[k]--
		p.report.Dropped[k]++
		return Verdict{Drop: true}
	}
	r, ok := p.Rules[k]
	if !ok || r.zero() {
		return Verdict{}
	}
	switch {
	case r.DropProb > 0 && p.rng.Float64() < r.DropProb:
		p.report.Dropped[k]++
		return Verdict{Drop: true}
	case r.DupProb > 0 && p.rng.Float64() < r.DupProb:
		p.report.Duplicated[k]++
		return Verdict{Dup: true}
	case r.DelayProb > 0 && p.rng.Float64() < r.DelayProb:
		p.report.Delayed[k]++
		return Verdict{Delay: r.Delay}
	}
	return Verdict{}
}

// CorruptData decides whether the next data packet transmitted on a
// link has its payload corrupted.
func (p *Plan) CorruptData() bool {
	p.dataSeen++
	if p.CorruptEvery > 0 && p.dataSeen%p.CorruptEvery == 0 {
		p.report.Corrupted++
		return true
	}
	return false
}

// HasScriptedDrops reports whether the plan scripts exact drops
// (DropNext). Scripted drops consume a network-wide transmission order
// and therefore need the serial engine; the sharded runtime rejects
// them.
func (p *Plan) HasScriptedDrops() bool {
	for _, n := range p.DropNext {
		if n > 0 {
			return true
		}
	}
	return false
}

// View is a per-channel instance of a plan's probabilistic rules, used
// by the sharded runtime: each channel draws from its own RNG stream
// (derived from the plan seed and the channel's wiring-order ID) and
// counts its own corruption cadence, so verdicts depend only on the
// channel's local traffic — deterministic at any shard count. Scripted
// drops are excluded (see HasScriptedDrops); note CorruptEvery counts
// per channel here, not plan-wide as in the serial mode.
type View struct {
	p        *Plan
	rng      *rand.Rand
	report   *stats.FaultReport
	dataSeen int
}

// View derives the per-channel rule instance for salt (the channel's
// stable ID); report receives the injected-fault counters (the owning
// shard's, merged after the run).
func (p *Plan) View(salt int64, report *stats.FaultReport) *View {
	return &View{
		p:      p,
		rng:    rand.New(rand.NewSource(mixSeed(p.Seed, salt))),
		report: report,
	}
}

// mixSeed decorrelates the per-channel streams: adjacent salts must
// not yield adjacent (correlated) rand.Source states, so the pair is
// run through a splitmix64 finalizer.
func mixSeed(seed, salt int64) int64 {
	z := uint64(seed) ^ (uint64(salt)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// CtlVerdict decides the fate of one control message of kind k on this
// view's channel (probabilistic rules only; scripted drops are a
// serial-mode feature).
func (v *View) CtlVerdict(k Kind) Verdict {
	r, ok := v.p.Rules[k]
	if !ok || r.zero() {
		return Verdict{}
	}
	switch {
	case r.DropProb > 0 && v.rng.Float64() < r.DropProb:
		v.report.Dropped[k]++
		return Verdict{Drop: true}
	case r.DupProb > 0 && v.rng.Float64() < r.DupProb:
		v.report.Duplicated[k]++
		return Verdict{Dup: true}
	case r.DelayProb > 0 && v.rng.Float64() < r.DelayProb:
		v.report.Delayed[k]++
		return Verdict{Delay: r.Delay}
	}
	return Verdict{}
}

// CorruptData decides whether the next data packet on this view's
// channel has its payload corrupted.
func (v *View) CorruptData() bool {
	v.dataSeen++
	if v.p.CorruptEvery > 0 && v.dataSeen%v.p.CorruptEvery == 0 {
		v.report.Corrupted++
		return true
	}
	return false
}

// Recovery configures the watchdog and recovery layer that keeps a
// network live under an imperfect control plane. The zero value
// disables it; DefaultRecovery returns sane timers. All timeouts are
// rounded up to whole audit periods.
type Recovery struct {
	// Enabled turns the layer on. With it off, the fabric schedules no
	// watchdog events at all and the fault-free hot path is unchanged.
	Enabled bool
	// Period is the audit tick: how often the watchdog inspects the
	// network (default 10 µs).
	Period sim.Time
	// TokenTimeout reclaims an idle SAQ whose upstream notification or
	// returning token was lost: after this long with the queue idle and
	// the token still outstanding, the SAQ deallocates locally and its
	// token returns downstream (default 150 µs). Late tokens for
	// reclaimed SAQs are already tolerated as stale messages.
	TokenTimeout sim.Time
	// XoffResend re-sends the per-SAQ stop signal while the SAQ stays
	// above the Xoff threshold, so a lost Xoff only widens the SAQ
	// occupancy bound for one resend period (default 60 µs).
	XoffResend sim.Time
	// XonTimeout clears a remote stop (xoffRemote) that has been held
	// this long: a lost Xon would otherwise gate the SAQ forever. If the
	// downstream SAQ is genuinely still full it re-asserts Xoff
	// (default 150 µs).
	XonTimeout sim.Time
	// CreditQuiet is how long a link must be completely quiet (no credit
	// movement, nothing in flight in either direction) before the credit
	// auditor compares the sender's credit count against the receiver's
	// buffer occupancy and restores lost credits (default 80 µs).
	CreditQuiet sim.Time
	// StallTimeout is the no-delivery window with packets in flight that
	// counts as a global progress stall (default 250 µs).
	StallTimeout sim.Time
}

// DefaultRecovery returns the recovery layer with default timers.
func DefaultRecovery() Recovery {
	return Recovery{
		Enabled:      true,
		Period:       10 * sim.Microsecond,
		TokenTimeout: 150 * sim.Microsecond,
		XoffResend:   60 * sim.Microsecond,
		XonTimeout:   150 * sim.Microsecond,
		CreditQuiet:  80 * sim.Microsecond,
		StallTimeout: 250 * sim.Microsecond,
	}
}

// WithDefaults fills unset (zero) timers from DefaultRecovery.
func (r Recovery) WithDefaults() Recovery {
	d := DefaultRecovery()
	if r.Period <= 0 {
		r.Period = d.Period
	}
	if r.TokenTimeout <= 0 {
		r.TokenTimeout = d.TokenTimeout
	}
	if r.XoffResend <= 0 {
		r.XoffResend = d.XoffResend
	}
	if r.XonTimeout <= 0 {
		r.XonTimeout = d.XonTimeout
	}
	if r.CreditQuiet <= 0 {
		r.CreditQuiet = d.CreditQuiet
	}
	if r.StallTimeout <= 0 {
		r.StallTimeout = d.StallTimeout
	}
	return r
}

// Ticks converts a timeout to whole audit periods (minimum 1).
func (r Recovery) Ticks(d sim.Time) int {
	if r.Period <= 0 {
		return 1
	}
	n := int((d + r.Period - 1) / r.Period)
	if n < 1 {
		n = 1
	}
	return n
}
