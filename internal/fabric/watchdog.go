package fabric

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file implements the watchdog/recovery layer (Config.Recovery):
// a periodic audit tick that detects global no-delivery stalls, reclaims
// SAQs whose token was lost, re-sends lost Xoffs, overrides remote
// stops whose Xon was lost, and resyncs credit counters on quiet links.
// Everything it finds is reported into the network's FaultReport — the
// layer repairs, it never panics.
//
// The tick self-reschedules only while the network still has work the
// watchdog might need to repair (pending packets, live SAQs, or credit
// counters away from their initial values), so Engine.Drain terminates
// on a healthy network.

// watchdogState is the audit tick's bookkeeping.
type watchdogState struct {
	pending       bool
	ticks         uint64 // ticks executed; drives the Xoff resend cadence
	lastDelivered uint64
	stallTicks    int
}

// armWatchdog starts the audit tick (deduplicated). Called on every
// injection; a bool check keeps the disabled/armed cost negligible.
func (n *Network) armWatchdog() {
	if !n.recovery.Enabled || n.watchdog.pending {
		return
	}
	n.watchdog.pending = true
	n.Engine.After(n.recovery.Period, n.watchdogTickFn)
}

func (n *Network) watchdogTick() {
	w := &n.watchdog
	w.pending = false
	w.ticks++
	now := n.Engine.Now()
	rec := n.recovery

	// Progress stall: packets are in flight but none has been delivered
	// for StallTimeout. Counted once per elapsed timeout window.
	if n.PendingPackets() > 0 && n.DeliveredPackets == w.lastDelivered {
		w.stallTicks++
		if w.stallTicks >= rec.Ticks(rec.StallTimeout) {
			n.report.StallEvents++
			n.report.LastStallAt = now
			w.stallTicks = 0
			if n.rec != nil {
				n.rec.Record(trace.EvWatchdog, trace.NetLoc, "", trace.WatchStall, int64(n.PendingPackets()), 0)
			}
		}
	} else {
		w.stallTicks = 0
	}
	w.lastDelivered = n.DeliveredPackets

	if n.cfg.Policy == PolicyRECN {
		tokenTicks := rec.Ticks(rec.TokenTimeout)
		xonTicks := rec.Ticks(rec.XonTimeout)
		resend := w.ticks%uint64(rec.Ticks(rec.XoffResend)) == 0
		for _, sw := range n.switches {
			for _, in := range sw.in {
				if in == nil || in.rc == nil {
					continue
				}
				if c := in.rc.AuditTokens(tokenTicks); c > 0 {
					n.report.SAQsReclaimed += uint64(c)
					if n.rec != nil {
						n.rec.Record(trace.EvWatchdog, in.loc(), "", trace.WatchSAQReclaim, int64(c), 0)
					}
				}
				if resend {
					if c := in.rc.ResendStops(); c > 0 {
						n.report.XoffResent += uint64(c)
						if n.rec != nil {
							n.rec.Record(trace.EvWatchdog, in.loc(), "", trace.WatchXoffResend, int64(c), 0)
						}
					}
				}
			}
			for _, out := range sw.out {
				if out == nil || out.rc == nil {
					continue
				}
				if c := out.rc.AuditRemoteStops(xonTicks); c > 0 {
					n.report.XonOverridden += uint64(c)
					if n.rec != nil {
						n.rec.Record(trace.EvWatchdog, out.loc(), "", trace.WatchXonOverride, int64(c), 0)
					}
					out.ch.kick() // the un-stopped SAQ may transmit again
				}
			}
		}
		for _, nic := range n.nics {
			if nic.inj.rc == nil {
				continue
			}
			if c := nic.inj.rc.AuditRemoteStops(xonTicks); c > 0 {
				n.report.XonOverridden += uint64(c)
				if n.rec != nil {
					n.rec.Record(trace.EvWatchdog, nic.inj.loc(), "", trace.WatchXonOverride, int64(c), 0)
				}
				nic.inj.ch.kick()
			}
		}
	}

	// Credit resync: on links that have been completely quiet for
	// CreditQuiet, the sender's outstanding credits must equal the
	// receiver's resident bytes exactly (residency release and credit
	// return are atomic at the receiver); any shortfall is a lost credit
	// and is restored.
	for _, sw := range n.switches {
		for _, out := range sw.out {
			if out != nil && out.creditQuiet(now, rec.CreditQuiet) {
				out.auditCredits(n.report)
			}
		}
	}
	for _, nic := range n.nics {
		if nic.inj.creditQuiet(now, rec.CreditQuiet) {
			nic.inj.auditCredits(n.report)
		}
	}

	if n.PendingPackets() > 0 || n.saqsLive() || n.creditsDirty() {
		w.pending = true
		n.Engine.After(rec.Period, n.watchdogTickFn)
	}
}

func (n *Network) saqsLive() bool {
	if n.cfg.Policy != PolicyRECN {
		return false
	}
	total, _, _ := n.SAQUsage()
	return total > 0
}

func (n *Network) creditsDirty() bool {
	for _, sw := range n.switches {
		for _, out := range sw.out {
			if out != nil && out.checkCredits() != nil {
				return true
			}
		}
	}
	for _, nic := range n.nics {
		if nic.inj.checkCredits() != nil {
			return true
		}
	}
	return false
}

// creditQuiet reports whether this link has seen no credit movement for
// `quiet` and both directions are silent, making the credit/residency
// comparison exact.
func (u *egressUnit) creditQuiet(now, quiet sim.Time) bool {
	return now-u.lastCreditAt >= quiet && u.ch.quiet(now) && u.ch.sink.reverseQuiet(now)
}

// auditCredits compares outstanding credits against the receiver's
// resident bytes and repairs the counters. Only valid on a quiet link.
// A shortfall (outstanding > resident) is credit loss and is restored; a
// surplus would mean forged credits — the overflow hazard — and is
// clamped and reported as a violation.
func (u *egressUnit) auditCredits(report *stats.FaultReport) {
	sink := u.ch.sink
	if !u.queueCredits.enabled() {
		u.resyncCredit(&u.portCredits, u.initPort-sink.auditResident(-1), report)
		return
	}
	// Untouched lazy slots are exact no-ops here (credit still at its
	// initial value, receiver residency zero), so skipping them loses
	// nothing.
	u.queueCredits.forEachSlot(func(i int, slot *int) {
		u.resyncCredit(slot, u.initQueue-sink.auditResident(i), report)
	})
}

func (u *egressUnit) resyncCredit(counter *int, expected int, report *stats.FaultReport) {
	diff := expected - *counter
	if diff == 0 {
		return
	}
	if diff > 0 {
		report.CreditResyncs++
		report.CreditsRestored += uint64(diff)
		if u.sc.rec != nil {
			u.sc.rec.Record(trace.EvWatchdog, u.loc(), "", trace.WatchCreditResync, int64(diff), 0)
		}
	} else {
		report.CreditViolations++
		if u.sc.rec != nil {
			u.sc.rec.Record(trace.EvWatchdog, u.loc(), "", trace.WatchCreditViolation, int64(-diff), 0)
		}
	}
	*counter = expected
	u.lastCreditAt = u.sc.eng.Now()
	u.ch.kick()
}
