package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/throttle"
)

// blast drives a hotspot: each of srcs injects 64-byte packets at full
// rate toward dst until `until`.
func blast(t *testing.T, n *Network, srcs []int, dst int, until sim.Time) {
	t.Helper()
	for _, src := range srcs {
		src := src
		var gen func()
		gen = func() {
			if n.Engine.Now() > until {
				return
			}
			if err := n.InjectMessage(src, dst, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
}

// Under a hotspot, throttle must mark packets, cut the hot sources'
// injection rate below full, and restore every source to full rate once
// the network quiesces (the recovery half is also asserted by
// CheckQuiesced, but the mid-run rate cut is only visible here).
func TestThrottleHotspotCutsRateAndRecovers(t *testing.T) {
	n := newNet(t, 64, PolicyThrottle)
	srcs := []int{8, 9, 10, 11, 12, 13, 14, 15}
	blast(t, n, srcs, 7, 40*sim.Microsecond)
	minRate := throttle.FullRateMilli
	var poll func()
	poll = func() {
		for _, src := range srcs {
			if r := n.nics[src].thr.state.RateMilli; r < minRate {
				minRate = r
			}
		}
		if n.Engine.Now() < 60*sim.Microsecond {
			n.Engine.After(sim.Microsecond, poll)
		}
	}
	n.Engine.Schedule(0, poll)
	n.Engine.Drain()
	if minRate == throttle.FullRateMilli {
		t.Fatal("hotspot never throttled any source")
	}
	cfg := n.Config().Throttle
	if minRate < cfg.MinRateMilli {
		t.Fatalf("rate %d fell below floor %d", minRate, cfg.MinRateMilli)
	}
	for _, src := range srcs {
		if !n.nics[src].thr.state.Full() {
			t.Fatalf("source %d stuck at rate %d after drain", src, n.nics[src].thr.state.RateMilli)
		}
	}
	if n.OrderViolations != 0 {
		t.Fatalf("order violations: %d", n.OrderViolations)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// Under a hotspot, arn must raise congestion hints somewhere and steer
// at least one packet off its deterministic up port; hints must clear
// once the network drains (also asserted by CheckQuiesced).
func TestARNHotspotSteersAndClears(t *testing.T) {
	n := newNet(t, 64, PolicyARN)
	blast(t, n, []int{8, 9, 10, 11, 12, 13, 14, 15}, 7, 40*sim.Microsecond)
	hinted, steered := false, false
	var poll func()
	poll = func() {
		for sw := 0; sw < n.Topology().NumSwitches(); sw++ {
			if n.Switch(sw).congOut > 0 {
				hinted = true
			}
			for _, out := range n.Switch(sw).out {
				if out != nil && out.hintStop {
					steered = true // a hint arrived upstream and armed steering
				}
			}
		}
		if n.Engine.Now() < 60*sim.Microsecond {
			n.Engine.After(sim.Microsecond, poll)
		}
	}
	n.Engine.Schedule(0, poll)
	n.Engine.Drain()
	if !hinted {
		t.Fatal("hotspot never raised a congestion hint")
	}
	if !steered {
		t.Fatal("no upstream port ever saw a hint")
	}
	for sw := 0; sw < n.Topology().NumSwitches(); sw++ {
		if n.Switch(sw).congOut != 0 {
			t.Fatalf("switch %d still has %d congested outputs after drain", sw, n.Switch(sw).congOut)
		}
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}
