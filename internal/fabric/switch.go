package fabric

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
)

// Switch is one 8-port switch: input and output buffered ports joined
// by a multiplexed 12 Gbps crossbar (paper §3.2, §4.1). A transfer
// holds one crossbar input lane and one output lane for the packet's
// serialization time; the per-input-port arbiters grant requests when
// both lanes and the output buffer are available.
type Switch struct {
	net *Network
	sc  *shardCtx
	id  int

	in  []*ingressUnit // nil entries for unused ports
	out []*egressUnit

	inBusy  []bool
	outBusy []bool

	// Adaptive-routing notification state (PolicyARN only; zero
	// otherwise). upLo/upN is the interchangeable up-port range from the
	// topology's AlternateRouter capability (upN == 0 when the topology
	// lacks it or the switch has no alternatives). congOut counts output
	// ports whose hint is currently on; the 0↔1 transitions broadcast
	// hint-on/hint-off to every upstream neighbor.
	upLo, upN int
	congOut   int
}

// init builds the switch in place (switches live in a slab arena — see
// fabric.New). Port units come from the network's arenas: slot id*ports+p
// for port p, so a switch's units are contiguous and built in port order.
func (sw *Switch) init(net *Network, id int) error {
	topo := net.topo
	ports := topo.PortsPerSwitch()
	sw.net = net
	sw.sc = net.base
	sw.id = id
	sw.in = make([]*ingressUnit, ports)
	sw.out = make([]*egressUnit, ports)
	sw.inBusy = make([]bool, ports)
	sw.outBusy = make([]bool, ports)
	for p := 0; p < ports; p++ {
		if topo.Peer(id, p).Kind == topology.KindNone {
			continue
		}
		slot := id*ports + p
		var rcIn *recn.Ingress
		var rcOut *recn.Egress
		if net.rcInSlab != nil {
			rcIn = &net.rcInSlab[slot]
			rcOut = &net.rcOutSlab[slot]
		}
		in := &net.inSlab[slot]
		if err := in.init(net, sw, p, rcIn); err != nil {
			return err
		}
		out := &net.outSlab[slot]
		if err := out.init(net, sw, p, false, rcOut); err != nil {
			return err
		}
		sw.in[p] = in
		sw.out[p] = out
	}
	if net.cfg.Policy == PolicyARN {
		if ar, ok := topo.(AlternateRouter); ok {
			sw.upLo, sw.upN = ar.UpPortRange(id)
		}
	}
	return nil
}

// hintTransition reacts to one output port's hint flipping: it keeps
// the congested-output census and broadcasts hint-on when the switch
// gains its first congested output, hint-off when it loses its last.
// Hints go to every wired switch-facing input's reverse channel — NICs
// never steer, so host-facing ports are skipped.
func (sw *Switch) hintTransition(on bool) {
	if on {
		sw.congOut++
		if sw.congOut == 1 {
			sw.broadcastHint(recn.MsgHintOn)
		}
		return
	}
	sw.congOut--
	if sw.congOut == 0 {
		sw.broadcastHint(recn.MsgHintOff)
	}
}

func (sw *Switch) broadcastHint(kind recn.MsgKind) {
	topo := sw.net.topo
	for p, in := range sw.in {
		if in == nil || topo.Peer(sw.id, p).Kind != topology.KindSwitch {
			continue
		}
		in.revCh.pushCtl(recn.CtlMsg{Kind: kind})
	}
}

// wire connects every used port's outgoing channel to its peer and
// pairs each ingress with its reverse channel. An inconsistent
// topology (Peer answers that flip between construction and wiring, or
// point at an unused peer port) is a validation error, not a panic.
func (sw *Switch) wire() error {
	topo := sw.net.topo
	for p, out := range sw.out {
		if out == nil {
			continue
		}
		end := topo.Peer(sw.id, p)
		switch end.Kind {
		case topology.KindHost:
			if end.Host < 0 || end.Host >= len(sw.net.nics) {
				return fmt.Errorf("fabric: switch %d port %d wired to nonexistent host %d", sw.id, p, end.Host)
			}
			out.attach(sw.net.nics[end.Host], true)
		case topology.KindSwitch:
			if end.Switch < 0 || end.Switch >= len(sw.net.switches) {
				return fmt.Errorf("fabric: switch %d port %d wired to nonexistent switch %d", sw.id, p, end.Switch)
			}
			peer := sw.net.switches[end.Switch]
			if end.Port < 0 || end.Port >= len(peer.in) || peer.in[end.Port] == nil {
				return fmt.Errorf("fabric: switch %d port %d wired to unused port %d of switch %d", sw.id, p, end.Port, end.Switch)
			}
			out.attach(peer.in[end.Port], false)
		default:
			return fmt.Errorf("fabric: wiring unused port %d of switch %d", p, sw.id)
		}
		sw.in[p].revCh = out.ch
	}
	return nil
}

// kickAllInputs re-arbitrates every input port (an output lane or
// output buffer resource was freed). The arbiters run synchronously:
// they are only ever invoked from event context (transfer/transmission
// completions), never from inside another arbiter, and a run either
// starts a timed transfer or does nothing — so this is equivalent to
// the zero-delay events it replaces at a fraction of the event-queue
// cost.
func (sw *Switch) kickAllInputs() {
	for _, in := range sw.in {
		if in != nil {
			in.arbit()
		}
	}
}

// xferRec carries one in-flight crossbar transfer from grant to
// completion. Records are pooled on the Network so granting a transfer
// never allocates.
type xferRec struct {
	sw  *Switch
	in  *ingressUnit
	h   queueHandle
	s   *recn.SAQ
	p   *pkt.Packet
	out int
}

// xferDoneEvent completes a crossbar transfer. The record is recycled
// before completeTransfer runs: completion re-arbitrates every input
// port, which may synchronously grant transfers needing fresh records.
func xferDoneEvent(arg any) {
	x := arg.(*xferRec)
	sw, in, h, s, p, out := x.sw, x.in, x.h, x.s, x.p, x.out
	sw.sc.freeXfer(x)
	sw.sc.liveXfers--
	sw.completeTransfer(in, h, s, p, out)
}

// startTransfer moves a granted packet from an input queue through the
// crossbar into the target output port. Called by the input arbiter
// once eligibility (lanes, admission) has been verified.
func (sw *Switch) startTransfer(in *ingressUnit, h queueHandle, s *recn.SAQ, p *pkt.Packet) {
	out := int(p.NextTurn())
	if sw.net.check != nil && s != nil && !in.rc.EligibleTx(s) {
		sw.net.check.Fatalf(check.RuleXoffTransmit, in.loc(),
			"SAQ %v granted a crossbar transfer while stopped", s.Path)
	}
	sw.inBusy[in.port] = true
	sw.outBusy[out] = true
	h.q.Pop()
	if h.idx >= 0 && h.q.Entries() == 0 {
		in.active.remove(h.idx)
	}
	// ECN at the input side, marked on dequeue: with credit-based flow
	// control the standing backlog accumulates in input RAM (the
	// upstream of every saturated link), not in the output queue the
	// egress-side check watches, so a congested port would otherwise
	// never mark. Dequeue-time marking puts the bit on a packet that is
	// about to cross the bottleneck and reach its destination at line
	// rate, closing the feedback loop within the congestion window.
	if sw.net.cfg.Policy == PolicyThrottle &&
		!p.Marked && in.pool.Used() >= sw.net.cfg.Throttle.MarkBytes {
		p.Marked = true
		if sw.sc.rec != nil {
			sw.sc.rec.Record(trace.EvMark, in.loc(), "", int64(p.Src), int64(in.pool.Used()), 0)
		}
	}
	dur := units.CrossbarRate.Serialize(p.Size)
	x := sw.sc.allocXfer()
	x.sw, x.in, x.h, x.s, x.p, x.out = sw, in, h, s, p, out
	sw.sc.liveXfers++
	sw.sc.eng.AfterArg(dur, xferDoneEvent, x)
}

func (sw *Switch) completeTransfer(in *ingressUnit, h queueHandle, s *recn.SAQ, p *pkt.Packet, out int) {
	sw.inBusy[in.port] = false
	sw.outBusy[out] = false
	// The packet left the input RAM: release it and return the credit
	// to the upstream sender (paper §4.1: credits are granted when a
	// packet leaves the input port).
	h.q.ReleaseResident(p.Size)
	creditQueue := -1
	if h.idx >= 0 && in.net.cfg.Policy.queueCredits() {
		creditQueue = h.idx
	}
	in.revCh.pushCredit(p.Size, creditQueue)
	if in.rc != nil {
		in.rc.OnDrained(s)
	}
	p.Hop++
	sw.out[out].storePacket(p, in.port)
	sw.kickAllInputs()
}

// queueCredits reports whether the policy uses queue-level credits
// (paper §4.1: "a credit-based flow control at the queue level has been
// implemented for the VOQ mechanisms").
func (p Policy) queueCredits() bool {
	return p == PolicyVOQsw || p == PolicyVOQnet
}
