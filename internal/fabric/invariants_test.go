package fabric

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Small-network invariant sweep: a 16-host (2-stage) network is cheap
// enough to run many randomized workloads under every policy and check
// the global invariants each time.
func TestSmallNetworkInvariantSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	for _, policy := range Policies {
		for seed := int64(1); seed <= 4; seed++ {
			policy, seed := policy, seed
			t.Run(policy.String(), func(t *testing.T) {
				n := newNet(t, 16, policy)
				rng := rand.New(rand.NewSource(seed))
				// Mixed load: uniform background plus a rotating hotspot.
				for h := 0; h < 16; h++ {
					h := h
					var gen func()
					gen = func() {
						now := n.Engine.Now()
						if now > 40*sim.Microsecond {
							return
						}
						dst := rng.Intn(16)
						if rng.Intn(3) == 0 {
							dst = int(now/(10*sim.Microsecond)) % 16 // hotspot rotates
						}
						if dst == h {
							dst = (dst + 1) % 16
						}
						size := 64 * (1 + rng.Intn(4))
						if err := n.InjectMessage(h, dst, size); err != nil {
							t.Fatal(err)
						}
						n.Engine.After(sim.Time(64+rng.Intn(256))*sim.Nanosecond, gen)
					}
					n.Engine.Schedule(sim.Time(h)*sim.Nanosecond, gen)
				}
				n.Engine.Drain()
				if n.PendingPackets() != 0 {
					t.Fatalf("seed %d: %d packets lost/stuck", seed, n.PendingPackets())
				}
				if policy.PreservesOrder() && n.OrderViolations != 0 {
					t.Fatalf("seed %d: %d order violations", seed, n.OrderViolations)
				}
				if err := n.CheckQuiesced(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			})
		}
	}
}

// RECN with a single CAM line still delivers everything (refusals cause
// HOL blocking, never loss or deadlock).
func TestRECNSingleSAQ(t *testing.T) {
	topo, err := topology.ForHosts(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = PolicyRECN
	cfg.RECN.MaxSAQs = 1
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		src := 4*i + 3
		var gen func()
		gen = func() {
			if n.Engine.Now() > 30*sim.Microsecond {
				return
			}
			if err := n.InjectMessage(src, 32, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	n.Engine.Drain()
	if n.PendingPackets() != 0 || n.OrderViolations != 0 {
		t.Fatalf("pending %d, violations %d", n.PendingPackets(), n.OrderViolations)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// Markers disabled (ablation A4 plumbing): the network still quiesces;
// only the ordering guarantee is gone.
func TestRECNNoMarkersQuiesces(t *testing.T) {
	topo, err := topology.ForHosts(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = PolicyRECN
	cfg.RECN.NoInOrderMarkers = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		src := 4*i + 3
		var gen func()
		gen = func() {
			if n.Engine.Now() > 30*sim.Microsecond {
				return
			}
			if err := n.InjectMessage(src, 32, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	n.Engine.Drain()
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// Determinism: identical configuration and workload produce identical
// event counts and delivery counters.
func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		n := newNet(t, 64, PolicyRECN)
		rng := rand.New(rand.NewSource(99))
		for h := 0; h < 32; h++ {
			h := h
			var gen func()
			gen = func() {
				if n.Engine.Now() > 20*sim.Microsecond {
					return
				}
				dst := rng.Intn(64)
				if dst == h {
					dst = (dst + 1) % 64
				}
				if err := n.InjectMessage(h, dst, 64); err != nil {
					t.Fatal(err)
				}
				n.Engine.After(sim.Time(100+rng.Intn(100))*sim.Nanosecond, gen)
			}
			n.Engine.Schedule(0, gen)
		}
		n.Engine.Drain()
		return n.Engine.Executed, n.DeliveredPackets, n.DeliveredBytes
	}
	e1, p1, b1 := run()
	e2, p2, b2 := run()
	if e1 != e2 || p1 != p2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", e1, p1, b1, e2, p2, b2)
	}
}

// The 512-host mixed-radix network delivers across its radix-2 top
// stage under RECN with a hotspot.
func TestMixedRadix512Hotspot(t *testing.T) {
	if testing.Short() {
		t.Skip("512-host network")
	}
	n := newNet(t, 512, PolicyRECN)
	// A few far-apart sources hammer one destination across the top
	// stage, plus background.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 24; i++ {
		src := rng.Intn(512)
		if src == 100 {
			src++
		}
		var gen func()
		gen = func() {
			if n.Engine.Now() > 15*sim.Microsecond {
				return
			}
			if err := n.InjectMessage(src, 100, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	n.Engine.Drain()
	if n.PendingPackets() != 0 || n.OrderViolations != 0 {
		t.Fatalf("pending %d violations %d", n.PendingPackets(), n.OrderViolations)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}
