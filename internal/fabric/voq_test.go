package fabric

import (
	"testing"

	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/topology"
)

// VOQnet's whole point: per-destination queues with per-queue credits
// keep a congested destination's backlog from touching other flows even
// on fully shared paths.
func TestVOQnetIsolatesHotDestination(t *testing.T) {
	n := newNet(t, 64, PolicyVOQnet)
	hot := 32
	// 8 sources at 50% rate converge on the hot destination: their
	// leaf up-links stay under capacity, so the tree root forms at the
	// level-1 convergence switch.
	for i := 0; i < 8; i++ {
		src := 4*i + 3
		var gen func()
		gen = func() {
			if n.Engine.Now() > 90*sim.Microsecond {
				return
			}
			if err := n.InjectMessage(src, hot, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	// A victim flow from a hot source's own switch to a cold
	// destination that shares the first up-link with hot traffic.
	var victim uint64
	n.OnDeliver = func(p *pkt.Packet) {
		if p.Dst == 36 { // same d0 digit as 32 → same up ports
			victim += uint64(p.Size)
		}
	}
	var gen func()
	gen = func() {
		if n.Engine.Now() > 90*sim.Microsecond {
			return
		}
		if err := n.InjectMessage(2, 36, 64); err != nil {
			t.Fatal(err)
		}
		n.Engine.After(256*sim.Nanosecond, gen)
	}
	n.Engine.Schedule(0, gen)
	n.Engine.Run(95 * sim.Microsecond)
	n.OnDeliver = nil // stop counting: the drain below delivers stragglers
	// ~350 packets offered; VOQnet must deliver nearly all of them.
	if victim < 330*64 {
		t.Fatalf("victim flow delivered %d bytes under VOQnet", victim)
	}
	n.Engine.Drain()
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// The same victim collapses under 1Q (the contrast VOQnet fixes): this
// guards against the fabric accidentally decoupling flows that must
// share queues under 1Q. RECN is deliberately not asserted here: the
// victim's first up-link becomes a backpressure root of the congestion
// tree, so the victim itself is a congested flow at that switch and
// RECN (correctly, per §3.1) does not shield flows that cross the
// congested link — the system-level contrast is covered by the
// Figure 2 experiments.
func TestOneQueueVictimSuffers(t *testing.T) {
	run := func(policy Policy) sim.Time {
		// Small port buffers so the congestion tree reaches the victim's
		// shared queues well within the run.
		topo, err := topology.ForHosts(64)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(topo)
		cfg.Policy = policy
		cfg.PortMemory = 32 * 1024
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			src := 4*i + 3
			var gen func()
			gen = func() {
				if n.Engine.Now() > 90*sim.Microsecond {
					return
				}
				if err := n.InjectMessage(src, 32, 64); err != nil {
					t.Fatal(err)
				}
				n.Engine.After(64*sim.Nanosecond, gen)
			}
			n.Engine.Schedule(0, gen)
		}
		// Mean victim latency measures HOL blocking directly (byte
		// counts are confounded by backlog catch-up).
		var latSum sim.Time
		var latN int
		n.OnDeliver = func(p *pkt.Packet) {
			if p.Dst == 36 {
				latSum += n.Engine.Now() - p.CreatedAt
				latN++
			}
		}
		var gen func()
		gen = func() {
			if n.Engine.Now() > 175*sim.Microsecond {
				return
			}
			if err := n.InjectMessage(2, 36, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(256*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
		n.Engine.Run(180 * sim.Microsecond)
		n.Engine.Drain()
		if err := n.CheckQuiesced(); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if latN == 0 {
			t.Fatalf("%v: victim delivered nothing", policy)
		}
		return sim.Time(int64(latSum) / int64(latN))
	}
	oneQ := run(Policy1Q)
	voqnet := run(PolicyVOQnet)
	t.Logf("victim mean latency: 1Q=%v VOQnet=%v", oneQ, voqnet)
	// 1Q must suffer clear HOL blocking relative to VOQnet.
	if oneQ < 2*voqnet {
		t.Fatalf("1Q victim latency %v not ≫ VOQnet %v: HOL modeling broken", oneQ, voqnet)
	}
}
