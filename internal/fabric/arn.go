package fabric

import (
	"fmt"
	"strconv"
	"strings"
)

// ARNConfig holds the adaptive-routing-notification tunables (used only
// by PolicyARN). A switch output queue crossing HintOnBytes makes the
// switch broadcast a hint-on control message to every upstream
// neighbor; when the last output queue falls back below HintOffBytes
// the switch broadcasts hint-off. Upstream ingress arbiters then prefer
// interchangeable up ports that do not lead into a hinted switch (see
// steer in ingress.go). The on/off hysteresis gap keeps a queue
// oscillating around a single threshold from flooding the links with
// hint traffic.
type ARNConfig struct {
	// HintOnBytes is the output-queue occupancy that marks the queue
	// congested (default 16 KB).
	HintOnBytes int
	// HintOffBytes is the occupancy below which the queue stops being
	// congested (default 4 KB; must be below HintOnBytes).
	HintOffBytes int
}

// DefaultARNConfig returns the evaluation defaults.
func DefaultARNConfig() ARNConfig {
	return ARNConfig{HintOnBytes: 16 * 1024, HintOffBytes: 4 * 1024}
}

// Validate reports configuration errors.
func (c ARNConfig) Validate() error {
	switch {
	case c.HintOnBytes <= 0:
		return fmt.Errorf("arn: HintOnBytes %d ≤ 0", c.HintOnBytes)
	case c.HintOffBytes <= 0:
		return fmt.Errorf("arn: HintOffBytes %d ≤ 0", c.HintOffBytes)
	case c.HintOffBytes >= c.HintOnBytes:
		return fmt.Errorf("arn: HintOffBytes %d ≥ HintOnBytes %d (hysteresis gap required)", c.HintOffBytes, c.HintOnBytes)
	}
	return nil
}

// String renders the config in the exact form ParseARNSpec accepts.
func (c ARNConfig) String() string {
	return fmt.Sprintf("on=%d,off=%d", c.HintOnBytes, c.HintOffBytes)
}

// ParseARNSpec parses a comma-separated key=value spec ("on=16384,off=4096")
// starting from DefaultARNConfig. Unknown keys and malformed values are
// errors; the result is validated.
func ParseARNSpec(spec string) (ARNConfig, error) {
	c := DefaultARNConfig()
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return c, fmt.Errorf("arn: malformed field %q (want key=value)", field)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return c, fmt.Errorf("arn: %s: bad value %q: %w", key, val, err)
		}
		switch strings.TrimSpace(key) {
		case "on":
			c.HintOnBytes = n
		case "off":
			c.HintOffBytes = n
		default:
			return c, fmt.Errorf("arn: unknown key %q (valid: on, off)", key)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// AlternateRouter is the optional topology capability the arn policy
// needs: a contiguous range of interchangeable up (ascent) ports per
// switch. Ports in the range must be mutually substitutable for any
// ascending packet — forwarding through any of them leaves the
// remainder of the source route valid (the perfect-shuffle MINs have
// this property: an ascent turn only selects which next-level switch
// forwards, and descent turns depend only on the destination; locked by
// TestUpPortsInterchangeable). Topologies without the capability (the
// 2D mesh) simply get no steering — arn degrades to 1Q behavior there.
type AlternateRouter interface {
	// UpPortRange returns the first up port and the number of
	// interchangeable up ports of a switch (n < 2 disables steering:
	// there is no alternative to steer to).
	UpPortRange(sw int) (lo, n int)
}
