package fabric

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// attachChecker wires a Collect-mode invariant checker into cfg and
// registers a cleanup that fails the test on any recorded violation —
// making the checker always-on across the fabric test battery.
func attachChecker(t testing.TB, cfg *Config) *check.Checker {
	t.Helper()
	chk := check.New(check.Config{Collect: true})
	cfg.Checker = chk
	t.Cleanup(func() {
		for _, v := range chk.Violations() {
			t.Errorf("invariant violation: %s", v.Detail())
		}
	})
	return chk
}

// TestCheckerRunsCleanHotspot drives the standard hotspot workload with
// every audit enabled and verifies the checker actually ran (audits
// counted) and found nothing, and that FinalCheck agrees the network
// quiesced.
func TestCheckerRunsCleanHotspot(t *testing.T) {
	n := newFaultNet(t, 64, nil, testRecovery())
	chk := n.Checker()
	installHotspot(t, n, 100*sim.Microsecond)
	n.Engine.Drain()
	if chk.Audits == 0 {
		t.Fatal("checker never audited")
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("violations on a healthy run: %v", err)
	}
	if err := n.FinalCheck(); err != nil {
		t.Fatalf("FinalCheck: %v", err)
	}
}

// TestCheckerCatchesSeededConservationBug seeds a deliberate
// conservation bug via the test-only hook (a packet silently vanishes
// from a switch input queue) and verifies the checker reports it as a
// structured violation with a populated diagnostics snapshot including
// the flight-recorder tail.
func TestCheckerCatchesSeededConservationBug(t *testing.T) {
	topo, err := topology.ForHosts(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = PolicyRECN
	cfg.Tracer = trace.New(trace.Config{BufferEvents: 256, Events: trace.AllEvents})
	chk := check.New(check.Config{
		Collect:        true,
		Period:         2 * sim.Microsecond,
		LivelockWindow: 50 * sim.Microsecond,
	})
	cfg.Checker = chk
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	installHotspot(t, n, 50*sim.Microsecond)
	lost := false
	n.Engine.Schedule(20*sim.Microsecond, func() {
		// By 20 µs the hotspot has queues everywhere; vanish the first
		// queued packet found.
		for sw := 0; sw < topo.NumSwitches() && !lost; sw++ {
			for port := 0; port < topo.PortsPerSwitch() && !lost; port++ {
				lost = n.debugLosePacket(sw, port)
			}
		}
	})
	n.Engine.Run(2 * sim.Millisecond)
	if !lost {
		t.Fatal("seeded bug hook found nothing to lose")
	}
	var v *check.Violation
	for _, c := range chk.Violations() {
		if c.Rule == check.RulePacketConservation {
			v = c
			break
		}
	}
	if v == nil {
		t.Fatalf("conservation bug not caught; violations: %v", chk.Violations())
	}
	if v.At < 20*sim.Microsecond {
		t.Errorf("violation stamped at %v, before the bug was seeded", v.At)
	}
	if !strings.Contains(v.Msg, "census") {
		t.Errorf("violation message %q missing census accounting", v.Msg)
	}
	if !strings.Contains(v.Snapshot, "pending=") {
		t.Errorf("snapshot missing state block:\n%s", v.Snapshot)
	}
	if !strings.Contains(v.Snapshot, "trace events") {
		t.Errorf("snapshot missing flight-recorder tail:\n%s", v.Snapshot)
	}
	// The vanished packet also means the run can never quiesce: the
	// livelock detector must eventually fire too, and FinalCheck must
	// report the stuck packet.
	if err := n.FinalCheck(); err == nil {
		t.Error("FinalCheck passed despite a lost packet")
	}
}

// TestCheckerBitIdentical verifies audits are pure observers: the same
// seeded workload delivers the identical packet sequence with checks on
// and off.
func TestCheckerBitIdentical(t *testing.T) {
	run := func(withCheck bool) (sig string, delivered uint64) {
		topo, err := topology.ForHosts(64)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(topo)
		cfg.Policy = PolicyRECN
		cfg.Recovery = testRecovery()
		if withCheck {
			cfg.Checker = check.New(check.Config{Collect: true})
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		count := 0
		n.OnDeliver = func(p *pkt.Packet) {
			// Sample every 64th delivery to keep the signature small
			// without losing ordering sensitivity.
			if count%64 == 0 {
				fmt.Fprintf(&sb, "%d:%d>%d@%d;", p.ID, p.Src, p.Dst, n.Engine.Now())
			}
			count++
		}
		installHotspot(t, n, 100*sim.Microsecond)
		n.Engine.Drain()
		if withCheck {
			if err := n.FinalCheck(); err != nil {
				t.Fatalf("FinalCheck: %v", err)
			}
		}
		return sb.String(), n.DeliveredPackets
	}
	sigOff, delOff := run(false)
	sigOn, delOn := run(true)
	if delOff != delOn {
		t.Fatalf("delivered %d with checks off, %d with checks on", delOff, delOn)
	}
	if sigOff != sigOn {
		t.Fatalf("delivery sequence diverged between checks off and on")
	}
}

// TestUnknownPolicyRejected: an out-of-range policy is a validation
// error from New, not a construction-time panic.
func TestUnknownPolicyRejected(t *testing.T) {
	topo, err := topology.ForHosts(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = Policy(99)
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("New with bogus policy: %v", err)
	}
}

// badAttachTopo wraps a real topology but claims every host attaches to
// an out-of-range port — an inconsistent wiring answer that must
// surface as a build error.
type badAttachTopo struct{ Topology }

func (b badAttachTopo) HostAttach(host int) (int, int) {
	sw, _ := b.Topology.HostAttach(host)
	return sw, b.Topology.PortsPerSwitch()
}

func TestInconsistentTopologyRejected(t *testing.T) {
	topo, err := topology.ForHosts(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Topo = badAttachTopo{topo}
	_, err = New(cfg)
	if err == nil || !strings.Contains(err.Error(), "attached to unused port") {
		t.Fatalf("New with inconsistent topology: %v", err)
	}
}

// TestFinalCheckReportsStuckPackets: FinalCheck on a network that still
// has packets in flight produces a deadlock violation naming the wait
// state instead of a bare accounting error.
func TestFinalCheckReportsStuckPackets(t *testing.T) {
	topo, err := topology.ForHosts(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	chk := check.New(check.Config{Collect: true})
	cfg.Checker = chk
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InjectMessage(0, 63, 1024); err != nil {
		t.Fatal(err)
	}
	// Stop long before delivery: packets are mid-flight by design.
	n.Engine.Run(100 * sim.Nanosecond)
	verr := n.FinalCheck()
	if verr == nil {
		t.Fatal("FinalCheck passed with packets in flight")
	}
	v, ok := verr.(*check.Violation)
	if !ok || v.Rule != check.RuleDeadlock {
		t.Fatalf("FinalCheck returned %T %v, want deadlock violation", verr, verr)
	}
	if !strings.Contains(v.Msg, "wait cycle") {
		t.Errorf("deadlock message %q missing wait-graph info", v.Msg)
	}
	// Drain so the always-on cleanup sees a quiet network, then clear
	// the intentionally collected violation.
	n.Engine.Drain()
}
