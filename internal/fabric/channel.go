package fabric

import (
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/sim"
	"repro/internal/units"
)

// creditMsg returns flow-control credit to the upstream sender.
// queue is the remote ingress queue index for queue-level credits
// (VOQ mechanisms) or -1 for port-level credits.
type creditMsg struct {
	bytes int
	queue int
}

// linkSink receives everything arriving on one link direction. Data and
// tokens address the ingress unit of the receiving port; credits and
// the remaining RECN messages address the co-located egress unit (they
// answer traffic this side previously sent).
type linkSink interface {
	arriveData(p *pkt.Packet)
	arriveCredit(c creditMsg)
	arriveCtl(m recn.CtlMsg)
}

// dataSource is the egress side feeding a channel with data packets.
type dataSource interface {
	// pickData pops the next eligible data packet (consuming credits)
	// or returns nil when nothing can be sent right now.
	pickData() *txOrigin
	// txDone is called when the packet has fully left the port RAM.
	txDone(o *txOrigin)
}

// txOrigin remembers where a departing packet came from so residency
// can be released and controllers informed on completion.
type txOrigin struct {
	p     *pkt.Packet
	q     queueHandle
	saq   *recn.SAQ // nil for normal queues
	bytes int
}

type ctlItem struct {
	size   int
	credit *creditMsg
	recn   *recn.CtlMsg
}

// channel is one direction of a full-duplex pipelined link: a
// serializer shared by data packets and control messages (credits and
// RECN notifications), with control given priority (paper §4.1: flow
// control packets share the link bandwidth with data packets).
type channel struct {
	net     *Network
	src     dataSource
	sink    linkSink
	rate    units.Rate
	latency sim.Time

	busyUntil sim.Time
	ctl       []ctlItem // FIFO, consumed from index ctlHead
	ctlHead   int

	kickPending bool
}

func newChannel(net *Network, src dataSource, sink linkSink) *channel {
	return &channel{
		net:     net,
		src:     src,
		sink:    sink,
		rate:    units.LinkRate,
		latency: net.cfg.LinkLatency,
	}
}

// pushCredit enqueues a credit return.
func (ch *channel) pushCredit(bytes, queue int) {
	ch.ctl = append(ch.ctl, ctlItem{size: ch.net.cfg.CreditSize, credit: &creditMsg{bytes: bytes, queue: queue}})
	ch.kick()
}

// pushCtl enqueues a RECN control message.
func (ch *channel) pushCtl(m recn.CtlMsg) {
	mm := m
	ch.ctl = append(ch.ctl, ctlItem{size: m.Size(), recn: &mm})
	ch.kick()
}

// kick triggers a transmission attempt: synchronously when the link is
// idle (kick is only ever called from event context), or scheduled for
// the moment the link frees (deduplicated).
func (ch *channel) kick() {
	if ch.kickPending {
		return
	}
	e := ch.net.Engine
	if e.Now() >= ch.busyUntil {
		ch.attempt()
		return
	}
	ch.kickPending = true
	e.Schedule(ch.busyUntil, ch.attempt)
}

func (ch *channel) attempt() {
	ch.kickPending = false
	e := ch.net.Engine
	if e.Now() < ch.busyUntil {
		ch.kick()
		return
	}
	// Control messages first: they are tiny and keep flow control and
	// RECN responsive.
	if ch.ctlHead < len(ch.ctl) {
		item := ch.ctl[ch.ctlHead]
		ch.ctl[ch.ctlHead] = ctlItem{}
		ch.ctlHead++
		if ch.ctlHead == len(ch.ctl) {
			ch.ctl = ch.ctl[:0]
			ch.ctlHead = 0
		}
		ser := ch.rate.Serialize(item.size)
		ch.busyUntil = e.Now() + ser
		e.Schedule(ch.busyUntil+ch.latency, func() {
			if item.credit != nil {
				ch.sink.arriveCredit(*item.credit)
			} else {
				ch.sink.arriveCtl(*item.recn)
			}
		})
		ch.kick() // keep draining
		return
	}
	// Then data, as chosen by the egress arbiter.
	o := ch.src.pickData()
	if o == nil {
		return
	}
	ser := ch.rate.Serialize(o.bytes)
	ch.busyUntil = e.Now() + ser
	e.Schedule(ch.busyUntil, func() {
		ch.src.txDone(o)
		ch.kick()
	})
	e.Schedule(ch.busyUntil+ch.latency, func() {
		ch.sink.arriveData(o.p)
	})
}
