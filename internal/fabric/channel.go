package fabric

import (
	"repro/internal/fault"
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// creditMsg returns flow-control credit to the upstream sender.
// queue is the remote ingress queue index for queue-level credits
// (VOQ mechanisms) or -1 for port-level credits.
type creditMsg struct {
	bytes int
	queue int
}

// linkSink receives everything arriving on one link direction. Data and
// tokens address the ingress unit of the receiving port; credits and
// the remaining RECN messages address the co-located egress unit (they
// answer traffic this side previously sent).
type linkSink interface {
	arriveData(p *pkt.Packet)
	arriveCredit(c creditMsg)
	arriveCtl(m recn.CtlMsg)
	// auditResident returns the bytes resident in the receive buffer the
	// sender's credits protect: the whole port RAM for queue -1, one
	// ingress queue otherwise. Hosts consume instantly and return 0.
	auditResident(queue int) int
	// reverseQuiet reports whether the opposite link direction (carrying
	// credits back to the sender) is completely silent.
	reverseQuiet(now sim.Time) bool
}

// dataSource is the egress side feeding a channel with data packets.
type dataSource interface {
	// pickData pops the next eligible data packet (consuming credits)
	// or returns nil when nothing can be sent right now.
	pickData() *txOrigin
	// txDone is called when the packet has fully left the port RAM.
	txDone(o *txOrigin)
}

// txOrigin remembers where a departing packet came from so residency
// can be released and controllers informed on completion. Records are
// pooled on the shard context; ch is bound by the channel that
// transmits the packet. In legacy mode the record returns to the pool
// when the packet reaches the sink (the later of its two scheduled
// events); in windowed mode the arrival travels by mailbox and the
// record is recycled at txDone instead.
type txOrigin struct {
	ch    *channel
	p     *pkt.Packet
	q     queueHandle
	saq   *recn.SAQ // nil for normal queues
	bytes int
}

// ctlItem kinds. The item is a value: both message payloads are held
// inline so queueing control traffic never allocates.
const (
	ctlCredit = iota
	ctlRECN
)

type ctlItem struct {
	size   int
	kind   uint8
	credit creditMsg
	recn   recn.CtlMsg
}

// ctlEv carries a control item from the serializer to its scheduled
// arrival at the sink (legacy mode only; windowed arrivals ride the
// mailbox). Records are pooled on the shard context.
type ctlEv struct {
	ch   *channel
	item ctlItem
}

// channel is one direction of a full-duplex pipelined link: a
// serializer shared by data packets and control messages (credits and
// RECN notifications), with control given priority (paper §4.1: flow
// control packets share the link bandwidth with data packets).
type channel struct {
	net *Network
	// sc is the shard context of the SENDING side (the unit that owns
	// this serializer). The receiving side's context is dstShard.
	sc      *shardCtx
	src     dataSource
	sink    linkSink
	rate    units.Rate
	latency sim.Time
	// loc is the sending port's trace location (set at attach time).
	loc trace.Loc

	// attemptFn is ch.attempt bound once, so kick never allocates a
	// method value on the hot path.
	attemptFn func()

	busyUntil sim.Time
	ctl       []ctlItem // FIFO, consumed from index ctlHead
	ctlHead   int

	kickPending bool

	// down: a scheduled link flap has failed this direction. The channel
	// starts no new transmissions; queued control and upstream data wait
	// (in-flight arrivals are unaffected — they left before the cut).
	down bool
	// inFlight counts scheduled arrivals (data and control) that have
	// not yet reached the sink; the credit auditor requires a fully
	// quiet link before comparing counters. Legacy mode only.
	inFlight int
	// dataInFlight counts just the data packets among them: the
	// invariant checker's packet census needs packets on the wire.
	// Maintained unconditionally (one integer op per packet per hop).
	// Legacy mode only.
	dataInFlight int

	// Windowed-mode state. The split sent/recv counters replace
	// inFlight: the source shard writes sent*, the destination shard
	// writes recv*, and only barrier-context code reads both (distinct
	// words, so the windows never race).
	id       int32 // deterministic wiring-order channel ID
	dstShard int32 // shard owning the sink
	sentData uint64
	sentCtl  uint64
	recvData uint64
	recvCtl  uint64
	// fv, when non-nil, is this channel's private fault view (windowed
	// mode): scripted quotas are shared atomically plan-wide, but the
	// probabilistic stream is per-channel (salted by channel ID) so the
	// verdict sequence is shard-count-invariant.
	fv *fault.View
}

// init builds a channel in place (channels are embedded in their owning
// egress unit; the *channel handle is set at attach time, so a nil
// handle still means "unattached").
func (ch *channel) init(sc *shardCtx, src dataSource, sink linkSink) {
	*ch = channel{
		net:     sc.n,
		sc:      sc,
		src:     src,
		sink:    sink,
		rate:    units.LinkRate,
		latency: sc.n.cfg.LinkLatency,
	}
	ch.attemptFn = ch.attempt
}

// flight returns the messages sent but not yet delivered on this
// direction. Barrier/end-of-run context only in windowed mode.
func (ch *channel) flight() int {
	if ch.sc.sharded {
		return int((ch.sentData + ch.sentCtl) - (ch.recvData + ch.recvCtl))
	}
	return ch.inFlight
}

// dataFlight returns just the data packets in flight (the census term).
func (ch *channel) dataFlight() int {
	if ch.sc.sharded {
		return int(ch.sentData - ch.recvData)
	}
	return ch.dataInFlight
}

// pushCredit enqueues a credit return.
func (ch *channel) pushCredit(bytes, queue int) {
	if ch.sc.rec != nil {
		ch.sc.rec.Record(trace.EvCredit, ch.loc, "", int64(bytes), int64(queue), 0)
	}
	ch.ctl = append(ch.ctl, ctlItem{size: ch.net.cfg.CreditSize, kind: ctlCredit, credit: creditMsg{bytes: bytes, queue: queue}})
	ch.kick()
}

// pushCtl enqueues a RECN control message.
func (ch *channel) pushCtl(m recn.CtlMsg) {
	ch.ctl = append(ch.ctl, ctlItem{size: m.Size(), kind: ctlRECN, recn: m})
	ch.kick()
}

// kick triggers a transmission attempt: synchronously when the link is
// idle (kick is only ever called from event context), or scheduled for
// the moment the link frees (deduplicated).
func (ch *channel) kick() {
	if ch.kickPending {
		return
	}
	e := ch.sc.eng
	if e.Now() >= ch.busyUntil {
		ch.attempt()
		return
	}
	ch.kickPending = true
	e.Schedule(ch.busyUntil, ch.attemptFn)
}

// txDoneEvent fires when a data packet has fully left the sending port
// RAM: residency releases and the serializer is free for the next
// grant. In legacy mode the origin stays live — its arrival event is
// still pending; in windowed mode the arrival rides the mailbox, so
// the record recycles here.
func txDoneEvent(arg any) {
	o := arg.(*txOrigin)
	ch := o.ch
	ch.src.txDone(o)
	if ch.sc.sharded {
		ch.sc.freeOrigin(o)
	}
	ch.kick()
}

// dataArriveEvent fires when a data packet reaches the far end of the
// link (legacy mode). The origin record is recycled before the sink
// runs: the sink may synchronously grant new transmissions that need a
// fresh record.
func dataArriveEvent(arg any) {
	o := arg.(*txOrigin)
	ch, p := o.ch, o.p
	ch.sc.freeOrigin(o)
	ch.inFlight--
	ch.dataInFlight--
	ch.sink.arriveData(p)
}

// ctlVerdict resolves the fate of a control item under fault injection:
// through the channel's private view in windowed mode, through the
// shared plan in legacy mode, no-fault otherwise.
func (ch *channel) ctlVerdict(item ctlItem) (fault.Verdict, bool) {
	if ch.fv != nil {
		return ch.fv.CtlVerdict(item.faultKind()), true
	}
	if plan := ch.net.faults; plan != nil {
		return plan.CtlVerdict(item.faultKind()), true
	}
	return fault.Verdict{}, false
}

// corruptData resolves payload corruption for the next data packet.
func (ch *channel) corruptData() bool {
	if ch.fv != nil {
		return ch.fv.CorruptData()
	}
	if plan := ch.net.faults; plan != nil {
		return plan.CorruptData()
	}
	return false
}

func (ch *channel) attempt() {
	ch.kickPending = false
	if ch.down {
		return // restored by the flap schedule, which kicks again
	}
	e := ch.sc.eng
	if e.Now() < ch.busyUntil {
		ch.kick()
		return
	}
	// Control messages first: they are tiny and keep flow control and
	// RECN responsive.
	if ch.ctlHead < len(ch.ctl) {
		item := ch.ctl[ch.ctlHead]
		ch.ctl[ch.ctlHead] = ctlItem{}
		ch.ctlHead++
		if ch.ctlHead == len(ch.ctl) {
			ch.ctl = ch.ctl[:0]
			ch.ctlHead = 0
		}
		ser := ch.rate.Serialize(item.size)
		ch.busyUntil = e.Now() + ser
		if v, faulty := ch.ctlVerdict(item); faulty {
			switch {
			case v.Drop:
				// The message consumed link time but never arrives.
				if ch.sc.rec != nil {
					ch.sc.rec.Record(trace.EvFault, ch.loc, item.faultKind().String(), 0, trace.FaultDrop, 0)
				}
			case v.Dup:
				if ch.sc.rec != nil {
					ch.sc.rec.Record(trace.EvFault, ch.loc, item.faultKind().String(), 0, trace.FaultDup, 0)
				}
				ch.scheduleCtl(item, ch.busyUntil+ch.latency)
				ch.scheduleCtl(item, ch.busyUntil+ch.latency)
			default:
				if v.Delay > 0 && ch.sc.rec != nil {
					ch.sc.rec.Record(trace.EvFault, ch.loc, item.faultKind().String(), 0, trace.FaultDelay, int64(v.Delay))
				}
				ch.scheduleCtl(item, ch.busyUntil+ch.latency+v.Delay)
			}
		} else {
			ch.scheduleCtl(item, ch.busyUntil+ch.latency)
		}
		ch.kick() // keep draining
		return
	}
	// Then data, as chosen by the egress arbiter.
	o := ch.src.pickData()
	if o == nil {
		return
	}
	o.ch = ch
	if ch.sc.rec != nil {
		ch.sc.rec.RecordPacket(trace.EvSend, ch.loc, o.p.ID, o.p.Size, o.p.Src, o.p.Dst)
	}
	ser := ch.rate.Serialize(o.bytes)
	ch.busyUntil = e.Now() + ser
	if ch.corruptData() {
		o.p.Corrupted = true
		if ch.sc.rec != nil {
			ch.sc.rec.Record(trace.EvFault, ch.loc, "data", 0, trace.FaultCorrupt, 0)
		}
	}
	e.ScheduleArg(ch.busyUntil, txDoneEvent, o)
	if ch.sc.sharded {
		ch.sc.sendData(ch, o.p, ch.busyUntil+ch.latency)
		return
	}
	ch.inFlight++
	ch.dataInFlight++
	e.ScheduleArg(ch.busyUntil+ch.latency, dataArriveEvent, o)
}

// ctlArriveEvent delivers a control message to the sink (legacy mode).
// The event record is recycled before the sink runs (it may
// synchronously queue new control traffic that needs a record).
func ctlArriveEvent(arg any) {
	ev := arg.(*ctlEv)
	ch, item := ev.ch, ev.item
	ch.sc.freeCtlEv(ev)
	ch.inFlight--
	if item.kind == ctlCredit {
		ch.sink.arriveCredit(item.credit)
	} else {
		ch.sink.arriveCtl(item.recn)
	}
}

// scheduleCtl schedules a control message's arrival at the sink,
// tracking it as in flight until delivered. Windowed mode routes the
// arrival through the boundary mailbox instead of a direct event.
func (ch *channel) scheduleCtl(item ctlItem, at sim.Time) {
	if ch.sc.sharded {
		ch.sc.sendCtl(ch, item, at)
		return
	}
	ch.inFlight++
	ev := ch.sc.allocCtlEv()
	ev.ch, ev.item = ch, item
	ch.sc.eng.ScheduleArg(at, ctlArriveEvent, ev)
}

// quiet reports whether this direction is completely silent: nothing
// serializing, nothing queued and nothing in flight.
func (ch *channel) quiet(now sim.Time) bool {
	return now >= ch.busyUntil && ch.ctlHead >= len(ch.ctl) && ch.flight() == 0
}

// faultKind maps a control item to its fault-injection kind.
func (item ctlItem) faultKind() fault.Kind {
	if item.kind == ctlCredit {
		return fault.Credit
	}
	switch item.recn.Kind {
	case recn.MsgToken:
		return fault.Token
	case recn.MsgNotify, recn.MsgHintOn, recn.MsgHintOff:
		// ARN hints share the notification fault class: like RECN
		// notifications they are advisory — a dropped hint only costs
		// routing quality, never correctness (see DESIGN.md §16).
		return fault.Notify
	case recn.MsgXoff:
		return fault.Xoff
	default:
		return fault.Xon
	}
}
