package fabric

// Validation tests for Network.Shard: every precondition the windowed
// runtime depends on must be rejected up front with a clear error, not
// discovered mid-run as a race or a wrong result.

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
)

func newShardTestNet(t *testing.T, mutate func(*Config)) *Network {
	t.Helper()
	topo, err := topology.ForHosts(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = PolicyRECN
	if mutate != nil {
		mutate(&cfg)
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func wantShardErr(t *testing.T, net *Network, k int, frag string) {
	t.Helper()
	if _, err := net.Shard(k); err == nil || !strings.Contains(err.Error(), frag) {
		t.Fatalf("Shard(%d): want error containing %q, got %v", k, frag, err)
	}
}

func TestShardValidation(t *testing.T) {
	t.Run("count", func(t *testing.T) {
		wantShardErr(t, newShardTestNet(t, nil), 0, "shard count")
		wantShardErr(t, newShardTestNet(t, nil), -3, "shard count")
	})
	t.Run("twice", func(t *testing.T) {
		net := newShardTestNet(t, nil)
		if _, err := net.Shard(2); err != nil {
			t.Fatal(err)
		}
		wantShardErr(t, net, 2, "already sharded")
		net.FinishWindowed()
	})
	t.Run("zero link latency", func(t *testing.T) {
		net := newShardTestNet(t, func(cfg *Config) { cfg.LinkLatency = 0 })
		wantShardErr(t, net, 2, "link latency")
	})
	t.Run("after start", func(t *testing.T) {
		net := newShardTestNet(t, nil)
		if err := net.InjectMessage(0, 1, 64); err != nil {
			t.Fatal(err)
		}
		wantShardErr(t, net, 2, "before the simulation starts")
	})
	t.Run("scripted drops", func(t *testing.T) {
		plan := fault.NewPlan(1).Drop(fault.Token, 2)
		net := newShardTestNet(t, func(cfg *Config) { cfg.Faults = plan })
		wantShardErr(t, net, 2, "scripted drops")
	})
}

// TestShardClampsToSwitchCount: asking for more shards than switches
// degrades to one shard per switch (and reports the effective count),
// so callers can pass GOMAXPROCS blindly.
func TestShardClampsToSwitchCount(t *testing.T) {
	net := newShardTestNet(t, nil)
	nSw := net.Topology().NumSwitches()
	got, err := net.Shard(10 * nSw)
	if err != nil {
		t.Fatal(err)
	}
	if got != nSw {
		t.Fatalf("Shard clamped to %d, want switch count %d", got, nSw)
	}
	if net.ShardCount() != nSw {
		t.Fatalf("ShardCount %d != %d", net.ShardCount(), nSw)
	}
	net.FinishWindowed()
}
