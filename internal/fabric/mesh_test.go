package fabric

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func newMeshNet(t testing.TB, cols, rows int, policy Policy) *Network {
	t.Helper()
	m, err := topology.NewMesh(cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(m)
	cfg.Policy = policy
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// RECN is topology-agnostic (paper §3): the same fabric runs on a 2D
// mesh with dimension-order routing.
func TestMeshDeliveryAllPolicies(t *testing.T) {
	for _, policy := range Policies {
		t.Run(policy.String(), func(t *testing.T) {
			n := newMeshNet(t, 4, 4, policy)
			rng := rand.New(rand.NewSource(3))
			for h := 0; h < 16; h++ {
				h := h
				var gen func()
				gen = func() {
					if n.Engine.Now() > 20*sim.Microsecond {
						return
					}
					dst := rng.Intn(16)
					if dst == h {
						dst = (dst + 1) % 16
					}
					if err := n.InjectMessage(h, dst, 64); err != nil {
						t.Fatal(err)
					}
					n.Engine.After(sim.Time(128+rng.Intn(256))*sim.Nanosecond, gen)
				}
				n.Engine.Schedule(0, gen)
			}
			n.Engine.Drain()
			if n.PendingPackets() != 0 {
				t.Fatalf("%d packets stuck", n.PendingPackets())
			}
			if policy.PreservesOrder() && n.OrderViolations != 0 {
				t.Fatalf("order violations: %d", n.OrderViolations)
			}
			if err := n.CheckQuiesced(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A mesh hotspot forms a congestion tree along the dimension-order
// paths; RECN allocates SAQs, isolates it, and collapses cleanly.
func TestMeshHotspotRECN(t *testing.T) {
	n := newMeshNet(t, 6, 6, PolicyRECN)
	hot := 21 // (3,3): interior switch
	for _, src := range []int{0, 5, 30, 35, 2, 12} {
		src := src
		var gen func()
		gen = func() {
			if n.Engine.Now() > 50*sim.Microsecond {
				return
			}
			if err := n.InjectMessage(src, hot, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	sawSAQs := false
	var poll func()
	poll = func() {
		if total, _, _ := n.SAQUsage(); total > 0 {
			sawSAQs = true
			return
		}
		if n.Engine.Now() < 50*sim.Microsecond {
			n.Engine.After(sim.Microsecond, poll)
		}
	}
	n.Engine.Schedule(0, poll)
	n.Engine.Drain()
	if !sawSAQs {
		t.Fatal("no SAQs allocated under a mesh hotspot")
	}
	if n.OrderViolations != 0 {
		t.Fatalf("order violations: %d", n.OrderViolations)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// Background traffic on a mesh keeps flowing while a hotspot is active
// under RECN; under 1Q it suffers visibly more.
func TestMeshHOLComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison run")
	}
	run := func(policy Policy) uint64 {
		n := newMeshNet(t, 6, 6, policy)
		// Hotspot into (3,3) from the corners.
		for _, src := range []int{0, 5, 30, 35} {
			src := src
			var gen func()
			gen = func() {
				if n.Engine.Now() > 60*sim.Microsecond {
					return
				}
				if err := n.InjectMessage(src, 21, 64); err != nil {
					t.Fatal(err)
				}
				n.Engine.After(64*sim.Nanosecond, gen)
			}
			n.Engine.Schedule(0, gen)
		}
		// Background flows crossing the same rows/columns but not the
		// hotspot.
		var delivered uint64
		for _, pair := range [][2]int{{6, 11}, {24, 29}, {1, 31}, {4, 34}, {7, 10}, {25, 28}} {
			src, dst := pair[0], pair[1]
			var gen func()
			gen = func() {
				if n.Engine.Now() > 60*sim.Microsecond {
					return
				}
				if err := n.InjectMessage(src, dst, 64); err != nil {
					t.Fatal(err)
				}
				n.Engine.After(64*sim.Nanosecond, gen)
			}
			n.Engine.Schedule(0, gen)
		}
		n.Engine.Run(60 * sim.Microsecond)
		for _, pair := range [][2]int{{6, 11}, {24, 29}, {1, 31}, {4, 34}, {7, 10}, {25, 28}} {
			_ = pair
		}
		delivered = n.DeliveredBytes
		n.Engine.Drain()
		if err := n.CheckQuiesced(); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		return delivered
	}
	recn := run(PolicyRECN)
	oneQ := run(Policy1Q)
	if recn <= oneQ {
		t.Logf("note: RECN %d vs 1Q %d delivered bytes (mesh, mixed load)", recn, oneQ)
	}
}
