package fabric

import (
	"fmt"
	"testing"

	"repro/internal/mempool"
	"repro/internal/recn"
	"repro/internal/sim"
)

// saqAlias keeps the dump callbacks terse.
type saqAlias = recn.SAQ

// dumpStuck prints where packets are stranded after a drain — a debug
// aid for flow-control/RECN stalls.
func dumpStuck(t *testing.T, n *Network) {
	t.Helper()
	for _, sw := range n.switches {
		for p, in := range sw.in {
			if in == nil {
				continue
			}
			if in.pool.Used() > 0 {
				desc := fmt.Sprintf("sw %d in[%d]: pool used %d;", sw.id, p, in.pool.Used())
				in.qs.forEach(func(qi int, q *mempool.Queue) {
					if q.Entries() > 0 || q.ResidentBytes() > 0 {
						desc += fmt.Sprintf(" q%d{pkts %d, ent %d, res %d}", qi, q.Packets(), q.Entries(), q.ResidentBytes())
					}
				})
				if in.rc != nil {
					in.rc.ForEachSAQ(func(s *saqAlias) {})
				}
				t.Log(desc)
			}
			if in.rc != nil {
				in.rc.ForEachSAQ(func(s *saqAlias) {
					t.Logf("sw %d in[%d] SAQ %v: pkts %d res %d blocked=%v leaf=%v",
						sw.id, p, s.Path, s.Q.Packets(), s.Q.ResidentBytes(), s.Blocked(), s.Leaf())
				})
			}
		}
		for p, out := range sw.out {
			if out == nil {
				continue
			}
			if out.pool.Used() > 0 {
				normal := 0
				if q := out.qs.at(0); q != nil {
					normal = q.Packets()
				}
				t.Logf("sw %d out[%d]: pool used %d, normal pkts %d, credits %d/%d",
					sw.id, p, out.pool.Used(), normal, out.portCredits, out.initPort)
			}
			if out.rc != nil {
				if out.rc.Root() {
					t.Logf("sw %d out[%d]: ROOT", sw.id, p)
				}
				out.rc.ForEachSAQ(func(s *saqAlias) {
					t.Logf("sw %d out[%d] SAQ %v: pkts %d res %d blocked=%v leaf=%v",
						sw.id, p, s.Path, s.Q.Packets(), s.Q.ResidentBytes(), s.Blocked(), s.Leaf())
				})
			}
		}
	}
	for h, nic := range n.nics {
		if nic.backlog > 0 || nic.inj.pool.Used() > 0 {
			t.Logf("NIC %d: backlog %d, inj pool %d, credits %d/%d",
				h, nic.backlog, nic.inj.pool.Used(), nic.inj.portCredits, nic.inj.initPort)
			if nic.inj.rc != nil {
				nic.inj.rc.ForEachSAQ(func(s *saqAlias) {
					t.Logf("NIC %d SAQ %v: pkts %d blocked=%v leaf=%v", h, s.Path, s.Q.Packets(), s.Blocked(), s.Leaf())
				})
			}
		}
	}
}

func TestDebugHotspotStall(t *testing.T) {
	n := newNet(t, 64, PolicyRECN)
	hot := 32
	for i := 0; i < 16; i++ {
		src := 48 + i
		var gen func()
		gen = func() {
			if n.Engine.Now() > 60*sim.Microsecond {
				return
			}
			if err := n.InjectMessage(src, hot, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	n.Engine.Drain()
	if n.PendingPackets() != 0 {
		t.Logf("pending: %d (injected %d, delivered %d)", n.PendingPackets(), n.InjectedPackets, n.DeliveredPackets)
		dumpStuck(t, n)
		t.Fail()
	}
}
