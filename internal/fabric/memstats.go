package fabric

import (
	"repro/internal/stats"
	"repro/internal/topology"
)

// Modeled per-record sizes for the control-state accounting (bytes).
// These mirror the Go structs backing each record so StateBytes tracks
// the real footprint, but they are fixed constants — the figure output
// never depends on platform, allocator or shard count.
const (
	memBytesQueue      = 80 // mempool.Queue descriptor
	memBytesRingSlot   = 40 // mempool.Entry ring slot
	memBytesPtrSlot    = 8  // queue pointer / page-table pointer
	memBytesCreditSlot = 8  // credit counter (and CNP clock) slot
	memBytesActiveSlot = 8  // active-list membership/stack slot
	memBytesDestSlot   = 72 // NIC admittance destination record
	memBytesCAMLine    = 56 // RECN CAM line (path + tag bookkeeping)
	memBytesSAQSlot    = 8  // RECN SAQ table pointer slot
)

type memAcc struct {
	stats.MemReport
}

func (r *memAcc) addQueueSet(qs *queueSet) {
	q, rs, ps := qs.memCount()
	r.Queues += q
	r.RingSlots += rs
	r.PtrSlots += ps
}

func (r *memAcc) addRC(materialized bool, maxSAQs int) {
	if materialized {
		r.CAMLines += maxSAQs
		r.SAQSlots += maxSAQs
	}
}

func (r *memAcc) finish() stats.MemReport {
	r.StateBytes = int64(r.Queues)*memBytesQueue +
		int64(r.RingSlots)*memBytesRingSlot +
		int64(r.PtrSlots)*memBytesPtrSlot +
		int64(r.CreditSlots)*memBytesCreditSlot +
		int64(r.ActiveSlots)*memBytesActiveSlot +
		int64(r.DestSlots)*memBytesDestSlot +
		int64(r.CAMLines)*memBytesCAMLine +
		int64(r.SAQSlots)*memBytesSAQSlot
	return r.MemReport
}

// MemStats walks every port unit and reports the control state the run
// has materialized so far (plus the data-RAM residency high-water
// marks). Under lazy materialization — the default — untouched
// destinations, credit pages and never-congested RECN controllers
// contribute nothing, so the same topology under the same policy can
// answer very differently depending on the traffic; the scaling figure
// is exactly that comparison. Deterministic: counts derive from which
// state was touched, which is identical across shard counts.
func (n *Network) MemStats() stats.MemReport {
	var r memAcc
	maxSAQs := n.cfg.RECN.MaxSAQs
	for _, sw := range n.switches {
		for _, in := range sw.in {
			if in == nil {
				continue
			}
			r.Ports++
			r.addQueueSet(&in.qs)
			r.ActiveSlots += in.active.memCount()
			if in.rc != nil {
				r.addRC(in.rc.Materialized(), maxSAQs)
			}
			r.PoolPeakBytes += int64(in.pool.Peak())
		}
		for _, out := range sw.out {
			if out == nil {
				continue
			}
			r.Ports++
			r.addQueueSet(&out.qs)
			r.ActiveSlots += out.active.memCount()
			r.CreditSlots += out.queueCredits.memCount()
			if out.rc != nil {
				r.addRC(out.rc.Materialized(), maxSAQs)
			}
			r.PoolPeakBytes += int64(out.pool.Peak())
		}
	}
	for _, nic := range n.nics {
		r.Ports++
		r.addQueueSet(&nic.inj.qs)
		r.ActiveSlots += nic.inj.active.memCount()
		r.CreditSlots += nic.inj.queueCredits.memCount()
		if nic.inj.rc != nil {
			r.addRC(nic.inj.rc.Materialized(), maxSAQs)
		}
		r.PoolPeakBytes += int64(nic.inj.pool.Peak())
		r.DestSlots += nic.dests.memCount()
		r.ActiveSlots += nic.active.memCount()
		if nic.thr != nil {
			r.CreditSlots += len(nic.thr.lastCNPAt)
		}
	}
	return r.finish()
}

// EagerMemModel computes the construction-time control-state footprint
// the same configuration would have with EagerState set: every queue
// descriptor, credit counter, destination record and RECN controller
// fully preallocated (ring slots still grow on demand in both modes, so
// they are zero here). This is the denominator of the scaling figure's
// "lazy vs eager" ratio — analytic, so the 4k-host eager fabric never
// has to be built to be compared against.
func EagerMemModel(cfg Config) stats.MemReport {
	var r memAcc
	topo := cfg.Topo
	nSw := topo.NumSwitches()
	ports := topo.PortsPerSwitch()
	hosts := topo.NumHosts()
	inN, _ := ingressQueuePlan(cfg)
	outN, _ := egressQueuePlan(cfg)
	creditN := 0
	switch cfg.Policy {
	case PolicyVOQsw:
		creditN = ports
	case PolicyVOQnet:
		creditN = hosts
	}
	addUnit := func(nq int) {
		r.Ports++
		r.Queues += nq
		r.PtrSlots += nq
		r.ActiveSlots += nq
		if cfg.Policy == PolicyRECN {
			r.addRC(true, cfg.RECN.MaxSAQs)
		}
	}
	for sw := 0; sw < nSw; sw++ {
		for p := 0; p < ports; p++ {
			end := topo.Peer(sw, p)
			if end.Kind == topology.KindNone {
				continue
			}
			addUnit(inN)
			addUnit(outN)
			// Queue-level credits exist toward switch peers only (host
			// links use port-level credits).
			if end.Kind == topology.KindSwitch {
				r.CreditSlots += creditN
			}
		}
	}
	for h := 0; h < hosts; h++ {
		addUnit(outN) // the NIC injection port
		r.CreditSlots += creditN
		r.DestSlots += hosts
		r.ActiveSlots += hosts
		if cfg.Policy == PolicyThrottle {
			r.CreditSlots += hosts
		}
	}
	return r.finish()
}
