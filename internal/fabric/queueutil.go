package fabric

import (
	"repro/internal/mempool"
	"repro/internal/pkt"
)

// queueHandle pairs a queue with its index in the owning unit's policy
// queue array (-1 for SAQs, which are owned by the RECN controllers).
type queueHandle struct {
	q   *mempool.Queue
	idx int
}

// activeList tracks which of a unit's policy queues are non-empty so
// arbiters do not scan hundreds of empty VOQnet queues. Membership is
// O(1) both ways; iteration order is insertion order, with round-robin
// fairness coming from the caller's rotating cursor.
type activeList struct {
	items []int
	pos   []int // index+1 into items, 0 = absent
}

func newActiveList(n int) *activeList {
	return &activeList{pos: make([]int, n)}
}

func (a *activeList) add(idx int) {
	if a.pos[idx] != 0 {
		return
	}
	a.items = append(a.items, idx)
	a.pos[idx] = len(a.items)
}

func (a *activeList) remove(idx int) {
	p := a.pos[idx]
	if p == 0 {
		return
	}
	last := a.items[len(a.items)-1]
	a.items[p-1] = last
	a.pos[last] = p
	a.items = a.items[:len(a.items)-1]
	a.pos[idx] = 0
}

func (a *activeList) len() int { return len(a.items) }

func (a *activeList) at(i int) int { return a.items[i] }

// peelHead returns the head packet of a queue, first popping and
// resolving any in-order markers that reached the head (paper §3.8).
func peelHead(q *mempool.Queue, resolve func(uid int)) (*pkt.Packet, bool) {
	for {
		e, ok := q.Head()
		if !ok {
			return nil, false
		}
		if e.IsMarker() {
			q.Pop()
			if resolve != nil {
				resolve(e.MarkerSAQ())
			}
			continue
		}
		return e.Data.(*pkt.Packet), true
	}
}
