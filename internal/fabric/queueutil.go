package fabric

import (
	"repro/internal/mempool"
	"repro/internal/pkt"
)

// queueHandle pairs a queue with its index in the owning unit's policy
// queue array (-1 for SAQs, which are owned by the RECN controllers).
type queueHandle struct {
	q   *mempool.Queue
	idx int
}

// activeList tracks which of a unit's policy queues are non-empty so
// arbiters do not scan hundreds of empty VOQnet queues. Membership is
// O(1) both ways; iteration order is insertion order, with round-robin
// fairness coming from the caller's rotating cursor. The membership
// slots (index+1 into items, 0 = absent) are a dense array for small
// index spaces and demand-paged above lazyPosThreshold, so a 4k-host
// unit pays only for the pages its traffic touches.
type activeList struct {
	items []int
	n     int
	pos   []int   // dense slots
	pages [][]int // paged slots (nil until first touch)
	lazy  bool
}

func (a *activeList) init(n int, lazy bool) {
	*a = activeList{n: n, lazy: lazy && n >= lazyPosThreshold}
	if !a.lazy {
		a.pos = make([]int, n)
	}
}

func (a *activeList) posOf(idx int) int {
	if !a.lazy {
		return a.pos[idx]
	}
	if a.pages == nil {
		return 0
	}
	pg := a.pages[idx>>statePageBits]
	if pg == nil {
		return 0
	}
	return pg[idx&(statePageLen-1)]
}

func (a *activeList) setPos(idx, v int) {
	if !a.lazy {
		a.pos[idx] = v
		return
	}
	if a.pages == nil {
		a.pages = make([][]int, (a.n+statePageLen-1)>>statePageBits)
	}
	pi := idx >> statePageBits
	pg := a.pages[pi]
	if pg == nil {
		pg = make([]int, statePageLen)
		a.pages[pi] = pg
	}
	pg[idx&(statePageLen-1)] = v
}

func (a *activeList) add(idx int) {
	if a.posOf(idx) != 0 {
		return
	}
	a.items = append(a.items, idx)
	a.setPos(idx, len(a.items))
}

func (a *activeList) remove(idx int) {
	p := a.posOf(idx)
	if p == 0 {
		return
	}
	last := a.items[len(a.items)-1]
	a.items[p-1] = last
	a.setPos(last, p)
	a.items = a.items[:len(a.items)-1]
	a.setPos(idx, 0)
}

func (a *activeList) len() int { return len(a.items) }

// memCount reports allocated membership slots (dense array or
// materialized pages) plus the item stack's capacity, for the memory
// model.
func (a *activeList) memCount() (slots int) {
	slots = cap(a.items)
	if !a.lazy {
		return slots + len(a.pos)
	}
	slots += len(a.pages)
	for _, pg := range a.pages {
		if pg != nil {
			slots += statePageLen
		}
	}
	return
}

func (a *activeList) at(i int) int { return a.items[i] }

// peelHead returns the head packet of a queue, first popping and
// resolving any in-order markers that reached the head (paper §3.8).
func peelHead(q *mempool.Queue, resolve func(uid int)) (*pkt.Packet, bool) {
	for {
		e, ok := q.Head()
		if !ok {
			return nil, false
		}
		if e.IsMarker() {
			q.Pop()
			if resolve != nil {
				resolve(e.MarkerSAQ())
			}
			continue
		}
		return e.Data.(*pkt.Packet), true
	}
}
