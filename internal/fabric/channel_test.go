package fabric

import (
	"testing"

	"repro/internal/mempool"
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/sim"
	"repro/internal/topology"
)

// newBareQueue returns a fresh pool-backed queue for channel tests.
func newBareQueue() *mempool.Queue {
	return mempool.NewQueue(mempool.NewPool(1<<20), 0)
}

// fakeSource feeds a channel a fixed packet list.
type fakeSource struct {
	queue []*txOrigin
	done  []*txOrigin
}

func (f *fakeSource) pickData() *txOrigin {
	if len(f.queue) == 0 {
		return nil
	}
	o := f.queue[0]
	f.queue = f.queue[1:]
	return o
}

func (f *fakeSource) txDone(o *txOrigin) { f.done = append(f.done, o) }

// fakeSink records arrivals with timestamps.
type fakeSink struct {
	eng     *sim.Engine
	data    []sim.Time
	credits []sim.Time
	ctl     []recn.CtlMsg
	ctlAt   []sim.Time
}

func (f *fakeSink) arriveData(p *pkt.Packet) { f.data = append(f.data, f.eng.Now()) }
func (f *fakeSink) arriveCredit(c creditMsg) { f.credits = append(f.credits, f.eng.Now()) }
func (f *fakeSink) arriveCtl(m recn.CtlMsg) {
	f.ctl = append(f.ctl, m)
	f.ctlAt = append(f.ctlAt, f.eng.Now())
}
func (f *fakeSink) auditResident(queue int) int    { return 0 }
func (f *fakeSink) reverseQuiet(now sim.Time) bool { return true }

func newTestChannel(t *testing.T) (*Network, *fakeSource, *fakeSink, *channel) {
	t.Helper()
	topo, _ := topology.ForHosts(64)
	cfg := DefaultConfig(topo)
	net := &Network{Engine: sim.NewEngine(), cfg: cfg, topo: topo}
	net.base = &shardCtx{n: net, id: -1, eng: net.Engine, cnt: &net.netCounters, lastSeq: make(map[uint64]uint64)}
	src := &fakeSource{}
	sink := &fakeSink{eng: net.Engine}
	ch := &channel{}
	ch.init(net.base, src, sink)
	return net, src, sink, ch
}

func TestChannelDataTiming(t *testing.T) {
	net, src, sink, ch := newTestChannel(t)
	p := &pkt.Packet{ID: 1, Size: 64, Route: pkt.Route{0}}
	mq := newTestQueueWithPacket(p)
	src.queue = []*txOrigin{{p: p, q: mq, bytes: 64}}
	ch.kick()
	net.Engine.Drain()
	// Serialization 64 ns at 8 Gbps + 20 ns fly time.
	if len(sink.data) != 1 || sink.data[0] != 84*sim.Nanosecond {
		t.Fatalf("data arrival at %v, want 84 ns", sink.data)
	}
	// txDone fires at the end of serialization (64 ns).
	if len(src.done) != 1 {
		t.Fatal("txDone not called")
	}
}

// newTestQueueWithPacket builds a queue handle holding one popped
// packet (resident) so txDone's ReleaseResident is valid.
func newTestQueueWithPacket(p *pkt.Packet) queueHandle {
	q := queueHandle{q: newBareQueue(), idx: 0}
	q.q.Push(p.Size, p)
	q.q.Pop()
	return q
}

func TestChannelControlPriority(t *testing.T) {
	net, src, sink, ch := newTestChannel(t)
	p := &pkt.Packet{ID: 1, Size: 512, Route: pkt.Route{0}}
	src.queue = []*txOrigin{{p: p, q: newTestQueueWithPacket(p), bytes: 512}}
	ch.pushCredit(64, -1)
	ch.pushCtl(recn.CtlMsg{Kind: recn.MsgNotify, Path: pkt.PathOf(4)})
	ch.kick()
	net.Engine.Drain()
	// Control goes first: credit (8 B → 8 ns), then notification
	// (16 B → 16 ns), then the data packet.
	if len(sink.credits) != 1 || sink.credits[0] != 28*sim.Nanosecond {
		t.Fatalf("credit at %v, want 28 ns", sink.credits)
	}
	if len(sink.ctl) != 1 || sink.ctlAt[0] != 44*sim.Nanosecond {
		t.Fatalf("ctl at %v, want 44 ns", sink.ctlAt)
	}
	if len(sink.data) != 1 || sink.data[0] != (8+16+512+20)*sim.Nanosecond {
		t.Fatalf("data at %v, want 556 ns", sink.data)
	}
}

func TestChannelSerializesBackToBack(t *testing.T) {
	net, src, sink, ch := newTestChannel(t)
	for i := 0; i < 3; i++ {
		p := &pkt.Packet{ID: uint64(i), Size: 64, Route: pkt.Route{0}}
		src.queue = append(src.queue, &txOrigin{p: p, q: newTestQueueWithPacket(p), bytes: 64})
	}
	ch.kick()
	net.Engine.Drain()
	if len(sink.data) != 3 {
		t.Fatalf("delivered %d", len(sink.data))
	}
	// Arrivals 64 ns apart (pipelined link at full rate).
	for i := 1; i < 3; i++ {
		if sink.data[i]-sink.data[i-1] != 64*sim.Nanosecond {
			t.Fatalf("arrival gap %v", sink.data[i]-sink.data[i-1])
		}
	}
}

func TestActiveList(t *testing.T) {
	var a activeList
	a.init(8, false)
	a.add(3)
	a.add(5)
	a.add(3) // duplicate is a no-op
	if a.len() != 2 {
		t.Fatalf("len %d", a.len())
	}
	a.remove(3)
	if a.len() != 1 || a.at(0) != 5 {
		t.Fatalf("after remove: %v", a.items)
	}
	a.remove(3) // absent is a no-op
	a.add(0)
	a.add(7)
	seen := map[int]bool{}
	for i := 0; i < a.len(); i++ {
		seen[a.at(i)] = true
	}
	if !seen[5] || !seen[0] || !seen[7] || len(seen) != 3 {
		t.Fatalf("membership: %v", a.items)
	}
}

func TestPeelHead(t *testing.T) {
	q := newBareQueue()
	var resolved []int
	resolve := func(uid int) { resolved = append(resolved, uid) }
	q.PushMarker(7)
	q.PushMarker(8)
	p := &pkt.Packet{ID: 1, Size: 64}
	q.Push(64, p)
	got, ok := peelHead(q, resolve)
	if !ok || got != p {
		t.Fatalf("peelHead = %v, %v", got, ok)
	}
	if len(resolved) != 2 || resolved[0] != 7 || resolved[1] != 8 {
		t.Fatalf("resolved: %v", resolved)
	}
	q.Pop()
	q.ReleaseResident(64)
	q.PushMarker(9)
	if _, ok := peelHead(q, resolve); ok {
		t.Fatal("peelHead found a packet in a marker-only queue")
	}
	if len(resolved) != 3 {
		t.Fatalf("trailing marker not resolved: %v", resolved)
	}
}
