package fabric

import (
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file defines the per-shard execution context. The fabric runs in
// one of two modes:
//
//   - Legacy (the default): one engine drives the whole network. Every
//     unit's shard context is Network.base, which aliases the global
//     engine, recorder, counters and pools — the call sequences (and
//     therefore the dispatch-order goldens) are bit-identical to the
//     pre-shard code.
//
//   - Windowed (after Network.Shard): the switches are partitioned into
//     contiguous groups, each with its own event engine, free-lists,
//     counters and flight-recorder ring. Shards run concurrently inside
//     one link-latency window and exchange all channel traffic through
//     deterministic boundary mailboxes (see window.go).
//
// Every switch (with its ingress/egress units), every NIC (with its
// injection port) and every channel holds an sc pointer to the context
// that owns it. Unit code never touches another shard's context: all
// cross-unit interaction rides on channels, and in windowed mode those
// are mailboxed — including same-shard links, so the delivered order at
// any port is decided by shard-count-invariant keys only.

// netCounters is the aggregate packet accounting. The Network embeds it
// (the public counter fields); each windowed shard keeps a private copy
// that the barrier sums into the Network's.
type netCounters struct {
	InjectedPackets  uint64
	InjectedBytes    uint64
	DeliveredPackets uint64
	DeliveredBytes   uint64
	OrderViolations  uint64
	// DroppedMessages counts messages discarded at hosts because the
	// admittance queue for their destination was full (AdmitCap).
	// These never enter the network — the fabric itself is lossless.
	DroppedMessages uint64
}

func (c *netCounters) add(o *netCounters) {
	c.InjectedPackets += o.InjectedPackets
	c.InjectedBytes += o.InjectedBytes
	c.DeliveredPackets += o.DeliveredPackets
	c.DeliveredBytes += o.DeliveredBytes
	c.OrderViolations += o.OrderViolations
	c.DroppedMessages += o.DroppedMessages
}

// shardCtx is the execution context of one shard (or, in legacy mode,
// of the whole network). It owns everything the hot path mutates:
// engine, free-lists, packet pool, counters, sequence state and the
// flight-recorder ring — so two shards never write the same word
// between barriers.
type shardCtx struct {
	n   *Network
	id  int // -1 for the legacy/base context
	eng *sim.Engine
	// rec is where this shard's units record trace events: the global
	// recorder in legacy mode, a private ring in windowed mode (merged
	// deterministically at end of run).
	rec *trace.Recorder
	// cnt is where injection/delivery accounting goes: &Network.netCounters
	// in legacy mode, &localCnt in windowed mode.
	cnt *netCounters
	// report receives delivery-side fault accounting (CorruptedDelivered)
	// and the per-channel fault-view counters in windowed mode.
	report *stats.FaultReport

	// Free-lists (see pools.go) and the packet pool. In windowed mode
	// packets allocate on the source NIC's shard and free on the
	// destination's — the pools exchange fungible records, never live
	// state.
	pktPool pkt.Pool
	origins []*txOrigin
	ctlEvs  []*ctlEv
	xfers   []*xferRec
	mails   []*mailRec

	pktSeq    uint64
	lastSeq   map[uint64]uint64 // (src,dst,class) → last delivered seq
	liveXfers int
	// onDeliver is the per-shard delivery observer in windowed mode
	// (legacy mode reads Network.OnDeliver at call time instead, so
	// observers installed after New keep working).
	onDeliver func(*pkt.Packet)

	sharded bool
	// outbox accumulates everything sent across (or within) shards
	// during a window: channel payload/control arrivals and remote
	// traffic-stream injections. Drained at barriers in deterministic
	// order (see window.go).
	outbox []mailMsg

	// Periodic-driver arm requests recorded during a window and
	// collected by the coordinator at the next barrier (0 = none).
	// Taking the minimum over shards at the barrier reproduces the
	// legacy "arm at the first qualifying injection" semantics
	// independently of the shard count.
	sweepDue   sim.Time
	wdDue      sim.Time
	samplerDue sim.Time
	checkDue   sim.Time
}

// deliver is called by a NIC when a packet fully arrives at its host.
// The packet returns to the pool when deliver returns: OnDeliver
// observers must copy what they need, never retain p.
func (sc *shardCtx) deliver(p *pkt.Packet) {
	sc.cnt.DeliveredPackets++
	sc.cnt.DeliveredBytes += uint64(p.Size)
	if p.Corrupted {
		// Corrupted is only ever set by a bound fault plan, so the
		// report exists.
		sc.report.CorruptedDelivered++
	}
	key := uint64(p.Src)<<40 | uint64(uint32(p.Dst))<<8 | uint64(p.Class)
	if last, ok := sc.lastSeq[key]; ok && p.Seq <= last {
		sc.cnt.OrderViolations++
	} else {
		sc.lastSeq[key] = p.Seq
	}
	if sc.sharded {
		if sc.onDeliver != nil {
			sc.onDeliver(p)
		}
	} else if sc.n.OnDeliver != nil {
		sc.n.OnDeliver(p)
	}
	sc.pktPool.Put(p)
}

// scheduleSweep arms the idle-SAQ sweep. Legacy mode schedules the
// coordinator event directly; windowed mode records the due time so the
// barrier can arm the (global, coordinator-run) sweep deterministically.
func (sc *shardCtx) scheduleSweep() {
	if !sc.sharded {
		sc.n.scheduleSweep()
		return
	}
	n := sc.n
	if n.cfg.Policy != PolicyRECN || n.sweepPending || sc.sweepDue != 0 {
		return
	}
	sc.sweepDue = sc.eng.Now() + idleSweepPeriod
}

// armSharded records arm requests for the coordinator-run periodic
// drivers (watchdog, metrics sampler, invariant checker) from a shard's
// injection path. The pending flags are frozen during a window (only
// the coordinator writes them, only at barriers), so reading them here
// is race-free and shard-count-invariant.
func (sc *shardCtx) armSharded() {
	n := sc.n
	now := sc.eng.Now()
	if n.recovery.Enabled && !n.watchdog.pending && sc.wdDue == 0 {
		sc.wdDue = now + n.recovery.Period
	}
	if n.rec != nil && len(n.probes) > 0 && !n.samplerPending && sc.samplerDue == 0 {
		sc.samplerDue = now + n.rec.MetricsBin()
	}
	if n.check != nil && !n.checkState.pending && !n.checkState.dead && sc.checkDue == 0 {
		sc.checkDue = now + n.check.Period()
	}
}
