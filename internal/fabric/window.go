package fabric

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file implements the windowed (sharded) execution mode: the
// switches are partitioned into contiguous groups, each driven by its
// own event engine on its own goroutine, synchronized by conservative
// time windows. The link pipeline latency L is the lookahead: a message
// transmitted at time u arrives at u + serialization + L > u + L, so as
// long as no shard runs more than L past the earliest pending event,
// every cross-shard (and, for uniformity, same-shard) channel arrival
// can be delivered through a boundary mailbox at a barrier that
// strictly precedes its due time.
//
// Determinism and shard-count invariance rest on three rules:
//
//  1. Every channel arrival and every remote injection is mailboxed —
//     including same-shard ones — and carries a composite engine
//     sequence built ONLY from shard-count-invariant keys: the send
//     instant u, a priority bit (channel traffic before remote
//     injections), and a 17-bit key (wiring-order channel ID, or the
//     calling host plus its within-instant call rank). Two mailbox
//     events can never share (arrival, sequence): one channel's
//     serializer is sequential (distinct arrivals), distinct channels
//     differ in key, and one host's remote calls differ in rank.
//
//  2. Locally scheduled events carry (u, per-instant counter)
//     sequences and sort before same-(time, u) mailbox events. The
//     counter preserves the relative order of one unit's own calls;
//     events of different units at the same instant only interact
//     through the mailboxes, whose order rule (1) fixes.
//
//  3. Everything global — watchdog, idle sweep, metrics sampler,
//     invariant checker, link flaps — runs on the coordinator engine
//     at barriers, after all shards have reached the horizon, with
//     the worker goroutines parked. Shards request periodic drivers
//     by recording due times the barrier folds with min().
//
// Together these make the windowed schedule a fixed total order that
// does not depend on how many shards execute it: `-shards 1..N`
// produce bit-identical results (the sweep engine's `-j` guarantee).
// The windowed order intentionally differs from the legacy
// single-engine order (arrivals ride mailboxes instead of inline
// events), so legacy goldens are preserved by the legacy path, and
// windowed goldens are compared across shard counts.

// Composite mailbox index layout (the low 27 bits of the engine
// sequence): priority bit, 17-bit channel/host key, 9-bit
// within-instant rank. 17 key bits cover the channel count of a
// 4k-host fat tree (every switch port plus every NIC injection port
// gets a wiring-order ID).
const (
	mailRankBits = 9
	mailKeyBits  = 17
	mailPriShift = mailKeyBits + mailRankBits
	maxMailKeys  = 1 << mailKeyBits
	maxMailRank  = 1 << mailRankBits
)

type mailKind uint8

const (
	mailData mailKind = iota
	mailCtl
	mailFn
)

// mailMsg is one boundary-mailbox message sitting in a source shard's
// outbox between barriers.
type mailMsg struct {
	at  sim.Time // arrival time at the destination
	u   sim.Time // send instant (the sequence's time component)
	idx uint64   // composite index: pri | key | rank
	dst int32    // destination shard

	kind mailKind
	ch   *channel    // mailData/mailCtl
	p    *pkt.Packet // mailData
	item ctlItem     // mailCtl
	fn   func()      // mailFn
}

// mailRec carries a delivered mailbox message through the destination
// engine's heap. Pooled on the destination shard context.
type mailRec struct {
	sc   *shardCtx
	ch   *channel
	p    *pkt.Packet
	item ctlItem
	kind mailKind
	fn   func()
}

// remoteMark tracks one host's ScheduleRemote calls within the current
// instant, giving simultaneous calls an invariant rank.
type remoteMark struct {
	u    sim.Time
	rank uint32
}

// sendData mailboxes a data packet's arrival (windowed mode).
func (sc *shardCtx) sendData(ch *channel, p *pkt.Packet, at sim.Time) {
	ch.sentData++
	sc.outbox = append(sc.outbox, mailMsg{
		at: at, u: sc.eng.Now(), idx: uint64(ch.id) << mailRankBits,
		dst: ch.dstShard, kind: mailData, ch: ch, p: p,
	})
}

// sendCtl mailboxes a control message's arrival (windowed mode).
func (sc *shardCtx) sendCtl(ch *channel, item ctlItem, at sim.Time) {
	ch.sentCtl++
	sc.outbox = append(sc.outbox, mailMsg{
		at: at, u: sc.eng.Now(), idx: uint64(ch.id) << mailRankBits,
		dst: ch.dstShard, kind: mailCtl, ch: ch, item: item,
	})
}

// mailArriveEvent delivers one mailbox message on the destination
// shard's engine. The record recycles before the sink runs — the sink
// may synchronously trigger sends that need fresh records.
func mailArriveEvent(arg any) {
	m := arg.(*mailRec)
	sc, ch, kind := m.sc, m.ch, m.kind
	switch kind {
	case mailData:
		p := m.p
		sc.freeMail(m)
		ch.recvData++
		ch.sink.arriveData(p)
	case mailCtl:
		item := m.item
		sc.freeMail(m)
		ch.recvCtl++
		if item.kind == ctlCredit {
			ch.sink.arriveCredit(item.credit)
		} else {
			ch.sink.arriveCtl(item.recn)
		}
	default:
		fn := m.fn
		sc.freeMail(m)
		fn()
	}
}

// Shard partitions the network into k shard contexts with their own
// engines and starts the worker goroutines. Call it after New and
// before installing traffic or running; k is clamped to the switch
// count and the effective shard count is returned. Requirements:
//
//   - LinkLatency must be positive (it is the conservative lookahead);
//   - a fault plan must not script exact drops (DropNext consumes a
//     global transmission order no parallel schedule reproduces —
//     probabilistic rules, corruption and flaps all work, on
//     per-channel streams salted by the wiring-order channel ID);
//   - hosts and channels must fit the 17-bit mailbox key space.
//
// Note the windowed fault and corruption streams are per-channel and
// therefore differ from the legacy plan-wide streams (deterministically
// so, at every shard count).
func (n *Network) Shard(k int) (int, error) {
	if n.group != nil {
		return 0, fmt.Errorf("fabric: network already sharded")
	}
	if k < 1 {
		return 0, fmt.Errorf("fabric: shard count %d < 1", k)
	}
	if n.cfg.LinkLatency <= 0 {
		return 0, fmt.Errorf("fabric: windowed mode needs a positive link latency (the lookahead)")
	}
	if n.Engine.Now() != 0 || n.InjectedPackets != 0 {
		return 0, fmt.Errorf("fabric: Shard must be called before the simulation starts")
	}
	if n.faults != nil && n.faults.HasScriptedDrops() {
		return 0, fmt.Errorf("fabric: scripted drops (fault.Plan.DropNext) need the serial engine — they consume a global transmission order")
	}
	if len(n.nics) >= maxMailKeys {
		return 0, fmt.Errorf("fabric: %d hosts exceed the %d-host mailbox key space", len(n.nics), maxMailKeys)
	}
	if k > len(n.switches) {
		k = len(n.switches)
	}

	shards := make([]*shardCtx, k)
	engines := make([]*sim.Engine, k)
	for i := range shards {
		sc := &shardCtx{
			n:       n,
			id:      i,
			eng:     sim.NewShardEngine(),
			cnt:     &netCounters{},
			lastSeq: make(map[uint64]uint64),
			sharded: true,
		}
		if n.report != nil {
			sc.report = &stats.FaultReport{}
		}
		if n.rec != nil {
			// Private ring per shard (merged at the end); time-series
			// metrics stay on the coordinator's recorder.
			cfg := n.rec.Config()
			cfg.MetricsBin = 0
			rec := trace.New(cfg)
			if err := rec.Bind(sc.eng, n.resolveRoot); err != nil {
				return 0, err
			}
			sc.rec = rec
		}
		shards[i] = sc
		engines[i] = sc.eng
	}

	// Contiguous switch blocks: switch IDs are level-major, so a block
	// keeps whole stages (or stage fragments) together and most links
	// local to a shard or its neighbor.
	nSw := len(n.switches)
	shardOf := func(swID int) int { return swID * k / nSw }

	for id, sw := range n.switches {
		sc := shards[shardOf(id)]
		sw.sc = sc
		for _, in := range sw.in {
			if in != nil {
				in.sc = sc
			}
		}
		for _, out := range sw.out {
			if out != nil {
				out.sc = sc
			}
		}
	}
	n.hostShard = make([]int32, len(n.nics))
	n.remoteMark = make([]remoteMark, len(n.nics))
	for h, nic := range n.nics {
		s := shardOf(nic.attachSw)
		nic.sc = shards[s]
		nic.inj.sc = shards[s]
		n.hostShard[h] = int32(s)
	}

	// Channel IDs in deterministic wiring order: switch outputs first
	// (ID-major, port-minor), then NIC injection links.
	chID := int32(0)
	assign := func(ch *channel, owner *shardCtx, dstShard int) error {
		if int(chID) >= maxMailKeys {
			return fmt.Errorf("fabric: %d+ channels exceed the %d-channel mailbox key space", chID+1, maxMailKeys)
		}
		ch.sc = owner
		ch.id = chID
		ch.dstShard = int32(dstShard)
		if n.faults != nil {
			ch.fv = n.faults.View(int64(chID)+1, owner.report)
		}
		chID++
		return nil
	}
	for _, sw := range n.switches {
		for p, out := range sw.out {
			if out == nil {
				continue
			}
			end := n.topo.Peer(sw.id, p)
			var dst int
			if end.Kind == topology.KindHost {
				dst = int(n.hostShard[end.Host])
			} else {
				dst = shardOf(end.Switch)
			}
			if err := assign(out.ch, out.sc, dst); err != nil {
				return 0, err
			}
		}
	}
	for _, nic := range n.nics {
		if err := assign(nic.inj.ch, nic.sc, shardOf(nic.attachSw)); err != nil {
			return 0, err
		}
	}

	// Re-point the RECN controller taps at the per-shard rings.
	if n.rec != nil {
		for _, sw := range n.switches {
			for _, in := range sw.in {
				if in != nil && in.rc != nil {
					in.rc.SetTracer(saqTap{in.sc.rec, in.loc()})
				}
			}
			for _, out := range sw.out {
				if out != nil && out.rc != nil {
					out.rc.SetTracer(saqTap{out.sc.rec, out.loc()})
				}
			}
		}
		for _, nic := range n.nics {
			if nic.inj.rc != nil {
				nic.inj.rc.SetTracer(saqTap{nic.sc.rec, nic.inj.loc()})
			}
		}
	}

	n.shards = shards
	n.windowStep = n.cfg.LinkLatency
	n.group = sim.NewShardGroup(engines)
	return k, nil
}

// ShardCount returns the number of shards (0 in legacy mode).
func (n *Network) ShardCount() int { return len(n.shards) }

// HostShard returns the shard that simulates a host (0 in legacy mode).
func (n *Network) HostShard(host int) int {
	if n.hostShard == nil {
		return 0
	}
	return int(n.hostShard[host])
}

// ShardEngine returns shard i's event engine. Traffic generators must
// schedule each host's stream on that host's shard engine.
func (n *Network) ShardEngine(i int) *sim.Engine { return n.shards[i].eng }

// SetShardOnDeliver installs shard i's delivery observer (the windowed
// counterpart of Network.OnDeliver, which windowed units never read).
// The callback runs on the shard's worker goroutine; per-shard results
// are merged deterministically after the run.
func (n *Network) SetShardOnDeliver(i int, fn func(*pkt.Packet)) {
	n.shards[i].onDeliver = fn
}

// ScheduleRemote schedules fn on host's shard engine at time at,
// mailboxed from the calling host's stream (even when caller and host
// land on the same shard, so the delivered order is shard-count
// invariant). It must be called from caller's stream context, and at
// must exceed the call time by more than LinkLatency — below that the
// delivery is clamped to the next barrier, which is deterministic for
// a fixed shard count but not invariant across counts. Legacy mode
// falls back to a plain coordinator-engine Schedule.
func (n *Network) ScheduleRemote(caller, host int, at sim.Time, fn func()) {
	if n.shards == nil {
		n.Engine.Schedule(at, fn)
		return
	}
	sc := n.shards[n.hostShard[caller]]
	u := sc.eng.Now()
	m := &n.remoteMark[caller]
	if m.u != u {
		m.u, m.rank = u, 0
	}
	rank := m.rank
	m.rank++
	if rank >= maxMailRank {
		n.fatalf(check.RuleInternal, trace.NetLoc,
			"host %d made %d+ remote injections in one instant", caller, maxMailRank)
	}
	sc.outbox = append(sc.outbox, mailMsg{
		at: at, u: u,
		idx: 1<<mailPriShift | uint64(caller)<<mailRankBits | uint64(rank),
		dst: n.hostShard[host], kind: mailFn, fn: fn,
	})
}

// TotalEvents returns the events dispatched across the coordinator and
// every shard engine. It is invariant across shard counts (windowed
// mode), though not comparable to a legacy run's event count.
func (n *Network) TotalEvents() uint64 {
	t := n.Engine.Executed
	for _, sc := range n.shards {
		t += sc.eng.Executed
	}
	return t
}

// MergedTracer returns the flight recorder covering the whole run: the
// coordinator's recorder in legacy mode, the deterministic merge of the
// coordinator and per-shard rings in windowed mode. nil when tracing is
// disabled.
func (n *Network) MergedTracer() *trace.Recorder {
	if n.rec == nil || n.shards == nil {
		return n.rec
	}
	parts := make([]*trace.Recorder, 0, len(n.shards)+1)
	parts = append(parts, n.rec)
	for _, sc := range n.shards {
		parts = append(parts, sc.rec)
	}
	return trace.Merge(n.rec.Config(), parts...)
}

// windowHorizon picks the next barrier: the earliest of limit (when
// bounded), the next coordinator event, any pending outbox delivery,
// and the earliest shard event plus one lookahead window. The last
// term is what bounds concurrent execution — no shard can run more
// than LinkLatency past the earliest thing anyone might do — while
// letting idle gaps fast-forward in one step. Returns false when
// nothing bounds the horizon (an unbounded drain has finished).
func (n *Network) windowHorizon(limit sim.Time, bounded bool) (sim.Time, bool) {
	e, has := limit, bounded
	if t, ok := n.Engine.NextAt(); ok && (!has || t < e) {
		e, has = t, true
	}
	var sNext sim.Time
	sOk := false
	for _, sc := range n.shards {
		if t, ok := sc.eng.NextAt(); ok && (!sOk || t < sNext) {
			sNext, sOk = t, true
		}
		// Coordinator barrier work may have outboxed sends; their
		// arrivals bound the horizon directly (they must be scheduled
		// before any shard clock passes them).
		for i := range sc.outbox {
			if at := sc.outbox[i].at; !has || at < e {
				e, has = at, true
			}
		}
	}
	if sOk {
		if w := sNext + n.windowStep; !has || w < e {
			e, has = w, true
		}
	}
	return e, has
}

// flushMail drains every shard's outbox into the destination engines.
// Insertion order is irrelevant: the composite sequences are built from
// invariant keys and are unique per engine, so the heap order — and
// therefore the delivery order — is the same at any shard count.
func (n *Network) flushMail() {
	for _, src := range n.shards {
		for i := range src.outbox {
			m := &src.outbox[i]
			dst := n.shards[m.dst]
			at := m.at
			if now := dst.eng.Now(); at < now {
				// Only reachable via a ScheduleRemote below the lookahead
				// bound; deterministic for a fixed shard count.
				at = now
			}
			rec := dst.allocMail()
			rec.sc, rec.ch, rec.p, rec.item, rec.kind, rec.fn = dst, m.ch, m.p, m.item, m.kind, m.fn
			dst.eng.ScheduleExt(at, sim.ComposeSeq(m.u, m.idx), mailArriveEvent, rec)
			*m = mailMsg{}
		}
		src.outbox = src.outbox[:0]
	}
}

// aggregateCounters rebuilds the network-level counters as the sum of
// the per-shard counters. Barrier context only.
func (n *Network) aggregateCounters() {
	n.netCounters = netCounters{}
	for _, sc := range n.shards {
		n.netCounters.add(sc.cnt)
	}
}

// collectDues folds the shards' periodic-driver arm requests: the
// minimum due time over shards is exactly the legacy "arm at the first
// qualifying injection" time, independent of the partition.
func (n *Network) collectDues() {
	var sweep, wd, samp, chk sim.Time
	fold := func(dst *sim.Time, v sim.Time) {
		if v != 0 && (*dst == 0 || v < *dst) {
			*dst = v
		}
	}
	for _, sc := range n.shards {
		fold(&sweep, sc.sweepDue)
		sc.sweepDue = 0
		fold(&wd, sc.wdDue)
		sc.wdDue = 0
		fold(&samp, sc.samplerDue)
		sc.samplerDue = 0
		fold(&chk, sc.checkDue)
		sc.checkDue = 0
	}
	if sweep != 0 && !n.sweepPending {
		n.sweepPending = true
		n.Engine.Schedule(sweep, n.runSweepFn)
	}
	if wd != 0 && n.recovery.Enabled && !n.watchdog.pending {
		n.watchdog.pending = true
		n.Engine.Schedule(wd, n.watchdogTickFn)
	}
	if samp != 0 && n.rec != nil && !n.samplerPending {
		n.samplerPending = true
		n.Engine.Schedule(samp, n.traceSampleFn)
	}
	if chk != 0 && n.check != nil && !n.checkState.pending && !n.checkState.dead {
		n.checkState.pending = true
		n.checkState.lastDelivered = n.DeliveredPackets
		n.checkState.lastProgressAt = chk - n.check.Period()
		n.Engine.Schedule(chk, n.checkTickFn)
	}
}

// runWindows is the barrier loop: run all shards to the horizon
// concurrently, then — single-threaded, workers parked — deliver
// mailboxes, aggregate counters, arm periodic drivers and run the
// coordinator's events through the same horizon.
func (n *Network) runWindows(until sim.Time, drain bool) {
	if n.group == nil {
		panic("fabric: RunWindowed/DrainWindowed before Shard")
	}
	if n.windowsDone {
		panic("fabric: windowed run already finished")
	}
	for {
		e, ok := n.windowHorizon(until, !drain)
		if !ok {
			return
		}
		n.group.Step(e)
		n.flushMail()
		n.aggregateCounters()
		n.collectDues()
		n.Engine.Run(e)
		if !drain && e >= until {
			return
		}
	}
}

// RunWindowed advances the windowed simulation through `until`
// (inclusive, like sim.Engine.Run).
func (n *Network) RunWindowed(until sim.Time) { n.runWindows(until, false) }

// DrainWindowed runs until no work remains anywhere — shard heaps,
// outboxes and the coordinator queue are all empty — then finishes the
// run (see FinishWindowed).
func (n *Network) DrainWindowed() {
	n.runWindows(0, true)
	n.FinishWindowed()
}

// FinishWindowed ends a windowed run without draining: the per-shard
// fault reports fold into the network's and the worker goroutines are
// released. The network stays readable (counters, quiesce checks,
// MergedTracer) but cannot be stepped again. Figure runs that cut off
// at the horizon call this directly; drains go through DrainWindowed.
func (n *Network) FinishWindowed() {
	if n.windowsDone {
		return
	}
	n.windowsDone = true
	for _, sc := range n.shards {
		if n.report != nil {
			n.report.Merge(sc.report)
		}
	}
	n.group.Close()
}
