package fabric

import (
	"fmt"
	"io"

	"repro/internal/recn"
)

// DumpCongestion writes a human-readable snapshot of every congested
// element: roots, allocated SAQs, deep queues. Debug aid.
func (n *Network) DumpCongestion(w io.Writer) {
	dumpSAQ := func(kind string, sw, port int, s *recn.SAQ) {
		fmt.Fprintf(w, "  %s sw%d[%d] SAQ path=%v q=%dB/%dpkts blocked=%v leaf=%v\n",
			kind, sw, port, s.Path, s.Q.QueuedBytes(), s.Q.Packets(), s.Blocked(), s.Leaf())
	}
	for _, sw := range n.switches {
		for p, in := range sw.in {
			if in == nil {
				continue
			}
			if q := in.qs.queuedBytes(0); q > 4096 {
				fmt.Fprintf(w, "  in sw%d[%d] normal q=%dB\n", sw.id, p, q)
			}
			if in.rc != nil {
				in.rc.ForEachSAQ(func(s *recn.SAQ) { dumpSAQ("in", sw.id, p, s) })
			}
		}
		for p, out := range sw.out {
			if out == nil {
				continue
			}
			if out.rc != nil && out.rc.Root() {
				level := -1
				if lv, ok := n.topo.(interface{ SwitchLevel(int) int }); ok {
					level = lv.SwitchLevel(sw.id)
				}
				fmt.Fprintf(w, "ROOT sw%d out[%d] (level %d) normal q=%dB pool=%dB credits=%d\n",
					sw.id, p, level, out.qs.queuedBytes(0), out.pool.Used(), out.portCredits)
			} else if q := out.qs.queuedBytes(0); q > 4096 {
				fmt.Fprintf(w, "  out sw%d[%d] normal q=%dB credits=%d\n", sw.id, p, q, out.portCredits)
			}
			if out.rc != nil {
				out.rc.ForEachSAQ(func(s *recn.SAQ) { dumpSAQ("out", sw.id, p, s) })
			}
		}
	}
	for h, nic := range n.nics {
		if nic.inj.rc != nil && nic.inj.rc.ActiveSAQs() > 0 {
			nic.inj.rc.ForEachSAQ(func(s *recn.SAQ) { dumpSAQ("nic", h, 0, s) })
		}
	}
}
