package fabric

import (
	"math/rand"
	"testing"

	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/topology"
)

func newClassNet(t testing.TB, classes int) *Network {
	t.Helper()
	topo, err := topology.ForHosts(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = PolicyRECN
	cfg.TrafficClasses = classes
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTrafficClassValidation(t *testing.T) {
	topo, _ := topology.ForHosts(64)
	cfg := DefaultConfig(topo)
	cfg.TrafficClasses = 0
	if err := cfg.Validate(); err == nil {
		t.Error("0 classes accepted")
	}
	cfg.TrafficClasses = 300
	if err := cfg.Validate(); err == nil {
		t.Error("300 classes accepted")
	}
	n := newClassNet(t, 2)
	if err := n.InjectMessageClass(0, 1, 64, 2); err == nil {
		t.Error("class 2 accepted with 2 classes configured")
	}
	if err := n.InjectMessageClass(0, 1, 64, 1); err != nil {
		t.Error(err)
	}
}

// Multiple traffic classes (paper footnote 1): per-class ordering holds,
// every packet is delivered, and the network quiesces.
func TestTrafficClassesDeliveryAndOrder(t *testing.T) {
	n := newClassNet(t, 4)
	rng := rand.New(rand.NewSource(21))
	for h := 0; h < 32; h++ {
		h := h
		var gen func()
		gen = func() {
			if n.Engine.Now() > 25*sim.Microsecond {
				return
			}
			dst := rng.Intn(64)
			if dst == h {
				dst = (dst + 1) % 64
			}
			class := uint8(rng.Intn(4))
			if err := n.InjectMessageClass(h, dst, 64*(1+rng.Intn(3)), class); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(sim.Time(100+rng.Intn(200))*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	n.Engine.Drain()
	if n.PendingPackets() != 0 {
		t.Fatalf("%d packets stuck", n.PendingPackets())
	}
	if n.OrderViolations != 0 {
		t.Fatalf("order violations across classes: %d", n.OrderViolations)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// Under a hotspot, SAQ markers cover every class queue so in-order
// delivery holds per class even while trees form and collapse.
func TestTrafficClassesUnderHotspot(t *testing.T) {
	n := newClassNet(t, 2)
	for i := 0; i < 16; i++ {
		src := 4*i + 3
		var gen func()
		gen = func() {
			if n.Engine.Now() > 40*sim.Microsecond {
				return
			}
			class := uint8(src % 2)
			if err := n.InjectMessageClass(src, 32, 64, class); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	sawSAQs := false
	var poll func()
	poll = func() {
		if total, _, _ := n.SAQUsage(); total > 0 {
			sawSAQs = true
			return
		}
		if n.Engine.Now() < 40*sim.Microsecond {
			n.Engine.After(sim.Microsecond, poll)
		}
	}
	n.Engine.Schedule(0, poll)
	n.Engine.Drain()
	if !sawSAQs {
		t.Fatal("no SAQs under classed hotspot")
	}
	if n.OrderViolations != 0 {
		t.Fatalf("order violations: %d", n.OrderViolations)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// Class queues isolate classes from each other's backlog at uncongested
// ports (one class pointed at a congested destination does not stall
// another class's unrelated traffic in the same normal queue).
func TestTrafficClassIsolation(t *testing.T) {
	// Class 1 traffic from host 3 hammers the hotspot; class 0 traffic
	// from the same host flows elsewhere. With separate class queues,
	// class 0 never waits behind class 1 in the injection queue.
	n := newClassNet(t, 2)
	for i := 0; i < 16; i++ {
		src := 4*i + 3
		var gen func()
		gen = func() {
			if n.Engine.Now() > 30*sim.Microsecond {
				return
			}
			if err := n.InjectMessageClass(src, 32, 64, 1); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	var class0Delivered int
	n.OnDeliver = func(p *pkt.Packet) {
		if p.Class == 0 {
			class0Delivered++
		}
	}
	var gen0 func()
	gen0 = func() {
		if n.Engine.Now() > 30*sim.Microsecond {
			return
		}
		if err := n.InjectMessageClass(3, 50, 64, 0); err != nil {
			t.Fatal(err)
		}
		n.Engine.After(128*sim.Nanosecond, gen0)
	}
	n.Engine.Schedule(0, gen0)
	n.Engine.Run(35 * sim.Microsecond)
	// ~234 class-0 packets offered in 30 µs; nearly all must arrive.
	if class0Delivered < 200 {
		t.Fatalf("class 0 delivered only %d packets beside a class-1 hotspot", class0Delivered)
	}
	n.Engine.Drain()
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}
