package fabric

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/mempool"
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ingressUnit is the input side of a switch port. It receives packets
// from the link, holds them in the policy queues (plus SAQs under
// RECN), and requests crossbar transfers toward the output ports. It is
// also the link sink for its port: credits and RECN control addressed
// to the co-located egress unit are dispatched from here.
type ingressUnit struct {
	net  *Network
	sc   *shardCtx
	sw   *Switch
	port int

	pool   mempool.Pool
	qs     queueSet
	active activeList
	rc     *recn.Ingress

	// revCh is the co-located egress unit's channel: credits and
	// upstream RECN messages travel on it.
	revCh *channel

	rr          int
	saqRR       int
	saqScratch  []*recn.SAQ
	wrrDebt     int
	kickPending bool

	// arbitFn is u.arbit bound once, so kick never allocates a method
	// value on the hot path.
	arbitFn func()
}

// init builds the unit in place (units live in slab arenas — see
// fabric.New). rc is this port's slot in the RECN controller arena
// (nil unless PolicyRECN). Construction errors (bad pool capacity)
// surface through fabric.New's error return.
func (u *ingressUnit) init(net *Network, sw *Switch, port int, rc *recn.Ingress) error {
	cfg := net.cfg
	u.net = net
	u.sc = net.base
	u.sw = sw
	u.port = port
	if err := u.pool.Init(cfg.PortMemory); err != nil {
		return err
	}
	u.arbitFn = u.arbit
	nq, qcap := ingressQueuePlan(cfg)
	u.qs.init(&u.pool, nq, qcap, cfg.Policy == PolicyVOQnet && !cfg.EagerState)
	u.active.init(nq, !cfg.EagerState)
	if cfg.Policy == PolicyRECN {
		if err := rc.Init(cfg.RECN, port, &u.pool, u.qs.denseSlice(), u, cfg.EagerState); err != nil {
			return err
		}
		u.rc = rc
	}
	return nil
}

// ingressQueuePlan returns the number of policy queues and per-queue
// cap at an input port for the configured mechanism (paper §4.3).
func ingressQueuePlan(cfg Config) (n, cap int) {
	switch cfg.Policy {
	case Policy1Q, PolicyThrottle, PolicyARN:
		return 1, 0
	case PolicyRECN:
		return cfg.TrafficClasses, 0
	case Policy4Q:
		return 4, 0
	case PolicyVOQsw:
		ports := cfg.Topo.PortsPerSwitch()
		return ports, cfg.PortMemory / ports
	case PolicyVOQnet:
		hosts := cfg.Topo.NumHosts()
		return hosts, cfg.PortMemory / hosts
	default:
		// Unreachable: Config.Validate rejects unknown policies before
		// any unit is built.
		panic(check.NewViolation(check.RuleInternal, trace.NetLoc,
			fmt.Sprintf("fabric: unknown policy %v", cfg.Policy)))
	}
}

// classify returns the queue an arriving packet goes to (p.Hop indexes
// the turn at this switch).
func (u *ingressUnit) classify(p *pkt.Packet) (queueHandle, *recn.SAQ) {
	switch u.net.cfg.Policy {
	case Policy1Q, PolicyThrottle, PolicyARN:
		return queueHandle{u.qs.at(0), 0}, nil
	case Policy4Q:
		best := 0
		for i := 1; i < u.qs.len(); i++ {
			if u.qs.at(i).QueuedBytes() < u.qs.at(best).QueuedBytes() {
				best = i
			}
		}
		return queueHandle{u.qs.at(best), best}, nil
	case PolicyVOQsw:
		idx := int(p.NextTurn())
		return queueHandle{u.qs.at(idx), idx}, nil
	case PolicyVOQnet:
		return queueHandle{u.qs.get(p.Dst), p.Dst}, nil
	case PolicyRECN:
		if s := u.rc.Classify(p.Route, p.Hop); s != nil {
			return queueHandle{s.Q, -1}, s
		}
		cls := int(p.Class)
		return queueHandle{u.qs.at(cls), cls}, nil
	}
	u.net.fatalf(check.RuleInternal, u.loc(), "unknown policy %v", u.net.cfg.Policy)
	return queueHandle{}, nil
}

// kick schedules an arbitration attempt (deduplicated).
func (u *ingressUnit) kick() {
	if u.kickPending {
		return
	}
	u.kickPending = true
	u.sc.eng.Schedule(u.sc.eng.Now(), u.arbitFn)
}

// arbit is the crossbar request arbiter for this input port: pick the
// highest-priority eligible head packet whose output lane and output
// buffer are available, and start the transfer. Priorities follow the
// paper: boosted token-owning SAQs, then normal queues, then SAQs, with
// a weighted round-robin so SAQs are not starved.
func (u *ingressUnit) arbit() {
	u.kickPending = false
	if u.sw.inBusy[u.port] {
		return
	}
	if u.rc != nil {
		if u.arbitSAQ(true) {
			return
		}
		if u.wrrDebt >= u.net.cfg.NormalWeight && u.arbitSAQ(false) {
			return
		}
	}
	if u.arbitNormal() {
		return
	}
	if u.rc != nil {
		u.arbitSAQ(false)
	}
}

func (u *ingressUnit) arbitNormal() bool {
	if u.rc != nil {
		// RECN: scan the class queues directly (round-robin) so markers
		// placed by the controller (which bypass the active list) are
		// always peeled.
		n := u.qs.len()
		for i := 0; i < n; i++ {
			idx := (u.rr + i) % n
			q := u.qs.at(idx)
			p, ok := peelHead(q, u.rc.ResolveMarker)
			if !ok || !u.canForward(p, false) {
				continue
			}
			u.rr = idx + 1
			u.wrrDebt++
			u.sw.startTransfer(u, queueHandle{q, idx}, nil, p)
			return true
		}
		return false
	}
	// Round-robin over the non-empty queues; each iteration removes an
	// entry or advances `tried`, so the loop terminates.
	tried := 0
	for u.active.len() > 0 && tried < u.active.len() {
		idx := u.active.at(u.rr % u.active.len())
		q := u.qs.at(idx)
		p, ok := peelHead(q, nil)
		if !ok {
			u.active.remove(idx)
			continue
		}
		if !u.canForward(p, false) {
			u.rr++
			tried++
			continue
		}
		u.rr++
		u.sw.startTransfer(u, queueHandle{q, idx}, nil, p)
		return true
	}
	return false
}

func (u *ingressUnit) arbitSAQ(boostedOnly bool) bool {
	if u.rc.ActiveSAQs() == 0 {
		return false
	}
	saqs := u.saqScratch[:0]
	u.rc.ForEachSAQ(func(s *recn.SAQ) { saqs = append(saqs, s) })
	u.saqScratch = saqs[:0]
	n := len(saqs)
	for i := 0; i < n; i++ {
		s := saqs[(u.saqRR+i)%n]
		// Peel markers first: popping a marker is a control-RAM
		// operation allowed even while the SAQ itself is blocked, and
		// resolving it may unblock another SAQ (or deallocate this
		// one, making s stale for the rest of this iteration).
		p, ok := peelHead(s.Q, u.rc.ResolveMarker)
		if !ok {
			continue
		}
		if boostedOnly && !u.rc.Boosted(s) {
			continue
		}
		if !u.rc.EligibleTx(s) {
			continue
		}
		if !u.canForward(p, true) {
			continue
		}
		u.saqRR = (u.saqRR + i + 1) % n
		u.wrrDebt = 0
		u.sw.startTransfer(u, queueHandle{s.Q, -1}, s, p)
		return true
	}
	return false
}

// canForward checks the crossbar output lane and the output buffer
// admission. fromSAQ additionally honors the target SAQ's internal
// Xon/Xoff gate (paper §3.7: Xoff between SAQs — normal-queue packets
// are never gated). A denial by a congested target is reported to the
// egress controller so this input gets its congestion notification even
// though it cannot store a packet there (see recn.Egress.OnDenied).
func (u *ingressUnit) canForward(p *pkt.Packet, fromSAQ bool) bool {
	if u.sw.upN >= 2 {
		u.steer(p)
	}
	out := int(p.NextTurn())
	ou := u.sw.out[out]
	if ou == nil {
		u.net.fatalf(check.RuleRouting, u.loc(),
			"switch %d route of %v uses unused port %d", u.sw.id, p, out)
	}
	if !ou.admitProbe(p, p.Hop+1) {
		if ou.rc != nil {
			ou.rc.OnDenied(p.Route, p.Hop+1, u.port)
		}
		return false
	}
	if fromSAQ && ou.gated(p, p.Hop+1) {
		return false
	}
	return !u.sw.outBusy[out]
}

// steer re-aims an ascending packet at the best interchangeable up port
// (PolicyARN: upN ≥ 2 only under that policy). It only acts when the
// deterministic port carries a congestion hint from downstream;
// alternatives are then scored by local output-buffer occupancy plus a
// full-buffer penalty on ports that are themselves hinted, with the
// original port winning ties — so an unhinted fabric steers nothing and
// behaves exactly like 1Q. The
// choice is recorded as a per-(packet, hop) override — never by mutating
// the shared Route, which the NIC route cache aliases across packets —
// and goes stale the moment the crossbar advances p.Hop, so a steered
// packet still consumes exactly one ascent per level: hints cannot
// create routing loops.
func (u *ingressUnit) steer(p *pkt.Packet) {
	sw := u.sw
	orig := int(p.NextTurn())
	if orig < sw.upLo || orig >= sw.upLo+sw.upN {
		return // descending: the remaining route is forced
	}
	if !sw.out[orig].hintStop {
		// Steering is notification-driven: without a congestion hint on
		// the deterministic port the packet stays on it. Chasing queue
		// depth alone would reorder every flow all the time and (by
		// herding every input to the momentarily shortest queue)
		// degrade uniform traffic the hints never complained about.
		return
	}
	penalty := u.net.cfg.PortMemory
	score := func(ou *egressUnit) int {
		s := ou.pool.Used()
		if ou.hintStop {
			s += penalty
		}
		return s
	}
	best, bestScore := orig, score(sw.out[orig])
	for c := sw.upLo; c < sw.upLo+sw.upN; c++ {
		ou := sw.out[c]
		if c == orig || ou == nil || ou.ch == nil {
			continue
		}
		if s := score(ou); s < bestScore {
			best, bestScore = c, s
		}
	}
	if u.net.check != nil && (best < sw.upLo || best >= sw.upLo+sw.upN) {
		u.net.check.Fatalf(check.RuleSteering, u.loc(),
			"steered %v to port %d outside up range [%d, %d)", p, best, sw.upLo, sw.upLo+sw.upN)
	}
	p.OvSet = true
	p.OvHop = int32(p.Hop)
	p.OvTurn = pkt.Turn(best)
}

// --- linkSink ---

// arriveData stores a packet arriving over the link. Credits guarantee
// space; mempool panics otherwise (a flow-control bug).
func (u *ingressUnit) arriveData(p *pkt.Packet) {
	if u.sc.rec != nil {
		u.sc.rec.RecordPacket(trace.EvRecv, u.loc(), p.ID, p.Size, p.Src, p.Dst)
	}
	h, s := u.classify(p)
	h.q.Push(p.Size, p)
	if h.idx >= 0 {
		u.active.add(h.idx)
	}
	if u.rc != nil {
		u.rc.OnStored(s, p.Size)
	}
	// Arrival is an event-context call; arbitrate synchronously rather
	// than paying for a zero-delay event.
	u.arbit()
}

// arriveCredit hands a returned credit to the co-located egress unit.
func (u *ingressUnit) arriveCredit(c creditMsg) {
	u.sw.out[u.port].addCredit(c)
}

// arriveCtl dispatches RECN control: notifications and Xon/Xoff address
// the co-located egress unit; tokens address this ingress.
func (u *ingressUnit) arriveCtl(m recn.CtlMsg) {
	switch m.Kind {
	case recn.MsgToken:
		if u.rc != nil {
			u.rc.OnTokenFromUpstream(m.Path, m.Refused)
		}
	case recn.MsgNotify:
		out := u.sw.out[u.port]
		if out.rc != nil {
			out.rc.OnUpstreamNotification(m.Path)
			// A marker may have been placed in the normal queue; make
			// sure the arbiter runs so it can be peeled even if no
			// further packets arrive.
			out.ch.kick()
			u.sc.scheduleSweep()
		}
	case recn.MsgXoff:
		out := u.sw.out[u.port]
		if out.rc != nil {
			out.rc.OnXoffFromDownstream(m.Path)
		}
	case recn.MsgXon:
		out := u.sw.out[u.port]
		if out.rc != nil {
			out.rc.OnXonFromDownstream(m.Path)
			out.ch.kick() // the SAQ may transmit again
		}
	case recn.MsgHintOn:
		// ARN: the switch this port feeds reports congestion; the local
		// steering arbiters now penalize this output. Advisory only — no
		// kick needed, hints never gate a transmission.
		u.sw.out[u.port].hintStop = true
	case recn.MsgHintOff:
		u.sw.out[u.port].hintStop = false
	}
}

// auditResident reports the resident bytes the upstream sender's
// credits protect: the whole port RAM for port-level credits (queue -1;
// SAQs share the same pool), one queue under the VOQ policies.
func (u *ingressUnit) auditResident(queue int) int {
	if queue < 0 {
		return u.pool.Used()
	}
	if q := u.qs.at(queue); q != nil {
		return q.ResidentBytes()
	}
	return 0
}

// reverseQuiet reports whether the credit-carrying reverse direction of
// this port's link is silent.
func (u *ingressUnit) reverseQuiet(now sim.Time) bool { return u.revCh.quiet(now) }

// --- recn.IngressEffects ---

// SendUpstream transmits a RECN control message on the reverse link.
func (u *ingressUnit) SendUpstream(m recn.CtlMsg) {
	if u.sc.rec != nil {
		switch m.Kind {
		case recn.MsgNotify:
			u.sc.rec.Record(trace.EvNotify, u.loc(), m.Path.Key(), 0, 0, 0)
		case recn.MsgXoff:
			u.sc.rec.Record(trace.EvXoff, u.loc(), m.Path.Key(), 0, 0, 0)
		case recn.MsgXon:
			u.sc.rec.Record(trace.EvXon, u.loc(), m.Path.Key(), 0, 0, 0)
		}
	}
	u.revCh.pushCtl(m)
}

// TokenToEgress returns a branch token to a local output port.
func (u *ingressUnit) TokenToEgress(egress int, rest pkt.Path) {
	ou := u.sw.out[egress]
	if ou == nil || ou.rc == nil {
		u.net.fatalf(check.RuleInternal, u.loc(),
			"token to unused port %d of switch %d", egress, u.sw.id)
	}
	if u.sc.rec != nil {
		// Recorded at the receiving egress with the remaining path:
		// `rest` is anchored exactly as that port's own SAQ paths are
		// (empty = the port itself is the root).
		u.sc.rec.Record(trace.EvToken, ou.loc(), rest.Key(), 0, 1, 0)
	}
	ou.rc.OnTokenFromIngress(u.port, rest)
}

var _ linkSink = (*ingressUnit)(nil)
var _ recn.IngressEffects = (*ingressUnit)(nil)
