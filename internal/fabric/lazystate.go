package fabric

import "repro/internal/mempool"

// This file holds the lazily materialized per-port state containers.
//
// Under VOQnet every port keeps one queue and one credit counter per
// destination host — O(hosts) state per port, O(hosts · ports) for the
// fabric — yet a real workload touches only the destinations its
// traffic actually crosses. queueSet and creditSet keep the legacy
// dense layout for the small per-port arrays (1Q/4Q/VOQsw/RECN classes)
// and switch to demand-paged storage for the O(hosts) VOQnet arrays:
// nothing is allocated until a destination is first touched, and an
// untouched entry behaves exactly like a freshly built empty one, so
// lazy and eager runs are bit-identical (the golden tests assert it).
//
// Pages are visited in index order, so iteration over materialized
// entries is a strict subsequence of the dense iteration — never a
// reordering — keeping every walk (audits, wait graphs, probes)
// deterministic and shard-count-invariant.

const (
	statePageBits = 6
	statePageLen  = 1 << statePageBits
	// lazyPosThreshold: active lists switch from a dense membership
	// array to demand-paged slots at this size (the dense array is
	// cheaper below it and O(hosts) per unit above it).
	lazyPosThreshold = 1024
)

// queueSet is a fixed-size array of policy queues sharing one pool,
// dense or demand-paged.
type queueSet struct {
	pool   *mempool.Pool
	n      int
	qcap   int
	lazy   bool
	queues []*mempool.Queue   // dense backing (nil in lazy mode)
	pages  [][]*mempool.Queue // lazy page table (nil until first touch)
}

func (s *queueSet) init(pool *mempool.Pool, n, qcap int, lazy bool) {
	*s = queueSet{pool: pool, n: n, qcap: qcap, lazy: lazy}
	if !lazy {
		s.queues = make([]*mempool.Queue, n)
		for i := range s.queues {
			s.queues[i] = mempool.NewQueue(pool, qcap)
		}
	}
}

func (s *queueSet) len() int { return s.n }

// at returns the queue at i, or nil when it has not materialized (an
// untouched queue holds nothing — callers treat nil as empty).
func (s *queueSet) at(i int) *mempool.Queue {
	if !s.lazy {
		return s.queues[i]
	}
	if s.pages == nil {
		return nil
	}
	pg := s.pages[i>>statePageBits]
	if pg == nil {
		return nil
	}
	return pg[i&(statePageLen-1)]
}

// get returns the queue at i, materializing it (and its page, and the
// page table) on first touch.
func (s *queueSet) get(i int) *mempool.Queue {
	if !s.lazy {
		return s.queues[i]
	}
	if s.pages == nil {
		s.pages = make([][]*mempool.Queue, (s.n+statePageLen-1)>>statePageBits)
	}
	pi := i >> statePageBits
	pg := s.pages[pi]
	if pg == nil {
		pg = make([]*mempool.Queue, statePageLen)
		s.pages[pi] = pg
	}
	q := pg[i&(statePageLen-1)]
	if q == nil {
		q = mempool.NewQueue(s.pool, s.qcap)
		pg[i&(statePageLen-1)] = q
	}
	return q
}

// canAccept reports whether queue i could accept n bytes right now,
// without materializing it: an untouched queue is empty, so only the
// pool headroom and the private cap bound admission — exactly
// mempool.Queue.CanAccept at zero residency.
func (s *queueSet) canAccept(i, n int) bool {
	if q := s.at(i); q != nil {
		return q.CanAccept(n)
	}
	if s.pool.Free() < n {
		return false
	}
	return s.qcap == 0 || n <= s.qcap
}

// queuedBytes returns queue i's queued bytes without materializing it
// (an untouched queue holds zero bytes).
func (s *queueSet) queuedBytes(i int) int {
	if q := s.at(i); q != nil {
		return q.QueuedBytes()
	}
	return 0
}

// forEach visits materialized queues in index order (the dense order
// with untouched queues skipped — they hold nothing).
func (s *queueSet) forEach(fn func(i int, q *mempool.Queue)) {
	if !s.lazy {
		for i, q := range s.queues {
			fn(i, q)
		}
		return
	}
	for pi, pg := range s.pages {
		if pg == nil {
			continue
		}
		base := pi << statePageBits
		for j, q := range pg {
			if q != nil {
				fn(base+j, q)
			}
		}
	}
}

// denseSlice returns the backing slice of a dense set (the RECN
// traffic-class queues handed to the controllers; RECN sets are always
// dense).
func (s *queueSet) denseSlice() []*mempool.Queue { return s.queues }

// memCount reports materialized queues, total ring slots and page-table
// pointer slots, for the memory model.
func (s *queueSet) memCount() (queues, ringSlots, ptrSlots int) {
	s.forEach(func(_ int, q *mempool.Queue) {
		queues++
		ringSlots += q.RingCap()
	})
	if !s.lazy {
		ptrSlots = len(s.queues)
		return
	}
	ptrSlots = len(s.pages)
	for _, pg := range s.pages {
		if pg != nil {
			ptrSlots += statePageLen
		}
	}
	return
}

// creditSet is a fixed-size array of credit counters all starting at
// the same initial value, dense or demand-paged. An untouched counter
// reads as the initial value; taking its address materializes the page
// (pages give stable interior pointers for the watchdog's resync).
type creditSet struct {
	n     int
	start int
	lazy  bool
	dense []int
	pages [][]int
}

func (s *creditSet) init(n, start int, lazy bool) {
	*s = creditSet{n: n, start: start, lazy: lazy}
	if !lazy && n > 0 {
		s.dense = make([]int, n)
		for i := range s.dense {
			s.dense[i] = start
		}
	}
}

// enabled reports whether queue-level credits are configured at all.
func (s *creditSet) enabled() bool { return s.n > 0 }

func (s *creditSet) value(i int) int {
	if !s.lazy {
		return s.dense[i]
	}
	if s.pages == nil {
		return s.start
	}
	pg := s.pages[i>>statePageBits]
	if pg == nil {
		return s.start
	}
	return pg[i&(statePageLen-1)]
}

// slot returns a stable pointer to counter i, materializing its page
// (filled with the initial value) on first touch.
func (s *creditSet) slot(i int) *int {
	if !s.lazy {
		return &s.dense[i]
	}
	if s.pages == nil {
		s.pages = make([][]int, (s.n+statePageLen-1)>>statePageBits)
	}
	pi := i >> statePageBits
	pg := s.pages[pi]
	if pg == nil {
		pg = make([]int, statePageLen)
		for j := range pg {
			pg[j] = s.start
		}
		s.pages[pi] = pg
	}
	return &pg[i&(statePageLen-1)]
}

// forEachSlot visits materialized counters in index order. Untouched
// counters hold exactly the initial value, so audits that compare
// against it lose nothing by skipping them.
func (s *creditSet) forEachSlot(fn func(i int, slot *int)) {
	if !s.lazy {
		for i := range s.dense {
			fn(i, &s.dense[i])
		}
		return
	}
	for pi, pg := range s.pages {
		if pg == nil {
			continue
		}
		base := pi << statePageBits
		for j := range pg {
			if i := base + j; i < s.n {
				fn(i, &pg[j])
			}
		}
	}
}

// memCount reports materialized counter slots, for the memory model.
func (s *creditSet) memCount() (slots int) {
	if !s.lazy {
		return len(s.dense)
	}
	slots = len(s.pages)
	for _, pg := range s.pages {
		if pg != nil {
			slots += statePageLen
		}
	}
	return
}
