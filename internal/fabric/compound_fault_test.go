package fabric

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func mustTopo(t *testing.T, hosts int) *topology.Topology {
	t.Helper()
	topo, err := topology.ForHosts(hosts)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// These tests cover the recovery watchdogs under *compound* fault
// plans: two fault mechanisms aimed at the same control traffic in the
// same window, where a repair action itself can be hit by the second
// fault. Every run executes under the always-on invariant checker
// (newFaultNet) and must balance the fault report and quiesce.

// assertFaultBalance checks the report's internal accounting: every
// flap that went down came back up, corrupted packets are delivered
// (lossless fabric) and never exceed corruptions, and the drained
// network delivered everything it accepted.
func assertFaultBalance(t *testing.T, n *Network, r *stats.FaultReport) {
	t.Helper()
	if r.LinkDowns != r.LinkUps {
		t.Errorf("flap accounting unbalanced: downs=%d ups=%d", r.LinkDowns, r.LinkUps)
	}
	// Corrupted counts per-link corruption events: a packet damaged on
	// two hops counts twice but delivers once, so delivered-corrupt is
	// bounded by (not equal to) the event count — and must be nonzero
	// when corruption fired, since the fabric never drops a packet.
	if r.CorruptedDelivered > r.Corrupted {
		t.Errorf("delivered-corrupt %d exceeds corrupted %d", r.CorruptedDelivered, r.Corrupted)
	}
	if r.Corrupted > 0 && r.CorruptedDelivered == 0 {
		t.Errorf("corrupted %d packets but none delivered corrupt", r.Corrupted)
	}
	if n.InjectedPackets == 0 || n.InjectedPackets != n.DeliveredPackets {
		t.Errorf("injected %d, delivered %d", n.InjectedPackets, n.DeliveredPackets)
	}
	if err := n.FinalCheck(); err != nil {
		t.Errorf("FinalCheck: %v", err)
	}
}

// TestCompoundFlapDuringXoffRetransmit drops Xoffs (forcing the
// watchdog's Xoff resend path) while flapping the hotspot's last-hop
// link through the same window — so resent Xoffs and the Xon that
// follows contend with a dead link, and some resends are themselves
// dropped by the probabilistic rule.
func TestCompoundFlapDuringXoffRetransmit(t *testing.T) {
	topo := mustTopo(t, 64)
	sw, port := topo.HostAttach(32) // the hotspot's attachment link
	plan := fault.NewPlan(11).
		Drop(fault.Xoff, 3).
		Rule(fault.Xoff, fault.Rule{DropProb: 0.2}).
		Flap(fault.LinkFlap{Switch: sw, Port: port, Host: -1,
			Down: 25 * sim.Microsecond, Up: 40 * sim.Microsecond})
	n := newFaultNet(t, 64, plan, testRecovery())
	installHotspot(t, n, 60*sim.Microsecond)
	n.Engine.Drain()
	r := n.FaultReport()
	if r.Dropped[stats.FaultXoff] < 3 {
		t.Fatalf("dropped xoffs = %d, want ≥ 3 (scripted)", r.Dropped[stats.FaultXoff])
	}
	if r.LinkDowns != 1 {
		t.Fatalf("flap never fired: downs=%d", r.LinkDowns)
	}
	// The dropped Xoffs left SAQs overcommitted; either the resend or
	// the Xon override must have repaired them for the drain to finish.
	if r.XoffResent == 0 && r.XonOverridden == 0 {
		t.Error("no Xoff resend or Xon override despite dropped Xoffs")
	}
	assertFaultBalance(t, n, r)
}

// TestCompoundCorruptAndDelayedControl corrupts payload packets while
// delaying and dropping the token/credit control traffic in the same
// run: recovery timers (token timeout, credit resync) race against
// control messages that are late rather than lost, and must not
// double-repair.
func TestCompoundCorruptAndDelayedControl(t *testing.T) {
	plan := fault.NewPlan(23).
		Corrupt(50).
		Drop(fault.Token, 2).
		Rule(fault.Token, fault.Rule{DelayProb: 0.3, Delay: 5 * sim.Microsecond}).
		Rule(fault.Credit, fault.Rule{DropProb: 0.002, DelayProb: 0.1, Delay: 2 * sim.Microsecond})
	n := newFaultNet(t, 64, plan, testRecovery())
	installHotspot(t, n, 50*sim.Microsecond)
	n.Engine.Drain()
	r := n.FaultReport()
	if r.Corrupted == 0 {
		t.Fatal("corruption never fired")
	}
	if r.Delayed[stats.FaultToken] == 0 {
		t.Fatal("no token was ever delayed")
	}
	if r.Dropped[stats.FaultToken] != 2 {
		t.Fatalf("dropped tokens = %d, want 2", r.Dropped[stats.FaultToken])
	}
	// Dropped credits must be fully restored once links go quiet; a
	// merely delayed credit must NOT be double-restored (the resync
	// only fires after CreditQuiet of silence, so a late credit lands
	// first). The checker's credit-bounds audit catches over-restore as
	// a violation; here we check the report side balances.
	if dropped := r.Dropped[stats.FaultCredit]; dropped > 0 {
		if r.CreditsRestored != dropped*64 {
			t.Errorf("credits restored = %d bytes, want %d (64 per dropped credit)",
				r.CreditsRestored, dropped*64)
		}
	} else if r.CreditsRestored != 0 {
		t.Errorf("restored %d credit bytes but none were dropped", r.CreditsRestored)
	}
	assertFaultBalance(t, n, r)
}

// TestCompoundFlapBothDirections flaps a core link and a host injection
// link with overlapping windows while dropping notifications, so
// congestion-tree setup, teardown and the flap recovery all interleave.
func TestCompoundFlapBothDirections(t *testing.T) {
	plan := fault.NewPlan(31).
		Drop(fault.Notify, 3).
		Flap(fault.LinkFlap{Switch: 0, Port: 4, Host: -1,
			Down: 10 * sim.Microsecond, Up: 22 * sim.Microsecond}).
		Flap(fault.LinkFlap{Host: 50,
			Down: 15 * sim.Microsecond, Up: 28 * sim.Microsecond})
	n := newFaultNet(t, 64, plan, testRecovery())
	installHotspot(t, n, 45*sim.Microsecond)
	n.Engine.Drain()
	r := n.FaultReport()
	if r.LinkDowns != 2 || r.LinkUps != 2 {
		t.Fatalf("flap accounting: downs=%d ups=%d, want 2/2", r.LinkDowns, r.LinkUps)
	}
	if r.Dropped[stats.FaultNotify] != 3 {
		t.Fatalf("dropped notifies = %d, want 3", r.Dropped[stats.FaultNotify])
	}
	assertFaultBalance(t, n, r)
}
