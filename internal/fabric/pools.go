package fabric

// This file holds the per-shard event-record free-lists. Together with
// the packet pool they make the steady-state hot path allocation-free:
// every record scheduled into an engine (transmission origins, control
// arrivals, crossbar transfers, boundary-mailbox deliveries) is
// recycled when its event fires.
//
// All lists are plain LIFO slices, deliberately not sync.Pool: each
// list is owned by exactly one shard context (one goroutine between
// barriers), and sync.Pool's GC-coupled eviction would make reuse
// patterns (and therefore any accidental stale-pointer bug)
// timing-dependent instead of reproducible.

func (sc *shardCtx) allocOrigin() *txOrigin {
	if k := len(sc.origins); k > 0 {
		o := sc.origins[k-1]
		sc.origins = sc.origins[:k-1]
		return o
	}
	return &txOrigin{}
}

func (sc *shardCtx) freeOrigin(o *txOrigin) {
	*o = txOrigin{}
	sc.origins = append(sc.origins, o)
}

func (sc *shardCtx) allocCtlEv() *ctlEv {
	if k := len(sc.ctlEvs); k > 0 {
		ev := sc.ctlEvs[k-1]
		sc.ctlEvs = sc.ctlEvs[:k-1]
		return ev
	}
	return &ctlEv{}
}

func (sc *shardCtx) freeCtlEv(ev *ctlEv) {
	*ev = ctlEv{}
	sc.ctlEvs = append(sc.ctlEvs, ev)
}

func (sc *shardCtx) allocXfer() *xferRec {
	if k := len(sc.xfers); k > 0 {
		x := sc.xfers[k-1]
		sc.xfers = sc.xfers[:k-1]
		return x
	}
	return &xferRec{}
}

func (sc *shardCtx) freeXfer(x *xferRec) {
	*x = xferRec{}
	sc.xfers = append(sc.xfers, x)
}

func (sc *shardCtx) allocMail() *mailRec {
	if k := len(sc.mails); k > 0 {
		m := sc.mails[k-1]
		sc.mails = sc.mails[:k-1]
		return m
	}
	return &mailRec{}
}

func (sc *shardCtx) freeMail(m *mailRec) {
	*m = mailRec{}
	sc.mails = append(sc.mails, m)
}
