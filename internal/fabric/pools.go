package fabric

// This file holds the Network's event-record free-lists. Together with
// the packet pool they make the steady-state hot path allocation-free:
// every record scheduled into the engine (transmission origins, control
// arrivals, crossbar transfers) is recycled when its event fires.
//
// All lists are plain LIFO slices, deliberately not sync.Pool: the
// simulation is single-goroutine per engine, and sync.Pool's
// GC-coupled eviction would make reuse patterns (and therefore any
// accidental stale-pointer bug) timing-dependent instead of
// reproducible.

func (n *Network) allocOrigin() *txOrigin {
	if k := len(n.origins); k > 0 {
		o := n.origins[k-1]
		n.origins = n.origins[:k-1]
		return o
	}
	return &txOrigin{}
}

func (n *Network) freeOrigin(o *txOrigin) {
	*o = txOrigin{}
	n.origins = append(n.origins, o)
}

func (n *Network) allocCtlEv() *ctlEv {
	if k := len(n.ctlEvs); k > 0 {
		ev := n.ctlEvs[k-1]
		n.ctlEvs = n.ctlEvs[:k-1]
		return ev
	}
	return &ctlEv{}
}

func (n *Network) freeCtlEv(ev *ctlEv) {
	*ev = ctlEv{}
	n.ctlEvs = append(n.ctlEvs, ev)
}

func (n *Network) allocXfer() *xferRec {
	if k := len(n.xfers); k > 0 {
		x := n.xfers[k-1]
		n.xfers = n.xfers[:k-1]
		return x
	}
	return &xferRec{}
}

func (n *Network) freeXfer(x *xferRec) {
	*x = xferRec{}
	n.xfers = append(n.xfers, x)
}
