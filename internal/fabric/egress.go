package fabric

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/mempool"
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/sim"
	"repro/internal/trace"
)

// egressUnit is the output side of a switch port, or a NIC injection
// port (sw == nil). It owns the port's data RAM on the egress side, the
// policy queues (plus a RECN controller when enabled), the outgoing
// link channel and the flow-control credits for the remote input
// buffer.
type egressUnit struct {
	net  *Network
	sc   *shardCtx
	sw   *Switch // nil for NIC injection ports
	nic  *NIC    // nil for switch output ports
	port int     // output port index within the switch (0 for NICs)

	pool   mempool.Pool
	qs     queueSet
	active activeList
	rc     *recn.Egress

	// chSt is the outgoing channel's storage; ch points at it once the
	// unit is attached (nil before — unattached ports have no link).
	chSt       channel
	ch         *channel
	remoteHost bool

	// Flow-control credits toward the remote input buffer: port-level
	// for 1Q/4Q/RECN and host links, queue-level for the VOQ
	// mechanisms (paper §4.1).
	portCredits  int
	queueCredits creditSet
	initPort     int
	initQueue    int
	// lastCreditAt is when a credit was last consumed or returned; the
	// credit auditor only compares counters after a quiet period.
	lastCreditAt sim.Time

	rr         int // round-robin cursor over active normal queues
	saqRR      int // round-robin cursor over SAQs
	saqScratch []*recn.SAQ
	// wrrDebt counts consecutive normal-queue grants; once it reaches
	// NormalWeight an eligible SAQ is served first (the paper's
	// weighted round-robin with normal queues preferred).
	wrrDebt int

	// Adaptive-routing notification state (PolicyARN, switch output
	// ports only). hintOn is this port's own congestion flag (hysteresis
	// on pool occupancy; transitions feed the switch-level census that
	// broadcasts hints upstream). hintStop means the switch this port
	// feeds has hinted congestion: the co-located ingress arbiter then
	// penalizes this port when steering (set/cleared by arriveCtl).
	hintOn   bool
	hintStop bool
}

// init builds the unit in place — units live in slab arenas, one
// allocation per kind for the whole fabric; channels and credits are
// wired later. rc is this port's slot in the RECN controller arena
// (nil unless PolicyRECN). Construction errors (bad pool capacity)
// surface through fabric.New's error return.
func (u *egressUnit) init(net *Network, sw *Switch, port int, terminal bool, rc *recn.Egress) error {
	cfg := net.cfg
	u.net = net
	u.sc = net.base
	u.sw = sw
	u.port = port
	if err := u.pool.Init(cfg.PortMemory); err != nil {
		return err
	}
	nq, qcap := egressQueuePlan(cfg)
	u.qs.init(&u.pool, nq, qcap, cfg.Policy == PolicyVOQnet && !cfg.EagerState)
	u.active.init(nq, !cfg.EagerState)
	if cfg.Policy == PolicyRECN {
		if err := rc.Init(cfg.RECN, port, &u.pool, u.qs.denseSlice(), terminal, u, cfg.EagerState); err != nil {
			return err
		}
		u.rc = rc
	}
	return nil
}

// egressQueuePlan returns the number of policy queues and per-queue cap
// at an output port for the configured mechanism.
func egressQueuePlan(cfg Config) (n, cap int) {
	switch cfg.Policy {
	case Policy1Q, PolicyVOQsw, PolicyThrottle, PolicyARN:
		return 1, 0
	case PolicyRECN:
		return cfg.TrafficClasses, 0
	case Policy4Q:
		return 4, 0
	case PolicyVOQnet:
		hosts := cfg.Topo.NumHosts()
		return hosts, cfg.PortMemory / hosts
	default:
		// Unreachable: Config.Validate rejects unknown policies before
		// any unit is built.
		panic(check.NewViolation(check.RuleInternal, trace.NetLoc,
			fmt.Sprintf("fabric: unknown policy %v", cfg.Policy)))
	}
}

// attach wires the outgoing channel and initializes credits for the
// remote input buffer.
func (u *egressUnit) attach(sink linkSink, remoteHost bool) {
	u.ch = &u.chSt
	u.ch.init(u.sc, u, sink)
	u.ch.loc = u.loc()
	u.remoteHost = remoteHost
	cfg := u.net.cfg
	u.portCredits = cfg.PortMemory
	u.initPort = cfg.PortMemory
	if !remoteHost {
		switch cfg.Policy {
		case PolicyVOQsw:
			ports := cfg.Topo.PortsPerSwitch()
			u.initQueue = cfg.PortMemory / ports
			u.queueCredits.init(ports, u.initQueue, false)
		case PolicyVOQnet:
			hosts := cfg.Topo.NumHosts()
			u.initQueue = cfg.PortMemory / hosts
			u.queueCredits.init(hosts, u.initQueue, !cfg.EagerState)
		}
	}
}

// creditIndex returns the remote ingress queue a packet will occupy
// (queue-level credits), or -1 for port-level credit accounting.
func (u *egressUnit) creditIndex(p *pkt.Packet) int {
	if !u.queueCredits.enabled() {
		return -1
	}
	switch u.net.cfg.Policy {
	case PolicyVOQsw:
		return int(p.NextTurn())
	case PolicyVOQnet:
		return p.Dst
	}
	return -1
}

func (u *egressUnit) hasCredit(p *pkt.Packet) bool {
	if idx := u.creditIndex(p); idx >= 0 {
		return u.queueCredits.value(idx) >= p.Size
	}
	return u.portCredits >= p.Size
}

func (u *egressUnit) consumeCredit(p *pkt.Packet) {
	u.lastCreditAt = u.sc.eng.Now()
	if idx := u.creditIndex(p); idx >= 0 {
		*u.queueCredits.slot(idx) -= p.Size
		return
	}
	u.portCredits -= p.Size
}

// addCredit applies a returned credit and retries transmission.
func (u *egressUnit) addCredit(c creditMsg) {
	u.lastCreditAt = u.sc.eng.Now()
	if c.queue >= 0 && u.queueCredits.enabled() {
		*u.queueCredits.slot(c.queue) += c.bytes
	} else {
		u.portCredits += c.bytes
	}
	u.ch.kick()
}

// checkCredits verifies all credits returned (quiesce invariant).
// Untouched lazy counters hold exactly the initial value, so only
// materialized slots need the comparison.
func (u *egressUnit) checkCredits() error {
	if u.portCredits != u.initPort {
		return fmt.Errorf("port credits %d, want %d", u.portCredits, u.initPort)
	}
	var err error
	u.queueCredits.forEachSlot(func(i int, slot *int) {
		if err == nil && *slot != u.initQueue {
			err = fmt.Errorf("queue %d credits %d, want %d", i, *slot, u.initQueue)
		}
	})
	return err
}

// classify returns the queue an arriving packet goes to. hop indexes
// the packet's remaining route as seen by the next switch.
func (u *egressUnit) classify(p *pkt.Packet, hop int) queueHandle {
	switch u.net.cfg.Policy {
	case Policy1Q, PolicyVOQsw, PolicyThrottle, PolicyARN:
		return queueHandle{u.qs.at(0), 0}
	case Policy4Q:
		best := 0
		for i := 1; i < u.qs.len(); i++ {
			if u.qs.at(i).QueuedBytes() < u.qs.at(best).QueuedBytes() {
				best = i
			}
		}
		return queueHandle{u.qs.at(best), best}
	case PolicyVOQnet:
		return queueHandle{u.qs.get(p.Dst), p.Dst}
	case PolicyRECN:
		if s := u.rc.Classify(p.Route, hop); s != nil {
			return queueHandle{s.Q, -1}
		}
		cls := int(p.Class)
		return queueHandle{u.qs.at(cls), cls}
	}
	u.net.fatalf(check.RuleInternal, u.loc(), "unknown policy %v", u.net.cfg.Policy)
	return queueHandle{}
}

// admitProbe reports whether a packet can be accepted right now (buffer
// space only). hop is the route position after this port (p.Hop+1 when
// probing from the crossbar, p.Hop at a NIC). Probes never materialize
// a lazy queue — an untouched destination queue answers from the pool
// headroom alone.
func (u *egressUnit) admitProbe(p *pkt.Packet, hop int) bool {
	if u.rc != nil {
		if s := u.rc.Classify(p.Route, hop); s != nil {
			return s.Q.CanAccept(p.Size)
		}
		return u.qs.at(int(p.Class)).CanAccept(p.Size)
	}
	if u.net.cfg.Policy == PolicyVOQnet {
		return u.qs.canAccept(p.Dst, p.Size)
	}
	h := u.classify(p, hop)
	return h.q.CanAccept(p.Size)
}

// gated reports the internal Xon/Xoff stop signal of the target SAQ
// (paper §3.7). It applies only to transmissions from same-switch
// ingress SAQs (and the NIC admittance pump) — never to normal-queue
// packets, which would otherwise suffer the very HOL blocking RECN
// eliminates.
func (u *egressUnit) gated(p *pkt.Packet, hop int) bool {
	return u.rc != nil && u.rc.GatedInternally(p.Route, hop)
}

// storePacket accepts a packet into the port (from the crossbar, or
// from the NIC admittance pump with fromIngress == -1). The packet's
// Hop must already point at the next switch.
func (u *egressUnit) storePacket(p *pkt.Packet, fromIngress int) {
	var s *recn.SAQ
	var h queueHandle
	if u.rc != nil {
		if s = u.rc.Classify(p.Route, p.Hop); s != nil {
			h = queueHandle{s.Q, -1}
		} else {
			h = queueHandle{u.qs.at(int(p.Class)), int(p.Class)}
		}
	} else {
		h = u.classify(p, p.Hop)
	}
	h.q.Push(p.Size, p)
	if h.idx >= 0 {
		u.active.add(h.idx)
	}
	if u.rc != nil {
		u.rc.OnStored(s, fromIngress, p.Size)
	}
	if u.sw != nil && u.net.cfg.Policy == PolicyARN {
		u.updateHint()
	}
	u.ch.kick()
}

// updateHint runs the per-port congestion hysteresis (PolicyARN, switch
// output ports only) and feeds transitions into the switch-level census
// that broadcasts hints upstream.
func (u *egressUnit) updateHint() {
	used := u.pool.Used()
	cfg := &u.net.cfg.ARN
	if !u.hintOn && used >= cfg.HintOnBytes {
		u.hintOn = true
		if u.sc.rec != nil {
			u.sc.rec.Record(trace.EvHint, u.loc(), "on", int64(used), 0, 0)
		}
		u.sw.hintTransition(true)
	} else if u.hintOn && used < cfg.HintOffBytes {
		u.hintOn = false
		if u.sc.rec != nil {
			u.sc.rec.Record(trace.EvHint, u.loc(), "off", int64(used), 0, 0)
		}
		u.sw.hintTransition(false)
	}
}

// pickData implements dataSource: the output link arbiter (paper §4.1:
// weighted round robin, normal queues preferred over SAQs, boosted
// token-owning SAQs first).
func (u *egressUnit) pickData() *txOrigin {
	if u.rc != nil {
		// Highest priority: near-empty token-owning SAQs (paper §3.8).
		if o := u.pickSAQ(true); o != nil {
			return o
		}
		if u.wrrDebt >= u.net.cfg.NormalWeight {
			if o := u.pickSAQ(false); o != nil {
				return o
			}
		}
	}
	if o := u.pickNormal(); o != nil {
		return o
	}
	if u.rc != nil {
		return u.pickSAQ(false)
	}
	return nil
}

func (u *egressUnit) pickNormal() *txOrigin {
	if u.rc != nil {
		// RECN: scan the class queues directly (round-robin) so markers
		// placed by the controller (which bypass the active list) are
		// always peeled.
		n := u.qs.len()
		for i := 0; i < n; i++ {
			idx := (u.rr + i) % n
			q := u.qs.at(idx)
			p, ok := peelHead(q, u.rc.ResolveMarker)
			if !ok || !u.hasCredit(p) {
				continue
			}
			u.rr = idx + 1
			u.wrrDebt++
			return u.grant(queueHandle{q, idx}, nil, p)
		}
		return nil
	}
	// Round-robin over the non-empty queues. The list can shrink while
	// scanning; every iteration either removes an entry or advances
	// `tried`, so the loop terminates.
	tried := 0
	for u.active.len() > 0 && tried < u.active.len() {
		idx := u.active.at(u.rr % u.active.len())
		q := u.qs.at(idx)
		p, ok := peelHead(q, nil)
		if !ok {
			u.active.remove(idx)
			continue
		}
		if !u.hasCredit(p) {
			u.rr++
			tried++
			continue
		}
		u.rr++
		return u.grant(queueHandle{q, idx}, nil, p)
	}
	return nil
}

func (u *egressUnit) pickSAQ(boostedOnly bool) *txOrigin {
	if u.rc.ActiveSAQs() == 0 {
		return nil
	}
	saqs := u.saqScratch[:0]
	u.rc.ForEachSAQ(func(s *recn.SAQ) { saqs = append(saqs, s) })
	u.saqScratch = saqs[:0]
	n := len(saqs)
	for i := 0; i < n; i++ {
		s := saqs[(u.saqRR+i)%n]
		// Peel markers first (allowed even while the SAQ is blocked —
		// popping a marker is a control-RAM operation, not a packet
		// transmission).
		p, ok := peelHead(s.Q, u.rc.ResolveMarker)
		if !ok {
			continue
		}
		if boostedOnly && !u.rc.Boosted(s) {
			continue
		}
		if !u.rc.EligibleTx(s) {
			continue
		}
		if !u.hasCredit(p) {
			continue
		}
		u.saqRR = (u.saqRR + i + 1) % n
		u.wrrDebt = 0
		return u.grant(queueHandle{s.Q, -1}, s, p)
	}
	return nil
}

func (u *egressUnit) grant(h queueHandle, s *recn.SAQ, p *pkt.Packet) *txOrigin {
	if u.net.check != nil && s != nil && !u.rc.EligibleTx(s) {
		u.net.check.Fatalf(check.RuleXoffTransmit, u.loc(),
			"SAQ %v granted the link while stopped", s.Path)
	}
	h.q.Pop()
	if h.idx >= 0 && h.q.Entries() == 0 {
		u.active.remove(h.idx)
	}
	u.consumeCredit(p)
	// ECN, marked on dequeue rather than enqueue: the departing packet
	// carries the congestion bit, so the destination learns about a
	// full buffer after one path traversal at line rate instead of
	// after the whole backlog ahead of the packet drains — in a
	// saturated tree the difference is the feedback loop closing
	// within the hotspot window versus after the run ends.
	if u.sw != nil && u.net.cfg.Policy == PolicyThrottle &&
		!p.Marked && u.pool.Used() >= u.net.cfg.Throttle.MarkBytes {
		p.Marked = true
		if u.sc.rec != nil {
			u.sc.rec.Record(trace.EvMark, u.loc(), "", int64(p.Src), int64(u.pool.Used()), 0)
		}
	}
	o := u.sc.allocOrigin()
	o.p, o.q, o.saq, o.bytes = p, h, s, p.Size
	return o
}

// txDone implements dataSource: the packet has fully left the RAM.
func (u *egressUnit) txDone(o *txOrigin) {
	o.q.q.ReleaseResident(o.bytes)
	if u.rc != nil {
		u.rc.OnDrained(o.saq)
	}
	if u.sw != nil && u.net.cfg.Policy == PolicyARN {
		u.updateHint()
	}
	if u.sw != nil {
		// Output buffer space freed: inputs blocked on it may proceed.
		u.sw.kickAllInputs()
	} else {
		u.nic.pump()
	}
}

// --- recn.EgressEffects ---

// NotifyIngress delivers an internal congestion notification to input
// port `ingress` of the same switch (instantaneous: intra-switch
// signaling is far below link-serialization timescales).
func (u *egressUnit) NotifyIngress(ingress int, path pkt.Path) bool {
	if u.sw == nil {
		u.net.fatalf(check.RuleInternal, u.loc(), "NIC injection port notified an ingress")
	}
	in := u.sw.in[ingress]
	if in == nil || in.rc == nil {
		return false
	}
	ok := in.rc.OnNotifyLocal(path)
	if u.sc.rec != nil {
		// Recorded at the receiving ingress: the path is anchored at
		// this switch, which is what the root resolver expects.
		accepted := int64(0)
		if ok {
			accepted = 1
		}
		u.sc.rec.Record(trace.EvNotify, in.loc(), path.Key(), 1, accepted, 0)
	}
	if ok {
		// A marker was placed in the ingress normal queue; ensure the
		// arbiter runs so it can be peeled even if no further packets
		// arrive at that port.
		in.kick()
		u.sc.scheduleSweep()
	}
	return ok
}

// SendTokenDownstream forwards a token over the link (paper §3.5).
func (u *egressUnit) SendTokenDownstream(path pkt.Path, refused bool) {
	if u.sc.rec != nil {
		ref := int64(0)
		if refused {
			ref = 1
		}
		u.sc.rec.Record(trace.EvToken, u.loc(), path.Key(), ref, 0, 0)
	}
	u.ch.pushCtl(recn.CtlMsg{Kind: recn.MsgToken, Path: path, Refused: refused})
}

var _ recn.EgressEffects = (*egressUnit)(nil)
var _ dataSource = (*egressUnit)(nil)
