// Package fabric assembles the full simulated network: switches with
// input/output buffered ports and a multiplexed crossbar, full-duplex
// pipelined links carrying data and control traffic, NICs with
// admittance and injection queues, credit-based flow control, and the
// five queuing mechanisms the paper compares (1Q, 4Q, VOQsw, VOQnet and
// RECN).
//
// The model follows the paper's Section 4.1: 8 Gbps links, a 12 Gbps
// multiplexed crossbar per switch, 128 KB of data RAM per port shared
// by dynamically allocated queues, port-level credits (queue-level for
// the VOQ mechanisms), per-SAQ Xon/Xoff, and control packets that share
// link bandwidth with data.
package fabric

import (
	"fmt"
	"strings"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/throttle"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
)

// Policy selects the queue organization at every port (paper §4.3).
type Policy int

const (
	// Policy1Q: a single queue per input and output port (worst case).
	Policy1Q Policy = iota
	// Policy4Q: four queues per port; packets go to the least occupied
	// (virtual channels).
	Policy4Q
	// PolicyVOQsw: per input port, one queue per switch output port.
	PolicyVOQsw
	// PolicyVOQnet: one queue per final destination at every input and
	// output port (the non-scalable best case).
	PolicyVOQnet
	// PolicyRECN: one queue for uncongested flows plus dynamically
	// allocated SAQs (the paper's proposal).
	PolicyRECN
	// PolicyThrottle: single queues (as 1Q) plus end-point injection
	// throttling — ECN marks at congested output queues, destination
	// CNPs back to the marked source, and a per-source AIMD injection
	// pacer at the NIC (the DCQCN family; internal/throttle).
	PolicyThrottle
	// PolicyARN: single queues (as 1Q) plus adaptive-routing
	// notifications — congested switches broadcast hints upstream, and
	// ingress arbiters steer packets to an alternate interchangeable
	// up port where the topology offers one (see steer).
	PolicyARN
)

// Policies lists all mechanisms: the five in the order the paper
// presents them, then the congestion-management extensions (appended at
// the end so the paper figures' policy order — and with it every
// existing golden — is untouched).
var Policies = []Policy{PolicyVOQnet, Policy1Q, PolicyVOQsw, Policy4Q, PolicyRECN, PolicyThrottle, PolicyARN}

func (p Policy) String() string {
	switch p {
	case Policy1Q:
		return "1Q"
	case Policy4Q:
		return "4Q"
	case PolicyVOQsw:
		return "VOQsw"
	case PolicyVOQnet:
		return "VOQnet"
	case PolicyRECN:
		return "RECN"
	case PolicyThrottle:
		return "throttle"
	case PolicyARN:
		return "arn"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PreservesOrder reports whether the mechanism keeps each flow's
// packets in injection order. 4Q spreads a flow across queues by
// occupancy, and arn re-routes packets mid-flow past queued siblings —
// both reorder by design (for arn this is the classic adaptive-routing
// cost the paper's in-order RECN avoids; see DESIGN.md §16). All other
// mechanisms must deliver in order, and the test battery asserts it.
func (p Policy) PreservesOrder() bool {
	return p != Policy4Q && p != PolicyARN
}

// ParsePolicy converts a mechanism name to a Policy (case-insensitive).
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if strings.EqualFold(p.String(), s) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("fabric: unknown policy %q (valid: %s)", s, PolicyNames())
}

// PolicyNames returns every mechanism name ParsePolicy accepts, for
// error messages and usage strings.
func PolicyNames() string {
	names := make([]string, len(Policies))
	for i, p := range Policies {
		names[i] = p.String()
	}
	return strings.Join(names, ", ")
}

// Topology is what the fabric needs from a network graph: port wiring,
// host attachment and deterministic source routes. The perfect-shuffle
// MINs of the paper (*topology.Topology) implement it, and so does the
// 2D mesh (*topology.Mesh) — RECN itself is topology-agnostic as long
// as routing is deterministic (the remaining path from any switch to a
// destination must be unique, paper §3).
type Topology interface {
	NumHosts() int
	NumSwitches() int
	// PortsPerSwitch bounds port indices; unused ports answer
	// Peer(...).Kind == KindNone.
	PortsPerSwitch() int
	Peer(sw, port int) topology.End
	HostAttach(host int) (sw, port int)
	Route(src, dst int) (pkt.Route, error)
}

// Config describes one network instance.
type Config struct {
	// Topo is the network topology (required).
	Topo Topology
	// Policy is the queuing mechanism.
	Policy Policy
	// PacketSize in bytes (the paper uses 64 and 512).
	PacketSize int
	// PortMemory is the data RAM per port in bytes (default 128 KB;
	// the paper uses 192 KB for the 512-host network under VOQnet).
	PortMemory int
	// LinkLatency is the pipelined link fly time.
	LinkLatency sim.Time
	// CreditSize is the wire size of a credit return.
	CreditSize int
	// NormalWeight is the weighted-round-robin preference of normal
	// queues over SAQs: out of NormalWeight+1 grants at most one goes
	// to a SAQ while normal traffic is waiting.
	NormalWeight int
	// AdmitCap bounds each NIC admittance queue (host buffering per
	// destination): a new message is discarded at the host when its
	// queue already holds at least this many bytes. 0 = unbounded.
	// Finite host buffers are what lets a hotspot's backlog drain in
	// the hundreds of microseconds the paper's recovery curves show,
	// rather than persisting for milliseconds.
	AdmitCap int
	// TrafficClasses is the number of queues for uncongested flows at
	// every RECN port (paper footnote 1: several such queues provide
	// multiple traffic classes; one is enough for congestion
	// management). Packets carry a class chosen at injection.
	TrafficClasses int
	// RECN holds the controller thresholds (used only by PolicyRECN).
	RECN recn.Config
	// Throttle holds the ECN/AIMD tunables (used only by
	// PolicyThrottle).
	Throttle throttle.Config
	// ARN holds the adaptive-routing hint thresholds (used only by
	// PolicyARN).
	ARN ARNConfig
	// Faults, when non-nil, injects the plan's faults into the links.
	// Plans are single-use: a plan already bound to another network is
	// rejected by New.
	Faults *fault.Plan
	// Recovery enables the watchdog/recovery layer. The zero value
	// disables it entirely (no events scheduled, hot path unchanged).
	Recovery fault.Recovery
	// Tracer, when non-nil, records simulation events into the flight
	// recorder. Like Faults, recorders are single-use: one already
	// bound to another network is rejected by New. nil keeps every
	// hook down to a single pointer comparison.
	Tracer *trace.Recorder
	// Checker, when non-nil, runs the runtime invariant checker
	// (internal/check): periodic conservation/lifecycle/progress audits
	// with structured violations. Checkers are single-use, like Faults
	// and Tracer; nil keeps every hook down to a single nil comparison.
	Checker *check.Checker
	// EagerState disables lazy queue/credit materialization, restoring
	// the fully preallocated per-port state of the pre-slab fabric.
	// Lazy and eager runs are bit-identical by construction (untouched
	// state behaves exactly like freshly built state, and materialized
	// entries are visited in dense index order); the flag exists so the
	// golden tests can assert that equivalence and so the scaling
	// figures can measure the eager footprint at small sizes.
	EagerState bool
}

// DefaultConfig returns the evaluation defaults for a topology.
func DefaultConfig(topo Topology) Config {
	mem := units.PortMemory
	return Config{
		Topo:        topo,
		Policy:      PolicyRECN,
		PacketSize:  64,
		PortMemory:  mem,
		LinkLatency: 20 * sim.Nanosecond,
		CreditSize:  8,
		// Normal queues are preferred over SAQs, but a hard service
		// ratio would throttle SAQ-captured flows below their offered
		// load and make congestion self-sustaining; alternation
		// (weight 1) preserves the preference while staying
		// work-conserving for the set-aside traffic.
		NormalWeight:   1,
		AdmitCap:       12 * 1024,
		TrafficClasses: 1,
		RECN:           recn.DefaultConfig(),
		Throttle:       throttle.DefaultConfig(),
		ARN:            DefaultARNConfig(),
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Topo == nil {
		return fmt.Errorf("fabric: nil topology")
	}
	switch c.Policy {
	case Policy1Q, Policy4Q, PolicyVOQsw, PolicyVOQnet, PolicyRECN, PolicyThrottle, PolicyARN:
	default:
		return fmt.Errorf("fabric: unknown policy %v (valid: %s)", c.Policy, PolicyNames())
	}
	if c.PacketSize <= 0 || c.PacketSize > c.PortMemory {
		return fmt.Errorf("fabric: packet size %d vs port memory %d", c.PacketSize, c.PortMemory)
	}
	if c.LinkLatency < 0 {
		return fmt.Errorf("fabric: negative link latency")
	}
	if c.CreditSize <= 0 {
		return fmt.Errorf("fabric: credit size %d", c.CreditSize)
	}
	if c.NormalWeight < 1 {
		return fmt.Errorf("fabric: normal weight %d < 1", c.NormalWeight)
	}
	if c.AdmitCap < 0 {
		return fmt.Errorf("fabric: negative admittance cap")
	}
	if c.TrafficClasses < 1 || c.TrafficClasses > 256 {
		return fmt.Errorf("fabric: traffic classes %d outside [1, 256]", c.TrafficClasses)
	}
	if c.Policy == PolicyRECN {
		if err := c.RECN.Validate(); err != nil {
			return err
		}
	}
	if c.Policy == PolicyThrottle {
		if err := c.Throttle.Validate(); err != nil {
			return err
		}
	}
	if c.Policy == PolicyARN {
		if err := c.ARN.Validate(); err != nil {
			return err
		}
	}
	if c.Policy == PolicyVOQnet && c.PortMemory/c.Topo.NumHosts() < c.PacketSize {
		return fmt.Errorf("fabric: VOQnet queue capacity %d bytes cannot hold a %d-byte packet (raise PortMemory, the paper uses 192 KB for 512 hosts)",
			c.PortMemory/c.Topo.NumHosts(), c.PacketSize)
	}
	return nil
}

// Network is one fully wired simulation instance. All methods must be
// called from the simulation goroutine (in windowed mode: from barrier
// context — see Shard and RunWindowed in window.go).
type Network struct {
	// Engine is the global event engine: the only engine in legacy
	// mode, the coordinator engine (periodic drivers, link flaps) in
	// windowed mode.
	Engine *sim.Engine
	cfg    Config
	topo   Topology

	switches []*Switch
	nics     []*NIC

	// Slab arenas backing the per-port objects: one allocation per kind
	// for the whole fabric instead of one per port. switches/nics and
	// the units' own pointers index into these; outSlab additionally
	// holds the NIC injection ports at slots nSwitches*ports+host. The
	// RECN controller slabs exist only under PolicyRECN.
	swSlab    []Switch
	inSlab    []ingressUnit
	outSlab   []egressUnit
	nicSlab   []NIC
	rcInSlab  []recn.Ingress
	rcOutSlab []recn.Egress

	sweepPending bool

	// base is the legacy/coordinator shard context: it aliases Engine
	// and the embedded aggregate counters, and owns the free-lists in
	// legacy mode. shards/group exist only after Shard (windowed mode).
	base       *shardCtx
	shards     []*shardCtx
	group      *sim.ShardGroup
	windowStep sim.Time
	hostShard  []int32
	// remoteMark tracks per-host ScheduleRemote calls (windowed mode):
	// each entry is written only by the owning host's shard, and gives
	// cross-stream injections a shard-count-invariant order key.
	remoteMark []remoteMark
	// windowsDone marks the windowed run as finished (per-shard stats
	// folded, worker goroutines released).
	windowsDone bool

	// Prebound periodic-event thunks: binding the method values once at
	// construction keeps the rearm paths allocation-free.
	runSweepFn     func()
	watchdogTickFn func()
	traceSampleFn  func()
	checkTickFn    func()

	// Flight recorder (nil when tracing is disabled).
	rec            *trace.Recorder
	probes         []traceProbe
	samplerPending bool

	// Fault injection and recovery (nil / zero when disabled).
	faults   *fault.Plan
	recovery fault.Recovery
	report   *stats.FaultReport
	watchdog watchdogState

	// Runtime invariant checker (nil when disabled).
	check      *check.Checker
	checkState checkerState

	// OnDeliver, when set, observes every packet at the instant it is
	// fully delivered to its destination host. The packet is recycled
	// into the injection pool as soon as the callback returns, so
	// observers must copy any fields they need and must not retain p.
	// Windowed mode uses per-shard observers instead (SetShardOnDeliver).
	OnDeliver func(p *pkt.Packet)

	// Aggregate counters (InjectedPackets, DeliveredBytes, ...). In
	// windowed mode these are barrier-consistent sums over the shards.
	netCounters
}

// New builds a network. The engine clock starts at zero.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		Engine: sim.NewEngine(),
		cfg:    cfg,
		topo:   cfg.Topo,
	}
	n.base = &shardCtx{
		n:       n,
		id:      -1,
		eng:     n.Engine,
		cnt:     &n.netCounters,
		lastSeq: make(map[uint64]uint64),
	}
	n.runSweepFn = n.runSweep
	n.watchdogTickFn = n.watchdogTick
	n.traceSampleFn = n.traceSample
	n.checkTickFn = n.checkTick
	// Construction and wiring order is load-bearing: switches, NICs and
	// (transitively) channels live in slices iterated by index, never in
	// maps, so unit creation order — and with it every derived identity
	// (wiring-order channel IDs, shard partition boundaries, mailbox
	// merge keys, per-channel fault-stream salts) — is the same on every
	// run. Audited when the windowed runtime landed: no construction or
	// per-event path in this package ranges over a map (the one map, the
	// base context's lastSeq, is only ever indexed).
	topo := cfg.Topo
	nSw := topo.NumSwitches()
	hosts := topo.NumHosts()
	ports := topo.PortsPerSwitch()
	n.swSlab = make([]Switch, nSw)
	n.inSlab = make([]ingressUnit, nSw*ports)
	n.outSlab = make([]egressUnit, nSw*ports+hosts)
	n.nicSlab = make([]NIC, hosts)
	if cfg.Policy == PolicyRECN {
		n.rcInSlab = make([]recn.Ingress, nSw*ports)
		n.rcOutSlab = make([]recn.Egress, nSw*ports+hosts)
	}
	n.switches = make([]*Switch, nSw)
	for id := range n.switches {
		sw := &n.swSlab[id]
		if err := sw.init(n, id); err != nil {
			return nil, err
		}
		n.switches[id] = sw
	}
	n.nics = make([]*NIC, hosts)
	for h := range n.nics {
		nic := &n.nicSlab[h]
		var rc *recn.Egress
		if n.rcOutSlab != nil {
			rc = &n.rcOutSlab[nSw*ports+h]
		}
		if err := nic.init(n, h, &n.outSlab[nSw*ports+h], rc); err != nil {
			return nil, err
		}
		n.nics[h] = nic
	}
	// Wire channels now that all units exist. Wiring errors (a topology
	// whose Peer/HostAttach answers are inconsistent) surface here as
	// validation errors rather than construction-time panics.
	for _, sw := range n.switches {
		if err := sw.wire(); err != nil {
			return nil, err
		}
	}
	for _, nic := range n.nics {
		if err := nic.wire(); err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil || cfg.Recovery.Enabled {
		n.report = &stats.FaultReport{}
		n.base.report = n.report
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Bind(n.report); err != nil {
			return nil, err
		}
		n.faults = cfg.Faults
		if err := n.applyFlaps(); err != nil {
			return nil, err
		}
	}
	if cfg.Recovery.Enabled {
		n.recovery = cfg.Recovery.WithDefaults()
	}
	if cfg.Tracer != nil {
		if err := n.installTracer(cfg.Tracer); err != nil {
			return nil, err
		}
	}
	if cfg.Checker != nil {
		if err := n.installChecker(cfg.Checker); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Tracer returns the flight recorder, or nil when tracing is disabled.
func (n *Network) Tracer() *trace.Recorder { return n.rec }

// applyFlaps schedules the plan's link-failure windows.
func (n *Network) applyFlaps() error {
	for i, f := range n.faults.Flaps {
		ch, err := n.flapChannel(f)
		if err != nil {
			return fmt.Errorf("fault: flap %d: %w", i, err)
		}
		n.Engine.Schedule(f.Down, func() {
			ch.down = true
			n.report.LinkDowns++
			if n.rec != nil {
				n.rec.Record(trace.EvFault, ch.loc, "link", 0, trace.FaultLinkDown, 0)
			}
		})
		n.Engine.Schedule(f.Up, func() {
			ch.down = false
			n.report.LinkUps++
			if n.rec != nil {
				n.rec.Record(trace.EvFault, ch.loc, "link", 0, trace.FaultLinkUp, 0)
			}
			ch.kick()
		})
	}
	return nil
}

// flapChannel resolves the link direction a flap addresses.
func (n *Network) flapChannel(f fault.LinkFlap) (*channel, error) {
	if f.Host >= 0 {
		if f.Host >= len(n.nics) {
			return nil, fmt.Errorf("host %d outside [0, %d)", f.Host, len(n.nics))
		}
		return n.nics[f.Host].inj.ch, nil
	}
	if f.Switch < 0 || f.Switch >= len(n.switches) {
		return nil, fmt.Errorf("switch %d outside [0, %d)", f.Switch, len(n.switches))
	}
	sw := n.switches[f.Switch]
	if f.Port < 0 || f.Port >= len(sw.out) || sw.out[f.Port] == nil {
		return nil, fmt.Errorf("switch %d has no output port %d", f.Switch, f.Port)
	}
	return sw.out[f.Port].ch, nil
}

// FaultReport returns the fault/recovery accounting, or nil when
// neither fault injection nor recovery is configured.
func (n *Network) FaultReport() *stats.FaultReport { return n.report }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Topology returns the network topology.
func (n *Network) Topology() Topology { return n.topo }

// NIC returns the network interface of a host.
func (n *Network) NIC(host int) *NIC { return n.nics[host] }

// Switch returns a switch by ID.
func (n *Network) Switch(id int) *Switch { return n.switches[id] }

// InjectMessage generates a message of the given size at src destined
// to dst at the current simulation time (traffic class 0). The message
// is packetized into PacketSize packets and stored in the NIC
// admittance queue for dst.
func (n *Network) InjectMessage(src, dst, size int) error {
	return n.InjectMessageClass(src, dst, size, 0)
}

// InjectMessageClass is InjectMessage with an explicit traffic class
// (must be below Config.TrafficClasses).
func (n *Network) InjectMessageClass(src, dst, size int, class uint8) error {
	if src == dst {
		return fmt.Errorf("fabric: message from host %d to itself", src)
	}
	if src < 0 || src >= len(n.nics) || dst < 0 || dst >= len(n.nics) {
		return fmt.Errorf("fabric: message %d→%d out of range", src, dst)
	}
	if size <= 0 {
		return fmt.Errorf("fabric: message size %d", size)
	}
	if int(class) >= n.cfg.TrafficClasses {
		return fmt.Errorf("fabric: class %d outside the %d configured", class, n.cfg.TrafficClasses)
	}
	nic := n.nics[src]
	if err := nic.injectMessage(dst, size, class); err != nil {
		return err
	}
	if nic.sc.sharded {
		// Windowed mode: record arm requests for the coordinator-run
		// periodic drivers; the barrier collects and schedules them.
		nic.sc.armSharded()
		return nil
	}
	n.armWatchdog()
	n.armTraceSampler()
	n.armChecker()
	return nil
}

// idleSweepPeriod is how often idle never-used SAQs are collected so
// their tokens return and congestion trees can collapse (see
// recn.SweepIdle). Sweeps self-schedule only while SAQs exist, so a
// quiescent network drains its event queue.
const idleSweepPeriod = 50 * sim.Microsecond

// scheduleSweep arms the idle-SAQ sweep (deduplicated). Called whenever
// a SAQ may have been allocated.
func (n *Network) scheduleSweep() {
	if n.sweepPending || n.cfg.Policy != PolicyRECN {
		return
	}
	n.sweepPending = true
	n.Engine.After(idleSweepPeriod, n.runSweepFn)
}

func (n *Network) runSweep() {
	n.sweepPending = false
	for _, sw := range n.switches {
		for _, in := range sw.in {
			if in != nil && in.rc != nil {
				in.rc.SweepIdle()
			}
		}
		for _, out := range sw.out {
			if out != nil && out.rc != nil {
				out.rc.SweepIdle()
			}
		}
	}
	for _, nic := range n.nics {
		if nic.inj.rc != nil {
			nic.inj.rc.SweepIdle()
		}
	}
	if total, _, _ := n.SAQUsage(); total > 0 {
		n.sweepPending = true
		n.Engine.After(idleSweepPeriod, n.runSweepFn)
	}
}

// SAQUsage returns the current total number of allocated SAQs in the
// whole network and the maximum per ingress and egress port (the series
// plotted in the paper's Figures 4–6). NIC injection ports count as
// egress ports.
func (n *Network) SAQUsage() (total, maxIngress, maxEgress int) {
	for _, sw := range n.switches {
		for _, in := range sw.in {
			if in == nil || in.rc == nil {
				continue
			}
			c := in.rc.ActiveSAQs()
			total += c
			if c > maxIngress {
				maxIngress = c
			}
		}
		for _, out := range sw.out {
			if out == nil || out.rc == nil {
				continue
			}
			c := out.rc.ActiveSAQs()
			total += c
			if c > maxEgress {
				maxEgress = c
			}
		}
	}
	for _, nic := range n.nics {
		if nic.inj.rc == nil {
			continue
		}
		c := nic.inj.rc.ActiveSAQs()
		total += c
		if c > maxEgress {
			maxEgress = c
		}
	}
	return total, maxIngress, maxEgress
}

// RECNStats aggregates the controller event counters over the whole
// network (all ingress and egress controllers plus NIC injection
// ports). Zero value when the policy is not RECN.
func (n *Network) RECNStats() recn.Stats {
	var agg recn.Stats
	add := func(s recn.Stats) {
		agg.Allocs += s.Allocs
		agg.Deallocs += s.Deallocs
		agg.Refusals += s.Refusals
		agg.NotifySent += s.NotifySent
		agg.TokensSent += s.TokensSent
		agg.XoffSent += s.XoffSent
		agg.XonSent += s.XonSent
		agg.StaleMsgs += s.StaleMsgs
		agg.MarkersPlaced += s.MarkersPlaced
	}
	for _, sw := range n.switches {
		for _, in := range sw.in {
			if in != nil && in.rc != nil {
				add(in.rc.Stats())
			}
		}
		for _, out := range sw.out {
			if out != nil && out.rc != nil {
				add(out.rc.Stats())
			}
		}
	}
	for _, nic := range n.nics {
		if nic.inj.rc != nil {
			add(nic.inj.rc.Stats())
		}
	}
	return agg
}

// RootCount returns how many output ports are currently congestion-tree
// roots.
func (n *Network) RootCount() int {
	count := 0
	for _, sw := range n.switches {
		for _, out := range sw.out {
			if out != nil && out.rc != nil && out.rc.Root() {
				count++
			}
		}
	}
	return count
}

// PendingPackets returns injected minus delivered packets — zero after
// the network quiesces (the losslessness check). Windowed mode: the
// counters are barrier-consistent aggregates, so call from barrier
// context only.
func (n *Network) PendingPackets() uint64 {
	return n.InjectedPackets - n.DeliveredPackets
}

// liveXferCount returns the crossbar transfers currently in flight
// (summed over shards in windowed mode; barrier context only).
func (n *Network) liveXferCount() int {
	if n.shards == nil {
		return n.base.liveXfers
	}
	c := 0
	for _, sc := range n.shards {
		c += sc.liveXfers
	}
	return c
}

// CheckQuiesced verifies end-of-run invariants: every packet delivered,
// all RAM released, all credits returned, all SAQs deallocated and no
// congestion roots left. It returns a descriptive error on violation.
func (n *Network) CheckQuiesced() error {
	if n.PendingPackets() != 0 {
		return fmt.Errorf("fabric: %d packets still pending", n.PendingPackets())
	}
	for _, sw := range n.switches {
		for p, in := range sw.in {
			if in == nil {
				continue
			}
			if in.pool.Used() != 0 {
				return fmt.Errorf("fabric: switch %d in[%d] RAM leak: %d bytes", sw.id, p, in.pool.Used())
			}
			if in.rc != nil && in.rc.ActiveSAQs() != 0 {
				return fmt.Errorf("fabric: switch %d in[%d] leaks %d SAQs", sw.id, p, in.rc.ActiveSAQs())
			}
		}
		for p, out := range sw.out {
			if out == nil {
				continue
			}
			if out.pool.Used() != 0 {
				return fmt.Errorf("fabric: switch %d out[%d] RAM leak: %d bytes", sw.id, p, out.pool.Used())
			}
			if out.rc != nil {
				if out.rc.ActiveSAQs() != 0 {
					return fmt.Errorf("fabric: switch %d out[%d] leaks %d SAQs", sw.id, p, out.rc.ActiveSAQs())
				}
				if out.rc.Root() {
					return fmt.Errorf("fabric: switch %d out[%d] still a root", sw.id, p)
				}
			}
			if err := out.checkCredits(); err != nil {
				return fmt.Errorf("fabric: switch %d out[%d]: %w", sw.id, p, err)
			}
		}
	}
	if n.cfg.Policy == PolicyARN {
		for _, sw := range n.switches {
			if sw.congOut != 0 {
				return fmt.Errorf("fabric: switch %d still reports %d congested outputs after quiesce", sw.id, sw.congOut)
			}
			for p, out := range sw.out {
				if out == nil {
					continue
				}
				if out.hintOn {
					return fmt.Errorf("fabric: switch %d out[%d] hint still on after quiesce", sw.id, p)
				}
				// A dropped hint-off (fault injection classifies hints as
				// droppable notifications) legitimately leaves hintStop
				// stale — it only costs routing quality, never
				// correctness — so assert it clear only on fault-free runs.
				if out.hintStop && n.faults == nil {
					return fmt.Errorf("fabric: switch %d out[%d] hint-stop stale after quiesce", sw.id, p)
				}
			}
		}
	}
	for h, nic := range n.nics {
		if nic.inj.pool.Used() != 0 {
			return fmt.Errorf("fabric: NIC %d RAM leak: %d bytes", h, nic.inj.pool.Used())
		}
		if nic.inj.rc != nil && nic.inj.rc.ActiveSAQs() != 0 {
			return fmt.Errorf("fabric: NIC %d leaks %d SAQs", h, nic.inj.rc.ActiveSAQs())
		}
		if err := nic.inj.checkCredits(); err != nil {
			return fmt.Errorf("fabric: NIC %d: %w", h, err)
		}
		if nic.backlog != 0 {
			return fmt.Errorf("fabric: NIC %d admittance backlog %d", h, nic.backlog)
		}
		if nic.thr != nil {
			// CNPs travel via ScheduleRemote (never over faultable
			// channels) so recovery to full injection is unconditional:
			// once traffic stops, additive increase must have restored the
			// line rate before the event queue drained.
			if !nic.thr.state.Full() {
				return fmt.Errorf("fabric: NIC %d injection rate stuck at %d‰ after quiesce", h, nic.thr.state.RateMilli)
			}
			if nic.thr.aiArmed {
				return fmt.Errorf("fabric: NIC %d additive-increase timer still armed at full rate", h)
			}
		}
	}
	return nil
}
