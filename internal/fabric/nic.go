package fabric

import (
	"fmt"

	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/sim"
	"repro/internal/throttle"
	"repro/internal/trace"
	"repro/internal/units"
)

// hostQueue is an unbounded FIFO of packets (a NIC admittance queue).
// Admittance queues model host memory, which the paper treats as
// unbounded: sources keep generating traffic regardless of congestion.
type hostQueue struct {
	ring  []*pkt.Packet
	head  int
	count int
}

func (q *hostQueue) push(p *pkt.Packet) {
	if q.count == len(q.ring) {
		n := len(q.ring) * 2
		if n == 0 {
			n = 8
		}
		next := make([]*pkt.Packet, n)
		for i := 0; i < q.count; i++ {
			next[i] = q.ring[(q.head+i)%len(q.ring)]
		}
		q.ring = next
		q.head = 0
	}
	q.ring[(q.head+q.count)%len(q.ring)] = p
	q.count++
}

func (q *hostQueue) peek() *pkt.Packet { return q.ring[q.head] }

func (q *hostQueue) pop() *pkt.Packet {
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	return p
}

// nicDest is one destination's admittance state: the VOQ, its queued
// bytes (AdmitCap accounting), and the cached route.
type nicDest struct {
	q     hostQueue
	bytes int
	route pkt.Route
}

// destSet is the per-destination admittance array, dense or
// demand-paged: a 4k-host NIC only pays for the destinations it
// actually sends to. Pages give stable interior pointers, so a *nicDest
// stays valid across later materializations.
type destSet struct {
	n     int
	lazy  bool
	dense []nicDest
	pages [][]nicDest
}

func (s *destSet) init(n int, lazy bool) {
	*s = destSet{n: n, lazy: lazy}
	if !lazy {
		s.dense = make([]nicDest, n)
	}
}

// at returns destination i's state, or nil when untouched (callers
// index via the active list, which only holds touched destinations).
func (s *destSet) at(i int) *nicDest {
	if !s.lazy {
		return &s.dense[i]
	}
	if s.pages == nil {
		return nil
	}
	pg := s.pages[i>>statePageBits]
	if pg == nil {
		return nil
	}
	return &pg[i&(statePageLen-1)]
}

// get returns destination i's state, materializing its page on first
// touch.
func (s *destSet) get(i int) *nicDest {
	if !s.lazy {
		return &s.dense[i]
	}
	if s.pages == nil {
		s.pages = make([][]nicDest, (s.n+statePageLen-1)>>statePageBits)
	}
	pi := i >> statePageBits
	pg := s.pages[pi]
	if pg == nil {
		pg = make([]nicDest, statePageLen)
		s.pages[pi] = pg
	}
	return &pg[i&(statePageLen-1)]
}

// memCount reports materialized destination slots, for the memory
// model.
func (s *destSet) memCount() (slots int) {
	if !s.lazy {
		return len(s.dense)
	}
	slots = len(s.pages)
	for _, pg := range s.pages {
		if pg != nil {
			slots += statePageLen
		}
	}
	return
}

// NIC is a host's network interface (paper §4.1): N admittance queues
// organized as VOQs (one per destination), an arbiter that moves
// packetized messages into the injection port, and an injection port
// that follows the switch-output-port scheme — so under RECN, SAQs are
// dynamically allocated at the NIC injection side too. The reception
// side consumes packets at link rate and returns credits.
type NIC struct {
	net  *Network
	sc   *shardCtx
	host int

	attachSw   int
	attachPort int

	dests   destSet
	active  activeList
	rr      int
	backlog int // packets waiting in admittance queues

	inj *egressUnit

	seq   map[uint32]uint64 // (dst, class) → next sequence number
	idSeq uint64            // windowed-mode per-host packet ID counter

	pumpScheduled bool
	// runPumpFn is nic.runPump bound once, so pump never allocates a
	// method value on the hot path.
	runPumpFn func()

	// thr is the AIMD injection pacer (PolicyThrottle only, else nil —
	// every hook below costs one nil comparison otherwise).
	thr *nicThrottle
	// Prebound event thunks for the pacer (see runPumpFn).
	onCNPFn  func()
	aiTickFn func()
	paceFn   func()
}

// nicThrottle is one host's end-point congestion-control state
// (PolicyThrottle): the DCQCN-style loop of ECN marks at congested
// switch output buffers, destination-generated CNPs back to the marked
// source, and a per-source AIMD rate limiter pacing the NIC pump.
// Everything is integer arithmetic on simulated time, so runs stay
// bit-identical across shard counts.
type nicThrottle struct {
	// state is the source-side AIMD rate in [MinRateMilli, 1000]‰ of
	// line rate (internal/throttle).
	state throttle.State
	// payAt is the pacing horizon: the instant the bytes already pumped
	// have paid for at the current rate. The pump stalls until then;
	// at full rate nothing is ever charged.
	payAt sim.Time
	// aiArmed: the additive-increase timer is scheduled. Invariant
	// (audited by the checker): rate < full ⇒ aiArmed, so a throttled
	// source always climbs back to line rate once CNPs stop.
	aiArmed bool
	// paceArmed dedups the payAt retry event.
	paceArmed bool
	// lastCNPAt[src] is the destination-side CNP coalescing clock: at
	// most one CNP per source per CNPInterval (0 = never sent; the
	// engine clock is positive whenever packets arrive).
	lastCNPAt []sim.Time
}

// init builds the NIC in place (NICs live in a slab arena — see
// fabric.New). inj is the NIC's slot in the egress-unit arena and rc
// its RECN controller slot (nil unless PolicyRECN).
func (nic *NIC) init(net *Network, host int, inj *egressUnit, rc *recn.Egress) error {
	hosts := net.topo.NumHosts()
	sw, port := net.topo.HostAttach(host)
	nic.net = net
	nic.sc = net.base
	nic.host = host
	nic.attachSw = sw
	nic.attachPort = port
	nic.dests.init(hosts, !net.cfg.EagerState)
	nic.active.init(hosts, !net.cfg.EagerState)
	nic.seq = make(map[uint32]uint64)
	nic.runPumpFn = nic.runPump
	if err := inj.init(net, nil, 0, true, rc); err != nil {
		return err
	}
	nic.inj = inj
	inj.nic = nic
	if net.cfg.Policy == PolicyThrottle {
		nic.thr = &nicThrottle{state: throttle.NewState()}
		if net.cfg.EagerState {
			nic.thr.lastCNPAt = make([]sim.Time, hosts)
		}
		nic.onCNPFn = nic.onCNP
		nic.aiTickFn = nic.aiTick
		nic.paceFn = nic.paceFire
	}
	return nil
}

// wire connects the injection channel to the attachment switch. A host
// attached to an unused or out-of-range switch port is a validation
// error, not a panic.
func (nic *NIC) wire() error {
	if nic.attachSw < 0 || nic.attachSw >= len(nic.net.switches) {
		return fmt.Errorf("fabric: host %d attached to nonexistent switch %d", nic.host, nic.attachSw)
	}
	sw := nic.net.switches[nic.attachSw]
	if nic.attachPort < 0 || nic.attachPort >= len(sw.in) || sw.in[nic.attachPort] == nil {
		return fmt.Errorf("fabric: host %d attached to unused port %d of switch %d", nic.host, nic.attachPort, nic.attachSw)
	}
	nic.inj.attach(sw.in[nic.attachPort], false)
	return nil
}

// Backlog returns the number of packets waiting in admittance queues.
func (nic *NIC) Backlog() int { return nic.backlog }

// injectMessage packetizes a message and stores it in the admittance
// queue for its destination (paper §4.1: the message is stored
// completely in the admittance queue and packetized before transfer to
// an injection queue).
func (nic *NIC) injectMessage(dst, size int, class uint8) error {
	d := nic.dests.get(dst)
	route := d.route
	if route == nil {
		r, err := nic.net.topo.Route(nic.host, dst)
		if err != nil {
			return err
		}
		d.route = r
		route = r
	}
	// Finite host buffering: discard the message when the destination's
	// admittance queue is already at the cap (the whole message is
	// accepted when below it, so messages larger than the cap work).
	if cap := nic.net.cfg.AdmitCap; cap > 0 && d.bytes >= cap {
		nic.sc.cnt.DroppedMessages++
		if nic.sc.rec != nil {
			nic.sc.rec.Record(trace.EvDrop, nic.inj.loc(), "", int64(dst), int64(size), 0)
		}
		return nil
	}
	now := nic.sc.eng.Now()
	pktSize := nic.net.cfg.PacketSize
	seqKey := uint32(dst)<<8 | uint32(class)
	for rem := size; rem > 0; rem -= pktSize {
		sz := pktSize
		if rem < sz {
			sz = rem
		}
		var id uint64
		if nic.sc.sharded {
			// Windowed mode: a global injection counter would depend on
			// the shard interleaving. Per-host IDs depend only on this
			// host's own injection stream, which is shard-count-invariant.
			nic.idSeq++
			id = uint64(nic.host+1)<<40 | nic.idSeq
		} else {
			nic.sc.pktSeq++
			id = nic.sc.pktSeq
		}
		nic.seq[seqKey]++
		p := nic.sc.pktPool.Get()
		*p = pkt.Packet{
			ID:        id,
			Src:       nic.host,
			Dst:       dst,
			Size:      sz,
			Class:     class,
			Route:     route,
			Seq:       nic.seq[seqKey],
			CreatedAt: now,
		}
		d.q.push(p)
		d.bytes += sz
		nic.active.add(dst)
		nic.backlog++
		nic.sc.cnt.InjectedPackets++
		nic.sc.cnt.InjectedBytes += uint64(sz)
	}
	nic.pump()
	return nil
}

// pump moves packets from admittance queues to the injection port in
// round-robin order while the injection buffers accept them. Runs as a
// scheduled event so a burst of messages is handled once.
func (nic *NIC) pump() {
	if nic.pumpScheduled {
		return
	}
	nic.pumpScheduled = true
	nic.sc.eng.Schedule(nic.sc.eng.Now(), nic.runPumpFn)
}

func (nic *NIC) runPump() {
	nic.pumpScheduled = false
	for {
		moved := false
		tried := 0
		for nic.active.len() > 0 && tried < nic.active.len() {
			// The AIMD pacer gates the whole pump, not one destination:
			// throttling is per source (paceReady arms the retry).
			if !nic.paceReady() {
				return
			}
			idx := nic.active.at(nic.rr % nic.active.len())
			d := nic.dests.at(idx)
			if d.q.count == 0 {
				nic.active.remove(idx)
				continue
			}
			p := d.q.peek()
			// The pump honors the injection SAQ's internal gate: the
			// admittance queues are per-destination VOQs, so holding
			// one back causes no HOL blocking.
			if !nic.inj.admitProbe(p, p.Hop) || nic.inj.gated(p, p.Hop) {
				nic.rr++
				tried++
				continue
			}
			d.q.pop()
			d.bytes -= p.Size
			nic.backlog--
			nic.rr++
			p.InjectedAt = nic.sc.eng.Now()
			nic.charge(p.Size)
			nic.inj.storePacket(p, -1)
			moved = true
		}
		if !moved {
			return
		}
	}
}

// --- PolicyThrottle: the end-point AIMD pacer ---

// paceReady reports whether the pacer allows the next packet now; when
// not, it arms a single retry at the pacing horizon.
func (nic *NIC) paceReady() bool {
	t := nic.thr
	if t == nil {
		return true
	}
	now := nic.sc.eng.Now()
	if now >= t.payAt {
		return true
	}
	if !t.paceArmed {
		t.paceArmed = true
		nic.sc.eng.Schedule(t.payAt, nic.paceFn)
	}
	return false
}

func (nic *NIC) paceFire() {
	nic.thr.paceArmed = false
	nic.pump()
}

// charge advances the pacing horizon for one injected packet: the gap
// is the packet's line-rate serialization time scaled up by the inverse
// of the current rate, so the long-run injection rate converges to
// rate/1000 of line rate. A source at full rate is never charged — the
// pacer then adds zero work and zero delay.
func (nic *NIC) charge(size int) {
	t := nic.thr
	if t == nil || t.state.Full() {
		return
	}
	gap := units.LinkRate.Serialize(size) *
		sim.Time(throttle.FullRateMilli) / sim.Time(t.state.RateMilli)
	if now := nic.sc.eng.Now(); t.payAt < now {
		t.payAt = now
	}
	t.payAt += gap
}

// noteMark runs at the destination: a marked packet from src arrived,
// so send src a congestion notification packet unless one went out
// within the coalescing interval. The CNP travels via ScheduleRemote —
// host-to-host signaling outside the faultable data channels, with a
// shard-count-invariant delivery order — after the configured feedback
// delay (which must exceed the link latency for windowed-mode
// invariance; the default is 25× it).
func (nic *NIC) noteMark(src int) {
	t := nic.thr
	now := nic.sc.eng.Now()
	cfg := &nic.net.cfg.Throttle
	if t.lastCNPAt == nil {
		// Materialized on the first mark: most destinations never see
		// one, and the zero value ("never sent") is the initial state.
		t.lastCNPAt = make([]sim.Time, nic.net.topo.NumHosts())
	}
	if last := t.lastCNPAt[src]; last != 0 && now-last < cfg.CNPInterval {
		return
	}
	t.lastCNPAt[src] = now
	nic.net.ScheduleRemote(nic.host, src, now+cfg.FeedbackDelay, nic.net.nics[src].onCNPFn)
}

// onCNP runs at the source: multiplicative decrease, and arm the
// additive-increase timer if it is not already running.
func (nic *NIC) onCNP() {
	t := nic.thr
	cfg := &nic.net.cfg.Throttle
	t.state.OnCNP(*cfg)
	if nic.sc.rec != nil {
		nic.sc.rec.Record(trace.EvMark, nic.inj.loc(), "cnp", int64(t.state.RateMilli), 0, 0)
	}
	if !t.aiArmed {
		t.aiArmed = true
		nic.sc.eng.After(cfg.Period, nic.aiTickFn)
	}
}

// aiTick is the additive-increase timer: one rate step per period,
// self-rescheduling only while below full rate — so a quiescent network
// drains its event queue and every source provably returns to line
// rate within SettleTicks periods of the last CNP.
func (nic *NIC) aiTick() {
	t := nic.thr
	cfg := &nic.net.cfg.Throttle
	if t.state.OnTick(*cfg) {
		t.aiArmed = false
		return
	}
	nic.sc.eng.After(cfg.Period, nic.aiTickFn)
}

// --- linkSink (the switch→host channel) ---

// arriveData delivers a packet to the host: it is consumed immediately
// and the buffer credit returns to the last switch. deliver recycles
// the packet, so the credit size is copied out first.
func (nic *NIC) arriveData(p *pkt.Packet) {
	if nic.sc.rec != nil {
		nic.sc.rec.RecordPacket(trace.EvRecv, nic.hostLoc(), p.ID, p.Size, p.Src, p.Dst)
	}
	size := p.Size
	if nic.thr != nil && p.Marked {
		// Copied out before deliver recycles the packet.
		nic.noteMark(p.Src)
	}
	nic.sc.deliver(p)
	nic.inj.ch.pushCredit(size, -1)
}

// arriveCredit returns injection credits from the first switch.
func (nic *NIC) arriveCredit(c creditMsg) { nic.inj.addCredit(c) }

// arriveCtl handles RECN control from the first switch's input port:
// notifications and Xon/Xoff address the injection port's controller.
// Tokens toward a host cannot occur (reception ports never notify).
func (nic *NIC) arriveCtl(m recn.CtlMsg) {
	if nic.inj.rc == nil {
		return
	}
	switch m.Kind {
	case recn.MsgNotify:
		nic.inj.rc.OnUpstreamNotification(m.Path)
		// A marker may now sit in the injection normal queue; run the
		// arbiter so it gets peeled even with no new injections.
		nic.inj.ch.kick()
		nic.sc.scheduleSweep()
	case recn.MsgXoff:
		nic.inj.rc.OnXoffFromDownstream(m.Path)
	case recn.MsgXon:
		nic.inj.rc.OnXonFromDownstream(m.Path)
		nic.inj.ch.kick()
	case recn.MsgToken:
		// Reception side has no RECN state; ignore.
	}
}

// auditResident: hosts consume packets instantly, so the switch→host
// link never has bytes resident at the receiver.
func (nic *NIC) auditResident(queue int) int { return 0 }

// reverseQuiet reports whether the host→switch direction (which carries
// the reception credits back) is silent.
func (nic *NIC) reverseQuiet(now sim.Time) bool { return nic.inj.ch.quiet(now) }

var _ linkSink = (*NIC)(nil)
