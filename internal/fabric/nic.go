package fabric

import (
	"fmt"

	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/sim"
	"repro/internal/trace"
)

// hostQueue is an unbounded FIFO of packets (a NIC admittance queue).
// Admittance queues model host memory, which the paper treats as
// unbounded: sources keep generating traffic regardless of congestion.
type hostQueue struct {
	ring  []*pkt.Packet
	head  int
	count int
}

func (q *hostQueue) push(p *pkt.Packet) {
	if q.count == len(q.ring) {
		n := len(q.ring) * 2
		if n == 0 {
			n = 8
		}
		next := make([]*pkt.Packet, n)
		for i := 0; i < q.count; i++ {
			next[i] = q.ring[(q.head+i)%len(q.ring)]
		}
		q.ring = next
		q.head = 0
	}
	q.ring[(q.head+q.count)%len(q.ring)] = p
	q.count++
}

func (q *hostQueue) peek() *pkt.Packet { return q.ring[q.head] }

func (q *hostQueue) pop() *pkt.Packet {
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	return p
}

// NIC is a host's network interface (paper §4.1): N admittance queues
// organized as VOQs (one per destination), an arbiter that moves
// packetized messages into the injection port, and an injection port
// that follows the switch-output-port scheme — so under RECN, SAQs are
// dynamically allocated at the NIC injection side too. The reception
// side consumes packets at link rate and returns credits.
type NIC struct {
	net  *Network
	sc   *shardCtx
	host int

	attachSw   int
	attachPort int

	admit      []hostQueue
	admitBytes []int // queued bytes per admittance queue (AdmitCap)
	active     *activeList
	rr         int
	backlog    int // packets waiting in admittance queues

	inj *egressUnit

	seq    map[uint32]uint64 // (dst, class) → next sequence number
	idSeq  uint64            // windowed-mode per-host packet ID counter
	routes []pkt.Route

	pumpScheduled bool
	// runPumpFn is nic.runPump bound once, so pump never allocates a
	// method value on the hot path.
	runPumpFn func()
}

func newNIC(net *Network, host int) *NIC {
	hosts := net.topo.NumHosts()
	sw, port := net.topo.HostAttach(host)
	nic := &NIC{
		net:        net,
		sc:         net.base,
		host:       host,
		attachSw:   sw,
		attachPort: port,
		admit:      make([]hostQueue, hosts),
		admitBytes: make([]int, hosts),
		active:     newActiveList(hosts),
		seq:        make(map[uint32]uint64),
		routes:     make([]pkt.Route, hosts),
	}
	nic.runPumpFn = nic.runPump
	nic.inj = newEgressUnit(net, nil, 0, true)
	nic.inj.nic = nic
	return nic
}

// wire connects the injection channel to the attachment switch. A host
// attached to an unused or out-of-range switch port is a validation
// error, not a panic.
func (nic *NIC) wire() error {
	if nic.attachSw < 0 || nic.attachSw >= len(nic.net.switches) {
		return fmt.Errorf("fabric: host %d attached to nonexistent switch %d", nic.host, nic.attachSw)
	}
	sw := nic.net.switches[nic.attachSw]
	if nic.attachPort < 0 || nic.attachPort >= len(sw.in) || sw.in[nic.attachPort] == nil {
		return fmt.Errorf("fabric: host %d attached to unused port %d of switch %d", nic.host, nic.attachPort, nic.attachSw)
	}
	nic.inj.attach(sw.in[nic.attachPort], false)
	return nil
}

// Backlog returns the number of packets waiting in admittance queues.
func (nic *NIC) Backlog() int { return nic.backlog }

// injectMessage packetizes a message and stores it in the admittance
// queue for its destination (paper §4.1: the message is stored
// completely in the admittance queue and packetized before transfer to
// an injection queue).
func (nic *NIC) injectMessage(dst, size int, class uint8) error {
	route := nic.routes[dst]
	if route == nil {
		r, err := nic.net.topo.Route(nic.host, dst)
		if err != nil {
			return err
		}
		nic.routes[dst] = r
		route = r
	}
	// Finite host buffering: discard the message when the destination's
	// admittance queue is already at the cap (the whole message is
	// accepted when below it, so messages larger than the cap work).
	if cap := nic.net.cfg.AdmitCap; cap > 0 && nic.admitBytes[dst] >= cap {
		nic.sc.cnt.DroppedMessages++
		if nic.sc.rec != nil {
			nic.sc.rec.Record(trace.EvDrop, nic.inj.loc(), "", int64(dst), int64(size), 0)
		}
		return nil
	}
	now := nic.sc.eng.Now()
	pktSize := nic.net.cfg.PacketSize
	seqKey := uint32(dst)<<8 | uint32(class)
	for rem := size; rem > 0; rem -= pktSize {
		sz := pktSize
		if rem < sz {
			sz = rem
		}
		var id uint64
		if nic.sc.sharded {
			// Windowed mode: a global injection counter would depend on
			// the shard interleaving. Per-host IDs depend only on this
			// host's own injection stream, which is shard-count-invariant.
			nic.idSeq++
			id = uint64(nic.host+1)<<40 | nic.idSeq
		} else {
			nic.sc.pktSeq++
			id = nic.sc.pktSeq
		}
		nic.seq[seqKey]++
		p := nic.sc.pktPool.Get()
		*p = pkt.Packet{
			ID:        id,
			Src:       nic.host,
			Dst:       dst,
			Size:      sz,
			Class:     class,
			Route:     route,
			Seq:       nic.seq[seqKey],
			CreatedAt: now,
		}
		nic.admit[dst].push(p)
		nic.admitBytes[dst] += sz
		nic.active.add(dst)
		nic.backlog++
		nic.sc.cnt.InjectedPackets++
		nic.sc.cnt.InjectedBytes += uint64(sz)
	}
	nic.pump()
	return nil
}

// pump moves packets from admittance queues to the injection port in
// round-robin order while the injection buffers accept them. Runs as a
// scheduled event so a burst of messages is handled once.
func (nic *NIC) pump() {
	if nic.pumpScheduled {
		return
	}
	nic.pumpScheduled = true
	nic.sc.eng.Schedule(nic.sc.eng.Now(), nic.runPumpFn)
}

func (nic *NIC) runPump() {
	nic.pumpScheduled = false
	for {
		moved := false
		tried := 0
		for nic.active.len() > 0 && tried < nic.active.len() {
			idx := nic.active.at(nic.rr % nic.active.len())
			q := &nic.admit[idx]
			if q.count == 0 {
				nic.active.remove(idx)
				continue
			}
			p := q.peek()
			// The pump honors the injection SAQ's internal gate: the
			// admittance queues are per-destination VOQs, so holding
			// one back causes no HOL blocking.
			if !nic.inj.admitProbe(p, p.Hop) || nic.inj.gated(p, p.Hop) {
				nic.rr++
				tried++
				continue
			}
			q.pop()
			nic.admitBytes[idx] -= p.Size
			nic.backlog--
			nic.rr++
			p.InjectedAt = nic.sc.eng.Now()
			nic.inj.storePacket(p, -1)
			moved = true
		}
		if !moved {
			return
		}
	}
}

// --- linkSink (the switch→host channel) ---

// arriveData delivers a packet to the host: it is consumed immediately
// and the buffer credit returns to the last switch. deliver recycles
// the packet, so the credit size is copied out first.
func (nic *NIC) arriveData(p *pkt.Packet) {
	if nic.sc.rec != nil {
		nic.sc.rec.RecordPacket(trace.EvRecv, nic.hostLoc(), p.ID, p.Size, p.Src, p.Dst)
	}
	size := p.Size
	nic.sc.deliver(p)
	nic.inj.ch.pushCredit(size, -1)
}

// arriveCredit returns injection credits from the first switch.
func (nic *NIC) arriveCredit(c creditMsg) { nic.inj.addCredit(c) }

// arriveCtl handles RECN control from the first switch's input port:
// notifications and Xon/Xoff address the injection port's controller.
// Tokens toward a host cannot occur (reception ports never notify).
func (nic *NIC) arriveCtl(m recn.CtlMsg) {
	if nic.inj.rc == nil {
		return
	}
	switch m.Kind {
	case recn.MsgNotify:
		nic.inj.rc.OnUpstreamNotification(m.Path)
		// A marker may now sit in the injection normal queue; run the
		// arbiter so it gets peeled even with no new injections.
		nic.inj.ch.kick()
		nic.sc.scheduleSweep()
	case recn.MsgXoff:
		nic.inj.rc.OnXoffFromDownstream(m.Path)
	case recn.MsgXon:
		nic.inj.rc.OnXonFromDownstream(m.Path)
		nic.inj.ch.kick()
	case recn.MsgToken:
		// Reception side has no RECN state; ignore.
	}
}

// auditResident: hosts consume packets instantly, so the switch→host
// link never has bytes resident at the receiver.
func (nic *NIC) auditResident(queue int) int { return 0 }

// reverseQuiet reports whether the host→switch direction (which carries
// the reception credits back) is silent.
func (nic *NIC) reverseQuiet(now sim.Time) bool { return nic.inj.ch.quiet(now) }

var _ linkSink = (*NIC)(nil)
