package fabric

import (
	"fmt"
	"io"

	"repro/internal/check"
	"repro/internal/mempool"
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/sim"
	"repro/internal/throttle"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file integrates the runtime invariant checker (internal/check)
// into the fabric. With Config.Checker nil every hook below reduces to
// a single nil comparison on the hot path and nothing here runs — the
// same compile-out contract as the flight recorder in trace.go.
//
// With a checker attached, a periodic audit event walks the whole
// network and verifies, at event boundaries (where state is always
// consistent — events are atomic):
//
//   - packet conservation: host backlogs + queued packets + crossbar
//     transfers + link flights == injected − delivered;
//   - flow-control conservation: every credit counter within
//     [0, initial] (credits can be lost to faults, never forged);
//   - CAM/SAQ lifecycle: allocs − deallocs == live SAQs == used CAM
//     lines at every controller;
//   - progress: a livelock detector (time advancing, packets pending,
//     no deliveries for a window), plus the wait-for-graph deadlock
//     detector at end-of-run (FinalCheck).
//
// Audits are pure observers: they never mutate fabric state, so a
// checked run produces bit-identical results to an unchecked one.

// checkerState is the audit tick's bookkeeping on the Network.
type checkerState struct {
	pending bool
	// lastDelivered/lastProgressAt drive the livelock detector.
	lastDelivered  uint64
	lastProgressAt sim.Time
	// dead stops rescheduling after a collected livelock violation so a
	// dead network's event queue still drains (and FinalCheck reports
	// the deadlock).
	dead bool
}

// saqRanger is the part of the RECN controller interface the audits
// need (both recn.Ingress and recn.Egress implement it).
type saqRanger interface {
	ForEachSAQ(func(*recn.SAQ))
}

// installChecker binds the checker to the engine, the flight recorder
// (when tracing is on) and the congestion snapshot. Called once from
// New, after installTracer.
func (n *Network) installChecker(chk *check.Checker) error {
	if err := chk.Bind(n.Engine, n.rec, n.checkSnapshot); err != nil {
		return err
	}
	n.check = chk
	return nil
}

// Checker returns the attached invariant checker, or nil.
func (n *Network) Checker() *check.Checker { return n.check }

// checkSnapshot writes the diagnostics block attached to every
// violation: global accounting, then the congestion dump (roots, SAQs,
// deep queues).
func (n *Network) checkSnapshot(w io.Writer) {
	fmt.Fprintf(w, "pending=%d injected=%d delivered=%d dropped=%d roots=%d\n",
		n.PendingPackets(), n.InjectedPackets, n.DeliveredPackets, n.DroppedMessages, n.RootCount())
	total, maxIn, maxOut := n.SAQUsage()
	fmt.Fprintf(w, "saqs=%d (max ingress %d, max egress %d) liveXfers=%d\n",
		total, maxIn, maxOut, n.liveXferCount())
	if n.report != nil {
		fmt.Fprintf(w, "faults: %+v\n", *n.report)
	}
	n.DumpCongestion(w)
}

// armChecker starts the periodic audit (deduplicated). Called on every
// injection, like the watchdog and the metrics sampler; the audit
// self-reschedules only while the network has packets or SAQs in
// flight, so Engine.Drain terminates.
func (n *Network) armChecker() {
	if n.check == nil || n.checkState.pending || n.checkState.dead {
		return
	}
	n.checkState.pending = true
	n.checkState.lastDelivered = n.DeliveredPackets
	n.checkState.lastProgressAt = n.Engine.Now()
	n.Engine.After(n.check.Period(), n.checkTickFn)
}

func (n *Network) checkTick() {
	st := &n.checkState
	st.pending = false
	n.auditConservation()
	n.auditCreditBounds()
	n.auditSAQLifecycle()
	n.auditThrottle()
	n.auditLivelock()
	n.check.CountAudit()
	if st.dead {
		return
	}
	if n.PendingPackets() > 0 || n.saqsLive() {
		st.pending = true
		n.Engine.After(n.check.Period(), n.checkTickFn)
	}
}

// queuedPackets counts every packet currently held in a port's queues
// (class/policy queues plus SAQs; markers are not packets). Untouched
// lazy queues hold nothing and are skipped.
func queuedPackets(qs *queueSet, rc saqRanger) int {
	c := 0
	qs.forEach(func(_ int, q *mempool.Queue) {
		c += q.Packets()
	})
	if rc != nil {
		rc.ForEachSAQ(func(s *recn.SAQ) { c += s.Q.Packets() })
	}
	return c
}

// ingressRanger / egressRanger convert the concrete controller pointers
// to saqRanger without wrapping a typed nil in a non-nil interface.
func ingressRanger(rc *recn.Ingress) saqRanger {
	if rc == nil {
		return nil
	}
	return rc
}

func egressRanger(rc *recn.Egress) saqRanger {
	if rc == nil {
		return nil
	}
	return rc
}

// auditConservation verifies the packet census: every injected,
// undelivered packet is in a host backlog, a port queue, the crossbar
// or on a link — nowhere else, and none missing.
func (n *Network) auditConservation() {
	census := uint64(n.liveXferCount())
	for _, nic := range n.nics {
		census += uint64(nic.backlog)
		census += uint64(queuedPackets(&nic.inj.qs, egressRanger(nic.inj.rc)))
		census += uint64(nic.inj.ch.dataFlight())
	}
	for _, sw := range n.switches {
		for _, in := range sw.in {
			if in != nil {
				census += uint64(queuedPackets(&in.qs, ingressRanger(in.rc)))
			}
		}
		for _, out := range sw.out {
			if out != nil {
				census += uint64(queuedPackets(&out.qs, egressRanger(out.rc)))
				census += uint64(out.ch.dataFlight())
			}
		}
	}
	if pending := n.PendingPackets(); census != pending {
		n.check.Failf(check.RulePacketConservation, trace.NetLoc,
			"census %d != pending %d (injected %d, delivered %d, crossbar %d)",
			census, pending, n.InjectedPackets, n.DeliveredPackets, n.liveXferCount())
	}
}

// auditCreditBounds verifies every credit counter stays within
// [0, initial]: faults may lose credits (the watchdog restores them)
// but a counter above its initial value means forged credits — the
// receiver-RAM overflow hazard the paper's flow control exists to
// prevent.
func (n *Network) auditCreditBounds() {
	auditUnit := func(u *egressUnit) {
		if u.portCredits < 0 || u.portCredits > u.initPort {
			n.check.Failf(check.RuleCreditBounds, u.loc(),
				"port credits %d outside [0, %d]", u.portCredits, u.initPort)
		}
		u.queueCredits.forEachSlot(func(i int, slot *int) {
			if c := *slot; c < 0 || c > u.initQueue {
				n.check.Failf(check.RuleCreditBounds, u.loc(),
					"queue %d credits %d outside [0, %d]", i, c, u.initQueue)
			}
		})
	}
	for _, sw := range n.switches {
		for _, out := range sw.out {
			if out != nil {
				auditUnit(out)
			}
		}
	}
	for _, nic := range n.nics {
		auditUnit(nic.inj)
	}
}

// auditSAQLifecycle verifies the controller accounting at every RECN
// port: SAQs allocated minus deallocated must equal the live SAQ count
// must equal the used CAM lines — a divergence is a leaked or
// double-freed CAM line / SAQ.
func (n *Network) auditSAQLifecycle() {
	if n.cfg.Policy != PolicyRECN {
		return
	}
	auditCtl := func(loc trace.Loc, st recn.Stats, active, camUsed int) {
		live := st.Allocs - st.Deallocs
		if live != uint64(active) || active != camUsed {
			n.check.Failf(check.RuleSAQLifecycle, loc,
				"allocs %d - deallocs %d = %d, active SAQs %d, CAM lines %d",
				st.Allocs, st.Deallocs, live, active, camUsed)
		}
	}
	for _, sw := range n.switches {
		for _, in := range sw.in {
			if in != nil && in.rc != nil {
				auditCtl(in.loc(), in.rc.Stats(), in.rc.ActiveSAQs(), in.rc.CAMUsed())
			}
		}
		for _, out := range sw.out {
			if out != nil && out.rc != nil {
				auditCtl(out.loc(), out.rc.Stats(), out.rc.ActiveSAQs(), out.rc.CAMUsed())
			}
		}
	}
	for _, nic := range n.nics {
		if nic.inj.rc != nil {
			auditCtl(nic.inj.loc(), nic.inj.rc.Stats(), nic.inj.rc.ActiveSAQs(), nic.inj.rc.CAMUsed())
		}
	}
}

// auditThrottle verifies every source's AIMD pacer contract
// (PolicyThrottle): the rate never leaves [MinRateMilli, line rate],
// and a below-full rate always has the additive-increase timer armed —
// without it the source would stay throttled forever after congestion
// clears (the recovery guarantee CheckQuiesced asserts at end of run).
func (n *Network) auditThrottle() {
	if n.cfg.Policy != PolicyThrottle {
		return
	}
	min := n.cfg.Throttle.MinRateMilli
	for _, nic := range n.nics {
		t := nic.thr
		if t == nil {
			continue
		}
		if r := t.state.RateMilli; r < min || r > throttle.FullRateMilli {
			n.check.Failf(check.RuleThrottle, nic.inj.loc(),
				"injection rate %d‰ outside [%d, %d]", r, min, throttle.FullRateMilli)
		}
		if !t.state.Full() && !t.aiArmed {
			n.check.Failf(check.RuleThrottle, nic.inj.loc(),
				"rate %d‰ below full with no additive-increase timer armed", t.state.RateMilli)
		}
	}
}

// auditLivelock flags a network where simulation time keeps advancing
// with packets pending but nothing delivered for a full window —
// subsuming the watchdog's stall counter with a hard failure once the
// recovery layer's repairs have clearly not helped. After a collected
// violation the audit stops rescheduling so a dead network's event
// queue still drains.
func (n *Network) auditLivelock() {
	st := &n.checkState
	now := n.Engine.Now()
	if n.PendingPackets() == 0 || n.DeliveredPackets != st.lastDelivered {
		st.lastDelivered = n.DeliveredPackets
		st.lastProgressAt = now
		return
	}
	if now-st.lastProgressAt >= n.check.LivelockWindow() {
		cycle := check.CycleString(n.buildWaitGraph().FindCycle())
		if cycle == "" {
			cycle = "none (livelock, not deadlock)"
		}
		n.check.Failf(check.RuleLivelock, trace.NetLoc,
			"%d packets pending, no delivery for %v; wait cycle: %s",
			n.PendingPackets(), n.check.LivelockWindow(), cycle)
		st.dead = true
	}
}

// buildWaitGraph constructs the wait-for graph at port granularity: an
// input port with a queued packet waits on the output port the packet's
// route selects; an occupied output port waits on the downstream input
// port (or host) its link feeds. A cycle means no packet in it can ever
// make progress — deadlock.
func (n *Network) buildWaitGraph() *check.WaitGraph {
	g := check.NewWaitGraph()
	headEdge := func(from string, swID int, q *mempool.Queue) {
		e, ok := q.Head()
		if !ok || e.IsMarker() {
			return
		}
		if p, ok := e.Data.(*pkt.Packet); ok && p.Hop < len(p.Route) {
			g.Edge(from, fmt.Sprintf("sw%d.out%d", swID, p.NextTurn()))
		}
	}
	headEdges := func(from string, swID int, qs *queueSet, rc saqRanger) {
		qs.forEach(func(_ int, q *mempool.Queue) {
			headEdge(from, swID, q)
		})
		if rc != nil {
			rc.ForEachSAQ(func(s *recn.SAQ) { headEdge(from, swID, s.Q) })
		}
	}
	for _, sw := range n.switches {
		for p, in := range sw.in {
			if in == nil {
				continue
			}
			headEdges(fmt.Sprintf("sw%d.in%d", sw.id, p), sw.id, &in.qs, ingressRanger(in.rc))
		}
		for p, out := range sw.out {
			if out == nil || out.pool.Used() == 0 {
				continue
			}
			from := fmt.Sprintf("sw%d.out%d", sw.id, p)
			end := n.topo.Peer(sw.id, p)
			switch end.Kind {
			case topology.KindSwitch:
				g.Edge(from, fmt.Sprintf("sw%d.in%d", end.Switch, end.Port))
			case topology.KindHost:
				g.Edge(from, fmt.Sprintf("host%d", end.Host))
			}
		}
	}
	for h, nic := range n.nics {
		if nic.inj.pool.Used() > 0 || nic.backlog > 0 {
			g.Edge(fmt.Sprintf("host%d.inj", h), fmt.Sprintf("sw%d.in%d", nic.attachSw, nic.attachPort))
		}
	}
	return g
}

// FinalCheck verifies end-of-run accounting through the checker: with
// packets pending it reports a deadlock (with the wait-for-graph cycle
// in the message), otherwise it runs the quiesce invariants
// (CheckQuiesced) and wraps any failure in a structured violation.
// Without a checker it falls back to CheckQuiesced.
func (n *Network) FinalCheck() error {
	if n.check == nil {
		return n.CheckQuiesced()
	}
	if pending := n.PendingPackets(); pending != 0 {
		cycle := check.CycleString(n.buildWaitGraph().FindCycle())
		if cycle == "" {
			cycle = "none found at port granularity"
		}
		return n.check.Violationf(check.RuleDeadlock, trace.NetLoc,
			"%d packets pending after drain; wait cycle: %s", pending, cycle)
	}
	if err := n.CheckQuiesced(); err != nil {
		return n.check.Violationf(check.RuleQuiesce, trace.NetLoc, "%v", err)
	}
	return nil
}

// fatalf reports a hot-path invariant violation: through the checker
// (stamped, with diagnostics snapshot) when one is attached, otherwise
// as a panic carrying a bare typed *check.Violation.
func (n *Network) fatalf(rule check.Rule, loc trace.Loc, format string, args ...any) {
	if n.check != nil {
		n.check.Fatalf(rule, loc, format, args...)
	}
	panic(check.NewViolation(rule, loc, fmt.Sprintf(format, args...)))
}

// debugLosePacket silently discards one queued packet from the given
// switch input port's first non-empty class queue, without adjusting
// any accounting — a test-only hook that seeds a deliberate
// conservation bug so the test battery can prove the checker catches
// one (see checker_test.go). Returns false when nothing was queued.
func (n *Network) debugLosePacket(sw, port int) bool {
	in := n.switches[sw].in[port]
	if in == nil {
		return false
	}
	lost := false
	in.qs.forEach(func(_ int, q *mempool.Queue) {
		if lost {
			return
		}
		e, ok := q.Head()
		if !ok || e.IsMarker() {
			return
		}
		q.Pop()
		q.ReleaseResident(e.Size)
		lost = true
	})
	return lost
}
