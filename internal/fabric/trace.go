package fabric

import (
	"fmt"

	"repro/internal/mempool"
	"repro/internal/pkt"
	"repro/internal/recn"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file integrates the flight recorder (internal/trace) into the
// fabric: port-location helpers, the per-port recn.Tracer taps, the
// congestion-root resolver used by the tree timeline, and the periodic
// metrics sampler. With Config.Tracer nil every hook below reduces to a
// single nil comparison on the hot path and nothing here runs.

// loc returns the trace location of a switch output port or NIC
// injection port.
func (u *egressUnit) loc() trace.Loc {
	if u.sw != nil {
		return trace.Loc{Node: int32(u.sw.id), Port: int32(u.port), Dir: trace.DirOut}
	}
	return trace.Loc{Node: int32(u.nic.host), Dir: trace.DirInj}
}

// loc returns the trace location of a switch input port.
func (u *ingressUnit) loc() trace.Loc {
	return trace.Loc{Node: int32(u.sw.id), Port: int32(u.port), Dir: trace.DirIn}
}

// hostLoc returns the reception-side location of a host.
func (nic *NIC) hostLoc() trace.Loc {
	return trace.Loc{Node: int32(nic.host), Dir: trace.DirHost}
}

// saqTap adapts the recorder to recn.Tracer for one port. One tap is
// installed per RECN controller at build time; its location is fixed.
type saqTap struct {
	rec *trace.Recorder
	loc trace.Loc
}

func (t saqTap) SAQAlloc(line, uid int, path pkt.Path) {
	t.rec.Record(trace.EvSAQAlloc, t.loc, path.Key(), int64(line), int64(uid), 0)
}

func (t saqTap) SAQDealloc(line, uid int, path pkt.Path) {
	t.rec.Record(trace.EvSAQDealloc, t.loc, path.Key(), int64(line), int64(uid), 0)
}

func (t saqTap) CAMLookup(hit bool) {
	if hit {
		t.rec.Record(trace.EvCAMHit, t.loc, "", 0, 0, 0)
	} else {
		t.rec.Record(trace.EvCAMMiss, t.loc, "", 0, 0, 0)
	}
}

var _ recn.Tracer = saqTap{}

// installTracer binds the recorder to the engine and hooks every RECN
// controller. Called once from New, after wiring.
func (n *Network) installTracer(rec *trace.Recorder) error {
	if err := rec.Bind(n.Engine, n.resolveRoot); err != nil {
		return err
	}
	n.rec = rec
	n.base.rec = rec
	for _, sw := range n.switches {
		for _, in := range sw.in {
			if in != nil && in.rc != nil {
				in.rc.SetTracer(saqTap{rec, in.loc()})
			}
		}
		for _, out := range sw.out {
			if out != nil && out.rc != nil {
				out.rc.SetTracer(saqTap{rec, out.loc()})
			}
		}
	}
	for _, nic := range n.nics {
		if nic.inj.rc != nil {
			nic.inj.rc.SetTracer(saqTap{rec, nic.inj.loc()})
		}
	}
	if rec.MetricsBin() > 0 {
		n.buildProbes()
	}
	return nil
}

// resolveRoot maps an event's (location, path key) to the name of the
// congestion-tree root the path leads to, by walking the topology.
// Anchoring follows the RECN path conventions: ingress SAQ paths are
// anchored at the port's own switch, egress SAQ paths at the peer
// (downstream) switch — an empty path at an output port means that
// port itself is the root — and NIC injection paths at the attachment
// switch.
func (n *Network) resolveRoot(l trace.Loc, key string) string {
	var sw int
	switch l.Dir {
	case trace.DirOut:
		if key == "" {
			return l.String()
		}
		end := n.topo.Peer(int(l.Node), int(l.Port))
		if end.Kind != topology.KindSwitch {
			return l.String() + "/" + trace.PathString(key)
		}
		sw = end.Switch
	case trace.DirIn:
		sw = int(l.Node)
	case trace.DirInj:
		sw, _ = n.topo.HostAttach(int(l.Node))
	default:
		return l.String()
	}
	for i := 0; i < len(key); i++ {
		port := int(key[i])
		if i == len(key)-1 {
			return fmt.Sprintf("sw%d.out%d", sw, port)
		}
		end := n.topo.Peer(sw, port)
		if end.Kind != topology.KindSwitch {
			// Path runs off the fabric (stale or corrupt); best effort.
			return fmt.Sprintf("sw%d.out%d", sw, port)
		}
		sw = end.Switch
	}
	return l.String()
}

// traceProbe is one precomputed metrics gauge: the series name is built
// once here so the sampling path never formats strings.
type traceProbe struct {
	name string
	fn   func() float64
}

// buildProbes precomputes the metrics gauges: per-port RAM occupancy,
// queue depth (packets), live/blocked SAQ counts, per-SAQ-line
// occupancy, and per-NIC admittance backlog.
func (n *Network) buildProbes() {
	add := func(name string, fn func() float64) {
		n.probes = append(n.probes, traceProbe{name, fn})
	}
	saqProbes := func(prefix string, active func() int, each func(func(*recn.SAQ)), lines int) {
		add(prefix+"/saqs", func() float64 { return float64(active()) })
		add(prefix+"/blocked", func() float64 {
			blocked := 0
			each(func(s *recn.SAQ) {
				if s.Blocked() {
					blocked++
				}
			})
			return float64(blocked)
		})
		for line := 0; line < lines; line++ {
			name := fmt.Sprintf("%s/saq%d", prefix, line)
			line := line
			add(name, func() float64 {
				occ := 0
				each(func(s *recn.SAQ) {
					if s.ID == line {
						occ = s.Q.QueuedBytes()
					}
				})
				return float64(occ)
			})
		}
	}
	for _, sw := range n.switches {
		for _, in := range sw.in {
			if in == nil {
				continue
			}
			in := in
			prefix := in.loc().String()
			add(prefix+"/occ", func() float64 { return float64(in.pool.Used()) })
			add(prefix+"/depth", func() float64 {
				d := 0
				in.qs.forEach(func(_ int, q *mempool.Queue) {
					d += q.Packets()
				})
				return float64(d)
			})
			if in.rc != nil {
				saqProbes(prefix, in.rc.ActiveSAQs, in.rc.ForEachSAQ, n.cfg.RECN.MaxSAQs)
			}
		}
		for _, out := range sw.out {
			if out == nil {
				continue
			}
			out := out
			prefix := out.loc().String()
			add(prefix+"/occ", func() float64 { return float64(out.pool.Used()) })
			add(prefix+"/depth", func() float64 {
				d := 0
				out.qs.forEach(func(_ int, q *mempool.Queue) {
					d += q.Packets()
				})
				return float64(d)
			})
			if out.rc != nil {
				saqProbes(prefix, out.rc.ActiveSAQs, out.rc.ForEachSAQ, n.cfg.RECN.MaxSAQs)
			}
		}
	}
	for _, nic := range n.nics {
		nic := nic
		prefix := nic.inj.loc().String()
		add(prefix+"/occ", func() float64 { return float64(nic.inj.pool.Used()) })
		add(prefix+"/backlog", func() float64 { return float64(nic.backlog) })
		if nic.inj.rc != nil {
			saqProbes(prefix, nic.inj.rc.ActiveSAQs, nic.inj.rc.ForEachSAQ, n.cfg.RECN.MaxSAQs)
		}
	}
}

// armTraceSampler starts the periodic metrics sampler (deduplicated).
// Called on every injection, like the watchdog; the sampler
// self-reschedules only while the network has packets or SAQs in
// flight, so Engine.Drain terminates.
func (n *Network) armTraceSampler() {
	if n.rec == nil || len(n.probes) == 0 || n.samplerPending {
		return
	}
	n.samplerPending = true
	n.Engine.After(n.rec.MetricsBin(), n.traceSampleFn)
}

func (n *Network) traceSample() {
	n.samplerPending = false
	now := n.Engine.Now()
	m := n.rec.Metrics()
	for _, p := range n.probes {
		m.Observe(p.name, now, p.fn())
	}
	if n.PendingPackets() > 0 || n.saqsLive() {
		n.samplerPending = true
		n.Engine.After(n.rec.MetricsBin(), n.traceSampleFn)
	}
}
