package fabric

import (
	"math/rand"
	"testing"

	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/topology"
)

func newNet(t testing.TB, hosts int, policy Policy) *Network {
	t.Helper()
	topo, err := topology.ForHosts(hosts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = policy
	attachChecker(t, &cfg)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPolicyStringParse(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus name")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy String empty")
	}
}

func TestConfigValidation(t *testing.T) {
	topo, _ := topology.ForHosts(64)
	good := DefaultConfig(topo)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"nil topo":        func(c *Config) { c.Topo = nil },
		"bad packet size": func(c *Config) { c.PacketSize = 0 },
		"huge packet":     func(c *Config) { c.PacketSize = c.PortMemory + 1 },
		"neg latency":     func(c *Config) { c.LinkLatency = -1 },
		"credit size":     func(c *Config) { c.CreditSize = 0 },
		"weight":          func(c *Config) { c.NormalWeight = 0 },
		"recn":            func(c *Config) { c.Policy = PolicyRECN; c.RECN.MaxSAQs = 0 },
	}
	for name, mutate := range cases {
		c := DefaultConfig(topo)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// VOQnet with 512-byte packets on a 512-host network needs more
	// than 128 KB per port.
	big, _ := topology.ForHosts(512)
	c := DefaultConfig(big)
	c.Policy = PolicyVOQnet
	c.PacketSize = 512
	if err := c.Validate(); err == nil {
		t.Error("VOQnet with undersized per-destination queues validated")
	}
}

func TestInjectMessageErrors(t *testing.T) {
	n := newNet(t, 64, Policy1Q)
	if err := n.InjectMessage(1, 1, 64); err == nil {
		t.Error("self message accepted")
	}
	if err := n.InjectMessage(-1, 2, 64); err == nil {
		t.Error("negative src accepted")
	}
	if err := n.InjectMessage(0, 64, 64); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if err := n.InjectMessage(0, 1, 0); err == nil {
		t.Error("zero-size message accepted")
	}
}

// A single packet crosses the network and arrives exactly once, under
// every policy.
func TestSinglePacketDelivery(t *testing.T) {
	for _, policy := range Policies {
		t.Run(policy.String(), func(t *testing.T) {
			n := newNet(t, 64, policy)
			// Delivered packets are recycled after OnDeliver returns, so
			// the observer copies values instead of retaining pointers.
			var got []pkt.Packet
			n.OnDeliver = func(p *pkt.Packet) { got = append(got, *p) }
			if err := n.InjectMessage(3, 60, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.Drain()
			if len(got) != 1 {
				t.Fatalf("delivered %d packets, want 1", len(got))
			}
			p := got[0]
			if p.Src != 3 || p.Dst != 60 || p.Size != 64 {
				t.Fatalf("delivered %v", p)
			}
			if err := n.CheckQuiesced(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A multi-packet message is fully delivered, in order.
func TestMessagePacketization(t *testing.T) {
	n := newNet(t, 64, PolicyRECN)
	var sizes []int
	n.OnDeliver = func(p *pkt.Packet) { sizes = append(sizes, p.Size) }
	if err := n.InjectMessage(0, 42, 64*5+10); err != nil {
		t.Fatal(err)
	}
	n.Engine.Drain()
	if len(sizes) != 6 {
		t.Fatalf("delivered %d packets, want 6", len(sizes))
	}
	for i := 0; i < 5; i++ {
		if sizes[i] != 64 {
			t.Fatalf("packet %d size %d", i, sizes[i])
		}
	}
	if sizes[5] != 10 {
		t.Fatalf("tail packet size %d, want 10", sizes[5])
	}
	if n.OrderViolations != 0 {
		t.Fatalf("order violations: %d", n.OrderViolations)
	}
}

// Uniform random traffic under every policy: everything delivered in
// order and the network quiesces cleanly.
func TestUniformTrafficAllPolicies(t *testing.T) {
	for _, policy := range Policies {
		t.Run(policy.String(), func(t *testing.T) {
			n := newNet(t, 64, policy)
			rng := rand.New(rand.NewSource(11))
			// ~50% load for 30 µs from every host.
			for h := 0; h < 64; h++ {
				h := h
				var gen func()
				gen = func() {
					now := n.Engine.Now()
					if now > 30*sim.Microsecond {
						return
					}
					dst := rng.Intn(64)
					if dst == h {
						dst = (dst + 1) % 64
					}
					if err := n.InjectMessage(h, dst, 64); err != nil {
						t.Fatal(err)
					}
					n.Engine.After(sim.Time(64+rng.Intn(128))*sim.Nanosecond, gen)
				}
				n.Engine.Schedule(sim.Time(h)*sim.Nanosecond, gen)
			}
			n.Engine.Drain()
			if n.InjectedPackets == 0 || n.PendingPackets() != 0 {
				t.Fatalf("injected %d, pending %d", n.InjectedPackets, n.PendingPackets())
			}
			// 4Q spreads a flow's packets across queues by occupancy
			// and arn re-routes mid-flow — neither preserves order; all
			// other mechanisms must.
			if policy.PreservesOrder() && n.OrderViolations != 0 {
				t.Fatalf("order violations: %d", n.OrderViolations)
			}
			if err := n.CheckQuiesced(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A hotspot forms a congestion tree; RECN allocates SAQs while it
// lasts, keeps delivery lossless and in order, and deallocates
// everything afterwards.
func TestRECNHotspotLifecycle(t *testing.T) {
	n := newNet(t, 64, PolicyRECN)
	rng := rand.New(rand.NewSource(5))
	hot := 32
	// 16 sources blast the hotspot at full rate for 60 µs.
	for i := 0; i < 16; i++ {
		src := 48 + i
		var gen func()
		gen = func() {
			if n.Engine.Now() > 60*sim.Microsecond {
				return
			}
			if err := n.InjectMessage(src, hot, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	// Plus light background traffic.
	for h := 0; h < 16; h++ {
		h := h
		var gen func()
		gen = func() {
			if n.Engine.Now() > 60*sim.Microsecond {
				return
			}
			dst := rng.Intn(64)
			if dst == h || dst == hot {
				dst = (hot + 1 + h) % 64
			}
			if err := n.InjectMessage(h, dst, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(256*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	sawSAQs := 0
	var poll func()
	poll = func() {
		total, maxIn, maxEg := n.SAQUsage()
		if total > sawSAQs {
			sawSAQs = total
		}
		if maxIn > n.Config().RECN.MaxSAQs || maxEg > n.Config().RECN.MaxSAQs {
			t.Fatalf("per-port SAQ limit exceeded: in=%d eg=%d", maxIn, maxEg)
		}
		if n.Engine.Now() < 80*sim.Microsecond {
			n.Engine.After(sim.Microsecond, poll)
		}
	}
	n.Engine.Schedule(0, poll)
	n.Engine.Drain()

	if sawSAQs == 0 {
		t.Fatal("hotspot never triggered SAQ allocation")
	}
	if n.OrderViolations != 0 {
		t.Fatalf("order violations: %d", n.OrderViolations)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// The hotspot destination link is the bottleneck: delivered throughput
// to it cannot exceed link rate, and under RECN background flows are
// barely affected by the tree (qualitative Fig. 2 check happens in the
// experiments package; here we check the mechanics).
func TestHotspotRootForms(t *testing.T) {
	n := newNet(t, 64, PolicyRECN)
	hot := 7
	for i := 0; i < 8; i++ {
		src := 8 + i
		var gen func()
		gen = func() {
			if n.Engine.Now() > 40*sim.Microsecond {
				return
			}
			if err := n.InjectMessage(src, hot, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	// With destination-based deterministic routing the hotspot flows
	// merge at up-links, so the congestion root forms at the first
	// merge point (not necessarily the delivery port). Check that at
	// least one root forms somewhere in the network.
	rootSeen := false
	var poll func()
	poll = func() {
		for sw := 0; sw < n.Topology().NumSwitches() && !rootSeen; sw++ {
			for _, out := range n.Switch(sw).out {
				if out != nil && out.rc != nil && out.rc.Root() {
					rootSeen = true
					break
				}
			}
		}
		if rootSeen {
			return
		}
		if n.Engine.Now() < 40*sim.Microsecond {
			n.Engine.After(sim.Microsecond, poll)
		}
	}
	n.Engine.Schedule(0, poll)
	n.Engine.Drain()
	if !rootSeen {
		t.Fatal("congestion root never formed anywhere in the network")
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// Heavier randomized load on several seeds: losslessness and clean
// quiesce must hold regardless of policy.
func TestRandomLoadInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	for _, policy := range []Policy{Policy1Q, PolicyRECN, PolicyVOQnet} {
		for seed := int64(1); seed <= 3; seed++ {
			n := newNet(t, 64, policy)
			rng := rand.New(rand.NewSource(seed))
			for h := 0; h < 64; h++ {
				h := h
				var gen func()
				gen = func() {
					if n.Engine.Now() > 25*sim.Microsecond {
						return
					}
					dst := rng.Intn(64)
					if dst == h {
						dst = (dst + 1) % 64
					}
					size := 64 * (1 + rng.Intn(8))
					if err := n.InjectMessage(h, dst, size); err != nil {
						t.Fatal(err)
					}
					n.Engine.After(sim.Time(rng.Intn(600))*sim.Nanosecond, gen)
				}
				n.Engine.Schedule(0, gen)
			}
			n.Engine.Drain()
			if n.PendingPackets() != 0 || n.OrderViolations != 0 {
				t.Fatalf("policy %v seed %d: pending=%d violations=%d",
					policy, seed, n.PendingPackets(), n.OrderViolations)
			}
			if err := n.CheckQuiesced(); err != nil {
				t.Fatalf("policy %v seed %d: %v", policy, seed, err)
			}
		}
	}
}

// 512-byte packets work across policies that can hold them.
func TestLargePackets(t *testing.T) {
	for _, policy := range []Policy{Policy1Q, Policy4Q, PolicyVOQsw, PolicyRECN} {
		n := newNetWithPacket(t, 64, policy, 512)
		if err := n.InjectMessage(0, 63, 512*3); err != nil {
			t.Fatal(err)
		}
		n.Engine.Drain()
		if n.DeliveredPackets != 3 {
			t.Fatalf("%v: delivered %d", policy, n.DeliveredPackets)
		}
		if err := n.CheckQuiesced(); err != nil {
			t.Fatal(err)
		}
	}
}

func newNetWithPacket(t testing.TB, hosts int, policy Policy, pktSize int) *Network {
	t.Helper()
	topo, err := topology.ForHosts(hosts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = policy
	cfg.PacketSize = pktSize
	attachChecker(t, &cfg)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// Latency sanity: an unloaded packet's delivery time matches the sum of
// link serializations, crossbar transfers and fly times within a loose
// bound.
func TestUnloadedLatency(t *testing.T) {
	n := newNet(t, 64, PolicyRECN)
	var deliveredAt sim.Time
	n.OnDeliver = func(p *pkt.Packet) { deliveredAt = n.Engine.Now() }
	if err := n.InjectMessage(0, 63, 64); err != nil {
		t.Fatal(err)
	}
	n.Engine.Drain()
	// Longest route: 6 links (NIC→sw ×1, sw→sw ×4, sw→host ×1) at
	// 64 ns each, 5 crossbar transfers at ~42.7 ns, 6×20 ns fly time.
	min := sim.Time(6*64+5*42+6*20) * sim.Nanosecond / sim.Time(1)
	max := min + 100*sim.Nanosecond
	if deliveredAt < 6*64*sim.Nanosecond || deliveredAt > max {
		t.Fatalf("unloaded latency %v outside [%v, %v]", deliveredAt, 6*64*sim.Nanosecond, max)
	}
}

func TestSAQUsageZeroWithoutRECN(t *testing.T) {
	n := newNet(t, 64, PolicyVOQnet)
	total, maxIn, maxEg := n.SAQUsage()
	if total != 0 || maxIn != 0 || maxEg != 0 {
		t.Fatalf("SAQUsage = %d/%d/%d for VOQnet", total, maxIn, maxEg)
	}
}
