package fabric

import (
	"math/rand"
	"testing"

	"repro/internal/mempool"
)

// The lazy containers must be observationally identical to their dense
// counterparts under any operation sequence — that equivalence is what
// makes demand paging invisible to the goldens. Each test drives a
// lazy and a dense instance with the same randomized VOQnet-shaped
// workload (indexes clustered the way traffic clusters on a few
// destinations) and compares every observable after every step.

const lazyTestN = 4 * statePageLen // several pages, some never touched

// clusteredIndex mimics VOQnet traffic: most touches land on a few hot
// destinations, a tail wanders the lower half of the index space (the
// upper-half pages stay untouched, so the tests can also assert the
// paging win, not just equivalence).
func clusteredIndex(rng *rand.Rand, n int) int {
	if rng.Intn(4) > 0 {
		return (n / 3) + rng.Intn(8) // hot cluster
	}
	return rng.Intn(n / 2)
}

func TestQueueSetLazyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	poolL := mempool.NewPool(1 << 20)
	poolD := mempool.NewPool(1 << 20)
	var lz, dn queueSet
	lz.init(poolL, lazyTestN, 4096, true)
	dn.init(poolD, lazyTestN, 4096, false)
	for step := 0; step < 5000; step++ {
		i := clusteredIndex(rng, lazyTestN)
		switch rng.Intn(4) {
		case 0: // admission probe, must not materialize
			n := 64 + rng.Intn(512)
			if got, want := lz.canAccept(i, n), dn.canAccept(i, n); got != want {
				t.Fatalf("step %d: canAccept(%d, %d) = %v, dense %v", step, i, n, got, want)
			}
		case 1: // push through get (the only materializing op)
			n := 64 + rng.Intn(256)
			if lz.canAccept(i, n) {
				lz.get(i).Push(n, nil)
				dn.get(i).Push(n, nil)
			}
		case 2: // pop
			if q := lz.at(i); q != nil && !q.Empty() {
				e := q.Pop()
				q.ReleaseResident(e.Size)
				d := dn.get(i).Pop()
				dn.get(i).ReleaseResident(d.Size)
				if e.Size != d.Size {
					t.Fatalf("step %d: queue %d popped %d bytes, dense %d", step, i, e.Size, d.Size)
				}
			}
		case 3: // read-only residency probe
			if got, want := lz.queuedBytes(i), dn.queuedBytes(i); got != want {
				t.Fatalf("step %d: queuedBytes(%d) = %d, dense %d", step, i, got, want)
			}
		}
		if poolL.Used() != poolD.Used() {
			t.Fatalf("step %d: pool usage diverged: lazy %d, dense %d", step, poolL.Used(), poolD.Used())
		}
	}
	// Full sweep: every index agrees, and the lazy walk visits exactly
	// the non-empty subsequence of the dense walk in the same order.
	for i := 0; i < lazyTestN; i++ {
		if lz.queuedBytes(i) != dn.queuedBytes(i) {
			t.Fatalf("final: queuedBytes(%d) = %d, dense %d", i, lz.queuedBytes(i), dn.queuedBytes(i))
		}
	}
	var lazyOrder []int
	lz.forEach(func(i int, q *mempool.Queue) { lazyOrder = append(lazyOrder, i) })
	for j := 1; j < len(lazyOrder); j++ {
		if lazyOrder[j] <= lazyOrder[j-1] {
			t.Fatalf("lazy forEach out of index order: %v", lazyOrder)
		}
	}
	queues, _, ptrs := lz.memCount()
	if queues != len(lazyOrder) {
		t.Fatalf("memCount queues %d != materialized %d", queues, len(lazyOrder))
	}
	if ptrs >= lazyTestN {
		t.Fatalf("lazy set paid %d pointer slots for %d indexes (no paging win)", ptrs, lazyTestN)
	}
}

func TestCreditSetLazyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const start = 96
	var lz, dn creditSet
	lz.init(lazyTestN, start, true)
	dn.init(lazyTestN, start, false)
	for step := 0; step < 5000; step++ {
		i := clusteredIndex(rng, lazyTestN)
		switch rng.Intn(3) {
		case 0: // read, must not materialize
			if got, want := lz.value(i), dn.value(i); got != want {
				t.Fatalf("step %d: value(%d) = %d, dense %d", step, i, got, want)
			}
		case 1: // spend
			if *lz.slot(i) > 0 {
				*lz.slot(i)--
				*dn.slot(i)--
			}
		case 2: // replenish
			*lz.slot(i)++
			*dn.slot(i)++
		}
	}
	for i := 0; i < lazyTestN; i++ {
		if lz.value(i) != dn.value(i) {
			t.Fatalf("final: value(%d) = %d, dense %d", i, lz.value(i), dn.value(i))
		}
	}
	// Stable interior pointers: a slot taken before later
	// materializations still writes through.
	p := lz.slot(0)
	*lz.slot(lazyTestN - 1) = 7 // touch the last page
	*p = 42
	if lz.value(0) != 42 {
		t.Fatalf("slot pointer went stale after later materialization: value(0) = %d", lz.value(0))
	}
	if lz.memCount() >= lazyTestN {
		t.Fatalf("lazy credit set materialized %d slots of %d (no paging win)", lz.memCount(), lazyTestN)
	}
}

func TestActiveListLazyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := lazyPosThreshold + 3*statePageLen // big enough to actually go lazy
	var lz, dn activeList
	lz.init(n, true)
	dn.init(n, false)
	if !lz.lazy {
		t.Fatalf("activeList with n=%d did not switch to paged slots", n)
	}
	for step := 0; step < 8000; step++ {
		i := clusteredIndex(rng, n)
		if rng.Intn(3) > 0 {
			lz.add(i)
			dn.add(i)
		} else {
			lz.remove(i)
			dn.remove(i)
		}
		if lz.len() != dn.len() {
			t.Fatalf("step %d: len %d, dense %d", step, lz.len(), dn.len())
		}
	}
	// Same members in the same iteration order (arbiter fairness
	// depends on the order, not just the set).
	for j := 0; j < lz.len(); j++ {
		if lz.at(j) != dn.at(j) {
			t.Fatalf("item %d: lazy %d, dense %d", j, lz.at(j), dn.at(j))
		}
	}
	if lz.memCount() >= dn.memCount() {
		t.Fatalf("lazy active list paid %d slots, dense pays %d (no paging win)", lz.memCount(), dn.memCount())
	}
}

func TestDestSetLazyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var lz, dn destSet
	lz.init(lazyTestN, true)
	dn.init(lazyTestN, false)
	for step := 0; step < 5000; step++ {
		i := clusteredIndex(rng, lazyTestN)
		if rng.Intn(2) == 0 {
			lz.get(i).bytes += 64
			dn.get(i).bytes += 64
		}
		var got int
		if d := lz.at(i); d != nil {
			got = d.bytes
		}
		if want := dn.at(i).bytes; got != want {
			t.Fatalf("step %d: dest %d bytes %d, dense %d", step, i, got, want)
		}
	}
	// Pointer stability across later materializations.
	p := lz.get(1)
	lz.get(lazyTestN - 1).bytes = 9
	p.bytes = 1234
	if lz.at(1).bytes != 1234 {
		t.Fatalf("nicDest pointer went stale: bytes = %d", lz.at(1).bytes)
	}
	if lz.memCount() >= lazyTestN {
		t.Fatalf("lazy dest set materialized %d slots of %d (no paging win)", lz.memCount(), lazyTestN)
	}
}
