package fabric

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// testRecovery returns aggressive timers so recovery fires well within
// a short test run.
func testRecovery() fault.Recovery {
	return fault.Recovery{
		Enabled:      true,
		Period:       2 * sim.Microsecond,
		TokenTimeout: 20 * sim.Microsecond,
		XoffResend:   30 * sim.Microsecond,
		XonTimeout:   20 * sim.Microsecond,
		CreditQuiet:  10 * sim.Microsecond,
		StallTimeout: 50 * sim.Microsecond,
	}
}

func newFaultNet(t testing.TB, hosts int, plan *fault.Plan, rec fault.Recovery) *Network {
	t.Helper()
	topo, err := topology.ForHosts(hosts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = PolicyRECN
	cfg.Faults = plan
	cfg.Recovery = rec
	attachChecker(t, &cfg)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// installHotspot drives 16 sources at a hotspot plus light background
// traffic until `until`, all with a fixed seed: the workload is
// identical across runs.
func installHotspot(t testing.TB, n *Network, until sim.Time) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	hot := 32
	for i := 0; i < 16; i++ {
		src := 48 + i
		var gen func()
		gen = func() {
			if n.Engine.Now() > until {
				return
			}
			if err := n.InjectMessage(src, hot, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(64*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
	for h := 0; h < 16; h++ {
		h := h
		var gen func()
		gen = func() {
			if n.Engine.Now() > until {
				return
			}
			dst := rng.Intn(64)
			if dst == h || dst == hot {
				dst = (hot + 1 + h) % 64
			}
			if err := n.InjectMessage(h, dst, 64); err != nil {
				t.Fatal(err)
			}
			n.Engine.After(256*sim.Nanosecond, gen)
		}
		n.Engine.Schedule(0, gen)
	}
}

// scenarioPlan is the ISSUE's deterministic fault scenario: lost
// tokens, lost Xoffs, lost notifications and one mid-run link flap.
func scenarioPlan() *fault.Plan {
	return fault.NewPlan(42).
		Drop(fault.Token, 3).
		Drop(fault.Xoff, 2).
		Drop(fault.Notify, 2).
		Flap(fault.LinkFlap{Switch: 0, Port: 4, Host: -1,
			Down: 10 * sim.Microsecond, Up: 18 * sim.Microsecond})
}

func runScenario(t *testing.T) (*Network, *stats.FaultReport) {
	t.Helper()
	n := newFaultNet(t, 64, scenarioPlan(), testRecovery())
	installHotspot(t, n, 40*sim.Microsecond)
	n.Engine.Drain()
	r := n.FaultReport()
	if r == nil {
		t.Fatal("no fault report on a faulted network")
	}
	return n, r
}

// TestFaultScenarioRecovery is the headline robustness scenario:
// dropped tokens, Xoffs and notifications plus a link flap, and the
// network still delivers every packet, quiesces cleanly, and the
// report accounts for every injected fault.
func TestFaultScenarioRecovery(t *testing.T) {
	n, r := runScenario(t)

	if n.InjectedPackets == 0 || n.InjectedPackets != n.DeliveredPackets {
		t.Fatalf("injected %d, delivered %d", n.InjectedPackets, n.DeliveredPackets)
	}
	if n.OrderViolations != 0 {
		t.Fatalf("order violations: %d", n.OrderViolations)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}

	// Every scripted fault executed and is accounted for.
	if r.Dropped[stats.FaultToken] != 3 {
		t.Errorf("dropped tokens = %d, want 3", r.Dropped[stats.FaultToken])
	}
	if r.Dropped[stats.FaultXoff] != 2 {
		t.Errorf("dropped xoffs = %d, want 2", r.Dropped[stats.FaultXoff])
	}
	if r.Dropped[stats.FaultNotify] != 2 {
		t.Errorf("dropped notifies = %d, want 2", r.Dropped[stats.FaultNotify])
	}
	if r.LinkDowns != 1 || r.LinkUps != 1 {
		t.Errorf("flap accounting: downs=%d ups=%d, want 1/1", r.LinkDowns, r.LinkUps)
	}
	if r.InjectedFaults() != 3+2+2+1 {
		t.Errorf("InjectedFaults() = %d, want 8", r.InjectedFaults())
	}
	// The dropped tokens leaked SAQs; the watchdog must have reclaimed
	// at least one for the network to have drained.
	if r.SAQsReclaimed == 0 {
		t.Error("no SAQs reclaimed despite dropped tokens")
	}
	// After recovery the network drained completely, so any stall the
	// watchdog saw was transient: nothing is pending now.
	if n.PendingPackets() != 0 {
		t.Fatalf("pending packets after drain: %d", n.PendingPackets())
	}
}

// TestFaultScenarioDeterministic runs the same seeded scenario twice
// and requires bit-identical results, including the fault report.
func TestFaultScenarioDeterministic(t *testing.T) {
	n1, r1 := runScenario(t)
	n2, r2 := runScenario(t)
	if n1.InjectedPackets != n2.InjectedPackets || n1.DeliveredPackets != n2.DeliveredPackets {
		t.Fatalf("runs differ: injected %d/%d, delivered %d/%d",
			n1.InjectedPackets, n2.InjectedPackets, n1.DeliveredPackets, n2.DeliveredPackets)
	}
	if n1.Engine.Executed != n2.Engine.Executed {
		t.Fatalf("event counts differ: %d vs %d", n1.Engine.Executed, n2.Engine.Executed)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("fault reports differ:\n%s\n%s", r1, r2)
	}
}

// TestFaultCreditResync drops credit updates and checks the watchdog
// restores the exact lost amount once the links go quiet: the network
// quiesces with conserved credit counts.
func TestFaultCreditResync(t *testing.T) {
	plan := fault.NewPlan(7).Drop(fault.Credit, 8)
	n := newFaultNet(t, 64, plan, testRecovery())
	for i := 0; i < 32; i++ {
		src, dst := i, 63-i
		if src == dst {
			continue
		}
		if err := n.InjectMessage(src, dst, 256); err != nil {
			t.Fatal(err)
		}
	}
	n.Engine.Drain()
	r := n.FaultReport()
	if n.InjectedPackets != n.DeliveredPackets {
		t.Fatalf("injected %d, delivered %d", n.InjectedPackets, n.DeliveredPackets)
	}
	if r.Dropped[stats.FaultCredit] != 8 {
		t.Fatalf("dropped credits = %d, want 8", r.Dropped[stats.FaultCredit])
	}
	if r.CreditResyncs == 0 || r.CreditsRestored == 0 {
		t.Fatalf("no credit resync: resyncs=%d restored=%d", r.CreditResyncs, r.CreditsRestored)
	}
	// 8 credits of 64 bytes each were lost and must all be back.
	if r.CreditsRestored != 8*64 {
		t.Errorf("credits restored = %d bytes, want %d", r.CreditsRestored, 8*64)
	}
	if r.CreditViolations != 0 {
		t.Errorf("credit violations: %d", r.CreditViolations)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultXonOverride drops Xon restarts: the egress SAQs they were
// meant to release stay remotely stopped until the watchdog clears the
// stale stop, so a completed drain proves the override fired.
func TestFaultXonOverride(t *testing.T) {
	plan := fault.NewPlan(3).Drop(fault.Xon, 2)
	n := newFaultNet(t, 64, plan, testRecovery())
	installHotspot(t, n, 30*sim.Microsecond)
	n.Engine.Drain()
	r := n.FaultReport()
	if n.InjectedPackets != n.DeliveredPackets {
		t.Fatalf("injected %d, delivered %d", n.InjectedPackets, n.DeliveredPackets)
	}
	if r.Dropped[stats.FaultXon] == 0 {
		t.Skip("workload produced no Xon traffic to drop")
	}
	if r.XonOverridden == 0 {
		t.Error("dropped Xons but no override recorded")
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultCorruption damages every Nth payload packet on a link; the
// fabric stays lossless (corrupt packets are delivered and flagged, the
// end-to-end check model) and the report counts both sides.
func TestFaultCorruption(t *testing.T) {
	plan := fault.NewPlan(1).Corrupt(10)
	n := newFaultNet(t, 64, plan, fault.Recovery{})
	for i := 0; i < 16; i++ {
		if err := n.InjectMessage(i, 32+i, 640); err != nil {
			t.Fatal(err)
		}
	}
	n.Engine.Drain()
	r := n.FaultReport()
	if n.InjectedPackets != n.DeliveredPackets {
		t.Fatalf("injected %d, delivered %d", n.InjectedPackets, n.DeliveredPackets)
	}
	if r.Corrupted == 0 {
		t.Fatal("corruption never fired")
	}
	if r.CorruptedDelivered == 0 || r.CorruptedDelivered > r.Corrupted {
		t.Fatalf("corrupted=%d delivered-corrupt=%d", r.Corrupted, r.CorruptedDelivered)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultHostLinkFlap takes a host's injection link down mid-stream;
// queued packets wait out the outage and delivery completes after the
// link returns.
func TestFaultHostLinkFlap(t *testing.T) {
	plan := fault.NewPlan(1).Flap(fault.LinkFlap{Host: 3,
		Down: 1 * sim.Microsecond, Up: 5 * sim.Microsecond})
	n := newFaultNet(t, 64, plan, testRecovery())
	var gen func()
	count := 0
	gen = func() {
		if count >= 200 {
			return
		}
		count++
		if err := n.InjectMessage(3, 40, 64); err != nil {
			t.Fatal(err)
		}
		n.Engine.After(64*sim.Nanosecond, gen)
	}
	n.Engine.Schedule(0, gen)
	n.Engine.Drain()
	r := n.FaultReport()
	if n.DeliveredPackets != 200 {
		t.Fatalf("delivered %d, want 200", n.DeliveredPackets)
	}
	if r.LinkDowns != 1 || r.LinkUps != 1 {
		t.Fatalf("flap accounting: downs=%d ups=%d", r.LinkDowns, r.LinkUps)
	}
	if err := n.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultDisabledIsFree: with no plan and no recovery, the network
// reports nil and behaves exactly as the seed (the bit-identity of
// figure outputs is checked by the repro-level runs; here we check the
// report stays nil and nothing extra is scheduled).
func TestFaultDisabledIsFree(t *testing.T) {
	n := newNet(t, 64, PolicyRECN)
	if n.FaultReport() != nil {
		t.Fatal("unfaulted network has a fault report")
	}
	if err := n.InjectMessage(0, 63, 64); err != nil {
		t.Fatal(err)
	}
	n.Engine.Drain()
	if n.DeliveredPackets != 1 {
		t.Fatalf("delivered %d", n.DeliveredPackets)
	}
}
