package fabric

import (
	"testing"

	"repro/internal/topology"
)

// An eagerly built network must report, at construction time, exactly
// the footprint the analytic model predicts — the model is the
// denominator of every lazy/eager ratio the scaling figure prints, so
// any drift between the two silently corrupts the figure.
func TestEagerMemStatsMatchesModel(t *testing.T) {
	for _, p := range []Policy{
		Policy1Q, Policy4Q, PolicyVOQsw, PolicyVOQnet,
		PolicyRECN, PolicyThrottle, PolicyARN,
	} {
		t.Run(p.String(), func(t *testing.T) {
			topo, err := topology.ForHosts(64)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(topo)
			cfg.Policy = p
			cfg.EagerState = true
			net, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := net.MemStats()
			want := EagerMemModel(cfg)
			if got != want {
				t.Errorf("eager MemStats() = %+v\nEagerMemModel  = %+v", got, want)
			}
		})
	}
}

// The lazy fabric must start out paying only page tables: a fraction
// of the eager model before any traffic, for the policies with
// O(hosts) per-port state.
func TestLazyConstructionFootprint(t *testing.T) {
	topo, err := topology.ForHosts(256)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(topo)
	cfg.Policy = PolicyVOQnet
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lazy := net.MemStats()
	eager := EagerMemModel(cfg)
	if lazy.StateBytes <= 0 || eager.StateBytes <= 0 {
		t.Fatalf("degenerate footprints: lazy %d, eager %d", lazy.StateBytes, eager.StateBytes)
	}
	if ratio := float64(lazy.StateBytes) / float64(eager.StateBytes); ratio > 0.10 {
		t.Errorf("untouched lazy VOQnet fabric pays %.1f%% of the eager footprint (want ≤ 10%%): lazy %d B, eager %d B",
			100*ratio, lazy.StateBytes, eager.StateBytes)
	}
}
