package throttle

import (
	"math/rand"
	"testing"
)

// randConfig builds a valid config with randomized tunables.
func randConfig(rng *rand.Rand) Config {
	c := DefaultConfig()
	c.MinRateMilli = 1 + rng.Intn(400)
	c.DecreaseMilli = 100 + rng.Intn(800)
	c.IncreaseMilli = 1 + rng.Intn(200)
	c.MarkBytes = 1 + rng.Intn(1<<20)
	return c
}

// Under any interleaving of CNPs and AI ticks the rate must stay inside
// [MinRateMilli, FullRateMilli] — the invariant the runtime checker
// also audits mid-simulation.
func TestRateStaysBoundedUnderArbitraryMarks(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randConfig(rng)
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := NewState()
		for step := 0; step < 10_000; step++ {
			if rng.Intn(2) == 0 {
				s.OnCNP(c)
			} else {
				s.OnTick(c)
			}
			if s.RateMilli < c.MinRateMilli || s.RateMilli > FullRateMilli {
				t.Fatalf("seed %d step %d: rate %d outside [%d, %d]",
					seed, step, s.RateMilli, c.MinRateMilli, FullRateMilli)
			}
		}
	}
}

// Once CNPs stop, a source must return to full rate within SettleTicks
// additive-increase periods, from any reachable state — the bound the
// fabric's quiesce check relies on.
func TestQuiescentSourceSettlesWithinBound(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randConfig(rng)
		s := NewState()
		// Drive to an arbitrary reachable state.
		for i := 0; i < rng.Intn(100); i++ {
			s.OnCNP(c)
		}
		bound := SettleTicks(c)
		ticks := 0
		for !s.Full() {
			if s.OnTick(c) {
				break
			}
			ticks++
			if ticks > bound {
				t.Fatalf("seed %d: not settled after %d ticks (bound %d, rate %d)",
					seed, ticks, bound, s.RateMilli)
			}
		}
		if !s.Full() {
			t.Fatalf("seed %d: settled without reaching full rate", seed)
		}
	}
}

// OnTick reports true exactly when the source reaches (or is at) full
// rate, and a full source is never charged further increase.
func TestTickAtFullRateIsIdempotent(t *testing.T) {
	c := DefaultConfig()
	s := NewState()
	if !s.Full() {
		t.Fatalf("fresh state not at full rate: %d", s.RateMilli)
	}
	if !s.OnTick(c) {
		t.Fatal("OnTick at full rate must report settled")
	}
	if s.RateMilli != FullRateMilli {
		t.Fatalf("rate overshot: %d", s.RateMilli)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randConfig(rng)
		back, err := ParseSpec(c.String())
		if err != nil {
			t.Fatalf("seed %d: ParseSpec(%q): %v", seed, c.String(), err)
		}
		if back != c {
			t.Fatalf("seed %d: round trip %q -> %+v, want %+v", seed, c.String(), back, c)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",          // unknown key
		"mark",             // not key=value
		"mark=xyz",         // not a number
		"min=0",            // below floor
		"min=2000",         // above line rate
		"dec=1001",         // increase disguised as decrease
		"inc=0",            // no recovery
		"period=5",         // missing time unit
		"delay=-1us",       // negative duration
		"mark=16384,min=,", // empty value
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected error", spec)
		}
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}
