// Package throttle implements the end-point injection-throttling
// congestion-management policy's rate controller: ECN-style marks set
// by congested switch output queues travel to the destination, which
// returns congestion notification packets (CNPs) to the marked source;
// each source runs an additive-increase/multiplicative-decrease state
// machine over its injection rate (the DCQCN family of schemes — see
// DESIGN.md §16).
//
// The controller is a pure state machine over integer milli-rates
// (units of 1/1000 of the line rate): the surrounding fabric owns time,
// mark transport and the pacing of packets, and calls OnCNP/OnTick.
// Integer arithmetic keeps runs bit-identical across shard counts and
// makes the controller trivially unit-testable without a simulator.
package throttle

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// FullRateMilli is the line rate in milli-units: a source at this rate
// is not throttled at all (the pacer is bypassed entirely).
const FullRateMilli = 1000

// Config holds the throttle tunables.
type Config struct {
	// MarkBytes is the switch output-queue occupancy at or above which
	// stored packets are ECN-marked.
	MarkBytes int
	// MinRateMilli is the injection-rate floor in milli-units of the
	// line rate: multiplicative decrease never goes below it, so a
	// throttled source always makes progress (no livelock).
	MinRateMilli int
	// DecreaseMilli is the multiplicative-decrease factor in
	// milli-units: on a CNP the rate becomes rate·DecreaseMilli/1000
	// (floored at MinRateMilli). 500 halves the rate.
	DecreaseMilli int
	// IncreaseMilli is the additive-increase step: every Period the
	// rate grows by this many milli-units until it reaches full rate.
	IncreaseMilli int
	// Period is the additive-increase timer period.
	Period sim.Time
	// FeedbackDelay is the destination→source CNP latency. It must
	// exceed the link latency so the mailboxed delivery stays
	// shard-count-invariant (fabric.ScheduleRemote's contract).
	FeedbackDelay sim.Time
	// CNPInterval coalesces CNPs at the destination: at most one CNP
	// per marked source per interval.
	CNPInterval sim.Time
}

// DefaultConfig returns the tunables used by the experiments.
func DefaultConfig() Config {
	return Config{
		MarkBytes:     16 * 1024,
		MinRateMilli:  100,
		DecreaseMilli: 500,
		IncreaseMilli: 50,
		Period:        5 * sim.Microsecond,
		FeedbackDelay: 500 * sim.Nanosecond,
		CNPInterval:   1 * sim.Microsecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MarkBytes <= 0:
		return fmt.Errorf("throttle: MarkBytes %d ≤ 0", c.MarkBytes)
	case c.MinRateMilli < 1 || c.MinRateMilli > FullRateMilli:
		return fmt.Errorf("throttle: MinRateMilli %d outside [1, %d]", c.MinRateMilli, FullRateMilli)
	case c.DecreaseMilli < 1 || c.DecreaseMilli >= FullRateMilli:
		return fmt.Errorf("throttle: DecreaseMilli %d outside [1, %d)", c.DecreaseMilli, FullRateMilli)
	case c.IncreaseMilli < 1 || c.IncreaseMilli > FullRateMilli:
		return fmt.Errorf("throttle: IncreaseMilli %d outside [1, %d]", c.IncreaseMilli, FullRateMilli)
	case c.Period <= 0:
		return fmt.Errorf("throttle: Period %v ≤ 0", c.Period)
	case c.FeedbackDelay <= 0:
		return fmt.Errorf("throttle: FeedbackDelay %v ≤ 0", c.FeedbackDelay)
	case c.CNPInterval < 0:
		return fmt.Errorf("throttle: negative CNPInterval %v", c.CNPInterval)
	}
	return nil
}

// String renders the canonical spec form (ParseSpec round-trips it).
func (c Config) String() string {
	return fmt.Sprintf("mark=%d,min=%d,dec=%d,inc=%d,period=%s,delay=%s,cnp=%s",
		c.MarkBytes, c.MinRateMilli, c.DecreaseMilli, c.IncreaseMilli,
		c.Period, c.FeedbackDelay, c.CNPInterval)
}

// ParseSpec parses a comma-separated key=value tunable spec, starting
// from DefaultConfig. Keys: mark (bytes), min/dec/inc (milli-rate
// units), period/delay/cnp (durations, sim.ParseTime syntax). The
// result is validated.
func ParseSpec(spec string) (Config, error) {
	c := DefaultConfig()
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("throttle: field %q is not key=value", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "mark", "min", "dec", "inc":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Config{}, fmt.Errorf("throttle: %s=%q: %v", key, val, err)
			}
			switch key {
			case "mark":
				c.MarkBytes = n
			case "min":
				c.MinRateMilli = n
			case "dec":
				c.DecreaseMilli = n
			case "inc":
				c.IncreaseMilli = n
			}
		case "period", "delay", "cnp":
			d, err := sim.ParseTime(val)
			if err != nil {
				return Config{}, fmt.Errorf("throttle: %s=%q: %v", key, val, err)
			}
			switch key {
			case "period":
				c.Period = d
			case "delay":
				c.FeedbackDelay = d
			case "cnp":
				c.CNPInterval = d
			}
		default:
			return Config{}, fmt.Errorf("throttle: unknown key %q (valid: mark, min, dec, inc, period, delay, cnp)", key)
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// State is one source's AIMD rate state. The zero value is invalid;
// use NewState.
type State struct {
	// RateMilli is the current injection rate in milli-units of the
	// line rate, always within [Config.MinRateMilli, FullRateMilli].
	RateMilli int
}

// NewState returns a source at full injection rate.
func NewState() State { return State{RateMilli: FullRateMilli} }

// OnCNP applies the multiplicative decrease for one received CNP.
func (s *State) OnCNP(c Config) {
	r := s.RateMilli * c.DecreaseMilli / FullRateMilli
	if r < c.MinRateMilli {
		r = c.MinRateMilli
	}
	s.RateMilli = r
}

// OnTick applies one additive-increase step and reports whether the
// source is back at full rate (the caller stops its timer then).
func (s *State) OnTick(c Config) bool {
	r := s.RateMilli + c.IncreaseMilli
	if r >= FullRateMilli {
		r = FullRateMilli
	}
	s.RateMilli = r
	return r == FullRateMilli
}

// Full reports whether the source is at full injection rate.
func (s *State) Full() bool { return s.RateMilli == FullRateMilli }

// SettleTicks bounds the additive-increase ticks needed to return any
// valid state to full rate once CNPs stop: the recovery-time guarantee
// the invariant checker and the property tests rely on.
func SettleTicks(c Config) int {
	return (FullRateMilli - c.MinRateMilli + c.IncreaseMilli - 1) / c.IncreaseMilli
}
