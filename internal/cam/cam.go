// Package cam models the content-addressable memory attached to every
// group of set-aside queues (paper §3.4, Figure 1). Each CAM line holds
// the routing information — the path from this port to the root of a
// congestion tree. Every incoming packet's destination routing field is
// compared against all lines; the longest match selects the SAQ the
// packet must be stored in (paper §3.6), which automatically resolves
// overlapping congestion trees and subtree relationships.
package cam

import (
	"fmt"

	"repro/internal/pkt"
)

// Table is a fixed-capacity CAM. Line IDs are stable for the lifetime
// of an allocation and double as SAQ identifiers.
//
// The table is deliberately map-free: with at most a handful of lines
// (the paper fixes 8 SAQs per port) a linear scan over packed path
// words beats a string-keyed map and — like the hardware it models —
// performs no allocation per lookup. Line assignment is a linear scan
// for the lowest free index, so allocation order is a pure function of
// the call sequence, never of map iteration order.
type Table struct {
	paths []pkt.Path
	valid []bool
	used  int
}

// New returns a CAM with the given number of lines.
func New(capacity int) *Table {
	if capacity <= 0 {
		panic(fmt.Sprintf("cam: invalid capacity %d", capacity))
	}
	return &Table{
		paths: make([]pkt.Path, capacity),
		valid: make([]bool, capacity),
	}
}

// Capacity returns the number of CAM lines.
func (t *Table) Capacity() int { return len(t.paths) }

// Used returns the number of allocated lines.
func (t *Table) Used() int { return t.used }

// Full reports whether no line is free.
func (t *Table) Full() bool { return t.used == len(t.paths) }

// Allocate claims the lowest-numbered free line for path p. It returns
// (-1, false) when the CAM is full — the caller then refuses the
// congestion notification and returns the token (paper §3.8).
// Allocating a path that is already present panics: callers must Lookup
// first (duplicate notifications are filtered by the sender-side flags).
func (t *Table) Allocate(p pkt.Path) (int, bool) {
	if _, ok := t.Lookup(p); ok {
		panic(fmt.Sprintf("cam: duplicate allocation of path %v", p))
	}
	if t.Full() {
		return -1, false
	}
	for id := range t.valid {
		if !t.valid[id] {
			t.valid[id] = true
			t.paths[id] = p
			t.used++
			return id, true
		}
	}
	panic("cam: inconsistent used count")
}

// Lookup finds the line holding exactly path p.
func (t *Table) Lookup(p pkt.Path) (int, bool) {
	for id, ok := range t.valid {
		if ok && t.paths[id] == p {
			return id, true
		}
	}
	return -1, false
}

// Path returns the path stored in a valid line.
func (t *Table) Path(id int) pkt.Path {
	t.check(id)
	return t.paths[id]
}

// Free releases a line.
func (t *Table) Free(id int) {
	t.check(id)
	t.valid[id] = false
	t.paths[id] = pkt.Path{}
	t.used--
}

func (t *Table) check(id int) {
	if id < 0 || id >= len(t.valid) || !t.valid[id] {
		panic(fmt.Sprintf("cam: invalid line %d", id))
	}
}

// Match performs the longest-prefix match of a packet's remaining route
// (route[hop:]) against all valid lines. It returns the matching line
// ID, or (-1, false) when no line matches (the packet then goes to the
// queue for uncongested flows). The route remainder is packed once and
// compared against every line as whole words.
func (t *Table) Match(route pkt.Route, hop int) (int, bool) {
	pr := pkt.PackRoute(route, hop)
	best, bestLen := -1, -1
	for id, ok := range t.valid {
		if !ok {
			continue
		}
		p := t.paths[id]
		if p.Len() > bestLen && p.MatchesPacked(pr) {
			best, bestLen = id, p.Len()
		}
	}
	return best, best >= 0
}

// ForEach calls fn for every valid line.
func (t *Table) ForEach(fn func(id int, p pkt.Path)) {
	for id, ok := range t.valid {
		if ok {
			fn(id, t.paths[id])
		}
	}
}
