package cam

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pkt"
)

func TestAllocateLookupFree(t *testing.T) {
	c := New(4)
	if c.Capacity() != 4 || c.Used() != 0 || c.Full() {
		t.Fatalf("fresh CAM: cap=%d used=%d full=%v", c.Capacity(), c.Used(), c.Full())
	}
	p := pkt.PathOf(5, 1)
	id, ok := c.Allocate(p)
	if !ok {
		t.Fatal("Allocate failed on empty CAM")
	}
	if got, ok := c.Lookup(p); !ok || got != id {
		t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
	if !c.Path(id).Equal(p) {
		t.Fatalf("Path(%d) = %v", id, c.Path(id))
	}
	c.Free(id)
	if _, ok := c.Lookup(p); ok {
		t.Fatal("Lookup found freed line")
	}
	if c.Used() != 0 {
		t.Fatalf("Used = %d after free", c.Used())
	}
}

func TestAllocateFull(t *testing.T) {
	c := New(2)
	c.Allocate(pkt.PathOf(1))
	c.Allocate(pkt.PathOf(2))
	if id, ok := c.Allocate(pkt.PathOf(3)); ok || id != -1 {
		t.Fatalf("Allocate on full CAM = (%d,%v)", id, ok)
	}
	if !c.Full() {
		t.Fatal("Full() = false on full CAM")
	}
}

func TestDuplicateAllocatePanics(t *testing.T) {
	c := New(4)
	c.Allocate(pkt.PathOf(1, 2))
	defer func() {
		if recover() == nil {
			t.Error("duplicate Allocate did not panic")
		}
	}()
	c.Allocate(pkt.PathOf(1, 2))
}

func TestInvalidLinePanics(t *testing.T) {
	c := New(2)
	for name, fn := range map[string]func(){
		"Path out of range": func() { c.Path(5) },
		"Free unallocated":  func() { c.Free(0) },
		"New(0)":            func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLongestMatch(t *testing.T) {
	c := New(8)
	idShort, _ := c.Allocate(pkt.PathOf(4))
	idLong, _ := c.Allocate(pkt.PathOf(4, 2))
	idOther, _ := c.Allocate(pkt.PathOf(6, 1))

	route := pkt.Route{4, 2, 0}
	// Both 4 and 4.2 match; longest wins (subtree of a larger tree).
	if id, ok := c.Match(route, 0); !ok || id != idLong {
		t.Fatalf("Match = (%d,%v), want (%d,true)", id, ok, idLong)
	}
	// After the first hop only nothing matches at hop 1 (route 2,0).
	if _, ok := c.Match(route, 1); ok {
		t.Fatal("Match at hop 1 should fail")
	}
	// A route crossing only the short path.
	if id, ok := c.Match(pkt.Route{4, 3}, 0); !ok || id != idShort {
		t.Fatalf("Match = (%d,%v), want (%d,true)", id, ok, idShort)
	}
	if id, ok := c.Match(pkt.Route{6, 1, 1, 0}, 0); !ok || id != idOther {
		t.Fatalf("Match = (%d,%v), want (%d,true)", id, ok, idOther)
	}
	// Uncongested flow sharing the output port but not the tree: no match.
	if _, ok := c.Match(pkt.Route{6, 2}, 0); ok {
		t.Fatal("unrelated route matched")
	}
}

func TestMatchAfterFree(t *testing.T) {
	c := New(4)
	id1, _ := c.Allocate(pkt.PathOf(3, 3))
	id2, _ := c.Allocate(pkt.PathOf(3))
	c.Free(id1)
	if id, ok := c.Match(pkt.Route{3, 3, 1}, 0); !ok || id != id2 {
		t.Fatalf("Match after free = (%d,%v), want (%d,true)", id, ok, id2)
	}
}

func TestLineReuse(t *testing.T) {
	c := New(1)
	id1, _ := c.Allocate(pkt.PathOf(1))
	c.Free(id1)
	id2, ok := c.Allocate(pkt.PathOf(2))
	if !ok || id2 != id1 {
		t.Fatalf("line not reused: id2=%d ok=%v", id2, ok)
	}
}

func TestForEach(t *testing.T) {
	c := New(4)
	c.Allocate(pkt.PathOf(1))
	id, _ := c.Allocate(pkt.PathOf(2))
	c.Allocate(pkt.PathOf(3))
	c.Free(id)
	var n int
	c.ForEach(func(id int, p pkt.Path) { n++ })
	if n != 2 {
		t.Fatalf("ForEach visited %d lines, want 2", n)
	}
}

// Property: Match returns the longest matching line, comparing against a
// brute-force reference.
func TestQuickLongestMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(16)
		type entry struct {
			id   int
			path pkt.Path
		}
		var entries []entry
		for i := 0; i < 10; i++ {
			n := rng.Intn(4) + 1
			turns := make([]pkt.Turn, n)
			for j := range turns {
				turns[j] = pkt.Turn(rng.Intn(4))
			}
			p := pkt.PathOf(turns...)
			if _, ok := c.Lookup(p); ok {
				continue
			}
			id, ok := c.Allocate(p)
			if !ok {
				break
			}
			entries = append(entries, entry{id, p})
		}
		for trial := 0; trial < 20; trial++ {
			route := make(pkt.Route, rng.Intn(6))
			for j := range route {
				route[j] = pkt.Turn(rng.Intn(4))
			}
			hop := 0
			if len(route) > 0 {
				hop = rng.Intn(len(route))
			}
			wantID, wantLen := -1, -1
			for _, e := range entries {
				if e.path.Len() > wantLen && e.path.MatchesRoute(route, hop) {
					wantID, wantLen = e.id, e.path.Len()
				}
			}
			gotID, gotOK := c.Match(route, hop)
			if gotOK != (wantID >= 0) {
				return false
			}
			if gotOK && c.Path(gotID).Len() != wantLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Used() always equals allocations minus frees, and Allocate
// succeeds iff not Full.
func TestQuickUsedInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(8)
		live := map[int]bool{}
		next := byte(0)
		for _, op := range ops {
			if op%2 == 0 {
				full := c.Full()
				next++
				id, ok := c.Allocate(pkt.PathOf(next, byte(op)))
				if ok == full {
					return false
				}
				if ok {
					live[id] = true
				}
			} else if len(live) > 0 {
				for id := range live {
					c.Free(id)
					delete(live, id)
					break
				}
			}
			if c.Used() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatch8Lines(b *testing.B) {
	c := New(8)
	for i := 0; i < 8; i++ {
		c.Allocate(pkt.PathOf(pkt.Turn(i), pkt.Turn(i%4)))
	}
	route := pkt.Route{7, 3, 2, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Match(route, 0)
	}
}

// Property: line-ID assignment is a pure function of the
// allocate/free history — Allocate always takes the lowest free line,
// so replaying any random churn sequence (including across differently
// seeded tables and interleaved matches) assigns identical line IDs.
// This pins the determinism contract the old map-backed implementation
// could only honor by never letting map iteration order pick a line.
func TestQuickAllocateLowestFreeLineDeterministic(t *testing.T) {
	run := func(ops []byte) []int {
		c := New(8)
		var ids []int
		live := []int{}
		next := 0
		for _, op := range ops {
			switch {
			case op%3 != 0 || len(live) == 0: // allocate-biased churn
				p := pkt.PathOf(pkt.Turn(next%7), pkt.Turn(next/7%7), pkt.Turn(next/49%7))
				next++
				id, ok := c.Allocate(p)
				if !ok {
					ids = append(ids, -1)
					continue
				}
				ids = append(ids, id)
				live = append(live, id)
			default: // free an arbitrary live line, chosen by op
				k := int(op/3) % len(live)
				c.Free(live[k])
				live = append(live[:k], live[k+1:]...)
				ids = append(ids, -2)
			}
		}
		return ids
	}
	f := func(ops []byte) bool {
		a := run(ops)
		b := run(ops)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Allocate must reuse the lowest free line: freeing a low line and
// allocating again fills the hole before touching higher lines.
func TestAllocateReusesLowestFreeLine(t *testing.T) {
	c := New(4)
	paths := []pkt.Path{pkt.PathOf(1), pkt.PathOf(2), pkt.PathOf(3), pkt.PathOf(4)}
	for i, p := range paths {
		if id, ok := c.Allocate(p); !ok || id != i {
			t.Fatalf("Allocate(%v) = (%d,%v), want (%d,true)", p, id, ok, i)
		}
	}
	c.Free(2)
	c.Free(0)
	if id, ok := c.Allocate(pkt.PathOf(5)); !ok || id != 0 {
		t.Fatalf("Allocate after freeing 0,2 = (%d,%v), want lowest line 0", id, ok)
	}
	if id, ok := c.Allocate(pkt.PathOf(6)); !ok || id != 2 {
		t.Fatalf("second Allocate = (%d,%v), want next-lowest line 2", id, ok)
	}
	if _, ok := c.Allocate(pkt.PathOf(7)); ok {
		t.Fatal("Allocate succeeded on a full CAM")
	}
}
