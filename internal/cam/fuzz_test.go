package cam

import (
	"testing"

	"repro/internal/pkt"
)

// decodePaths turns a fuzz byte string into a list of paths using a
// length-prefixed encoding: each path is one length byte L (masked to
// 0–7 turns) followed by L turn bytes. Decoding stops when the input
// runs out.
func decodePaths(b []byte) []pkt.Path {
	var paths []pkt.Path
	for len(b) > 0 {
		l := int(b[0]) % 8
		b = b[1:]
		if l > len(b) {
			l = len(b)
		}
		turns := make([]pkt.Turn, l)
		for i := 0; i < l; i++ {
			turns[i] = b[i]
		}
		b = b[l:]
		paths = append(paths, pkt.PathOf(turns...))
	}
	return paths
}

// FuzzMatch checks the CAM's longest-prefix match against a brute-force
// reference: for any set of allocated paths and any (route, hop), the
// selected line must hold a path that is a prefix of the remaining
// route, no strictly longer allocated path may also be a prefix, and a
// miss must mean no allocated path matches at all.
func FuzzMatch(f *testing.F) {
	f.Add([]byte{2, 1, 3, 1, 1, 3, 1, 3, 2}, []byte{1, 3, 2, 4}, 0)
	f.Add([]byte{0, 1, 5}, []byte{5, 5, 5}, 1)
	f.Add([]byte{3, 2, 2, 2, 2, 2, 2}, []byte{2, 2, 2}, 0)
	f.Add([]byte{}, []byte{1}, 0)
	f.Add([]byte{7, 9, 9, 9, 9, 9, 9, 9}, []byte{9, 9, 9, 9, 9, 9, 9, 9}, 3)

	f.Fuzz(func(t *testing.T, pathBytes, routeBytes []byte, hop int) {
		tab := New(8)
		allocated := 0
		for _, p := range decodePaths(pathBytes) {
			if _, ok := tab.Lookup(p); ok {
				continue // Allocate panics on duplicates by contract
			}
			if _, ok := tab.Allocate(p); !ok {
				break // CAM full
			}
			allocated++
		}
		if tab.Used() != allocated {
			t.Fatalf("Used() = %d after %d allocations", tab.Used(), allocated)
		}

		route := make(pkt.Route, len(routeBytes))
		for i, b := range routeBytes {
			route[i] = b
		}
		if hop < 0 {
			hop = -hop
		}
		if len(route) > 0 {
			hop %= len(route) + 1
		} else {
			hop = 0
		}

		// Brute-force reference: longest valid line matching the route.
		bestLen := -1
		tab.ForEach(func(id int, p pkt.Path) {
			if p.MatchesRoute(route, hop) && p.Len() > bestLen {
				bestLen = p.Len()
			}
		})

		id, ok := tab.Match(route, hop)
		if ok != (bestLen >= 0) {
			t.Fatalf("Match = %v, brute force best length %d", ok, bestLen)
		}
		if !ok {
			return
		}
		got := tab.Path(id)
		if !got.MatchesRoute(route, hop) {
			t.Fatalf("Match returned line %d (%v), which does not match route %v at hop %d",
				id, got, route, hop)
		}
		if got.Len() != bestLen {
			t.Fatalf("Match returned length %d, brute force found %d", got.Len(), bestLen)
		}
	})
}
