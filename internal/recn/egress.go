package recn

import (
	"fmt"

	"repro/internal/cam"
	"repro/internal/mempool"
	"repro/internal/pkt"
)

// EgressEffects is implemented by the fabric to carry an egress
// controller's outputs to the rest of the system.
type EgressEffects interface {
	// NotifyIngress delivers an internal congestion notification (with
	// a token) to input port `ingress` of the same switch. It returns
	// whether the token was accepted (a SAQ was allocated there); on
	// refusal the token comes back immediately (paper §3.8).
	NotifyIngress(ingress int, path pkt.Path) bool
	// SendTokenDownstream sends a token over this port's link to the
	// downstream ingress port (deallocation, or refusal when refused
	// is set — paper §3.5, §3.8).
	SendTokenDownstream(path pkt.Path, refused bool)
}

// Egress is the RECN controller of an output port (or NIC injection
// port). See the package comment for the role split.
type Egress struct {
	cfg  Config
	port int // this output port's index within its switch
	// terminal: a NIC injection port — congestion is never propagated
	// further (the "upstream" is the traffic source itself).
	terminal bool

	cam  *cam.Table
	pool *mempool.Pool
	// normals are the queues for uncongested flows — one per traffic
	// class (paper footnote 1: "Several queues can be used for
	// non-congested flows, thus providing support for multiple traffic
	// classes").
	normals []*mempool.Queue
	// saqs is indexed by CAM line ID (nil = free line); with ≤8 lines,
	// slice indexing and linear UID scans beat maps and never allocate.
	saqs   []*SAQ
	active int
	// freed SAQs are recycled (with their queues) through a plain LIFO
	// free-list — deterministic, unlike sync.Pool.
	free   []*SAQ
	uidSeq int

	// Root state: this port's normal queue is the root of a
	// congestion tree. rootNotified dedups recruiting per input port;
	// rootBranch tracks which inputs actually hold a token (refusals
	// set the first but not the second). Tracking identities (as port
	// bitmasks) rather than a counter keeps tokens from different
	// episodes from corrupting the accounting.
	root         bool
	rootNotified uint64
	rootBranch   uint64

	fx    EgressEffects
	tr    Tracer
	stats Stats
}

// SetTracer installs a flight-recorder tap (nil disables tracing).
func (e *Egress) SetTracer(tr Tracer) { e.tr = tr }

// NewEgress builds the controller for one output port.
//
// port is the output port index within the switch (prepended to paths
// when notifying local ingress ports). pool and normal are the port's
// data RAM and its queue for uncongested flows. terminal marks NIC
// injection ports.
func NewEgress(cfg Config, port int, pool *mempool.Pool, normals []*mempool.Queue, terminal bool, fx EgressEffects) *Egress {
	e := &Egress{}
	if err := e.Init(cfg, port, pool, normals, terminal, fx, true); err != nil {
		panic(err)
	}
	return e
}

// Init (re)builds the controller in place (arena-allocated controllers
// use this — see fabric.New). With eager false the CAM table and SAQ
// slot array are deferred to the first congestion event on this port:
// most ports of a large fabric never see one, and an absent CAM behaves
// exactly like an empty one.
func (e *Egress) Init(cfg Config, port int, pool *mempool.Pool, normals []*mempool.Queue, terminal bool, fx EgressEffects, eager bool) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if fx == nil {
		return fmt.Errorf("recn: egress init with nil effects")
	}
	if len(normals) == 0 {
		return fmt.Errorf("recn: egress init without normal queues")
	}
	*e = Egress{
		cfg:      cfg,
		port:     port,
		terminal: terminal,
		pool:     pool,
		normals:  normals,
		fx:       fx,
	}
	if eager {
		e.ensure()
	}
	return nil
}

// ensure materializes the CAM table and SAQ slots on first use.
func (e *Egress) ensure() {
	if e.cam == nil {
		e.cam = cam.New(e.cfg.MaxSAQs)
		e.saqs = make([]*SAQ, e.cfg.MaxSAQs)
	}
}

// takeSAQ recycles (or builds) a SAQ for CAM line id. The queue object
// is reused across allocations: deallocation requires an idle queue, so
// a recycled queue is always empty with no resident bytes.
func (e *Egress) takeSAQ(id int, path pkt.Path) *SAQ {
	e.uidSeq++
	var s *SAQ
	if n := len(e.free); n > 0 {
		s = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*s = SAQ{Q: s.Q}
	} else {
		s = &SAQ{Q: mempool.NewQueue(e.pool, 0)}
	}
	s.ID = id
	s.UID = e.uidSeq
	s.Path = path
	return s
}

// saqByUID finds a live SAQ by its unique ID (nil when gone — stale
// markers reference deallocated UIDs).
func (e *Egress) saqByUID(uid int) *SAQ {
	for _, s := range e.saqs {
		if s != nil && s.UID == uid {
			return s
		}
	}
	return nil
}

// Classify returns the SAQ an arriving packet (already forwarded
// through the crossbar, so route[hop:] starts at the next switch) must
// be stored in, or nil for the normal queue (paper §3.6).
func (e *Egress) Classify(route pkt.Route, hop int) *SAQ {
	if e.cam == nil || e.cam.Used() == 0 {
		return nil
	}
	id, ok := e.cam.Match(route, hop)
	if e.tr != nil {
		e.tr.CAMLookup(ok)
	}
	if ok {
		return e.saqs[id]
	}
	return nil
}

// GatedInternally reports whether packets matching this classification
// must be held at the ingress side (internal Xoff, paper §3.7): the
// target SAQ's occupancy crossed the stop threshold.
func (e *Egress) GatedInternally(route pkt.Route, hop int) bool {
	s := e.Classify(route, hop)
	return s != nil && s.gateInternal
}

// OnStored is called by the fabric after a packet of the given size
// from local input port `ingress` has been pushed into queue s (nil =
// normal queue). It runs congestion detection and notification
// propagation.
func (e *Egress) OnStored(s *SAQ, ingress int, size int) {
	if s == nil {
		e.detectRoot(ingress)
		return
	}
	s.used = true
	// Internal stop toward the switch's ingress ports.
	if !s.gateInternal && s.Q.QueuedBytes() >= e.cfg.XoffBytes {
		s.gateInternal = true
	}
	// Propagate the tree to the input ports feeding this SAQ.
	if s.Q.QueuedBytes() >= e.cfg.PropagateBytes {
		e.notifyIngress(s, ingress)
	}
}

// detectRoot handles congestion detection on the normal queue
// (paper §3.3): the port becomes the root of a congestion tree and
// notifies each input port the first time it sends a packet here while
// congested.
func (e *Egress) detectRoot(ingress int) {
	if e.terminal {
		return // injection ports cannot be roots
	}
	occ := e.normalBytes()
	if !e.root {
		if occ < e.cfg.DetectBytes {
			return
		}
		e.root = true
	}
	// A lingering root (queue drained, waiting for branch tokens to
	// come home) must not recruit new senders: handing out fresh
	// tokens while old ones are still in flight keeps branches > 0
	// forever and the tree never collapses.
	if occ < e.cfg.DetectBytes {
		return
	}
	if ingress < 0 || e.rootNotified&portBit(ingress) != 0 {
		return
	}
	e.rootNotified |= portBit(ingress)
	e.stats.NotifySent++
	if e.fx.NotifyIngress(ingress, pkt.PathOf(pkt.Turn(e.port))) {
		e.rootBranch |= portBit(ingress)
	} else {
		e.stats.Refusals++
	}
}

// notifyIngress extends the congestion tree from SAQ s to local input
// port `ingress` (paper §3.4: the path is extended with the turn of the
// current switch).
func (e *Egress) notifyIngress(s *SAQ, ingress int) {
	if e.terminal || ingress < 0 || s.notified&portBit(ingress) != 0 {
		return
	}
	s.notified |= portBit(ingress)
	e.stats.NotifySent++
	if e.fx.NotifyIngress(ingress, s.Path.Prepend(pkt.Turn(e.port))) {
		s.branchOut |= portBit(ingress)
		s.leaf = false
	} else {
		e.stats.Refusals++
	}
}

// OnUpstreamNotification handles a MsgNotify arriving over the link
// from the downstream ingress port: allocate a SAQ (and CAM line) for
// the path, placing an in-order marker in the normal queue. On refusal
// the token immediately returns downstream (paper §3.4, §3.8).
func (e *Egress) OnUpstreamNotification(path pkt.Path) {
	e.ensure()
	if _, ok := e.cam.Lookup(path); ok {
		// Duplicate (can only happen through message races); refuse.
		e.stats.Refusals++
		e.sendToken(path, true)
		return
	}
	id, ok := e.cam.Allocate(path)
	if !ok {
		e.stats.Refusals++
		e.sendToken(path, true)
		return
	}
	s := e.takeSAQ(id, path)
	s.leaf = true
	e.saqs[id] = s
	e.active++
	if !e.cfg.NoInOrderMarkers {
		// In-order markers: the normal queue, plus every SAQ with a
		// proper prefix path (its packets may match the longer path).
		for _, q := range e.normals {
			q.PushMarker(s.UID)
			s.markersPending++
		}
		e.ForEachSAQ(func(t *SAQ) {
			if t != s && path.HasPrefix(t.Path) {
				t.Q.PushMarker(s.UID)
				s.markersPending++
			}
		})
	}
	e.stats.Allocs++
	e.stats.MarkersPlaced += uint64(s.markersPending)
	if e.tr != nil {
		e.tr.SAQAlloc(s.ID, s.UID, s.Path)
	}
}

// ResolveMarker is called by the fabric when an in-order marker reaches
// the head of a queue: once all its markers resolved, the named SAQ may
// start transmitting. Stale markers (whose SAQ is gone) are inert.
// Queues that only held markers may now be idle, so deallocation is
// re-checked everywhere.
func (e *Egress) ResolveMarker(uid int) {
	if s := e.saqByUID(uid); s != nil && s.markersPending > 0 {
		s.markersPending--
	}
	// CAM-line order, not map order: deallocations send tokens, and
	// their relative order must be identical across runs.
	e.ForEachSAQ(e.maybeDealloc)
}

// OnTokenFromIngress is called (synchronously, same switch) when local
// input port `ingress` deallocates the SAQ for path e.port+rest: the
// branch token returns. rest is the path seen from this egress port
// (empty = this port's root).
func (e *Egress) OnTokenFromIngress(ingress int, rest pkt.Path) {
	if rest.Empty() {
		// Clearing the recruit flag lets the input be re-notified if
		// congestion persists; only tokens this root actually handed
		// out count toward collapse.
		e.rootNotified &^= portBit(ingress)
		if !e.root || e.rootBranch&portBit(ingress) == 0 {
			e.stats.StaleMsgs++
			return
		}
		e.rootBranch &^= portBit(ingress)
		e.maybeClearRoot()
		return
	}
	if e.cam == nil {
		// No SAQ was ever allocated here: the token is stale (same as an
		// empty-CAM lookup miss).
		e.stats.StaleMsgs++
		return
	}
	id, ok := e.cam.Lookup(rest)
	if !ok {
		e.stats.StaleMsgs++
		return
	}
	s := e.saqs[id]
	s.notified &^= portBit(ingress)
	if s.branchOut&portBit(ingress) == 0 {
		e.stats.StaleMsgs++
		return
	}
	s.branchOut &^= portBit(ingress)
	if s.branchOut == 0 {
		s.leaf = true
	}
	e.maybeDealloc(s)
}

// OnXoffFromDownstream / OnXonFromDownstream handle per-SAQ flow
// control from the downstream ingress SAQ (paper §3.7).
func (e *Egress) OnXoffFromDownstream(path pkt.Path) {
	if e.cam == nil {
		e.stats.StaleMsgs++
		return
	}
	if id, ok := e.cam.Lookup(path); ok {
		e.saqs[id].xoffRemote = true
	} else {
		e.stats.StaleMsgs++
	}
}

// OnXonFromDownstream resumes the SAQ stopped by OnXoffFromDownstream.
func (e *Egress) OnXonFromDownstream(path pkt.Path) {
	if e.cam == nil {
		e.stats.StaleMsgs++
		return
	}
	if id, ok := e.cam.Lookup(path); ok {
		e.saqs[id].xoffRemote = false
	} else {
		e.stats.StaleMsgs++
	}
}

// EligibleTx reports whether the link arbiter may serve this SAQ.
func (e *Egress) EligibleTx(s *SAQ) bool {
	return !s.Blocked() && !s.xoffRemote
}

// Boosted reports whether the SAQ gets highest arbitration priority: it
// owns a token and holds only a few packets, so draining it lets the
// tree collapse (paper §3.8).
func (e *Egress) Boosted(s *SAQ) bool {
	return s.leaf && s.branchOut == 0 && s.Q.Packets() <= e.cfg.BoostPackets && s.Q.Packets() > 0
}

// OnDrained is called by the fabric after a packet previously stored in
// SAQ s (nil = normal queue) has fully left the port and its RAM was
// released.
func (e *Egress) OnDrained(s *SAQ) {
	if s == nil {
		e.maybeClearRoot()
		return
	}
	if s.gateInternal && s.Q.QueuedBytes() <= e.cfg.XonBytes {
		s.gateInternal = false
	}
	e.maybeDealloc(s)
}

func (e *Egress) maybeClearRoot() {
	if e.root && e.rootBranch == 0 && e.normalBytes() < e.cfg.DetectBytes {
		e.root = false
		e.rootNotified = 0
	}
}

// maybeDealloc releases SAQ s once it is an idle leaf with no
// outstanding branches, sending the token downstream (paper §3.5). The
// SAQ must have been used: a freshly allocated SAQ whose packets are
// still in flight toward it must not bounce (alloc/dealloc thrash).
func (e *Egress) maybeDealloc(s *SAQ) {
	if !s.used || !s.leaf || s.branchOut != 0 || !s.Q.Idle() {
		return
	}
	e.dealloc(s)
}

// SweepIdle deallocates idle leaf SAQs regardless of use. The fabric
// calls it periodically so SAQs allocated for congestion that subsided
// before any packet arrived still return their tokens and let the tree
// collapse.
func (e *Egress) SweepIdle() {
	// CAM-line order, not map order: deallocations send tokens, and
	// their relative order must be identical across runs.
	e.ForEachSAQ(func(s *SAQ) {
		if s.leaf && s.branchOut == 0 && s.Q.Idle() {
			e.dealloc(s)
		}
	})
}

func (e *Egress) dealloc(s *SAQ) {
	e.cam.Free(s.ID)
	e.saqs[s.ID] = nil
	e.active--
	e.stats.Deallocs++
	if e.tr != nil {
		e.tr.SAQDealloc(s.ID, s.UID, s.Path)
	}
	path := s.Path
	e.free = append(e.free, s)
	e.sendToken(path, false)
}

// sendToken returns a token downstream. NIC injection ports send it
// too: their downstream is the first switch's ingress, whose SAQ is
// waiting to become a leaf again.
func (e *Egress) sendToken(path pkt.Path, refused bool) {
	e.stats.TokensSent++
	e.fx.SendTokenDownstream(path, refused)
}

// OnDenied is called by the crossbar arbiter when a packet from local
// input `ingress` could not be forwarded into this port because its
// target queue is congested (a root's full queue, or an internally
// Xoff-gated SAQ). The paper notifies inputs "the first time they send
// a packet to the congested output port"; a sender blocked by that very
// congestion must be notified too, or it would suffer permanent HOL
// blocking without ever joining the tree.
func (e *Egress) OnDenied(route pkt.Route, hop int, ingress int) {
	if e.terminal || ingress < 0 {
		return
	}
	if s := e.Classify(route, hop); s != nil {
		if s.Q.QueuedBytes() >= e.cfg.PropagateBytes {
			e.notifyIngress(s, ingress)
		}
		return
	}
	e.detectRoot(ingress)
}

// normalBytes sums the occupancy of the queues for uncongested flows
// (congestion detection looks at the port's aggregate backlog).
func (e *Egress) normalBytes() int {
	sum := 0
	for _, q := range e.normals {
		sum += q.QueuedBytes()
	}
	return sum
}

// AuditRemoteStops is the watchdog hook for lost Xons (paper §3.7
// assumes they always arrive): a remote stop held for `limit`
// consecutive audits is overridden so the SAQ can transmit again. If
// the downstream SAQ is genuinely still above threshold it re-asserts
// Xoff on the next arrival (or via its own resend timer); if the Xon
// was lost, this unfreezes the SAQ. Returns the number of stops
// cleared. Iterates in CAM line order for determinism.
func (e *Egress) AuditRemoteStops(limit int) int {
	cleared := 0
	for _, s := range e.saqs {
		if s == nil {
			continue
		}
		if !s.xoffRemote {
			s.watchTicks = 0
			continue
		}
		s.watchTicks++
		if s.watchTicks >= limit {
			s.xoffRemote = false
			s.watchTicks = 0
			cleared++
		}
	}
	return cleared
}

// Root reports whether this port is currently a congestion-tree root.
func (e *Egress) Root() bool { return e.root }

// ActiveSAQs returns the number of SAQs currently allocated.
func (e *Egress) ActiveSAQs() int { return e.active }

// CAMUsed returns the number of CAM lines currently allocated. The
// invariant checker cross-checks it against ActiveSAQs and the
// allocation counters: a divergence means a leaked or double-freed
// line.
func (e *Egress) CAMUsed() int {
	if e.cam == nil {
		return 0
	}
	return e.cam.Used()
}

// Materialized reports whether this controller ever saw a congestion
// event (its CAM and SAQ table exist). Used by the memory model: an
// unmaterialized controller holds no per-SAQ state at all.
func (e *Egress) Materialized() bool { return e.cam != nil }

// SAQByID returns a SAQ by CAM line ID (nil when the line is free).
func (e *Egress) SAQByID(id int) *SAQ {
	if id < 0 || id >= len(e.saqs) {
		return nil
	}
	return e.saqs[id]
}

// ForEachSAQ iterates over allocated SAQs in CAM line order.
func (e *Egress) ForEachSAQ(fn func(s *SAQ)) {
	for _, s := range e.saqs {
		if s != nil {
			fn(s)
		}
	}
}

// Stats returns a copy of the event counters.
func (e *Egress) Stats() Stats { return e.stats }

func (e *Egress) String() string {
	return fmt.Sprintf("egress{port %d, %d SAQs, root=%v}", e.port, e.active, e.root)
}
