package recn

import (
	"math/rand"
	"testing"

	"repro/internal/mempool"
	"repro/internal/pkt"
)

// protocolHarness wires one egress controller to a set of real ingress
// controllers (one switch) plus a loopback "upstream" that accepts
// notifications for each ingress and reflects tokens/deallocations,
// modeling the rest of the tree as an eventually-collapsing black box.
type protocolHarness struct {
	t   *testing.T
	rng *rand.Rand

	eg       *Egress
	egNormal *mempool.Queue
	ins      []*Ingress
	inNormal []*mempool.Queue

	// upstream[i] = paths the ingress i notified upstream, waiting for
	// a token back.
	upstream [][]CtlMsg
}

func newProtocolHarness(t *testing.T, seed int64, inputs int) *protocolHarness {
	cfg := testConfig()
	h := &protocolHarness{t: t, rng: rand.New(rand.NewSource(seed))}
	h.ins = make([]*Ingress, inputs)
	h.inNormal = make([]*mempool.Queue, inputs)
	h.upstream = make([][]CtlMsg, inputs)
	efx := &egressFx{ingress: map[int]*Ingress{}}
	pool := mempool.NewPool(1 << 20)
	h.egNormal = mempool.NewQueue(pool, 0)
	h.eg = NewEgress(cfg, 6, pool, []*mempool.Queue{h.egNormal}, false, efx)
	for i := range h.ins {
		i := i
		ipool := mempool.NewPool(1 << 20)
		h.inNormal[i] = mempool.NewQueue(ipool, 0)
		fx := &harnessIngressFx{h: h, port: i}
		h.ins[i] = NewIngress(cfg, i, ipool, []*mempool.Queue{h.inNormal[i]}, fx)
		efx.ingress[i] = h.ins[i]
	}
	return h
}

type harnessIngressFx struct {
	h    *protocolHarness
	port int
}

func (fx *harnessIngressFx) SendUpstream(m CtlMsg) {
	if m.Kind == MsgNotify {
		fx.h.upstream[fx.port] = append(fx.h.upstream[fx.port], m)
	}
	// Xon/Xoff are dropped: the black-box upstream has no flow to stop.
}

func (fx *harnessIngressFx) TokenToEgress(egress int, rest pkt.Path) {
	if egress != 6 {
		fx.h.t.Fatalf("token to unexpected port %d", egress)
	}
	fx.h.eg.OnTokenFromIngress(fx.port, rest)
}

// step performs one random legal action.
func (h *protocolHarness) step() {
	in := h.rng.Intn(len(h.ins))
	ig := h.ins[in]
	switch h.rng.Intn(10) {
	case 0, 1, 2: // a packet arrives at an ingress and is classified
		route := pkt.Route{6, pkt.Turn(h.rng.Intn(4)), pkt.Turn(h.rng.Intn(4))}
		if s := ig.Classify(route, 0); s != nil {
			s.Q.Push(64, nil)
			ig.OnStored(s, 64)
		} else {
			h.inNormal[in].Push(64, nil)
		}
	case 3, 4: // crossbar-like drain: ingress head moves to the egress
		h.drainIngress(in)
	case 5, 6: // egress drains to the link
		h.drainEgress()
	case 7: // upstream collapses one outstanding subtree (token home)
		if len(h.upstream[in]) > 0 {
			m := h.upstream[in][0]
			h.upstream[in] = h.upstream[in][1:]
			ig.OnTokenFromUpstream(m.Path, h.rng.Intn(4) == 0)
		}
	case 8: // marker peeling at a random queue
		h.peel(in)
	case 9: // periodic sweep
		ig.SweepIdle()
		h.eg.SweepIdle()
	}
}

func (h *protocolHarness) peel(in int) {
	q := h.inNormal[in]
	if e, ok := q.Head(); ok && e.IsMarker() {
		q.Pop()
		h.ins[in].ResolveMarker(e.MarkerSAQ())
	}
	if e, ok := h.egNormal.Head(); ok && e.IsMarker() {
		h.egNormal.Pop()
		h.eg.ResolveMarker(e.MarkerSAQ())
	}
	h.ins[in].ForEachSAQ(func(s *SAQ) {
		if e, ok := s.Q.Head(); ok && e.IsMarker() {
			s.Q.Pop()
			h.ins[in].ResolveMarker(e.MarkerSAQ())
		}
	})
	h.eg.ForEachSAQ(func(s *SAQ) {
		if e, ok := s.Q.Head(); ok && e.IsMarker() {
			s.Q.Pop()
			h.eg.ResolveMarker(e.MarkerSAQ())
		}
	})
}

// drainIngress pops one packet from some ingress queue and stores it at
// the egress (as the crossbar would).
func (h *protocolHarness) drainIngress(in int) {
	ig := h.ins[in]
	// Prefer a random SAQ, fall back to the normal queue.
	var fromSAQ *SAQ
	ig.ForEachSAQ(func(s *SAQ) {
		if fromSAQ == nil && !s.Blocked() && s.Q.Packets() > 0 {
			if e, ok := s.Q.Head(); ok && !e.IsMarker() {
				fromSAQ = s
			}
		}
	})
	var route pkt.Route
	if fromSAQ != nil {
		fromSAQ.Q.Pop()
		fromSAQ.Q.ReleaseResident(64)
		ig.OnDrained(fromSAQ)
		// A packet from this SAQ matches its full path, plus a turn
		// beyond the root.
		for i := 0; i < fromSAQ.Path.Len(); i++ {
			route = append(route, fromSAQ.Path.Turn(i))
		}
		route = append(route, 0)
	} else {
		e, ok := h.inNormal[in].Head()
		if !ok || e.IsMarker() {
			return
		}
		h.inNormal[in].Pop()
		h.inNormal[in].ReleaseResident(64)
		ig.OnDrained(nil)
		route = pkt.Route{6, pkt.Turn(h.rng.Intn(4)), pkt.Turn(h.rng.Intn(4))}
	}
	// Store at the egress, classified at hop 1 (past this switch).
	if s := h.eg.Classify(route, 1); s != nil {
		s.Q.Push(64, nil)
		h.eg.OnStored(s, in, 64)
	} else {
		h.egNormal.Push(64, nil)
		h.eg.OnStored(nil, in, 64)
	}
}

// drainEgress pops one packet from some egress queue (link TX).
func (h *protocolHarness) drainEgress() {
	var fromSAQ *SAQ
	h.eg.ForEachSAQ(func(s *SAQ) {
		if fromSAQ == nil && h.eg.EligibleTx(s) && s.Q.Packets() > 0 {
			if e, ok := s.Q.Head(); ok && !e.IsMarker() {
				fromSAQ = s
			}
		}
	})
	if fromSAQ != nil {
		fromSAQ.Q.Pop()
		fromSAQ.Q.ReleaseResident(64)
		h.eg.OnDrained(fromSAQ)
		return
	}
	e, ok := h.egNormal.Head()
	if !ok || e.IsMarker() {
		return
	}
	h.egNormal.Pop()
	h.egNormal.ReleaseResident(64)
	h.eg.OnDrained(nil)
}

// collapse drives the system until every SAQ is gone. Each round makes
// bounded progress (one drain attempt per queue, one reflected token
// per ingress, one marker peel pass); blocked SAQs unblock as markers
// surface over rounds, and token reflection that re-notifies converges
// once queues empty.
func (h *protocolHarness) collapse() {
	for round := 0; round < 200000; round++ {
		for in := range h.ins {
			h.peel(in)
			h.drainIngress(in)
			if len(h.upstream[in]) > 0 {
				m := h.upstream[in][0]
				h.upstream[in] = h.upstream[in][1:]
				h.ins[in].OnTokenFromUpstream(m.Path, false)
			}
			h.ins[in].SweepIdle()
		}
		h.drainEgress()
		h.eg.SweepIdle()
		total := h.eg.ActiveSAQs()
		pending := 0
		for in, ig := range h.ins {
			total += ig.ActiveSAQs()
			pending += len(h.upstream[in])
		}
		if total == 0 && pending == 0 && !h.eg.Root() {
			return
		}
	}
	h.t.Fatalf("protocol did not collapse: egress SAQs %d, root %v", h.eg.ActiveSAQs(), h.eg.Root())
}

// Random legal event sequences never panic the controllers, never leak
// tokens, and always let every congestion tree collapse once traffic
// stops.
func TestProtocolRandomizedCollapse(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		h := newProtocolHarness(t, seed, 4)
		steps := 500 + h.rng.Intn(1500)
		for i := 0; i < steps; i++ {
			h.step()
		}
		h.collapse()
		// After collapse, all stats are consistent: every allocation
		// was matched by a deallocation.
		st := h.eg.Stats()
		if st.Allocs != st.Deallocs {
			t.Fatalf("seed %d: egress allocs %d != deallocs %d", seed, st.Allocs, st.Deallocs)
		}
		for i, ig := range h.ins {
			st := ig.Stats()
			if st.Allocs != st.Deallocs {
				t.Fatalf("seed %d: ingress %d allocs %d != deallocs %d", seed, i, st.Allocs, st.Deallocs)
			}
		}
	}
}
