// Package recn implements the paper's core contribution: the Regional
// Explicit Congestion Notification controllers that live at every
// switch port (and NIC injection port).
//
// Two controller types exist, matching the two port roles:
//
//   - Egress: an output port (or a NIC injection port). It detects
//     congestion on its normal queue (becoming a congestion-tree root),
//     hosts SAQs allocated by notifications from the downstream switch,
//     and propagates congestion to the input ports of its own switch.
//   - Ingress: an input port. It hosts SAQs allocated by internal
//     notifications from its switch's output ports, and propagates
//     congestion upstream over the link when a SAQ fills.
//
// Tokens mark the leaves of each congestion tree and drive safe
// deallocation toward the root (paper §3.5). In-order delivery is kept
// with markers placed in the queue for uncongested flows (paper §3.8).
//
// The controllers are pure state machines: the surrounding fabric owns
// time, queues' fill/drain events and message transport, and calls the
// On* methods; controllers react by mutating queue sets and invoking
// the Effects callbacks. This keeps all RECN logic unit-testable
// without a simulator.
package recn

import (
	"fmt"

	"repro/internal/mempool"
	"repro/internal/pkt"
)

// Config holds the RECN tunables. The paper fixes the number of SAQs
// (8 per port in all experiments) but not the thresholds; defaults are
// tuned to reproduce the paper's behavior (see DESIGN.md §3).
type Config struct {
	// MaxSAQs is the number of SAQs (= CAM lines) per port.
	MaxSAQs int
	// DetectBytes is the output-queue occupancy that makes a port the
	// root of a congestion tree (paper §3.3).
	DetectBytes int
	// PropagateBytes is the SAQ occupancy that triggers congestion
	// notification one hop further from the root (paper §3.4).
	PropagateBytes int
	// XoffBytes / XonBytes are the per-SAQ stop/go thresholds
	// (paper §3.7).
	XoffBytes int
	XonBytes  int
	// BoostPackets: a SAQ holding at most this many packets while
	// owning a token is given highest arbitration priority so that it
	// drains and deallocates (paper §3.8). Zero disables the boost
	// (ablation A3).
	BoostPackets int

	// NoInOrderMarkers disables the §3.8 marker mechanism (ablation
	// A4): SAQs start unblocked and in-order delivery is no longer
	// guaranteed. Only for measuring what the markers buy.
	NoInOrderMarkers bool
}

// DefaultConfig returns the configuration used by the experiments.
// The paper does not publish its thresholds; these values keep SAQs
// small (the paper observes post-congestion SAQs holding only a couple
// of packets, which implies small Xon/Xoff windows) while still
// avoiding notifications on sub-transient queue blips.
func DefaultConfig() Config {
	return Config{
		MaxSAQs:        8,
		DetectBytes:    8 * 1024,
		PropagateBytes: 2 * 1024,
		XoffBytes:      4 * 1024,
		XonBytes:       1 * 1024,
		BoostPackets:   2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MaxSAQs < 1:
		return fmt.Errorf("recn: MaxSAQs %d < 1", c.MaxSAQs)
	case c.DetectBytes <= 0 || c.PropagateBytes <= 0:
		return fmt.Errorf("recn: nonpositive thresholds")
	case c.XonBytes >= c.XoffBytes:
		return fmt.Errorf("recn: XonBytes %d ≥ XoffBytes %d", c.XonBytes, c.XoffBytes)
	case c.BoostPackets < 0:
		return fmt.Errorf("recn: negative BoostPackets")
	}
	return nil
}

// MsgKind enumerates the RECN control messages exchanged over links.
type MsgKind int

const (
	// MsgNotify asks the upstream egress port to allocate a SAQ for
	// Path (always travels ingress → upstream egress).
	MsgNotify MsgKind = iota
	// MsgToken returns a congestion-tree token downstream (always
	// travels egress → downstream ingress), either because the
	// upstream SAQ deallocated or because allocation was refused.
	MsgToken
	// MsgXoff stops the upstream SAQ for Path.
	MsgXoff
	// MsgXon resumes it.
	MsgXon
	// MsgHintOn / MsgHintOff are not RECN messages: they are the
	// adaptive-routing congestion hints of the arn policy (a switch
	// telling every upstream neighbor that at least one of its output
	// queues crossed the hint threshold, and later that the last one
	// fell back below it). They ride the same control-message transport
	// because hints share link bandwidth exactly like RECN control
	// traffic; carrying them in CtlMsg keeps the channel layer to one
	// control payload type. Path is unused (empty).
	MsgHintOn
	MsgHintOff
)

func (k MsgKind) String() string {
	switch k {
	case MsgNotify:
		return "notify"
	case MsgToken:
		return "token"
	case MsgXoff:
		return "xoff"
	case MsgXon:
		return "xon"
	case MsgHintOn:
		return "hint-on"
	case MsgHintOff:
		return "hint-off"
	default:
		return fmt.Sprintf("msg(%d)", int(k))
	}
}

// CtlMsg is a RECN control message. Control messages share link
// bandwidth with data (paper §4.1); Size is their wire size.
type CtlMsg struct {
	Kind MsgKind
	Path pkt.Path
	// Refused marks a token that bounced off a full CAM (paper §3.8)
	// rather than returning through deallocation. The receiving SAQ
	// backs off instead of re-notifying immediately.
	Refused bool
}

// Size returns the wire size in bytes. Notifications carry the full
// path; tokens and Xon/Xoff would carry a CAM-line ID in hardware
// (paper §3.8), hence their smaller fixed sizes.
func (m CtlMsg) Size() int {
	switch m.Kind {
	case MsgNotify:
		return 16
	case MsgToken:
		return 12
	default:
		return 8
	}
}

// SAQ is one set-aside queue plus its control state. The embedded
// mempool queue holds the packets; everything else is RECN bookkeeping.
type SAQ struct {
	// ID is the CAM line index; UID is unique across the port's
	// lifetime (markers reference UIDs so stale markers are inert).
	ID  int
	UID int
	// Path leads from this port to the congestion root.
	Path pkt.Path
	// Q holds the set-aside packets.
	Q *mempool.Queue

	// markersPending counts in-order markers not yet resolved. On
	// allocation a marker is placed in the queue for uncongested flows
	// (paper §3.8) and — so that overlapping congestion trees keep
	// in-order delivery — in every SAQ whose path is a proper prefix
	// of the new path (those queues may hold packets that the longer
	// path now captures). The SAQ must not transmit until all markers
	// reach the head of their queues.
	markersPending int

	// leaf: this SAQ currently owns a token (it is a leaf of the
	// tree). Egress SAQs are leaves while branches == 0.
	leaf bool
	// sentUpstream (ingress only): a notification is outstanding and
	// the token moved upstream.
	sentUpstream bool
	// reArm (ingress only): propagation re-arms only after occupancy
	// falls below the threshold again, avoiding notify/refuse storms.
	reArm bool

	// branchOut (egress only): bitmask of local ingress ports holding a
	// token of this subtree. notified dedups recruiting (it includes
	// refused inputs, which hold no token). Bitmasks bound the switch
	// radix at 64 ports — far above the paper's 8-port switches — and
	// make per-notification bookkeeping allocation-free.
	branchOut uint64
	notified  uint64

	// used: the SAQ has held at least one packet. Deallocation waits
	// for this (the paper deallocates when the SAQ "becomes empty");
	// never-used SAQs are collected by the periodic idle sweep.
	used bool

	// watchTicks counts consecutive watchdog audits in which this SAQ
	// was found in a possibly-stuck state (ingress: token outstanding
	// and idle; egress: remote stop held). Counting ticks instead of
	// timestamps keeps the controllers free of any notion of time.
	watchTicks int

	// xoffSent (ingress): we told the upstream SAQ to stop.
	xoffSent bool
	// xoffRemote (egress): the downstream SAQ told us to stop.
	xoffRemote bool
	// gateInternal (egress): occupancy-based stop signal toward the
	// ingress SAQs of the same switch.
	gateInternal bool
}

// portBit returns the bitmask bit for a switch port index.
func portBit(port int) uint64 {
	if port < 0 || port >= 64 {
		panic(fmt.Sprintf("recn: port %d outside the 64-port bitmask range", port))
	}
	return 1 << uint(port)
}

// Leaf reports whether the SAQ currently owns a token.
func (s *SAQ) Leaf() bool { return s.leaf }

// Blocked reports whether the SAQ is still waiting for in-order markers
// and therefore must not transmit (paper §3.8).
func (s *SAQ) Blocked() bool { return s.markersPending > 0 }

// Tracer observes controller events for the flight recorder. The
// fabric installs one per port (carrying the port's location); a nil
// tracer costs one comparison per hook. Implementations must not call
// back into the controller.
type Tracer interface {
	// SAQAlloc / SAQDealloc fire when a CAM line is allocated/released.
	SAQAlloc(camLine, uid int, path pkt.Path)
	SAQDealloc(camLine, uid int, path pkt.Path)
	// CAMLookup fires on every non-trivial CAM classification (the
	// empty-CAM short circuit is not reported).
	CAMLookup(hit bool)
}

// Stats aggregates controller event counters for reporting and tests.
type Stats struct {
	Allocs        uint64 // SAQs allocated
	Deallocs      uint64 // SAQs deallocated
	Refusals      uint64 // notifications refused (CAM full / duplicate)
	NotifySent    uint64 // notifications issued (internal or external)
	TokensSent    uint64 // tokens passed on
	XoffSent      uint64
	XonSent       uint64
	StaleMsgs     uint64 // control messages for paths no longer in the CAM
	MarkersPlaced uint64
}
