package recn

import (
	"testing"

	"repro/internal/mempool"
	"repro/internal/pkt"
)

func testConfig() Config {
	return Config{
		MaxSAQs:        8,
		DetectBytes:    256,
		PropagateBytes: 128,
		XoffBytes:      192,
		XonBytes:       64,
		BoostPackets:   2,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bad := []Config{
		{MaxSAQs: 0, DetectBytes: 1, PropagateBytes: 1, XoffBytes: 2, XonBytes: 1},
		{MaxSAQs: 1, DetectBytes: 0, PropagateBytes: 1, XoffBytes: 2, XonBytes: 1},
		{MaxSAQs: 1, DetectBytes: 1, PropagateBytes: 1, XoffBytes: 1, XonBytes: 1},
		{MaxSAQs: 1, DetectBytes: 1, PropagateBytes: 1, XoffBytes: 2, XonBytes: 1, BoostPackets: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly", i)
		}
	}
}

func TestCtlMsgSizes(t *testing.T) {
	if (CtlMsg{Kind: MsgNotify}).Size() != 16 {
		t.Error("notify size")
	}
	if (CtlMsg{Kind: MsgToken}).Size() != 12 {
		t.Error("token size")
	}
	if (CtlMsg{Kind: MsgXoff}).Size() != 8 || (CtlMsg{Kind: MsgXon}).Size() != 8 {
		t.Error("xon/xoff size")
	}
	for _, k := range []MsgKind{MsgNotify, MsgToken, MsgXoff, MsgXon, MsgKind(99)} {
		if k.String() == "" {
			t.Errorf("empty String for kind %d", int(k))
		}
	}
}

// egressFx records an egress controller's effects; notifications can be
// wired to real ingress controllers.
type egressFx struct {
	ingress    map[int]*Ingress // wired local inputs (nil entry → refuse)
	downTokens []pkt.Path
	notifies   []struct {
		in   int
		path pkt.Path
	}
}

func (fx *egressFx) NotifyIngress(i int, path pkt.Path) bool {
	fx.notifies = append(fx.notifies, struct {
		in   int
		path pkt.Path
	}{i, path})
	if in, ok := fx.ingress[i]; ok && in != nil {
		return in.OnNotifyLocal(path)
	}
	return false
}

func (fx *egressFx) SendTokenDownstream(path pkt.Path, refused bool) {
	fx.downTokens = append(fx.downTokens, path)
}

// ingressFx records an ingress controller's effects; tokens can be
// wired back to a real egress controller.
type ingressFx struct {
	port     int
	egress   map[int]*Egress
	upstream []CtlMsg
}

func (fx *ingressFx) SendUpstream(m CtlMsg) { fx.upstream = append(fx.upstream, m) }

func (fx *ingressFx) TokenToEgress(out int, rest pkt.Path) {
	if e, ok := fx.egress[out]; ok && e != nil {
		e.OnTokenFromIngress(fx.port, rest)
	}
}

// newTestEgress builds an egress controller on output port `port` with
// a fresh pool and normal queue.
func newTestEgress(cfg Config, port int, fx *egressFx) (*Egress, *mempool.Queue) {
	pool := mempool.NewPool(1 << 20)
	normal := mempool.NewQueue(pool, 0)
	return NewEgress(cfg, port, pool, []*mempool.Queue{normal}, false, fx), normal
}

func newTestIngress(cfg Config, port int, fx *ingressFx) (*Ingress, *mempool.Queue) {
	pool := mempool.NewPool(1 << 20)
	normal := mempool.NewQueue(pool, 0)
	return NewIngress(cfg, port, pool, []*mempool.Queue{normal}, fx), normal
}

// storeNormal pushes a packet into a controller's normal queue and
// fires the stored hook.
func storeEgressNormal(e *Egress, q *mempool.Queue, from, size int) {
	q.Push(size, nil)
	e.OnStored(nil, from, size)
}

func storeEgressSAQ(e *Egress, s *SAQ, from, size int) {
	s.Q.Push(size, nil)
	e.OnStored(s, from, size)
}

func storeIngressSAQ(in *Ingress, s *SAQ, size int) {
	s.Q.Push(size, nil)
	in.OnStored(s, size)
}

func drainOne(q *mempool.Queue) {
	e := q.Pop()
	q.ReleaseResident(e.Size)
}

func TestRootDetectionAndNotification(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 2}
	in, _ := newTestIngress(cfg, 2, infx)
	efx := &egressFx{ingress: map[int]*Ingress{2: in}}
	eg, normal := newTestEgress(cfg, 5, efx)
	infx.egress = map[int]*Egress{5: eg}

	// Below threshold: no root, no notifications.
	storeEgressNormal(eg, normal, 2, 128)
	if eg.Root() || len(efx.notifies) != 0 {
		t.Fatal("premature root detection")
	}
	// Crossing the detect threshold makes the port a root and notifies
	// the sender.
	storeEgressNormal(eg, normal, 2, 128)
	if !eg.Root() {
		t.Fatal("root not detected at threshold")
	}
	if len(efx.notifies) != 1 || efx.notifies[0].in != 2 {
		t.Fatalf("notifications: %+v", efx.notifies)
	}
	if !efx.notifies[0].path.Equal(pkt.PathOf(5)) {
		t.Fatalf("notification path = %v, want 5", efx.notifies[0].path)
	}
	// The ingress allocated a SAQ with the path and a marker.
	if in.ActiveSAQs() != 1 {
		t.Fatalf("ingress SAQs = %d", in.ActiveSAQs())
	}
	s := in.Classify(pkt.Route{5, 0}, 0)
	if s == nil || !s.Path.Equal(pkt.PathOf(5)) {
		t.Fatalf("Classify = %v", s)
	}
	if !s.Blocked() {
		t.Fatal("fresh SAQ not blocked by marker")
	}
	// Same sender again: flag suppresses repeats.
	storeEgressNormal(eg, normal, 2, 64)
	if len(efx.notifies) != 1 {
		t.Fatalf("repeated notification: %+v", efx.notifies)
	}
	// A different sender gets its own notification (refused here: no
	// controller wired for port 3).
	storeEgressNormal(eg, normal, 3, 64)
	if len(efx.notifies) != 2 || efx.notifies[1].in != 3 {
		t.Fatalf("second sender not notified: %+v", efx.notifies)
	}
	if eg.Stats().Refusals != 1 {
		t.Fatalf("refusals = %d, want 1", eg.Stats().Refusals)
	}
}

func TestMarkerResolution(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 0}
	in, normal := newTestIngress(cfg, 0, infx)
	normal.Push(64, "before")
	if !in.OnNotifyLocal(pkt.PathOf(4)) {
		t.Fatal("notification refused")
	}
	s := in.SAQByID(0)
	if s == nil || !s.Blocked() {
		t.Fatal("SAQ missing or unblocked")
	}
	// The packet ahead of the marker must drain first.
	drainOne(normal)
	head, ok := normal.Head()
	if !ok || !head.IsMarker() {
		t.Fatalf("head = %+v, want marker", head)
	}
	normal.Pop()
	in.ResolveMarker(head.MarkerSAQ())
	if s.Blocked() {
		t.Fatal("SAQ still blocked after marker resolution")
	}
	if !in.EligibleTx(s) {
		t.Fatal("unblocked SAQ not eligible")
	}
	// Stale marker: resolving an unknown UID is inert.
	in.ResolveMarker(9999)
}

func TestIngressRefusalWhenCAMFull(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSAQs = 1
	infx := &ingressFx{port: 0}
	in, _ := newTestIngress(cfg, 0, infx)
	if !in.OnNotifyLocal(pkt.PathOf(4)) {
		t.Fatal("first notification refused")
	}
	if in.OnNotifyLocal(pkt.PathOf(5)) {
		t.Fatal("notification accepted with full CAM")
	}
	// Duplicate path also refused.
	if in.OnNotifyLocal(pkt.PathOf(4)) {
		t.Fatal("duplicate path accepted")
	}
	if in.Stats().Refusals != 2 {
		t.Fatalf("refusals = %d", in.Stats().Refusals)
	}
}

func TestUpstreamPropagationAndXonXoff(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 1}
	in, _ := newTestIngress(cfg, 1, infx)
	in.OnNotifyLocal(pkt.PathOf(6, 2))
	s := in.SAQByID(0)

	// Fill to the propagation threshold: one notification upstream
	// with the same path.
	storeIngressSAQ(in, s, 64)
	if len(infx.upstream) != 0 {
		t.Fatal("premature propagation")
	}
	storeIngressSAQ(in, s, 64)
	if len(infx.upstream) != 1 || infx.upstream[0].Kind != MsgNotify {
		t.Fatalf("upstream msgs: %+v", infx.upstream)
	}
	if !infx.upstream[0].Path.Equal(pkt.PathOf(6, 2)) {
		t.Fatalf("propagated path = %v", infx.upstream[0].Path)
	}
	if s.Leaf() {
		t.Fatal("SAQ still a leaf after propagating the token upstream")
	}
	// More stores do not repeat the notification; crossing Xoff sends
	// exactly one Xoff.
	storeIngressSAQ(in, s, 64)
	if len(infx.upstream) != 2 || infx.upstream[1].Kind != MsgXoff {
		t.Fatalf("upstream msgs: %+v", infx.upstream)
	}
	storeIngressSAQ(in, s, 64)
	if len(infx.upstream) != 2 {
		t.Fatalf("xoff repeated: %+v", infx.upstream)
	}
	// Drain below Xon threshold: one Xon.
	for i := 0; i < 3; i++ {
		drainOne(s.Q)
		in.OnDrained(s)
	}
	if len(infx.upstream) != 3 || infx.upstream[2].Kind != MsgXon {
		t.Fatalf("upstream msgs: %+v", infx.upstream)
	}
	// Token returns from upstream: leaf again; drain the last packet
	// and the SAQ deallocates, handing the token to output port 6.
	in.OnTokenFromUpstream(pkt.PathOf(6, 2), false)
	if !s.Leaf() {
		t.Fatal("token return did not restore leaf")
	}
	drainOne(s.Q)
	in.OnDrained(s)
	if in.ActiveSAQs() != 0 {
		t.Fatal("SAQ not deallocated")
	}
}

func TestEgressSAQLifecycle(t *testing.T) {
	cfg := testConfig()
	// Wire: egress port 6 with two real ingress controllers 0 and 1.
	infx0 := &ingressFx{port: 0}
	in0, _ := newTestIngress(cfg, 0, infx0)
	infx1 := &ingressFx{port: 1}
	in1, _ := newTestIngress(cfg, 1, infx1)
	efx := &egressFx{ingress: map[int]*Ingress{0: in0, 1: in1}}
	eg, _ := newTestEgress(cfg, 6, efx)
	infx0.egress = map[int]*Egress{6: eg}
	infx1.egress = map[int]*Egress{6: eg}

	// A notification from downstream allocates an egress SAQ.
	eg.OnUpstreamNotification(pkt.PathOf(2))
	if eg.ActiveSAQs() != 1 {
		t.Fatal("egress SAQ not allocated")
	}
	s := eg.SAQByID(0)
	if !s.Blocked() || !s.Leaf() {
		t.Fatalf("fresh egress SAQ state: blocked=%v leaf=%v", s.Blocked(), s.Leaf())
	}
	// Classification uses the path (remaining route at next switch).
	if got := eg.Classify(pkt.Route{5, 2, 0}, 1); got != s {
		t.Fatalf("Classify = %v", got)
	}
	if got := eg.Classify(pkt.Route{5, 3, 0}, 1); got != nil {
		t.Fatalf("unrelated route classified into SAQ")
	}

	// Fill past the propagation threshold via stores from both inputs:
	// each gets an internal notification with the extended path 6.2.
	storeEgressSAQ(eg, s, 0, 128)
	storeEgressSAQ(eg, s, 0, 64)
	if in0.ActiveSAQs() != 1 {
		t.Fatal("input 0 not notified")
	}
	if got := in0.SAQByID(0).Path; !got.Equal(pkt.PathOf(6, 2)) {
		t.Fatalf("input 0 path = %v, want 6.2", got)
	}
	storeEgressSAQ(eg, s, 1, 64)
	if in1.ActiveSAQs() != 1 {
		t.Fatal("input 1 not notified")
	}
	if s.Leaf() {
		t.Fatal("egress SAQ with branches is not a leaf")
	}

	// Drain the egress SAQ; it cannot deallocate while branches are out.
	for i := 0; i < 3; i++ {
		drainOne(s.Q)
		eg.OnDrained(s)
	}
	if eg.ActiveSAQs() != 1 {
		t.Fatal("egress SAQ deallocated with outstanding branches")
	}
	// Ingress SAQs are idle leaves → dealloc → tokens return → egress
	// SAQ deallocates and sends the token downstream.
	in0.SweepIdle()
	if eg.ActiveSAQs() != 1 {
		t.Fatal("egress SAQ deallocated after one branch")
	}
	in1.SweepIdle()
	if eg.ActiveSAQs() != 0 {
		t.Fatal("egress SAQ not deallocated after all branches returned")
	}
	if len(efx.downTokens) != 1 || !efx.downTokens[0].Equal(pkt.PathOf(2)) {
		t.Fatalf("downstream tokens: %+v", efx.downTokens)
	}
}

func TestRootCollapse(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 3}
	in, _ := newTestIngress(cfg, 3, infx)
	efx := &egressFx{ingress: map[int]*Ingress{3: in}}
	eg, normal := newTestEgress(cfg, 1, efx)
	infx.egress = map[int]*Egress{1: eg}

	for i := 0; i < 4; i++ {
		storeEgressNormal(eg, normal, 3, 64)
	}
	if !eg.Root() || in.ActiveSAQs() != 1 {
		t.Fatal("tree not formed")
	}
	// Drain the root queue below threshold: still root (branch out).
	for i := 0; i < 3; i++ {
		drainOne(normal)
		eg.OnDrained(nil)
	}
	if !eg.Root() {
		t.Fatal("root cleared with outstanding branch")
	}
	// Ingress SAQ deallocates (idle leaf) → token home → root clears.
	in.SweepIdle()
	if eg.Root() {
		t.Fatal("root not cleared after token returned and queue drained")
	}
	// A new episode can re-notify the same ingress.
	storeEgressNormal(eg, normal, 3, 256)
	storeEgressNormal(eg, normal, 3, 64)
	if !eg.Root() || in.ActiveSAQs() != 1 {
		t.Fatal("re-congestion did not rebuild the tree")
	}
}

func TestEgressXoffFromDownstream(t *testing.T) {
	cfg := testConfig()
	efx := &egressFx{ingress: map[int]*Ingress{}}
	eg, _ := newTestEgress(cfg, 0, efx)
	eg.OnUpstreamNotification(pkt.PathOf(3))
	s := eg.SAQByID(0)
	s.markersPending = 0
	if !eg.EligibleTx(s) {
		t.Fatal("SAQ not eligible")
	}
	eg.OnXoffFromDownstream(pkt.PathOf(3))
	if eg.EligibleTx(s) {
		t.Fatal("SAQ eligible after Xoff")
	}
	eg.OnXonFromDownstream(pkt.PathOf(3))
	if !eg.EligibleTx(s) {
		t.Fatal("SAQ not eligible after Xon")
	}
	// Unknown paths are counted as stale, not fatal.
	eg.OnXoffFromDownstream(pkt.PathOf(9))
	eg.OnXonFromDownstream(pkt.PathOf(9))
	eg.OnTokenFromIngress(0, pkt.PathOf(9))
	if eg.Stats().StaleMsgs != 3 {
		t.Fatalf("stale msgs = %d, want 3", eg.Stats().StaleMsgs)
	}
}

func TestInternalGate(t *testing.T) {
	cfg := testConfig()
	efx := &egressFx{ingress: map[int]*Ingress{}}
	eg, _ := newTestEgress(cfg, 0, efx)
	eg.OnUpstreamNotification(pkt.PathOf(3))
	s := eg.SAQByID(0)
	route := pkt.Route{0, 3, 1}
	if eg.GatedInternally(route, 1) {
		t.Fatal("gated while empty")
	}
	storeEgressSAQ(eg, s, 0, 192) // = XoffBytes
	if !eg.GatedInternally(route, 1) {
		t.Fatal("not gated at Xoff threshold")
	}
	drainOne(s.Q)
	eg.OnDrained(s)
	if eg.GatedInternally(route, 1) {
		t.Fatal("still gated below Xon threshold")
	}
	if eg.GatedInternally(pkt.Route{0, 5}, 1) {
		t.Fatal("unmatched route gated")
	}
}

func TestBoost(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 0}
	in, _ := newTestIngress(cfg, 0, infx)
	in.OnNotifyLocal(pkt.PathOf(4))
	s := in.SAQByID(0)
	if in.Boosted(s) {
		t.Fatal("empty SAQ boosted")
	}
	storeIngressSAQ(in, s, 10)
	if !in.Boosted(s) {
		t.Fatal("small leaf SAQ not boosted")
	}
	storeIngressSAQ(in, s, 10)
	storeIngressSAQ(in, s, 200) // 3 packets > BoostPackets, and propagation fires
	if in.Boosted(s) {
		t.Fatal("large / non-leaf SAQ boosted")
	}

	efx := &egressFx{ingress: map[int]*Ingress{}}
	eg, _ := newTestEgress(cfg, 0, efx)
	eg.OnUpstreamNotification(pkt.PathOf(2))
	es := eg.SAQByID(0)
	storeEgressSAQ(eg, es, 0, 10)
	if !eg.Boosted(es) {
		t.Fatal("small egress leaf SAQ not boosted")
	}
}

func TestTerminalEgressNeverRootNeverNotifies(t *testing.T) {
	cfg := testConfig()
	pool := mempool.NewPool(1 << 20)
	normal := mempool.NewQueue(pool, 0)
	efx := &egressFx{ingress: map[int]*Ingress{}}
	eg := NewEgress(cfg, 0, pool, []*mempool.Queue{normal}, true, efx)
	for i := 0; i < 10; i++ {
		normal.Push(64, nil)
		eg.OnStored(nil, -1, 64)
	}
	if eg.Root() {
		t.Fatal("terminal port became root")
	}
	// A SAQ on a terminal port never notifies ingress ports, but it
	// does return its token downstream on deallocation.
	eg.OnUpstreamNotification(pkt.PathOf(1, 2))
	s := eg.SAQByID(0)
	storeEgressSAQ(eg, s, -1, 256)
	if len(efx.notifies) != 0 {
		t.Fatal("terminal port notified ingress")
	}
	drainOne(s.Q)
	eg.OnDrained(s)
	if eg.ActiveSAQs() != 0 {
		t.Fatal("terminal SAQ not deallocated")
	}
	if len(efx.downTokens) != 1 {
		t.Fatal("terminal SAQ did not return token downstream")
	}
}

func TestReArmPreventsNotifyStorm(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 0}
	in, _ := newTestIngress(cfg, 0, infx)
	in.OnNotifyLocal(pkt.PathOf(4))
	s := in.SAQByID(0)
	storeIngressSAQ(in, s, 128) // propagate
	if len(infx.upstream) != 1 {
		t.Fatalf("msgs: %+v", infx.upstream)
	}
	// Upstream refused: token returns while still over threshold.
	in.OnTokenFromUpstream(pkt.PathOf(4), true)
	// More stores must NOT re-notify until occupancy drops below the
	// threshold once.
	storeIngressSAQ(in, s, 10)
	if len(infx.upstream) != 1 {
		t.Fatalf("notify storm: %+v", infx.upstream)
	}
	for s.Q.QueuedBytes() >= cfg.PropagateBytes {
		drainOne(s.Q)
		in.OnDrained(s)
	}
	storeIngressSAQ(in, s, 256)
	// Re-armed: a notification goes out again, and since occupancy is
	// already above the Xoff threshold the Xoff follows immediately.
	if len(infx.upstream) != 3 ||
		infx.upstream[1].Kind != MsgNotify || infx.upstream[2].Kind != MsgXoff {
		t.Fatalf("re-arm failed: %+v", infx.upstream)
	}
}

func TestStaleTokenAtIngress(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 0}
	in, _ := newTestIngress(cfg, 0, infx)
	in.OnTokenFromUpstream(pkt.PathOf(1), false) // no such SAQ
	if in.Stats().StaleMsgs != 1 {
		t.Fatalf("stale msgs = %d", in.Stats().StaleMsgs)
	}
	in.OnNotifyLocal(pkt.PathOf(1))
	in.OnTokenFromUpstream(pkt.PathOf(1), false) // SAQ never sent upstream
	if in.Stats().StaleMsgs != 2 {
		t.Fatalf("stale msgs = %d", in.Stats().StaleMsgs)
	}
}

func TestLongestMatchAcrossControllers(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 0}
	in, _ := newTestIngress(cfg, 0, infx)
	in.OnNotifyLocal(pkt.PathOf(4))
	in.OnNotifyLocal(pkt.PathOf(4, 2))
	long := in.Classify(pkt.Route{4, 2, 1}, 0)
	if long == nil || !long.Path.Equal(pkt.PathOf(4, 2)) {
		t.Fatalf("longest match = %v", long)
	}
	short := in.Classify(pkt.Route{4, 3}, 0)
	if short == nil || !short.Path.Equal(pkt.PathOf(4)) {
		t.Fatalf("short match = %v", short)
	}
	if in.Classify(pkt.Route{5}, 0) != nil {
		t.Fatal("unmatched route classified")
	}
}

func TestForEachSAQOrder(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 0}
	in, _ := newTestIngress(cfg, 0, infx)
	in.OnNotifyLocal(pkt.PathOf(1))
	in.OnNotifyLocal(pkt.PathOf(2))
	var ids []int
	in.ForEachSAQ(func(s *SAQ) { ids = append(ids, s.ID) })
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("ForEachSAQ order: %v", ids)
	}
	if in.String() == "" {
		t.Error("empty String")
	}
}
