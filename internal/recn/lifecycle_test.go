package recn

import (
	"testing"

	"repro/internal/pkt"
)

// OnDenied must recruit a blocked sender into the tree: without it, an
// input whose packets are refused admission by the congested target
// would never be notified and would suffer permanent HOL blocking.
func TestOnDeniedRecruitsBlockedSender(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 1}
	in, _ := newTestIngress(cfg, 1, infx)
	efx := &egressFx{ingress: map[int]*Ingress{1: in}}
	eg, normal := newTestEgress(cfg, 6, efx)
	infx.egress = map[int]*Egress{6: eg}

	// Make the port a root via stores from input 0 (which gets its
	// notification refused — not wired).
	for i := 0; i < 2; i++ {
		storeEgressNormal(eg, normal, 0, 128)
	}
	if !eg.Root() {
		t.Fatal("root not detected")
	}
	// Input 1 never stored a packet (it is blocked); a denial must
	// still recruit it.
	eg.OnDenied(pkt.Route{6, 2}, 1, 1)
	if in.ActiveSAQs() != 1 {
		t.Fatal("denied sender not recruited into the tree")
	}
	// Denials are deduplicated by the same flags as stores.
	eg.OnDenied(pkt.Route{6, 2}, 1, 1)
	if eg.Stats().NotifySent != 2 { // one for input 0, one for input 1
		t.Fatalf("notify count %d", eg.Stats().NotifySent)
	}
}

// OnDenied against a congested SAQ extends that SAQ's subtree.
func TestOnDeniedRecruitsIntoSAQ(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 2}
	in, _ := newTestIngress(cfg, 2, infx)
	efx := &egressFx{ingress: map[int]*Ingress{2: in}}
	eg, _ := newTestEgress(cfg, 6, efx)
	infx.egress = map[int]*Egress{6: eg}

	eg.OnUpstreamNotification(pkt.PathOf(3))
	s := eg.SAQByID(0)
	// Below the propagation threshold a denial does not recruit.
	storeEgressSAQ(eg, s, -1, 64)
	eg.OnDenied(pkt.Route{6, 3, 1}, 1, 2)
	if in.ActiveSAQs() != 0 {
		t.Fatal("recruited below threshold")
	}
	// Above it, it does — with the extended path.
	storeEgressSAQ(eg, s, -1, 128)
	eg.OnDenied(pkt.Route{6, 3, 1}, 1, 2)
	if in.ActiveSAQs() != 1 {
		t.Fatal("denied sender not recruited into the SAQ subtree")
	}
	if got := in.SAQByID(0).Path; !got.Equal(pkt.PathOf(6, 3)) {
		t.Fatalf("recruited path %v, want 6.3", got)
	}
	// Terminal ports and anonymous senders never recruit.
	eg.OnDenied(pkt.Route{6, 3, 1}, 1, -1)
	if in.Stats().Allocs != 1 {
		t.Fatal("anonymous denial recruited")
	}
}

// A lingering root (queue drained, tokens still out) must not recruit.
func TestLingeringRootStopsRecruiting(t *testing.T) {
	cfg := testConfig()
	in0fx := &ingressFx{port: 0}
	in0, _ := newTestIngress(cfg, 0, in0fx)
	in1fx := &ingressFx{port: 1}
	in1, _ := newTestIngress(cfg, 1, in1fx)
	efx := &egressFx{ingress: map[int]*Ingress{0: in0, 1: in1}}
	eg, normal := newTestEgress(cfg, 5, efx)
	in0fx.egress = map[int]*Egress{5: eg}
	in1fx.egress = map[int]*Egress{5: eg}

	// Root forms; input 0 recruited.
	for i := 0; i < 2; i++ {
		storeEgressNormal(eg, normal, 0, 128)
	}
	if in0.ActiveSAQs() != 1 {
		t.Fatal("input 0 not recruited")
	}
	// Queue drains below the detect threshold, but input 0's token is
	// still out: the port stays a root and must NOT hand a token to
	// input 1.
	drainOne(normal)
	drainOne(normal)
	eg.OnDrained(nil)
	if !eg.Root() {
		t.Fatal("root cleared with a branch outstanding")
	}
	storeEgressNormal(eg, normal, 1, 64)
	if in1.ActiveSAQs() != 0 {
		t.Fatal("lingering root recruited a new sender")
	}
	// Token comes home (never-used SAQ collected by the sweep) and the
	// root clears.
	in0.SweepIdle()
	if eg.Root() {
		t.Fatal("root did not clear after the last token returned")
	}
}

// A token from a previous episode must not corrupt the current root's
// branch accounting.
func TestCrossEpisodeTokenIsStale(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 3}
	in, _ := newTestIngress(cfg, 3, infx)
	efx := &egressFx{ingress: map[int]*Ingress{3: in}}
	eg, normal := newTestEgress(cfg, 1, efx)
	infx.egress = map[int]*Egress{1: eg}

	// Episode 1: root, input 3 recruited.
	storeEgressNormal(eg, normal, 3, 256)
	storeEgressNormal(eg, normal, 3, 64)
	if in.ActiveSAQs() != 1 {
		t.Fatal("not recruited")
	}
	// Episode 1 ends: queue drains, token returns, root clears.
	drainOne(normal)
	drainOne(normal)
	eg.OnDrained(nil)
	in.SweepIdle()
	if eg.Root() {
		t.Fatal("root did not clear")
	}
	// Episode 2: root again; this time the recruit is REFUSED because
	// the CAM is artificially full.
	for in.cam.Used() < cfg.MaxSAQs {
		in.cam.Allocate(pkt.PathOf(byte(9), byte(in.cam.Used()))) // fill
	}
	storeEgressNormal(eg, normal, 3, 256)
	storeEgressNormal(eg, normal, 3, 64)
	if !eg.Root() {
		t.Fatal("episode 2 root not detected")
	}
	before := eg.Stats().StaleMsgs
	// A token from nowhere (e.g. an episode-1 leftover) arrives: it
	// must be counted stale, not break the accounting.
	eg.OnTokenFromIngress(3, pkt.Path{})
	if eg.Stats().StaleMsgs != before+1 {
		t.Fatal("cross-episode token not treated as stale")
	}
	// The root can still clear normally once its queue drains (no
	// tokens are genuinely out: the recruit was refused... the refusal
	// left no branch).
	drainOne(normal)
	drainOne(normal)
	eg.OnDrained(nil)
	if eg.Root() {
		t.Fatal("root stuck after refused recruit")
	}
}

// Overlapping trees: allocating a longer path places markers in every
// prefix SAQ, and the new SAQ unblocks only when all of them resolve.
func TestPrefixMarkers(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 0}
	in, normal := newTestIngress(cfg, 0, infx)

	in.OnNotifyLocal(pkt.PathOf(4))
	short := in.SAQByID(0)
	// Resolve the short SAQ's own marker.
	e := normal.Pop()
	in.ResolveMarker(e.MarkerSAQ())
	if short.Blocked() {
		t.Fatal("short SAQ still blocked")
	}
	storeIngressSAQ(in, short, 64) // it holds a packet

	// Longer path: marker goes into the normal queue AND into the
	// short SAQ.
	in.OnNotifyLocal(pkt.PathOf(4, 2))
	long := in.SAQByID(1)
	if !long.Blocked() {
		t.Fatal("long SAQ not blocked")
	}
	if short.Q.Entries() != 2 { // packet + marker
		t.Fatalf("short SAQ entries %d, want 2", short.Q.Entries())
	}
	// Resolving only the normal-queue marker is not enough.
	e = normal.Pop()
	in.ResolveMarker(e.MarkerSAQ())
	if !long.Blocked() {
		t.Fatal("long SAQ unblocked with a prefix marker pending")
	}
	// Drain the short SAQ's packet, then its marker.
	drainOne(short.Q)
	in.OnDrained(short)
	e = short.Q.Pop()
	if !e.IsMarker() {
		t.Fatal("expected marker at short SAQ head")
	}
	in.ResolveMarker(e.MarkerSAQ())
	if long.Blocked() {
		t.Fatal("long SAQ still blocked after all markers resolved")
	}
	// An unrelated path gets only the normal-queue marker.
	in.OnNotifyLocal(pkt.PathOf(5))
	if in.Stats().MarkersPlaced != 1+2+1 {
		t.Fatalf("markers placed: %d", in.Stats().MarkersPlaced)
	}
}

// SweepIdle returns tokens of never-used SAQs so trees can collapse,
// but leaves used-but-nonempty and non-leaf SAQs alone.
func TestSweepIdleSelectivity(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 0}
	in, _ := newTestIngress(cfg, 0, infx)

	in.OnNotifyLocal(pkt.PathOf(1)) // never used → swept
	in.OnNotifyLocal(pkt.PathOf(2)) // holds a packet → kept
	s2 := in.SAQByID(1)
	storeIngressSAQ(in, s2, 64)
	in.OnNotifyLocal(pkt.PathOf(3)) // propagated upstream → kept
	s3 := in.SAQByID(2)
	storeIngressSAQ(in, s3, 128)
	drainOne(s3.Q)
	in.OnDrained(s3)
	if s3.Leaf() {
		t.Fatal("s3 should have sent its token upstream")
	}
	in.SweepIdle()
	if in.ActiveSAQs() != 2 {
		t.Fatalf("ActiveSAQs = %d after sweep, want 2", in.ActiveSAQs())
	}
	if in.SAQByID(0) != nil {
		t.Fatal("never-used SAQ survived the sweep")
	}

	// Egress side: a SAQ with outstanding branches is never swept.
	in2fx := &ingressFx{port: 0}
	in2, _ := newTestIngress(cfg, 0, in2fx)
	efx := &egressFx{ingress: map[int]*Ingress{0: in2}}
	eg, _ := newTestEgress(cfg, 6, efx)
	in2fx.egress = map[int]*Egress{6: eg}
	eg.OnUpstreamNotification(pkt.PathOf(2))
	s := eg.SAQByID(0)
	storeEgressSAQ(eg, s, 0, 200) // crosses propagate → notifies input 0
	drainOne(s.Q)
	eg.OnDrained(s)
	eg.SweepIdle()
	if eg.ActiveSAQs() != 1 {
		t.Fatal("egress SAQ with outstanding branch swept")
	}
	// Branch returns (ingress SAQ never used → swept), then the egress
	// SAQ goes too.
	in2.SweepIdle()
	eg.SweepIdle()
	if eg.ActiveSAQs() != 0 {
		t.Fatal("egress SAQ not swept after branch returned")
	}
	if len(efx.downTokens) != 1 {
		t.Fatalf("downstream tokens: %d", len(efx.downTokens))
	}
}

// Refused-vs-dealloc tokens: a refusal backs propagation off until the
// queue drains below the threshold; a dealloc re-arms immediately.
func TestTokenRefusedVsDealloc(t *testing.T) {
	cfg := testConfig()
	infx := &ingressFx{port: 0}
	in, _ := newTestIngress(cfg, 0, infx)
	in.OnNotifyLocal(pkt.PathOf(4))
	s := in.SAQByID(0)
	storeIngressSAQ(in, s, 256) // crosses propagate and xoff at once
	if len(infx.upstream) != 2 || infx.upstream[0].Kind != MsgNotify || infx.upstream[1].Kind != MsgXoff {
		t.Fatalf("msgs: %+v", infx.upstream)
	}
	// Dealloc token arrives while still over threshold → immediate
	// re-notification (the upstream SAQ drained, the flow did not).
	in.OnTokenFromUpstream(pkt.PathOf(4), false)
	if len(infx.upstream) != 4 || infx.upstream[2].Kind != MsgNotify || infx.upstream[3].Kind != MsgXoff {
		t.Fatalf("no immediate re-propagation: %+v", infx.upstream)
	}
	// Refused token arrives → back off even though still loaded.
	n := len(infx.upstream)
	in.OnTokenFromUpstream(pkt.PathOf(4), true)
	storeIngressSAQ(in, s, 64)
	if len(infx.upstream) != n {
		t.Fatalf("propagated after refusal: %+v", infx.upstream)
	}
}

// Disabled markers (ablation A4) leave SAQs immediately eligible.
func TestNoMarkersConfig(t *testing.T) {
	cfg := testConfig()
	cfg.NoInOrderMarkers = true
	infx := &ingressFx{port: 0}
	in, normal := newTestIngress(cfg, 0, infx)
	normal.Push(64, "ahead")
	in.OnNotifyLocal(pkt.PathOf(4))
	s := in.SAQByID(0)
	if s.Blocked() {
		t.Fatal("SAQ blocked with markers disabled")
	}
	if normal.Entries() != 1 {
		t.Fatal("marker placed with markers disabled")
	}
}

// BoostPackets = 0 disables the arbiter boost (ablation A3).
func TestBoostDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.BoostPackets = 0
	infx := &ingressFx{port: 0}
	in, _ := newTestIngress(cfg, 0, infx)
	in.OnNotifyLocal(pkt.PathOf(4))
	s := in.SAQByID(0)
	storeIngressSAQ(in, s, 10)
	if in.Boosted(s) {
		t.Fatal("boost active with BoostPackets=0")
	}
}
