package recn

import (
	"fmt"

	"repro/internal/cam"
	"repro/internal/mempool"
	"repro/internal/pkt"
)

// IngressEffects is implemented by the fabric to carry an ingress
// controller's outputs to the rest of the system.
type IngressEffects interface {
	// SendUpstream transmits a control message (notification, Xon or
	// Xoff) over the reverse link to the upstream egress port.
	SendUpstream(msg CtlMsg)
	// TokenToEgress delivers a branch token (synchronously, same
	// switch) to output port `egress`; rest is the path as seen from
	// that port (empty = it is the root).
	TokenToEgress(egress int, rest pkt.Path)
}

// Ingress is the RECN controller of a switch input port.
type Ingress struct {
	cfg  Config
	port int // this input port's index within its switch

	cam     *cam.Table
	pool    *mempool.Pool
	normals []*mempool.Queue // queues for uncongested flows (per class)
	// saqs is indexed by CAM line ID (nil = free line); with ≤8 lines,
	// slice indexing and linear UID scans beat maps and never allocate.
	saqs   []*SAQ
	active int
	// freed SAQs are recycled (with their queues) through a plain LIFO
	// free-list — deterministic, unlike sync.Pool.
	free   []*SAQ
	uidSeq int

	fx    IngressEffects
	tr    Tracer
	stats Stats
}

// SetTracer installs a flight-recorder tap (nil disables tracing).
func (in *Ingress) SetTracer(tr Tracer) { in.tr = tr }

// NewIngress builds the controller for one input port (eagerly, with
// panics on bad arguments — the legacy constructor the tests use).
func NewIngress(cfg Config, port int, pool *mempool.Pool, normals []*mempool.Queue, fx IngressEffects) *Ingress {
	in := &Ingress{}
	if err := in.Init(cfg, port, pool, normals, fx, true); err != nil {
		panic(err)
	}
	return in
}

// Init (re)builds the controller in place (arena-allocated controllers
// use this — see fabric.New). With eager false the CAM table and SAQ
// slot array are deferred to the first congestion event on this port:
// most ports of a large fabric never see one, and an absent CAM behaves
// exactly like an empty one.
func (in *Ingress) Init(cfg Config, port int, pool *mempool.Pool, normals []*mempool.Queue, fx IngressEffects, eager bool) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if fx == nil {
		return fmt.Errorf("recn: ingress init with nil effects")
	}
	if len(normals) == 0 {
		return fmt.Errorf("recn: ingress init without normal queues")
	}
	*in = Ingress{
		cfg:     cfg,
		port:    port,
		pool:    pool,
		normals: normals,
		fx:      fx,
	}
	if eager {
		in.ensure()
	}
	return nil
}

// ensure materializes the CAM table and SAQ slots on first use.
func (in *Ingress) ensure() {
	if in.cam == nil {
		in.cam = cam.New(in.cfg.MaxSAQs)
		in.saqs = make([]*SAQ, in.cfg.MaxSAQs)
	}
}

// takeSAQ recycles (or builds) a SAQ for CAM line id. The queue object
// is reused across allocations: deallocation requires an idle queue, so
// a recycled queue is always empty with no resident bytes.
func (in *Ingress) takeSAQ(id int, path pkt.Path) *SAQ {
	in.uidSeq++
	var s *SAQ
	if n := len(in.free); n > 0 {
		s = in.free[n-1]
		in.free[n-1] = nil
		in.free = in.free[:n-1]
		*s = SAQ{Q: s.Q}
	} else {
		s = &SAQ{Q: mempool.NewQueue(in.pool, 0)}
	}
	s.ID = id
	s.UID = in.uidSeq
	s.Path = path
	return s
}

// saqByUID finds a live SAQ by its unique ID (nil when gone — stale
// markers reference deallocated UIDs).
func (in *Ingress) saqByUID(uid int) *SAQ {
	for _, s := range in.saqs {
		if s != nil && s.UID == uid {
			return s
		}
	}
	return nil
}

// Classify returns the SAQ an arriving packet must be stored in, or
// nil for the normal queue. route[hop:] begins with the turn at this
// switch (paper §3.6).
func (in *Ingress) Classify(route pkt.Route, hop int) *SAQ {
	if in.cam == nil || in.cam.Used() == 0 {
		return nil
	}
	id, ok := in.cam.Match(route, hop)
	if in.tr != nil {
		in.tr.CAMLookup(ok)
	}
	if ok {
		return in.saqs[id]
	}
	return nil
}

// OnNotifyLocal handles an internal congestion notification from one of
// this switch's output ports. It returns whether the token was accepted
// (a SAQ was allocated); false lets the egress keep its branch count
// consistent (paper §3.8: "the token is returned to the notification
// sender").
func (in *Ingress) OnNotifyLocal(path pkt.Path) bool {
	if path.Empty() {
		panic("recn: internal notification with empty path")
	}
	in.ensure()
	if _, ok := in.cam.Lookup(path); ok {
		in.stats.Refusals++
		return false
	}
	id, ok := in.cam.Allocate(path)
	if !ok {
		in.stats.Refusals++
		return false
	}
	s := in.takeSAQ(id, path)
	s.leaf = true
	s.reArm = true
	in.saqs[id] = s
	in.active++
	if !in.cfg.NoInOrderMarkers {
		// In-order markers: the normal queue, plus every SAQ with a
		// proper prefix path (its packets may match the longer path).
		for _, q := range in.normals {
			q.PushMarker(s.UID)
			s.markersPending++
		}
		in.ForEachSAQ(func(t *SAQ) {
			if t != s && path.HasPrefix(t.Path) {
				t.Q.PushMarker(s.UID)
				s.markersPending++
			}
		})
	}
	in.stats.Allocs++
	in.stats.MarkersPlaced += uint64(s.markersPending)
	if in.tr != nil {
		in.tr.SAQAlloc(s.ID, s.UID, s.Path)
	}
	return true
}

// OnStored is called by the fabric after a packet of the given size has
// been pushed into queue s (nil = normal queue: nothing to do — roots
// are detected at output ports).
func (in *Ingress) OnStored(s *SAQ, size int) {
	if s == nil {
		return
	}
	s.used = true
	in.checkPressure(s)
}

// checkPressure propagates the congestion tree upstream when the SAQ
// crosses the notification threshold (paper §3.4; the path is reused
// verbatim — the upstream egress port sees the same path to the root),
// and sends the per-SAQ Xoff once a notification is out (paper §3.7).
func (in *Ingress) checkPressure(s *SAQ) {
	occ := s.Q.QueuedBytes()
	if occ >= in.cfg.PropagateBytes && !s.sentUpstream && s.reArm && s.leaf {
		s.sentUpstream = true
		s.leaf = false
		s.reArm = false
		in.stats.NotifySent++
		in.fx.SendUpstream(CtlMsg{Kind: MsgNotify, Path: s.Path})
	}
	if !s.xoffSent && s.sentUpstream && occ >= in.cfg.XoffBytes {
		s.xoffSent = true
		in.stats.XoffSent++
		in.fx.SendUpstream(CtlMsg{Kind: MsgXoff, Path: s.Path})
	}
}

// OnTokenFromUpstream handles a MsgToken arriving over the link: the
// subtree above this SAQ collapsed (or, with refused set, the
// notification bounced off a full CAM); the SAQ owns the token again
// and may deallocate once idle. After a deallocation token the SAQ
// re-notifies immediately if it is still over the threshold — the
// upstream SAQ drained and went away, but the flow feeding us has not
// stopped. After a refusal it backs off until it drains below the
// threshold once, avoiding notify/refuse storms.
func (in *Ingress) OnTokenFromUpstream(path pkt.Path, refused bool) {
	if in.cam == nil {
		// No SAQ was ever allocated here: the token is stale (same as an
		// empty-CAM lookup miss).
		in.stats.StaleMsgs++
		return
	}
	id, ok := in.cam.Lookup(path)
	if !ok {
		in.stats.StaleMsgs++
		return
	}
	s := in.saqs[id]
	if !s.sentUpstream {
		in.stats.StaleMsgs++
		return
	}
	s.sentUpstream = false
	s.leaf = true
	s.reArm = !refused
	if s.xoffSent {
		// The upstream SAQ is gone; clear our stop state.
		s.xoffSent = false
	}
	in.checkPressure(s)
	in.maybeDealloc(s)
}

// ResolveMarker is called when an in-order marker reaches the head of a
// queue. Stale markers are inert. Queues that only held markers may now
// be idle, so deallocation is re-checked everywhere.
func (in *Ingress) ResolveMarker(uid int) {
	if s := in.saqByUID(uid); s != nil && s.markersPending > 0 {
		s.markersPending--
	}
	// CAM-line order, not map order: deallocations send tokens, and
	// their relative order must be identical across runs.
	in.ForEachSAQ(in.maybeDealloc)
}

// EligibleTx reports whether the crossbar arbiter may serve this SAQ.
// (Internal Xoff is checked against the *target egress* by the fabric.)
func (in *Ingress) EligibleTx(s *SAQ) bool { return !s.Blocked() }

// Boosted reports whether the SAQ gets highest arbitration priority
// (paper §3.8).
func (in *Ingress) Boosted(s *SAQ) bool {
	return s.leaf && s.Q.Packets() <= in.cfg.BoostPackets && s.Q.Packets() > 0
}

// OnDrained is called after a packet from SAQ s (nil = normal queue)
// has fully left the port and its RAM was released.
func (in *Ingress) OnDrained(s *SAQ) {
	if s == nil {
		return
	}
	occ := s.Q.QueuedBytes()
	if s.xoffSent && occ <= in.cfg.XonBytes {
		s.xoffSent = false
		in.stats.XonSent++
		in.fx.SendUpstream(CtlMsg{Kind: MsgXon, Path: s.Path})
	}
	if !s.reArm && occ < in.cfg.PropagateBytes {
		s.reArm = true
	}
	in.maybeDealloc(s)
}

// maybeDealloc releases SAQ s once it is an idle leaf, handing the
// token to the local output port on its path (paper §3.5: "notifying
// the corresponding output port, which is identified thanks to the path
// information available in the CAM line").
// The SAQ must have been used: a freshly allocated SAQ whose packets
// are still in flight toward it must not bounce (alloc/dealloc thrash).
func (in *Ingress) maybeDealloc(s *SAQ) {
	if !s.used || !s.leaf || s.sentUpstream || !s.Q.Idle() {
		return
	}
	in.dealloc(s)
}

// SweepIdle deallocates idle leaf SAQs regardless of use (see
// Egress.SweepIdle).
func (in *Ingress) SweepIdle() {
	// CAM-line order, not map order: deallocations send tokens, and
	// their relative order must be identical across runs.
	in.ForEachSAQ(func(s *SAQ) {
		if s.leaf && !s.sentUpstream && s.Q.Idle() {
			in.dealloc(s)
		}
	})
}

func (in *Ingress) dealloc(s *SAQ) {
	in.cam.Free(s.ID)
	in.saqs[s.ID] = nil
	in.active--
	in.stats.Deallocs++
	in.stats.TokensSent++
	if in.tr != nil {
		in.tr.SAQDealloc(s.ID, s.UID, s.Path)
	}
	egress, rest := int(s.Path.First()), s.Path.Rest()
	in.free = append(in.free, s)
	in.fx.TokenToEgress(egress, rest)
}

// AuditTokens is the watchdog hook for lost tokens and notifications
// (the paper assumes both always arrive, §3.5/§3.8). A SAQ that has
// been idle with its token outstanding for `limit` consecutive audits
// is force-reclaimed: the upstream subtree either never existed (the
// notification was dropped) or collapsed without us hearing (the token
// was dropped). Reclaiming early in a live tree is safe — a token that
// arrives later finds no CAM entry and is already tolerated as stale.
// Returns the number of SAQs reclaimed. Iterates in CAM line order for
// determinism.
func (in *Ingress) AuditTokens(limit int) int {
	reclaimed := 0
	for _, s := range in.saqs {
		if s == nil {
			continue
		}
		if s.sentUpstream && s.Q.Idle() {
			s.watchTicks++
			if s.watchTicks >= limit {
				in.forceReclaim(s)
				reclaimed++
			}
		} else {
			s.watchTicks = 0
		}
	}
	return reclaimed
}

// forceReclaim deallocates a SAQ without waiting for its token. If we
// had stopped the upstream SAQ, release it first — leaving a phantom
// Xoff in place would freeze the upstream queue forever.
func (in *Ingress) forceReclaim(s *SAQ) {
	if s.xoffSent {
		s.xoffSent = false
		in.stats.XonSent++
		in.fx.SendUpstream(CtlMsg{Kind: MsgXon, Path: s.Path})
	}
	s.sentUpstream = false
	s.leaf = true
	in.dealloc(s)
}

// ResendStops is the watchdog hook for lost Xoffs: re-send the stop for
// every SAQ that believes the upstream is stopped while still sitting
// above the threshold. A duplicate Xoff at a correctly stopped upstream
// is idempotent, so resending is always safe. Returns the number of
// Xoffs re-sent. Iterates in CAM line order for determinism.
func (in *Ingress) ResendStops() int {
	sent := 0
	for _, s := range in.saqs {
		if s == nil {
			continue
		}
		if s.xoffSent && s.Q.QueuedBytes() >= in.cfg.XoffBytes {
			in.stats.XoffSent++
			in.fx.SendUpstream(CtlMsg{Kind: MsgXoff, Path: s.Path})
			sent++
		}
	}
	return sent
}

// Port returns this input port's index within its switch.
func (in *Ingress) Port() int { return in.port }

// ActiveSAQs returns the number of SAQs currently allocated.
func (in *Ingress) ActiveSAQs() int { return in.active }

// CAMUsed returns the number of CAM lines currently allocated. The
// invariant checker cross-checks it against ActiveSAQs and the
// allocation counters: a divergence means a leaked or double-freed
// line.
func (in *Ingress) CAMUsed() int {
	if in.cam == nil {
		return 0
	}
	return in.cam.Used()
}

// Materialized reports whether this controller ever saw a congestion
// event (its CAM and SAQ table exist). Used by the memory model: an
// unmaterialized controller holds no per-SAQ state at all.
func (in *Ingress) Materialized() bool { return in.cam != nil }

// SAQByID returns a SAQ by CAM line ID (nil when the line is free).
func (in *Ingress) SAQByID(id int) *SAQ {
	if id < 0 || id >= len(in.saqs) {
		return nil
	}
	return in.saqs[id]
}

// ForEachSAQ iterates over allocated SAQs in CAM line order.
func (in *Ingress) ForEachSAQ(fn func(s *SAQ)) {
	for _, s := range in.saqs {
		if s != nil {
			fn(s)
		}
	}
}

// Stats returns a copy of the event counters.
func (in *Ingress) Stats() Stats { return in.stats }

func (in *Ingress) String() string {
	return fmt.Sprintf("ingress{port %d, %d SAQs}", in.port, in.active)
}
