package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Fields are marshalled in struct order, so output is deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Pid   int64          `json:"pid"`
	Tid   int64          `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome pid/tid mapping: each node (switch or NIC) is a "process";
// each port direction is a "thread" within it. DirNet events go to a
// dedicated pid.
func chromePid(l Loc) int64 {
	switch l.Dir {
	case DirIn, DirOut:
		return int64(l.Node) + 1 // switches: pid 1..N
	case DirInj, DirHost:
		return 10_000 + int64(l.Node) // hosts/NICs
	default:
		return 99_999 // network-wide
	}
}

func chromeTid(l Loc) int64 {
	switch l.Dir {
	case DirIn:
		return int64(l.Port)*2 + 1
	case DirOut:
		return int64(l.Port)*2 + 2
	case DirInj:
		return 1
	case DirHost:
		return 2
	default:
		return 1
	}
}

func tidName(l Loc) string {
	switch l.Dir {
	case DirIn:
		return fmt.Sprintf("in%d", l.Port)
	case DirOut:
		return fmt.Sprintf("out%d", l.Port)
	case DirInj:
		return "inj"
	case DirHost:
		return "host"
	default:
		return "net"
	}
}

func pidName(l Loc) string {
	switch l.Dir {
	case DirIn, DirOut:
		return fmt.Sprintf("switch %d", l.Node)
	case DirInj, DirHost:
		return fmt.Sprintf("host %d", l.Node)
	default:
		return "network"
	}
}

// ts converts a picosecond sim time to trace_event microseconds.
func chromeTs(e Event) float64 { return float64(e.At) / 1e6 }

// WriteChromeTrace exports the retained events (and, when enabled, the
// metrics registry as counter tracks) in Chrome trace_event JSON.
// SAQ lifecycles become async nestable spans — named by the resolved
// congestion root, id-keyed by location+UID so overlapping lifecycles
// on one port render as separate slices — and every other event an
// instant. The output is byte-deterministic for a given recording.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}

	// Metadata: name every pid/tid we will reference, in first-seen
	// order (deterministic: derived from the event sequence).
	type pt struct{ pid, tid int64 }
	seenPid := map[int64]bool{}
	seenTid := map[pt]bool{}
	meta := []chromeEvent{}
	note := func(l Loc) {
		pid, tid := chromePid(l), chromeTid(l)
		if !seenPid[pid] {
			seenPid[pid] = true
			meta = append(meta, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": pidName(l)},
			})
		}
		if k := (pt{pid, tid}); !seenTid[k] {
			seenTid[k] = true
			meta = append(meta, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": tidName(l)},
			})
		}
	}

	body := []chromeEvent{}
	for _, e := range events {
		note(e.Loc)
		pid, tid := chromePid(e.Loc), chromeTid(e.Loc)
		switch e.Kind {
		case EvSAQAlloc, EvSAQDealloc:
			ph := "b"
			if e.Kind == EvSAQDealloc {
				ph = "e"
			}
			body = append(body, chromeEvent{
				Name: "SAQ " + r.RootOf(e),
				Cat:  "saq",
				Ph:   ph,
				Ts:   chromeTs(e),
				Pid:  pid, Tid: tid,
				ID: fmt.Sprintf("%s#%d", e.Loc, e.B),
				Args: map[string]any{
					"line": e.A, "uid": e.B, "path": PathString(e.Tag),
				},
			})
		default:
			ce := chromeEvent{
				Name:  e.Kind.String(),
				Cat:   e.Kind.String(),
				Ph:    "i",
				Scope: "t",
				Ts:    chromeTs(e),
				Pid:   pid, Tid: tid,
			}
			if d := e.Detail(); d != "" {
				ce.Args = map[string]any{"detail": d}
			}
			body = append(body, ce)
		}
	}

	// Counter tracks from the metrics registry, in sorted series-name
	// order. All-zero series (idle ports) are omitted, and within a
	// series a counter event is emitted only when the value changes —
	// trace viewers hold the last value, so flat stretches would only
	// bloat the file (a large fabric samples thousands of series).
	counters := []chromeEvent{}
	if m := r.Metrics(); m != nil {
		m.Each(func(s *TimeSeries) {
			if s.Max() == 0 {
				return
			}
			last, started := 0.0, false
			for i := 0; i < s.Bins(); i++ {
				if !s.set[i] {
					continue
				}
				v := s.At(i)
				if started && v == last {
					continue
				}
				last, started = v, true
				counters = append(counters, chromeEvent{
					Name: s.Name(),
					Ph:   "C",
					Ts:   float64(int64(s.Bin())*int64(i)) / 1e6,
					Pid:  99_998,
					Args: map[string]any{"value": v},
				})
			}
		})
		if len(counters) > 0 {
			meta = append(meta, chromeEvent{
				Name: "process_name", Ph: "M", Pid: 99_998,
				Args: map[string]any{"name": "metrics"},
			})
		}
	}

	out.TraceEvents = append(out.TraceEvents, meta...)
	out.TraceEvents = append(out.TraceEvents, body...)
	out.TraceEvents = append(out.TraceEvents, counters...)

	// Compact encoding: traces from a busy fabric run to millions of
	// entries, and viewers don't care about whitespace.
	return json.NewEncoder(w).Encode(out)
}
