package trace

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/sim"
)

// WriteText exports the retained events as a plain-text log, one line
// per event: time, dispatch sequence, location, kind, detail.
func (r *Recorder) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if n := r.Overwritten(); n > 0 {
		fmt.Fprintf(bw, "# ring overwrote %d earlier events (%d recorded, %d retained)\n",
			n, r.Total(), r.Len())
	}
	for _, e := range r.Events() {
		fmt.Fprintf(bw, "%12v  #%-8d %-12s %-12s %s\n",
			e.At, e.Exec, e.Loc.String(), e.Kind.String(), e.Detail())
	}
	return bw.Flush()
}

// Tree is one reconstructed congestion tree: every SAQ/token/flow
// event that resolves to the same congestion root, from birth (first
// SAQ allocation) to death (last deallocation).
type Tree struct {
	// Root names the congestion root ("sw3.out5") the tree grew from.
	Root string
	// Born is the time of the first SAQ allocation; Died of the last
	// deallocation. Died < Born means the tree was still alive (or its
	// birth was overwritten in the ring) when the recording ended.
	Born, Died sim.Time
	// Allocs / Deallocs count SAQ lifecycle events; Tokens counts token
	// moves; Notifies congestion notifications; Xoffs/Xons flow control.
	Allocs, Deallocs, Tokens, Notifies, Xoffs, Xons int
	// PeakSAQs is the largest number of simultaneously live SAQs.
	PeakSAQs int
	// Events holds the tree's events in recording order.
	Events []Event

	live int
}

// Trees reconstructs the congestion-tree timelines from the retained
// events. Trees are returned in order of first appearance (birth),
// which is deterministic for a given recording.
func (r *Recorder) Trees() []*Tree {
	byRoot := map[string]*Tree{}
	var order []*Tree
	for _, e := range r.Events() {
		switch e.Kind {
		case EvSAQAlloc, EvSAQDealloc, EvToken, EvNotify, EvXoff, EvXon:
		default:
			continue
		}
		root := r.RootOf(e)
		t := byRoot[root]
		if t == nil {
			t = &Tree{Root: root, Born: -1, Died: -1}
			byRoot[root] = t
			order = append(order, t)
		}
		t.Events = append(t.Events, e)
		switch e.Kind {
		case EvSAQAlloc:
			t.Allocs++
			t.live++
			if t.live > t.PeakSAQs {
				t.PeakSAQs = t.live
			}
			if t.Born < 0 {
				t.Born = e.At
			}
		case EvSAQDealloc:
			t.Deallocs++
			if t.live > 0 {
				t.live--
			}
			if t.live == 0 {
				t.Died = e.At
			}
		case EvToken:
			t.Tokens++
		case EvNotify:
			t.Notifies++
		case EvXoff:
			t.Xoffs++
		case EvXon:
			t.Xons++
		}
	}
	return order
}

// WriteTrees exports the congestion-tree lifecycle timeline as text:
// one header per tree (root, birth→death, totals) followed by the
// tree's events in chronological order.
func (r *Recorder) WriteTrees(w io.Writer) error {
	bw := bufio.NewWriter(w)
	trees := r.Trees()
	if len(trees) == 0 {
		fmt.Fprintln(bw, "no congestion trees observed")
		return bw.Flush()
	}
	for i, t := range trees {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		died := "still alive at end of recording"
		if t.Died >= t.Born && t.Born >= 0 {
			died = fmt.Sprintf("died %v", t.Died)
		}
		fmt.Fprintf(bw, "tree rooted at %s: born %v, %s — %d allocs, %d deallocs, %d tokens, %d notifies, %d xoff, %d xon, peak %d SAQs\n",
			t.Root, t.Born, died,
			t.Allocs, t.Deallocs, t.Tokens, t.Notifies, t.Xoffs, t.Xons, t.PeakSAQs)
		for _, e := range t.Events {
			fmt.Fprintf(bw, "  %12v  %-12s %-12s %s\n",
				e.At, e.Loc.String(), e.Kind.String(), e.Detail())
		}
	}
	return bw.Flush()
}
