package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestParseEvents(t *testing.T) {
	cases := []struct {
		spec string
		want Mask
	}{
		{"all", AllEvents},
		{"send", 1 << EvSend},
		{"saq", 1<<EvSAQAlloc | 1<<EvSAQDealloc},
		{"saq,token", 1<<EvSAQAlloc | 1<<EvSAQDealloc | 1<<EvToken},
		{"tree", 1<<EvSAQAlloc | 1<<EvSAQDealloc | 1<<EvToken | 1<<EvNotify},
		{" SAQ , Token ", 1<<EvSAQAlloc | 1<<EvSAQDealloc | 1<<EvToken}, // case/space-insensitive
	}
	for _, c := range cases {
		got, err := ParseEvents(c.spec)
		if err != nil {
			t.Errorf("ParseEvents(%q): %v", c.spec, err)
		} else if got != c.want {
			t.Errorf("ParseEvents(%q) = %b, want %b", c.spec, got, c.want)
		}
	}
	for _, spec := range []string{"", "bogus", "saq,bogus", ","} {
		_, err := ParseEvents(spec)
		if err == nil {
			t.Errorf("ParseEvents(%q): want error", spec)
			continue
		}
		// The error must teach the valid vocabulary.
		if !strings.Contains(err.Error(), "saq-alloc") || !strings.Contains(err.Error(), "tree") {
			t.Errorf("ParseEvents(%q) error %q does not list valid names", spec, err)
		}
	}
}

func TestMaskGating(t *testing.T) {
	r := New(Config{Events: 1<<EvSAQAlloc | 1<<EvSAQDealloc, BufferEvents: 16})
	r.RecordPacket(EvSend, Loc{Node: 1, Dir: DirOut}, 1, 64, 0, 5) // masked out
	r.Record(EvSAQAlloc, Loc{Node: 1, Dir: DirIn}, "", 0, 1, 0)
	if r.Total() != 1 {
		t.Fatalf("Total = %d, want 1 (send masked out)", r.Total())
	}
	if !r.Enabled(EvSAQAlloc) || r.Enabled(EvSend) {
		t.Fatalf("Enabled: alloc=%v send=%v", r.Enabled(EvSAQAlloc), r.Enabled(EvSend))
	}
}

func TestRingWrap(t *testing.T) {
	r := New(Config{BufferEvents: 4})
	for i := 0; i < 10; i++ {
		r.Record(EvCredit, NetLoc, "", int64(i), 0, 0)
	}
	if r.Total() != 10 || r.Overwritten() != 6 || r.Len() != 4 {
		t.Fatalf("Total=%d Overwritten=%d Len=%d, want 10/6/4", r.Total(), r.Overwritten(), r.Len())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d Seq = %d, want %d (oldest retained first)", i, e.Seq, want)
		}
		if want := int64(6 + i); e.A != want {
			t.Errorf("event %d A = %d, want %d", i, e.A, want)
		}
	}
}

func TestRecordNoAlloc(t *testing.T) {
	r := New(Config{Events: 1 << EvSAQAlloc, BufferEvents: 8})
	loc := Loc{Node: 3, Port: 2, Dir: DirIn}
	if n := testing.AllocsPerRun(100, func() {
		r.Record(EvSAQAlloc, loc, "\x01\x02", 0, 1, 0)
	}); n != 0 {
		t.Errorf("enabled Record allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		r.Record(EvSend, loc, "", 0, 0, 0) // masked out
	}); n != 0 {
		t.Errorf("masked Record allocates %.1f/op, want 0", n)
	}
}

func TestBindSingleUse(t *testing.T) {
	r := New(Config{})
	if err := r.Bind(nil, nil); err == nil {
		t.Fatal("Bind(nil) succeeded")
	}
	eng := sim.NewEngine()
	if err := r.Bind(eng, nil); err != nil {
		t.Fatalf("first Bind: %v", err)
	}
	if err := r.Bind(eng, nil); err == nil {
		t.Fatal("second Bind succeeded; recorders must be single-use")
	}
}

// recordLifecycle plays one SAQ alloc → token → dealloc sequence
// through a bound engine so events carry real (time, dispatch) stamps.
func recordLifecycle(t *testing.T) *Recorder {
	t.Helper()
	r := New(Config{BufferEvents: 64})
	eng := sim.NewEngine()
	if err := r.Bind(eng, nil); err != nil {
		t.Fatal(err)
	}
	in := Loc{Node: 3, Port: 2, Dir: DirIn}
	eng.Schedule(10*sim.Nanosecond, func() { r.Record(EvSAQAlloc, in, "", 0, 1, 0) })
	eng.Schedule(15*sim.Nanosecond, func() { r.Record(EvNotify, in, "", 1, 1, 0) })
	eng.Schedule(40*sim.Nanosecond, func() { r.Record(EvSAQDealloc, in, "", 0, 1, 0) })
	eng.Schedule(40*sim.Nanosecond, func() { r.Record(EvToken, in, "", 0, 1, 0) })
	eng.Drain()
	return r
}

func TestTrees(t *testing.T) {
	r := recordLifecycle(t)
	trees := r.Trees()
	if len(trees) != 1 {
		t.Fatalf("Trees = %d, want 1", len(trees))
	}
	tr := trees[0]
	if tr.Allocs != 1 || tr.Deallocs != 1 || tr.Tokens != 1 || tr.Notifies != 1 {
		t.Fatalf("tree counts %+v, want 1 alloc/dealloc/token/notify", tr)
	}
	if tr.Born != 10*sim.Nanosecond || tr.Died != 40*sim.Nanosecond {
		t.Fatalf("born %v died %v, want 10ns/40ns", tr.Born, tr.Died)
	}
	if tr.PeakSAQs != 1 {
		t.Fatalf("PeakSAQs = %d, want 1", tr.PeakSAQs)
	}

	var buf bytes.Buffer
	if err := r.WriteTrees(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "born 10.000ns, died 40.000ns") {
		t.Errorf("WriteTrees output missing lifecycle header:\n%s", buf.String())
	}
}

func TestWriteText(t *testing.T) {
	r := recordLifecycle(t)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"saq-alloc", "saq-dealloc", "token", "sw3.in2"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTrace(t *testing.T) {
	r := recordLifecycle(t)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var begin, end int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "b":
			begin++
			if e.Ts != 0.01 { // 10 ns in µs
				t.Errorf("span begin ts = %v, want 0.01", e.Ts)
			}
		case "e":
			end++
		}
	}
	if begin != 1 || end != 1 {
		t.Fatalf("span events b=%d e=%d, want one matched pair", begin, end)
	}
}

func TestMetricsRejectsBadSamples(t *testing.T) {
	m := newMetrics(100)
	m.Observe("x", -1, 1)
	nan := 0.0
	m.Observe("x", 5, nan/nan) // NaN
	m.Observe("x", 250, 3)
	if m.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", m.Dropped())
	}
	s := m.Series("x")
	if s == nil || s.At(2) != 3 {
		t.Fatalf("series missing valid sample: %+v", s)
	}
}

// TestSeriesSummarize checks the stats.Series integration: the same
// Summarize the figure tables use works on a trace TimeSeries.
func TestSeriesSummarize(t *testing.T) {
	m := newMetrics(100)
	m.Observe("occ", 50, 2)  // bin 0
	m.Observe("occ", 120, 8) // bin 1
	m.Observe("occ", 130, 6) // bin 1: max-reduced, keeps 8
	m.Observe("occ", 250, 4) // bin 2
	sum := stats.Summarize(m.Series("occ"))
	if sum.Bins != 3 || sum.Max != 8 || sum.PeakAt != 100 {
		t.Fatalf("summary %+v, want 3 bins, max 8 at 100ps", sum)
	}
	if want := (2.0 + 8 + 4) / 3; sum.Mean != want {
		t.Fatalf("mean %v, want %v", sum.Mean, want)
	}
}
