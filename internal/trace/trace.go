// Package trace is the simulator's flight recorder: a fixed-size ring
// buffer of typed events (packet movement, SAQ lifecycle, CAM lookups,
// RECN control traffic, faults and watchdog actions) plus a per-port /
// per-SAQ time-series metrics registry, with exporters for the Chrome
// trace_event JSON format (chrome://tracing, Perfetto), a plain-text
// event log, and a congestion-tree lifecycle timeline.
//
// The design contract is "cheap enough to leave compiled in": with no
// recorder attached the fabric's hot paths pay a single nil comparison
// per hook point and allocate nothing. With a recorder attached,
// recording one event is a mask test plus a ring-slot store — no
// allocation, no locking (the simulation is single-threaded), and no
// wall-clock reads: every event is stamped with the engine's
// deterministic (time, dispatch-sequence) pair, so two runs of the same
// seeded scenario export byte-identical traces.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// EventKind enumerates the typed events the recorder understands.
type EventKind uint8

const (
	// EvSend: a data packet was granted link transmission at an egress
	// or NIC injection port. A=packet ID, B=size, C=src<<32|dst.
	EvSend EventKind = iota
	// EvRecv: a data packet arrived at a switch input port (or, with
	// Dir=DirHost, was delivered to its host). Args as EvSend.
	EvRecv
	// EvDrop: a message was discarded at a host because its admittance
	// queue was full (AdmitCap). A=destination, B=message size.
	EvDrop
	// EvSAQAlloc / EvSAQDealloc: a set-aside queue (CAM line) was
	// allocated / released. A=CAM line, B=UID, Tag=path key.
	EvSAQAlloc
	EvSAQDealloc
	// EvCAMHit / EvCAMMiss: a CAM lookup classified a packet into a SAQ
	// (hit) or the normal queue (miss). Only recorded while the port's
	// CAM is non-empty — an empty CAM is a trivial miss.
	EvCAMHit
	EvCAMMiss
	// EvNotify: a congestion notification was issued. A=1 for internal
	// (egress → same-switch ingress; Loc is the receiving ingress),
	// 0 for external (ingress → upstream over the link); B=1 when an
	// internal notification was accepted (a SAQ was allocated).
	EvNotify
	// EvToken: a congestion-tree token moved. A=1 when refused (bounced
	// off a full CAM), B=1 for the internal ingress→egress move (Loc is
	// the receiving egress port).
	EvToken
	// EvXoff / EvXon: per-SAQ stop/go flow control sent upstream.
	EvXoff
	EvXon
	// EvCredit: a flow-control credit return was queued on the reverse
	// link. A=bytes, B=remote queue index (-1 = port-level).
	EvCredit
	// EvFault: an injected fault fired. Tag=targeted message kind,
	// A unused, B=fault action (FaultDrop..FaultLinkUp), C=delay in ps.
	EvFault
	// EvWatchdog: the recovery layer acted. A=action
	// (WatchStall..WatchCreditViolation), B=count or bytes.
	EvWatchdog
	// EvMark: throttle policy — A=1: a packet was ECN-marked at a
	// congested output queue (B=queued bytes); A=0: the destination
	// scheduled a CNP back to the marked source (B=source).
	EvMark
	// EvHint: arn policy — a congestion hint was broadcast (Loc is the
	// congested switch's output port, A=1 for hint-on, 0 for hint-off).
	EvHint

	numEventKinds
)

var kindNames = [numEventKinds]string{
	"send", "recv", "drop", "saq-alloc", "saq-dealloc", "cam-hit", "cam-miss",
	"notify", "token", "xoff", "xon", "credit", "fault", "watchdog",
	"mark", "hint",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Mask selects a set of event kinds (one bit per EventKind).
type Mask uint32

// AllEvents enables every event kind.
const AllEvents Mask = 1<<numEventKinds - 1

// Has reports whether kind k is enabled.
func (m Mask) Has(k EventKind) bool { return m&(1<<k) != 0 }

// With returns the mask with kind k enabled.
func (m Mask) With(k EventKind) Mask { return m | 1<<k }

// maskGroups are the spec aliases accepted by ParseEvents, each
// covering one or more kinds.
var maskGroups = []struct {
	name string
	mask Mask
}{
	{"all", AllEvents},
	{"packet", 1<<EvSend | 1<<EvRecv | 1<<EvDrop},
	{"saq", 1<<EvSAQAlloc | 1<<EvSAQDealloc},
	{"cam", 1<<EvCAMHit | 1<<EvCAMMiss},
	{"flow", 1<<EvXoff | 1<<EvXon},
	{"tree", 1<<EvSAQAlloc | 1<<EvSAQDealloc | 1<<EvToken | 1<<EvNotify},
	{"policy", 1<<EvMark | 1<<EvHint},
}

// ParseEvents parses a comma-separated event spec ("saq,token" or
// group aliases like "packet", "tree", "all") into a Mask. The error
// for an unknown name lists every valid value.
func ParseEvents(spec string) (Mask, error) {
	var m Mask
next:
	for _, field := range strings.Split(spec, ",") {
		name := strings.ToLower(strings.TrimSpace(field))
		if name == "" {
			continue
		}
		for k := EventKind(0); k < numEventKinds; k++ {
			if name == kindNames[k] {
				m = m.With(k)
				continue next
			}
		}
		for _, g := range maskGroups {
			if name == g.name {
				m |= g.mask
				continue next
			}
		}
		return 0, fmt.Errorf("trace: unknown event kind %q (valid: %s)", name, ValidEventNames())
	}
	if m == 0 {
		return 0, fmt.Errorf("trace: empty event spec (valid: %s)", ValidEventNames())
	}
	return m, nil
}

// ValidEventNames returns every name ParseEvents accepts, for error
// messages and usage strings.
func ValidEventNames() string {
	names := make([]string, 0, int(numEventKinds)+len(maskGroups))
	names = append(names, kindNames[:]...)
	for _, g := range maskGroups {
		names = append(names, g.name)
	}
	return strings.Join(names, ", ")
}

// Dir distinguishes the port roles a Loc can name.
type Dir uint8

const (
	// DirIn is a switch input port; DirOut a switch output port.
	DirIn Dir = iota
	DirOut
	// DirInj is a NIC injection port; DirHost the host reception side.
	DirInj
	DirHost
	// DirNet marks network-wide events (watchdog stalls).
	DirNet
)

// Loc identifies the port (or unit) an event happened at. Node is the
// switch ID for DirIn/DirOut, the host ID for DirInj/DirHost, and -1
// for DirNet.
type Loc struct {
	Node int32
	Port int32
	Dir  Dir
}

// NetLoc is the network-wide location.
var NetLoc = Loc{Node: -1, Dir: DirNet}

func (l Loc) String() string {
	switch l.Dir {
	case DirIn:
		return fmt.Sprintf("sw%d.in%d", l.Node, l.Port)
	case DirOut:
		return fmt.Sprintf("sw%d.out%d", l.Node, l.Port)
	case DirInj:
		return fmt.Sprintf("nic%d.inj", l.Node)
	case DirHost:
		return fmt.Sprintf("host%d", l.Node)
	default:
		return "net"
	}
}

// Fault actions (EvFault.B).
const (
	FaultDrop int64 = iota + 1
	FaultDup
	FaultDelay
	FaultCorrupt
	FaultLinkDown
	FaultLinkUp
)

// Watchdog actions (EvWatchdog.A).
const (
	WatchStall int64 = iota + 1
	WatchSAQReclaim
	WatchXoffResend
	WatchXonOverride
	WatchCreditResync
	WatchCreditViolation
)

var faultActionNames = []string{"?", "drop", "dup", "delay", "corrupt", "link-down", "link-up"}
var watchActionNames = []string{"?", "stall", "saq-reclaim", "xoff-resend", "xon-override", "credit-resync", "credit-violation"}

func nameIn(names []string, i int64) string {
	if i >= 0 && int(i) < len(names) {
		return names[i]
	}
	return fmt.Sprintf("%s(%d)", names[0], i)
}

// Event is one ring-buffer slot. Events are fixed-size values; the only
// pointer-ish field (Tag) aliases strings that already exist elsewhere
// (path keys, fault-kind names), so recording never allocates.
type Event struct {
	// At is the simulation time; Exec the engine's dispatch count at
	// record time; Seq the recorder's own strictly increasing sequence.
	// (At, Exec, Seq) totally orders events deterministically.
	At   sim.Time
	Exec uint64
	Seq  uint64

	Kind EventKind
	Loc  Loc

	// Tag carries the RECN path key for SAQ/control events (raw turn
	// bytes — render with PathString) and the targeted message kind for
	// EvFault. Empty otherwise.
	Tag string

	// A, B, C are kind-specific arguments; see the EventKind docs.
	A, B, C int64
}

// PathString renders a raw path key (as stored in Event.Tag) in the
// dotted turn notation used by pkt.Path.String.
func PathString(key string) string {
	if key == "" {
		return "<root>"
	}
	var sb strings.Builder
	for i := 0; i < len(key); i++ {
		if i > 0 {
			sb.WriteByte('.')
		}
		fmt.Fprintf(&sb, "%d", key[i])
	}
	return sb.String()
}

// Detail renders the kind-specific arguments for the text exporter.
func (e Event) Detail() string {
	switch e.Kind {
	case EvSend, EvRecv:
		return fmt.Sprintf("pkt %d %d→%d %dB", e.A, e.C>>32, e.C&0xffffffff, e.B)
	case EvDrop:
		return fmt.Sprintf("msg →%d %dB (admittance full)", e.A, e.B)
	case EvSAQAlloc, EvSAQDealloc:
		return fmt.Sprintf("line %d uid %d path %s", e.A, e.B, PathString(e.Tag))
	case EvCAMHit, EvCAMMiss:
		return ""
	case EvNotify:
		kind := "external"
		if e.A != 0 {
			kind = "internal"
			if e.B == 0 {
				kind = "internal refused"
			}
		}
		return fmt.Sprintf("%s path %s", kind, PathString(e.Tag))
	case EvToken:
		var notes []string
		if e.A != 0 {
			notes = append(notes, "refused")
		}
		if e.B != 0 {
			notes = append(notes, "internal")
		}
		s := fmt.Sprintf("path %s", PathString(e.Tag))
		if len(notes) > 0 {
			s += " (" + strings.Join(notes, ", ") + ")"
		}
		return s
	case EvXoff, EvXon:
		return fmt.Sprintf("path %s", PathString(e.Tag))
	case EvCredit:
		return fmt.Sprintf("%dB queue %d", e.A, e.B)
	case EvFault:
		s := fmt.Sprintf("%s %s", nameIn(faultActionNames, e.B), e.Tag)
		if e.B == FaultDelay {
			s += fmt.Sprintf(" +%v", sim.Time(e.C))
		}
		return s
	case EvWatchdog:
		return fmt.Sprintf("%s ×%d", nameIn(watchActionNames, e.A), e.B)
	default:
		return ""
	}
}

// Config configures a Recorder. The zero value records every event
// kind into a 65536-slot ring with metrics sampling disabled.
type Config struct {
	// BufferEvents is the ring capacity; older events are overwritten
	// once it fills (flight-recorder semantics). Default 65536.
	BufferEvents int
	// Events selects the recorded kinds; zero means AllEvents.
	Events Mask
	// MetricsBin, when positive, enables the time-series metrics
	// registry: the fabric samples per-port occupancy, queue depth,
	// SAQ counts and per-SAQ occupancy once per bin.
	MetricsBin sim.Time
}

const defaultBufferEvents = 1 << 16

// Recorder is a bound flight recorder. Create one with New, pass it to
// the fabric (fabric.Config.Tracer), and export after the run.
// Recorders are single-use: they bind to exactly one engine.
type Recorder struct {
	cfg  Config
	mask Mask

	eng     *sim.Engine
	resolve func(Loc, string) string

	ring  []Event
	total uint64
	lost  uint64 // events the merge sources had already overwritten

	metrics *Metrics
}

// New builds a recorder from a config (see Config for defaults).
func New(cfg Config) *Recorder {
	if cfg.BufferEvents <= 0 {
		cfg.BufferEvents = defaultBufferEvents
	}
	if cfg.Events == 0 {
		cfg.Events = AllEvents
	}
	if cfg.MetricsBin < 0 {
		cfg.MetricsBin = 0
	}
	r := &Recorder{
		cfg:  cfg,
		mask: cfg.Events,
		ring: make([]Event, cfg.BufferEvents),
	}
	if cfg.MetricsBin > 0 {
		r.metrics = newMetrics(cfg.MetricsBin)
	}
	return r
}

// Bind attaches the recorder to the engine whose clock stamps every
// event, plus an optional resolver that maps (location, path key) to a
// congestion-root name for the tree timeline. Recorders are single-use;
// binding twice is an error (mirroring fault.Plan).
func (r *Recorder) Bind(eng *sim.Engine, resolve func(Loc, string) string) error {
	if r.eng != nil {
		return fmt.Errorf("trace: recorder already bound (recorders are single-use; create one per network)")
	}
	if eng == nil {
		return fmt.Errorf("trace: Bind with nil engine")
	}
	r.eng = eng
	r.resolve = resolve
	return nil
}

// Enabled reports whether kind k is being recorded.
func (r *Recorder) Enabled(k EventKind) bool { return r.mask.Has(k) }

// Config returns the recorder's effective configuration (defaults
// applied).
func (r *Recorder) Config() Config { return r.cfg }

// MetricsBin returns the metrics sampling period (0 = disabled).
func (r *Recorder) MetricsBin() sim.Time { return r.cfg.MetricsBin }

// Metrics returns the time-series registry (nil when disabled).
func (r *Recorder) Metrics() *Metrics { return r.metrics }

// Record appends one event to the ring. It is the single hot-path
// entry point: a mask test, an engine stamp and a slot store — no
// allocation. tag must alias an existing string (path key, kind name).
func (r *Recorder) Record(k EventKind, loc Loc, tag string, a, b, c int64) {
	if r.mask&(1<<k) == 0 {
		return
	}
	var at sim.Time
	var exec uint64
	if r.eng != nil {
		at, exec = r.eng.Stamp()
	}
	r.ring[r.total%uint64(len(r.ring))] = Event{
		At: at, Exec: exec, Seq: r.total + 1,
		Kind: k, Loc: loc, Tag: tag, A: a, B: b, C: c,
	}
	r.total++
}

// RecordPacket records a packet movement event.
func (r *Recorder) RecordPacket(k EventKind, loc Loc, id uint64, size, src, dst int) {
	r.Record(k, loc, "", int64(id), int64(size), int64(src)<<32|int64(dst))
}

// Total returns how many events were recorded over the recorder's
// lifetime, including ones the ring has since overwritten (and, for a
// merged recorder, ones its sources had already lost).
func (r *Recorder) Total() uint64 { return r.total + r.lost }

// Overwritten returns how many recorded events the ring lost.
func (r *Recorder) Overwritten() uint64 {
	if n := uint64(len(r.ring)); r.total > n {
		return r.total - n + r.lost
	}
	return r.lost
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	if r.total < uint64(len(r.ring)) {
		return int(r.total)
	}
	return len(r.ring)
}

// Events returns the retained events in recording order (which is also
// (At, Exec, Seq) order — the simulation is single-threaded).
func (r *Recorder) Events() []Event {
	n := uint64(len(r.ring))
	out := make([]Event, 0, r.Len())
	start := uint64(0)
	if r.total > n {
		start = r.total - n
	}
	for i := start; i < r.total; i++ {
		out = append(out, r.ring[i%n])
	}
	return out
}

// RootOf resolves the congestion-tree root an event belongs to, using
// the resolver installed at Bind. Without one (unit tests) it falls
// back to a location-qualified path string.
func (r *Recorder) RootOf(e Event) string {
	if r.resolve != nil {
		return r.resolve(e.Loc, e.Tag)
	}
	return e.Loc.String() + "/" + PathString(e.Tag)
}

// Merge combines the retained events of several recorders (typically
// one per simulation shard plus the coordinator) into a fresh recorder,
// ordered by (At, part index, Seq): events from the same part keep
// their recording order, and simultaneous events from different parts
// order by part index — deterministic for a fixed part list. The merged
// recorder carries the first part's engine, resolver and metrics
// registry, and its Total/Overwritten account for events the source
// rings had already lost.
func Merge(cfg Config, parts ...*Recorder) *Recorder {
	type tagged struct {
		ev   Event
		part int
	}
	var all []tagged
	var lost uint64
	for pi, p := range parts {
		for _, ev := range p.Events() {
			all = append(all, tagged{ev, pi})
		}
		lost += p.Overwritten()
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.At != all[j].ev.At {
			return all[i].ev.At < all[j].ev.At
		}
		if all[i].part != all[j].part {
			return all[i].part < all[j].part
		}
		return all[i].ev.Seq < all[j].ev.Seq
	})
	n := len(all)
	if n == 0 {
		n = 1
	}
	m := &Recorder{cfg: cfg, mask: cfg.Events, ring: make([]Event, n), lost: lost}
	if len(parts) > 0 {
		m.eng = parts[0].eng
		m.resolve = parts[0].resolve
		m.metrics = parts[0].metrics
	}
	for i := range all {
		m.total++
		all[i].ev.Seq = m.total
		m.ring[i] = all[i].ev
	}
	return m
}

// sortedNames returns map keys in deterministic order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
