package trace

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// TimeSeries is one fixed-bin metric series (per-port occupancy, queue
// depth, SAQ count, ...). Each bin keeps the maximum value observed in
// it, which is the right reduction for occupancy-style gauges: peaks
// are what congestion analysis cares about and what a sampled Chrome
// counter track should show. It implements stats.Series.
type TimeSeries struct {
	name string
	bin  sim.Time
	vals []float64
	set  []bool
}

var _ stats.Series = (*TimeSeries)(nil)

// Name returns the series name ("sw3.out5/occ", "nic7.inj/saqs", ...).
func (s *TimeSeries) Name() string { return s.name }

// Bin returns the series' bin width.
func (s *TimeSeries) Bin() sim.Time { return s.bin }

// Bins returns the number of bins the series spans.
func (s *TimeSeries) Bins() int { return len(s.vals) }

// At returns bin i's value (0 when the bin was never observed).
func (s *TimeSeries) At(i int) float64 {
	if i < 0 || i >= len(s.vals) {
		return 0
	}
	return s.vals[i]
}

// Max returns the largest observed value across all bins.
func (s *TimeSeries) Max() float64 {
	max := 0.0
	for i, v := range s.vals {
		if s.set[i] && v > max {
			max = v
		}
	}
	return max
}

func (s *TimeSeries) observe(t sim.Time, v float64) {
	idx := int(t / s.bin)
	for idx >= len(s.vals) {
		s.vals = append(s.vals, 0)
		s.set = append(s.set, false)
	}
	if !s.set[idx] || v > s.vals[idx] {
		s.vals[idx] = v
		s.set[idx] = true
	}
}

// Metrics is the time-series registry. Series are created on first
// observation; the fabric pre-builds the name strings once per port so
// the sampling path does not format strings.
type Metrics struct {
	bin     sim.Time
	series  map[string]*TimeSeries
	dropped uint64
}

func newMetrics(bin sim.Time) *Metrics {
	return &Metrics{bin: bin, series: make(map[string]*TimeSeries)}
}

// Bin returns the sampling period.
func (m *Metrics) Bin() sim.Time { return m.bin }

// Observe records value v for series name at time t. Negative times
// and non-finite values are counted and dropped rather than panicking —
// the registry must never take the simulation down.
func (m *Metrics) Observe(name string, t sim.Time, v float64) {
	if t < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		m.dropped++
		return
	}
	s := m.series[name]
	if s == nil {
		s = &TimeSeries{name: name, bin: m.bin}
		m.series[name] = s
	}
	s.observe(t, v)
}

// Dropped returns how many observations were rejected (negative time
// or non-finite value).
func (m *Metrics) Dropped() uint64 { return m.dropped }

// Series returns the series with the given name, or nil.
func (m *Metrics) Series(name string) *TimeSeries { return m.series[name] }

// Names returns all series names in sorted (deterministic) order.
func (m *Metrics) Names() []string { return sortedNames(m.series) }

// Each calls fn for every series in sorted name order.
func (m *Metrics) Each(fn func(*TimeSeries)) {
	for _, name := range m.Names() {
		fn(m.series[name])
	}
}

// String summarises the registry for logs.
func (m *Metrics) String() string {
	return fmt.Sprintf("trace.Metrics{bin=%v series=%d dropped=%d}", m.bin, len(m.series), m.dropped)
}
