package server

import (
	"errors"
	"sync"
)

// Typed admission errors, mempool-style: a submission is rejected with
// a reason the API maps to a structured JSON error, never silently
// dropped.
var (
	// ErrQueueFull rejects a submission when the bounded job queue is
	// at capacity (HTTP 429, code "queue_full").
	ErrQueueFull = errors.New("server: job queue full")
	// ErrTooManyRuns rejects a submission whose estimated simulation
	// count exceeds the per-request limit (HTTP 413, code
	// "too_many_runs").
	ErrTooManyRuns = errors.New("server: request exceeds per-request run limit")
	// ErrDraining rejects a submission while the daemon is shutting
	// down (HTTP 503, code "shutting_down").
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// jobQueue is the bounded FIFO job queue. It is a mutex+slice rather
// than a channel so the daemon can report exact queue positions, remove
// a canceled job mid-queue, and — on shutdown — snapshot the jobs that
// never started for persistence instead of racing workers for them.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*job
	capn   int
	closed bool
}

func newJobQueue(capn int) *jobQueue {
	q := &jobQueue{capn: capn}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a job, rejecting with ErrQueueFull at capacity and
// ErrDraining after close.
func (q *jobQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= q.capn {
		return ErrQueueFull
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed; after
// close it returns false immediately even if jobs remain (close already
// snapshotted them for persistence).
func (q *jobQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.items) == 0 {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	return j, true
}

// remove deletes a queued job by ID (cancellation mid-queue); false if
// the job is not queued (already started, finished, or unknown).
func (q *jobQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.id == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// position returns a queued job's 1-based FIFO position, 0 if absent.
func (q *jobQueue) position(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.id == id {
			return i + 1
		}
	}
	return 0
}

// depth reports how many jobs are queued (not yet running).
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close marks the queue closed, wakes every blocked pop, and returns
// the jobs that never started, in FIFO order, for persistence.
func (q *jobQueue) close() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	out := q.items
	q.items = nil
	q.cond.Broadcast()
	return out
}
