package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// stubRunner is a controllable stand-in for experiments.Reproduce: it
// records execution order and can hold jobs until released, so the
// queue's admission and FIFO behavior is testable without simulating.
type stubRunner struct {
	mu    sync.Mutex
	order []string
	hold  map[string]chan struct{} // figure ID -> release gate
}

func newStubRunner() *stubRunner {
	return &stubRunner{hold: make(map[string]chan struct{})}
}

// gate makes runs of a figure block until release is called.
func (s *stubRunner) gate(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hold[id] = make(chan struct{})
}

func (s *stubRunner) release(id string) {
	s.mu.Lock()
	ch := s.hold[id]
	delete(s.hold, id)
	s.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

func (s *stubRunner) run(id string, o experiments.Options) ([]*experiments.Table, error) {
	s.mu.Lock()
	s.order = append(s.order, id)
	ch := s.hold[id]
	s.mu.Unlock()
	if ch != nil {
		select {
		case <-ch:
		case <-o.Context.Done():
			return nil, fmt.Errorf("stub %s: %w", id, experiments.ErrCanceled)
		}
	}
	t := &experiments.Table{Title: "stub " + id, Header: []string{"figure"}}
	t.AddRow(id)
	return []*experiments.Table{t}, nil
}

func (s *stubRunner) ran() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := testContext(5 * time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func testContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func submit(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func errorCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

func getStatus(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitState polls until the job reaches the state (or fails the test).
// The deadline is generous: the golden test simulates for real, and the
// race detector slows that by an order of magnitude.
func waitState(t *testing.T, ts *httptest.Server, id, state string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st["state"] == state {
			return st
		}
		if terminal(jobState(st["state"].(string))) && st["state"] != state {
			t.Fatalf("job %s reached %v, want %s (error: %v)", id, st["state"], state, st["error"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, state)
	return nil
}

func TestAdmissionQueueFullRejection(t *testing.T) {
	stub := newStubRunner()
	stub.gate("2a")
	_, ts := newTestServer(t, Config{QueueCap: 1, Workers: 1, MaxRunsPerJob: 100, reproduce: stub.run})
	defer stub.release("2a")

	// First job occupies the worker...
	code, body := submit(t, ts, `{"figures":["2a"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: %d %v", code, body)
	}
	waitState(t, ts, body["id"].(string), "running")
	// ...second fills the one queue slot...
	if code, body = submit(t, ts, `{"figures":["2b"]}`); code != http.StatusAccepted {
		t.Fatalf("submit 2: %d %v", code, body)
	}
	// ...third must be rejected with the typed structured error.
	code, body = submit(t, ts, `{"figures":["2c"]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit 3: %d %v, want 429", code, body)
	}
	if got := errorCode(t, body); got != "queue_full" {
		t.Errorf("error code %q, want queue_full", got)
	}
}

func TestAdmissionOversizedRequestRejection(t *testing.T) {
	stub := newStubRunner()
	_, ts := newTestServer(t, Config{MaxRunsPerJob: 3, reproduce: stub.run})
	code, body := submit(t, ts, `{"figures":["2a"]}`) // estimated 5 runs
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("got %d %v, want 413", code, body)
	}
	if got := errorCode(t, body); got != "too_many_runs" {
		t.Errorf("error code %q, want too_many_runs", got)
	}
	if len(stub.ran()) != 0 {
		t.Error("rejected job still executed")
	}
}

func TestAdmissionBadRequests(t *testing.T) {
	stub := newStubRunner()
	_, ts := newTestServer(t, Config{reproduce: stub.run})
	for _, tc := range []struct{ name, body string }{
		{"empty figures", `{"figures":[]}`},
		{"unknown figure", `{"figures":["9z"]}`},
		{"unknown field", `{"figs":["2a"]}`},
		{"shards with latency figure", `{"figures":["lat1"],"shards":2}`},
		{"bad policy", `{"figures":["2a"],"policies":["QQQ"]}`},
		{"negative scale", `{"figures":["2a"],"scale":-1}`},
		{"bad throttle key", `{"figures":["shootout"],"throttle_spec":"bogus=1"}`},
		{"throttle rate out of range", `{"figures":["shootout"],"throttle_spec":"min=2000"}`},
		{"arn inverted hysteresis", `{"figures":["shootout"],"arn_spec":"on=1024,off=4096"}`},
	} {
		code, body := submit(t, ts, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: got %d %v, want 400", tc.name, code, body)
			continue
		}
		if got := errorCode(t, body); got != "bad_request" {
			t.Errorf("%s: error code %q, want bad_request", tc.name, got)
		}
	}
	if len(stub.ran()) != 0 {
		t.Error("a rejected job executed")
	}
}

// Queued jobs must start in submission (FIFO) order.
func TestQueueFIFODrainOrder(t *testing.T) {
	stub := newStubRunner()
	stub.gate("table1")
	_, ts := newTestServer(t, Config{Workers: 1, reproduce: stub.run})

	code, body := submit(t, ts, `{"figures":["table1"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("gate job: %d %v", code, body)
	}
	gateID := body["id"].(string)
	waitState(t, ts, gateID, "running")
	var ids []string
	for _, fig := range []string{"2a", "2b", "2c"} {
		code, body := submit(t, ts, fmt.Sprintf(`{"figures":[%q]}`, fig))
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %v", fig, code, body)
		}
		ids = append(ids, body["id"].(string))
	}
	// Queue positions are 1-based FIFO while the gate job runs.
	for i, id := range ids {
		if pos := getStatus(t, ts, id)["queue_position"].(float64); int(pos) != i+1 {
			t.Errorf("job %s queue_position = %v, want %d", id, pos, i+1)
		}
	}
	stub.release("table1")
	for _, id := range ids {
		waitState(t, ts, id, "done")
	}
	want := []string{"table1", "2a", "2b", "2c"}
	if got := stub.ran(); !equalStrings(got, want) {
		t.Errorf("execution order %v, want %v", got, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DELETE on a queued job removes it mid-queue: it never executes, and
// jobs behind it keep their order.
func TestCancelMidQueue(t *testing.T) {
	stub := newStubRunner()
	stub.gate("table1")
	_, ts := newTestServer(t, Config{Workers: 1, reproduce: stub.run})

	_, body := submit(t, ts, `{"figures":["table1"]}`)
	gateID := body["id"].(string)
	waitState(t, ts, gateID, "running")
	_, b1 := submit(t, ts, `{"figures":["2a"]}`)
	_, b2 := submit(t, ts, `{"figures":["2b"]}`)
	victim, survivor := b1["id"].(string), b2["id"].(string)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+victim, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	if st := getStatus(t, ts, victim); st["state"] != "canceled" {
		t.Fatalf("victim state %v, want canceled", st["state"])
	}
	stub.release("table1")
	waitState(t, ts, survivor, "done")
	for _, ran := range stub.ran() {
		if ran == "2a" {
			t.Error("canceled job still executed")
		}
	}
}

// DELETE on a running job cancels its sweep context.
func TestCancelRunningJob(t *testing.T) {
	stub := newStubRunner()
	stub.gate("2a")
	_, ts := newTestServer(t, Config{reproduce: stub.run})
	defer stub.release("2a")

	_, body := submit(t, ts, `{"figures":["2a"]}`)
	id := body["id"].(string)
	waitState(t, ts, id, "running")
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, id, "canceled")
}

// The SSE stream replays the full lifecycle and terminates at the
// job's terminal event.
func TestEventStream(t *testing.T) {
	stub := newStubRunner()
	_, ts := newTestServer(t, Config{reproduce: stub.run})
	_, body := submit(t, ts, `{"figures":["2a","2b"]}`)
	id := body["id"].(string)
	waitState(t, ts, id, "done")

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body) // stream closes at the terminal event
	if err != nil {
		t.Fatal(err)
	}
	stream := string(raw)
	for _, want := range []string{"event: queued", "event: started", "event: figure_done", "event: done"} {
		if !strings.Contains(stream, want) {
			t.Errorf("stream missing %q:\n%s", want, stream)
		}
	}
	// Replaying from an offset skips the earlier events.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", "2")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(raw2), "event: queued") {
		t.Error("Last-Event-ID replayed from the start")
	}
	if !strings.Contains(string(raw2), "event: done") {
		t.Error("resumed stream missing the terminal event")
	}
}

func TestResultsNotReadyAndMetrics(t *testing.T) {
	stub := newStubRunner()
	stub.gate("2a")
	_, ts := newTestServer(t, Config{reproduce: stub.run})
	_, body := submit(t, ts, `{"figures":["2a"]}`)
	id := body["id"].(string)
	waitState(t, ts, id, "running")

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]any
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || errorCode(t, e) != "not_ready" {
		t.Errorf("results while running: %d %v, want 409 not_ready", resp.StatusCode, e)
	}

	stub.release("2a")
	waitState(t, ts, id, "done")
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, want := range []string{
		"recnserved_queue_depth 0",
		"recnserved_jobs_admitted_total 1",
		"recnserved_jobs_done_total 1",
		"recnserved_rejected_queue_full_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// The results endpoint's default text format is the exact byte stream
// recnsweep prints for the same tables.
func TestResultsTextMatchesCLIFormat(t *testing.T) {
	stub := newStubRunner()
	_, ts := newTestServer(t, Config{reproduce: stub.run})
	_, body := submit(t, ts, `{"figures":["2a","2b"]}`)
	id := body["id"].(string)
	waitState(t, ts, id, "done")

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	tables, _ := stub.run("2a", experiments.Options{})
	t2, _ := stub.run("2b", experiments.Options{})
	tables = append(tables, t2...)
	var want bytes.Buffer
	experiments.FprintTables(&want, tables)
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("results bytes:\n%q\nwant recnsweep's stream:\n%q", got, want.Bytes())
	}
}

// Graceful shutdown persists still-queued jobs; a restart re-enqueues
// and runs them.
func TestShutdownPersistsQueueAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "queue.json")
	stub := newStubRunner()
	stub.gate("table1")
	s, err := New(Config{Workers: 1, StateFile: state, DrainTimeout: 200 * time.Millisecond, reproduce: stub.run})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	_, body := submit(t, ts, `{"figures":["table1"]}`)
	waitState(t, ts, body["id"].(string), "running")
	var queued []string
	for _, fig := range []string{"2a", "2b"} {
		_, b := submit(t, ts, fmt.Sprintf(`{"figures":[%q]}`, fig))
		queued = append(queued, b["id"].(string))
	}
	ts.Close()
	// The gate job never finishes: the drain times out, cancels it, and
	// the queued jobs are persisted.
	ctx, cancel := testContext(5 * time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("no queue state persisted: %v", err)
	}

	stub2 := newStubRunner()
	s2, ts2 := newTestServer(t, Config{Workers: 1, StateFile: state, reproduce: stub2.run})
	_ = s2
	for _, id := range queued {
		waitState(t, ts2, id, "done") // same IDs survive the restart
	}
	if want := []string{"2a", "2b"}; !equalStrings(stub2.ran(), want) {
		t.Errorf("restart ran %v, want %v", stub2.ran(), want)
	}
	if _, err := os.Stat(state); !os.IsNotExist(err) {
		t.Errorf("state file not consumed after restore: %v", err)
	}
	// New submissions after restore must not collide with restored IDs.
	_, b := submit(t, ts2, `{"figures":["table1"]}`)
	for _, id := range queued {
		if b["id"].(string) == id {
			t.Errorf("new job reused restored ID %s", id)
		}
	}
}

// Submissions during a drain are rejected with the typed error.
func TestSubmitDuringShutdownRejected(t *testing.T) {
	stub := newStubRunner()
	s, err := New(Config{reproduce: stub.run})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := testContext(5 * time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, body := submit(t, ts, `{"figures":["2a"]}`)
	if code != http.StatusServiceUnavailable || errorCode(t, body) != "shutting_down" {
		t.Errorf("got %d %v, want 503 shutting_down", code, body)
	}
}

func TestRunLookupErrors(t *testing.T) {
	stub := newStubRunner()
	cacheDir := t.TempDir()
	_, ts := newTestServer(t, Config{CacheDir: cacheDir, reproduce: stub.run})
	resp, _ := http.Get(ts.URL + "/v1/runs/not-hex")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad key: %d, want 400", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/v1/runs/00000000deadbeef")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing key: %d, want 404", resp.StatusCode)
	}

	_, ts2 := newTestServer(t, Config{reproduce: stub.run}) // no cache
	resp, _ = http.Get(ts2.URL + "/v1/runs/00000000deadbeef")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("no cache: %d, want 503", resp.StatusCode)
	}
}

func TestFiguresEndpoint(t *testing.T) {
	stub := newStubRunner()
	_, ts := newTestServer(t, Config{reproduce: stub.run})
	resp, err := http.Get(ts.URL + "/v1/figures")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Figures []struct {
			ID            string `json:"id"`
			EstimatedRuns int    `json:"estimated_runs"`
		} `json:"figures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != len(experiments.FigureIDs()) {
		t.Errorf("listed %d figures, want %d", len(out.Figures), len(experiments.FigureIDs()))
	}
}
