package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics are the daemon's operational counters, exported in Prometheus
// text format by GET /metrics. Counters are atomics (hot paths bump
// them without the server lock); gauges are sampled at scrape time.
type metrics struct {
	admitted            atomic.Int64
	rejectedQueueFull   atomic.Int64
	rejectedTooManyRuns atomic.Int64
	rejectedDraining    atomic.Int64
	rejectedBadRequest  atomic.Int64
	jobsDone            atomic.Int64
	jobsFailed          atomic.Int64
	jobsCanceled        atomic.Int64
	runsDone            atomic.Int64
	runsCached          atomic.Int64
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running := 0
	for _, j := range s.jobs {
		if j.state == stateRunning {
			running++
		}
	}
	s.mu.Unlock()

	up := time.Since(s.started).Seconds()
	runs := s.met.runsDone.Load()
	cached := s.met.runsCached.Load()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(name string, help string, typ string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	p("recnserved_uptime_seconds", "Seconds since the daemon started.", "gauge", fmt.Sprintf("%.3f", up))
	p("recnserved_queue_depth", "Jobs admitted but not yet started.", "gauge", s.queue.depth())
	p("recnserved_queue_capacity", "Bounded job-queue capacity.", "gauge", s.cfg.QueueCap)
	p("recnserved_jobs_running", "Jobs currently executing.", "gauge", running)
	p("recnserved_jobs_admitted_total", "Submissions accepted into the queue.", "counter", s.met.admitted.Load())
	p("recnserved_rejected_queue_full_total", "Submissions rejected: queue at capacity.", "counter", s.met.rejectedQueueFull.Load())
	p("recnserved_rejected_too_many_runs_total", "Submissions rejected: over the per-request run limit.", "counter", s.met.rejectedTooManyRuns.Load())
	p("recnserved_rejected_draining_total", "Submissions rejected: daemon shutting down.", "counter", s.met.rejectedDraining.Load())
	p("recnserved_rejected_bad_request_total", "Submissions rejected: malformed spec.", "counter", s.met.rejectedBadRequest.Load())
	p("recnserved_jobs_done_total", "Jobs finished successfully.", "counter", s.met.jobsDone.Load())
	p("recnserved_jobs_failed_total", "Jobs finished with an error.", "counter", s.met.jobsFailed.Load())
	p("recnserved_jobs_canceled_total", "Jobs canceled before completion.", "counter", s.met.jobsCanceled.Load())
	p("recnserved_runs_done_total", "Simulation runs completed (cache hits included).", "counter", runs)
	p("recnserved_runs_cached_total", "Runs served from the result cache without simulating.", "counter", cached)
	p("recnserved_runs_per_second", "Run completion rate since start.", "gauge", fmt.Sprintf("%.3f", float64(runs)/max(up, 1e-9)))
}
