package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// handleEvents is the live lifecycle stream: Server-Sent Events
// replaying a job's event log from the start (or from Last-Event-ID /
// ?after=N on reconnect) and then tailing new events — queued, started,
// per-run and per-figure completions — until the job reaches a terminal
// state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no sweep %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.Atoi(v)
	} else if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.Atoi(v)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// The tail loop sleeps on the server-wide cond (broadcast on every
	// event append); a client disconnect must wake it too, so hook the
	// request context into the same broadcast.
	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.cond.Broadcast()
	})
	defer stop()

	for {
		s.mu.Lock()
		for ctx.Err() == nil && len(j.events) <= after && !terminal(j.state) {
			s.cond.Wait()
		}
		batch := append([]event(nil), j.events[min(after, len(j.events)):]...)
		done := terminal(j.state)
		s.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		for _, e := range batch {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			// id: lets a reconnecting client resume via Last-Event-ID.
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
		}
		after += len(batch)
		fl.Flush()
		if done {
			return
		}
	}
}
