package server

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"repro/internal/experiments"
)

// The acceptance contract: results fetched through the API are
// byte-identical to what `recnsweep -sweep 4b -scale 0.1` prints, and a
// repeat submission of the same spec is served from the run cache
// without re-simulating.
func TestAPISweepByteIdenticalToCLIAndCacheHits(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	_, ts := newTestServer(t, Config{CacheDir: t.TempDir()})

	fetch := func() ([]byte, map[string]any) {
		t.Helper()
		code, body := submit(t, ts, `{"figures":["4b"],"scale":0.1}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %v", code, body)
		}
		id := body["id"].(string)
		st := waitState(t, ts, id, "done")
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw, st
	}

	apiBytes, first := fetch()
	if first["runs_cached"].(float64) != 0 {
		t.Errorf("first submission reported %v cached runs, want 0", first["runs_cached"])
	}

	// The same figure through the library path recnsweep uses.
	tables, err := experiments.Reproduce("4b", experiments.Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	experiments.FprintTables(&cli, tables)
	if !bytes.Equal(apiBytes, cli.Bytes()) {
		t.Errorf("API results diverge from the CLI byte stream:\nAPI:\n%s\nCLI:\n%s", apiBytes, cli.Bytes())
	}

	// Resubmitting the identical spec must hit the cache for every run
	// and still serve identical bytes.
	again, second := fetch()
	if done, cached := second["runs_done"].(float64), second["runs_cached"].(float64); cached != done || done == 0 {
		t.Errorf("repeat submission: %v/%v runs cached, want all", cached, done)
	}
	if !bytes.Equal(again, apiBytes) {
		t.Error("repeat submission served different bytes")
	}
}
