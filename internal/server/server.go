// Package server implements recnserved, the sweep-as-a-service daemon:
// an HTTP/JSON API over a bounded, admission-controlled job queue that
// drains into the parallel sweep engine (internal/experiments) with the
// content-addressed run cache as the backing store, so repeat
// submissions are cache hits. Jobs stream their lifecycle and per-run
// completions over SSE, traced runs stream Perfetto JSON, and /metrics
// exposes queue depth, admission rejections, cache hit/miss and run
// throughput. SIGTERM drains in-flight jobs and persists still-queued
// ones; a restart re-enqueues them.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/trace"
)

// Config configures the daemon.
type Config struct {
	// Addr is the HTTP listen address (Run/ListenAndServe); tests
	// drive Handler() directly and leave it empty.
	Addr string
	// CacheDir, if non-empty, backs every job with the content-
	// addressed run cache (one shared handle, so concurrent duplicate
	// specs single-flight) and enables GET /v1/runs/{key}.
	CacheDir string
	// QueueCap bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with ErrQueueFull. Default 64.
	QueueCap int
	// Workers is how many jobs run concurrently. Jobs START in strict
	// FIFO order regardless; with more than one worker they may finish
	// out of order. Default 1.
	Workers int
	// MaxRunsPerJob rejects submissions whose estimated simulation
	// count exceeds it (ErrTooManyRuns). Default 64.
	MaxRunsPerJob int
	// Parallelism is each job's sweep worker-pool size
	// (experiments.Options.Parallelism); 0 = GOMAXPROCS.
	Parallelism int
	// StateFile persists still-queued jobs across restarts; defaults
	// to CacheDir/queue.json when CacheDir is set, else persistence is
	// off.
	StateFile string
	// DrainTimeout bounds how long Shutdown waits for in-flight jobs
	// before canceling them. Default 10 minutes.
	DrainTimeout time.Duration
	// Logf, if set, receives operational log lines.
	Logf func(format string, args ...any)

	// reproduce is the figure runner (default experiments.Reproduce);
	// tests substitute it to drive the queue deterministically without
	// simulating.
	reproduce func(id string, o experiments.Options) ([]*experiments.Table, error)
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxRunsPerJob <= 0 {
		c.MaxRunsPerJob = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Minute
	}
	if c.StateFile == "" && c.CacheDir != "" {
		c.StateFile = filepath.Join(c.CacheDir, "queue.json")
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.reproduce == nil {
		c.reproduce = experiments.Reproduce
	}
	return c
}

// SweepRequest is the POST /v1/sweeps submission body: which
// experiments to reproduce and under which options (mirroring
// recnsweep's flags, so the same spec runs identically through either
// entry point).
type SweepRequest struct {
	// Figures lists experiment IDs (see GET /v1/figures or
	// `recnsweep -list`): "2a", "3b", "a1", "lat1", ...
	Figures []string `json:"figures"`
	// Scale compresses simulated time; 1.0 = paper durations.
	Scale float64 `json:"scale,omitempty"`
	// PacketSize in bytes (default 64).
	PacketSize int `json:"packet_size,omitempty"`
	// MaxRows caps printed table rows (default 40).
	MaxRows int `json:"max_rows,omitempty"`
	// Policies optionally overrides the mechanism list ("RECN", "1Q", ...).
	Policies []string `json:"policies,omitempty"`
	// FaultSpec injects faults into every run (fault.ParsePlan syntax).
	FaultSpec string `json:"fault_spec,omitempty"`
	// ThrottleSpec / ARNSpec override the throttle and arn policy
	// tunables (throttle.ParseSpec / fabric.ParseARNSpec syntax).
	ThrottleSpec string `json:"throttle_spec,omitempty"`
	ARNSpec      string `json:"arn_spec,omitempty"`
	// Topo selects the network topology where the figure allows it
	// ("min", "fattree", "mesh"; default per figure).
	Topo string `json:"topo,omitempty"`
	// Shards runs each simulation on the windowed multi-core runtime.
	Shards int `json:"shards,omitempty"`
	// Check enables the runtime invariant checker on every run.
	Check bool `json:"check,omitempty"`
	// NoCache bypasses the run cache for this job.
	NoCache bool `json:"no_cache,omitempty"`
	// Trace attaches a flight recorder to every run; the recorders are
	// then streamable as Perfetto JSON via /v1/sweeps/{id}/trace/{name}.
	Trace bool `json:"trace,omitempty"`
}

type jobState string

const (
	stateQueued   jobState = "queued"
	stateRunning  jobState = "running"
	stateDone     jobState = "done"
	stateFailed   jobState = "failed"
	stateCanceled jobState = "canceled"
)

func terminal(s jobState) bool {
	return s == stateDone || s == stateFailed || s == stateCanceled
}

// event is one entry of a job's lifecycle log, replayed and tailed by
// the SSE endpoint.
type event struct {
	Seq  int            `json:"seq"`
	Time time.Time      `json:"time"`
	Type string         `json:"type"`
	Data map[string]any `json:"data,omitempty"`
}

type namedTrace struct {
	name string
	rec  *trace.Recorder
}

// job is one submitted sweep. All mutable fields are guarded by the
// server mutex.
type job struct {
	id   string
	spec SweepRequest
	est  int // estimated simulation count (admission)

	state    jobState
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time

	events     []event
	cancel     context.CancelFunc // non-nil while running
	cancelAsk  bool               // cancellation requested
	tables     []*experiments.Table
	traces     []namedTrace
	runsDone   int
	runsCached int
}

// Server is a running daemon instance.
type Server struct {
	cfg   Config
	cache *experiments.RunCache
	queue *jobQueue
	mux   *http.ServeMux

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on every job event append
	jobs   map[string]*job
	order  []string // submission order, for listing
	nextID uint64

	stopping atomic.Bool
	workers  sync.WaitGroup
	met      metrics
	started  time.Time
}

// New builds a daemon: opens the shared run cache, re-enqueues any jobs
// persisted by a previous shutdown, starts the worker pool, and wires
// the HTTP mux.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   newJobQueue(cfg.QueueCap),
		jobs:    make(map[string]*job),
		started: time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.CacheDir != "" {
		cache, err := experiments.OpenRunCache(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.cache = cache
	}
	s.routes()
	if err := s.restoreQueue(); err != nil {
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler (tests mount it on
// httptest.NewServer; Run serves it on Config.Addr).
func (s *Server) Handler() http.Handler { return s.mux }

// newJobLocked registers a job in state queued. Caller holds s.mu.
func (s *Server) newJobLocked(spec SweepRequest, est int) *job {
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("s%06d", s.nextID),
		spec:    spec,
		est:     est,
		state:   stateQueued,
		created: time.Now(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.appendEventLocked(j, "queued", map[string]any{"estimated_runs": est})
	return j
}

// appendEventLocked appends a lifecycle event and wakes SSE tails.
// Caller holds s.mu.
func (s *Server) appendEventLocked(j *job, typ string, data map[string]any) {
	j.events = append(j.events, event{
		Seq:  len(j.events) + 1,
		Time: time.Now(),
		Type: typ,
		Data: data,
	})
	s.cond.Broadcast()
}

func (s *Server) event(j *job, typ string, data map[string]any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendEventLocked(j, typ, data)
}

// worker drains the queue; each job runs under its own cancellable
// context. Jobs start in strict FIFO order.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.mu.Lock()
	if j.cancelAsk {
		// Canceled between pop and start (remove raced the worker).
		s.finishLocked(j, stateCanceled, "")
		s.mu.Unlock()
		return
	}
	j.state = stateRunning
	j.started = time.Now()
	j.cancel = cancel
	spec := j.spec
	s.appendEventLocked(j, "started", nil)
	s.mu.Unlock()

	s.cfg.Logf("job %s started: figures=%v", j.id, spec.Figures)
	tables, traces, err := s.execute(ctx, j, spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.tables, j.traces = tables, traces
		s.finishLocked(j, stateDone, "")
	case j.cancelAsk || errors.Is(err, experiments.ErrCanceled):
		j.traces = traces
		s.finishLocked(j, stateCanceled, err.Error())
	default:
		j.traces = traces
		s.finishLocked(j, stateFailed, err.Error())
	}
}

// finishLocked moves a job to a terminal state and emits the terminal
// event. Caller holds s.mu.
func (s *Server) finishLocked(j *job, state jobState, errMsg string) {
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	data := map[string]any{"runs_done": j.runsDone, "runs_cached": j.runsCached}
	switch state {
	case stateDone:
		data["tables"] = len(j.tables)
		s.met.jobsDone.Add(1)
	case stateFailed:
		data["error"] = errMsg
		s.met.jobsFailed.Add(1)
	case stateCanceled:
		s.met.jobsCanceled.Add(1)
	}
	s.appendEventLocked(j, string(state), data)
	s.cfg.Logf("job %s %s", j.id, state)
}

// execute reproduces every figure of the spec through the sweep engine,
// streaming per-run and per-figure completion events.
func (s *Server) execute(ctx context.Context, j *job, spec SweepRequest) ([]*experiments.Table, []namedTrace, error) {
	o := experiments.Options{
		Scale:        spec.Scale,
		PacketSize:   spec.PacketSize,
		MaxRows:      spec.MaxRows,
		FaultSpec:    spec.FaultSpec,
		ThrottleSpec: spec.ThrottleSpec,
		ARNSpec:      spec.ARNSpec,
		Topo:         spec.Topo,
		Shards:       spec.Shards,
		Check:        spec.Check,
		Parallelism:  s.cfg.Parallelism,
		Context:      ctx,
	}
	if !spec.NoCache {
		o.Cache = s.cache
	}
	for _, name := range spec.Policies { // validated at admission
		p, err := fabric.ParsePolicy(name)
		if err != nil {
			return nil, nil, err
		}
		o.Policies = append(o.Policies, p)
	}
	o.OnRunDone = func(i int, r experiments.Run, res *experiments.Result, cached bool) {
		s.met.runsDone.Add(1)
		if cached {
			s.met.runsCached.Add(1)
		}
		s.mu.Lock()
		j.runsDone++
		if cached {
			j.runsCached++
		}
		s.appendEventLocked(j, "run_done", map[string]any{
			"index": i, "policy": r.Policy.String(), "hosts": r.Hosts, "cached": cached,
		})
		s.mu.Unlock()
	}
	var all []*experiments.Table
	var traces []namedTrace
	for _, id := range spec.Figures {
		fo := o
		if spec.Trace {
			tc := trace.Config{} // recorder defaults: 65536-event ring, default mask
			fo.Trace = &tc
			fid := id
			fo.OnTrace = func(label string, rec *trace.Recorder) {
				traces = append(traces, namedTrace{name: fid + "/" + label, rec: rec})
			}
		}
		tables, err := s.cfg.reproduce(id, fo)
		if err != nil {
			return nil, traces, fmt.Errorf("%s: %w", id, err)
		}
		all = append(all, tables...)
		s.event(j, "figure_done", map[string]any{"figure": id, "tables": len(tables)})
	}
	return all, traces, nil
}

// estimateRuns sizes a submission for admission control: the summed
// per-figure simulation counts under default options.
func estimateRuns(spec SweepRequest) (int, error) {
	total := 0
	for _, id := range spec.Figures {
		n, ok := experiments.EstimatedRuns(id)
		if !ok {
			return 0, fmt.Errorf("unknown figure %q", id)
		}
		if len(spec.Policies) > 0 && n > 1 {
			// A policy override replaces the default mechanism list on
			// the multi-policy figures.
			n = len(spec.Policies)
		}
		total += n
	}
	return total, nil
}

// validate rejects a malformed submission before admission control.
func validate(spec SweepRequest) error {
	if len(spec.Figures) == 0 {
		return fmt.Errorf("figures: empty (want experiment IDs like %q)", "2a")
	}
	for _, id := range spec.Figures {
		if !experiments.KnownFigure(id) {
			return fmt.Errorf("figures: unknown %q (have %s)", id, strings.Join(experiments.FigureIDs(), ", "))
		}
		if spec.Shards > 0 && strings.HasPrefix(strings.ToLower(id), "lat") {
			return fmt.Errorf("figures: %s needs the serial per-packet Observe path and cannot run with shards=%d", id, spec.Shards)
		}
	}
	for _, name := range spec.Policies {
		if _, err := fabric.ParsePolicy(name); err != nil {
			return fmt.Errorf("policies: %w", err)
		}
	}
	if _, err := experiments.ValidatePolicyOptions(nil, spec.ThrottleSpec, spec.ARNSpec); err != nil {
		return err
	}
	if !experiments.ValidTopology(spec.Topo) {
		return fmt.Errorf("topo: unknown %q (valid: %s)", spec.Topo, experiments.TopologyNames())
	}
	if spec.Scale < 0 {
		return fmt.Errorf("scale: negative (%g)", spec.Scale)
	}
	if spec.Shards < 0 {
		return fmt.Errorf("shards: negative (%d)", spec.Shards)
	}
	return nil
}

// persistedState is the queue-state file a graceful shutdown writes:
// the jobs that were admitted but never started, in FIFO order.
type persistedState struct {
	Version int            `json:"version"`
	Jobs    []persistedJob `json:"jobs"`
}

type persistedJob struct {
	ID   string       `json:"id"`
	Spec SweepRequest `json:"spec"`
}

// persistQueue writes the still-queued jobs to the state file
// (atomically); with no state file configured it is a no-op.
func (s *Server) persistQueue(pending []*job) error {
	if s.cfg.StateFile == "" {
		if len(pending) > 0 {
			s.cfg.Logf("dropping %d queued job(s): no state file configured", len(pending))
		}
		return nil
	}
	st := persistedState{Version: 1, Jobs: []persistedJob{}}
	for _, j := range pending {
		st.Jobs = append(st.Jobs, persistedJob{ID: j.id, Spec: j.spec})
	}
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.cfg.StateFile + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("server: persist queue: %w", err)
	}
	if err := os.Rename(tmp, s.cfg.StateFile); err != nil {
		return fmt.Errorf("server: persist queue: %w", err)
	}
	s.cfg.Logf("persisted %d queued job(s) to %s", len(st.Jobs), s.cfg.StateFile)
	return nil
}

// restoreQueue re-enqueues jobs persisted by a previous shutdown and
// consumes the state file. Persisted jobs keep their IDs; the ID
// counter resumes past the highest restored one.
func (s *Server) restoreQueue() error {
	if s.cfg.StateFile == "" {
		return nil
	}
	raw, err := os.ReadFile(s.cfg.StateFile)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("server: queue state: %w", err)
	}
	var st persistedState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("server: queue state %s: %w", s.cfg.StateFile, err)
	}
	if st.Version != 1 {
		return fmt.Errorf("server: queue state %s: unknown version %d", s.cfg.StateFile, st.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pj := range st.Jobs {
		if err := validate(pj.Spec); err != nil {
			s.cfg.Logf("dropping persisted job %s: %v", pj.ID, err)
			continue
		}
		est, _ := estimateRuns(pj.Spec)
		j := &job{
			id:      pj.ID,
			spec:    pj.Spec,
			est:     est,
			state:   stateQueued,
			created: time.Now(),
		}
		if n, ok := strings.CutPrefix(pj.ID, "s"); ok {
			if v, err := strconv.ParseUint(n, 10, 64); err == nil && v > s.nextID {
				s.nextID = v
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.appendEventLocked(j, "requeued", nil)
		if err := s.queue.push(j); err != nil {
			s.finishLocked(j, stateFailed, fmt.Sprintf("re-enqueue after restart: %v", err))
		}
	}
	if err := os.Remove(s.cfg.StateFile); err != nil {
		return fmt.Errorf("server: queue state: %w", err)
	}
	s.cfg.Logf("restored %d job(s) from %s", len(st.Jobs), s.cfg.StateFile)
	return nil
}

// Shutdown gracefully stops the daemon: new submissions are rejected
// with ErrDraining, jobs that never started are persisted to the state
// file, and in-flight jobs drain to completion (bounded by ctx and
// Config.DrainTimeout, after which they are canceled). Safe to call
// once; later calls return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.stopping.CompareAndSwap(false, true) {
		s.workers.Wait()
		return nil
	}
	pending := s.queue.close()
	perr := s.persistQueue(pending)

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	drain, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	select {
	case <-done:
	case <-drain.Done():
		s.cfg.Logf("drain timeout: canceling in-flight jobs")
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.cancel != nil {
				j.cancelAsk = true
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
	}
	return perr
}

// Run builds a daemon from cfg and serves its API on cfg.Addr until
// ctx is canceled, then drains and persists per Shutdown.
func Run(ctx context.Context, cfg Config) error {
	s, err := New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: s.cfg.Addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	s.cfg.Logf("recnserved listening on %s (queue-cap %d, workers %d, max-runs %d, cache %q)",
		s.cfg.Addr, s.cfg.QueueCap, s.cfg.Workers, s.cfg.MaxRunsPerJob, s.cfg.CacheDir)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.cfg.Logf("shutdown: draining in-flight jobs")
	// Drain jobs first — the API stays up so clients can keep polling
	// in-flight job status — then close the listener.
	serr := s.Shutdown(context.Background())
	hctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(hctx); err != nil && serr == nil {
		serr = err
	}
	return serr
}
