package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
)

// apiError is the structured JSON error envelope every rejection
// carries: {"error":{"code":"queue_full","message":"..."}}.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]apiError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// writeAdmissionError maps the typed admission errors onto HTTP
// statuses and stable error codes.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.met.rejectedQueueFull.Add(1)
		writeError(w, http.StatusTooManyRequests, "queue_full", "%v", err)
	case errors.Is(err, ErrTooManyRuns):
		s.met.rejectedTooManyRuns.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge, "too_many_runs", "%v", err)
	case errors.Is(err, ErrDraining):
		s.met.rejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/figures", s.handleFigures)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/trace/{name...}", s.handleTrace)
	s.mux.HandleFunc("GET /v1/runs/{key}", s.handleRunLookup)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
}

// handleFigures lists the reproducible experiments with their
// admission-control run estimates.
func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	type fig struct {
		ID            string `json:"id"`
		EstimatedRuns int    `json:"estimated_runs"`
	}
	ids := experiments.FigureIDs()
	out := make([]fig, 0, len(ids))
	for _, id := range ids {
		n, _ := experiments.EstimatedRuns(id)
		out = append(out, fig{ID: id, EstimatedRuns: n})
	}
	writeJSON(w, http.StatusOK, map[string]any{"figures": out})
}

// handleSubmit is the admission-controlled submission path: validate,
// size against MaxRunsPerJob, then push onto the bounded queue. Every
// rejection is a typed structured error; nothing is silently dropped.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.stopping.Load() {
		s.writeAdmissionError(w, ErrDraining)
		return
	}
	var spec SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.met.rejectedBadRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", "decode body: %v", err)
		return
	}
	if err := validate(spec); err != nil {
		s.met.rejectedBadRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	est, err := estimateRuns(spec)
	if err != nil {
		s.met.rejectedBadRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if est > s.cfg.MaxRunsPerJob {
		s.writeAdmissionError(w, fmt.Errorf("%w: %d estimated runs > limit %d",
			ErrTooManyRuns, est, s.cfg.MaxRunsPerJob))
		return
	}

	s.mu.Lock()
	j := s.newJobLocked(spec, est)
	if err := s.queue.push(j); err != nil {
		// Roll the registration back: the job was never admitted.
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.writeAdmissionError(w, err)
		return
	}
	status := s.statusLocked(j)
	s.mu.Unlock()
	s.met.admitted.Add(1)
	s.cfg.Logf("job %s admitted: figures=%v (est %d runs)", j.id, spec.Figures, est)
	w.Header().Set("Location", "/v1/sweeps/"+j.id)
	writeJSON(w, http.StatusAccepted, status)
}

// jobStatus is the wire form of a job.
type jobStatus struct {
	ID            string       `json:"id"`
	State         jobState     `json:"state"`
	Spec          SweepRequest `json:"spec"`
	EstimatedRuns int          `json:"estimated_runs"`
	QueuePosition int          `json:"queue_position,omitempty"`
	Created       time.Time    `json:"created"`
	Started       *time.Time   `json:"started,omitempty"`
	Finished      *time.Time   `json:"finished,omitempty"`
	RunsDone      int          `json:"runs_done"`
	RunsCached    int          `json:"runs_cached"`
	Tables        int          `json:"tables,omitempty"`
	Traces        []string     `json:"traces,omitempty"`
	Error         string       `json:"error,omitempty"`
	Events        int          `json:"events"`
}

// statusLocked snapshots a job's wire form. Caller holds s.mu.
func (s *Server) statusLocked(j *job) jobStatus {
	st := jobStatus{
		ID:            j.id,
		State:         j.state,
		Spec:          j.spec,
		EstimatedRuns: j.est,
		Created:       j.created,
		RunsDone:      j.runsDone,
		RunsCached:    j.runsCached,
		Tables:        len(j.tables),
		Error:         j.errMsg,
		Events:        len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state == stateQueued {
		st.QueuePosition = s.queue.position(j.id)
	}
	for _, nt := range j.traces {
		st.Traces = append(st.Traces, nt.name)
	}
	return st
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "not_found", "no sweep %q", id)
		return
	}
	status := s.statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

// handleCancel cancels a job: a queued job is removed from the queue
// mid-line; a running job has its sweep context canceled (the engine
// stops at the next cancellation point and reports partial progress).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "not_found", "no sweep %q", id)
		return
	}
	if terminal(j.state) {
		status := s.statusLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, status) // idempotent
		return
	}
	j.cancelAsk = true
	if s.queue.remove(id) {
		// Still queued: it never starts; finalize it here.
		s.finishLocked(j, stateCanceled, "")
	} else if j.cancel != nil {
		s.appendEventLocked(j, "cancel_requested", nil)
		j.cancel()
	}
	// Else the worker popped it but has not started it: runJob sees
	// cancelAsk and finalizes without running.
	status := s.statusLocked(j)
	s.mu.Unlock()
	s.cfg.Logf("job %s cancel requested", id)
	writeJSON(w, http.StatusOK, status)
}

// handleResults serves a finished job's tables: by default the exact
// byte stream `recnsweep` prints for the same spec (the API-vs-CLI
// byte-identity contract), or structured JSON with ?format=json.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no sweep %q", id)
		return
	}
	s.mu.Lock()
	state, errMsg, tables := j.state, j.errMsg, j.tables
	s.mu.Unlock()
	switch state {
	case stateDone:
	case stateFailed:
		writeError(w, http.StatusConflict, "sweep_failed", "%s", errMsg)
		return
	case stateCanceled:
		writeError(w, http.StatusConflict, "sweep_canceled", "sweep %s was canceled", id)
		return
	default:
		writeError(w, http.StatusConflict, "not_ready", "sweep %s is %s", id, state)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, map[string]any{"tables": tables})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	experiments.FprintTables(w, tables)
}

// handleTrace streams one run's flight-recorder export as Perfetto /
// chrome://tracing JSON. Trace names are listed in the job status
// ("<figure>/<mechanism>").
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	j, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no sweep %q", id)
		return
	}
	s.mu.Lock()
	state := j.state
	var rec *namedTrace
	var have []string
	for i := range j.traces {
		have = append(have, j.traces[i].name)
		if j.traces[i].name == name {
			rec = &j.traces[i]
		}
	}
	s.mu.Unlock()
	if !terminal(state) {
		writeError(w, http.StatusConflict, "not_ready", "sweep %s is %s", id, state)
		return
	}
	if rec == nil {
		writeError(w, http.StatusNotFound, "not_found",
			"no trace %q in sweep %s (have %v; submit with \"trace\":true)", name, id, have)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := rec.rec.WriteChromeTrace(w); err != nil {
		s.cfg.Logf("job %s: stream trace %s: %v", id, name, err)
	}
}

// handleRunLookup serves a single cached run report by its spec hash
// (the 16-hex-digit content address `recnsweep -cache` files use), so
// clients can fetch raw per-run data without resubmitting a sweep.
func (s *Server) handleRunLookup(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeError(w, http.StatusServiceUnavailable, "no_cache", "daemon started without -cache")
		return
	}
	key := r.PathValue("key")
	hash, err := strconv.ParseUint(key, 16, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "key %q: want 16 hex digits (a run spec hash)", key)
		return
	}
	specKey, report, ok := s.cache.Raw(hash)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no cached run %016x", hash)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Run-Spec", specKey)
	w.Write(report)
}
