// Package pkt defines the data units that travel through the simulated
// network: packets with their source routes (turnpools) and the path
// prefixes used by RECN CAM lines.
//
// A route is the full sequence of output-port indices a packet takes,
// one per switch hop (the paper's "turnpool"; we use absolute port
// indices rather than PCI-AS relative turns — see DESIGN.md §3). A Path
// is a (possibly shorter) sequence of turns from some port to the root
// of a congestion tree; a packet "crosses" that root iff its remaining
// route starts with the path.
package pkt

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Turn is the output-port index chosen at one switch hop.
type Turn = uint8

// Route is a full source route: the output port to take at each hop.
type Route []Turn

// Path is a sequence of turns from a given port toward a congestion
// root. Paths are immutable once built; share freely.
//
// The first packedTurns turns are packed one byte per turn into two
// machine words (turn i lives in byte i), so the common operations —
// prefix tests, CAM compares, Prepend/Rest — are a couple of word ops
// with no allocation. Paths longer than packedTurns (which never occur
// on the paper's topologies; routes there have ≤5 hops) additionally
// spill the full turn sequence into ext. The representation is
// canonical (bytes at or beyond Len are zero; ext is empty iff
// Len ≤ packedTurns), so Go's == compares paths correctly and Path
// remains usable as a map key.
type Path struct {
	w0, w1 uint64
	n      int32
	ext    string // all turns, set only when n > packedTurns
}

// packedTurns is the number of turns held in the packed words.
const packedTurns = 16

func packBytes(p *Path, s string) {
	m := len(s)
	if m > packedTurns {
		m = packedTurns
	}
	for i := 0; i < m && i < 8; i++ {
		p.w0 |= uint64(s[i]) << (8 * i)
	}
	for i := 8; i < m; i++ {
		p.w1 |= uint64(s[i]) << (8 * (i - 8))
	}
}

// packString builds a canonical Path from a full turn string. Substrings
// of an existing ext share its backing, so Rest on a long path does not
// allocate.
func packString(s string) Path {
	p := Path{n: int32(len(s))}
	if len(s) > packedTurns {
		p.ext = s
	}
	packBytes(&p, s)
	return p
}

// PathOf builds a path from a sequence of turns.
func PathOf(turns ...Turn) Path {
	p := Path{n: int32(len(turns))}
	if len(turns) > packedTurns {
		p.ext = string(turns)
	}
	m := len(turns)
	if m > packedTurns {
		m = packedTurns
	}
	for i := 0; i < m && i < 8; i++ {
		p.w0 |= uint64(turns[i]) << (8 * i)
	}
	for i := 8; i < m; i++ {
		p.w1 |= uint64(turns[i]) << (8 * (i - 8))
	}
	return p
}

// PathFromRoute builds the path consisting of route[from:from+n].
func PathFromRoute(r Route, from, n int) Path {
	if from < 0 || n < 0 || from+n > len(r) {
		panic(fmt.Sprintf("pkt: PathFromRoute(%v, %d, %d) out of range", r, from, n))
	}
	return PathOf(r[from : from+n]...)
}

// Empty reports whether the path has no turns (the root itself).
func (p Path) Empty() bool { return p.n == 0 }

// Len returns the number of turns in the path.
func (p Path) Len() int { return int(p.n) }

// First returns the first turn. It panics on an empty path.
func (p Path) First() Turn {
	if p.n == 0 {
		panic("pkt: First on empty path")
	}
	return Turn(p.w0)
}

// Rest returns the path without its first turn.
func (p Path) Rest() Path {
	if p.n == 0 {
		panic("pkt: Rest on empty path")
	}
	if p.ext != "" {
		return packString(p.ext[1:])
	}
	return Path{
		w0: p.w0>>8 | p.w1<<56,
		w1: p.w1 >> 8,
		n:  p.n - 1,
	}
}

// Prepend returns the path extended upstream with turn t (the paper's
// "extend the path information with the turn of the current switch").
func (p Path) Prepend(t Turn) Path {
	if p.n < packedTurns {
		return Path{
			w0: p.w0<<8 | uint64(t),
			w1: p.w1<<8 | p.w0>>56,
			n:  p.n + 1,
		}
	}
	return packString(string([]byte{byte(t)}) + p.full())
}

// full returns all turns as a string (allocating unless spilled).
func (p Path) full() string {
	if p.ext != "" {
		return p.ext
	}
	b := make([]byte, p.n)
	for i := range b {
		b[i] = byte(p.Turn(i))
	}
	return string(b)
}

// Turn returns the i-th turn of the path.
func (p Path) Turn(i int) Turn {
	if i < 0 || i >= int(p.n) {
		panic(fmt.Sprintf("pkt: Turn(%d) on %d-turn path", i, p.n))
	}
	switch {
	case i < 8:
		return Turn(p.w0 >> (8 * i))
	case i < packedTurns:
		return Turn(p.w1 >> (8 * (i - 8)))
	default:
		return p.ext[i]
	}
}

// Equal reports path equality.
func (p Path) Equal(q Path) bool { return p == q }

// prefixMasks returns the word masks selecting the first n packed turns
// (n must be ≤ packedTurns).
func prefixMasks(n int) (m0, m1 uint64) {
	if n >= 8 {
		if n >= packedTurns {
			return ^uint64(0), ^uint64(0)
		}
		return ^uint64(0), uint64(1)<<(8*(n-8)) - 1
	}
	return uint64(1)<<(8*n) - 1, 0
}

// HasPrefix reports whether q is a prefix of p (every route crossing
// p's root first crosses q's root when true).
func (p Path) HasPrefix(q Path) bool {
	if q.n > p.n {
		return false
	}
	if q.n <= packedTurns {
		m0, m1 := prefixMasks(int(q.n))
		return (p.w0^q.w0)&m0 == 0 && (p.w1^q.w1)&m1 == 0
	}
	// Both paths spill (q.n > packedTurns and p.n ≥ q.n).
	return strings.HasPrefix(p.ext, q.ext)
}

// Key returns a value usable as a map key (stable across calls). Path
// itself is comparable, so hot code should key on the Path directly;
// Key remains for string contexts (trace records).
func (p Path) Key() string { return p.full() }

// PackedRoute is a route suffix packed the same way CAM lines pack
// their paths, so one PackRoute amortizes the packing across every
// line compared in a CAM match.
type PackedRoute struct {
	w0, w1 uint64
	rem    Route
	ok     bool
}

// PackRoute packs the remaining route r[hop:] for repeated MatchesPacked
// calls. An out-of-range hop yields a PackedRoute nothing matches.
func PackRoute(r Route, hop int) PackedRoute {
	if hop < 0 || hop > len(r) {
		return PackedRoute{}
	}
	rem := r[hop:]
	pr := PackedRoute{rem: rem, ok: true}
	m := len(rem)
	if m > packedTurns {
		m = packedTurns
	}
	for i := 0; i < m && i < 8; i++ {
		pr.w0 |= uint64(rem[i]) << (8 * i)
	}
	for i := 8; i < m; i++ {
		pr.w1 |= uint64(rem[i]) << (8 * (i - 8))
	}
	return pr
}

// MatchesPacked reports whether the packed route remainder begins with
// this path. It is MatchesRoute with the packing hoisted out.
func (p Path) MatchesPacked(pr PackedRoute) bool {
	n := int(p.n)
	if !pr.ok || n > len(pr.rem) {
		return false
	}
	k := n
	if k > packedTurns {
		k = packedTurns
	}
	m0, m1 := prefixMasks(k)
	if (pr.w0^p.w0)&m0 != 0 || (pr.w1^p.w1)&m1 != 0 {
		return false
	}
	for i := packedTurns; i < n; i++ {
		if pr.rem[i] != p.ext[i] {
			return false
		}
	}
	return true
}

// MatchesRoute reports whether the packet's remaining route (r[hop:])
// begins with this path, i.e. whether the packet will cross the point
// this path leads to.
func (p Path) MatchesRoute(r Route, hop int) bool {
	if hop < 0 || hop > len(r) {
		return false
	}
	rem := r[hop:]
	if int(p.n) > len(rem) {
		return false
	}
	for i := 0; i < int(p.n); i++ {
		if rem[i] != p.Turn(i) {
			return false
		}
	}
	return true
}

func (p Path) String() string {
	if p.Empty() {
		return "<root>"
	}
	var sb strings.Builder
	for i := 0; i < int(p.n); i++ {
		if i > 0 {
			sb.WriteByte('.')
		}
		fmt.Fprintf(&sb, "%d", p.Turn(i))
	}
	return sb.String()
}

// Packet is a single network packet. Packets are allocated once at
// injection (or taken from a Pool) and travel by pointer; fields other
// than Hop are immutable after injection.
type Packet struct {
	ID   uint64
	Src  int // source host
	Dst  int // destination host
	Size int // bytes, including header
	// Class is the traffic class (selects the queue for uncongested
	// flows when the fabric is configured with several).
	Class uint8

	// Route is the source route; Hop indexes the next turn to take
	// (incremented when the packet is forwarded through a crossbar).
	Route Route
	Hop   int

	// Seq is the per-(src,dst) sequence number, used to verify
	// in-order delivery.
	Seq uint64

	// CreatedAt is when the message was generated at the source;
	// InjectedAt when the packet first entered the fabric.
	CreatedAt  sim.Time
	InjectedAt sim.Time

	// Corrupted marks a payload damaged by an injected link fault. The
	// packet still traverses the fabric and is delivered (and counted)
	// normally — corruption detection is an end-to-end concern.
	Corrupted bool

	// Marked is the ECN congestion-experienced bit: set when the packet
	// was stored into a switch output queue over the marking threshold
	// (throttle policy only; always false otherwise).
	Marked bool

	// OvSet/OvHop/OvTurn hold a single-hop adaptive-routing override
	// (arn policy): while OvSet and OvHop == Hop, NextTurn answers
	// OvTurn instead of Route[Hop]. The override goes stale the moment
	// the packet is forwarded (Hop++), so the shared Route slice is
	// never mutated and the remaining route continues from the
	// alternate switch unchanged (see topology.UpPortRange).
	OvSet  bool
	OvHop  int32
	OvTurn Turn
}

// NextTurn returns the output port the packet must take at the current
// switch. It panics if the route is exhausted (a routing bug).
func (p *Packet) NextTurn() Turn {
	if p.Hop >= len(p.Route) {
		panic(fmt.Sprintf("pkt: packet %d (dst %d) route exhausted at hop %d", p.ID, p.Dst, p.Hop))
	}
	if p.OvSet && int(p.OvHop) == p.Hop {
		return p.OvTurn
	}
	return p.Route[p.Hop]
}

// HopsLeft returns the number of switch hops remaining.
func (p *Packet) HopsLeft() int { return len(p.Route) - p.Hop }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%d %d→%d %dB hop %d/%d}", p.ID, p.Src, p.Dst, p.Size, p.Hop, len(p.Route))
}

// Pool is a LIFO free-list of packets. It is a plain slice, NOT a
// sync.Pool: sync.Pool's reuse depends on GC timing and per-P caches,
// which would make packet identity (and anything hashed from pointers
// or allocation order) run-dependent. A slice free-list is fully
// deterministic — the same program order always recycles the same
// records — and single-threaded, matching the one-goroutine-per-engine
// model. The zero value is ready to use.
//
// Put hands the packet's memory back to the pool: the caller must be
// the last holder. Observers that want to keep delivered packets must
// copy the Packet value, not retain the pointer.
type Pool struct {
	free []*Packet
}

// Get returns a zeroed packet, reusing a freed one when available.
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = Packet{}
		return p
	}
	return &Packet{}
}

// Put recycles a packet. The pointer must not be used afterwards.
func (pl *Pool) Put(p *Packet) {
	pl.free = append(pl.free, p)
}
