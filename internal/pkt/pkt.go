// Package pkt defines the data units that travel through the simulated
// network: packets with their source routes (turnpools) and the path
// prefixes used by RECN CAM lines.
//
// A route is the full sequence of output-port indices a packet takes,
// one per switch hop (the paper's "turnpool"; we use absolute port
// indices rather than PCI-AS relative turns — see DESIGN.md §3). A Path
// is a (possibly shorter) sequence of turns from some port to the root
// of a congestion tree; a packet "crosses" that root iff its remaining
// route starts with the path.
package pkt

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Turn is the output-port index chosen at one switch hop.
type Turn = uint8

// Route is a full source route: the output port to take at each hop.
type Route []Turn

// Path is a sequence of turns from a given port toward a congestion
// root. Paths are immutable once built; share freely.
type Path struct {
	turns string // string for cheap comparison and map keys
}

// PathOf builds a path from a sequence of turns.
func PathOf(turns ...Turn) Path {
	return Path{turns: string(turns)}
}

// PathFromRoute builds the path consisting of route[from:from+n].
func PathFromRoute(r Route, from, n int) Path {
	if from < 0 || n < 0 || from+n > len(r) {
		panic(fmt.Sprintf("pkt: PathFromRoute(%v, %d, %d) out of range", r, from, n))
	}
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = r[from+i]
	}
	return Path{turns: string(b)}
}

// Empty reports whether the path has no turns (the root itself).
func (p Path) Empty() bool { return len(p.turns) == 0 }

// Len returns the number of turns in the path.
func (p Path) Len() int { return len(p.turns) }

// First returns the first turn. It panics on an empty path.
func (p Path) First() Turn {
	if p.Empty() {
		panic("pkt: First on empty path")
	}
	return p.turns[0]
}

// Rest returns the path without its first turn.
func (p Path) Rest() Path {
	if p.Empty() {
		panic("pkt: Rest on empty path")
	}
	return Path{turns: p.turns[1:]}
}

// Prepend returns the path extended upstream with turn t (the paper's
// "extend the path information with the turn of the current switch").
func (p Path) Prepend(t Turn) Path {
	return Path{turns: string([]byte{t}) + p.turns}
}

// Turn returns the i-th turn of the path.
func (p Path) Turn(i int) Turn { return p.turns[i] }

// Equal reports path equality.
func (p Path) Equal(q Path) bool { return p.turns == q.turns }

// HasPrefix reports whether q is a prefix of p (every route crossing
// p's root first crosses q's root when true).
func (p Path) HasPrefix(q Path) bool {
	return len(p.turns) >= len(q.turns) && p.turns[:len(q.turns)] == q.turns
}

// Key returns a value usable as a map key (stable across calls).
func (p Path) Key() string { return p.turns }

// MatchesRoute reports whether the packet's remaining route (r[hop:])
// begins with this path, i.e. whether the packet will cross the point
// this path leads to.
func (p Path) MatchesRoute(r Route, hop int) bool {
	if hop < 0 || hop > len(r) {
		return false
	}
	rem := r[hop:]
	if len(p.turns) > len(rem) {
		return false
	}
	for i := 0; i < len(p.turns); i++ {
		if rem[i] != p.turns[i] {
			return false
		}
	}
	return true
}

func (p Path) String() string {
	if p.Empty() {
		return "<root>"
	}
	var sb strings.Builder
	for i := 0; i < len(p.turns); i++ {
		if i > 0 {
			sb.WriteByte('.')
		}
		fmt.Fprintf(&sb, "%d", p.turns[i])
	}
	return sb.String()
}

// Packet is a single network packet. Packets are allocated once at
// injection and travel by pointer; fields other than Hop are immutable
// after injection.
type Packet struct {
	ID   uint64
	Src  int // source host
	Dst  int // destination host
	Size int // bytes, including header
	// Class is the traffic class (selects the queue for uncongested
	// flows when the fabric is configured with several).
	Class uint8

	// Route is the source route; Hop indexes the next turn to take
	// (incremented when the packet is forwarded through a crossbar).
	Route Route
	Hop   int

	// Seq is the per-(src,dst) sequence number, used to verify
	// in-order delivery.
	Seq uint64

	// CreatedAt is when the message was generated at the source;
	// InjectedAt when the packet first entered the fabric.
	CreatedAt  sim.Time
	InjectedAt sim.Time

	// Corrupted marks a payload damaged by an injected link fault. The
	// packet still traverses the fabric and is delivered (and counted)
	// normally — corruption detection is an end-to-end concern.
	Corrupted bool
}

// NextTurn returns the output port the packet must take at the current
// switch. It panics if the route is exhausted (a routing bug).
func (p *Packet) NextTurn() Turn {
	if p.Hop >= len(p.Route) {
		panic(fmt.Sprintf("pkt: packet %d (dst %d) route exhausted at hop %d", p.ID, p.Dst, p.Hop))
	}
	return p.Route[p.Hop]
}

// HopsLeft returns the number of switch hops remaining.
func (p *Packet) HopsLeft() int { return len(p.Route) - p.Hop }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%d %d→%d %dB hop %d/%d}", p.ID, p.Src, p.Dst, p.Size, p.Hop, len(p.Route))
}
