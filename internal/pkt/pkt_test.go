package pkt

import (
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	p := PathOf(3, 1, 4)
	if p.Empty() {
		t.Fatal("PathOf(3,1,4).Empty() = true")
	}
	if p.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", p.Len())
	}
	if p.First() != 3 {
		t.Fatalf("First() = %d, want 3", p.First())
	}
	if !p.Rest().Equal(PathOf(1, 4)) {
		t.Fatalf("Rest() = %v", p.Rest())
	}
	if got := p.String(); got != "3.1.4" {
		t.Fatalf("String() = %q", got)
	}
	if got := PathOf().String(); got != "<root>" {
		t.Fatalf("empty String() = %q", got)
	}
	if p.Turn(1) != 1 {
		t.Fatalf("Turn(1) = %d", p.Turn(1))
	}
}

func TestPathPrepend(t *testing.T) {
	p := PathOf(1, 4)
	q := p.Prepend(7)
	if !q.Equal(PathOf(7, 1, 4)) {
		t.Fatalf("Prepend = %v", q)
	}
	// Original unchanged (immutability).
	if !p.Equal(PathOf(1, 4)) {
		t.Fatalf("Prepend mutated receiver: %v", p)
	}
}

func TestPathFromRoute(t *testing.T) {
	r := Route{5, 6, 7, 0, 1}
	p := PathFromRoute(r, 1, 3)
	if !p.Equal(PathOf(6, 7, 0)) {
		t.Fatalf("PathFromRoute = %v", p)
	}
	// Mutating the route must not change the path.
	r[2] = 9
	if !p.Equal(PathOf(6, 7, 0)) {
		t.Fatalf("path aliases route storage: %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range PathFromRoute did not panic")
		}
	}()
	PathFromRoute(r, 4, 3)
}

func TestEmptyPathPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"First": func() { PathOf().First() },
		"Rest":  func() { PathOf().Rest() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty path did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatchesRoute(t *testing.T) {
	r := Route{4, 2, 6, 1}
	cases := []struct {
		path Path
		hop  int
		want bool
	}{
		{PathOf(4, 2), 0, true},
		{PathOf(4, 3), 0, false},
		{PathOf(2, 6), 1, true},
		{PathOf(2, 6, 1), 1, true},
		{PathOf(2, 6, 1, 5), 1, false}, // longer than remaining route
		{PathOf(), 0, true},            // empty path matches everything
		{PathOf(), 4, true},
		{PathOf(1), 3, true},
		{PathOf(1), 4, false},
		{PathOf(4), -1, false},
		{PathOf(4), 5, false},
	}
	for i, c := range cases {
		if got := c.path.MatchesRoute(r, c.hop); got != c.want {
			t.Errorf("case %d: %v.MatchesRoute(%v, %d) = %v, want %v", i, c.path, r, c.hop, got, c.want)
		}
	}
}

// Property: a path built from any slice of a route matches that route at
// that hop, and prepending the preceding turn matches one hop earlier.
func TestQuickPathRouteConsistency(t *testing.T) {
	f := func(raw []byte, fromU, nU uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := make(Route, len(raw))
		for i, b := range raw {
			r[i] = b % 8
		}
		from := int(fromU) % len(r)
		n := int(nU) % (len(r) - from + 1)
		p := PathFromRoute(r, from, n)
		if !p.MatchesRoute(r, from) {
			return false
		}
		if from > 0 {
			q := p.Prepend(r[from-1])
			if !q.MatchesRoute(r, from-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHasPrefix(t *testing.T) {
	cases := []struct {
		p, q Path
		want bool
	}{
		{PathOf(4, 2, 1), PathOf(4), true},
		{PathOf(4, 2, 1), PathOf(4, 2), true},
		{PathOf(4, 2, 1), PathOf(4, 2, 1), true}, // a path prefixes itself
		{PathOf(4, 2, 1), PathOf(2), false},
		{PathOf(4), PathOf(4, 2), false}, // longer is not a prefix
		{PathOf(4), PathOf(), true},      // empty prefixes everything
		{PathOf(), PathOf(), true},
	}
	for i, c := range cases {
		if got := c.p.HasPrefix(c.q); got != c.want {
			t.Errorf("case %d: %v.HasPrefix(%v) = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

// Property: HasPrefix agrees with MatchesRoute — if q is a prefix of p,
// any route matching p also matches q.
func TestQuickHasPrefixConsistency(t *testing.T) {
	f := func(a []byte, cut uint8) bool {
		if len(a) == 0 {
			return true
		}
		p := PathOf(a...)
		q := PathOf(a[:int(cut)%(len(a)+1)]...)
		if !p.HasPrefix(q) {
			return false
		}
		route := make(Route, len(a))
		copy(route, a)
		return q.MatchesRoute(route, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective w.r.t. Equal.
func TestQuickPathKey(t *testing.T) {
	f := func(a, b []byte) bool {
		p, q := PathOf(a...), PathOf(b...)
		return (p.Key() == q.Key()) == p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPacketNextTurn(t *testing.T) {
	p := &Packet{ID: 1, Dst: 5, Route: Route{3, 1}, Hop: 0, Size: 64}
	if p.NextTurn() != 3 {
		t.Fatalf("NextTurn = %d", p.NextTurn())
	}
	p.Hop++
	if p.NextTurn() != 1 {
		t.Fatalf("NextTurn = %d", p.NextTurn())
	}
	if p.HopsLeft() != 1 {
		t.Fatalf("HopsLeft = %d", p.HopsLeft())
	}
	p.Hop++
	defer func() {
		if recover() == nil {
			t.Error("NextTurn past end did not panic")
		}
	}()
	p.NextTurn()
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 7, Src: 1, Dst: 2, Size: 64, Route: Route{0}, Hop: 0}
	if got := p.String(); got != "pkt{7 1→2 64B hop 0/1}" {
		t.Errorf("String() = %q", got)
	}
}
