package pkt

import (
	"bytes"
	"testing"
)

// naiveMatches is the obvious O(n) reference for Path.MatchesRoute /
// Path.MatchesPacked: the remaining route r[hop:] begins with the
// path's turn sequence.
func naiveMatches(turns []byte, r Route, hop int) bool {
	if hop < 0 || hop > len(r) {
		return false
	}
	rem := r[hop:]
	if len(turns) > len(rem) {
		return false
	}
	for i, t := range turns {
		if rem[i] != t {
			return false
		}
	}
	return true
}

// clampFuzz bounds fuzz-provided byte slices so paths exercise both the
// packed-words representation (≤16 turns) and the ext spill (>16),
// without letting the fuzzer burn time on megabyte routes.
func clampFuzz(b []byte) []byte {
	const max = 3 * packedTurns
	if len(b) > max {
		b = b[:max]
	}
	return b
}

// FuzzPackRoute cross-checks the three route-matching paths — the
// packed fast path (MatchesPacked/PackRoute), the unpacked path
// (MatchesRoute) and a naive reference — plus the PathOf/Turn
// round-trip and HasPrefix against its definition, over arbitrary
// turn sequences, hops (including out-of-range) and path lengths
// (including the >16-turn ext spill the topologies never produce).
func FuzzPackRoute(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, 0, []byte{1, 2})
	f.Add([]byte{1, 2, 3, 4, 5}, 2, []byte{3, 4, 5})
	f.Add([]byte{7, 7, 7}, 3, []byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}, 1,
		[]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Add([]byte{5}, -1, []byte{5})
	f.Add([]byte{5}, 9, []byte{5})
	f.Fuzz(func(t *testing.T, routeB []byte, hop int, pathB []byte) {
		routeB, pathB = clampFuzz(routeB), clampFuzz(pathB)
		r := Route(routeB)
		p := PathOf(pathB...)

		// Round-trip: PathOf preserves length and every turn.
		if p.Len() != len(pathB) {
			t.Fatalf("PathOf(%v).Len() = %d", pathB, p.Len())
		}
		for i := range pathB {
			if p.Turn(i) != pathB[i] {
				t.Fatalf("PathOf(%v).Turn(%d) = %d, want %d", pathB, i, p.Turn(i), pathB[i])
			}
		}

		// The three matchers agree, hop in range or not.
		want := naiveMatches(pathB, r, hop)
		if got := p.MatchesRoute(r, hop); got != want {
			t.Fatalf("MatchesRoute(%v, %d) on path %v = %t, want %t", r, hop, pathB, got, want)
		}
		if got := p.MatchesPacked(PackRoute(r, hop)); got != want {
			t.Fatalf("MatchesPacked(PackRoute(%v, %d)) on path %v = %t, want %t", r, hop, pathB, got, want)
		}

		// HasPrefix against its definition, using the route bytes as the
		// second path to vary both operands.
		q := PathOf(routeB...)
		wantPre := len(routeB) <= len(pathB) && bytes.Equal(pathB[:len(routeB)], routeB)
		if got := p.HasPrefix(q); got != wantPre {
			t.Fatalf("Path(%v).HasPrefix(%v) = %t, want %t", pathB, routeB, got, wantPre)
		}

		// First/Rest/Prepend consistency on non-empty paths: Rest drops
		// exactly the first turn and Prepend(First) restores the path.
		if !p.Empty() {
			rest := p.Rest()
			if rest.Len() != p.Len()-1 {
				t.Fatalf("Rest length %d after %d", rest.Len(), p.Len())
			}
			for i := 0; i < rest.Len(); i++ {
				if rest.Turn(i) != p.Turn(i+1) {
					t.Fatalf("Rest(%v).Turn(%d) = %d, want %d", pathB, i, rest.Turn(i), p.Turn(i+1))
				}
			}
			back := rest.Prepend(p.First())
			if !back.Equal(p) {
				t.Fatalf("Prepend(First) did not restore %v: got %v", p, back)
			}
		}
	})
}
