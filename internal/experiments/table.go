package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table used to print the same series
// the paper plots.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table (paper-expectation reminders).
	Notes []string
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// FprintCSV writes the table as CSV (header row first, notes as
// trailing '#' comment lines) for plotting tools.
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// FprintTables writes tables back-to-back with no separator — the
// exact byte stream recnsweep prints, and therefore the stream the
// daemon's text results endpoint must produce for the API-vs-CLI
// byte-identity contract.
func FprintTables(w io.Writer, tables []*Table) {
	for _, t := range tables {
		t.Fprint(w)
	}
}

// RenderTables renders a list of tables separated by blank lines — the
// format the serial-vs-parallel golden tests compare byte-for-byte.
func RenderTables(tables []*Table) string {
	var sb strings.Builder
	for _, t := range tables {
		t.Fprint(&sb)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// stride picks a row step so a series prints in at most maxRows rows.
func stride(n, maxRows int) int {
	if maxRows <= 0 || n <= maxRows {
		return 1
	}
	return (n + maxRows - 1) / maxRows
}
