package experiments

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/traffic"
)

// TestCheckedRunBitIdentical is the acceptance criterion for the
// checker's observer purity at the experiments level: the same figure
// rendered with and without Run.Check must be byte-identical.
func TestCheckedRunBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	render := func(check bool) string {
		o := quickOpts()
		o.Scale = 0.1
		o.Policies = []fabric.Policy{fabric.Policy1Q, fabric.PolicyRECN}
		o.Check = check
		fig, err := Fig2(2, o)
		if err != nil {
			t.Fatalf("Fig2 (check=%t): %v", check, err)
		}
		return fig.Table().String()
	}
	off := render(false)
	on := render(true)
	if off != on {
		t.Fatalf("figure output diverged with checking on:\n--- off ---\n%s\n--- on ---\n%s", off, on)
	}
}

// TestCheckedDrainRunsFinalCheck: a checked DrainAll run of a clean
// workload passes end-of-run accounting, including with faults and
// recovery in play.
func TestCheckedDrainRunsFinalCheck(t *testing.T) {
	c, err := traffic.Corner(2, 64, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run{
		Hosts:     64,
		Policy:    fabric.PolicyRECN,
		Workload:  c.Install,
		Until:     c.SimEnd,
		DrainAll:  true,
		Check:     true,
		FaultSpec: "seed=auto,drop=token:2",
	}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 || res.Injected != res.Delivered {
		t.Fatalf("injected %d, delivered %d", res.Injected, res.Delivered)
	}
	if res.Faults == nil || res.Faults.InjectedFaults() != 2 {
		t.Fatalf("fault accounting: %+v", res.Faults)
	}
}

// TestCheckedRunNotCacheable: serving a checked run from the cache
// would skip the audits, so Check must force a fresh simulation.
func TestCheckedRunNotCacheable(t *testing.T) {
	r := Run{Hosts: 64, Policy: fabric.PolicyRECN, Key: "k", Check: true}
	if r.cacheable() {
		t.Fatal("checked run is cacheable")
	}
	r.Check = false
	if !r.cacheable() {
		t.Fatal("unchecked keyed run is not cacheable")
	}
	// Check stays out of the spec key: a checked fault run with
	// seed=auto must derive the same fault stream as its unchecked
	// twin, or checking would change results.
	chk := r
	chk.Check = true
	if r.SpecKey() != chk.SpecKey() {
		t.Fatalf("Check leaked into SpecKey: %q vs %q", r.SpecKey(), chk.SpecKey())
	}
}

// TestViolationSurfacesAsError: the recover boundary converts a
// checker panic into a structured run error. The cheapest authentic
// violation is a deadlocked final state: a checked DrainAll run whose
// horizon cuts injection off mid-burst still quiesces, so instead this
// drives the fault injector with recovery disabled — dropped tokens
// leak SAQs that never release, which FinalCheck reports.
func TestViolationSurfacesAsError(t *testing.T) {
	c, err := traffic.Corner(2, 64, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run{
		Hosts:    64,
		Policy:   fabric.PolicyRECN,
		Workload: c.Install,
		Until:    c.SimEnd,
		DrainAll: true,
		Check:    true,
		// Recovery explicitly enabled-but-inert is not expressible via
		// FaultSpec (it always gets default recovery), so drop enough
		// tokens that the run's own recovery has work to do, and assert
		// the run still completes: the boundary code path is exercised
		// by the fabric-level seeded-bug test; here we only require
		// checked fault runs to not false-positive.
		FaultSpec: "seed=auto,drop=token:4",
	}.Execute()
	if err != nil && !strings.Contains(err.Error(), "invariant violation") {
		t.Fatalf("unexpected error kind: %v", err)
	}
	if err != nil {
		t.Fatalf("checked fault run with recovery failed: %v", err)
	}
}
