// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4): the corner-case and SAN-trace throughput
// curves (Figures 2–3), the SAQ utilization series (Figures 4–5), the
// scalability runs (Figure 6), Table 1, and a set of ablations on the
// design choices (SAQ count, thresholds, token priority boost, in-order
// markers).
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/check"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/throttle"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/units"
)

// netAdapter exposes a fabric.Network as a traffic.Network. Injection
// errors (generator bugs: bad host index, zero size) are collected into
// err rather than panicking, so one bad workload fails its own run
// instead of aborting a whole sweep; the first error wins. It also
// implements traffic.HostNetwork: on a sharded network HostView hands
// each source a view bound to its host's shard engine (with a private
// error slot, since the streams run concurrently), and ScheduleOn
// mailboxes cross-host work; on a serial network both collapse to the
// plain adapter.
type netAdapter struct {
	n   *fabric.Network
	err *error
	// herr is the per-host injection-error slots of a sharded run
	// (folded in host order after the run); nil on serial runs.
	herr []error
}

func (a netAdapter) Hosts() int                      { return a.n.Topology().NumHosts() }
func (a netAdapter) Now() sim.Time                   { return a.n.Engine.Now() }
func (a netAdapter) Schedule(at sim.Time, fn func()) { a.n.Engine.Schedule(at, fn) }
func (a netAdapter) Inject(src, dst, size int) {
	if err := a.n.InjectMessage(src, dst, size); err != nil && *a.err == nil {
		*a.err = err
	}
}

func (a netAdapter) HostView(host int) traffic.Network {
	if a.n.ShardCount() == 0 {
		return a
	}
	return hostAdapter{
		netAdapter: a,
		eng:        a.n.ShardEngine(a.n.HostShard(host)),
		slot:       &a.herr[host],
	}
}

func (a netAdapter) ScheduleOn(caller, host int, at sim.Time, fn func()) {
	a.n.ScheduleRemote(caller, host, at, fn)
}

// firstInjectErr folds the per-host error slots (lowest host wins, so
// the reported error does not depend on goroutine timing).
func (a netAdapter) firstInjectErr() error {
	if *a.err != nil {
		return *a.err
	}
	for _, err := range a.herr {
		if err != nil {
			return err
		}
	}
	return nil
}

// hostAdapter is one host's injection surface on a sharded network:
// time and scheduling come from the host's shard engine, and injection
// errors land in the host's own slot.
type hostAdapter struct {
	netAdapter
	eng  *sim.Engine
	slot *error
}

func (a hostAdapter) Now() sim.Time                   { return a.eng.Now() }
func (a hostAdapter) Schedule(at sim.Time, fn func()) { a.eng.Schedule(at, fn) }
func (a hostAdapter) Inject(src, dst, size int) {
	if err := a.n.InjectMessage(src, dst, size); err != nil && *a.slot == nil {
		*a.slot = err
	}
}

// Run describes one simulation of one mechanism under one workload.
type Run struct {
	Hosts      int
	Policy     fabric.Policy
	PacketSize int
	// Topo selects the topology family: "" or "min" is the paper's
	// perfect-shuffle MIN, "fattree" the k-ary n-tree with deterministic
	// adaptive up-routing, "mesh" a square 2D mesh (Hosts must be a
	// perfect square). See BuildTopology.
	Topo string
	// EagerState disables the fabric's lazy queue/credit
	// materialization (fabric.Config.EagerState): results are
	// bit-identical either way, but the memory accounting differs, so
	// the flag is part of the spec key.
	EagerState bool
	// Key names the non-declarative parts of the spec (the Workload and
	// Mutate closures) for the sweep engine: it feeds SpecKey/SpecHash,
	// which identify the run in the result cache and derive the run's
	// RNG seeds. Two runs may share a Key only if their closures are
	// interchangeable. A run whose closures are set but whose Key is
	// empty is never cached.
	Key string
	// Workload installs the traffic generators.
	Workload func(traffic.Network) error
	// Until is the measurement horizon; events beyond it still drain
	// if DrainAll is set.
	Until sim.Time
	// Bin is the reporting bin width.
	Bin sim.Time
	// DrainAll keeps simulating past the horizon until the network is
	// empty, then verifies the quiesce invariants (used by tests; the
	// figure runs cut off at the horizon like the paper's plots).
	DrainAll bool
	// Mutate, if set, adjusts the fabric configuration (ablations).
	Mutate func(*fabric.Config)
	// Observe, if set, sees every delivered packet (after the built-in
	// meters).
	Observe func(now sim.Time, p *pkt.Packet)
	// Faults, if set, injects the plan's faults into the run (plans are
	// single-use). Recovery configures the watchdog/repair layer.
	Faults   *fault.Plan
	Recovery fault.Recovery
	// FaultSpec, if non-empty and Faults is nil, is parsed into a fresh
	// plan per Execute (multi-policy figures reuse one Run template, and
	// plans are single-use). A run with faults but a disabled Recovery
	// gets the default recovery timers: injecting faults without the
	// repair layer is only useful in targeted tests, which set Faults
	// directly.
	FaultSpec string
	// ThrottleSpec, if non-empty, overrides the throttle policy tunables
	// (throttle.ParseSpec syntax, e.g. "mark=16384,min=100"). ARNSpec
	// does the same for the arn policy ("on=16384,off=4096"). Both are
	// declarative and feed SpecKey, so runs with different tunables never
	// collide in the result cache; empty specs leave the defaults — and
	// every pre-existing cache key — untouched.
	ThrottleSpec string
	ARNSpec      string
	// Trace, if non-nil, attaches a flight recorder built from this
	// config to the run (recorders are single-use, so like FaultSpec a
	// fresh one is created per Execute). The recorder is returned in
	// Result.Trace.
	Trace *trace.Config
	// Shards, when > 0, runs the simulation on the windowed multi-core
	// runtime: the fabric is partitioned into that many shard engines
	// synchronized by link-latency windows (see fabric.Network.Shard).
	// Results are bit-identical across every Shards value ≥ 1 but differ
	// (deterministically) from the serial Shards == 0 engine, whose event
	// interleaving windowing does not reproduce; sharded runs are
	// therefore never mixed with serial runs in one comparison and never
	// use the result cache. Observe is not supported with Shards set.
	Shards int
	// Check attaches the runtime invariant checker (internal/check): the
	// audits verify packet conservation, flow-control bounds, SAQ/CAM
	// lifecycle and progress during the run, and a violation aborts the
	// run with a structured error carrying a diagnostics snapshot.
	// Audits are pure observers, so a clean checked run produces results
	// bit-identical to an unchecked one; checked runs never use the
	// result cache (a cache hit would skip the checking).
	Check bool
}

// Result carries everything measured during a run.
type Result struct {
	Policy          fabric.Policy
	Throughput      *stats.Throughput
	SAQ             *stats.SAQSeries
	Latency         *stats.Latency
	Injected        uint64
	Delivered       uint64
	OrderViolations uint64
	Events          uint64
	// Faults is the fault/recovery accounting (nil when the run had
	// neither fault injection nor recovery configured).
	Faults *stats.FaultReport
	// Mem is the end-of-run materialized-state accounting (nil on
	// results loaded from cache entries that predate the memory model).
	Mem *stats.MemReport
	// Trace is the run's flight recorder (nil when tracing was off).
	Trace *trace.Recorder
}

// buildConfig resolves the run's declarative fields into a fabric
// configuration: topology, policy, packet size and the port-memory
// sizing rules. ExecuteContext layers the tunable specs and Mutate on
// top; EagerMemModel reuses it so the analytic eager footprint is
// computed for exactly the configuration the run simulates.
func (r Run) buildConfig() (fabric.Config, error) {
	topo, err := BuildTopology(r.Topo, r.Hosts)
	if err != nil {
		return fabric.Config{}, err
	}
	cfg := fabric.DefaultConfig(topo)
	cfg.Policy = r.Policy
	cfg.EagerState = r.EagerState
	if r.PacketSize > 0 {
		cfg.PacketSize = r.PacketSize
	}
	// The paper gives the 512-host network 192 KB ports so VOQnet can
	// hold one queue per destination (§4.1).
	if r.Policy == fabric.PolicyVOQnet && r.Hosts == 512 {
		cfg.PortMemory = units.PortMemoryLarge
	}
	// Beyond the paper's sizes the same rule generalizes: VOQnet needs
	// one queue per destination at every port, so give each queue room
	// for four packets (the 1k/4k scaling runs; lazy materialization
	// means the nominal RAM is never actually allocated up front).
	if r.Policy == fabric.PolicyVOQnet && r.Hosts >= 1024 {
		cfg.PortMemory = r.Hosts * cfg.PacketSize * 4
	}
	return cfg, nil
}

// EagerMemModel returns the analytic construction-time footprint the
// run's configuration would have fully preallocated (EagerState forced
// on) — the denominator of the scaling figure's lazy-vs-eager ratio.
func (r Run) EagerMemModel() (stats.MemReport, error) {
	cfg, err := r.buildConfig()
	if err != nil {
		return stats.MemReport{}, err
	}
	if r.Mutate != nil {
		r.Mutate(&cfg)
	}
	cfg.EagerState = true
	return fabric.EagerMemModel(cfg), nil
}

// BuildTopology resolves a topology name and host count (see Run.Topo).
// Unknown names list the valid ones, so CLI -topo validation and error
// text stay in one place.
func BuildTopology(name string, hosts int) (fabric.Topology, error) {
	switch strings.ToLower(name) {
	case "", "min":
		return topology.ForHosts(hosts)
	case "fattree", "fat-tree":
		return topology.NewFatTree(hosts)
	case "mesh":
		side := 1
		for side*side < hosts {
			side++
		}
		if side*side != hosts {
			return nil, fmt.Errorf("experiments: mesh topology needs a square host count, got %d", hosts)
		}
		return topology.NewMesh(side, side)
	default:
		return nil, fmt.Errorf("experiments: unknown topology %q (valid: %s)", name, TopologyNames())
	}
}

// TopologyNames lists every Run.Topo value BuildTopology accepts, for
// usage strings and error messages.
func TopologyNames() string { return "min, fattree, mesh" }

// ValidTopology reports whether BuildTopology accepts the name (host
// count constraints aside — a mesh still wants a square host count).
// CLIs and the sweep daemon use it to reject topology selections
// before any simulation starts.
func ValidTopology(name string) bool {
	switch strings.ToLower(name) {
	case "", "min", "fattree", "fat-tree", "mesh":
		return true
	}
	return false
}

// Execute builds the network, installs the workload and simulates.
func (r Run) Execute() (*Result, error) { return r.ExecuteContext(context.Background()) }

// ExecuteContext is Execute under a context. A serial run checks for
// cancellation at horizon-fraction boundaries (the event stream is not
// perturbed: the engine runs the same events in the same order, just in
// chunks, so results stay bit-identical to an uncancelled Execute); a
// canceled run returns an error matching errors.Is(err, ErrCanceled).
// Sharded runs check only before starting — the windowed runtime owns
// its barrier loop — so their cancellation granularity is the whole run.
func (r Run) ExecuteContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiments: run not started: %w", ErrCanceled)
	}
	if r.Until <= 0 {
		return nil, fmt.Errorf("experiments: no horizon")
	}
	if r.Bin <= 0 {
		r.Bin = r.Until / 100
	}
	cfg, err := r.buildConfig()
	if err != nil {
		return nil, err
	}
	if r.ThrottleSpec != "" {
		if cfg.Throttle, err = throttle.ParseSpec(r.ThrottleSpec); err != nil {
			return nil, err
		}
	}
	if r.ARNSpec != "" {
		if cfg.ARN, err = fabric.ParseARNSpec(r.ARNSpec); err != nil {
			return nil, err
		}
	}
	if r.Mutate != nil {
		r.Mutate(&cfg)
	}
	faults := r.Faults
	if faults == nil && r.FaultSpec != "" {
		// "seed=auto" resolves to the spec-derived seed: stable across
		// submission order and parallelism, distinct across runs with
		// different specs (each policy of a fault sweep gets its own
		// deterministic fault stream).
		spec := strings.ReplaceAll(r.FaultSpec, "seed=auto", fmt.Sprintf("seed=%d", r.DerivedSeed()))
		faults, err = fault.ParsePlan(spec)
		if err != nil {
			return nil, err
		}
	}
	recovery := r.Recovery
	if faults != nil && !recovery.Enabled {
		recovery = fault.DefaultRecovery()
	}
	cfg.Faults = faults
	cfg.Recovery = recovery
	var rec *trace.Recorder
	if r.Trace != nil {
		rec = trace.New(*r.Trace)
		cfg.Tracer = rec
	}
	if r.Check {
		if cfg.Tracer == nil {
			// A small diagnostic ring so violation snapshots carry the
			// recent event history even when the caller asked for no
			// trace; it is not returned in Result.Trace.
			cfg.Tracer = trace.New(trace.Config{BufferEvents: 512})
		}
		cfg.Checker = check.New(check.Config{})
	}
	net, err := fabric.New(cfg)
	if err != nil {
		return nil, err
	}
	if r.Shards > 0 {
		if r.Observe != nil {
			return nil, fmt.Errorf("experiments: Observe is not supported on sharded runs (delivery callbacks run concurrently on shard goroutines)")
		}
		if _, err := net.Shard(r.Shards); err != nil {
			return nil, err
		}
	}

	tp, err := stats.NewThroughput(r.Bin)
	if err != nil {
		return nil, err
	}
	saq, err := stats.NewSAQSeries(r.Bin)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Policy:     r.Policy,
		Throughput: tp,
		SAQ:        saq,
		Latency:    stats.NewLatency(),
	}
	var shardTP []*stats.Throughput
	var shardLat []*stats.Latency
	if k := net.ShardCount(); k > 0 {
		// Each shard meters its own deliveries on its own goroutine;
		// the meters merge after the run (bin addition and histogram
		// addition commute, so the merged result is shard-invariant).
		shardTP = make([]*stats.Throughput, k)
		shardLat = make([]*stats.Latency, k)
		for i := 0; i < k; i++ {
			stp, err := stats.NewThroughput(r.Bin)
			if err != nil {
				return nil, err
			}
			lat := stats.NewLatency()
			shardTP[i], shardLat[i] = stp, lat
			eng := net.ShardEngine(i)
			net.SetShardOnDeliver(i, func(p *pkt.Packet) {
				now := eng.Now()
				stp.Add(now, p.Size)
				lat.Add(now - p.CreatedAt)
			})
		}
	} else {
		net.OnDeliver = func(p *pkt.Packet) {
			now := net.Engine.Now()
			res.Throughput.Add(now, p.Size)
			res.Latency.Add(now - p.CreatedAt)
			if r.Observe != nil {
				r.Observe(now, p)
			}
		}
	}
	if r.Policy == fabric.PolicyRECN {
		period := r.Bin / 4
		if period <= 0 {
			period = r.Bin
		}
		var sample func()
		sample = func() {
			total, maxIn, maxEg := net.SAQUsage()
			res.SAQ.Observe(net.Engine.Now(), stats.SAQSample{Total: total, MaxIngress: maxIn, MaxEgress: maxEg})
			if net.Engine.Now() < r.Until {
				net.Engine.After(period, sample)
			}
		}
		net.Engine.Schedule(0, sample)
	}
	var injectErr error
	adapter := netAdapter{n: net, err: &injectErr}
	if net.ShardCount() > 0 {
		adapter.herr = make([]error, net.Topology().NumHosts())
	}
	if r.Workload != nil {
		if err := r.Workload(adapter); err != nil {
			return nil, err
		}
	}
	if err := r.simulate(ctx, net); err != nil {
		return nil, err
	}
	if err := adapter.firstInjectErr(); err != nil {
		return nil, fmt.Errorf("experiments: workload injection: %w", err)
	}
	for i := range shardTP {
		if err := res.Throughput.Merge(shardTP[i]); err != nil {
			return nil, err
		}
		res.Latency.Merge(shardLat[i])
	}
	res.Injected = net.InjectedPackets
	res.Delivered = net.DeliveredPackets
	res.OrderViolations = net.OrderViolations
	res.Events = net.TotalEvents()
	res.Faults = net.FaultReport()
	mem := net.MemStats()
	res.Mem = &mem
	if rec != nil {
		res.Trace = net.MergedTracer()
	}
	return res, nil
}

// simulate runs the event loop and, for checked runs, converts an
// invariant-violation panic into the run's error: the checker aborts
// from deep inside an event handler, and the recover boundary here is
// what turns that into a structured failure instead of a crashed sweep
// worker. The violation's Detail() carries the diagnostics snapshot.
func (r Run) simulate(ctx context.Context, net *fabric.Network) (err error) {
	if r.Check {
		defer func() {
			if rec := recover(); rec != nil {
				v, ok := rec.(*check.Violation)
				if !ok {
					panic(rec) // not ours: a real bug, keep crashing
				}
				err = fmt.Errorf("experiments: invariant violation:\n%s", v.Detail())
			}
		}()
	}
	if net.ShardCount() > 0 {
		net.RunWindowed(r.Until)
		if r.DrainAll {
			net.DrainWindowed()
		} else {
			net.FinishWindowed()
		}
	} else if ctx.Done() == nil {
		net.Engine.Run(r.Until)
		if r.DrainAll {
			net.Engine.Drain()
		}
	} else {
		// Cancellable: run the horizon in chunks, checking the context
		// between them. Chunking dispatches the exact same events in the
		// exact same order as one Run call — the chunk boundaries only
		// bound how late a cancellation is noticed — so a run under a
		// cancellable context that is never canceled is bit-identical
		// (results, event counts, trace stamps) to one without.
		step := r.Until / 128
		if step <= 0 {
			step = r.Until
		}
		for at := step; ; at += step {
			if at > r.Until {
				at = r.Until
			}
			net.Engine.Run(at)
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("experiments: run interrupted at %v: %w", net.Engine.Now(), ErrCanceled)
			}
			if at == r.Until {
				break
			}
		}
		if r.DrainAll {
			net.Engine.Drain()
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("experiments: run interrupted during drain: %w", ErrCanceled)
			}
		}
	}
	if r.DrainAll {
		if r.Check {
			// FinalCheck subsumes CheckQuiesced and adds the end-of-run
			// accounting plus the wait-graph diagnosis for stuck packets.
			if verr := net.FinalCheck(); verr != nil {
				if v, ok := verr.(*check.Violation); ok {
					return fmt.Errorf("experiments: invariant violation:\n%s", v.Detail())
				}
				return verr
			}
			return nil
		}
		if err := net.CheckQuiesced(); err != nil {
			return err
		}
	}
	return nil
}

// CornerWorkload wraps traffic.Corner as a Run workload.
func CornerWorkload(number, hosts, msgSize int, scale float64) (func(traffic.Network) error, sim.Time, error) {
	c, err := traffic.Corner(number, hosts, msgSize, scale)
	if err != nil {
		return nil, 0, err
	}
	return c.Install, c.SimEnd, nil
}

// CelloWorkload wraps the cello trace model as a Run workload; the run
// horizon extends past generation so queued replies are observed.
func CelloWorkload(compression, scale float64) (func(traffic.Network) error, sim.Time) {
	c := traffic.DefaultCello(compression)
	c.Duration = sim.Time(float64(c.Duration) * scale)
	horizon := c.Duration + c.Duration/4
	return c.Install, horizon
}

// celloMutate configures the fabric for trace replays: the paper
// replays every trace record, so host-side admittance buffering is
// unbounded (the finite AdmitCap models open-loop synthetic sources
// and would drop bulk I/O replies policy-dependently).
func celloMutate(cfg *fabric.Config) { cfg.AdmitCap = 0 }
