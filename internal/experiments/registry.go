package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fabric"
)

// This file is the figure registry: every reproducible table and figure
// of the paper (plus the extensions) by ID. It used to live in the
// repro facade; it moved here so the sweep daemon (internal/server) can
// run figures by ID without importing the facade — the facade now
// delegates down.

type figureRunner func(o Options) ([]*Table, error)

var figureRunners = map[string]figureRunner{
	"table1": func(o Options) ([]*Table, error) {
		t, err := Table1()
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	},
	"2a": fig2Runner(1, 0),
	"2b": fig2Runner(2, 0),
	"2c": func(o Options) ([]*Table, error) {
		fig, err := Fig2(1, o)
		if err != nil {
			return nil, err
		}
		return []*Table{fig.Zoom(750, 1000, fabric.PolicyVOQnet, fabric.PolicyRECN)}, nil
	},
	"2d": func(o Options) ([]*Table, error) {
		fig, err := Fig2(2, o)
		if err != nil {
			return nil, err
		}
		return []*Table{fig.Zoom(750, 1000, fabric.PolicyVOQnet, fabric.PolicyRECN)}, nil
	},
	"3a":      fig3Runner(20),
	"3b":      fig3Runner(40),
	"4a":      fig4Runner(1),
	"4b":      fig4Runner(2),
	"5a":      fig5Runner(20),
	"5b":      fig5Runner(40),
	"6a":      fig6Runner(256),
	"6b":      fig6Runner(512),
	"pkt512a": fig2Runner(1, 512),
	"pkt512b": fig2Runner(2, 512),
	"a1": func(o Options) ([]*Table, error) {
		t, err := AblationSAQCount(o, nil)
		return []*Table{t}, err
	},
	"a2": func(o Options) ([]*Table, error) {
		t, err := AblationThreshold(o, nil)
		return []*Table{t}, err
	},
	"a3": func(o Options) ([]*Table, error) {
		t, err := AblationTokenBoost(o)
		return []*Table{t}, err
	},
	"a4": func(o Options) ([]*Table, error) {
		t, err := AblationMarkers(o)
		return []*Table{t}, err
	},
	"lat1": func(o Options) ([]*Table, error) {
		t, err := LatencyFig(1, o)
		return []*Table{t}, err
	},
	"lat2": func(o Options) ([]*Table, error) {
		t, err := LatencyFig(2, o)
		return []*Table{t}, err
	},
	"shootout": Shootout,
	"scaling": func(o Options) ([]*Table, error) {
		t, err := Scaling(4096, o)
		return []*Table{t}, err
	},
	"scaling1k": func(o Options) ([]*Table, error) {
		t, err := Scaling(1024, o)
		return []*Table{t}, err
	},
}

// figureRuns estimates, per figure ID, how many simulations Reproduce
// schedules under default options ("table1" builds traffic specs only
// and simulates nothing). Admission control in the sweep daemon sizes
// submissions with it; Options.Policies or custom ablation lists change
// the real count, so it is an estimate, not an invariant.
var figureRuns = map[string]int{
	"table1": 0,
	"2a":     5, "2b": 5, "2c": 5, "2d": 5,
	"3a": 4, "3b": 4,
	"4a": 1, "4b": 1,
	"5a": 1, "5b": 1,
	"6a": 3, "6b": 3,
	"pkt512a": 5, "pkt512b": 5,
	"a1": 5, "a2": 5, "a3": 2, "a4": 2,
	"lat1": 3, "lat2": 3,
	"shootout": 20,
	"scaling": 4, "scaling1k": 4,
}

func fig2Runner(corner, pktSize int) figureRunner {
	return func(o Options) ([]*Table, error) {
		if pktSize != 0 {
			o.PacketSize = pktSize
		}
		fig, err := Fig2(corner, o)
		if err != nil {
			return nil, err
		}
		return []*Table{fig.Table()}, nil
	}
}

func fig3Runner(cf float64) figureRunner {
	return func(o Options) ([]*Table, error) {
		fig, err := Fig3(cf, o)
		if err != nil {
			return nil, err
		}
		return []*Table{fig.Table()}, nil
	}
}

func fig4Runner(corner int) figureRunner {
	return func(o Options) ([]*Table, error) {
		fig, err := Fig4(corner, o)
		if err != nil {
			return nil, err
		}
		return []*Table{fig.Table()}, nil
	}
}

func fig5Runner(cf float64) figureRunner {
	return func(o Options) ([]*Table, error) {
		fig, err := Fig5(cf, o)
		if err != nil {
			return nil, err
		}
		return []*Table{fig.Table()}, nil
	}
}

func fig6Runner(hosts int) figureRunner {
	return func(o Options) ([]*Table, error) {
		tput, saq, err := Fig6(hosts, o)
		if err != nil {
			return nil, err
		}
		return []*Table{tput.Table(), saq.Table()}, nil
	}
}

// FigureIDs lists every reproducible experiment, in paper order.
func FigureIDs() []string {
	ids := make([]string, 0, len(figureRunners))
	for id := range figureRunners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// KnownFigure reports whether an ID names a reproducible experiment.
func KnownFigure(id string) bool {
	_, ok := figureRunners[strings.ToLower(id)]
	return ok
}

// EstimatedRuns returns how many simulations Reproduce(id) schedules
// under default options; false for unknown IDs.
func EstimatedRuns(id string) (int, bool) {
	n, ok := figureRuns[strings.ToLower(id)]
	return n, ok
}

// Reproduce regenerates one of the paper's tables or figures by ID
// ("table1", "2a"–"2d", "3a"/"3b", "4a"/"4b", "5a"/"5b", "6a"/"6b",
// "pkt512a"/"pkt512b", ablations "a1"–"a4", and the latency extension
// "lat1"/"lat2"). Options.Scale trades fidelity for speed; 1.0
// reproduces the paper's durations.
func Reproduce(id string, o Options) ([]*Table, error) {
	runner, ok := figureRunners[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("repro: unknown figure %q (have %s)", id, strings.Join(FigureIDs(), ", "))
	}
	return runner(o)
}
