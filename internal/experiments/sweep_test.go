package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// smallRun returns a fast corner-case-2 run with a cache key.
func smallRun(t *testing.T) Run {
	t.Helper()
	c, err := traffic.Corner(2, 64, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return Run{
		Hosts:    64,
		Policy:   fabric.PolicyRECN,
		Key:      "corner2|test",
		Workload: c.Install,
		Until:    c.SimEnd,
		Bin:      c.SimEnd / 40,
	}
}

func TestSpecHashStability(t *testing.T) {
	r := smallRun(t)
	if r.SpecHash() != r.SpecHash() {
		t.Fatal("SpecHash not stable")
	}
	// The hash depends only on the spec, not on the closures.
	q := r
	q.Workload = nil
	if r.SpecHash() != q.SpecHash() {
		t.Error("SpecHash depends on the Workload closure")
	}
	// Every declarative field participates.
	mutations := map[string]func(*Run){
		"Hosts":      func(r *Run) { r.Hosts = 256 },
		"Policy":     func(r *Run) { r.Policy = fabric.Policy1Q },
		"PacketSize": func(r *Run) { r.PacketSize = 512 },
		"Key":        func(r *Run) { r.Key = "corner2|saqs=1" },
		"Until":      func(r *Run) { r.Until++ },
		"Bin":        func(r *Run) { r.Bin++ },
		"DrainAll":   func(r *Run) { r.DrainAll = true },
		"FaultSpec":  func(r *Run) { r.FaultSpec = "seed=3,drop=token:1" },
		"Recovery":   func(r *Run) { r.Recovery.Enabled = true },
	}
	for name, mutate := range mutations {
		q := r
		mutate(&q)
		if q.SpecHash() == r.SpecHash() {
			t.Errorf("mutating %s does not change SpecHash", name)
		}
	}
}

func TestDerivedSeedStableAndNonNegative(t *testing.T) {
	r := smallRun(t)
	if s := r.DerivedSeed(); s < 0 || s != r.DerivedSeed() {
		t.Fatalf("DerivedSeed = %d (want stable, non-negative)", s)
	}
	q := r
	q.Policy = fabric.Policy1Q
	if q.DerivedSeed() == r.DerivedSeed() {
		t.Error("different specs share a derived seed")
	}
}

// A FaultSpec seed of "auto" resolves to the spec-derived seed, so the
// same spec always injects the same fault stream regardless of how the
// sweep schedules it.
func TestFaultSpecAutoSeed(t *testing.T) {
	r := smallRun(t)
	r.FaultSpec = "seed=auto,droprate=credit:0.2"
	r.DrainAll = true
	res1, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Faults == nil || res1.Faults.InjectedFaults() == 0 {
		t.Fatal("auto-seeded plan injected nothing")
	}
	if !reflect.DeepEqual(res1.Report(), res2.Report()) {
		t.Error("auto-seeded runs of the same spec diverged")
	}
}

func TestSweepRejectsNegativeParallelism(t *testing.T) {
	if _, err := Sweep(nil, Options{Parallelism: -1}); err == nil {
		t.Fatal("Sweep(Parallelism: -1) accepted")
	}
}

// Sweep returns the error of the lowest-indexed failing run, so error
// output is deterministic under any parallelism.
func TestSweepDeterministicError(t *testing.T) {
	runs := []Run{
		{Hosts: 63, Policy: fabric.PolicyRECN, Until: sim.Microsecond}, // bad host count
		{Hosts: 64, Policy: fabric.Policy1Q},                           // no horizon
	}
	for _, par := range []int{1, 2} {
		_, err := Sweep(runs, Options{Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d: bad runs accepted", par)
		}
		if !strings.Contains(err.Error(), "RECN run") {
			t.Errorf("parallelism %d: got index-nondeterministic error %q", par, err)
		}
	}
}

// The determinism contract extended to the parallel path: a cached run
// replays to the same stats.Report as a fresh simulation.
func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	run := smallRun(t)
	fresh, err := Sweep([]Run{run}, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cached, ok := cache.Load(run)
	if !ok {
		t.Fatal("run not cached after Sweep")
	}
	if !reflect.DeepEqual(fresh[0].Report(), cached.Report()) {
		t.Fatalf("cached report differs:\nfresh:  %+v\ncached: %+v", fresh[0].Report(), cached.Report())
	}
	if cached.Policy != run.Policy {
		t.Errorf("cached policy %v, want %v", cached.Policy, run.Policy)
	}
	// Prove the second Sweep is actually served from the cache: tamper
	// with the stored entry (keeping it structurally valid) and watch
	// the tampered value come back.
	tamperEntry(t, cache.path(run), func(rep *stats.Report) { rep.Injected = 424242 })
	again, err := Sweep([]Run{run}, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Injected != 424242 {
		t.Errorf("Sweep did not read the cache (Injected = %d)", again[0].Injected)
	}
	// NoCache bypasses it and re-simulates the true value.
	bypass, err := Sweep([]Run{run}, Options{CacheDir: dir, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if bypass[0].Injected != fresh[0].Injected {
		t.Errorf("NoCache run Injected = %d, want %d", bypass[0].Injected, fresh[0].Injected)
	}
}

// tamperEntry rewrites a cache entry's report in place, recomputing
// the checksum so the entry stays valid.
func tamperEntry(t *testing.T, path string, mutate func(*stats.Report)) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entry cacheEntry
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	var rep stats.Report
	if err := json.Unmarshal(entry.Report, &rep); err != nil {
		t.Fatal(err)
	}
	mutate(&rep)
	entry.Report, err = json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	entry.Sum = checksum(entry.Report)
	raw, err = json.Marshal(entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Mutating any field of the spec — including an ablation Mutate (via
// Key) and a fault plan — misses the cache.
func TestCacheMissesOnSpecChange(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := smallRun(t)
	res, err := base.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Store(base, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load(base); !ok {
		t.Fatal("stored run does not load")
	}
	mutants := map[string]Run{}
	for name, mutate := range map[string]func(*Run){
		"policy":      func(r *Run) { r.Policy = fabric.PolicyVOQsw },
		"hosts":       func(r *Run) { r.Hosts = 256 },
		"packet size": func(r *Run) { r.PacketSize = 512 },
		"horizon":     func(r *Run) { r.Until *= 2 },
		"bin":         func(r *Run) { r.Bin *= 2 },
		"drain":       func(r *Run) { r.DrainAll = true },
		"fault plan":  func(r *Run) { r.FaultSpec = "seed=9,droprate=token:0.1" },
		"recovery":    func(r *Run) { r.Recovery.Enabled = true },
		"mutate (ablation key)": func(r *Run) {
			r.Key = "corner2|saqs=1"
			r.Mutate = func(cfg *fabric.Config) { cfg.RECN.MaxSAQs = 1 }
		},
	} {
		q := base
		mutate(&q)
		mutants[name] = q
	}
	for name, q := range mutants {
		if _, ok := cache.Load(q); ok {
			t.Errorf("mutated spec (%s) hit the cache", name)
		}
	}
}

// Uncacheable runs — live fault plans, Observe callbacks, tracing,
// closures with no Key — are never stored or served.
func TestCacheSkipsUncacheableRuns(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := smallRun(t)
	res, err := base.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Run){
		"no key":  func(r *Run) { r.Key = "" },
		"observe": func(r *Run) { r.Observe = func(sim.Time, *pkt.Packet) {} },
	} {
		q := base
		mutate(&q)
		if err := cache.Store(q, res); err != nil {
			t.Fatalf("%s: Store errored: %v", name, err)
		}
		if _, ok := cache.Load(q); ok {
			t.Errorf("uncacheable run (%s) served from cache", name)
		}
	}
}

// Corrupt or truncated cache entries are detected and re-simulated,
// never trusted.
func TestCacheRejectsCorruptEntries(t *testing.T) {
	run := smallRun(t)
	fresh, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit flip":  func(b []byte) []byte { b[len(b)/2] ^= 0x20; return b },
		"empty":     func(b []byte) []byte { return nil },
		"garbage":   func(b []byte) []byte { return []byte("not json at all") },
	}
	for name, corrupt := range corruptions {
		dir := t.TempDir()
		cache, err := OpenRunCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := cache.Store(run, fresh); err != nil {
			t.Fatal(err)
		}
		path := cache.path(run)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := cache.Load(run); ok {
			t.Errorf("%s entry served from cache", name)
			continue
		}
		// The sweep transparently re-simulates and repairs the entry.
		res, err := Sweep([]Run{run}, Options{CacheDir: dir})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(res[0].Report(), fresh.Report()) {
			t.Errorf("%s: re-simulated report differs", name)
		}
		if _, ok := cache.Load(run); !ok {
			t.Errorf("%s: entry not repaired after re-simulation", name)
		}
	}
}

// A version bump must invalidate old entries wholesale.
func TestCacheRejectsOldVersions(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	run := smallRun(t)
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Store(run, res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cache.path(run))
	if err != nil {
		t.Fatal(err)
	}
	var entry cacheEntry
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	entry.Version = cacheVersion - 1
	raw, _ = json.Marshal(entry)
	if err := os.WriteFile(cache.path(run), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load(run); ok {
		t.Error("stale-version entry served from cache")
	}
}

func TestOpenRunCacheRejectsBadDirs(t *testing.T) {
	if _, err := OpenRunCache(""); err == nil {
		t.Error("empty cache dir accepted")
	}
	file := t.TempDir() + "/plain"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRunCache(file + "/sub"); err == nil {
		t.Error("cache dir under a regular file accepted")
	}
}

// The golden determinism contract: Figures 2–3 and Table 1 rendered
// with Parallelism 1 and 8 are byte-identical, and the per-policy
// series summaries match exactly.
func TestSweepParallelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	render := func(par int) string {
		o := Options{Scale: 0.05, MaxRows: 24, Parallelism: par}
		var sb strings.Builder
		var tables []*Table
		fig2, err := Fig2(2, o)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, fig2.Table())
		fig3, err := Fig3(20, o)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, fig3.Table())
		tab1, err := Table1()
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tab1)
		sb.WriteString(RenderTables(tables))
		for _, fig := range []*FigThroughput{fig2, fig3} {
			for i, p := range fig.Policies {
				fmt.Fprintf(&sb, "summary %s: %+v\n", p, stats.Summarize(fig.Results[i].Throughput))
			}
		}
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "Figure 2.b") || !strings.Contains(serial, "Figure 3") {
		t.Fatalf("rendered output incomplete:\n%s", serial)
	}
}

// Table 1 plus ablations through the public sweep entry points stay
// order-stable under parallelism too (ablation rows are reassembled in
// case order).
func TestAblationParallelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	render := func(par int) string {
		o := Options{Scale: 0.05, Parallelism: par}
		tab, err := AblationSAQCount(o, []int{1, 8})
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	if s1, s4 := render(1), render(4); s1 != s4 {
		t.Fatalf("ablation output differs:\n%s\nvs\n%s", s1, s4)
	}
}
