package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fabric"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// A run whose context is already canceled must not start at all.
func TestExecuteContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := smallRun(t).ExecuteContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Errorf("got a result from a canceled run")
	}
}

// Canceling mid-run interrupts at the next engine chunk: the Observe
// callback fires inside the simulation, so a cancel from the first
// delivered packet must be seen well before the horizon.
func TestExecuteContextInterruptsMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := smallRun(t)
	r.Observe = func(now sim.Time, _ *pkt.Packet) { cancel() }
	res, err := r.ExecuteContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Error("got a result from an interrupted run")
	}
}

// The cancellable execution path chunks the engine horizon; that must
// not change results. Same spec through Execute (one engine run) and
// ExecuteContext with a live-but-never-canceled context (chunked runs)
// must produce identical measurements.
func TestExecuteContextChunkingBitIdentical(t *testing.T) {
	r := smallRun(t)
	serial, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chunked, err := r.ExecuteContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Delivered != chunked.Delivered || serial.Injected != chunked.Injected || serial.Events != chunked.Events {
		t.Errorf("chunked run diverged: serial (inj %d, del %d, ev %d) vs chunked (inj %d, del %d, ev %d)",
			serial.Injected, serial.Delivered, serial.Events,
			chunked.Injected, chunked.Delivered, chunked.Events)
	}
}

// A canceled sweep returns ErrCanceled plus the partial results that
// completed before the cancellation.
func TestSweepContextCancelPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runs := []Run{smallRun(t), smallRun(t), smallRun(t)}
	runs[1].Key, runs[2].Key = "corner2|test2", "corner2|test3"
	o := Options{Parallelism: 1}
	o.OnRunDone = func(i int, _ Run, _ *Result, _ bool) {
		if i == 0 {
			cancel() // seen before run 1 starts
		}
	}
	results, err := SweepContext(ctx, runs, o)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if results[0] == nil {
		t.Error("run 0 completed before the cancel but its result is missing")
	}
	if results[1] != nil || results[2] != nil {
		t.Error("runs after the cancel still produced results")
	}
}

// Two identical cacheable runs in one parallel sweep must simulate
// exactly once: the duplicate single-flights on the shared cache and is
// served the stored result.
func TestSweepSingleFlightDuplicateSpec(t *testing.T) {
	cache, err := OpenRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := traffic.Corner(2, 64, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var simulated atomic.Int32
	mk := func() Run {
		return Run{
			Hosts:  64,
			Policy: fabric.PolicyRECN,
			Key:    "corner2|flight",
			Workload: func(n traffic.Network) error {
				simulated.Add(1)
				return c.Install(n)
			},
			Until: c.SimEnd,
			Bin:   c.SimEnd / 40,
		}
	}
	var cachedCount atomic.Int32
	o := Options{Parallelism: 2, Cache: cache}
	o.OnRunDone = func(_ int, _ Run, _ *Result, cached bool) {
		if cached {
			cachedCount.Add(1)
		}
	}
	results, err := Sweep([]Run{mk(), mk()}, o)
	if err != nil {
		t.Fatal(err)
	}
	if n := simulated.Load(); n != 1 {
		t.Errorf("duplicate spec simulated %d times, want 1", n)
	}
	if cachedCount.Load() != 1 {
		t.Errorf("cache served %d of the two runs, want 1", cachedCount.Load())
	}
	if results[0] == nil || results[1] == nil {
		t.Fatal("missing results")
	}
	if results[0].Delivered != results[1].Delivered {
		t.Errorf("leader and follower disagree: %d vs %d delivered", results[0].Delivered, results[1].Delivered)
	}
}

// Two goroutines storing the same spec concurrently must never corrupt
// the entry or leave stray temp files: each write uses its own temp
// name and renames atomically, and a valid existing entry is kept.
func TestRunCacheConcurrentStoreSameSpec(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := smallRun(t)
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := cache.Store(r, res); err != nil {
					t.Errorf("Store: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if _, ok := cache.Load(r); !ok {
		t.Fatal("entry invalid after concurrent stores")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(entries) != 1 {
		t.Errorf("cache dir holds %v, want exactly the one entry", names)
	}
	if want := filepath.Base(cache.path(r)); len(entries) == 1 && entries[0].Name() != want {
		t.Errorf("cache dir holds %q, want %q", entries[0].Name(), want)
	}
}

// Latency figures need the serial per-packet Observe path; asking for
// shards must fail up front with an explanation, not quietly ignore
// the flag (its pre-context behavior).
func TestLatencyFigRejectsShards(t *testing.T) {
	_, err := LatencyFig(1, Options{Scale: 0.01, Shards: 2})
	if err == nil {
		t.Fatal("LatencyFig accepted Shards=2")
	}
	if !strings.Contains(err.Error(), "shards") {
		t.Errorf("error %q does not mention shards", err)
	}
}
