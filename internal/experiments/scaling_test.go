package experiments

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fabric"
)

// reportSansMem executes a run and returns its report as canonical
// JSON with the memory accounting stripped: lazy and eager runs are
// bit-identical in everything except how much state they materialize.
func reportSansMem(t *testing.T, r Run) string {
	t.Helper()
	res, err := r.Execute()
	if err != nil {
		t.Fatalf("eager=%v topo=%q: %v", r.EagerState, r.Topo, err)
	}
	rep := res.Report()
	rep.Mem = nil
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The central tentpole contract: lazy materialization is invisible.
// The same checked, fully drained hotspot run — on the MIN and on the
// fat tree, under the policy with the most lazy state (VOQnet) and
// under RECN (lazy CAM controllers) — must report bit-identically with
// EagerState on and off.
func TestLazyEagerRunBitIdentity(t *testing.T) {
	workload, until, err := CornerWorkload(2, 64, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []string{"", "fattree"} {
		for _, p := range []fabric.Policy{fabric.PolicyVOQnet, fabric.PolicyRECN} {
			r := Run{
				Hosts: 64, Policy: p, Topo: topo, Key: "lazy-eager-identity",
				Workload: workload, Until: until, DrainAll: true, Check: true,
			}
			lazy := reportSansMem(t, r)
			r.EagerState = true
			eager := reportSansMem(t, r)
			if lazy != eager {
				t.Errorf("topo=%q policy=%s: lazy and eager reports differ", topo, p)
			}
		}
	}
}

// Rendered-figure form of the same contract: a real figure pipeline
// (sweep, binning, table formatting) emits identical bytes either way.
func TestLazyEagerFigureBitIdentity(t *testing.T) {
	o := Options{
		Scale:    0.02,
		Policies: []fabric.Policy{fabric.PolicyVOQnet, fabric.PolicyRECN},
	}
	figLazy, err := Fig2(1, o)
	if err != nil {
		t.Fatal(err)
	}
	o.EagerState = true
	figEager, err := Fig2(1, o)
	if err != nil {
		t.Fatal(err)
	}
	if figLazy.Table().String() != figEager.Table().String() {
		t.Error("fig2 rendered bytes differ between lazy and eager state")
	}
}

// The fat-tree hotspot must drain to empty under the full invariant
// checker (deadlock/livelock detection included) for every policy the
// scaling figure compares — the up*/down* deadlock-freedom argument,
// checked rather than assumed.
func TestFatTreeHotspotDrainsAllPolicies(t *testing.T) {
	o := Options{Scale: 0.02}.withDefaults()
	c, err := scalingWorkload(64, 64, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range scalingPolicies {
		r := Run{
			Hosts: 64, Policy: p, Topo: "fattree", Key: "fattree-drain",
			Workload: c.Install, Until: c.SimEnd, DrainAll: true, Check: true,
		}
		res, err := r.Execute()
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if res.Delivered == 0 || res.Injected != res.Delivered {
			t.Errorf("%s: injected %d, delivered %d", p, res.Injected, res.Delivered)
		}
	}
}

// The scaling figure itself at test size: four policies, populated
// memory columns, and a lazy/eager ratio below 1 for the O(hosts)
// policy (the figure's whole point).
func TestScalingFigureSmoke(t *testing.T) {
	tb, err := Scaling(64, Options{Scale: 0.02, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(scalingPolicies) {
		t.Fatalf("scaling table has %d rows, want %d", len(tb.Rows), len(scalingPolicies))
	}
	if !strings.Contains(tb.Title, "fattree") {
		t.Errorf("scaling title %q does not name the default fat-tree topology", tb.Title)
	}
	col := map[string]int{}
	for i, h := range tb.Header {
		col[h] = i
	}
	for _, row := range tb.Rows {
		if row[col["state_KB"]] == "n/a" {
			t.Errorf("%s: state_KB column empty", row[0])
		}
		if row[0] == fabric.PolicyVOQnet.String() {
			ratio, err := strconv.ParseFloat(row[col["lazy/eager"]], 64)
			if err != nil {
				t.Fatalf("VOQnet lazy/eager %q: %v", row[col["lazy/eager"]], err)
			}
			if ratio >= 1 {
				t.Errorf("VOQnet lazy/eager ratio %.3f shows no lazy win", ratio)
			}
		}
	}
}

// Acceptance proxy for the 4k figure at test scale: a 256-host fat-tree
// VOQnet hotspot must materialize at most 25% of the eager per-port
// state (the ISSUE's bytes/port budget, asserted where CI can afford to
// run it).
func TestLazyStateWinUnderHotspot(t *testing.T) {
	o := Options{Scale: 0.02}.withDefaults()
	c, err := scalingWorkload(256, 64, o)
	if err != nil {
		t.Fatal(err)
	}
	r := Run{
		Hosts: 256, Policy: fabric.PolicyVOQnet, Topo: "fattree",
		Key: "lazy-win", Workload: c.Install, Until: c.SimEnd,
	}
	res, err := r.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem == nil {
		t.Fatal("run result carries no memory accounting")
	}
	eager, err := r.EagerMemModel()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Mem.StateBytes) / float64(eager.StateBytes)
	if ratio > 0.25 {
		t.Errorf("hotspot VOQnet materialized %.1f%% of eager state (want ≤ 25%%): %d of %d bytes",
			100*ratio, res.Mem.StateBytes, eager.StateBytes)
	}
	if res.Mem.BytesPerPort() <= 0 || eager.BytesPerPort() <= res.Mem.BytesPerPort() {
		t.Errorf("bytes/port not improved: lazy %.0f, eager %.0f", res.Mem.BytesPerPort(), eager.BytesPerPort())
	}
}
