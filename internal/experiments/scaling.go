package experiments

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/traffic"
)

// This file is the memory-scaling figure the slab/lazy fabric exists
// for: RECN against 1Q, VOQsw and VOQnet on fat trees far beyond the
// paper's 512 hosts, reporting throughput and tail latency alongside
// the materialized control-state footprint and its ratio to the fully
// preallocated (eager) model. The memory columns come from the
// deterministic byte model (fabric.MemStats / EagerMemModel), so the
// table is bit-identical at any shard count; real process RSS is the
// benchmark harness's job (BENCH_PR11.json), not the figure's.

// scalingPolicies is the comparison set: the paper's best case
// (VOQnet), worst case (1Q), the practical middle (VOQsw) and RECN.
var scalingPolicies = []fabric.Policy{
	fabric.PolicyVOQnet, fabric.Policy1Q, fabric.PolicyVOQsw, fabric.PolicyRECN,
}

// scalingWorkload is the large-network hotspot: a strided subset of
// hosts sweeps background traffic at 10% load for the whole run, and a
// second disjoint strided subset hammers one destination between 100 µs
// and 400 µs (paper-time; Options.Scale compresses). The stride keeps
// both groups spread across every leaf switch, so the congestion tree
// overlaps the background traffic the way the paper's corner cases do.
func scalingWorkload(hosts, msgSize int, o Options) (traffic.CornerCase, error) {
	if hosts < 16 {
		return traffic.CornerCase{}, fmt.Errorf("experiments: scaling workload wants ≥16 hosts, got %d", hosts)
	}
	nSrc := 128
	if hosts < 4*nSrc {
		nSrc = hosts / 4
	}
	stride := hosts / nSrc
	var random, hot []int
	for h := 0; h < hosts; h++ {
		switch h % stride {
		case 0:
			if h != hosts/2 {
				random = append(random, h)
			}
		case stride - 1:
			hot = append(hot, h)
		}
	}
	return traffic.CornerCase{
		Name:          fmt.Sprintf("scaling-hotspot-%d", hosts),
		Hosts:         hosts,
		RandomSources: random,
		RandomRate:    0.1,
		HotSources:    hot,
		HotDest:       hosts / 2,
		HotStart:      o.t(100),
		HotEnd:        o.t(400),
		SimEnd:        o.t(600),
		MsgSize:       msgSize,
		Seed:          7,
	}, nil
}

// scalingKey names the workload closure for the run cache; the host
// count and horizon are already part of the spec key.
func scalingKey() string { return "scaling|v1|seed=7" }

// ScalingRun assembles the scaling figure's run for one policy at one
// network size. The benchmark harness executes it directly — outside
// the figure pipeline — to time fabric construction and measure raw
// event rates with the exact workload the figure uses.
func ScalingRun(hosts int, p fabric.Policy, o Options) (Run, error) {
	o = o.withDefaults()
	if o.Topo == "" {
		o.Topo = "fattree"
	}
	c, err := scalingWorkload(hosts, o.PacketSize, o)
	if err != nil {
		return Run{}, err
	}
	return Run{
		Hosts: hosts, Policy: p, PacketSize: o.PacketSize, Topo: o.Topo,
		Key: scalingKey(), Workload: c.Install, Until: c.SimEnd,
	}, nil
}

// Config exposes the run's resolved fabric configuration (buildConfig
// without the tunable-spec layering), so harnesses can time fabric
// construction for exactly the network a run would simulate.
func (r Run) Config() (fabric.Config, error) { return r.buildConfig() }

// Scaling runs the memory-scaling comparison at one network size and
// renders the table. The topology defaults to the adaptive fat tree
// (Options.Topo overrides).
func Scaling(hosts int, o Options) (*Table, error) {
	o = o.withDefaults()
	if o.Topo == "" {
		o.Topo = "fattree"
	}
	policies := o.Policies
	if policies == nil {
		policies = scalingPolicies
	}
	c, err := scalingWorkload(hosts, o.PacketSize, o)
	if err != nil {
		return nil, err
	}
	results, bin, err := runPolicies(hosts, policies, o, scalingKey(), c.Install, c.SimEnd, nil)
	if err != nil {
		return nil, err
	}
	mode := "lazy"
	if o.EagerState {
		mode = "eager"
	}
	t := &Table{
		Title: fmt.Sprintf("Scaling: %d hosts, %s topology, %d-byte packets (%s state)",
			hosts, o.Topo, o.PacketSize, mode),
		Header: []string{"policy", "tput_hot_B/ns", "tput_after_B/ns", "p99_lat_us",
			"state_KB", "B/port", "eager_B/port", "lazy/eager"},
	}
	for i, p := range policies {
		res := results[i]
		window := func(fromUs, toUs float64) float64 {
			from := int(o.t(fromUs) / bin)
			to := int(o.t(toUs) / bin)
			return res.Throughput.MeanRate(from, to)
		}
		eager, err := Run{Hosts: hosts, Policy: p, PacketSize: o.PacketSize, Topo: o.Topo}.EagerMemModel()
		if err != nil {
			return nil, err
		}
		stateKB, perPort, ratio := "n/a", "n/a", "n/a"
		if m := res.Mem; m != nil {
			stateKB = fmt.Sprintf("%.1f", float64(m.StateBytes)/1024)
			perPort = fmt.Sprintf("%.0f", m.BytesPerPort())
			if eager.StateBytes > 0 {
				ratio = fmt.Sprintf("%.3f", float64(m.StateBytes)/float64(eager.StateBytes))
			}
		}
		t.AddRow(p.String(), window(150, 400), window(450, 600),
			fmt.Sprintf("%.1f", res.Latency.Quantile(0.99).Micros()),
			stateKB, perPort, fmt.Sprintf("%.0f", eager.BytesPerPort()), ratio)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("hotspot: %d sources → host %d during %v–%v; %d background sources at 10%%",
			len(c.HotSources), c.HotDest, c.HotStart, c.HotEnd, len(c.RandomSources)),
		"state columns are the modeled materialized control state (deterministic); eager_B/port is the analytic fully-preallocated model",
	)
	return t, nil
}
