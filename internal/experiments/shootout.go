package experiments

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/throttle"
	"repro/internal/traffic"
)

// shootoutPolicies is the default head-to-head lineup: the baseline
// with no congestion management, the paper's mechanism, and the two
// challengers (end-to-end injection throttling and adaptive-routing
// notifications).
var shootoutPolicies = []fabric.Policy{
	fabric.Policy1Q,
	fabric.PolicyRECN,
	fabric.PolicyThrottle,
	fabric.PolicyARN,
}

// shootoutScenario is one workload in the shoot-out battery.
type shootoutScenario struct {
	key      string // run-cache key component (stable across releases)
	name     string // table row label
	workload func(traffic.Network) error
	until    sim.Time
	faults   string // overrides Options.FaultSpec when non-empty
}

// shootoutFaultSpec builds the compound fault plan for the final
// scenario: lossy notification and credit channels plus a mid-hotspot
// link flap on a leaf switch's up port. Times are scale-adjusted so the
// flap always lands inside the hotspot window; seed=auto derives the
// per-run seed from the run spec, keeping the plan identical across
// -shards and -j settings.
func shootoutFaultSpec(o Options) string {
	return fmt.Sprintf("seed=auto,droprate=notify:0.02,droprate=credit:0.002,flap=0:4:%v:%v",
		o.t(850), o.t(920))
}

// hotDegreeCase builds a corner-case-2 variant with a custom hotspot
// degree: full-rate background from every non-hot host plus `degree`
// hot sources scattered one-per-stride across the leaves (the same
// scatter traffic.Corner uses, so every leaf up-link carries both hot
// and background flows). Degree is how many sources gang up on the hot
// destination — the knob that separates mechanisms that attack the
// congestion tree (RECN, arn) from ones that attack the sources
// (throttle).
func hotDegreeCase(hosts, degree, msgSize int, scale float64) (traffic.CornerCase, error) {
	if degree <= 0 || degree >= hosts || hosts%degree != 0 {
		return traffic.CornerCase{}, fmt.Errorf("experiments: hot degree %d must divide %d hosts", degree, hosts)
	}
	t := func(us float64) sim.Time { return sim.Time(us * scale * float64(sim.Microsecond)) }
	var random, hot []int
	stride := hosts / degree
	for h := 0; h < hosts; h++ {
		if h%stride == stride-1 {
			hot = append(hot, h)
		} else {
			random = append(random, h)
		}
	}
	return traffic.CornerCase{
		Name:          fmt.Sprintf("hot-spot degree %d (%d hosts)", degree, hosts),
		Hosts:         hosts,
		RandomSources: random,
		RandomRate:    1.0,
		HotSources:    hot,
		HotDest:       32,
		HotStart:      t(800),
		HotEnd:        t(970),
		SimEnd:        t(1600),
		MsgSize:       msgSize,
		Seed:          1,
	}, nil
}

// ValidatePolicyOptions resolves a policy-name list and the throttle /
// arn tunable specs up front, so the CLIs and the daemon can reject a
// bad request with a structured error before any simulation starts.
// Empty names return the nil slice (caller applies its default lineup);
// empty specs are valid (package defaults).
func ValidatePolicyOptions(names []string, throttleSpec, arnSpec string) ([]fabric.Policy, error) {
	var policies []fabric.Policy
	for _, name := range names {
		p, err := fabric.ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		policies = append(policies, p)
	}
	if throttleSpec != "" {
		if _, err := throttle.ParseSpec(throttleSpec); err != nil {
			return nil, fmt.Errorf("experiments: throttle spec: %w", err)
		}
	}
	if arnSpec != "" {
		if _, err := fabric.ParseARNSpec(arnSpec); err != nil {
			return nil, fmt.Errorf("experiments: arn spec: %w", err)
		}
	}
	return policies, nil
}

// Shootout runs the cross-policy comparison battery: both paper corner
// cases, two hot-spot-degree variants (a narrow tree and a wide one),
// and corner case 2 under a compound fault plan. Every cell comes from
// shard-invariant data (delivered counts, barrier-consistent window
// rates, latency quantiles), so the rendered table is byte-identical
// across -shards and -j settings.
func Shootout(o Options) ([]*Table, error) {
	o = o.withDefaults()
	policies := o.Policies
	if policies == nil {
		policies = shootoutPolicies
	}
	scenarios, err := shootoutScenarios(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Shoot-out: congestion-management policies head to head (64 hosts)",
		Header: []string{
			"scenario", "policy", "delivered",
			"hot_B/ns", "post_B/ns", "p99_us", "reorder",
		},
	}
	for _, sc := range scenarios {
		so := o
		so.FaultSpec = sc.faults
		results, bin, err := runPolicies(64, policies, so, sc.key, sc.workload, sc.until, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: shootout %s: %w", sc.key, err)
		}
		// The hotspot is active in [800, 970) paper-µs and the run ends
		// at 1600; the post window shows how fast each policy restores
		// full throughput after the tree drains.
		hotFrom, hotTo := int(o.t(800)/bin), int(o.t(970)/bin)
		postTo := int(o.t(1600) / bin)
		for i, p := range policies {
			r := results[i]
			t.AddRow(
				sc.name, p.String(), r.Delivered,
				r.Throughput.MeanRate(hotFrom, hotTo),
				r.Throughput.MeanRate(hotTo, postTo),
				r.Latency.Quantile(0.99).Micros(),
				r.OrderViolations,
			)
			if fr := r.Faults; fr != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("faults[%s/%s]: %s", sc.key, p, fr))
			}
		}
	}
	t.Notes = append(t.Notes,
		"hot window 800-970 paper-us (scale-adjusted); post window 970-1600",
		"reorder counts out-of-order deliveries: arn trades packet order for path diversity",
	)
	return []*Table{t}, nil
}

func shootoutScenarios(o Options) ([]shootoutScenario, error) {
	var scenarios []shootoutScenario
	for _, corner := range []int{1, 2} {
		workload, until, err := CornerWorkload(corner, 64, o.PacketSize, o.Scale)
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, shootoutScenario{
			key:      cornerKey(corner),
			name:     fmt.Sprintf("corner%d", corner),
			workload: workload,
			until:    until,
			faults:   o.FaultSpec,
		})
	}
	for _, degree := range []int{8, 32} {
		c, err := hotDegreeCase(64, degree, o.PacketSize, o.Scale)
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, shootoutScenario{
			key:      fmt.Sprintf("hotdeg%d", degree),
			name:     fmt.Sprintf("hot-degree %d", degree),
			workload: c.Install,
			until:    c.SimEnd,
			faults:   o.FaultSpec,
		})
	}
	workload, until, err := CornerWorkload(2, 64, o.PacketSize, o.Scale)
	if err != nil {
		return nil, err
	}
	scenarios = append(scenarios, shootoutScenario{
		key:      cornerKey(2) + "|compound-faults",
		name:     "corner2+faults",
		workload: workload,
		until:    until,
		faults:   shootoutFaultSpec(o),
	})
	return scenarios, nil
}
