package experiments

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// quick options: heavily scaled-down runs that still let a congestion
// tree form (detection takes ~10 µs, so the 170 µs window needs
// scale ≥ ~0.2 to show the paper's shape).
func quickOpts() Options {
	return Options{Scale: 0.25, MaxRows: 20}
}

func TestTable1(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"48", "16", "random", "32", "50%", "100%", "800"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
	if len(tab.Rows) != 4 {
		t.Errorf("Table 1 has %d rows, want 4", len(tab.Rows))
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := (Run{Hosts: 64, Policy: fabric.PolicyRECN}).Execute(); err == nil {
		t.Error("Run without horizon accepted")
	}
	if _, err := (Run{Hosts: 63, Policy: fabric.PolicyRECN, Until: sim.Microsecond}).Execute(); err == nil {
		t.Error("Run with bad host count accepted")
	}
}

func TestRunDrainAllChecksInvariants(t *testing.T) {
	c, err := traffic.Corner(2, 64, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run{
		Hosts:    64,
		Policy:   fabric.PolicyRECN,
		Workload: c.Install,
		Until:    c.SimEnd,
		DrainAll: true,
	}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 || res.Injected != res.Delivered {
		t.Fatalf("injected %d, delivered %d", res.Injected, res.Delivered)
	}
	if res.OrderViolations != 0 {
		t.Fatalf("order violations: %d", res.OrderViolations)
	}
	if res.Latency.Count() != res.Delivered {
		t.Fatalf("latency count %d != delivered %d", res.Latency.Count(), res.Delivered)
	}
}

// The headline result (Figure 2): during the congestion tree, 1Q loses
// a large fraction of its throughput while RECN stays close to VOQnet.
func TestFig2Corner2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := quickOpts()
	o.Policies = []fabric.Policy{fabric.PolicyVOQnet, fabric.Policy1Q, fabric.PolicyRECN}
	fig, err := Fig2(2, o)
	if err != nil {
		t.Fatal(err)
	}
	// Window well inside the congestion tree (paper time 850–960 µs).
	voqnet := fig.MeanWindow(fabric.PolicyVOQnet, 850, 960)
	oneQ := fig.MeanWindow(fabric.Policy1Q, 850, 960)
	recn := fig.MeanWindow(fabric.PolicyRECN, 850, 960)
	if voqnet < 40 {
		t.Fatalf("VOQnet during tree = %.1f B/ns, want ≈44 (model broken)", voqnet)
	}
	if oneQ > 0.93*voqnet {
		t.Errorf("1Q during tree = %.1f vs VOQnet %.1f: no HOL collapse", oneQ, voqnet)
	}
	if recn < 0.90*voqnet {
		t.Errorf("RECN during tree = %.1f vs VOQnet %.1f: should stay close", recn, voqnet)
	}
	if recn < oneQ {
		t.Errorf("RECN (%.1f) below 1Q (%.1f) during the tree", recn, oneQ)
	}
	// Before the tree all mechanisms are equal.
	pre1, pre2 := fig.MeanWindow(fabric.Policy1Q, 200, 780), fig.MeanWindow(fabric.PolicyRECN, 200, 780)
	if pre1 < 40 || pre2 < 40 {
		t.Errorf("pre-congestion throughput off: 1Q=%.1f RECN=%.1f", pre1, pre2)
	}
	// Table rendering sanity.
	tab := fig.Table()
	if len(tab.Rows) == 0 || len(tab.Header) != 4 {
		t.Fatalf("bad table: %d rows, header %v", len(tab.Rows), tab.Header)
	}
	zoom := fig.Zoom(750, 1000, fabric.PolicyVOQnet, fabric.PolicyRECN)
	if len(zoom.Header) != 3 {
		t.Fatalf("zoom header %v", zoom.Header)
	}
}

// Figure 4: SAQs are allocated during the tree, respect the per-port
// limit, and the totals match the paper's order of magnitude.
func TestFig4SAQUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	fig, err := Fig4(2, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	peak := fig.Result.SAQ.Peak()
	if peak.Total == 0 {
		t.Fatal("no SAQs ever allocated under the hotspot")
	}
	if peak.MaxIngress > 8 || peak.MaxEgress > 8 {
		t.Fatalf("per-port SAQ peak %d/%d exceeds the 8 provisioned", peak.MaxIngress, peak.MaxEgress)
	}
	// The paper reports ≈170 total SAQs for the corner cases; allow a
	// generous band for the scaled-down run.
	if peak.Total > 400 {
		t.Errorf("total SAQ peak %d far above the paper's ≈170", peak.Total)
	}
	tab := fig.Table()
	if len(tab.Rows) == 0 {
		t.Fatal("empty Fig4 table")
	}
}

// Figure 3 (cello traces): RECN keeps delivering at least as much as 1Q
// and stays within range of VOQnet.
func TestFig3TraceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := quickOpts()
	o.Scale = 0.5
	o.Policies = []fabric.Policy{fabric.PolicyVOQnet, fabric.PolicyRECN}
	fig, err := Fig3(40, o)
	if err != nil {
		t.Fatal(err)
	}
	voqnet := fig.Result(fabric.PolicyVOQnet).Throughput.Total()
	recn := fig.Result(fabric.PolicyRECN).Throughput.Total()
	if voqnet == 0 {
		t.Fatal("cello run delivered nothing")
	}
	if float64(recn) < 0.85*float64(voqnet) {
		t.Errorf("RECN delivered %d vs VOQnet %d on traces", recn, voqnet)
	}
}

func TestFig6Validation(t *testing.T) {
	if _, _, err := Fig6(100, quickOpts()); err == nil {
		t.Error("Fig6 with 100 hosts accepted")
	}
}

func TestAblationMarkersShowsReordering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := quickOpts()
	tab, err := AblationMarkers(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("ablation rows: %d", len(tab.Rows))
	}
	// Row 0 = markers on: zero violations. Row 1 = off: violations
	// appear (that is what the markers are for).
	if tab.Rows[0][5] != "0" {
		t.Errorf("markers on: order violations %s", tab.Rows[0][5])
	}
	if tab.Rows[1][5] == "0" {
		t.Errorf("markers off: expected order violations, table:\n%s", tab)
	}
}

func TestAblationSAQCountMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	o := quickOpts()
	tab, err := AblationSAQCount(o, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "bb"}, Notes: []string{"note"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("xyz", 3)
	s := tab.String()
	if !strings.Contains(s, "== t ==") || !strings.Contains(s, "2.50") {
		t.Errorf("table:\n%s", s)
	}
	if stride(100, 10) != 10 || stride(5, 10) != 1 || stride(7, 0) != 1 {
		t.Error("stride math")
	}
	var csvOut strings.Builder
	if err := tab.FprintCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	got := csvOut.String()
	for _, want := range []string{"a,bb\n", "1,2.50\n", "xyz,3\n", "# note\n"} {
		if !strings.Contains(got, want) {
			t.Errorf("csv missing %q:\n%s", want, got)
		}
	}
}
