package experiments

// Determinism regression for the event scheduler: the exact dispatch
// order of the simulator is part of the reproduction contract (the
// serial-vs-parallel sweep goldens, the trace (time, seq) stamps and
// the run cache all assume it is stable). These tests pin the first N
// (time, scheduling-sequence) dispatch pairs and a checksum of the
// final run statistics for the Figure 2 and Figure 3 seed workloads
// against goldens captured from the pre-rewrite container/heap
// scheduler, so any replacement heap must reproduce its order
// bit-identically.
//
// Regenerate with UPDATE_DISPATCH_GOLDEN=1 go test -run DispatchGolden
// ./internal/experiments (only legitimate when the model itself — not
// the scheduler — changes event order).

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// dispatchGolden is the serialized capture of one pinned run.
type dispatchGolden struct {
	// Pairs holds the first maxDispatchPairs dispatched events as
	// (simulation time in ps, scheduling sequence) pairs.
	Pairs [][2]int64 `json:"pairs"`
	// Executed / FinalNow / Injected / Delivered / DeliveredBytes
	// summarize the completed run.
	Executed       uint64 `json:"executed"`
	FinalNow       int64  `json:"final_now_ps"`
	Injected       uint64 `json:"injected_packets"`
	Delivered      uint64 `json:"delivered_packets"`
	DeliveredBytes uint64 `json:"delivered_bytes"`
	// Checksum is an FNV-64a hash over all of the above, including
	// every captured pair.
	Checksum string `json:"checksum"`
}

const maxDispatchPairs = 5000

func (g *dispatchGolden) seal() {
	h := fnv.New64a()
	for _, p := range g.Pairs {
		fmt.Fprintf(h, "%d:%d;", p[0], p[1])
	}
	fmt.Fprintf(h, "%d|%d|%d|%d|%d", g.Executed, g.FinalNow, g.Injected, g.Delivered, g.DeliveredBytes)
	g.Checksum = fmt.Sprintf("%016x", h.Sum64())
}

// captureDispatch mirrors Run.Execute's network construction with a
// dispatch probe attached, running the workload to the horizon.
func captureDispatch(t *testing.T, policy fabric.Policy, mutate func(*fabric.Config),
	workload func(traffic.Network) error, until sim.Time) *dispatchGolden {
	t.Helper()
	topo, err := topology.ForHosts(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabric.DefaultConfig(topo)
	cfg.Policy = policy
	if mutate != nil {
		mutate(&cfg)
	}
	net, err := fabric.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := &dispatchGolden{}
	net.Engine.SetDispatchProbe(func(at sim.Time, seq uint64) {
		if len(g.Pairs) < maxDispatchPairs {
			g.Pairs = append(g.Pairs, [2]int64{int64(at), int64(seq)})
		}
	})
	var injectErr error
	if err := workload(netAdapter{n: net, err: &injectErr}); err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(until)
	if injectErr != nil {
		t.Fatal(injectErr)
	}
	g.Executed = net.Engine.Executed
	g.FinalNow = int64(net.Engine.Now())
	g.Injected = net.InjectedPackets
	g.Delivered = net.DeliveredPackets
	g.DeliveredBytes = net.DeliveredBytes
	g.seal()
	return g
}

func checkDispatchGolden(t *testing.T, name string, got *dispatchGolden) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_DISPATCH_GOLDEN") != "" {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d pairs, checksum %s)", path, len(got.Pairs), got.Checksum)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with UPDATE_DISPATCH_GOLDEN=1): %v", path, err)
	}
	var want dispatchGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got.Checksum != want.Checksum {
		// Find the first diverging pair for a useful failure message.
		n := len(want.Pairs)
		if len(got.Pairs) < n {
			n = len(got.Pairs)
		}
		for i := 0; i < n; i++ {
			if got.Pairs[i] != want.Pairs[i] {
				t.Fatalf("dispatch order diverged at event %d: got (t=%d, seq=%d), want (t=%d, seq=%d)",
					i, got.Pairs[i][0], got.Pairs[i][1], want.Pairs[i][0], want.Pairs[i][1])
			}
		}
		t.Fatalf("dispatch checksum %s != golden %s (pairs identical through %d; executed %d vs %d, delivered %d vs %d)",
			got.Checksum, want.Checksum, n, got.Executed, want.Executed, got.Delivered, want.Delivered)
	}
}

// TestDispatchGoldenFig2 pins the scheduler's dispatch order on the
// Figure 2 corner-case-1 seed under RECN.
func TestDispatchGoldenFig2(t *testing.T) {
	workload, until, err := CornerWorkload(1, 64, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got := captureDispatch(t, fabric.PolicyRECN, nil, workload, until)
	checkDispatchGolden(t, "dispatch_fig2.json", got)
}

// TestDispatchGoldenFig3 pins the dispatch order on the Figure 3 SAN
// trace seed (cello model, compression 20) under RECN.
func TestDispatchGoldenFig3(t *testing.T) {
	workload, until := CelloWorkload(20, 0.25)
	got := captureDispatch(t, fabric.PolicyRECN, celloMutate, workload, until)
	checkDispatchGolden(t, "dispatch_fig3.json", got)
}
