package experiments

// Tests for the policy shoot-out battery: the new policies must honor
// the same determinism contract as the originals (bit-identical tables
// across shard counts and worker counts), their dispatch order is
// pinned against goldens, and the shared policy-options validator is
// fuzzed as the single parsing surface behind recnsim, recnsweep and
// the sweep daemon.

import (
	"strings"
	"testing"

	"repro/internal/fabric"
)

// TestShootoutPolicyShardIdentity: a corner-case-2 run under each new
// policy, drained to empty under the invariant checker, reports
// identically at shard counts 1, 2 and 4. Scale 0.05 is large enough
// that both mechanisms demonstrably engage (throttle sources take CNPs,
// arn ports raise hints) — determinism of an idle mechanism would prove
// nothing.
func TestShootoutPolicyShardIdentity(t *testing.T) {
	for _, policy := range []fabric.Policy{fabric.PolicyThrottle, fabric.PolicyARN} {
		t.Run(policy.String(), func(t *testing.T) {
			workload, until, err := CornerWorkload(2, 64, 64, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			base := ""
			for _, k := range []int{1, 2, 4} {
				r := Run{
					Hosts: 64, Policy: policy, Key: "shootout-shard-" + policy.String(),
					Workload: workload, Until: until, Shards: k,
					DrainAll: true, Check: true,
				}
				rep := shardReport(t, r)
				if base == "" {
					base = rep
				} else if rep != base {
					t.Fatalf("shards=%d report differs from shards=1", k)
				}
			}
		})
	}
}

// TestShootoutFigureIdentity renders the full shoot-out table at shard
// counts 1 and 4 and at 1 vs 8 sweep workers: all four byte streams
// must be identical (sharding changes results deterministically versus
// serial, so the serial table is a separate fixture, not compared
// here).
func TestShootoutFigureIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("20-run figure reproduction")
	}
	base := ""
	for _, c := range []struct{ shards, j int }{{1, 1}, {1, 8}, {4, 1}, {4, 8}} {
		o := Options{Scale: 0.02, Shards: c.shards, Parallelism: c.j}
		tables, err := Shootout(o)
		if err != nil {
			t.Fatalf("shards=%d j=%d: %v", c.shards, c.j, err)
		}
		if len(tables) != 1 {
			t.Fatalf("want 1 table, got %d", len(tables))
		}
		got := tables[0].String()
		if base == "" {
			base = got
		} else if got != base {
			t.Fatalf("shootout table bytes differ at shards=%d j=%d", c.shards, c.j)
		}
	}
	for _, policy := range []string{"1Q", "RECN", "throttle", "arn"} {
		if !strings.Contains(base, policy) {
			t.Fatalf("shootout table missing policy %q:\n%s", policy, base)
		}
	}
}

// TestDispatchGoldenThrottle / ...ARN pin the serial dispatch order of
// the shoot-out's corner-case-2 seed under each new policy, exactly as
// the Fig2/Fig3 goldens do for RECN: the CNP ScheduleRemote path and
// the hint broadcast path both inject events, and their order is part
// of the reproduction contract.
func TestDispatchGoldenThrottle(t *testing.T) {
	workload, until, err := CornerWorkload(2, 64, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got := captureDispatch(t, fabric.PolicyThrottle, nil, workload, until)
	checkDispatchGolden(t, "dispatch_shootout_throttle.json", got)
}

func TestDispatchGoldenARN(t *testing.T) {
	workload, until, err := CornerWorkload(2, 64, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got := captureDispatch(t, fabric.PolicyARN, nil, workload, until)
	checkDispatchGolden(t, "dispatch_shootout_arn.json", got)
}

func TestValidatePolicyOptions(t *testing.T) {
	ps, err := ValidatePolicyOptions([]string{"RECN", "throttle", "arn"}, "mark=8192", "on=8192,off=2048")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 || ps[1] != fabric.PolicyThrottle || ps[2] != fabric.PolicyARN {
		t.Fatalf("parsed %v", ps)
	}
	for _, bad := range [][3]string{
		{"NOPE", "", ""},
		{"", "mark=-1", ""},
		{"", "bogus=1", ""},
		{"", "", "on=1024,off=4096"}, // inverted hysteresis
		{"", "", "off=0"},
	} {
		var names []string
		if bad[0] != "" {
			names = []string{bad[0]}
		}
		if _, err := ValidatePolicyOptions(names, bad[1], bad[2]); err == nil {
			t.Errorf("ValidatePolicyOptions(%v, %q, %q): expected error", names, bad[1], bad[2])
		}
	}
}

// FuzzPolicyConfig fuzzes the shared policy/threshold parsing surface:
// any input must produce either a valid policy list or a structured
// error — never a panic, and never a config that fails Validate.
func FuzzPolicyConfig(f *testing.F) {
	f.Add("RECN", "mark=16384,min=100,dec=500,inc=50,period=5us,delay=500ns,cnp=1us", "on=16384,off=4096")
	f.Add("1Q,4Q,VOQsw,VOQnet,throttle,arn", "", "")
	f.Add("recn", "mark=0", "on=0")
	f.Add("", "min=2000,inc=-5", "off=999999999999999999999")
	f.Add("Throttle", "period=xyzus,delay=1try", "on=16384,off=16384")
	f.Fuzz(func(t *testing.T, names, thrSpec, arnSpec string) {
		var list []string
		if names != "" {
			list = strings.Split(names, ",")
		}
		ps, err := ValidatePolicyOptions(list, thrSpec, arnSpec)
		if err != nil {
			return
		}
		if len(ps) != len(list) {
			t.Fatalf("parsed %d policies from %d names", len(ps), len(list))
		}
		// Accepted specs must round-trip through the real config
		// builders without tripping validation.
		r := Run{Hosts: 64, Policy: fabric.PolicyThrottle, Until: 1, Bin: 1,
			ThrottleSpec: thrSpec, ARNSpec: arnSpec}
		if _, err := r.Execute(); err != nil {
			t.Fatalf("validated spec rejected by Execute: %v", err)
		}
	})
}
