package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fabric"
	"repro/internal/stats"
)

// ErrCanceled is the typed error a sweep (or a single run) returns when
// its context is canceled or times out. Detect it with errors.Is; the
// results slice returned alongside it holds every run that completed
// before the cancellation (unfinished slots are nil).
var ErrCanceled = errors.New("canceled")

// This file is the sweep engine: every figure, table and ablation is a
// list of independent Runs, and Sweep fans them across a worker pool.
// Each worker builds its own sim.Engine, fabric and RNG streams (all
// seeds are functions of the run spec, never of submission order), so
// the results — reassembled in spec order — are byte-identical to the
// serial path. An optional on-disk cache keyed by a stable hash of the
// run spec lets a re-plotted figure re-simulate only the runs whose
// spec actually changed.

// SpecKey returns the canonical description of the run's spec: every
// declarative field plus Key, which names the non-declarative parts
// (Workload and Mutate closures). Two runs with equal spec keys produce
// identical results, so the key — through its hash — is the identity
// the result cache and derived seeding use.
func (r Run) SpecKey() string {
	k := fmt.Sprintf("v1|key=%s|hosts=%d|policy=%s|pkt=%d|until=%d|bin=%d|drain=%t|faults=%s|recovery=%+v",
		r.Key, r.Hosts, r.Policy, r.PacketSize, int64(r.Until), int64(r.Bin), r.DrainAll, r.FaultSpec, r.Recovery)
	// Policy-tunable specs are appended only when set, so every key (and
	// with it every cache entry and derived seed) from before these
	// policies existed is reproduced verbatim.
	if r.ThrottleSpec != "" {
		k += "|thr=" + r.ThrottleSpec
	}
	if r.ARNSpec != "" {
		k += "|arn=" + r.ARNSpec
	}
	// Topology and eager-state markers follow the same append-only rule:
	// the default ("" = MIN, lazy) leaves every pre-existing key — and
	// with it every cache entry and derived seed — byte-identical.
	if r.Topo != "" {
		k += "|topo=" + r.Topo
	}
	if r.EagerState {
		k += "|eager=true"
	}
	return k
}

// SpecHash returns a stable 64-bit FNV-1a hash of SpecKey. It names
// the run's cache entry and seeds the run's derived RNG streams; it
// depends only on the spec, never on submission or completion order.
func (r Run) SpecHash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.SpecKey()))
	return h.Sum64()
}

// DerivedSeed returns the run's spec-derived RNG seed (non-negative).
// A FaultSpec of "seed=auto,…" uses it, so every run of a sweep gets
// its own deterministic fault stream without manual seed bookkeeping.
func (r Run) DerivedSeed() int64 {
	return int64(r.SpecHash() & (1<<63 - 1))
}

// cacheable reports whether the run's result may be stored in and
// loaded from the result cache. Runs carrying live objects that cannot
// be replayed from the spec — an Observe callback, a flight recorder,
// a pre-built (single-use) fault plan — or closures not named by Key
// must always simulate. Checked runs also always simulate: serving a
// cached result would silently skip the invariant audits the caller
// asked for (Check is deliberately absent from SpecKey — audits don't
// change results, so a checked run may still *store* nothing but must
// never shadow an unchecked entry either way).
func (r Run) cacheable() bool {
	if r.Observe != nil || r.Trace != nil || r.Faults != nil || r.Check {
		return false
	}
	// Sharded runs never touch the cache: their results differ from the
	// serial engine's (deterministically), and Shards is absent from
	// SpecKey, so storing either variant would let it shadow the other.
	if r.Shards > 0 {
		return false
	}
	if (r.Workload != nil || r.Mutate != nil) && r.Key == "" {
		return false
	}
	return true
}

// cacheVersion invalidates every cache entry written by previous
// simulator revisions; bump it whenever a model change alters results
// without altering specs.
const cacheVersion = 1

// RunCache is an on-disk cache of run results keyed by SpecHash. One
// entry is one JSON file holding the spec key (verified on load, so a
// hash collision can never serve the wrong result), a checksum of the
// payload, and the run's stats.Report.
type RunCache struct {
	dir string

	mu         sync.Mutex
	hits       int
	misses     int
	storeFails int
	storeErr   error // first store failure
	// flights single-flights concurrent executions of the same spec:
	// the first caller to miss becomes the leader and simulates, later
	// callers wait on the channel and re-load the stored result. Keyed
	// by SpecHash; entries live only while a simulation is in flight.
	flights map[uint64]chan struct{}
}

// OpenRunCache opens (creating if necessary) a cache directory and
// verifies it is writable, so a bad -cache flag fails before any
// simulation starts.
func OpenRunCache(dir string) (*RunCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("experiments: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: cache dir: %w", err)
	}
	probe := filepath.Join(dir, ".probe")
	if err := os.WriteFile(probe, []byte("ok"), 0o644); err != nil {
		return nil, fmt.Errorf("experiments: cache dir %s not writable: %w", dir, err)
	}
	os.Remove(probe)
	return &RunCache{dir: dir}, nil
}

// Stats returns how many Load calls hit and missed since open.
func (c *RunCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// noteStoreFailure records a failed Store a caller chose not to fail
// on, so the tally still surfaces in the sweep summary.
func (c *RunCache) noteStoreFailure(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeFails++
	if c.storeErr == nil {
		c.storeErr = err
	}
}

// StoreFailures returns how many recorded Store calls failed since
// open, and the first failure.
func (c *RunCache) StoreFailures() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storeFails, c.storeErr
}

// joinFlight registers interest in a spec hash. The first caller since
// the last leaveFlight becomes the leader (second result true) and must
// call leaveFlight when its simulation and store are finished; every
// other caller gets a channel that closes at that point.
func (c *RunCache) joinFlight(h uint64) (<-chan struct{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flights == nil {
		c.flights = make(map[uint64]chan struct{})
	}
	if ch, ok := c.flights[h]; ok {
		return ch, false
	}
	ch := make(chan struct{})
	c.flights[h] = ch
	return ch, true
}

// leaveFlight releases a leadership taken via joinFlight, waking every
// waiting duplicate caller.
func (c *RunCache) leaveFlight(h uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	close(c.flights[h])
	delete(c.flights, h)
}

func (c *RunCache) path(r Run) string {
	return filepath.Join(c.dir, fmt.Sprintf("%016x.json", r.SpecHash()))
}

type cacheEntry struct {
	Version int
	SpecKey string
	Sum     uint64
	Report  json.RawMessage
}

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Load returns the cached result for a run's spec. Any defect — an
// uncacheable run, a missing, truncated or corrupt entry, a version or
// spec-key mismatch — is a miss: the caller re-simulates, never trusts
// a damaged entry.
func (c *RunCache) Load(r Run) (*Result, bool) {
	res, ok := c.load(r)
	c.mu.Lock()
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	return res, ok
}

func (c *RunCache) load(r Run) (*Result, bool) {
	if !r.cacheable() {
		return nil, false
	}
	raw, err := os.ReadFile(c.path(r))
	if err != nil {
		return nil, false
	}
	var entry cacheEntry
	if err := json.Unmarshal(raw, &entry); err != nil {
		return nil, false
	}
	if entry.Version != cacheVersion || entry.SpecKey != r.SpecKey() || entry.Sum != checksum(entry.Report) {
		return nil, false
	}
	var rep stats.Report
	if err := json.Unmarshal(entry.Report, &rep); err != nil {
		return nil, false
	}
	res, err := ResultFromReport(r.Policy, rep)
	if err != nil {
		return nil, false
	}
	return res, true
}

// tmpSeq disambiguates concurrent Store temp files: two goroutines
// storing the same spec must never share a temp path, or one's rename
// could publish the other's half-written bytes.
var tmpSeq atomic.Uint64

// Store writes a run's result. Uncacheable runs are skipped silently;
// the write is atomic (per-writer temp file + rename) so a crashed or
// racing writer leaves no truncated entry under the final name, and a
// valid already-stored entry is left untouched (concurrent daemon
// workers and separate processes may store the same spec — results for
// one spec are deterministic, so whichever write landed is correct).
func (c *RunCache) Store(r Run, res *Result) error {
	if !r.cacheable() || res == nil {
		return nil
	}
	if _, ok := c.load(r); ok {
		return nil // a valid entry already exists
	}
	rep, err := json.Marshal(res.Report())
	if err != nil {
		return err
	}
	raw, err := json.Marshal(cacheEntry{
		Version: cacheVersion,
		SpecKey: r.SpecKey(),
		Sum:     checksum(rep),
		Report:  rep,
	})
	if err != nil {
		return err
	}
	path := c.path(r)
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), tmpSeq.Add(1))
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Raw returns the stored entry for a spec hash without needing the Run
// that produced it: the verbatim spec key and the serialized
// stats.Report. Version and checksum are validated like Load; a missing
// or damaged entry is simply absent. This is the daemon's cache-lookup
// surface (GET /v1/runs/{key}).
func (c *RunCache) Raw(hash uint64) (specKey string, report []byte, ok bool) {
	raw, err := os.ReadFile(filepath.Join(c.dir, fmt.Sprintf("%016x.json", hash)))
	if err != nil {
		return "", nil, false
	}
	var entry cacheEntry
	if err := json.Unmarshal(raw, &entry); err != nil {
		return "", nil, false
	}
	if entry.Version != cacheVersion || entry.Sum != checksum(entry.Report) {
		return "", nil, false
	}
	return entry.SpecKey, entry.Report, true
}

// Report converts the result's measurements to the serializable,
// mergeable form (the trace recorder, being a live object, is not
// part of it).
func (res *Result) Report() stats.Report {
	rep := stats.Report{
		Throughput:      res.Throughput.Dump(),
		SAQ:             res.SAQ.Dump(),
		Latency:         res.Latency.Dump(),
		Injected:        res.Injected,
		Delivered:       res.Delivered,
		OrderViolations: res.OrderViolations,
		Events:          res.Events,
	}
	if res.Faults != nil {
		f := *res.Faults
		rep.Faults = &f
	}
	if res.Mem != nil {
		m := *res.Mem
		rep.Mem = &m
	}
	return rep
}

// ResultFromReport rebuilds a live Result from a serialized report.
func ResultFromReport(policy fabric.Policy, rep stats.Report) (*Result, error) {
	tp, err := rep.Throughput.Restore()
	if err != nil {
		return nil, err
	}
	saq, err := rep.SAQ.Restore()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Policy:          policy,
		Throughput:      tp,
		SAQ:             saq,
		Latency:         rep.Latency.Restore(),
		Injected:        rep.Injected,
		Delivered:       rep.Delivered,
		OrderViolations: rep.OrderViolations,
		Events:          rep.Events,
	}
	if rep.Faults != nil {
		f := *rep.Faults
		res.Faults = &f
	}
	if rep.Mem != nil {
		m := *rep.Mem
		res.Mem = &m
	}
	return res, nil
}

// CacheSummary is one sweep's run-cache accounting, delivered through
// Options.OnCacheSummary. StoreFailures counts results that simulated
// correctly but could not be written back (the sweep does not fail on
// those — see executeCached — so this is where they surface).
type CacheSummary struct {
	Hits, Misses  int
	StoreFailures int
	FirstStoreErr error
}

// Sweep executes independent runs across a worker pool and returns
// their results in spec (submission) order, so rendering the results
// is byte-identical regardless of Parallelism. Options.Parallelism
// sets the worker count (0 = GOMAXPROCS, 1 = serial); with
// Options.CacheDir set (and NoCache unset), results load from and
// store to the run cache. On failure the error of the lowest-indexed
// failing run is returned, which keeps error output deterministic too.
// With Options.Context set it is cancellable — see SweepContext.
func Sweep(runs []Run, o Options) ([]*Result, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return SweepContext(ctx, runs, o)
}

// SweepContext is Sweep under an explicit context (which wins over
// Options.Context). When ctx is canceled or times out, the sweep stops
// scheduling new runs, interrupts in-flight serial runs at the next
// cancellation check, and returns the results completed so far
// alongside an error matching errors.Is(err, ErrCanceled); unfinished
// slots of the results slice are nil.
func SweepContext(ctx context.Context, runs []Run, o Options) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := o.Parallelism
	if n < 0 {
		return nil, fmt.Errorf("experiments: parallelism %d (want ≥ 1, or 0 for GOMAXPROCS)", n)
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(runs) {
		n = len(runs)
	}
	cache := o.Cache
	if o.NoCache {
		cache = nil
	} else if cache == nil && o.CacheDir != "" {
		var err error
		cache, err = OpenRunCache(o.CacheDir)
		if err != nil {
			return nil, err
		}
	}
	if cache != nil && o.OnCacheSummary != nil {
		// Deferred so the summary — including store failures, which
		// do not fail the sweep — reaches the caller on every exit
		// path. With a shared Options.Cache the tallies are cumulative
		// across every sweep on that cache.
		c := cache
		defer func() {
			hits, misses := c.Stats()
			fails, ferr := c.StoreFailures()
			o.OnCacheSummary(CacheSummary{
				Hits: hits, Misses: misses,
				StoreFailures: fails, FirstStoreErr: ferr,
			})
		}()
	}
	results := make([]*Result, len(runs))
	done := func(i int, res *Result, cached bool) {
		if o.OnRunDone != nil {
			o.OnRunDone(i, runs[i], res, cached)
		}
	}
	if n <= 1 {
		for i, r := range runs {
			if ctx.Err() != nil {
				return results, fmt.Errorf("experiments: sweep interrupted after %d/%d runs: %w", i, len(runs), ErrCanceled)
			}
			res, cached, err := executeCached(ctx, r, cache)
			if err != nil {
				if errors.Is(err, ErrCanceled) {
					return results, fmt.Errorf("experiments: %v run: %w", r.Policy, err)
				}
				return nil, fmt.Errorf("experiments: %v run: %w", r.Policy, err)
			}
			results[i] = res
			done(i, res, cached)
		}
		return results, nil
	}
	errs := make([]error, len(runs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				var cached bool
				results[i], cached, errs[i] = executeCached(ctx, runs[i], cache)
				if errs[i] == nil {
					done(i, results[i], cached)
				}
			}
		}()
	}
feed:
	for i := range runs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	// A real run failure wins over cancellation (lowest index first, so
	// error output stays deterministic); canceled runs only surface as
	// the sweep-level ErrCanceled below.
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrCanceled) {
			return nil, fmt.Errorf("experiments: %v run: %w", runs[i].Policy, err)
		}
	}
	if ctx.Err() != nil {
		return results, fmt.Errorf("experiments: sweep interrupted: %w", ErrCanceled)
	}
	return results, nil
}

// executeCached runs one simulation, consulting the cache first. A
// failed cache write is not a run failure — the result is fresh and
// correct, the next sweep just re-simulates — but it is not silent
// either: the failure is counted and surfaced in the sweep's cache
// summary (a full disk or revoked permission would otherwise quietly
// re-simulate everything forever). Concurrent callers with the same
// spec — parallel sweep workers, or daemon jobs sharing one cache —
// single-flight: one simulates, the rest wait and load the stored
// result. The second return reports whether the result came from the
// cache.
func executeCached(ctx context.Context, r Run, cache *RunCache) (*Result, bool, error) {
	if cache == nil || !r.cacheable() {
		res, err := r.ExecuteContext(ctx)
		return res, false, err
	}
	h := r.SpecHash()
	for {
		if res, ok := cache.Load(r); ok {
			return res, true, nil
		}
		wait, leader := cache.joinFlight(h)
		if !leader {
			select {
			case <-wait:
			case <-ctx.Done():
				return nil, false, fmt.Errorf("experiments: waiting on duplicate spec %016x: %w", h, ErrCanceled)
			}
			// The leader finished (or failed): re-load. A successful
			// store hits; a failed store or failed run misses, and this
			// caller becomes the next leader and simulates itself.
			continue
		}
		res, err := func() (*Result, error) {
			defer cache.leaveFlight(h)
			res, err := r.ExecuteContext(ctx)
			if err != nil {
				return nil, err
			}
			if serr := cache.Store(r, res); serr != nil {
				cache.noteStoreFailure(serr)
			}
			return res, nil
		}()
		return res, false, err
	}
}
