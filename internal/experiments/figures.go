package experiments

import (
	"context"
	"fmt"

	"repro/internal/fabric"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Options control figure reproduction runs.
type Options struct {
	// Scale compresses all simulated times; 1.0 reproduces the paper's
	// durations (800 µs hotspot onset, 1600 µs runs).
	Scale float64
	// PacketSize in bytes (default 64, the paper's primary setting).
	PacketSize int
	// MaxRows caps printed table rows (default 40).
	MaxRows int
	// Policies overrides the mechanism list where applicable.
	Policies []fabric.Policy
	// Topo selects the topology family for every run ("" = the paper's
	// perfect-shuffle MIN; see Run.Topo / BuildTopology).
	Topo string
	// EagerState disables the fabric's lazy state materialization on
	// every run (see Run.EagerState). Figure output is bit-identical
	// either way; the flag exists for the equivalence tests and for
	// measuring the eager memory footprint.
	EagerState bool
	// FaultSpec, if non-empty, injects faults into every run (see
	// fault.ParsePlan for the syntax) with the default recovery layer
	// enabled; the per-run fault/recovery accounting is appended to the
	// figure's table notes.
	FaultSpec string
	// ThrottleSpec / ARNSpec override the throttle and arn policy
	// tunables for every run that uses those policies (see
	// throttle.ParseSpec and fabric.ParseARNSpec). Empty = defaults
	// (and unchanged cache keys).
	ThrottleSpec string
	ARNSpec      string
	// Parallelism is the sweep worker-pool size: every figure, table
	// and ablation fans its independent runs across this many workers
	// (0 = GOMAXPROCS, 1 = serial). Results are reassembled in spec
	// order, so output is byte-identical at any setting.
	Parallelism int
	// CacheDir, if non-empty, enables the on-disk run-result cache:
	// runs whose spec hash matches a stored entry load instead of
	// re-simulating (see RunCache).
	CacheDir string
	// NoCache disables the cache even when CacheDir is set.
	NoCache bool
	// OnCacheSummary, if set alongside CacheDir, receives the cache
	// accounting of each sweep as it completes — including the
	// store-failure tally a sweep deliberately does not fail on (a
	// failed cache write only costs a future re-simulation, but it must
	// not be silent: the CLIs warn on stderr when StoreFailures > 0).
	OnCacheSummary func(CacheSummary)
	// Shards runs every simulation on the windowed multi-core runtime
	// with this many shard engines (see Run.Shards); 0 keeps the serial
	// engine. Results are bit-identical across shard counts ≥ 1 but
	// deterministically differ from serial results, and sharded runs
	// bypass the result cache.
	Shards int
	// Trace, if non-nil, attaches a flight recorder to every run of
	// the figure (a fresh recorder per run — they are single-use).
	Trace *trace.Config
	// OnTrace, if set alongside Trace, receives each run's recorder as
	// the run finishes; label is the mechanism name.
	OnTrace func(label string, rec *trace.Recorder)
	// Check enables the runtime invariant checker on every run (see
	// Run.Check): audits are pure observers, so figures are identical
	// with checking on, but violations abort the figure with a
	// diagnostics snapshot. Checked runs bypass the result cache.
	Check bool
	// Context, if non-nil, makes every sweep under these options
	// cancellable: when it is canceled or times out, sweeps stop
	// scheduling runs, interrupt in-flight serial runs, and return an
	// error matching errors.Is(err, ErrCanceled) (see SweepContext).
	// recnsweep wires Ctrl-C/SIGTERM here; the daemon wires each job's
	// cancellation.
	Context context.Context
	// Cache, if non-nil, is an already-open run cache used instead of
	// CacheDir. Sharing one handle across concurrent sweeps (the
	// daemon's workers) lets duplicate specs single-flight in-process
	// on top of the on-disk store.
	Cache *RunCache
	// OnRunDone, if set, is called as each run of a sweep completes
	// with the run's index, spec, result, and whether it was served
	// from the cache. Under Parallelism > 1 it is called concurrently
	// from worker goroutines and in completion (not spec) order; the
	// daemon streams these as live per-run events.
	OnRunDone func(index int, r Run, res *Result, cached bool)
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.PacketSize <= 0 {
		o.PacketSize = 64
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 40
	}
	return o
}

func (o Options) t(us float64) sim.Time {
	return sim.Time(us * o.Scale * float64(sim.Microsecond))
}

// FigThroughput is a reproduced throughput-over-time figure.
type FigThroughput struct {
	Title     string
	Bin       sim.Time
	Policies  []fabric.Policy
	Results   []*Result
	maxRows   int
	scale     float64
	notesList []string
}

// Result returns the run for one mechanism.
func (f *FigThroughput) Result(p fabric.Policy) *Result {
	for i, q := range f.Policies {
		if q == p {
			return f.Results[i]
		}
	}
	return nil
}

// MeanWindow returns a mechanism's mean throughput (bytes/ns) over a
// paper-time window in µs (already scale-adjusted by the figure).
func (f *FigThroughput) MeanWindow(p fabric.Policy, fromUs, toUs float64) float64 {
	r := f.Result(p)
	if r == nil {
		return 0
	}
	from := int(sim.Time(fromUs*f.scale*float64(sim.Microsecond)) / f.Bin)
	to := int(sim.Time(toUs*f.scale*float64(sim.Microsecond)) / f.Bin)
	return r.Throughput.MeanRate(from, to)
}

// Table renders the full series.
func (f *FigThroughput) Table() *Table {
	return f.window(0, -1)
}

// Zoom renders a window in paper-µs (Figures 2.c / 2.d).
func (f *FigThroughput) Zoom(fromUs, toUs float64, policies ...fabric.Policy) *Table {
	from := int(sim.Time(fromUs*f.scale*float64(sim.Microsecond)) / f.Bin)
	to := int(sim.Time(toUs*f.scale*float64(sim.Microsecond)) / f.Bin)
	t := f.window(from, to)
	if len(policies) > 0 {
		t = f.subset(t, policies)
	}
	t.Title = fmt.Sprintf("%s [zoom %.0f–%.0f µs]", f.Title, fromUs, toUs)
	return t
}

func (f *FigThroughput) subset(full *Table, policies []fabric.Policy) *Table {
	keep := []int{0}
	header := []string{full.Header[0]}
	for i, p := range f.Policies {
		for _, want := range policies {
			if p == want {
				keep = append(keep, i+1)
				header = append(header, full.Header[i+1])
			}
		}
	}
	out := &Table{Title: full.Title, Header: header, Notes: full.Notes}
	for _, row := range full.Rows {
		cells := make([]string, len(keep))
		for j, k := range keep {
			cells[j] = row[k]
		}
		out.Rows = append(out.Rows, cells)
	}
	return out
}

func (f *FigThroughput) window(from, to int) *Table {
	bins := 0
	for _, r := range f.Results {
		if r.Throughput.Bins() > bins {
			bins = r.Throughput.Bins()
		}
	}
	if to < 0 || to > bins {
		to = bins
	}
	if from < 0 {
		from = 0
	}
	t := &Table{Title: f.Title, Notes: append([]string(nil), f.notesList...)}
	for i, p := range f.Policies {
		if fr := f.Results[i].Faults; fr != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("faults[%s]: %s", p, fr))
		}
	}
	t.Header = []string{"time_us"}
	for _, p := range f.Policies {
		t.Header = append(t.Header, p.String()+"_B/ns")
	}
	step := stride(to-from, f.maxRows)
	for i := from; i < to; i += step {
		cells := []interface{}{fmt.Sprintf("%.1f", float64(i)*f.Bin.Micros())}
		for _, r := range f.Results {
			cells = append(cells, r.Throughput.MeanRate(i, i+step))
		}
		t.AddRow(cells...)
	}
	return t
}

// FigSAQ is a reproduced SAQ-utilization figure (RECN only).
type FigSAQ struct {
	Title   string
	Bin     sim.Time
	Result  *Result
	maxRows int
}

// Table renders the series the paper plots: maximum SAQs at any
// ingress port, at any egress port, and the network-wide total.
func (f *FigSAQ) Table() *Table {
	t := &Table{
		Title:  f.Title,
		Header: []string{"time_us", "max_ingress", "max_egress", "total"},
	}
	bins := f.Result.SAQ.Bins()
	step := stride(bins, f.maxRows)
	for i := 0; i < bins; i += step {
		// Take maxima across the stride window, as the paper's plots do.
		var agg struct{ tot, in, eg int }
		for j := i; j < i+step && j < bins; j++ {
			s := f.Result.SAQ.At(j)
			if s.Total > agg.tot {
				agg.tot = s.Total
			}
			if s.MaxIngress > agg.in {
				agg.in = s.MaxIngress
			}
			if s.MaxEgress > agg.eg {
				agg.eg = s.MaxEgress
			}
		}
		t.AddRow(fmt.Sprintf("%.1f", float64(i)*f.Bin.Micros()), agg.in, agg.eg, agg.tot)
	}
	p := f.Result.SAQ.Peak()
	t.Notes = append(t.Notes, fmt.Sprintf("peak: max_ingress=%d max_egress=%d total=%d", p.MaxIngress, p.MaxEgress, p.Total))
	if fr := f.Result.Faults; fr != nil {
		t.Notes = append(t.Notes, "faults: "+fr.String())
	}
	return t
}

// Table1 reproduces the paper's Table 1 (corner-case traffic
// parameters). A bad corner spec is reported, not panicked, so a sweep
// loses one table instead of the whole process.
func Table1() (*Table, error) {
	t := &Table{
		Title:  "Table 1: traffic parameters for corner cases (64 hosts)",
		Header: []string{"case", "#srcs", "dst", "inj_rate", "start", "end"},
	}
	for _, n := range []int{1, 2} {
		c, err := traffic.Corner(n, 64, 64, 1.0)
		if err != nil {
			return nil, fmt.Errorf("experiments: corner case %d: %w", n, err)
		}
		t.AddRow(n, len(c.RandomSources), "random", fmt.Sprintf("%.0f%%", c.RandomRate*100), "0", "sim end")
		t.AddRow(n, len(c.HotSources), c.HotDest, "100%", c.HotStart.String(), c.HotEnd.String())
	}
	return t, nil
}

// defaultPolicies is the order the paper presents mechanisms in
// Figure 2.
var defaultPolicies = []fabric.Policy{
	fabric.PolicyVOQnet, fabric.Policy1Q, fabric.PolicyVOQsw, fabric.Policy4Q, fabric.PolicyRECN,
}

// runPolicies executes one workload under several mechanisms via the
// sweep engine. key names the workload+mutate pair for the run cache
// (see Run.Key); the per-policy runs fan across Options.Parallelism
// workers and come back in the policies' order.
func runPolicies(hosts int, policies []fabric.Policy, o Options, key string,
	workload func(traffic.Network) error, until sim.Time,
	mutate func(*fabric.Config)) ([]*Result, sim.Time, error) {
	bin := until / 160
	if bin <= 0 {
		bin = sim.Microsecond
	}
	runs := make([]Run, len(policies))
	for i, p := range policies {
		runs[i] = Run{
			Hosts:        hosts,
			Policy:       p,
			PacketSize:   o.PacketSize,
			Topo:         o.Topo,
			EagerState:   o.EagerState,
			Key:          key,
			Workload:     workload,
			Until:        until,
			Bin:          bin,
			Mutate:       mutate,
			FaultSpec:    o.FaultSpec,
			ThrottleSpec: o.ThrottleSpec,
			ARNSpec:      o.ARNSpec,
			Trace:        o.Trace,
			Check:        o.Check,
			Shards:       o.Shards,
		}
	}
	results, err := Sweep(runs, o)
	if err != nil {
		return nil, 0, err
	}
	if o.OnTrace != nil {
		for i, p := range policies {
			if results[i].Trace != nil {
				o.OnTrace(p.String(), results[i].Trace)
			}
		}
	}
	return results, bin, nil
}

// Fig2 reproduces Figure 2.a (corner case 1) or 2.b (corner case 2):
// network throughput over time for the five mechanisms on the 64-host
// network. Figures 2.c/2.d are the Zoom of the result.
func Fig2(corner int, o Options) (*FigThroughput, error) {
	o = o.withDefaults()
	policies := o.Policies
	if policies == nil {
		policies = defaultPolicies
	}
	workload, until, err := CornerWorkload(corner, 64, o.PacketSize, o.Scale)
	if err != nil {
		return nil, err
	}
	results, bin, err := runPolicies(64, policies, o, cornerKey(corner), workload, until, nil)
	if err != nil {
		return nil, err
	}
	sub := "a"
	if corner == 2 {
		sub = "b"
	}
	return &FigThroughput{
		Title:    fmt.Sprintf("Figure 2.%s: throughput, corner case %d, %d-byte packets", sub, corner, o.PacketSize),
		Bin:      bin,
		Policies: policies,
		Results:  results,
		maxRows:  o.MaxRows,
		scale:    o.Scale,
		notesList: []string{
			"paper: VOQnet unaffected; 1Q/4Q collapse during the tree; VOQsw degrades (2nd-order HOL); RECN ≈ VOQnet",
		},
	}, nil
}

// Fig3 reproduces Figure 3: throughput over time for the SAN (cello
// model) traffic at a given time-compression factor.
func Fig3(compression float64, o Options) (*FigThroughput, error) {
	o = o.withDefaults()
	policies := o.Policies
	if policies == nil {
		policies = []fabric.Policy{fabric.PolicyVOQnet, fabric.Policy1Q, fabric.PolicyVOQsw, fabric.PolicyRECN}
	}
	workload, until := CelloWorkload(compression, o.Scale)
	results, bin, err := runPolicies(64, policies, o, celloKey(compression), workload, until, celloMutate)
	if err != nil {
		return nil, err
	}
	return &FigThroughput{
		Title:    fmt.Sprintf("Figure 3: throughput, SAN traces (cello model), compression %.0f", compression),
		Bin:      bin,
		Policies: policies,
		Results:  results,
		maxRows:  o.MaxRows,
		scale:    o.Scale,
		notesList: []string{
			"paper: RECN ≈ VOQnet; VOQsw loses throughput to second-order HOL blocking",
		},
	}, nil
}

// Fig4 reproduces Figure 4: SAQ utilization over time for a corner
// case (RECN run of Figure 2).
func Fig4(corner int, o Options) (*FigSAQ, error) {
	o = o.withDefaults()
	workload, until, err := CornerWorkload(corner, 64, o.PacketSize, o.Scale)
	if err != nil {
		return nil, err
	}
	results, bin, err := runPolicies(64, []fabric.Policy{fabric.PolicyRECN}, o, cornerKey(corner), workload, until, nil)
	if err != nil {
		return nil, err
	}
	return &FigSAQ{
		Title:   fmt.Sprintf("Figure 4: SAQ utilization, corner case %d, %d-byte packets", corner, o.PacketSize),
		Bin:     bin,
		Result:  results[0],
		maxRows: o.MaxRows,
	}, nil
}

// Fig5 reproduces Figure 5: SAQ utilization for the SAN traffic.
func Fig5(compression float64, o Options) (*FigSAQ, error) {
	o = o.withDefaults()
	workload, until := CelloWorkload(compression, o.Scale)
	results, bin, err := runPolicies(64, []fabric.Policy{fabric.PolicyRECN}, o, celloKey(compression), workload, until, celloMutate)
	if err != nil {
		return nil, err
	}
	return &FigSAQ{
		Title:   fmt.Sprintf("Figure 5: SAQ utilization, SAN traces, compression %.0f", compression),
		Bin:     bin,
		Result:  results[0],
		maxRows: o.MaxRows,
	}, nil
}

// Fig6 reproduces Figure 6: throughput and SAQ utilization on the
// larger networks (256 or 512 hosts) under the corner-case-2 hotspot.
func Fig6(hosts int, o Options) (*FigThroughput, *FigSAQ, error) {
	o = o.withDefaults()
	if hosts != 256 && hosts != 512 {
		return nil, nil, fmt.Errorf("experiments: Fig6 wants 256 or 512 hosts, got %d", hosts)
	}
	policies := o.Policies
	if policies == nil {
		policies = []fabric.Policy{fabric.PolicyVOQnet, fabric.PolicyVOQsw, fabric.PolicyRECN}
	}
	workload, until, err := CornerWorkload(2, hosts, o.PacketSize, o.Scale)
	if err != nil {
		return nil, nil, err
	}
	results, bin, err := runPolicies(hosts, policies, o, cornerKey(2), workload, until, nil)
	if err != nil {
		return nil, nil, err
	}
	sub := "a"
	if hosts == 512 {
		sub = "b"
	}
	fig := &FigThroughput{
		Title:    fmt.Sprintf("Figure 6.%s: throughput, %d hosts, corner case 2", sub, hosts),
		Bin:      bin,
		Policies: policies,
		Results:  results,
		maxRows:  o.MaxRows,
		scale:    o.Scale,
		notesList: []string{
			"paper: RECN tracks VOQnet with ≤8 SAQs; VOQsw degrades and does not recover",
		},
	}
	var saq *FigSAQ
	for i, p := range policies {
		if p == fabric.PolicyRECN {
			saq = &FigSAQ{
				Title:   fmt.Sprintf("Figure 6.%s (right): SAQ utilization, %d hosts", sub, hosts),
				Bin:     bin,
				Result:  results[i],
				maxRows: o.MaxRows,
			}
		}
	}
	return fig, saq, nil
}

// AblationResult is one row of an ablation sweep.
type AblationResult struct {
	Label           string
	MeanCongested   float64 // bytes/ns during the hotspot window
	MeanAfter       float64 // bytes/ns after the tree should collapse
	PeakSAQTotal    int
	PeakSAQPort     int
	OrderViolations uint64
}

// ablationTable renders a sweep.
func ablationTable(title, labelHdr string, rows []AblationResult) *Table {
	t := &Table{
		Title:  title,
		Header: []string{labelHdr, "tput_congested_B/ns", "tput_after_B/ns", "peak_SAQ_total", "peak_SAQ_port", "order_violations"},
	}
	for _, r := range rows {
		t.AddRow(r.Label, r.MeanCongested, r.MeanAfter, r.PeakSAQTotal, r.PeakSAQPort, r.OrderViolations)
	}
	return t
}

// cornerKey names a corner-case workload for the run cache. Together
// with the declarative Run fields (Hosts, PacketSize, Until — which
// pins the scale) it identifies the workload closure exactly.
func cornerKey(corner int) string { return fmt.Sprintf("corner%d", corner) }

// celloKey names the cello workload (plus the AdmitCap mutation every
// cello run applies). Compression changes injection times without
// changing the horizon, so it must be part of the key.
func celloKey(compression float64) string {
	return fmt.Sprintf("cello|cf=%g|admitcap=0", compression)
}

// ablationCase is one point of an ablation sweep: a label, a stable
// cache-key fragment for the mutation, and the mutation itself.
type ablationCase struct {
	label  string
	keyFor string
	mutate func(*fabric.Config)
}

// runAblations executes corner case 2 on 64 hosts under RECN once per
// case — fanned across the sweep workers — and summarizes each run.
func runAblations(o Options, cases []ablationCase) ([]AblationResult, error) {
	workload, until, err := CornerWorkload(2, 64, o.PacketSize, o.Scale)
	if err != nil {
		return nil, err
	}
	bin := until / 160
	runs := make([]Run, len(cases))
	for i, c := range cases {
		runs[i] = Run{
			Hosts:      64,
			Policy:     fabric.PolicyRECN,
			PacketSize: o.PacketSize,
			Topo:       o.Topo,
			EagerState: o.EagerState,
			Key:        cornerKey(2) + "|" + c.keyFor,
			Workload:   workload,
			Until:      until,
			Bin:        bin,
			Mutate:     c.mutate,
			FaultSpec:  o.FaultSpec,
			Check:      o.Check,
			Shards:     o.Shards,
		}
	}
	results, err := Sweep(runs, o)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationResult, len(cases))
	for i, res := range results {
		window := func(fromUs, toUs float64) float64 {
			from := int(o.t(fromUs) / bin)
			to := int(o.t(toUs) / bin)
			return res.Throughput.MeanRate(from, to)
		}
		peak := res.SAQ.Peak()
		port := peak.MaxIngress
		if peak.MaxEgress > port {
			port = peak.MaxEgress
		}
		rows[i] = AblationResult{
			Label:           cases[i].label,
			MeanCongested:   window(850, 970),
			MeanAfter:       window(1100, 1500),
			PeakSAQTotal:    peak.Total,
			PeakSAQPort:     port,
			OrderViolations: res.OrderViolations,
		}
	}
	return rows, nil
}

// AblationSAQCount sweeps the number of SAQs/CAM lines per port (A1).
func AblationSAQCount(o Options, counts []int) (*Table, error) {
	o = o.withDefaults()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	cases := make([]ablationCase, len(counts))
	for i, c := range counts {
		c := c
		cases[i] = ablationCase{
			label:  fmt.Sprint(c),
			keyFor: fmt.Sprintf("saqs=%d", c),
			mutate: func(cfg *fabric.Config) { cfg.RECN.MaxSAQs = c },
		}
	}
	rows, err := runAblations(o, cases)
	if err != nil {
		return nil, err
	}
	return ablationTable("Ablation A1: SAQs per port (corner case 2)", "saqs", rows), nil
}

// AblationThreshold sweeps the congestion detection threshold (A2).
func AblationThreshold(o Options, detectBytes []int) (*Table, error) {
	o = o.withDefaults()
	if len(detectBytes) == 0 {
		detectBytes = []int{4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024}
	}
	cases := make([]ablationCase, len(detectBytes))
	for i, d := range detectBytes {
		d := d
		cases[i] = ablationCase{
			label:  fmt.Sprintf("%dKB", d/1024),
			keyFor: fmt.Sprintf("detect=%d", d),
			mutate: func(cfg *fabric.Config) { cfg.RECN.DetectBytes = d },
		}
	}
	rows, err := runAblations(o, cases)
	if err != nil {
		return nil, err
	}
	return ablationTable("Ablation A2: detection threshold (corner case 2)", "detect", rows), nil
}

// AblationTokenBoost compares the paper's §3.8 arbiter priority boost
// for near-empty token-owning SAQs against no boost (A3).
func AblationTokenBoost(o Options) (*Table, error) {
	o = o.withDefaults()
	var cases []ablationCase
	for _, boost := range []bool{true, false} {
		boost := boost
		label := "on"
		if !boost {
			label = "off"
		}
		cases = append(cases, ablationCase{
			label:  label,
			keyFor: fmt.Sprintf("boost=%t", boost),
			mutate: func(cfg *fabric.Config) {
				if !boost {
					cfg.RECN.BoostPackets = 0
				}
			},
		})
	}
	rows, err := runAblations(o, cases)
	if err != nil {
		return nil, err
	}
	return ablationTable("Ablation A3: token priority boost (corner case 2)", "boost", rows), nil
}

// AblationMarkers compares the §3.8 in-order markers against disabling
// them (A4): without markers RECN reorders packets.
func AblationMarkers(o Options) (*Table, error) {
	o = o.withDefaults()
	var cases []ablationCase
	for _, markers := range []bool{true, false} {
		markers := markers
		label := "on"
		if !markers {
			label = "off"
		}
		cases = append(cases, ablationCase{
			label:  label,
			keyFor: fmt.Sprintf("markers=%t", markers),
			mutate: func(cfg *fabric.Config) { cfg.RECN.NoInOrderMarkers = !markers },
		})
	}
	rows, err := runAblations(o, cases)
	if err != nil {
		return nil, err
	}
	return ablationTable("Ablation A4: in-order markers (corner case 2)", "markers", rows), nil
}
