package experiments

// Tests of the windowed multi-core runtime's central contract: a run at
// any Shards value ≥ 1 produces bit-identical results — same report,
// same rendered figure bytes — at every other value, because the
// mailbox merge keys are shard-count-invariant (see fabric/window.go).
// The suite also pins the guard rails around the contract: sharded runs
// are deterministic run-to-run, reject the features windowing cannot
// support, and never touch the result cache.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/pkt"
	"repro/internal/sim"
)

// shardReport executes one sharded run and returns its report as
// canonical JSON (series dumps included, so any divergence in any
// meter fails the comparison).
func shardReport(t *testing.T, r Run) string {
	t.Helper()
	res, err := r.Execute()
	if err != nil {
		t.Fatalf("shards=%d: %v", r.Shards, err)
	}
	b, err := json.Marshal(res.Report())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardReportIdentity: the corner-case hotspot workload, drained to
// empty under the invariant checker, reports identically at shard
// counts 1, 2, 4 and 7 (7 splits the 16-switch stages unevenly, so the
// partition boundaries cut through stages).
func TestShardReportIdentity(t *testing.T) {
	workload, until, err := CornerWorkload(2, 64, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	base := ""
	for _, k := range []int{1, 2, 4, 7} {
		r := Run{
			Hosts: 64, Policy: fabric.PolicyRECN, Key: "shard-identity",
			Workload: workload, Until: until, Shards: k,
			DrainAll: true, Check: true,
		}
		rep := shardReport(t, r)
		if base == "" {
			base = rep
		} else if rep != base {
			t.Fatalf("shards=%d report differs from shards=1", k)
		}
	}
}

// TestShardReportIdentityCello covers the cross-host scheduling path
// (disk replies ride ScheduleRemote mailboxes): the SAN trace workload
// must also be shard-count-invariant.
func TestShardReportIdentityCello(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run cello reproduction")
	}
	workload, until := CelloWorkload(20, 0.05)
	base := ""
	for _, k := range []int{1, 3} {
		r := Run{
			Hosts: 64, Policy: fabric.PolicyRECN, Key: "shard-identity-cello",
			Workload: workload, Until: until, Shards: k, Mutate: celloMutate,
		}
		rep := shardReport(t, r)
		if base == "" {
			base = rep
		} else if rep != base {
			t.Fatalf("shards=%d cello report differs from shards=1", k)
		}
	}
}

// TestShardFigureIdentity renders real figures — the full pipeline
// from sweep through table formatting — at several shard counts and
// requires byte-identical output, the same contract the parallel sweep
// goldens pin for Parallelism.
func TestShardFigureIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run figure reproduction")
	}
	opts := Options{
		Scale:    0.02,
		Policies: []fabric.Policy{fabric.Policy1Q, fabric.PolicyRECN},
	}
	t.Run("fig2", func(t *testing.T) {
		base := ""
		for _, k := range []int{1, 2, 4, 7} {
			o := opts
			o.Shards = k
			fig, err := Fig2(1, o)
			if err != nil {
				t.Fatalf("shards=%d: %v", k, err)
			}
			got := fig.Table().String()
			if base == "" {
				base = got
			} else if got != base {
				t.Fatalf("fig2 rendered bytes differ between shards=1 and shards=%d", k)
			}
		}
	})
	t.Run("fig3", func(t *testing.T) {
		base := ""
		for _, k := range []int{1, 4} {
			o := opts
			o.Scale = 0.05
			o.Shards = k
			fig, err := Fig3(20, o)
			if err != nil {
				t.Fatalf("shards=%d: %v", k, err)
			}
			got := fig.Table().String()
			if base == "" {
				base = got
			} else if got != base {
				t.Fatalf("fig3 rendered bytes differ between shards=1 and shards=%d", k)
			}
		}
	})
}

// TestShardRunDeterminism: the same sharded run executed twice yields
// the same report — the worker goroutines may interleave differently,
// but the window barriers and mailbox keys fully determine the result.
func TestShardRunDeterminism(t *testing.T) {
	workload, until, err := CornerWorkload(1, 64, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	r := Run{
		Hosts: 64, Policy: fabric.PolicyRECN, Key: "shard-determinism",
		Workload: workload, Until: until, Shards: 3, DrainAll: true,
	}
	first := shardReport(t, r)
	second := shardReport(t, r)
	if first != second {
		t.Fatal("identical sharded runs produced different reports")
	}
}

// TestShardRejectsObserve: per-packet observation callbacks would run
// concurrently on shard goroutines; the run must refuse up front.
func TestShardRejectsObserve(t *testing.T) {
	workload, until, err := CornerWorkload(1, 64, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	r := Run{
		Hosts: 64, Policy: fabric.PolicyRECN,
		Workload: workload, Until: until, Shards: 2,
		Observe: func(_ sim.Time, _ *pkt.Packet) {},
	}
	if _, err := r.Execute(); err == nil || !strings.Contains(err.Error(), "Observe") {
		t.Fatalf("want Observe rejection, got %v", err)
	}
}

// TestShardedRunsNotCacheable: Shards is absent from SpecKey (a sharded
// and a serial run of the same spec produce different results), so a
// sharded run must never store to or load from the result cache.
func TestShardedRunsNotCacheable(t *testing.T) {
	r := Run{Hosts: 64, Policy: fabric.PolicyRECN, Key: "k", Until: 1}
	if !r.cacheable() {
		t.Fatal("serial keyed run should be cacheable")
	}
	r.Shards = 1
	if r.cacheable() {
		t.Fatal("sharded run must not be cacheable")
	}
}

// TestSweepStoreFailureSurfaced: a result that simulates correctly but
// cannot be written back must not fail the sweep — and must not be
// silent either. A directory squatting on the entry's final name makes
// the cache's atomic rename fail while the cache dir itself stays
// writable, which is exactly the shape of a mid-sweep disk fault.
func TestSweepStoreFailureSurfaced(t *testing.T) {
	workload, until, err := CornerWorkload(1, 64, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	r := Run{
		Hosts: 64, Policy: fabric.PolicyRECN, Key: "store-failure",
		Workload: workload, Until: until,
	}
	dir := t.TempDir()
	entry := filepath.Join(dir, fmt.Sprintf("%016x.json", r.SpecHash()))
	if err := os.Mkdir(entry, 0o755); err != nil {
		t.Fatal(err)
	}
	var summary CacheSummary
	seen := false
	results, err := Sweep([]Run{r}, Options{
		CacheDir: dir,
		OnCacheSummary: func(s CacheSummary) {
			summary = s
			seen = true
		},
	})
	if err != nil {
		t.Fatalf("store failure must not fail the sweep: %v", err)
	}
	if len(results) != 1 || results[0] == nil {
		t.Fatal("sweep returned no result")
	}
	if !seen {
		t.Fatal("OnCacheSummary was not called")
	}
	if summary.StoreFailures != 1 || summary.FirstStoreErr == nil {
		t.Fatalf("want 1 surfaced store failure, got %+v", summary)
	}
	if summary.Hits != 0 || summary.Misses != 1 {
		t.Fatalf("want 0 hits / 1 miss, got %+v", summary)
	}
}
