package experiments

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LatencyFig is an extension experiment (not a paper figure): the
// paper's introduction motivates congestion management with packet
// latency "increasing by several orders of magnitude" — this table
// quantifies it on a corner case, splitting each mechanism's latency
// distribution into before/during/after the congestion tree.
func LatencyFig(corner int, o Options) (*Table, error) {
	o = o.withDefaults()
	// The latency split needs the serial per-packet Observe path:
	// sharded deliveries run concurrently on shard goroutines and the
	// windowed schedule would change the samples. Reject up front
	// rather than silently ignoring the setting (or failing deep in
	// the run).
	if o.Shards > 0 {
		return nil, fmt.Errorf("experiments: latency figures need the serial per-packet Observe path; run without shards (got Shards=%d)", o.Shards)
	}
	policies := o.Policies
	if policies == nil {
		policies = []fabric.Policy{fabric.PolicyVOQnet, fabric.Policy1Q, fabric.PolicyRECN}
	}
	workload, until, err := CornerWorkload(corner, 64, o.PacketSize, o.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Extension: packet latency, corner case %d (windows in paper time)", corner),
		Header: []string{"policy", "window", "mean", "p50", "p99", "max"},
		Notes: []string{
			"paper intro: without congestion management, latency grows by orders of magnitude",
		},
	}
	windows := []struct {
		name     string
		from, to sim.Time
	}{
		{"before", 0, o.t(790)},
		{"during", o.t(800), o.t(980)},
		{"after", o.t(1100), o.t(1600)},
	}
	// One run per policy, fanned across the sweep workers. Each run's
	// Observe writes only its own window summaries, so the runs stay
	// independent; the rows render in policy order afterwards. (Shards
	// was rejected above: Observe needs the serial engine.)
	runs := make([]Run, len(policies))
	perPolicy := make([][]*stats.Latency, len(policies))
	for pi, p := range policies {
		lats := make([]*stats.Latency, len(windows))
		for i := range lats {
			lats[i] = stats.NewLatency()
		}
		perPolicy[pi] = lats
		runs[pi] = Run{
			Hosts:      64,
			Policy:     p,
			PacketSize: o.PacketSize,
			Workload:   workload,
			Until:      until,
			FaultSpec:  o.FaultSpec,
			Check:      o.Check,
			Observe: func(now sim.Time, pk *pkt.Packet) {
				for i, w := range windows {
					if now >= w.from && now < w.to {
						lats[i].Add(now - pk.CreatedAt)
					}
				}
			},
		}
	}
	if _, err := Sweep(runs, o); err != nil {
		return nil, err
	}
	for pi, p := range policies {
		for i, w := range windows {
			l := perPolicy[pi][i]
			t.AddRow(p.String(), w.name, l.Mean().String(), l.Quantile(0.5).String(),
				l.Quantile(0.99).String(), l.Max().String())
		}
	}
	return t, nil
}
