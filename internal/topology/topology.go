// Package topology builds the bidirectional multistage interconnection
// networks (MINs) used in the paper's evaluation and computes the
// deterministic, destination-based routes RECN relies on.
//
// The networks are perfect-shuffle bidirectional MINs, i.e. k-ary
// n-trees: n levels of switches, each with k down ports (toward hosts)
// and k up ports. The paper's three configurations map to:
//
//	64 hosts  → 4-ary 3-tree:           3 stages × 16 switches = 48
//	256 hosts → 4-ary 4-tree:           4 stages × 64 switches = 256
//	512 hosts → mixed-radix 5-stage:    5 stages × 128 switches = 640
//
// 512 is not a power of 4, so the 512-host network generalizes the tree
// to mixed radices (4,4,4,4,2): the top stage only needs a radix-2
// digit, matching the paper's 640 8-port switches in 5 stages (top-level
// switches leave ports unused, as any 512-port 5-stage 8-port-switch
// MIN must).
//
// Deterministic routing is the destination-based self-routing the paper
// assumes: a packet ascends until it reaches an ancestor of its
// destination, choosing at level l the up port given by the
// destination's l-th digit, then descends following the destination's
// digits. Consequently the remaining path from any switch to a given
// destination is unique — the property RECN's CAM path encoding needs.
package topology

import (
	"fmt"

	"repro/internal/pkt"
)

// Kind discriminates what a switch port connects to.
type Kind int

const (
	// KindNone marks an unused port (top-level up ports, and unused
	// ports on mixed-radix stages).
	KindNone Kind = iota
	// KindHost means the port connects to a host NIC.
	KindHost
	// KindSwitch means the port connects to another switch.
	KindSwitch
)

func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindSwitch:
		return "switch"
	default:
		return "none"
	}
}

// End identifies the far side of a link: a host, or a (switch, port)
// pair, or nothing.
type End struct {
	Kind Kind
	// Host is the host ID when Kind == KindHost.
	Host int
	// Switch and Port identify the peer when Kind == KindSwitch.
	Switch int
	Port   int
}

// Topology is an immutable description of one network instance.
type Topology struct {
	radices []int // digit radix per level, r[0] at the leaves
	k       int   // max radix = half the switch port count
	levels  int
	hosts   int
	perLvl  int // switches per level
	// placeValue[i] = product of radices below digit i (host digits).
	placeValue []int
	// swPlace[i] = place value of switch digit i (radix radices[i+1]).
	swPlace []int
}

// NewKAryNTree builds a uniform k-ary n-tree with k^n hosts.
func NewKAryNTree(k, n int) (*Topology, error) {
	if k < 2 || n < 1 {
		return nil, fmt.Errorf("topology: invalid k-ary n-tree (k=%d, n=%d)", k, n)
	}
	r := make([]int, n)
	for i := range r {
		r[i] = k
	}
	return NewMixedTree(r)
}

// NewMixedTree builds a tree with per-level digit radices. radices[0]
// is the leaf level (hosts per leaf switch); the product of all radices
// is the host count. Every radix must be ≥ 2 except the top, which may
// be ≥ 1... in practice ≥ 2 to be a real stage.
func NewMixedTree(radices []int) (*Topology, error) {
	if len(radices) == 0 {
		return nil, fmt.Errorf("topology: no radices")
	}
	k := 0
	hosts := 1
	for i, r := range radices {
		if r < 2 {
			return nil, fmt.Errorf("topology: radix %d at level %d (must be ≥ 2)", r, i)
		}
		if r > k {
			k = r
		}
		hosts *= r
	}
	if k > 127 {
		return nil, fmt.Errorf("topology: radix %d too large for turn encoding", k)
	}
	t := &Topology{
		radices: append([]int(nil), radices...),
		k:       k,
		levels:  len(radices),
		hosts:   hosts,
		perLvl:  hosts / radices[0],
	}
	t.placeValue = make([]int, t.levels)
	pv := 1
	for i := 0; i < t.levels; i++ {
		t.placeValue[i] = pv
		pv *= t.radices[i]
	}
	t.swPlace = make([]int, t.levels-1)
	pv = 1
	for i := 0; i < t.levels-1; i++ {
		t.swPlace[i] = pv
		pv *= t.radices[i+1]
	}
	return t, nil
}

// ForHosts returns the paper's network for a given host count:
// 64, 256 and 512 map to the three evaluated configurations. Other
// powers of 4 build uniform 4-ary trees.
func ForHosts(hosts int) (*Topology, error) {
	switch hosts {
	case 64:
		return NewKAryNTree(4, 3)
	case 256:
		return NewKAryNTree(4, 4)
	case 512:
		return NewMixedTree([]int{4, 4, 4, 4, 2})
	}
	// Accept any power of 4 for flexibility (16, 1024, ...).
	n := 0
	for v := hosts; v > 1; v /= 4 {
		if v%4 != 0 {
			return nil, fmt.Errorf("topology: unsupported host count %d (want 64, 256, 512 or a power of 4)", hosts)
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("topology: unsupported host count %d", hosts)
	}
	return NewKAryNTree(4, n)
}

// NumHosts returns the number of hosts (network endpoints).
func (t *Topology) NumHosts() int { return t.hosts }

// NumSwitches returns the total switch count across all stages.
func (t *Topology) NumSwitches() int { return t.levels * t.perLvl }

// Levels returns the number of switch stages.
func (t *Topology) Levels() int { return t.levels }

// SwitchesPerLevel returns the number of switches in each stage.
func (t *Topology) SwitchesPerLevel() int { return t.perLvl }

// PortsPerSwitch returns the (maximum) number of bidirectional ports on
// a switch: k down + k up. Ports are numbered 0..k-1 (down) and
// k..2k-1 (up); some may be unused on mixed-radix stages.
func (t *Topology) PortsPerSwitch() int { return 2 * t.k }

// K returns half the switch radix (the down-port count of a full stage).
func (t *Topology) K() int { return t.k }

// SwitchID maps (level, index) to a global switch ID.
func (t *Topology) SwitchID(level, idx int) int { return level*t.perLvl + idx }

// SwitchLevel returns the stage of a switch (0 = leaf stage).
func (t *Topology) SwitchLevel(id int) int { return id / t.perLvl }

// SwitchIndex returns the within-stage index of a switch.
func (t *Topology) SwitchIndex(id int) int { return id % t.perLvl }

// DownPorts returns how many down ports are used at a given level.
func (t *Topology) DownPorts(level int) int { return t.radices[level] }

// UpPorts returns how many up ports are used at a given level (0 at the
// top stage).
func (t *Topology) UpPorts(level int) int {
	if level >= t.levels-1 {
		return 0
	}
	return t.radices[level+1]
}

// UpPortRange returns the contiguous range [lo, lo+n) of ascent (up)
// ports at a switch (n == 0 at the top stage). On these trees every up
// port of a switch reaches an ancestor from which any packet's
// remaining route stays valid: the ascent turn at level l only selects
// which level-(l+1) switch forwards the packet (Peer changes switch
// digit l alone), while all later route turns depend only on the
// destination and the hop's level (see Route). A packet about to take
// one up port may therefore take any of them — the interchangeability
// adaptive-routing policies exploit (TestUpPortsInterchangeable locks
// the property).
func (t *Topology) UpPortRange(sw int) (lo, n int) {
	return t.k, t.UpPorts(t.SwitchLevel(sw))
}

// hostDigit extracts digit i (radix radices[i]) of host h.
func (t *Topology) hostDigit(h, i int) int {
	return h / t.placeValue[i] % t.radices[i]
}

// swDigit extracts digit i (radix radices[i+1]) of switch index w.
func (t *Topology) swDigit(w, i int) int {
	return w / t.swPlace[i] % t.radices[i+1]
}

// swSetDigit returns w with digit i replaced by v.
func (t *Topology) swSetDigit(w, i, v int) int {
	return w + (v-t.swDigit(w, i))*t.swPlace[i]
}

// HostAttach returns the leaf switch and down port a host connects to.
func (t *Topology) HostAttach(h int) (sw, port int) {
	if h < 0 || h >= t.hosts {
		panic(fmt.Sprintf("topology: host %d out of range", h))
	}
	return t.SwitchID(0, h/t.radices[0]), t.hostDigit(h, 0)
}

// Peer returns what the given switch port connects to.
func (t *Topology) Peer(sw, port int) End {
	level, w := t.SwitchLevel(sw), t.SwitchIndex(sw)
	if port < t.k { // down port
		c := port
		if c >= t.radices[level] {
			return End{Kind: KindNone}
		}
		if level == 0 {
			return End{Kind: KindHost, Host: w*t.radices[0] + c}
		}
		// Down port c of sw(level, w) ↔ up port (k + w_{level-1}) of
		// sw(level-1, w[level-1 := c]).
		peer := t.SwitchID(level-1, t.swSetDigit(w, level-1, c))
		return End{Kind: KindSwitch, Switch: peer, Port: t.k + t.swDigit(w, level-1)}
	}
	// Up port.
	j := port - t.k
	if level == t.levels-1 || j >= t.radices[level+1] {
		return End{Kind: KindNone}
	}
	// Up port j of sw(level, w) ↔ down port w_level of
	// sw(level+1, w[level := j]).
	peer := t.SwitchID(level+1, t.swSetDigit(w, level, j))
	return End{Kind: KindSwitch, Switch: peer, Port: t.swDigit(w, level)}
}

// isAncestor reports whether switch (level, w) is an ancestor of host d,
// i.e. the host is reachable purely descending.
func (t *Topology) isAncestor(level, w, d int) bool {
	for i := level; i < t.levels-1; i++ {
		if t.swDigit(w, i) != t.hostDigit(d, i+1) {
			return false
		}
	}
	return true
}

// Route computes the deterministic source route from src to dst: the
// output port index to take at each switch hop. src and dst must differ.
func (t *Topology) Route(src, dst int) (pkt.Route, error) {
	if src == dst {
		return nil, fmt.Errorf("topology: route from host %d to itself", src)
	}
	if src < 0 || src >= t.hosts || dst < 0 || dst >= t.hosts {
		return nil, fmt.Errorf("topology: route %d→%d out of range (hosts=%d)", src, dst, t.hosts)
	}
	// L = highest digit where src and dst differ: the LCA stage.
	l := 0
	for i := t.levels - 1; i >= 0; i-- {
		if t.hostDigit(src, i) != t.hostDigit(dst, i) {
			l = i
			break
		}
	}
	route := make(pkt.Route, 0, 2*l+1)
	for lvl := 0; lvl < l; lvl++ {
		route = append(route, pkt.Turn(t.k+t.upDigit(dst, lvl)))
	}
	for lvl := l; lvl >= 0; lvl-- {
		route = append(route, pkt.Turn(t.hostDigit(dst, lvl)))
	}
	return route, nil
}

// upDigit is the deterministic up-port choice at a given level for a
// destination: the destination's digit at that level, folded into the
// level's up-port range when radices differ (mixed-radix stages).
func (t *Topology) upDigit(dst, level int) int {
	return t.hostDigit(dst, level) % t.radices[level+1]
}

// NextPort returns the memoryless routing decision at a switch for a
// destination host: the output port a packet to dst must take. RECN
// relies on this being a function of (switch, dst) only.
func (t *Topology) NextPort(sw, dst int) pkt.Turn {
	level, w := t.SwitchLevel(sw), t.SwitchIndex(sw)
	if t.isAncestor(level, w, dst) {
		return pkt.Turn(t.hostDigit(dst, level))
	}
	return pkt.Turn(t.k + t.upDigit(dst, level))
}

func (t *Topology) String() string {
	return fmt.Sprintf("MIN %d×%d (%d stages × %d switches, radices %v)",
		t.hosts, t.hosts, t.levels, t.perLvl, t.radices)
}
