package topology

import (
	"fmt"

	"repro/internal/pkt"
)

// Mesh is a 2D mesh of switches with one host per switch — the paper's
// §3 notes RECN "is valid for any network topology, including both
// direct networks (e.g. meshes and tori) and MINs"; this demonstrates
// it. Routing is deterministic dimension-order (X first, then Y),
// which preserves the property RECN needs: the remaining path from any
// switch to a destination is unique.
//
// Port numbering per switch:
//
//	0 = -X (west)   1 = +X (east)
//	2 = -Y (south)  3 = +Y (north)
//	4 = host
type Mesh struct {
	cols, rows int
}

// Mesh port indices.
const (
	MeshWest = iota
	MeshEast
	MeshSouth
	MeshNorth
	MeshHost
	meshPorts
)

// NewMesh builds a cols×rows mesh.
func NewMesh(cols, rows int) (*Mesh, error) {
	if cols < 2 || rows < 2 {
		return nil, fmt.Errorf("topology: mesh %dx%d too small", cols, rows)
	}
	if cols*rows > 1<<16 {
		return nil, fmt.Errorf("topology: mesh %dx%d too large", cols, rows)
	}
	return &Mesh{cols: cols, rows: rows}, nil
}

// NumHosts returns the number of hosts (one per switch).
func (m *Mesh) NumHosts() int { return m.cols * m.rows }

// NumSwitches returns the switch count.
func (m *Mesh) NumSwitches() int { return m.cols * m.rows }

// PortsPerSwitch returns 5: four mesh directions plus the host port.
func (m *Mesh) PortsPerSwitch() int { return meshPorts }

// Cols returns the mesh width.
func (m *Mesh) Cols() int { return m.cols }

// Rows returns the mesh height.
func (m *Mesh) Rows() int { return m.rows }

// XY converts a switch/host ID to mesh coordinates.
func (m *Mesh) XY(id int) (x, y int) { return id % m.cols, id / m.cols }

// ID converts mesh coordinates to a switch/host ID.
func (m *Mesh) ID(x, y int) int { return y*m.cols + x }

// Peer returns what a switch port connects to. Border ports in missing
// directions are unused.
func (m *Mesh) Peer(sw, port int) End {
	x, y := m.XY(sw)
	switch port {
	case MeshWest:
		if x == 0 {
			return End{Kind: KindNone}
		}
		return End{Kind: KindSwitch, Switch: m.ID(x-1, y), Port: MeshEast}
	case MeshEast:
		if x == m.cols-1 {
			return End{Kind: KindNone}
		}
		return End{Kind: KindSwitch, Switch: m.ID(x+1, y), Port: MeshWest}
	case MeshSouth:
		if y == 0 {
			return End{Kind: KindNone}
		}
		return End{Kind: KindSwitch, Switch: m.ID(x, y-1), Port: MeshNorth}
	case MeshNorth:
		if y == m.rows-1 {
			return End{Kind: KindNone}
		}
		return End{Kind: KindSwitch, Switch: m.ID(x, y+1), Port: MeshSouth}
	case MeshHost:
		return End{Kind: KindHost, Host: sw}
	default:
		return End{Kind: KindNone}
	}
}

// HostAttach returns the switch and port a host connects to.
func (m *Mesh) HostAttach(h int) (sw, port int) {
	if h < 0 || h >= m.NumHosts() {
		panic(fmt.Sprintf("topology: mesh host %d out of range", h))
	}
	return h, MeshHost
}

// Route computes the dimension-order (X then Y) source route.
func (m *Mesh) Route(src, dst int) (pkt.Route, error) {
	if src == dst {
		return nil, fmt.Errorf("topology: route from host %d to itself", src)
	}
	if src < 0 || src >= m.NumHosts() || dst < 0 || dst >= m.NumHosts() {
		return nil, fmt.Errorf("topology: mesh route %d→%d out of range", src, dst)
	}
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	var route pkt.Route
	for x := sx; x < dx; x++ {
		route = append(route, pkt.Turn(MeshEast))
	}
	for x := sx; x > dx; x-- {
		route = append(route, pkt.Turn(MeshWest))
	}
	for y := sy; y < dy; y++ {
		route = append(route, pkt.Turn(MeshNorth))
	}
	for y := sy; y > dy; y-- {
		route = append(route, pkt.Turn(MeshSouth))
	}
	route = append(route, pkt.Turn(MeshHost))
	return route, nil
}

// NextPort is the memoryless dimension-order decision at a switch for a
// destination — RECN relies on this being a function of (switch, dst).
func (m *Mesh) NextPort(sw, dst int) pkt.Turn {
	x, y := m.XY(sw)
	dx, dy := m.XY(dst)
	switch {
	case x < dx:
		return pkt.Turn(MeshEast)
	case x > dx:
		return pkt.Turn(MeshWest)
	case y < dy:
		return pkt.Turn(MeshNorth)
	case y > dy:
		return pkt.Turn(MeshSouth)
	default:
		return pkt.Turn(MeshHost)
	}
}

func (m *Mesh) String() string {
	return fmt.Sprintf("mesh %d×%d (%d switches, 1 host each, XY routing)", m.cols, m.rows, m.NumSwitches())
}
