package topology

import (
	"fmt"
	"testing"

	"repro/internal/pkt"
)

// walkRoute follows a route hop by hop from src's attach switch using
// Peer, checking that every turn is a wired port, and returns the
// delivered host (-1 if the route ends mid-fabric) plus the switches
// visited.
func walkRoute(t *testing.T, topo *Topology, src int, route []int) (host int, visited []int) {
	t.Helper()
	sw, _ := topo.HostAttach(src)
	for i, turn := range route {
		visited = append(visited, sw)
		end := topo.Peer(sw, turn)
		switch end.Kind {
		case KindHost:
			if i != len(route)-1 {
				t.Fatalf("src %d: route %v reaches host %d at hop %d of %d", src, route, end.Host, i+1, len(route))
			}
			return end.Host, visited
		case KindSwitch:
			sw = end.Switch
		default:
			t.Fatalf("src %d: route %v takes unwired port %d at switch %d (hop %d)", src, route, turn, sw, i)
		}
	}
	return -1, visited
}

// The fat tree's adaptive-ascent routes must stay minimal, deliver,
// keep their ascent turns inside each stage's up-port range, and share
// the base MIN's unique destination-digit descent — the properties
// RECN's CAM path matching and the deadlock-free up*/down* argument
// rest on.
func TestFatTreeRouteProperties(t *testing.T) {
	for _, hosts := range []int{64, 256} {
		t.Run(fmt.Sprintf("hosts=%d", hosts), func(t *testing.T) {
			ft, err := NewFatTree(hosts)
			if err != nil {
				t.Fatal(err)
			}
			base := ft.Topology
			for src := 0; src < hosts; src++ {
				for dst := 0; dst < hosts; dst++ {
					if src == dst {
						continue
					}
					route, err := ft.Route(src, dst)
					if err != nil {
						t.Fatal(err)
					}
					ref, err := base.Route(src, dst)
					if err != nil {
						t.Fatal(err)
					}
					// Minimal: same length as the base MIN's route (the
					// LCA level depends only on the host digits).
					if len(route) != len(ref) {
						t.Fatalf("%d→%d: fat-tree route %v has length %d, base %v has %d",
							src, dst, route, len(route), ref, len(ref))
					}
					// The descent (everything after the ascent) is the
					// unique destination-digit path, identical to base.
					ascents := len(route) / 2
					for i := ascents; i < len(route); i++ {
						if route[i] != ref[i] {
							t.Fatalf("%d→%d: descent differs at hop %d: fat %v vs base %v", src, dst, i, route, ref)
						}
					}
					got, visited := walkRoute(t, base, src, turnsToInts(route))
					if got != dst {
						t.Fatalf("%d→%d: route %v delivered to %d", src, dst, route, got)
					}
					// Every ascent turn is inside its switch's up range.
					for i := 0; i < ascents; i++ {
						lo, n := base.UpPortRange(visited[i])
						if int(route[i]) < lo || int(route[i]) >= lo+n {
							t.Fatalf("%d→%d: ascent turn %d at switch %d outside up range [%d,%d)",
								src, dst, route[i], visited[i], lo, lo+n)
						}
					}
				}
			}
		})
	}
}

// Different sources must climb through different intermediate switches
// toward the same destination — the load spreading that distinguishes
// the fat tree from the base MIN's destination-only ascent.
func TestFatTreeSpreadsAscent(t *testing.T) {
	ft, err := NewFatTree(64)
	if err != nil {
		t.Fatal(err)
	}
	dst := 63
	tops := map[int]bool{}
	for src := 0; src < 16; src++ { // all share the top-level LCA with 63
		route, err := ft.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		_, visited := walkRoute(t, ft.Topology, src, turnsToInts(route))
		tops[visited[len(route)/2]] = true // LCA switch (last ascent hop's peer)
	}
	if len(tops) < 2 {
		t.Fatalf("16 sources to host %d all climbed through the same LCA switch %v", dst, tops)
	}
	// The base MIN, by contrast, funnels them all through one ancestor.
	baseTops := map[int]bool{}
	for src := 0; src < 16; src++ {
		route, err := ft.Topology.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		_, visited := walkRoute(t, ft.Topology, src, turnsToInts(route))
		baseTops[visited[len(route)/2]] = true
	}
	if len(baseTops) != 1 {
		t.Fatalf("base MIN used %d LCA switches (expected the single destination-digit ancestor)", len(baseTops))
	}
}

// Self-routes and out-of-range hosts must fail the same way the base
// topology fails them.
func TestFatTreeRouteErrors(t *testing.T) {
	ft, err := NewFatTree(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int{{5, 5}, {-1, 3}, {3, 64}} {
		if _, err := ft.Route(c[0], c[1]); err == nil {
			t.Errorf("Route(%d, %d) accepted", c[0], c[1])
		}
	}
	if _, err := NewFatTree(48); err == nil {
		t.Error("NewFatTree(48) accepted a non-power-of-4 host count")
	}
}

func turnsToInts(route pkt.Route) []int {
	out := make([]int, len(route))
	for i, turn := range route {
		out[i] = int(turn)
	}
	return out
}
