package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/pkt"
)

func TestMeshConstruction(t *testing.T) {
	m, err := NewMesh(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumHosts() != 12 || m.NumSwitches() != 12 || m.PortsPerSwitch() != 5 {
		t.Fatalf("mesh dims: hosts=%d switches=%d ports=%d", m.NumHosts(), m.NumSwitches(), m.PortsPerSwitch())
	}
	if m.Cols() != 4 || m.Rows() != 3 {
		t.Fatal("Cols/Rows")
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
	if _, err := NewMesh(1, 5); err == nil {
		t.Error("1-wide mesh accepted")
	}
	if _, err := NewMesh(1000, 1000); err == nil {
		t.Error("huge mesh accepted")
	}
}

func TestMeshWiringSymmetric(t *testing.T) {
	m, _ := NewMesh(5, 4)
	hostSeen := map[int]bool{}
	for sw := 0; sw < m.NumSwitches(); sw++ {
		for port := 0; port < m.PortsPerSwitch(); port++ {
			end := m.Peer(sw, port)
			switch end.Kind {
			case KindSwitch:
				back := m.Peer(end.Switch, end.Port)
				if back.Kind != KindSwitch || back.Switch != sw || back.Port != port {
					t.Fatalf("asymmetric link (%d,%d)", sw, port)
				}
			case KindHost:
				if hostSeen[end.Host] {
					t.Fatalf("host %d attached twice", end.Host)
				}
				hostSeen[end.Host] = true
				asw, aport := m.HostAttach(end.Host)
				if asw != sw || aport != port {
					t.Fatalf("HostAttach mismatch for host %d", end.Host)
				}
			}
		}
	}
	if len(hostSeen) != m.NumHosts() {
		t.Fatalf("%d hosts attached", len(hostSeen))
	}
	// Corner switch has exactly 2 mesh neighbors.
	neighbors := 0
	for port := 0; port < 4; port++ {
		if m.Peer(0, port).Kind == KindSwitch {
			neighbors++
		}
	}
	if neighbors != 2 {
		t.Fatalf("corner neighbors = %d", neighbors)
	}
	if m.Peer(0, 99).Kind != KindNone {
		t.Fatal("bogus port wired")
	}
}

// walkMesh follows a route through the wiring.
func walkMesh(m *Mesh, src int, route pkt.Route) int {
	sw, _ := m.HostAttach(src)
	for i, turn := range route {
		end := m.Peer(sw, int(turn))
		switch end.Kind {
		case KindHost:
			if i != len(route)-1 {
				return -1
			}
			return end.Host
		case KindSwitch:
			sw = end.Switch
		default:
			return -1
		}
	}
	return -1
}

func TestMeshRoutesAllPairs(t *testing.T) {
	m, _ := NewMesh(4, 4)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				if _, err := m.Route(src, dst); err == nil {
					t.Fatal("self route accepted")
				}
				continue
			}
			route, err := m.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if got := walkMesh(m, src, route); got != dst {
				t.Fatalf("route %d→%d delivered to %d", src, dst, got)
			}
			// Minimal length: Manhattan distance + host hop.
			sx, sy := m.XY(src)
			dx, dy := m.XY(dst)
			manhattan := abs(sx-dx) + abs(sy-dy)
			if len(route) != manhattan+1 {
				t.Fatalf("route %d→%d length %d, want %d", src, dst, len(route), manhattan+1)
			}
		}
	}
	if _, err := m.Route(-1, 3); err == nil {
		t.Error("negative src accepted")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Dimension-order routing gives RECN its required property: the
// remaining path from any switch to a destination is unique. Verified
// by checking routes against the memoryless NextPort decision.
func TestMeshRouteMatchesNextPort(t *testing.T) {
	m, _ := NewMesh(6, 5)
	f := func(aU, bU uint16) bool {
		src, dst := int(aU)%30, int(bU)%30
		if src == dst {
			return true
		}
		route, err := m.Route(src, dst)
		if err != nil {
			return false
		}
		sw, _ := m.HostAttach(src)
		for _, turn := range route {
			if m.NextPort(sw, dst) != turn {
				return false
			}
			end := m.Peer(sw, int(turn))
			if end.Kind == KindSwitch {
				sw = end.Switch
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMeshHostAttachPanics(t *testing.T) {
	m, _ := NewMesh(3, 3)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	m.HostAttach(9)
}
