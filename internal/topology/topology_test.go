package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pkt"
)

func mustTopo(t *testing.T, hosts int) *Topology {
	t.Helper()
	topo, err := ForHosts(hosts)
	if err != nil {
		t.Fatalf("ForHosts(%d): %v", hosts, err)
	}
	return topo
}

func TestPaperConfigurations(t *testing.T) {
	cases := []struct {
		hosts, switches, levels, perLevel int
	}{
		{64, 48, 3, 16},    // 64×64: 48 switches, 3 stages
		{256, 256, 4, 64},  // 256×256: 256 switches, 4 stages
		{512, 640, 5, 128}, // 512×512: 640 switches, 5 stages
	}
	for _, c := range cases {
		topo := mustTopo(t, c.hosts)
		if topo.NumHosts() != c.hosts {
			t.Errorf("%d hosts: NumHosts=%d", c.hosts, topo.NumHosts())
		}
		if topo.NumSwitches() != c.switches {
			t.Errorf("%d hosts: NumSwitches=%d, want %d", c.hosts, topo.NumSwitches(), c.switches)
		}
		if topo.Levels() != c.levels {
			t.Errorf("%d hosts: Levels=%d, want %d", c.hosts, topo.Levels(), c.levels)
		}
		if topo.SwitchesPerLevel() != c.perLevel {
			t.Errorf("%d hosts: SwitchesPerLevel=%d, want %d", c.hosts, topo.SwitchesPerLevel(), c.perLevel)
		}
		if topo.PortsPerSwitch() != 8 {
			t.Errorf("%d hosts: PortsPerSwitch=%d, want 8", c.hosts, topo.PortsPerSwitch())
		}
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := ForHosts(100); err == nil {
		t.Error("ForHosts(100) succeeded, want error")
	}
	if _, err := ForHosts(0); err == nil {
		t.Error("ForHosts(0) succeeded, want error")
	}
	if _, err := NewKAryNTree(1, 3); err == nil {
		t.Error("NewKAryNTree(1,3) succeeded, want error")
	}
	if _, err := NewMixedTree(nil); err == nil {
		t.Error("NewMixedTree(nil) succeeded, want error")
	}
	if _, err := NewMixedTree([]int{4, 1}); err == nil {
		t.Error("NewMixedTree with radix 1 succeeded, want error")
	}
	if _, err := NewMixedTree([]int{200}); err == nil {
		t.Error("NewMixedTree with radix 200 succeeded, want error")
	}
}

func TestForHostsPowerOfFour(t *testing.T) {
	topo, err := ForHosts(16)
	if err != nil {
		t.Fatalf("ForHosts(16): %v", err)
	}
	if topo.NumSwitches() != 8 || topo.Levels() != 2 {
		t.Errorf("16 hosts: %d switches, %d levels", topo.NumSwitches(), topo.Levels())
	}
}

// Every switch-to-switch link must be consistent in both directions, and
// host attachments must be a bijection.
func TestLinkConsistency(t *testing.T) {
	for _, hosts := range []int{64, 256, 512} {
		topo := mustTopo(t, hosts)
		seenHosts := make(map[int]bool)
		for sw := 0; sw < topo.NumSwitches(); sw++ {
			for port := 0; port < topo.PortsPerSwitch(); port++ {
				end := topo.Peer(sw, port)
				switch end.Kind {
				case KindNone:
					continue
				case KindHost:
					if seenHosts[end.Host] {
						t.Fatalf("hosts=%d: host %d attached twice", hosts, end.Host)
					}
					seenHosts[end.Host] = true
					asw, aport := topo.HostAttach(end.Host)
					if asw != sw || aport != port {
						t.Fatalf("hosts=%d: HostAttach(%d)=(%d,%d), Peer says (%d,%d)",
							hosts, end.Host, asw, aport, sw, port)
					}
				case KindSwitch:
					back := topo.Peer(end.Switch, end.Port)
					if back.Kind != KindSwitch || back.Switch != sw || back.Port != port {
						t.Fatalf("hosts=%d: link not symmetric: (%d,%d)→(%d,%d)→(%v)",
							hosts, sw, port, end.Switch, end.Port, back)
					}
					// Links only connect adjacent stages.
					l1, l2 := topo.SwitchLevel(sw), topo.SwitchLevel(end.Switch)
					if l2-l1 != 1 && l1-l2 != 1 {
						t.Fatalf("hosts=%d: link spans stages %d and %d", hosts, l1, l2)
					}
				}
			}
		}
		if len(seenHosts) != hosts {
			t.Fatalf("hosts=%d: only %d hosts attached", hosts, len(seenHosts))
		}
	}
}

// walk follows a route hop by hop through the wiring and returns the
// host it is delivered to (or -1 on any inconsistency).
func walk(topo *Topology, src int, route pkt.Route) int {
	sw, _ := topo.HostAttach(src)
	for i, turn := range route {
		end := topo.Peer(sw, int(turn))
		switch end.Kind {
		case KindHost:
			if i != len(route)-1 {
				return -1 // delivered early
			}
			return end.Host
		case KindSwitch:
			sw = end.Switch
		default:
			return -1 // dangling port
		}
	}
	return -1 // route exhausted without delivery
}

func TestRoutesDeliverAllPairs64(t *testing.T) {
	topo := mustTopo(t, 64)
	for src := 0; src < 64; src++ {
		for dst := 0; dst < 64; dst++ {
			if src == dst {
				if _, err := topo.Route(src, dst); err == nil {
					t.Fatalf("Route(%d,%d) to self succeeded", src, dst)
				}
				continue
			}
			route, err := topo.Route(src, dst)
			if err != nil {
				t.Fatalf("Route(%d,%d): %v", src, dst, err)
			}
			if got := walk(topo, src, route); got != dst {
				t.Fatalf("Route(%d,%d)=%v delivered to %d", src, dst, route, got)
			}
			// Up/down path shape: a prefix of up turns, then downs.
			downSeen := false
			for _, turn := range route {
				up := int(turn) >= topo.K()
				if up && downSeen {
					t.Fatalf("Route(%d,%d)=%v ascends after descending", src, dst, route)
				}
				if !up {
					downSeen = true
				}
			}
		}
	}
}

func TestRoutesDeliverSampled(t *testing.T) {
	for _, hosts := range []int{256, 512} {
		topo := mustTopo(t, hosts)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 3000; i++ {
			src := rng.Intn(hosts)
			dst := rng.Intn(hosts)
			if src == dst {
				continue
			}
			route, err := topo.Route(src, dst)
			if err != nil {
				t.Fatalf("hosts=%d Route(%d,%d): %v", hosts, src, dst, err)
			}
			if got := walk(topo, src, route); got != dst {
				t.Fatalf("hosts=%d Route(%d,%d)=%v delivered to %d", hosts, src, dst, route, got)
			}
		}
	}
}

func TestRouteErrors(t *testing.T) {
	topo := mustTopo(t, 64)
	if _, err := topo.Route(-1, 5); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := topo.Route(0, 64); err == nil {
		t.Error("out-of-range dst accepted")
	}
}

// The property RECN depends on: the remaining path to a destination is a
// function of the current switch only. We verify that routes agree with
// the memoryless NextPort decision at every hop.
func TestRouteMatchesNextPort(t *testing.T) {
	for _, hosts := range []int{64, 512} {
		topo := mustTopo(t, hosts)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			src, dst := rng.Intn(hosts), rng.Intn(hosts)
			if src == dst {
				continue
			}
			route, err := topo.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			sw, _ := topo.HostAttach(src)
			for hop, turn := range route {
				if np := topo.NextPort(sw, dst); np != turn {
					t.Fatalf("hosts=%d %d→%d hop %d at switch %d: route turn %d, NextPort %d",
						hosts, src, dst, hop, sw, turn, np)
				}
				end := topo.Peer(sw, int(turn))
				if end.Kind == KindSwitch {
					sw = end.Switch
				}
			}
		}
	}
}

// Uniqueness of remaining paths: two routes to the same destination that
// meet at a switch must coincide from that point on.
func TestQuickRemainingPathUnique(t *testing.T) {
	topo := mustTopo(t, 64)
	f := func(aU, bU, dU uint8) bool {
		a, b, d := int(aU)%64, int(bU)%64, int(dU)%64
		if a == d || b == d {
			return true
		}
		ra, _ := topo.Route(a, d)
		rb, _ := topo.Route(b, d)
		// Trace both and record (switch → remaining route suffix).
		suffix := make(map[int]string)
		trace := func(src int, r pkt.Route) bool {
			sw, _ := topo.HostAttach(src)
			for hop := range r {
				rem := string(r[hop:])
				if prev, ok := suffix[sw]; ok && prev != rem {
					return false
				}
				suffix[sw] = rem
				end := topo.Peer(sw, int(r[hop]))
				if end.Kind == KindSwitch {
					sw = end.Switch
				}
			}
			return true
		}
		return trace(a, ra) && trace(b, rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRouteLengths(t *testing.T) {
	topo := mustTopo(t, 64)
	// Hosts 0 and 1 share a leaf switch: a single down turn.
	r, _ := topo.Route(0, 1)
	if len(r) != 1 {
		t.Errorf("Route(0,1) length %d, want 1", len(r))
	}
	// Hosts 0 and 63 differ in the top digit: full ascent + descent.
	r, _ = topo.Route(0, 63)
	if len(r) != 5 {
		t.Errorf("Route(0,63) length %d, want 5", len(r))
	}
}

// Deterministic destination-based ascent concentrates traffic: all
// packets to the same destination use the same up-port index at a level.
func TestDestinationBasedAscent(t *testing.T) {
	topo := mustTopo(t, 64)
	dst := 32
	upAtLevel := map[int]pkt.Turn{}
	for src := 0; src < 64; src++ {
		if src == dst {
			continue
		}
		route, _ := topo.Route(src, dst)
		sw, _ := topo.HostAttach(src)
		for _, turn := range route {
			if int(turn) >= topo.K() {
				lvl := topo.SwitchLevel(sw)
				if prev, ok := upAtLevel[lvl]; ok && prev != turn {
					t.Fatalf("destination %d uses up ports %d and %d at level %d", dst, prev, turn, lvl)
				}
				upAtLevel[lvl] = turn
			}
			end := topo.Peer(sw, int(turn))
			if end.Kind == KindSwitch {
				sw = end.Switch
			}
		}
	}
}

func TestDownUpPortCounts(t *testing.T) {
	topo := mustTopo(t, 512)
	if topo.DownPorts(0) != 4 || topo.UpPorts(0) != 4 {
		t.Errorf("level 0: down=%d up=%d", topo.DownPorts(0), topo.UpPorts(0))
	}
	if topo.UpPorts(3) != 2 { // below the radix-2 top stage
		t.Errorf("level 3 up ports = %d, want 2", topo.UpPorts(3))
	}
	if topo.UpPorts(4) != 0 {
		t.Errorf("top level up ports = %d, want 0", topo.UpPorts(4))
	}
	if topo.DownPorts(4) != 2 {
		t.Errorf("top level down ports = %d, want 2", topo.DownPorts(4))
	}
}

func TestHostAttachPanics(t *testing.T) {
	topo := mustTopo(t, 64)
	defer func() {
		if recover() == nil {
			t.Error("HostAttach(-1) did not panic")
		}
	}()
	topo.HostAttach(-1)
}

func TestString(t *testing.T) {
	topo := mustTopo(t, 64)
	if topo.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkRoute64(b *testing.B) {
	topo, _ := ForHosts(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = topo.Route(i%64, (i+17)%64)
	}
}

func BenchmarkRoute512(b *testing.B) {
	topo, _ := ForHosts(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = topo.Route(i%512, (i+211)%512)
	}
}
