package topology

import (
	"fmt"

	"repro/internal/pkt"
)

// FatTree is a k-ary n-tree with deterministic adaptive up-routing:
// structurally identical to the perfect-shuffle MIN (it embeds one, so
// wiring, host attachment and the AlternateRouter up-port range are
// shared), but the ascent turn at level l is a function of BOTH
// endpoints — (src_l + dst_l) mod upRadix — instead of the
// destination alone. Different sources feeding the same destination
// therefore climb through different intermediate switches, spreading
// load across the tree's path diversity the way adaptive fat-tree
// routing does, while every (src, dst) pair still gets one fixed
// route:
//
//   - routes stay deterministic and source-resolved, so RECN's CAM
//     path matching is untouched — a packet's remaining route is
//     carried in the packet, and the descent from the least common
//     ancestor is still the unique destination-digit path;
//   - every route is minimal (same ascent height as the base MIN: the
//     least common ancestor level depends only on where the host
//     digits differ);
//   - ascent turns stay inside the UpPortRange of each stage, so the
//     ARN steering machinery can re-aim them exactly as on the base
//     topology.
//
// The fat-tree property test locks all three.
type FatTree struct {
	*Topology
}

// NewFatTree builds the fat tree for a host count ForHosts accepts
// (64, 256, 512 or any power of 4 — the scaling figures use 1024 and
// 4096).
func NewFatTree(hosts int) (*FatTree, error) {
	base, err := ForHosts(hosts)
	if err != nil {
		return nil, err
	}
	return &FatTree{Topology: base}, nil
}

// Route computes the deterministic minimal route from src to dst with
// source-spread ascent turns (see the type comment); the descent is the
// base tree's unique destination-digit path.
func (t *FatTree) Route(src, dst int) (pkt.Route, error) {
	if src == dst {
		return nil, fmt.Errorf("topology: route from host %d to itself", src)
	}
	if src < 0 || src >= t.hosts || dst < 0 || dst >= t.hosts {
		return nil, fmt.Errorf("topology: route %d→%d out of range (hosts=%d)", src, dst, t.hosts)
	}
	// L = highest digit where src and dst differ: the LCA stage.
	l := 0
	for i := t.levels - 1; i >= 0; i-- {
		if t.hostDigit(src, i) != t.hostDigit(dst, i) {
			l = i
			break
		}
	}
	route := make(pkt.Route, 0, 2*l+1)
	for lvl := 0; lvl < l; lvl++ {
		up := (t.hostDigit(src, lvl) + t.hostDigit(dst, lvl)) % t.radices[lvl+1]
		route = append(route, pkt.Turn(t.k+up))
	}
	for lvl := l; lvl >= 0; lvl-- {
		route = append(route, pkt.Turn(t.hostDigit(dst, lvl)))
	}
	return route, nil
}

func (t *FatTree) String() string {
	return fmt.Sprintf("fat tree %d×%d (%d stages × %d switches, radices %v, adaptive ascent)",
		t.hosts, t.hosts, t.levels, t.perLvl, t.radices)
}
