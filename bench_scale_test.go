package repro

// Memory-scaling benchmark: the measured curve behind BENCH_PR11.json —
// fabric construction time, event rate, modeled control-state footprint
// and real process memory for the fat-tree scaling hotspot at 512, 1024
// and 4096 hosts under VOQnet (the O(hosts)-state policy the lazy
// fabric exists for).
//
// Usage:
//
//	SCALE_BENCH_JSON=BENCH_PR11.json go test -run TestEmitScaleBench .
//	SCALE_BENCH_BASELINE=BENCH_PR11.json go test -run TestScaleBenchGuard .
//
// The guard re-measures the 4096-host point and fails if peak RSS
// exceeds the recorded budget, if the event rate falls below
// SCALE_BENCH_RATIO (default 0.9) of the recorded rate, or if the
// deterministic state model diverges from the recorded bytes. Without
// the environment variables both tests skip (TestScaleBenchSmoke covers
// the measurement path unconditionally).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fabric"
)

// scaleBenchScale is the time compression every recorded point uses;
// event rates at different scales are not comparable, so the guard
// refuses baselines recorded at any other value.
const scaleBenchScale = 0.02

type scalePoint struct {
	Hosts             int     `json:"hosts"`
	Policy            string  `json:"policy"`
	ConstructionNs    int64   `json:"construction_ns"`
	RunNs             int64   `json:"run_ns"`
	Events            uint64  `json:"events"`
	EventsPerSec      float64 `json:"events_per_sec"`
	StateBytes        int64   `json:"state_bytes"`
	BytesPerPort      float64 `json:"bytes_per_port"`
	EagerStateBytes   int64   `json:"eager_state_bytes"`
	EagerBytesPerPort float64 `json:"eager_bytes_per_port"`
	LazyEagerRatio    float64 `json:"lazy_eager_ratio"`
	HeapBytes         uint64  `json:"heap_bytes"`
	PeakRSSBytes      int64   `json:"peak_rss_bytes"`
}

type scaleBench struct {
	GoVersion  string  `json:"go_version"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale"`
	Topo       string  `json:"topo"`
	// PeakRSSBudgetBytes is the guard's ceiling: 2× the peak RSS
	// measured when the file was recorded (slack for allocator and CI
	// variance; a lazy-state regression blows far past 2×).
	PeakRSSBudgetBytes int64        `json:"peak_rss_budget_bytes"`
	Points             []scalePoint `json:"points"`
}

func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024 // linux reports KB
}

// measureScalePoint builds and runs the scaling hotspot once at one
// network size. Construction is timed separately from the run; heap
// and RSS are sampled after the run with the network still live, so
// the materialized state is in the numbers.
func measureScalePoint(hosts int, scale float64) (scalePoint, error) {
	r, err := experiments.ScalingRun(hosts, fabric.PolicyVOQnet, Options{Scale: scale})
	if err != nil {
		return scalePoint{}, err
	}
	cfg, err := r.Config()
	if err != nil {
		return scalePoint{}, err
	}
	t0 := time.Now()
	net, err := fabric.New(cfg)
	if err != nil {
		return scalePoint{}, err
	}
	build := time.Since(t0)
	_ = net // construction probe only; the run builds its own fabric

	t0 = time.Now()
	res, err := r.Execute()
	if err != nil {
		return scalePoint{}, err
	}
	elapsed := time.Since(t0)
	if res.Mem == nil {
		return scalePoint{}, fmt.Errorf("%d hosts: run carries no memory accounting", hosts)
	}
	eager, err := r.EagerMemModel()
	if err != nil {
		return scalePoint{}, err
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return scalePoint{
		Hosts:             hosts,
		Policy:            fabric.PolicyVOQnet.String(),
		ConstructionNs:    build.Nanoseconds(),
		RunNs:             elapsed.Nanoseconds(),
		Events:            res.Events,
		EventsPerSec:      float64(res.Events) / (elapsed.Seconds() + 1e-9),
		StateBytes:        res.Mem.StateBytes,
		BytesPerPort:      res.Mem.BytesPerPort(),
		EagerStateBytes:   eager.StateBytes,
		EagerBytesPerPort: eager.BytesPerPort(),
		LazyEagerRatio:    float64(res.Mem.StateBytes) / float64(eager.StateBytes),
		HeapBytes:         ms.HeapAlloc,
		PeakRSSBytes:      peakRSSBytes(),
	}, nil
}

// TestEmitScaleBench records the curve to $SCALE_BENCH_JSON. Sizes run
// ascending so each point's peak-RSS sample is dominated by its own
// network, not a larger predecessor's.
func TestEmitScaleBench(t *testing.T) {
	path := os.Getenv("SCALE_BENCH_JSON")
	if path == "" {
		t.Skip("set SCALE_BENCH_JSON=<path> to emit the scaling benchmark curve")
	}
	out := scaleBench{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scaleBenchScale,
		Topo:       "fattree",
	}
	for _, hosts := range []int{512, 1024, 4096} {
		p, err := measureScalePoint(hosts, scaleBenchScale)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%d hosts: build %v, %.0f events/s, %.0f B/port lazy vs %.0f eager (ratio %.3f), RSS %d MB",
			hosts, time.Duration(p.ConstructionNs), p.EventsPerSec,
			p.BytesPerPort, p.EagerBytesPerPort, p.LazyEagerRatio, p.PeakRSSBytes>>20)
		out.Points = append(out.Points, p)
	}
	out.PeakRSSBudgetBytes = 2 * out.Points[len(out.Points)-1].PeakRSSBytes
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScaleBenchGuard gates the 4096-host point against the recorded
// baseline.
func TestScaleBenchGuard(t *testing.T) {
	path := os.Getenv("SCALE_BENCH_BASELINE")
	if path == "" {
		t.Skip("set SCALE_BENCH_BASELINE=<baseline.json> to gate the 4k scaling point")
	}
	ratio := 0.9
	if s := os.Getenv("SCALE_BENCH_RATIO"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			t.Fatalf("SCALE_BENCH_RATIO %q: want a positive float", s)
		}
		ratio = v
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base scaleBench
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("baseline %s: %v", path, err)
	}
	if base.Scale != scaleBenchScale {
		t.Fatalf("baseline scale %.3f != current %.3f: rates are not comparable", base.Scale, scaleBenchScale)
	}
	var rec *scalePoint
	for i := range base.Points {
		if base.Points[i].Hosts == 4096 {
			rec = &base.Points[i]
		}
	}
	if rec == nil {
		t.Fatalf("baseline %s has no 4096-host point", path)
	}
	// The recorded file must itself satisfy the bytes/port acceptance
	// criterion — a regenerated baseline cannot quietly relax it.
	if rec.LazyEagerRatio > 0.25 {
		t.Errorf("recorded 4k lazy/eager ratio %.3f exceeds the 25%% budget", rec.LazyEagerRatio)
	}
	got, err := measureScalePoint(4096, scaleBenchScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4k hosts: %.0f events/s (recorded %.0f), RSS %d MB (budget %d MB), state %d B (recorded %d B)",
		got.EventsPerSec, rec.EventsPerSec, got.PeakRSSBytes>>20, base.PeakRSSBudgetBytes>>20,
		got.StateBytes, rec.StateBytes)
	// The state model is deterministic: same workload, same bytes.
	if got.StateBytes != rec.StateBytes {
		t.Errorf("modeled state %d B differs from recorded %d B (memory model drifted)", got.StateBytes, rec.StateBytes)
	}
	if base.PeakRSSBudgetBytes > 0 && got.PeakRSSBytes > base.PeakRSSBudgetBytes {
		t.Errorf("peak RSS %d bytes exceeds recorded budget %d", got.PeakRSSBytes, base.PeakRSSBudgetBytes)
	}
	if floor := ratio * rec.EventsPerSec; got.EventsPerSec < floor {
		t.Errorf("4k event rate %.0f fell below %.0f (%.2f × recorded %.0f)",
			got.EventsPerSec, floor, ratio, rec.EventsPerSec)
	}
}

// TestScaleBenchSmoke keeps the measurement path itself under ordinary
// `go test ./...`: a small point must produce a complete, internally
// consistent record that round-trips through the JSON schema.
func TestScaleBenchSmoke(t *testing.T) {
	p, err := measureScalePoint(512, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p.Events == 0 || p.EventsPerSec <= 0 || p.ConstructionNs <= 0 {
		t.Fatalf("degenerate measurement: %+v", p)
	}
	if p.StateBytes <= 0 || p.EagerStateBytes <= p.StateBytes {
		t.Fatalf("no lazy win at 512 hosts: lazy %d, eager %d", p.StateBytes, p.EagerStateBytes)
	}
	if p.LazyEagerRatio > 0.25 {
		t.Errorf("512-host hotspot ratio %.3f exceeds the 25%% budget", p.LazyEagerRatio)
	}
	path := t.TempDir() + "/bench.json"
	data, err := json.MarshalIndent(scaleBench{Scale: 0.01, Topo: "fattree", Points: []scalePoint{p}}, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var back scaleBench
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 1 || back.Points[0] != p {
		t.Fatalf("round trip mangled the point: %+v vs %+v", back.Points[0], p)
	}
}
