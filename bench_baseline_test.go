package repro

// Benchmark-baseline emitter: writes the headline performance numbers
// of the simulator hot path — the engine microbenchmark and the
// Figure 2 reproduction — as JSON, so perf PRs can be gated against a
// recorded baseline (BENCH_PR5.json holds the numbers captured just
// before the zero-allocation scheduler rewrite).
//
// Usage:
//
//	BENCH_JSON=BENCH_PR5.json go test -run TestEmitBenchBaseline .
//
// CI runs it with -benchtime=1x as a smoke test and uploads the JSON
// as an artifact; without BENCH_JSON the test skips.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// benchMetrics is one benchmark's headline numbers.
type benchMetrics struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	Iterations   int     `json:"iterations"`
}

// benchBaseline is the serialized baseline file.
type benchBaseline struct {
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Scale      float64      `json:"fig2_scale"`
	Engine     benchMetrics `json:"engine_schedule_run"`
	Fig2       benchMetrics `json:"fig2_corner1"`
}

func engineBenchNoop() {}

// benchmarkEngineHotPath is the engine microbench: a rolling window of
// scheduled events dispatched in batches, the same shape the fabric
// call sites produce. One op = one Schedule plus its dispatch.
func benchmarkEngineHotPath(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+sim.Time(i%97), engineBenchNoop)
		if i%64 == 63 {
			e.Run(e.Now() + 100)
		}
	}
	e.Drain()
	b.ReportMetric(float64(e.Executed)/(b.Elapsed().Seconds()+1e-9), "events/s")
}

const benchBaselineScale = 0.25

// benchmarkFig2Baseline runs the Figure 2 corner-case-1 reproduction
// (all five mechanisms) once per iteration, the same workload
// BenchmarkFig2aCornerCase1 measures.
func benchmarkFig2Baseline(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2(1, Options{Scale: benchBaselineScale})
		if err != nil {
			b.Fatal(err)
		}
		events = 0
		for _, r := range fig.Results {
			events += r.Events
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/(b.Elapsed().Seconds()+1e-9), "events/s")
}

func metricsOf(r testing.BenchmarkResult) benchMetrics {
	return benchMetrics{
		NsPerOp:      float64(r.NsPerOp()),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		EventsPerSec: r.Extra["events/s"],
		Iterations:   r.N,
	}
}

// TestEmitBenchBaseline writes the baseline JSON to $BENCH_JSON.
func TestEmitBenchBaseline(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit the benchmark baseline")
	}
	out := benchBaseline{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      benchBaselineScale,
		Engine:     metricsOf(testing.Benchmark(benchmarkEngineHotPath)),
		Fig2:       metricsOf(testing.Benchmark(benchmarkFig2Baseline)),
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: engine %.1f ns/op %d allocs/op; fig2 %.0f events/s",
		path, out.Engine.NsPerOp, out.Engine.AllocsPerOp, out.Fig2.EventsPerSec)
}
