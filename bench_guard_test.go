package repro

// Benchmark regression guard: re-runs the Fig 2a baseline benchmark
// (checks disabled — the checker must stay zero-overhead when off) and
// compares its event rate against a recorded baseline file.
//
// Usage:
//
//	BENCH_BASELINE=BENCH_PR5.json go test -run TestBenchGuard .
//
// BENCH_RATIO overrides the minimum acceptable current/baseline rate
// (default 0.95, i.e. within 5% noise of the baseline; the committed
// BENCH_PR5.json predates the zero-allocation scheduler rewrite, so
// current rates clear it with a wide margin). Without BENCH_BASELINE
// the test skips.

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"
)

func TestBenchGuard(t *testing.T) {
	path := os.Getenv("BENCH_BASELINE")
	if path == "" {
		t.Skip("set BENCH_BASELINE=<baseline.json> to gate against recorded benchmark numbers")
	}
	ratio := 0.95
	if s := os.Getenv("BENCH_RATIO"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			t.Fatalf("BENCH_RATIO %q: want a positive float", s)
		}
		ratio = v
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("baseline %s: %v", path, err)
	}
	if base.Fig2.EventsPerSec <= 0 {
		t.Fatalf("baseline %s has no fig2 event rate", path)
	}
	if base.Scale != benchBaselineScale {
		t.Fatalf("baseline scale %.3f != current %.3f: rates are not comparable", base.Scale, benchBaselineScale)
	}
	res := testing.Benchmark(benchmarkFig2Baseline)
	got := res.Extra["events/s"]
	floor := ratio * base.Fig2.EventsPerSec
	t.Logf("fig2 events/s: current %.0f, baseline %.0f (%s), floor %.0f (ratio %.2f)",
		got, base.Fig2.EventsPerSec, path, floor, ratio)
	if got < floor {
		t.Fatalf("checks-disabled Fig 2a rate %.0f events/s fell below %.0f (%.2f × baseline %.0f from %s)",
			got, floor, ratio, base.Fig2.EventsPerSec, path)
	}
}
