package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewNetworkAndDelivery(t *testing.T) {
	net, err := NewNetwork(64, PolicyRECN)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.InjectMessage(1, 2, 640); err != nil {
		t.Fatal(err)
	}
	net.Engine.Drain()
	if net.DeliveredPackets != 10 {
		t.Fatalf("delivered %d packets, want 10", net.DeliveredPackets)
	}
	if err := net.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

func TestNewNetworkErrors(t *testing.T) {
	if _, err := NewNetwork(63, PolicyRECN); err == nil {
		t.Error("NewNetwork(63) succeeded")
	}
	topo, _ := NewTopology(64)
	cfg := DefaultConfig(topo)
	cfg.PacketSize = -1
	if _, err := NewNetworkConfig(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
}

func TestFigureIDsComplete(t *testing.T) {
	ids := FigureIDs()
	want := []string{"2a", "2b", "2c", "2d", "3a", "3b", "4a", "4b", "5a", "5b",
		"6a", "6b", "a1", "a2", "a3", "a4", "lat1", "lat2", "pkt512a", "pkt512b",
		"scaling", "scaling1k", "shootout", "table1"}
	if len(ids) != len(want) {
		t.Fatalf("FigureIDs() = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("FigureIDs() = %v, want %v", ids, want)
		}
	}
}

func TestReproduceTable1(t *testing.T) {
	tables, err := Reproduce("TABLE1", Options{})
	if err != nil || len(tables) != 1 {
		t.Fatalf("Reproduce(table1) = %v, %v", tables, err)
	}
	if !strings.Contains(tables[0].String(), "corner cases") {
		t.Errorf("table1 content:\n%s", tables[0])
	}
	if _, err := Reproduce("nope", Options{}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestReproduceSmallFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed figure")
	}
	tables, err := Reproduce("4b", Options{Scale: 0.1, MaxRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("4b tables: %+v", tables)
	}
}

func TestGenerateAndReplayCelloTrace(t *testing.T) {
	tr, err := GenerateCelloTrace(64, 40*Microsecond, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Skip("no records in the small window (sparse workload)")
	}
	if !tr.Sorted() {
		t.Fatal("generated trace not sorted")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) {
		t.Fatalf("round trip %d != %d", len(back), len(tr))
	}
	net, err := NewNetwork(64, PolicyRECN)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayTrace(net, back, 20); err != nil {
		t.Fatal(err)
	}
	net.Engine.Drain()
	if net.DeliveredPackets == 0 {
		t.Fatal("replay delivered nothing")
	}
	if net.OrderViolations != 0 {
		t.Fatalf("order violations: %d", net.OrderViolations)
	}
}

func TestGenerateCelloTraceNeverEmpty(t *testing.T) {
	// The full duration always produces a workload.
	tr, err := GenerateCelloTrace(64, 800*Microsecond, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("800 µs cello trace empty")
	}
}

func TestInstallCornerFacade(t *testing.T) {
	net, err := NewNetwork(64, Policy1Q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Corner(1, 64, 64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallCorner(net, c); err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(c.SimEnd)
	if net.DeliveredPackets == 0 {
		t.Fatal("corner workload delivered nothing")
	}
}

func TestInstallCelloFacade(t *testing.T) {
	net, err := NewNetwork(64, PolicyRECN)
	if err != nil {
		t.Fatal(err)
	}
	if err := InstallCello(net, 40); err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(100 * Microsecond)
	if net.InjectedPackets == 0 {
		t.Fatal("cello injected nothing")
	}
}

func TestSweepFacades(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed sweep")
	}
	tables, err := SweepSAQs(Options{Scale: 0.05}, []int{8})
	if err != nil || len(tables) != 1 || len(tables[0].Rows) != 1 {
		t.Fatalf("SweepSAQs: %v %v", tables, err)
	}
	tables, err = SweepThresholds(Options{Scale: 0.05}, []int{8192})
	if err != nil || len(tables) != 1 || len(tables[0].Rows) != 1 {
		t.Fatalf("SweepThresholds: %v %v", tables, err)
	}
}
