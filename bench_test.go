package repro

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (Section 4). Each benchmark runs the corresponding
// experiment and prints the same series the paper plots, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Simulated durations default to a
// quarter of the paper's (the congestion-tree dynamics are preserved;
// detection takes ~10 µs against a 42 µs scaled window); pass
// -recn.scale=1 for the full 1600 µs runs (the 512-host Figure 6.b run
// then simulates ~13 GB of traffic — expect several minutes).
//
// Reported metrics: B/ns throughput in the paper's windows, peak SAQ
// counts, and simulator performance (events/sec).

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fabric"
)

var (
	benchScale = flag.Float64("recn.scale", 0.25, "time scale for figure benchmarks (1.0 = paper durations)")
	benchRows  = flag.Int("recn.rows", 24, "max printed table rows")
	benchQuiet = flag.Bool("recn.quiet", false, "suppress table output")
)

func benchOpts() Options {
	return Options{Scale: *benchScale, MaxRows: *benchRows}
}

func printTables(b *testing.B, tables []*Table) {
	b.Helper()
	if *benchQuiet {
		return
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
		fmt.Println()
	}
}

// reportFig attaches the headline numbers of a throughput figure as
// benchmark metrics.
func reportFig(b *testing.B, fig *experiments.FigThroughput) {
	for _, p := range fig.Policies {
		b.ReportMetric(fig.MeanWindow(p, 850, 960), p.String()+"_B/ns")
	}
	var events uint64
	for _, r := range fig.Results {
		events += r.Events
	}
	b.ReportMetric(float64(events)/float64(b.Elapsed().Seconds()+1e-9), "events/s")
}

func BenchmarkTable1CornerCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(b, []*Table{tab})
		}
	}
}

func benchFig2(b *testing.B, corner, pktSize int) {
	o := benchOpts()
	if pktSize != 0 {
		o.PacketSize = pktSize
	}
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2(corner, o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(b, []*Table{fig.Table()})
			reportFig(b, fig)
		}
	}
}

// BenchmarkFig2aCornerCase1 regenerates Figure 2.a: throughput over
// time for the five mechanisms under corner case 1 (48 random sources
// at 50%, 16-source hotspot), 64-byte packets.
func BenchmarkFig2aCornerCase1(b *testing.B) { benchFig2(b, 1, 0) }

// BenchmarkFig2bCornerCase2 regenerates Figure 2.b (all sources at the
// full link rate).
func BenchmarkFig2bCornerCase2(b *testing.B) { benchFig2(b, 2, 0) }

func benchZoom(b *testing.B, corner int) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2(corner, Options{
			Scale: o.Scale, MaxRows: o.MaxRows,
			Policies: []fabric.Policy{fabric.PolicyVOQnet, fabric.PolicyRECN},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(b, []*Table{fig.Zoom(750, 1000, fabric.PolicyVOQnet, fabric.PolicyRECN)})
			reportFig(b, fig)
		}
	}
}

// BenchmarkFig2cZoomCase1 regenerates Figure 2.c: the RECN-vs-VOQnet
// zoom around congestion-tree formation, corner case 1.
func BenchmarkFig2cZoomCase1(b *testing.B) { benchZoom(b, 1) }

// BenchmarkFig2dZoomCase2 regenerates Figure 2.d (corner case 2).
func BenchmarkFig2dZoomCase2(b *testing.B) { benchZoom(b, 2) }

func benchFig3(b *testing.B, cf float64) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig3(cf, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(b, []*Table{fig.Table()})
			for _, p := range fig.Policies {
				b.ReportMetric(fig.Result(p).Throughput.MeanRate(0, 1<<30), p.String()+"_B/ns")
			}
		}
	}
}

// BenchmarkFig3aTraceCF20 regenerates Figure 3 (SAN traces, cello
// model) at time compression 20.
func BenchmarkFig3aTraceCF20(b *testing.B) { benchFig3(b, 20) }

// BenchmarkFig3bTraceCF40 regenerates Figure 3 at compression 40.
func BenchmarkFig3bTraceCF40(b *testing.B) { benchFig3(b, 40) }

func benchFig4(b *testing.B, corner int) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig4(corner, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(b, []*Table{fig.Table()})
			p := fig.Result.SAQ.Peak()
			b.ReportMetric(float64(p.Total), "peak_total_SAQs")
			b.ReportMetric(float64(p.MaxIngress), "peak_ingress_SAQs")
			b.ReportMetric(float64(p.MaxEgress), "peak_egress_SAQs")
		}
	}
}

// BenchmarkFig4SAQCornerCases regenerates Figure 4: SAQ utilization
// over time for both corner cases.
func BenchmarkFig4SAQCornerCases(b *testing.B) {
	b.Run("case1", func(b *testing.B) { benchFig4(b, 1) })
	b.Run("case2", func(b *testing.B) { benchFig4(b, 2) })
}

func benchFig5(b *testing.B, cf float64) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig5(cf, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(b, []*Table{fig.Table()})
			p := fig.Result.SAQ.Peak()
			b.ReportMetric(float64(p.Total), "peak_total_SAQs")
		}
	}
}

// BenchmarkFig5SAQTraces regenerates Figure 5: SAQ utilization under
// the SAN traces at both compression factors.
func BenchmarkFig5SAQTraces(b *testing.B) {
	b.Run("cf20", func(b *testing.B) { benchFig5(b, 20) })
	b.Run("cf40", func(b *testing.B) { benchFig5(b, 40) })
}

func benchFig6(b *testing.B, hosts int) {
	o := benchOpts()
	// Figure 6 runs are an order of magnitude heavier; halve the
	// default scale unless the user pinned one explicitly.
	for i := 0; i < b.N; i++ {
		tput, saq, err := experiments.Fig6(hosts, o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(b, []*Table{tput.Table(), saq.Table()})
			reportFig(b, tput)
			p := saq.Result.SAQ.Peak()
			b.ReportMetric(float64(p.Total), "peak_total_SAQs")
		}
	}
}

// BenchmarkFig6a256Hosts regenerates Figure 6.a: throughput and SAQ
// utilization on the 256-host network (256 switches, 4 stages).
func BenchmarkFig6a256Hosts(b *testing.B) { benchFig6(b, 256) }

// BenchmarkFig6b512Hosts regenerates Figure 6.b on the 512-host network
// (640 switches, 5 stages).
func BenchmarkFig6b512Hosts(b *testing.B) {
	if testing.Short() {
		b.Skip("512-host run")
	}
	benchFig6(b, 512)
}

// BenchmarkPkt512CornerCases covers the paper's §4.3 remark that
// 512-byte-packet results match the 64-byte ones.
func BenchmarkPkt512CornerCases(b *testing.B) {
	b.Run("case1", func(b *testing.B) { benchFig2(b, 1, 512) })
	b.Run("case2", func(b *testing.B) { benchFig2(b, 2, 512) })
}

// --- Ablations (DESIGN.md §6, A1–A4) ---

func benchAblation(b *testing.B, run func(Options) (*Table, error)) {
	for i := 0; i < b.N; i++ {
		tab, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(b, []*Table{tab})
		}
	}
}

// BenchmarkAblationSAQCount sweeps SAQs per port (A1): the paper's
// claim is that 8 suffice.
func BenchmarkAblationSAQCount(b *testing.B) {
	benchAblation(b, func(o Options) (*Table, error) { return experiments.AblationSAQCount(o, nil) })
}

// BenchmarkAblationThreshold sweeps the congestion-detection threshold
// (A2): lower detects faster but allocates SAQs on transients.
func BenchmarkAblationThreshold(b *testing.B) {
	benchAblation(b, func(o Options) (*Table, error) { return experiments.AblationThreshold(o, nil) })
}

// BenchmarkAblationTokenBoost toggles the §3.8 arbiter priority boost
// for near-empty token-owning SAQs (A3).
func BenchmarkAblationTokenBoost(b *testing.B) {
	benchAblation(b, experiments.AblationTokenBoost)
}

// BenchmarkAblationMarkers toggles the §3.8 in-order markers (A4):
// without them RECN reorders packets.
func BenchmarkAblationMarkers(b *testing.B) {
	benchAblation(b, experiments.AblationMarkers)
}

// BenchmarkLatencyExtension quantifies the intro's latency claim:
// per-mechanism latency distributions before/during/after the tree.
func BenchmarkLatencyExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.LatencyFig(2, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(b, []*Table{tab})
		}
	}
}

// BenchmarkSweep measures the parallel sweep engine on the Figure 2
// corner-case runs (both corners × five mechanisms = 10 independent
// simulations): serial baseline vs. an 8-worker pool. The rendered
// results are identical at any -j (see TestSweepParallelGolden); only
// wall-clock changes.
func BenchmarkSweep(b *testing.B) {
	var runs []experiments.Run
	for _, corner := range []int{1, 2} {
		workload, until, err := experiments.CornerWorkload(corner, 64, 64, *benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range []fabric.Policy{
			fabric.PolicyVOQnet, fabric.Policy1Q, fabric.PolicyVOQsw, fabric.Policy4Q, fabric.PolicyRECN,
		} {
			runs = append(runs, experiments.Run{
				Hosts:    64,
				Policy:   p,
				Key:      fmt.Sprintf("corner%d", corner),
				Workload: workload,
				Until:    until,
				Bin:      until / 160,
			})
		}
	}
	for _, j := range []int{1, 8} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := experiments.Sweep(runs, experiments.Options{Parallelism: j})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					var events uint64
					for _, r := range results {
						events += r.Events
					}
					b.ReportMetric(float64(events)/(b.Elapsed().Seconds()+1e-9), "events/s")
				}
			}
		})
	}
}

// BenchmarkSimulatorCore measures raw simulator throughput (events/s)
// on a saturated 64-host network, independent of any figure.
func BenchmarkSimulatorCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := Corner(2, 64, 64, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run{
			Hosts:    64,
			Policy:   PolicyRECN,
			Workload: c.Install,
			Until:    c.SimEnd,
		}.Execute()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/op")
	}
}
