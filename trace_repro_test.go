package repro

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// traceRun executes one seeded corner-case run with the flight
// recorder attached and returns the recorder plus the run result.
func traceRun(t *testing.T, scale float64, cfg TraceConfig, faultSpec string) (*TraceRecorder, *Result) {
	t.Helper()
	c, err := Corner(2, 64, 64, scale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run{
		Hosts:     64,
		Policy:    PolicyRECN,
		Workload:  c.Install,
		Until:     c.SimEnd,
		FaultSpec: faultSpec,
		Trace:     &cfg,
	}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Run.Trace set but Result.Trace is nil")
	}
	return res.Trace, res
}

// digest hashes every export format of a recording.
func digest(t *testing.T, rec *TraceRecorder) [32]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteTrees(&buf); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// TestTraceDeterminism runs the same seeded scenario twice — with and
// without fault injection — and requires byte-identical trace exports:
// events are stamped with (sim time, dispatch sequence), never wall
// clock, and no export may depend on map iteration order.
func TestTraceDeterminism(t *testing.T) {
	cfg := TraceConfig{MetricsBin: Time(500 * Nanosecond)}
	for _, faults := range []string{"", "seed=3,drop=token:1,droprate=credit:0.02,flap=0:4:3us:5us"} {
		recA, resA := traceRun(t, 0.02, cfg, faults)
		recB, resB := traceRun(t, 0.02, cfg, faults)
		if resA.Events != resB.Events || resA.Delivered != resB.Delivered {
			t.Fatalf("faults=%q: runs diverged: %d/%d events, %d/%d delivered",
				faults, resA.Events, resB.Events, resA.Delivered, resB.Delivered)
		}
		if recA.Total() == 0 {
			t.Fatalf("faults=%q: recorder captured nothing", faults)
		}
		if digest(t, recA) != digest(t, recB) {
			t.Errorf("faults=%q: trace exports differ between identical seeded runs", faults)
		}
	}
}

// TestTraceLifecycle runs the hotspot corner case with the recorder
// restricted to congestion-tree events and checks a full SAQ
// alloc → token → dealloc lifecycle was captured and reconstructed.
func TestTraceLifecycle(t *testing.T) {
	mask, err := ParseTraceEvents("tree")
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := traceRun(t, 0.05, TraceConfig{Events: mask}, "")
	trees := rec.Trees()
	if len(trees) == 0 {
		t.Fatal("no congestion trees reconstructed from a hotspot run")
	}
	var full *TraceTree
	for _, tree := range trees {
		if tree.Allocs > 0 && tree.Deallocs > 0 && tree.Tokens > 0 {
			full = tree
			break
		}
	}
	if full == nil {
		t.Fatalf("no tree with a complete alloc→token→dealloc lifecycle among %d trees", len(trees))
	}
	if full.Born < 0 {
		t.Errorf("complete tree has no birth time: %+v", full)
	}
	if full.PeakSAQs <= 0 {
		t.Errorf("complete tree never held a SAQ: %+v", full)
	}
}

// TestTraceObservationNeutral checks the recorder is a pure observer:
// attaching one (without the metrics sampler, which adds its own
// engine events) must not change what the simulation does.
func TestTraceObservationNeutral(t *testing.T) {
	run := func(cfg *TraceConfig) *Result {
		c, err := Corner(1, 64, 64, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run{
			Hosts:    64,
			Policy:   PolicyRECN,
			Workload: c.Install,
			Until:    c.SimEnd,
			Trace:    cfg,
		}.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	traced := run(&TraceConfig{})
	if plain.Events != traced.Events || plain.Delivered != traced.Delivered ||
		plain.Injected != traced.Injected || plain.OrderViolations != traced.OrderViolations {
		t.Fatalf("tracing perturbed the run: %d/%d events, %d/%d delivered",
			plain.Events, traced.Events, plain.Delivered, traced.Delivered)
	}
}
