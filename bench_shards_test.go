package repro

// Shard-scaling benchmark: the Figure 2 corner-case-1 reproduction on
// the windowed multi-core runtime, swept over shard counts, plus a
// regression guard for the windowed runtime's single-shard overhead.
//
// Usage:
//
//	BENCH_SHARDS_JSON=BENCH_PR7.json go test -run TestEmitShardBench .
//	BENCH_SHARDS_BASELINE=BENCH_PR5.json go test -run TestShardBenchGuard .
//
// The emitter records the honest curve for the machine it runs on
// (gomaxprocs and num_cpu are part of the JSON): on a single-core
// container the windowed runtime cannot beat the serial engine — the
// barriers and mailboxes are pure overhead — so the ≥ 2× speedup
// assertion only arms on boxes with at least 8 CPUs. The guard bounds
// that overhead instead: the shard-1 windowed rate must stay above
// BENCH_SHARDS_RATIO (default 0.4) of the recorded serial baseline, so
// a regression that makes windowing drastically more expensive fails
// even where no parallel speedup is measurable.

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// shardBenchPoint is one shard count's headline numbers (Shards 0 is
// the serial engine, the curve's reference point).
type shardBenchPoint struct {
	Shards int `json:"shards"`
	benchMetrics
}

// shardBenchBaseline is the serialized shard-scaling curve.
type shardBenchBaseline struct {
	GoVersion  string            `json:"go_version"`
	GoMaxProcs int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	Scale      float64           `json:"fig2_scale"`
	Curve      []shardBenchPoint `json:"fig2_corner1_curve"`
}

// benchmarkFig2Sharded runs the same workload as benchmarkFig2Baseline
// — the full Figure 2 corner-case-1 reproduction — on the windowed
// runtime with k shard engines (k = 0 keeps the serial engine), so
// every curve point measures the identical amount of simulated work.
func benchmarkFig2Sharded(k int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			fig, err := experiments.Fig2(1, Options{Scale: benchBaselineScale, Shards: k})
			if err != nil {
				b.Fatal(err)
			}
			events = 0
			for _, r := range fig.Results {
				events += r.Events
			}
		}
		b.ReportMetric(float64(events)*float64(b.N)/(b.Elapsed().Seconds()+1e-9), "events/s")
	}
}

// TestEmitShardBench writes the shard-scaling curve to
// $BENCH_SHARDS_JSON and, on machines with ≥ 8 CPUs, asserts the
// windowed runtime actually scales (8 shards ≥ 2× the 1-shard rate).
func TestEmitShardBench(t *testing.T) {
	path := os.Getenv("BENCH_SHARDS_JSON")
	if path == "" {
		t.Skip("set BENCH_SHARDS_JSON=<path> to emit the shard-scaling curve")
	}
	out := shardBenchBaseline{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      benchBaselineScale,
	}
	rates := map[int]float64{}
	for _, k := range []int{0, 1, 2, 4, 8} {
		res := testing.Benchmark(benchmarkFig2Sharded(k))
		m := metricsOf(res)
		rates[k] = m.EventsPerSec
		out.Curve = append(out.Curve, shardBenchPoint{Shards: k, benchMetrics: m})
		t.Logf("shards=%d: %.0f events/s (%d iterations)", k, m.EventsPerSec, m.Iterations)
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (gomaxprocs %d, %d CPUs)", path, out.GoMaxProcs, out.NumCPU)
	if runtime.NumCPU() < 8 {
		t.Logf("%d CPUs: recording the honest curve only, parallel-speedup assertion needs ≥ 8", runtime.NumCPU())
		return
	}
	if rates[8] < 2*rates[1] {
		t.Fatalf("8 shards ran at %.0f events/s, want ≥ 2× the 1-shard rate %.0f", rates[8], rates[1])
	}
}

// TestShardBenchGuard bounds the windowed runtime's overhead: the
// shard-1 rate must stay above BENCH_SHARDS_RATIO (default 0.4) of the
// recorded serial baseline's Fig 2a rate. Skips without
// BENCH_SHARDS_BASELINE.
func TestShardBenchGuard(t *testing.T) {
	path := os.Getenv("BENCH_SHARDS_BASELINE")
	if path == "" {
		t.Skip("set BENCH_SHARDS_BASELINE=<baseline.json> to gate the windowed runtime against the serial baseline")
	}
	ratio := 0.4
	if s := os.Getenv("BENCH_SHARDS_RATIO"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			t.Fatalf("BENCH_SHARDS_RATIO %q: want a positive float", s)
		}
		ratio = v
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("baseline %s: %v", path, err)
	}
	if base.Fig2.EventsPerSec <= 0 {
		t.Fatalf("baseline %s has no fig2 event rate", path)
	}
	if base.Scale != benchBaselineScale {
		t.Fatalf("baseline scale %.3f != current %.3f: rates are not comparable", base.Scale, benchBaselineScale)
	}
	res := testing.Benchmark(benchmarkFig2Sharded(1))
	got := res.Extra["events/s"]
	floor := ratio * base.Fig2.EventsPerSec
	t.Logf("shard-1 fig2 events/s: current %.0f, serial baseline %.0f (%s), floor %.0f (ratio %.2f)",
		got, base.Fig2.EventsPerSec, path, floor, ratio)
	if got < floor {
		t.Fatalf("shard-1 windowed rate %.0f events/s fell below %.0f (%.2f × serial baseline %.0f from %s)",
			got, floor, ratio, base.Fig2.EventsPerSec, path)
	}
}
