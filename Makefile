GO ?= go

.PHONY: all build test race bench chaos-soak chaos-soak-long bench-guard

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchmem .

# Seeded randomized compound fault plans (drops + flaps + corruption +
# delays) under the full runtime invariant checker and the race
# detector. A failing seed is minimized to the smallest still-failing
# fragment set; reproduce any report with `recnsim -faults "<spec>" -check`.
chaos-soak:
	$(GO) test -race -v -run TestChaosSoak -chaos.seeds 16 ./internal/check/chaos/

# The nightly-sized sweep (CI runs this on schedule/manual dispatch).
chaos-soak-long:
	$(GO) test -race -timeout 60m -v -run TestChaosSoak -chaos.seeds 250 ./internal/check/chaos/

# Assert the checks-disabled Fig 2a rate stays within noise of the
# recorded baseline (the checker's nil-hook path must cost nothing).
bench-guard:
	BENCH_BASELINE=BENCH_PR5.json $(GO) test -run TestBenchGuard -v .
