GO ?= go

.PHONY: all build test race bench chaos-soak chaos-soak-long bench-guard bench-shards shard-matrix server-smoke shootout policy-matrix scale-smoke

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchmem .

# Seeded randomized compound fault plans (drops + flaps + corruption +
# delays) under the full runtime invariant checker and the race
# detector. A failing seed is minimized to the smallest still-failing
# fragment set; reproduce any report with `recnsim -faults "<spec>" -check`.
chaos-soak:
	$(GO) test -race -v -run TestChaosSoak ./internal/check/chaos/ -chaos.seeds 16

# The nightly-sized sweep (CI runs this on schedule/manual dispatch).
chaos-soak-long:
	$(GO) test -race -timeout 60m -v -run TestChaosSoak ./internal/check/chaos/ -chaos.seeds 250

# Assert the checks-disabled Fig 2a rate stays within noise of the
# recorded baseline (the checker's nil-hook path must cost nothing).
bench-guard:
	BENCH_BASELINE=BENCH_PR5.json $(GO) test -run TestBenchGuard -v .

# Re-emit the shard-scaling curve (Fig 2a across shard counts 0–8; the
# committed BENCH_PR7.json records this container's honest numbers) and
# bound the windowed runtime's single-shard overhead against the serial
# baseline.
bench-shards:
	BENCH_SHARDS_JSON=BENCH_PR7.json $(GO) test -run TestEmitShardBench -v .
	BENCH_SHARDS_BASELINE=BENCH_PR5.json $(GO) test -run TestShardBenchGuard -v .

# The sweep daemon end-to-end: start recnserved, submit a small figure
# sweep over HTTP, poll to completion, diff the fetched results against
# the recnsweep byte stream, exercise one admission-rejection path and
# the cache-hit resubmit, then SIGTERM-drain (same script CI runs).
server-smoke:
	./scripts/server-smoke.sh

# Render the policy shoot-out: 1Q vs RECN vs throttle vs arn head to
# head over five congestion scenarios (one with compound faults).
# Scale up (-scale 1.0) for paper-length windows.
shootout:
	$(GO) run ./cmd/recnsim -fig shootout -scale 0.25

# The cross-policy determinism battery under the race detector:
# throttle AIMD property tests, the hotspot behavior tests, spec
# validation, shoot-out identity + dispatch goldens, and the daemon's
# bad-spec rejections (same selection CI's policy-matrix job runs).
policy-matrix:
	$(GO) test -race ./internal/throttle/
	$(GO) test -race -run 'TestThrottle|TestARN' ./internal/fabric/
	$(GO) test -race -run 'TestShootout|TestDispatchGolden|TestValidatePolicyOptions' ./internal/experiments/
	$(GO) test -race -run TestAdmissionBadRequests ./internal/server/

# The memory-scaling smoke: the lazy-state equivalence and fat-tree
# battery under the race detector, the 1k-host fat-tree scaling figure
# at -shards 1 vs 4 (byte-identity), the 4k scale-benchmark guard
# against the committed BENCH_PR11.json curve, and a short chaos soak
# (which samples the fat-tree topology on a quarter of its seeds).
scale-smoke:
	$(GO) test -race -run 'TestFatTree|TestLazyEager|TestScaling|TestLazyState|LazyMatchesDense|TestEagerMemStats|TestLazyConstruction' ./internal/topology/ ./internal/fabric/ ./internal/experiments/
	$(GO) test -race -run TestScaleBenchSmoke .
	$(GO) build -o /tmp/recnsim-scale ./cmd/recnsim
	/tmp/recnsim-scale -fig scaling1k -scale 0.02 -q -shards 1 > /tmp/scaling1k-s1.txt
	/tmp/recnsim-scale -fig scaling1k -scale 0.02 -q -shards 4 > /tmp/scaling1k-s4.txt
	cmp /tmp/scaling1k-s1.txt /tmp/scaling1k-s4.txt
	SCALE_BENCH_BASELINE=BENCH_PR11.json $(GO) test -run TestScaleBenchGuard -v .
	$(GO) test -race -run TestChaosSoak ./internal/check/chaos/ -chaos.seeds 12

# The windowed runtime's bit-identity matrix under the race detector:
# shard validation, report/figure identity across shard counts, and the
# sharded chaos soak (live fault injection on shard goroutines).
shard-matrix:
	$(GO) test -race -v -run 'TestShard|TestSweepStoreFailure' ./internal/fabric/ ./internal/experiments/
	$(GO) test -race -v -run TestChaosSoakSharded ./internal/check/chaos/
