// Scaling: the paper's Figure 6 claim at example scale — RECN's SAQ
// requirements do not grow with network size, because the number of
// SAQs a port needs depends only on how many congestion trees overlap
// there.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const scale = 0.1 // compress the paper's run 10×

	fmt.Println("corner-case-2 hotspot on growing networks (RECN)")
	fmt.Println()
	fmt.Printf("%8s %10s %8s %16s %18s %12s\n",
		"hosts", "switches", "stages", "tput [B/ns]", "peak SAQs/port", "total SAQs")

	for _, hosts := range []int{64, 256} {
		topo, err := repro.NewTopology(hosts)
		if err != nil {
			log.Fatal(err)
		}
		c, err := repro.Corner(2, hosts, 64, scale)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Run{
			Hosts:    hosts,
			Policy:   repro.PolicyRECN,
			Workload: c.Install,
			Until:    c.SimEnd,
		}.Execute()
		if err != nil {
			log.Fatal(err)
		}
		peak := res.SAQ.Peak()
		perPort := peak.MaxIngress
		if peak.MaxEgress > perPort {
			perPort = peak.MaxEgress
		}
		mean := res.Throughput.MeanRate(0, res.Throughput.Bins())
		fmt.Printf("%8d %10d %8d %16.2f %18d %12d\n",
			hosts, topo.NumSwitches(), topo.Levels(), mean, perPort, peak.Total)
	}
	fmt.Println()
	fmt.Println("the per-port peak stays within the 8 SAQs the paper provisions,")
	fmt.Println("independent of network size (paper Fig. 6).")
}
