// Hotspot: reproduce the paper's core phenomenon at small scale.
//
// A congestion tree forms while 16 sources blast one destination; with
// a single queue per port (1Q) the head-of-line blocking collapses the
// background traffic, while RECN isolates the congested flows in
// dynamically allocated SAQs and keeps throughput at the VOQnet level.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const scale = 0.25 // compress the paper's 1600 µs run to 400 µs

	fmt.Println("corner case 2 (64 hosts, 48 random sources at 100%,")
	fmt.Println("16 hotspot sources -> host 32 during the middle of the run)")
	fmt.Println()
	fmt.Printf("%-8s %14s %14s %14s %10s\n",
		"policy", "before [B/ns]", "during [B/ns]", "after [B/ns]", "peak SAQs")

	for _, policy := range []repro.Policy{repro.PolicyVOQnet, repro.Policy1Q, repro.PolicyRECN} {
		c, err := repro.Corner(2, 64, 64, scale)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Run{
			Hosts:    64,
			Policy:   policy,
			Workload: c.Install,
			Until:    c.SimEnd,
		}.Execute()
		if err != nil {
			log.Fatal(err)
		}
		window := func(fromUs, toUs float64) float64 {
			from := int(repro.Time(fromUs*scale*float64(repro.Microsecond)) / res.Throughput.Bin())
			to := int(repro.Time(toUs*scale*float64(repro.Microsecond)) / res.Throughput.Bin())
			return res.Throughput.MeanRate(from, to)
		}
		peak := res.SAQ.Peak()
		fmt.Printf("%-8s %14.2f %14.2f %14.2f %10d\n",
			policy,
			window(400, 790),   // before the hotspot
			window(850, 970),   // while the congestion tree lives
			window(1100, 1500), // after it collapses
			peak.Total)
	}
	fmt.Println()
	fmt.Println("expected shape (paper Fig. 2.b): VOQnet is flat; 1Q collapses")
	fmt.Println("during the tree; RECN stays within a few B/ns of VOQnet using")
	fmt.Println("at most 8 SAQs per port.")
}
