// Tracing: flight-record a congestion tree and export it.
//
// The simulator carries a zero-overhead-when-disabled flight recorder
// (internal/trace): a fixed-size ring of typed events plus a sampled
// per-port metrics registry. This example re-runs the hotspot corner
// case under RECN with the recorder restricted to the congestion-tree
// events (SAQ allocation/deallocation, notifications, tokens), then
//
//   - exports a Chrome trace_event JSON — open it at
//     https://ui.perfetto.dev (or chrome://tracing) to see every
//     congestion tree as a named async span per switch port, with
//     per-port SAQ counter tracks below;
//   - exports a plain-text event log and a congestion-tree lifecycle
//     timeline (birth = first SAQ allocation for the tree's root,
//     death = the token deallocating its last SAQ);
//   - summarises the sampled SAQ-occupancy series through the same
//     stats.Series interface the figure tables use.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro"
)

func main() {
	dir := flag.String("dir", ".", "output directory for the exported files")
	scale := flag.Float64("scale", 0.25, "time scale (1.0 = the paper's 1600 us run)")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Record only the congestion-tree events plus Xon/Xoff. The default
	// mask records everything (every packet send/recv, every credit),
	// which is what you want for a microscope view of a short window —
	// but at full-run length the packet volume would overwrite the
	// early SAQ allocations in the ring long before the run ends.
	mask, err := repro.ParseTraceEvents("tree,flow")
	if err != nil {
		log.Fatal(err)
	}

	c, err := repro.Corner(2, 64, 64, *scale)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Run{
		Hosts:    64,
		Policy:   repro.PolicyRECN,
		Workload: c.Install,
		Until:    c.SimEnd,
		// The metrics bin is NOT scaled with the run: 500 ns is already
		// a fine-grained counter track, and scaling it down would
		// multiply the sample (and exported counter-event) count.
		Trace: &repro.TraceConfig{
			Events:     mask,
			MetricsBin: 500 * repro.Nanosecond,
		},
	}.Execute()
	if err != nil {
		log.Fatal(err)
	}
	rec := res.Trace

	fmt.Println("corner case 2 (64 hosts, RECN) with the flight recorder on:")
	fmt.Printf("  %d events recorded (%d overwritten), %d metric series sampled\n\n",
		rec.Total(), rec.Overwritten(), len(rec.Metrics().Names()))

	// Every congestion tree the run formed, keyed by its root port.
	trees := rec.Trees()
	fmt.Printf("%d congestion trees reconstructed:\n", len(trees))
	for _, t := range trees {
		life := "still alive at cutoff"
		if t.Died >= t.Born {
			life = fmt.Sprintf("lived %v", t.Died-t.Born)
		}
		fmt.Printf("  root %-14s born %12v  %-16s %4d allocs, %4d tokens, peak %d SAQs\n",
			t.Root, t.Born, life, t.Allocs, t.Tokens, t.PeakSAQs)
	}

	// The sampled metrics implement the same Series interface as the
	// throughput meters, so the one Summarize works on both.
	var busy []*repro.TraceSeries
	rec.Metrics().Each(func(s *repro.TraceSeries) {
		if strings.HasSuffix(s.Name(), "/saqs") && s.Max() > 0 {
			busy = append(busy, s)
		}
	})
	sort.SliceStable(busy, func(i, j int) bool { return busy[i].Max() > busy[j].Max() })
	fmt.Println("\nbusiest sampled SAQ series:")
	for _, s := range busy[:min(4, len(busy))] {
		sum := repro.SummarizeSeries(s)
		fmt.Printf("  %-16s mean %.2f  max %.0f SAQs at %v\n", s.Name(), sum.Mean, sum.Max, sum.PeakAt)
	}

	for _, out := range []struct {
		name  string
		write func(f *os.File) error
	}{
		{"trace.json", func(f *os.File) error { return rec.WriteChromeTrace(f) }},
		{"trace.log", func(f *os.File) error { return rec.WriteText(f) }},
		{"trees.txt", func(f *os.File) error { return rec.WriteTrees(f) }},
	} {
		path := filepath.Join(*dir, out.name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := out.write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s", path)
	}
	fmt.Println("\n\nopen trace.json at https://ui.perfetto.dev — each congestion")
	fmt.Println("tree is an async span named after its root port; the counter")
	fmt.Println("tracks underneath show per-port SAQ occupancy over time.")
}
