// Mesh: RECN on a direct network. The paper (§3) notes the strategy is
// "valid for any network topology, including both direct networks
// (e.g., meshes and tori) and MINs" — the same switch fabric and RECN
// controllers run unchanged on a 2D mesh with dimension-order routing;
// only the topology (wiring + deterministic routes) differs.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const cols, rows = 8, 8
	hot := 27 // switch (3,3): an interior hotspot

	fmt.Printf("8×8 mesh, XY routing: 4 corner hosts blast host %d while\n", hot)
	fmt.Println("row flows share the corner-to-column turn switches with them")
	fmt.Println()
	fmt.Printf("%-8s %16s %16s %12s\n", "policy", "hot [B]", "background [B]", "peak SAQs")

	for _, policy := range []repro.Policy{repro.Policy1Q, repro.PolicyRECN} {
		net, err := repro.NewMeshNetwork(cols, rows, policy)
		if err != nil {
			log.Fatal(err)
		}
		// Hotspot sources at the four corners — their XY paths converge
		// on (3,3) and form a congestion tree.
		for _, src := range []int{0, 7, 56, 63} {
			src := src
			var gen func()
			gen = func() {
				if net.Engine.Now() > 150*repro.Microsecond {
					return
				}
				if err := net.InjectMessage(src, hot, 64); err != nil {
					log.Fatal(err)
				}
				net.Engine.After(128*repro.Nanosecond, gen) // 50% rate
			}
			net.Engine.Schedule(0, gen)
		}
		// Background flows along rows 0 and 7: they share the input
		// queues of the turn switches (3,0) and (3,7) with the hot
		// flows, which is where 1Q suffers HOL blocking.
		for _, pair := range [][2]int{{1, 6}, {2, 5}, {57, 62}, {58, 61}} {
			src, dst := pair[0], pair[1]
			var gen func()
			gen = func() {
				if net.Engine.Now() > 150*repro.Microsecond {
					return
				}
				if err := net.InjectMessage(src, dst, 64); err != nil {
					log.Fatal(err)
				}
				net.Engine.After(192*repro.Nanosecond, gen) // 33% rate
			}
			net.Engine.Schedule(0, gen)
		}
		var hotBytes, bgBytes uint64
		peak := 0
		net.OnDeliver = func(p *repro.Packet) {
			if p.Dst == hot {
				hotBytes += uint64(p.Size)
			} else {
				bgBytes += uint64(p.Size)
			}
		}
		var poll func()
		poll = func() {
			if total, _, _ := net.SAQUsage(); total > peak {
				peak = total
			}
			if net.Engine.Now() < 150*repro.Microsecond {
				net.Engine.After(repro.Microsecond, poll)
			}
		}
		net.Engine.Schedule(0, poll)
		net.Engine.Run(150 * repro.Microsecond)
		fmt.Printf("%-8s %16d %16d %12d\n", policy, hotBytes, bgBytes, peak)
		net.Engine.Drain()
		if err := net.CheckQuiesced(); err != nil {
			log.Fatalf("%v: %v", policy, err)
		}
	}
	fmt.Println()
	fmt.Println("expected: hot delivery is bottlenecked identically (one link),")
	fmt.Println("but RECN delivers more background bytes than 1Q — the tree is")
	fmt.Println("isolated in SAQs instead of blocking the shared row queues.")
}
