// Quickstart: build the paper's 64-host multistage network with RECN,
// send some traffic, and read the basic counters.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 64×64 perfect-shuffle MIN: 48 switches with 8 bidirectional
	// ports in 3 stages, RECN congestion management at every port.
	net, err := repro.NewNetwork(64, repro.PolicyRECN)
	if err != nil {
		log.Fatal(err)
	}

	// Send a 4 KB message from host 3 to host 60 (it is packetized
	// into 64-byte packets at the NIC).
	if err := net.InjectMessage(3, 60, 4096); err != nil {
		log.Fatal(err)
	}

	// Let a few hosts chat for 10 µs of simulated time.
	for h := 0; h < 8; h++ {
		h := h
		var gen func()
		gen = func() {
			if net.Engine.Now() > 10*repro.Microsecond {
				return
			}
			if err := net.InjectMessage(h, (h+32)%64, 64); err != nil {
				log.Fatal(err)
			}
			net.Engine.After(128*repro.Nanosecond, gen)
		}
		net.Engine.Schedule(0, gen)
	}

	// Run the discrete-event simulation until everything is delivered.
	net.Engine.Drain()

	fmt.Printf("network:   %s\n", net.Topology())
	fmt.Printf("injected:  %d packets (%d bytes)\n", net.InjectedPackets, net.InjectedBytes)
	fmt.Printf("delivered: %d packets (%d bytes)\n", net.DeliveredPackets, net.DeliveredBytes)
	fmt.Printf("in order:  %v (violations: %d)\n", net.OrderViolations == 0, net.OrderViolations)
	if err := net.CheckQuiesced(); err != nil {
		log.Fatalf("network did not quiesce cleanly: %v", err)
	}
	fmt.Println("quiesced:  all buffers empty, all credits returned, no SAQs allocated")
}
