// SAN trace workflow: generate a synthetic cello-style storage trace,
// write it to a file in the recn-trace format, read it back, and replay
// it through the simulator under RECN with a time-compression factor —
// the paper's Figure 3/5 experiment on a user-provided trace.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "recn-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "cello.trace")

	// 1. Capture the cello model into a trace file (no simulation of
	//    the fabric yet — we only record message generation).
	trace, err := repro.GenerateCelloTrace(64, 200*repro.Microsecond, 20, 1)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.WriteTrace(f, trace); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %d records to %s\n", len(trace), path)

	// 2. Read it back (any I/O trace converted to this format works).
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := repro.ReadTrace(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d records back\n", len(loaded))

	// 3. Replay at two further compression factors under RECN.
	for _, cf := range []float64{1, 2} {
		net, err := repro.NewNetwork(64, repro.PolicyRECN)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.ReplayTrace(net, loaded, cf); err != nil {
			log.Fatal(err)
		}
		net.Engine.Drain()
		stats := net.RECNStats()
		fmt.Printf("compression %2.0f: delivered %7d packets (%8d bytes), SAQ allocs %4d, in order: %v\n",
			cf, net.DeliveredPackets, net.DeliveredBytes, stats.Allocs, net.OrderViolations == 0)
	}
}
