// Faults: survive lost control messages and a link flap.
//
// The paper assumes a lossless, fault-free fabric: every credit, token
// and Xon/Xoff arrives. This example breaks that assumption — it drops
// RECN control messages, randomly discards credits, and takes a switch
// link down for 40 µs mid-run — and shows the watchdog/recovery layer
// (token reclaim, Xoff retransmit, Xon override, credit resync) still
// delivering every injected packet.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const scale = 0.25 // compress the paper's 1600 µs run to 400 µs

	fmt.Println("corner case 2 under fault injection (64 hosts, RECN):")
	fmt.Println("dropped tokens/Xoffs/notifications, 1% credit loss, one link flap")
	fmt.Println()

	for _, faulty := range []bool{false, true} {
		c, err := repro.Corner(2, 64, 64, scale)
		if err != nil {
			log.Fatal(err)
		}
		run := repro.Run{
			Hosts:    64,
			Policy:   repro.PolicyRECN,
			Workload: c.Install,
			Until:    c.SimEnd,
			DrainAll: true, // drain and verify the quiesce invariants
		}
		if faulty {
			// Scripted drops hit the first messages of each kind (the
			// congestion tree's setup phase); the rates keep hurting it
			// for the rest of the run.
			plan := repro.NewFaultPlan(42).
				Drop(repro.FaultToken, 4).
				Drop(repro.FaultXoff, 2).
				Drop(repro.FaultNotify, 2).
				Rule(repro.FaultCredit, repro.FaultRule{DropProb: 0.01}).
				Flap(repro.LinkFlap{Switch: 0, Port: 4,
					Down: 100 * repro.Microsecond, Up: 140 * repro.Microsecond})
			run.Faults = plan
			run.Recovery = repro.DefaultFaultRecovery()
		}
		res, err := run.Execute()
		if err != nil {
			log.Fatal(err)
		}
		label := "clean"
		if faulty {
			label = "faulty"
		}
		fmt.Printf("%-7s injected=%d delivered=%d order_violations=%d\n",
			label, res.Injected, res.Delivered, res.OrderViolations)
		if res.Faults != nil {
			fmt.Printf("        %s\n", res.Faults)
		}
		if res.Injected != res.Delivered {
			log.Fatalf("%s run lost packets", label)
		}
	}
	fmt.Println()
	fmt.Println("both runs drain completely: the fabric never drops payload,")
	fmt.Println("and the recovery layer reclaims leaked SAQs, retransmits lost")
	fmt.Println("Xoffs and restores lost credits, so faults cost throughput")
	fmt.Println("but never delivery.")
}
