package repro_test

import (
	"fmt"

	"repro"
)

// Build the paper's 64-host network with RECN, send one message, and
// run the simulation to completion.
func ExampleNewNetwork() {
	net, err := repro.NewNetwork(64, repro.PolicyRECN)
	if err != nil {
		panic(err)
	}
	if err := net.InjectMessage(3, 60, 256); err != nil {
		panic(err)
	}
	net.Engine.Drain()
	fmt.Println(net.DeliveredPackets, "packets delivered")
	// Output: 4 packets delivered
}

// Reproduce the paper's Table 1 (no simulation needed).
func ExampleReproduce() {
	tables, err := repro.Reproduce("table1", repro.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(tables[0].Rows), "rows")
	// Output: 4 rows
}

// The same fabric runs on a direct network (paper §3): a 4×4 mesh with
// dimension-order routing.
func ExampleNewMeshNetwork() {
	net, err := repro.NewMeshNetwork(4, 4, repro.PolicyRECN)
	if err != nil {
		panic(err)
	}
	if err := net.InjectMessage(0, 15, 64); err != nil {
		panic(err)
	}
	net.Engine.Drain()
	fmt.Println(net.DeliveredPackets, "packet delivered across", net.Topology())
	// Output: 1 packet delivered across mesh 4×4 (16 switches, 1 host each, XY routing)
}
